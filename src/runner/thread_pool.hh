/**
 * @file
 * A small fixed-size worker pool for the sweep runner. Jobs are
 * arbitrary callables; submit() enqueues, wait() blocks until the queue
 * drains and every in-flight job finishes. Workers never die on a job's
 * exception — jobs are expected to catch their own (the sweep driver
 * records failures per run), but as a last line of defense a throwing
 * job is swallowed here so one bad run cannot poison the pool.
 */

#ifndef SRLSIM_RUNNER_THREAD_POOL_HH
#define SRLSIM_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace srl
{
namespace runner
{

class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads)
    {
        if (threads == 0)
            threads = 1;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        work_cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    /** Enqueue one job. */
    void
    submit(std::function<void()> job)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queue_.push_back(std::move(job));
        }
        work_cv_.notify_one();
    }

    /** Block until all submitted jobs have completed. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_cv_.wait(lock,
                      [this] { return queue_.empty() && active_ == 0; });
    }

    std::size_t threads() const { return workers_.size(); }

  private:
    void
    workerLoop()
    {
        while (true) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                work_cv_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (stopping_ && queue_.empty())
                    return;
                job = std::move(queue_.front());
                queue_.pop_front();
                ++active_;
            }
            try {
                job();
            } catch (...) {
                // Jobs handle their own failures; never kill a worker.
            }
            {
                std::unique_lock<std::mutex> lock(mutex_);
                --active_;
                if (queue_.empty() && active_ == 0)
                    idle_cv_.notify_all();
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    unsigned active_ = 0;
    bool stopping_ = false;
};

} // namespace runner
} // namespace srl

#endif // SRLSIM_RUNNER_THREAD_POOL_HH
