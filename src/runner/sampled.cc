#include "runner/sampled.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/random.hh"
#include "core/fast_forward.hh"
#include "core/sim_state.hh"
#include "core/simulator.hh"
#include "core/snapshot.hh"
#include "workload/generator.hh"
#include "workload/prewarm.hh"

namespace srl
{
namespace runner
{

namespace
{

/** Pass through at most @p limit uops of the wrapped stream. */
class LimitStream : public isa::UopStream
{
  public:
    LimitStream(isa::UopStream &inner, std::uint64_t limit)
        : inner_(inner), limit_(limit)
    {
    }

    bool
    next(isa::Uop &out) override
    {
        if (taken_ >= limit_ || !inner_.next(out))
            return false;
        ++taken_;
        return true;
    }

    std::uint64_t taken() const { return taken_; }

  private:
    isa::UopStream &inner_;
    std::uint64_t limit_;
    std::uint64_t taken_ = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SampledResult
runSampled(const core::ProcessorConfig &config,
           const workload::SuiteProfile &suite,
           std::uint64_t total_uops, std::uint64_t seed_override,
           const SampledOptions &opts)
{
    const SampledPlan &plan = opts.plan;
    if (plan.detail_uops == 0)
        throw std::invalid_argument(
            "runSampled: plan.detail_uops must be > 0");

    const std::uint64_t interval_len = plan.intervalUops();
    const std::uint64_t num_intervals =
        (total_uops + interval_len - 1) / interval_len;
    if (opts.shard_start >= num_intervals)
        throw std::invalid_argument(
            "runSampled: shard_start beyond the last interval (" +
            std::to_string(num_intervals) + " intervals)");
    const std::uint64_t end_interval =
        opts.shard_count > num_intervals - opts.shard_start
            ? num_intervals
            : opts.shard_start + opts.shard_count;
    if (opts.shard_start > 0 && opts.ckpt_dir.empty())
        throw std::invalid_argument(
            "runSampled: sharded run needs a checkpoint directory");

    // Same seed plumbing as runOne: the effective config re-keys the
    // snoop stream, while the checkpoint context hashes the caller's
    // config (the seed travels separately in the context).
    core::ProcessorConfig cfg = config;
    if (seed_override)
        cfg.snoop_seed = splitmix64(seed_override ^ cfg.snoop_seed);
    const core::SnapshotContext ctx = core::makeSnapshotContext(
        config, suite, total_uops, seed_override, plan.ff_uops,
        plan.warm_uops, plan.detail_uops);

    // The generator is used directly (not through the stream cache):
    // sampled runs need its capture/restore cursor.
    workload::Generator gen(suite, total_uops, seed_override);
    core::SimState sim(cfg);
    core::FastForwardEngine ff(sim);
    core::SnapshotMeta meta;

    SampledResult result;

    if (opts.shard_start == 0) {
        // Warmed-cache methodology at uop zero, exactly as runOne.
        workload::prewarmCaches(suite, sim.hier);
    } else {
        const std::string path =
            opts.ckpt_dir + "/" +
            core::snapshotFileName(ctx, opts.shard_start);
        const core::LoadedSnapshot loaded =
            core::loadSnapshot(path, ctx, sim);
        if (loaded.meta.next_interval != opts.shard_start)
            throw core::SnapshotError(
                "snapshot: " + path + " resumes interval " +
                std::to_string(loaded.meta.next_interval) +
                ", expected " + std::to_string(opts.shard_start));
        meta = loaded.meta;
        gen.restoreState(loaded.gen);
    }

    // Fast-forward (and warm) up to the detail entry of interval @p k,
    // then checkpoint that entry point when a directory is configured.
    const auto advanceToDetail = [&](std::uint64_t k) {
        const std::uint64_t base = k * interval_len;
        const std::uint64_t ff_span =
            std::min(plan.ff_uops, total_uops - base);
        const std::uint64_t warm_span =
            std::min(plan.warm_uops, total_uops - base - ff_span);
        const auto t0 = std::chrono::steady_clock::now();
        meta.ff_done += ff.run(gen, ff_span, /*warm=*/false);
        meta.warm_done += ff.run(gen, warm_span, /*warm=*/true);
        result.ff_wall_s += secondsSince(t0);
        meta.consumed_uops = gen.emitted();
        meta.next_interval = k;
        if (!opts.ckpt_dir.empty()) {
            const std::string path = opts.ckpt_dir + "/" +
                                     core::snapshotFileName(ctx, k);
            core::saveSnapshot(path, ctx, meta, sim,
                               gen.captureState());
            result.ckpts_saved.push_back(path);
        }
    };

    for (std::uint64_t k = opts.shard_start; k < end_interval; ++k) {
        const bool restored_here =
            k == opts.shard_start && opts.shard_start > 0;
        if (!restored_here)
            advanceToDetail(k);

        const std::uint64_t detail_span =
            std::min(plan.detail_uops, total_uops - meta.consumed_uops);
        if (detail_span == 0)
            break;

        LimitStream seg(gen, detail_span);
        core::Processor cpu(cfg, seg, sim,
                            /*start_seq=*/meta.consumed_uops);

        const bool traced =
            opts.trace_interval >= 0 &&
            static_cast<std::uint64_t>(opts.trace_interval) == k;
        std::shared_ptr<obs::Recording> rec;
        obs::ProbeBus bus;
        if (traced) {
            rec = std::make_shared<obs::Recording>(
                opts.obs.ring_capacity, opts.obs.sample_every);
            rec->meta["config"] = config.name;
            rec->meta["suite"] = suite.name;
            rec->meta["uops"] = std::to_string(total_uops);
            rec->meta["seed"] = std::to_string(seed_override);
            rec->meta["interval"] = std::to_string(k);
            bus.attach(&rec->ring);
            cpu.attachProbeBus(&bus);
            if (opts.obs.sample_every > 0)
                cpu.attachSampler(&rec->sampler);
        }

        const auto t0 = std::chrono::steady_clock::now();
        const core::ProcessorStats &s = cpu.run();
        result.detail_wall_s += secondsSince(t0);

        if (rec) {
            rec->sampler.dropGauges();
            rec->meta["cycles"] = std::to_string(s.cycles);
            result.trace_json = obs::toChromeTrace(*rec);
        }

        cpu.exportState(sim);
        core::accumulateStats(meta.stats, s);
        meta.occupancy.merge(cpu.srlOccupancy());
        meta.detail_done += seg.taken();
        meta.consumed_uops = gen.emitted();
        meta.next_interval = k + 1;
        ++result.intervals_run;

        stats::RunRecord irec;
        irec.name = "interval_" + std::to_string(k);
        irec.meta["interval"] = std::to_string(k);
        irec.set("uops", static_cast<double>(s.committed_uops));
        irec.set("cycles", static_cast<double>(s.cycles));
        irec.set("ipc", s.ipc());
        result.interval_records.push_back(std::move(irec));
    }

    // Shard handoff: a shard that stops before the last interval also
    // fast-forwards into (and checkpoints) the next shard's entry
    // point, so a chain of shards needs no overlap to cover the run.
    if (end_interval < num_intervals && !opts.ckpt_dir.empty() &&
        end_interval * interval_len < total_uops &&
        meta.next_interval == end_interval)
        advanceToDetail(end_interval);

    result.stats = meta.stats;
    result.ff_uops = meta.ff_done;
    result.warm_uops = meta.warm_done;
    result.detail_uops = meta.detail_done;
    result.final_digest =
        core::snapshotDigest(ctx, meta, sim, gen.captureState());

    // Aggregate record, mirroring recordFromResult's field order so
    // sampled and detailed reports read alike.
    stats::RunRecord rec;
    rec.meta["config"] = config.name;
    rec.meta["suite"] = suite.name;
    rec.meta["run_seed"] = std::to_string(seed_override);
    rec.meta["plan"] = std::to_string(plan.ff_uops) + "/" +
                       std::to_string(plan.warm_uops) + "/" +
                       std::to_string(plan.detail_uops);

    const core::ProcessorStats &s = meta.stats;
    rec.set("uops", static_cast<double>(s.committed_uops));
    rec.set("cycles", static_cast<double>(s.cycles));
    rec.set("ipc", s.ipc());
    rec.set("committed_loads", static_cast<double>(s.committed_loads));
    rec.set("committed_stores",
            static_cast<double>(s.committed_stores));
    rec.set("mem_misses", static_cast<double>(s.mem_misses));
    rec.set("branch_mispredicts",
            static_cast<double>(s.branch_mispredicts));
    rec.set("mem_violations", static_cast<double>(s.mem_violations));
    rec.set("snoop_violations",
            static_cast<double>(s.snoop_violations));
    rec.set("overflow_violations",
            static_cast<double>(s.overflow_violations));
    rec.set("slice_uops", static_cast<double>(s.slice_uops));

    if (config.model == core::StqModel::kSrl) {
        const auto stores = s.committed_stores;
        rec.set("pct_stores_redone",
                stores ? 100.0 * static_cast<double>(s.redone_stores) /
                             static_cast<double>(stores)
                       : 0.0);
        rec.set("pct_miss_dep_stores",
                stores ? 100.0 *
                             static_cast<double>(s.poisoned_stores) /
                             static_cast<double>(stores)
                       : 0.0);
        rec.set("pct_miss_dep_uops",
                s.committed_uops
                    ? 100.0 * static_cast<double>(s.slice_uops) /
                          static_cast<double>(s.committed_uops)
                    : 0.0);
        rec.set("srl_stalls_per_10k",
                s.committed_uops
                    ? 1e4 * static_cast<double>(s.srl_stalled_loads) /
                          static_cast<double>(s.committed_uops)
                    : 0.0);
        rec.set("pct_time_srl_occupied",
                meta.occupancy.percentOccupied());
        for (const auto t : core::figure7Thresholds())
            rec.set("srl_occupancy_above_" + std::to_string(t),
                    meta.occupancy.percentAbove(t));
    }

    rec.set("sampled_ff_uops", static_cast<double>(meta.ff_done));
    rec.set("sampled_warm_uops", static_cast<double>(meta.warm_done));
    rec.set("sampled_detail_uops",
            static_cast<double>(meta.detail_done));
    // Cumulative across shards (a tail shard's record equals the
    // straight run's), unlike result.intervals_run which is local.
    rec.set("sampled_intervals",
            static_cast<double>(meta.next_interval));
    result.record = std::move(rec);
    return result;
}

} // namespace runner
} // namespace srl
