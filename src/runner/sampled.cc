#include "runner/sampled.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/random.hh"
#include "core/fast_forward.hh"
#include "core/sim_state.hh"
#include "core/simulator.hh"
#include "core/snapshot.hh"
#include "runner/thread_pool.hh"
#include "workload/generator.hh"
#include "workload/prewarm.hh"

namespace srl
{
namespace runner
{

namespace
{

/** Pass through at most @p limit uops of the wrapped stream. */
class LimitStream : public isa::UopStream
{
  public:
    LimitStream(isa::UopStream &inner, std::uint64_t limit)
        : inner_(inner), limit_(limit)
    {
    }

    bool
    next(isa::Uop &out) override
    {
        if (taken_ >= limit_ || !inner_.next(out))
            return false;
        ++taken_;
        return true;
    }

    std::uint64_t taken() const { return taken_; }

  private:
    isa::UopStream &inner_;
    std::uint64_t limit_;
    std::uint64_t taken_ = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Keep-last-K pruning of interval checkpoints written by one run.
 * Pinned saves (shard handoff points — the next shard's entry) are
 * never pruned; keep == 0 disables pruning entirely.
 */
class CkptRetention
{
  public:
    explicit CkptRetention(std::uint64_t keep) : keep_(keep) {}

    void
    saved(const std::string &path, bool pinned)
    {
        if (keep_ == 0 || pinned)
            return;
        deletable_.push_back(path);
        while (deletable_.size() > keep_) {
            std::remove(deletable_.front().c_str());
            deletable_.pop_front();
        }
    }

  private:
    std::uint64_t keep_;
    std::deque<std::string> deletable_;
};

/**
 * Aggregate record over the detailed intervals, mirroring
 * recordFromResult's field order so sampled and detailed reports read
 * alike. Shared by the chained and pipelined drivers; @p pipelined
 * marks the record so the two modes (whose numbers legitimately
 * differ) are never mistaken for each other.
 */
stats::RunRecord
aggregateRecord(const core::ProcessorConfig &config,
                const workload::SuiteProfile &suite,
                std::uint64_t seed_override, const SampledPlan &plan,
                const core::SnapshotMeta &meta, bool pipelined)
{
    stats::RunRecord rec;
    rec.meta["config"] = config.name;
    rec.meta["suite"] = suite.name;
    rec.meta["run_seed"] = std::to_string(seed_override);
    rec.meta["plan"] = std::to_string(plan.ff_uops) + "/" +
                       std::to_string(plan.warm_uops) + "/" +
                       std::to_string(plan.detail_uops);
    if (pipelined)
        rec.meta["pipelined"] = "1";

    const core::ProcessorStats &s = meta.stats;
    rec.set("uops", static_cast<double>(s.committed_uops));
    rec.set("cycles", static_cast<double>(s.cycles));
    rec.set("ipc", s.ipc());
    rec.set("committed_loads", static_cast<double>(s.committed_loads));
    rec.set("committed_stores",
            static_cast<double>(s.committed_stores));
    rec.set("mem_misses", static_cast<double>(s.mem_misses));
    rec.set("branch_mispredicts",
            static_cast<double>(s.branch_mispredicts));
    rec.set("mem_violations", static_cast<double>(s.mem_violations));
    rec.set("snoop_violations",
            static_cast<double>(s.snoop_violations));
    rec.set("overflow_violations",
            static_cast<double>(s.overflow_violations));
    rec.set("slice_uops", static_cast<double>(s.slice_uops));

    if (config.model == core::StqModel::kSrl) {
        const auto stores = s.committed_stores;
        rec.set("pct_stores_redone",
                stores ? 100.0 * static_cast<double>(s.redone_stores) /
                             static_cast<double>(stores)
                       : 0.0);
        rec.set("pct_miss_dep_stores",
                stores ? 100.0 *
                             static_cast<double>(s.poisoned_stores) /
                             static_cast<double>(stores)
                       : 0.0);
        rec.set("pct_miss_dep_uops",
                s.committed_uops
                    ? 100.0 * static_cast<double>(s.slice_uops) /
                          static_cast<double>(s.committed_uops)
                    : 0.0);
        rec.set("srl_stalls_per_10k",
                s.committed_uops
                    ? 1e4 * static_cast<double>(s.srl_stalled_loads) /
                          static_cast<double>(s.committed_uops)
                    : 0.0);
        rec.set("pct_time_srl_occupied",
                meta.occupancy.percentOccupied());
        for (const auto t : core::figure7Thresholds())
            rec.set("srl_occupancy_above_" + std::to_string(t),
                    meta.occupancy.percentAbove(t));
    }

    rec.set("sampled_ff_uops", static_cast<double>(meta.ff_done));
    rec.set("sampled_warm_uops", static_cast<double>(meta.warm_done));
    rec.set("sampled_detail_uops",
            static_cast<double>(meta.detail_done));
    // Cumulative across shards (a tail shard's record equals the
    // straight run's), unlike result.intervals_run which is local.
    rec.set("sampled_intervals",
            static_cast<double>(meta.next_interval));
    return rec;
}

/** Per-interval row ("interval_<k>": uops / cycles / ipc). */
stats::RunRecord
intervalRecord(std::uint64_t k, const core::ProcessorStats &s)
{
    stats::RunRecord irec;
    irec.name = "interval_" + std::to_string(k);
    irec.meta["interval"] = std::to_string(k);
    irec.set("uops", static_cast<double>(s.committed_uops));
    irec.set("cycles", static_cast<double>(s.cycles));
    irec.set("ipc", s.ipc());
    return irec;
}

/**
 * Per-interval snoop stream key, pipelined mode: intervals are
 * independent units of work, so each one draws external snoops from
 * its own deterministically derived cursor instead of chaining one
 * cursor through the run (which would serialize the intervals).
 */
std::uint64_t
pipelinedSnoopCursor(std::uint64_t snoop_seed, std::uint64_t interval)
{
    return Random(splitmix64(snoop_seed ^
                             splitmix64(interval + 1)))
        .rawState();
}

// ------------------------------------------------------------------
// Pipelined mode plumbing
// ------------------------------------------------------------------

/** One checkpoint handed from the producer to a detail worker. */
struct WorkItem
{
    std::uint64_t interval = 0;
    std::uint64_t detail_span = 0;
    std::uint64_t start_seq = 0;
    std::string payload; ///< srlsim-ckpt-v1 payload bytes
};

/** What one detail worker produced for one interval. */
struct IntervalOutcome
{
    core::ProcessorStats stats;
    stats::Occupancy occupancy;
    std::uint64_t taken = 0;
    double wall_s = 0.0;
    std::string trace_json;
};

/**
 * Shared state of one pipelined run: the bounded checkpoint queue
 * (producer -> workers), the result map (workers -> stitcher), the
 * recycled-buffer pool, and failure propagation. All waits carry the
 * abort predicate so one failing thread releases every other.
 */
class Pipeline
{
  public:
    explicit Pipeline(std::size_t capacity) : capacity_(capacity) {}

    /** Producer: block until there is queue space, then enqueue.
     * @return false when the run aborted meanwhile. */
    bool
    push(WorkItem &&item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        space_cv_.wait(lock, [this] {
            return aborted_ || queue_.size() < capacity_;
        });
        if (aborted_)
            return false;
        queue_.push_back(std::move(item));
        ++produced_;
        items_cv_.notify_one();
        return true;
    }

    /** Producer: no more items will be pushed. */
    void
    finishProducing()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        closed_ = true;
        items_cv_.notify_all();
        results_cv_.notify_all();
    }

    /** Worker: dequeue the next checkpoint.
     * @return false when the queue is drained-and-closed or the run
     * aborted. */
    bool
    pop(WorkItem &item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        items_cv_.wait(lock, [this] {
            return aborted_ || closed_ || !queue_.empty();
        });
        if (aborted_ || queue_.empty())
            return false;
        item = std::move(queue_.front());
        queue_.pop_front();
        space_cv_.notify_one();
        return true;
    }

    /** Worker: post interval @p k's outcome for the stitcher. */
    void
    post(std::uint64_t k, IntervalOutcome &&outcome)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        results_[k] = std::move(outcome);
        results_cv_.notify_all();
    }

    /**
     * Stitcher: wait for interval @p k's outcome. @return false when
     * no outcome will ever arrive (producer finished below k, or the
     * run aborted).
     */
    bool
    await(std::uint64_t k, IntervalOutcome &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        results_cv_.wait(lock, [this, k] {
            return aborted_ || results_.count(k) != 0 ||
                   (closed_ && k >= produced_);
        });
        const auto it = results_.find(k);
        if (it == results_.end())
            return false;
        out = std::move(it->second);
        results_.erase(it);
        return true;
    }

    /** Any thread: record the first failure and release everyone. */
    void
    fail(std::exception_ptr e)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!error_)
            error_ = std::move(e);
        aborted_ = true;
        space_cv_.notify_all();
        items_cv_.notify_all();
        results_cv_.notify_all();
    }

    bool
    aborted() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return aborted_;
    }

    /** After all threads joined: rethrow the first failure, if any. */
    void
    rethrowIfFailed()
    {
        if (error_)
            std::rethrow_exception(error_);
    }

    /** Recycle a payload buffer (keeps its capacity). */
    void
    recycle(std::string &&buf)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        pool_.push_back(std::move(buf));
    }

    /** Get a recycled payload buffer ("" on a cold pool). */
    std::string
    buffer()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (pool_.empty())
            return {};
        std::string buf = std::move(pool_.back());
        pool_.pop_back();
        return buf;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable space_cv_;   // producer waits for room
    std::condition_variable items_cv_;   // workers wait for items
    std::condition_variable results_cv_; // stitcher waits for results
    std::deque<WorkItem> queue_;
    std::size_t capacity_;
    std::uint64_t produced_ = 0;
    bool closed_ = false;
    bool aborted_ = false;
    std::exception_ptr error_;
    std::map<std::uint64_t, IntervalOutcome> results_;
    std::vector<std::string> pool_;
};

} // namespace

SampledResult
runSampled(const core::ProcessorConfig &config,
           const workload::SuiteProfile &suite,
           std::uint64_t total_uops, std::uint64_t seed_override,
           const SampledOptions &opts)
{
    if (opts.sample_jobs > 0)
        return runSampledPipelined(config, suite, total_uops,
                                   seed_override, opts);

    const SampledPlan &plan = opts.plan;
    if (plan.detail_uops == 0)
        throw std::invalid_argument(
            "runSampled: plan.detail_uops must be > 0");

    const std::uint64_t interval_len = plan.intervalUops();
    const std::uint64_t num_intervals =
        (total_uops + interval_len - 1) / interval_len;
    if (opts.shard_start >= num_intervals)
        throw std::invalid_argument(
            "runSampled: shard_start beyond the last interval (" +
            std::to_string(num_intervals) + " intervals)");
    const std::uint64_t end_interval =
        opts.shard_count > num_intervals - opts.shard_start
            ? num_intervals
            : opts.shard_start + opts.shard_count;
    if (opts.shard_start > 0 && opts.ckpt_dir.empty())
        throw std::invalid_argument(
            "runSampled: sharded run needs a checkpoint directory");

    // Same seed plumbing as runOne: the effective config re-keys the
    // snoop stream, while the checkpoint context hashes the caller's
    // config (the seed travels separately in the context).
    core::ProcessorConfig cfg = config;
    if (seed_override)
        cfg.snoop_seed = splitmix64(seed_override ^ cfg.snoop_seed);
    const core::SnapshotContext ctx = core::makeSnapshotContext(
        config, suite, total_uops, seed_override, plan.ff_uops,
        plan.warm_uops, plan.detail_uops);

    // The generator is used directly (not through the stream cache):
    // sampled runs need its capture/restore cursor.
    workload::Generator gen(suite, total_uops, seed_override);
    core::SimState sim(cfg);
    core::FastForwardEngine ff(sim);
    core::SnapshotMeta meta;
    CkptRetention retention(opts.ckpt_keep_last);

    SampledResult result;

    if (opts.shard_start == 0) {
        // Warmed-cache methodology at uop zero, exactly as runOne.
        workload::prewarmCaches(suite, sim.hier);
    } else {
        const std::string path =
            opts.ckpt_dir + "/" +
            core::snapshotFileName(ctx, opts.shard_start);
        const core::LoadedSnapshot loaded =
            core::loadSnapshot(path, ctx, sim);
        if (loaded.meta.next_interval != opts.shard_start)
            throw core::SnapshotError(
                "snapshot: " + path + " resumes interval " +
                std::to_string(loaded.meta.next_interval) +
                ", expected " + std::to_string(opts.shard_start));
        meta = loaded.meta;
        gen.restoreState(loaded.gen);
    }

    // Fast-forward (and warm) up to the detail entry of interval @p k,
    // then checkpoint that entry point when a directory is configured.
    // The shard handoff checkpoint is pinned against retention: it is
    // the next shard's entry point.
    const auto advanceToDetail = [&](std::uint64_t k, bool handoff) {
        const std::uint64_t base = k * interval_len;
        const std::uint64_t ff_span =
            std::min(plan.ff_uops, total_uops - base);
        const std::uint64_t warm_span =
            std::min(plan.warm_uops, total_uops - base - ff_span);
        const auto t0 = std::chrono::steady_clock::now();
        meta.ff_done += ff.run(gen, ff_span, /*warm=*/false);
        meta.warm_done += ff.run(gen, warm_span, /*warm=*/true);
        result.ff_wall_s += secondsSince(t0);
        meta.consumed_uops = gen.emitted();
        meta.next_interval = k;
        if (!opts.ckpt_dir.empty()) {
            const std::string path = opts.ckpt_dir + "/" +
                                     core::snapshotFileName(ctx, k);
            core::saveSnapshot(path, ctx, meta, sim,
                               gen.captureState());
            result.ckpts_saved.push_back(path);
            retention.saved(path, handoff);
        }
    };

    for (std::uint64_t k = opts.shard_start; k < end_interval; ++k) {
        const bool restored_here =
            k == opts.shard_start && opts.shard_start > 0;
        if (!restored_here)
            advanceToDetail(k, /*handoff=*/false);

        const std::uint64_t detail_span =
            std::min(plan.detail_uops, total_uops - meta.consumed_uops);
        if (detail_span == 0)
            break;

        LimitStream seg(gen, detail_span);
        core::Processor cpu(cfg, seg, sim,
                            /*start_seq=*/meta.consumed_uops);

        const bool traced =
            opts.trace_interval >= 0 &&
            static_cast<std::uint64_t>(opts.trace_interval) == k;
        std::shared_ptr<obs::Recording> rec;
        obs::ProbeBus bus;
        if (traced) {
            rec = std::make_shared<obs::Recording>(
                opts.obs.ring_capacity, opts.obs.sample_every);
            rec->meta["config"] = config.name;
            rec->meta["suite"] = suite.name;
            rec->meta["uops"] = std::to_string(total_uops);
            rec->meta["seed"] = std::to_string(seed_override);
            rec->meta["interval"] = std::to_string(k);
            bus.attach(&rec->ring);
            cpu.attachProbeBus(&bus);
            if (opts.obs.sample_every > 0)
                cpu.attachSampler(&rec->sampler);
        }

        const auto t0 = std::chrono::steady_clock::now();
        const core::ProcessorStats &s = cpu.run();
        result.detail_wall_s += secondsSince(t0);

        if (rec) {
            rec->sampler.dropGauges();
            rec->meta["cycles"] = std::to_string(s.cycles);
            result.trace_json = obs::toChromeTrace(*rec);
        }

        cpu.exportState(sim);
        core::accumulateStats(meta.stats, s);
        meta.occupancy.merge(cpu.srlOccupancy());
        meta.detail_done += seg.taken();
        meta.consumed_uops = gen.emitted();
        meta.next_interval = k + 1;
        ++result.intervals_run;

        result.interval_records.push_back(intervalRecord(k, s));
    }

    // Shard handoff: a shard that stops before the last interval also
    // fast-forwards into (and checkpoints) the next shard's entry
    // point, so a chain of shards needs no overlap to cover the run.
    if (end_interval < num_intervals && !opts.ckpt_dir.empty() &&
        end_interval * interval_len < total_uops &&
        meta.next_interval == end_interval)
        advanceToDetail(end_interval, /*handoff=*/true);

    result.stats = meta.stats;
    result.ff_uops = meta.ff_done;
    result.warm_uops = meta.warm_done;
    result.detail_uops = meta.detail_done;
    result.final_digest =
        core::snapshotDigest(ctx, meta, sim, gen.captureState());
    result.record = aggregateRecord(config, suite, seed_override, plan,
                                    meta, /*pipelined=*/false);
    return result;
}

SampledResult
runSampledPipelined(const core::ProcessorConfig &config,
                    const workload::SuiteProfile &suite,
                    std::uint64_t total_uops,
                    std::uint64_t seed_override,
                    const SampledOptions &opts)
{
    const SampledPlan &plan = opts.plan;
    if (plan.detail_uops == 0)
        throw std::invalid_argument(
            "runSampledPipelined: plan.detail_uops must be > 0");
    if (opts.shard_start != 0 ||
        opts.shard_count != ~std::uint64_t{0})
        throw std::invalid_argument(
            "runSampledPipelined: sharding is a chained-mode feature "
            "(pipelined runs cover the whole run)");

    const std::uint64_t interval_len = plan.intervalUops();
    const std::uint64_t num_intervals =
        (total_uops + interval_len - 1) / interval_len;
    const unsigned jobs = std::max(1u, opts.sample_jobs);
    const std::size_t capacity =
        opts.queue_capacity ? opts.queue_capacity
                            : 2 * static_cast<std::size_t>(jobs) + 2;

    // Seed plumbing as in the chained driver; ctx identifies the run
    // inside every checkpoint payload the producer emits.
    core::ProcessorConfig cfg = config;
    if (seed_override)
        cfg.snoop_seed = splitmix64(seed_override ^ cfg.snoop_seed);
    const core::SnapshotContext ctx = core::makeSnapshotContext(
        config, suite, total_uops, seed_override, plan.ff_uops,
        plan.warm_uops, plan.detail_uops);

    // Producer-side state lives on this frame so the final digest can
    // be computed after every thread has been joined.
    workload::Generator gen(suite, total_uops, seed_override);
    core::SimState sim(cfg);
    core::FastForwardEngine ff(sim);
    core::SnapshotMeta pmeta; // producer cursor (stats stay zero)
    CkptRetention retention(opts.ckpt_keep_last);
    std::vector<std::string> ckpts_saved;
    double producer_wall_s = 0.0;

    Pipeline pipe(capacity);
    SampledResult result;

    // ---- producer: continuous fast-forward + snapshot emission ----
    const auto producerFn = [&]() {
        try {
            const auto t0 = std::chrono::steady_clock::now();
            workload::prewarmCaches(suite, sim.hier);
            for (std::uint64_t k = 0; k < num_intervals; ++k) {
                const std::uint64_t base = k * interval_len;
                const std::uint64_t ff_span =
                    std::min(plan.ff_uops, total_uops - base);
                const std::uint64_t warm_span = std::min(
                    plan.warm_uops, total_uops - base - ff_span);
                pmeta.ff_done += ff.run(gen, ff_span, /*warm=*/false);
                pmeta.warm_done +=
                    ff.run(gen, warm_span, /*warm=*/true);
                pmeta.consumed_uops = gen.emitted();
                pmeta.next_interval = k;
                const std::uint64_t detail_span = std::min(
                    plan.detail_uops, total_uops - pmeta.consumed_uops);
                if (detail_span == 0)
                    break;

                // Each interval draws snoops from its own derived
                // cursor: intervals are independent units of work, so
                // no cursor chains through the detailed segments.
                sim.snoop_rng_state =
                    pipelinedSnoopCursor(cfg.snoop_seed, k);
                sim.snoop_payload = (k + 1) << 32;

                std::string payload = core::buildSnapshotPayload(
                    ctx, pmeta, sim, gen.captureState(),
                    pipe.buffer());
                if (!opts.ckpt_dir.empty()) {
                    const std::string path =
                        opts.ckpt_dir + "/" +
                        core::snapshotFileName(ctx, k,
                                               /*pipelined=*/true);
                    core::writeSnapshotPayload(path, payload);
                    ckpts_saved.push_back(path);
                    retention.saved(path, /*pinned=*/false);
                }
                if (!pipe.push(WorkItem{k, detail_span,
                                        pmeta.consumed_uops,
                                        std::move(payload)}))
                    break; // aborted

                // Advance through the detail span functionally (with
                // warming) so interval k+1's entry state has seen it;
                // the workers' detailed runs of the span never feed
                // back. These uops are accounted as detail coverage
                // by the workers, not as ff/warm.
                ff.run(gen, detail_span, /*warm=*/true);
            }
            producer_wall_s = secondsSince(t0);
        } catch (...) {
            pipe.fail(std::current_exception());
        }
        pipe.finishProducing();
    };

    // ---- detail workers: adopt a checkpoint, run the interval ----
    const auto workerFn = [&]() {
        try {
            core::SimState wsim(cfg);
            workload::Generator wgen(suite, total_uops, seed_override);
            WorkItem item;
            while (pipe.pop(item)) {
                if (opts.worker_start_hook)
                    opts.worker_start_hook(item.interval);
                const core::LoadedSnapshot loaded =
                    core::adoptSnapshotPayload(item.payload, ctx,
                                               wsim);
                wgen.restoreState(loaded.gen);
                pipe.recycle(std::move(item.payload));

                LimitStream seg(wgen, item.detail_span);
                core::Processor cpu(cfg, seg, wsim,
                                    /*start_seq=*/item.start_seq);

                const bool traced =
                    opts.trace_interval >= 0 &&
                    static_cast<std::uint64_t>(opts.trace_interval) ==
                        item.interval;
                std::shared_ptr<obs::Recording> rec;
                obs::ProbeBus bus;
                if (traced) {
                    rec = std::make_shared<obs::Recording>(
                        opts.obs.ring_capacity,
                        opts.obs.sample_every);
                    rec->meta["config"] = config.name;
                    rec->meta["suite"] = suite.name;
                    rec->meta["uops"] = std::to_string(total_uops);
                    rec->meta["seed"] =
                        std::to_string(seed_override);
                    rec->meta["interval"] =
                        std::to_string(item.interval);
                    bus.attach(&rec->ring);
                    cpu.attachProbeBus(&bus);
                    if (opts.obs.sample_every > 0)
                        cpu.attachSampler(&rec->sampler);
                }

                const auto t0 = std::chrono::steady_clock::now();
                const core::ProcessorStats &s = cpu.run();

                IntervalOutcome out;
                out.wall_s = secondsSince(t0);
                out.stats = s;
                out.occupancy = cpu.srlOccupancy();
                out.taken = seg.taken();
                if (rec) {
                    rec->sampler.dropGauges();
                    rec->meta["cycles"] = std::to_string(s.cycles);
                    out.trace_json = obs::toChromeTrace(*rec);
                }
                pipe.post(item.interval, std::move(out));
            }
        } catch (...) {
            pipe.fail(std::current_exception());
        }
    };

    // ---- run the pipeline; this thread is the stitcher ----
    core::SnapshotMeta meta; // aggregate, assembled in interval order
    {
        std::thread producer(producerFn);
        {
            ThreadPool workers(jobs);
            for (unsigned i = 0; i < jobs; ++i)
                workers.submit(workerFn);

            IntervalOutcome out;
            for (std::uint64_t k = 0; pipe.await(k, out); ++k) {
                core::accumulateStats(meta.stats, out.stats);
                meta.occupancy.merge(out.occupancy);
                meta.detail_done += out.taken;
                meta.next_interval = k + 1;
                result.detail_wall_s += out.wall_s;
                ++result.intervals_run;
                result.interval_records.push_back(
                    intervalRecord(k, out.stats));
                if (!out.trace_json.empty())
                    result.trace_json = std::move(out.trace_json);
            }
            workers.wait();
        } // joins the worker threads
        producer.join();
    }
    pipe.rethrowIfFailed();

    // Cursor totals come from the producer; its state (which has
    // fast-forwarded the entire stream) anchors the final digest.
    meta.ff_done = pmeta.ff_done;
    meta.warm_done = pmeta.warm_done;
    meta.consumed_uops = gen.emitted();

    result.stats = meta.stats;
    result.ff_uops = meta.ff_done;
    result.warm_uops = meta.warm_done;
    result.detail_uops = meta.detail_done;
    result.ff_wall_s = producer_wall_s;
    result.ckpts_saved = std::move(ckpts_saved);
    result.final_digest =
        core::snapshotDigest(ctx, meta, sim, gen.captureState());
    result.record = aggregateRecord(config, suite, seed_override, plan,
                                    meta, /*pipelined=*/true);
    return result;
}

} // namespace runner
} // namespace srl
