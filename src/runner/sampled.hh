/**
 * @file
 * Sampled-simulation driver: interleaves functional fast-forward with
 * cycle-accurate detailed intervals (SimPoint-style systematic
 * sampling) so billion-uop workloads finish in minutes instead of
 * hours.
 *
 * A run of `total_uops` is cut into intervals of
 * `ff_uops + warm_uops + detail_uops`. Each interval fast-forwards
 * the first span functionally (architectural memory only), then the
 * warm span functionally *with* cache/predictor warming, then runs the
 * detail span on the full out-of-order model against the persistent
 * SimState. Detailed-segment statistics are summed into the aggregate
 * record; the fast-forwarded spans contribute no cycles.
 *
 * Checkpointing: with a checkpoint directory set, the state at each
 * detail-segment entry (post-warm) is saved as an `srlsim-ckpt-v1`
 * file, and a sharded run (`shard_start > 0`) restores that file
 * instead of re-fast-forwarding — restore-then-run is byte-identical
 * to the straight-through sampled run (stats JSON and trace), which
 * tests/test_sampled.cc and CI enforce. This lets a sweep service farm
 * the detailed intervals of one long run out to independent workers.
 *
 * Semantics note (DESIGN.md §14): external snoop traffic is
 * cycle-driven and therefore only occurs inside detailed intervals;
 * the snoop RNG cursor persists across segments via SimState.
 */

#ifndef SRLSIM_RUNNER_SAMPLED_HH
#define SRLSIM_RUNNER_SAMPLED_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/chash.hh"
#include "common/stats.hh"
#include "core/config.hh"
#include "core/processor.hh"
#include "obs/export.hh"
#include "workload/profile.hh"

namespace srl
{
namespace runner
{

/** Per-interval uop budget of a sampled run. */
struct SampledPlan
{
    std::uint64_t ff_uops = 0;     ///< pure functional span
    std::uint64_t warm_uops = 0;   ///< functional span with warming
    std::uint64_t detail_uops = 0; ///< cycle-accurate span (required)

    std::uint64_t
    intervalUops() const
    {
        return ff_uops + warm_uops + detail_uops;
    }
};

struct SampledOptions
{
    SampledPlan plan;

    /**
     * When non-empty, save an `srlsim-ckpt-v1` checkpoint at every
     * detail-segment entry (and load from here when sharded).
     */
    std::string ckpt_dir;

    /**
     * Shard selection: run detailed intervals
     * [shard_start, shard_start + shard_count). A non-zero shard_start
     * requires the matching checkpoint in ckpt_dir — the driver never
     * silently falls back to re-fast-forwarding.
     */
    std::uint64_t shard_start = 0;
    std::uint64_t shard_count = ~std::uint64_t{0};

    /**
     * When >= 0, capture a Chrome trace (srlsim-trace-v1) of that
     * detailed interval, per @p obs (its `enabled` flag is ignored).
     */
    std::int64_t trace_interval = -1;
    obs::ObsConfig obs;

    /**
     * Pipelined parallel execution (DESIGN.md §15). 0 (the default)
     * keeps the chained serial interval loop above. >= 1 switches to
     * *independent-interval* semantics: a producer thread runs the
     * functional/warm fast-forward continuously over the whole
     * stream, snapshotting the state at every detail-entry point into
     * an in-memory byte buffer; a pool of this many detail workers
     * each adopt a snapshot into a private SimState and run their
     * interval; a stitcher assembles per-interval records in interval
     * order. Results are byte-identical for every value >= 1 (stats
     * JSON, trace, final digest) — but deliberately *not* identical
     * to the chained mode, whose intervals feed each other's
     * microarchitectural state and therefore cannot overlap.
     * Pipelined runs do not support sharding (shard_start must be 0).
     */
    unsigned sample_jobs = 0;

    /**
     * Pipelined mode: bound on snapshots buffered between the
     * producer and the detail workers. The producer blocks when the
     * queue is full (backpressure), so a slow worker pool never makes
     * the run accumulate unbounded state. 0 = 2 * sample_jobs + 2.
     */
    std::size_t queue_capacity = 0;

    /**
     * Checkpoint-directory retention: keep only the most recent K
     * interval checkpoints written by this run (0 = keep all, the
     * default). The shard-handoff checkpoint — the next shard's entry
     * point — is always kept regardless of K.
     */
    std::uint64_t ckpt_keep_last = 0;

    /**
     * Test-only hook, pipelined mode: a detail worker invokes this
     * with the interval number just before simulating it. Used to
     * inject slow (or failing) workers in the backpressure stress
     * tests. Must be thread-safe; an exception thrown here aborts the
     * run like any other worker failure.
     */
    std::function<void(std::uint64_t)> worker_start_hook;
};

/** Everything a sampled run produces. */
struct SampledResult
{
    /** Aggregate record over all detailed intervals run. */
    stats::RunRecord record;
    /** One record per detailed interval, in interval order. */
    std::vector<stats::RunRecord> interval_records;
    /** srlsim-trace-v1 JSON of the traced interval ("" if none). */
    std::string trace_json;
    /** Paths of checkpoints written, in interval order. */
    std::vector<std::string> ckpts_saved;

    /** Accumulated detailed-segment statistics. */
    core::ProcessorStats stats;
    std::uint64_t ff_uops = 0;     ///< uops fast-forwarded (pure)
    std::uint64_t warm_uops = 0;   ///< uops fast-forwarded warming
    std::uint64_t detail_uops = 0; ///< uops simulated in detail
    std::uint64_t intervals_run = 0;

    /**
     * Host wall-clock split (seconds). In pipelined mode ff_wall_s is
     * the producer thread's total wall (fast-forward + snapshot
     * serialization) and detail_wall_s is the *sum* of per-worker
     * interval walls; the two overlap, so they exceed the end-to-end
     * wall time by design.
     */
    double ff_wall_s = 0.0;
    double detail_wall_s = 0.0;

    /**
     * Digest of the final simulator state (the fast-forward
     * determinism hash: same config/suite/seed/plan => same digest).
     */
    chash::Hash128 final_digest;
};

/**
 * Run (config, suite) for @p total_uops under the sampling plan in
 * @p opts. Seed semantics match core::runOne: non-zero
 * @p seed_override replaces the suite's workload seed and re-keys the
 * snoop stream. Throws core::SnapshotError on checkpoint problems and
 * std::invalid_argument on a malformed plan/shard.
 *
 * With opts.sample_jobs >= 1 this dispatches to
 * runSampledPipelined().
 */
SampledResult runSampled(const core::ProcessorConfig &config,
                         const workload::SuiteProfile &suite,
                         std::uint64_t total_uops,
                         std::uint64_t seed_override,
                         const SampledOptions &opts);

/**
 * Pipelined, multi-worker sampled run (independent-interval
 * semantics, DESIGN.md §15): fast-forward producer + sample_jobs
 * detail workers + in-order stitcher. opts.sample_jobs of 0 is
 * treated as 1. Results are byte-identical across every worker
 * count; runSampled() dispatches here when opts.sample_jobs >= 1.
 * @throws std::invalid_argument on a malformed plan or a sharded
 * request (pipelined runs cover the whole run).
 */
SampledResult runSampledPipelined(const core::ProcessorConfig &config,
                                  const workload::SuiteProfile &suite,
                                  std::uint64_t total_uops,
                                  std::uint64_t seed_override,
                                  const SampledOptions &opts);

} // namespace runner
} // namespace srl

#endif // SRLSIM_RUNNER_SAMPLED_HH
