/**
 * @file
 * Sampled-simulation driver: interleaves functional fast-forward with
 * cycle-accurate detailed intervals (SimPoint-style systematic
 * sampling) so billion-uop workloads finish in minutes instead of
 * hours.
 *
 * A run of `total_uops` is cut into intervals of
 * `ff_uops + warm_uops + detail_uops`. Each interval fast-forwards
 * the first span functionally (architectural memory only), then the
 * warm span functionally *with* cache/predictor warming, then runs the
 * detail span on the full out-of-order model against the persistent
 * SimState. Detailed-segment statistics are summed into the aggregate
 * record; the fast-forwarded spans contribute no cycles.
 *
 * Checkpointing: with a checkpoint directory set, the state at each
 * detail-segment entry (post-warm) is saved as an `srlsim-ckpt-v1`
 * file, and a sharded run (`shard_start > 0`) restores that file
 * instead of re-fast-forwarding — restore-then-run is byte-identical
 * to the straight-through sampled run (stats JSON and trace), which
 * tests/test_sampled.cc and CI enforce. This lets a sweep service farm
 * the detailed intervals of one long run out to independent workers.
 *
 * Semantics note (DESIGN.md §14): external snoop traffic is
 * cycle-driven and therefore only occurs inside detailed intervals;
 * the snoop RNG cursor persists across segments via SimState.
 */

#ifndef SRLSIM_RUNNER_SAMPLED_HH
#define SRLSIM_RUNNER_SAMPLED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/chash.hh"
#include "common/stats.hh"
#include "core/config.hh"
#include "core/processor.hh"
#include "obs/export.hh"
#include "workload/profile.hh"

namespace srl
{
namespace runner
{

/** Per-interval uop budget of a sampled run. */
struct SampledPlan
{
    std::uint64_t ff_uops = 0;     ///< pure functional span
    std::uint64_t warm_uops = 0;   ///< functional span with warming
    std::uint64_t detail_uops = 0; ///< cycle-accurate span (required)

    std::uint64_t
    intervalUops() const
    {
        return ff_uops + warm_uops + detail_uops;
    }
};

struct SampledOptions
{
    SampledPlan plan;

    /**
     * When non-empty, save an `srlsim-ckpt-v1` checkpoint at every
     * detail-segment entry (and load from here when sharded).
     */
    std::string ckpt_dir;

    /**
     * Shard selection: run detailed intervals
     * [shard_start, shard_start + shard_count). A non-zero shard_start
     * requires the matching checkpoint in ckpt_dir — the driver never
     * silently falls back to re-fast-forwarding.
     */
    std::uint64_t shard_start = 0;
    std::uint64_t shard_count = ~std::uint64_t{0};

    /**
     * When >= 0, capture a Chrome trace (srlsim-trace-v1) of that
     * detailed interval, per @p obs (its `enabled` flag is ignored).
     */
    std::int64_t trace_interval = -1;
    obs::ObsConfig obs;
};

/** Everything a sampled run produces. */
struct SampledResult
{
    /** Aggregate record over all detailed intervals run. */
    stats::RunRecord record;
    /** One record per detailed interval, in interval order. */
    std::vector<stats::RunRecord> interval_records;
    /** srlsim-trace-v1 JSON of the traced interval ("" if none). */
    std::string trace_json;
    /** Paths of checkpoints written, in interval order. */
    std::vector<std::string> ckpts_saved;

    /** Accumulated detailed-segment statistics. */
    core::ProcessorStats stats;
    std::uint64_t ff_uops = 0;     ///< uops fast-forwarded (pure)
    std::uint64_t warm_uops = 0;   ///< uops fast-forwarded warming
    std::uint64_t detail_uops = 0; ///< uops simulated in detail
    std::uint64_t intervals_run = 0;

    /** Host wall-clock split (seconds). */
    double ff_wall_s = 0.0;
    double detail_wall_s = 0.0;

    /**
     * Digest of the final simulator state (the fast-forward
     * determinism hash: same config/suite/seed/plan => same digest).
     */
    chash::Hash128 final_digest;
};

/**
 * Run (config, suite) for @p total_uops under the sampling plan in
 * @p opts. Seed semantics match core::runOne: non-zero
 * @p seed_override replaces the suite's workload seed and re-keys the
 * snoop stream. Throws core::SnapshotError on checkpoint problems and
 * std::invalid_argument on a malformed plan/shard.
 */
SampledResult runSampled(const core::ProcessorConfig &config,
                         const workload::SuiteProfile &suite,
                         std::uint64_t total_uops,
                         std::uint64_t seed_override,
                         const SampledOptions &opts);

} // namespace runner
} // namespace srl

#endif // SRLSIM_RUNNER_SAMPLED_HH
