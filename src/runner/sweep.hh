/**
 * @file
 * Parallel design-space sweep driver. A sweep is a list of named
 * (config, suite, uops) points; the driver runs each point on a worker
 * thread with a deterministic per-run RNG seed and collects results
 * into a stats::StatsReport in sweep order.
 *
 * Determinism contract: for a fixed point list and base seed, the
 * report is byte-identical (toJson/toCsv) whatever the thread count —
 * each run's seed depends only on (base seed, point index), each
 * simulation is self-contained (no shared mutable state), and results
 * land in a pre-sized slot indexed by point order, never by completion
 * order. The CI determinism check diffs a --jobs 1 report against a
 * --jobs 4 report of the same sweep.
 */

#ifndef SRLSIM_RUNNER_SWEEP_HH
#define SRLSIM_RUNNER_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/config.hh"
#include "core/simulator.hh"
#include "workload/profile.hh"

namespace srl
{
namespace runner
{

/** One point of a design-space sweep. */
struct SweepPoint
{
    std::string name; ///< report row name (unique within a sweep)
    core::ProcessorConfig config;
    workload::SuiteProfile suite;
    std::uint64_t uops = 200000;
};

/** Sweep execution options. */
struct SweepOptions
{
    /** Worker threads; 0 means one per hardware thread. */
    unsigned jobs = 0;
    /**
     * Base RNG seed. 0 keeps every suite's canonical built-in seed
     * (the paper-reproduction default); non-zero derives an
     * independent seed per run via deriveRunSeed().
     */
    std::uint64_t seed = 0;
    /** Include the Figure-7 SRL occupancy series in SRL-run records. */
    bool occupancy_series = true;
};

/**
 * Per-run seed: 0 stays 0 (suite canonical seed), otherwise a
 * SplitMix64 mix of the base seed and the run index, never 0.
 */
std::uint64_t deriveRunSeed(std::uint64_t base_seed, std::size_t index);

/**
 * A generic sweep task: given its derived run seed, produce a record.
 * Thrown exceptions are caught by the driver and recorded in the
 * run's `error` field without disturbing other tasks.
 */
struct Task
{
    std::string name;
    std::function<stats::RunRecord(std::uint64_t run_seed)> fn;
};

/**
 * Run arbitrary tasks on the pool. Records are returned in task order
 * regardless of completion order; record `name` is forced to the task
 * name. Report meta records the base seed and point count (never the
 * job count — reports must not depend on it).
 */
stats::StatsReport runTasks(const std::vector<Task> &tasks,
                            const SweepOptions &opts);

/** Flatten one simulation result into a report record. */
stats::RunRecord recordFromResult(const core::RunResult &r,
                                  std::uint64_t run_seed,
                                  bool occupancy_series);

/** Run a list of simulation points; the main entry point. */
stats::StatsReport runSweep(const std::vector<SweepPoint> &points,
                            const SweepOptions &opts);

/** runSweepTraced result: the report plus per-point Chrome traces. */
struct TracedSweepResult
{
    stats::StatsReport report;
    /** (point name, srlsim-trace-v1 JSON), in point order. */
    std::vector<std::pair<std::string, std::string>> traces;
};

/**
 * Like runSweep, but points whose name appears in @p trace_points run
 * instrumented: a probe bus + event ring + counter sampler capture the
 * run (per @p obs; its `enabled` flag is ignored) and the Chrome-trace
 * JSON is returned alongside the report. Capture happens on the worker
 * threads; like the report, the traces are byte-identical for a fixed
 * (points, seed) whatever the job count.
 */
TracedSweepResult runSweepTraced(
    const std::vector<SweepPoint> &points, const SweepOptions &opts,
    const std::vector<std::string> &trace_points,
    const obs::ObsConfig &obs);

/**
 * Convenience: the cross product of labeled configs x suites, in
 * config-major order with row names "<label>/<suite>".
 */
std::vector<SweepPoint> matrixPoints(
    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        &configs,
    const std::vector<workload::SuiteProfile> &suites,
    std::uint64_t uops);

} // namespace runner
} // namespace srl

#endif // SRLSIM_RUNNER_SWEEP_HH
