#include "runner/sweep.hh"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/random.hh"
#include "obs/export.hh"
#include "runner/thread_pool.hh"

namespace srl
{
namespace runner
{

std::uint64_t
deriveRunSeed(std::uint64_t base_seed, std::size_t index)
{
    if (base_seed == 0)
        return 0;
    const std::uint64_t mixed =
        splitmix64(base_seed ^ splitmix64(index + 1));
    return mixed ? mixed : 1;
}

stats::StatsReport
runTasks(const std::vector<Task> &tasks, const SweepOptions &opts)
{
    unsigned jobs = opts.jobs;
    if (jobs == 0) {
        jobs = std::thread::hardware_concurrency();
        if (jobs == 0)
            jobs = 1;
    }
    if (jobs > tasks.size() && !tasks.empty())
        jobs = static_cast<unsigned>(tasks.size());

    std::vector<stats::RunRecord> records(tasks.size());
    const auto runOneTask = [&](std::size_t i) {
        const std::uint64_t run_seed = deriveRunSeed(opts.seed, i);
        try {
            records[i] = tasks[i].fn(run_seed);
        } catch (const std::exception &e) {
            records[i].error = e.what();
        } catch (...) {
            records[i].error = "unknown exception";
        }
        records[i].name = tasks[i].name;
    };

    if (jobs <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            runOneTask(i);
    } else {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < tasks.size(); ++i)
            pool.submit([&runOneTask, i] { runOneTask(i); });
        pool.wait();
    }

    stats::StatsReport rep;
    rep.meta["seed"] = std::to_string(opts.seed);
    rep.meta["points"] = std::to_string(tasks.size());
    rep.runs = std::move(records);
    return rep;
}

stats::RunRecord
recordFromResult(const core::RunResult &r, std::uint64_t run_seed,
                 bool occupancy_series)
{
    stats::RunRecord rec;
    rec.meta["config"] = r.config_name;
    rec.meta["suite"] = r.workload_name;
    rec.meta["run_seed"] = std::to_string(run_seed);

    rec.set("uops", static_cast<double>(r.uops));
    rec.set("cycles", static_cast<double>(r.cycles));
    rec.set("ipc", r.ipc);

    const core::ProcessorStats &s = r.stats;
    rec.set("committed_loads", static_cast<double>(s.committed_loads));
    rec.set("committed_stores", static_cast<double>(s.committed_stores));
    rec.set("mem_misses", static_cast<double>(s.mem_misses));
    rec.set("branch_mispredicts",
            static_cast<double>(s.branch_mispredicts));
    rec.set("mem_violations", static_cast<double>(s.mem_violations));
    rec.set("snoop_violations", static_cast<double>(s.snoop_violations));
    rec.set("overflow_violations",
            static_cast<double>(s.overflow_violations));
    rec.set("slice_uops", static_cast<double>(s.slice_uops));

    // SRL-specific series (all zero for non-SRL models).
    rec.set("pct_stores_redone", r.pct_stores_redone);
    rec.set("pct_miss_dep_stores", r.pct_miss_dep_stores);
    rec.set("pct_miss_dep_uops", r.pct_miss_dep_uops);
    rec.set("srl_stalls_per_10k", r.srl_stalls_per_10k);
    rec.set("pct_time_srl_occupied", r.pct_time_srl_occupied);
    if (occupancy_series) {
        for (const auto &[threshold, pct] : r.srl_occupancy_above)
            rec.set("srl_occupancy_above_" + std::to_string(threshold),
                    pct);
    }
    return rec;
}

stats::StatsReport
runSweep(const std::vector<SweepPoint> &points, const SweepOptions &opts)
{
    std::vector<Task> tasks;
    tasks.reserve(points.size());
    for (const auto &p : points) {
        tasks.push_back(
            {p.name, [&p, &opts](std::uint64_t run_seed) {
                 const core::RunResult r =
                     core::runOne(p.config, p.suite, p.uops, run_seed);
                 return recordFromResult(r, run_seed,
                                         opts.occupancy_series);
             }});
    }
    return runTasks(tasks, opts);
}

TracedSweepResult
runSweepTraced(const std::vector<SweepPoint> &points,
               const SweepOptions &opts,
               const std::vector<std::string> &trace_points,
               const obs::ObsConfig &obs)
{
    obs::ObsConfig capture = obs;
    capture.enabled = true;

    // Each traced point writes its JSON into a pre-sized slot indexed
    // by point order, so trace order never depends on completion order.
    std::vector<std::string> trace_json(points.size());

    std::vector<Task> tasks;
    tasks.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        const bool traced =
            std::find(trace_points.begin(), trace_points.end(),
                      p.name) != trace_points.end();
        if (!traced) {
            tasks.push_back(
                {p.name, [&p, &opts](std::uint64_t run_seed) {
                     const core::RunResult r = core::runOne(
                         p.config, p.suite, p.uops, run_seed);
                     return recordFromResult(r, run_seed,
                                             opts.occupancy_series);
                 }});
            continue;
        }
        std::string *slot = &trace_json[i];
        tasks.push_back(
            {p.name,
             [&p, &opts, capture, slot](std::uint64_t run_seed) {
                 const core::RunResult r = core::runOne(
                     p.config, p.suite, p.uops, run_seed, capture);
                 r.recording->meta["point"] = p.name;
                 *slot = obs::toChromeTrace(*r.recording);
                 return recordFromResult(r, run_seed,
                                         opts.occupancy_series);
             }});
    }

    TracedSweepResult result;
    result.report = runTasks(tasks, opts);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!trace_json[i].empty())
            result.traces.emplace_back(points[i].name,
                                       std::move(trace_json[i]));
    }
    return result;
}

std::vector<SweepPoint>
matrixPoints(
    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        &configs,
    const std::vector<workload::SuiteProfile> &suites,
    std::uint64_t uops)
{
    std::vector<SweepPoint> points;
    points.reserve(configs.size() * suites.size());
    for (const auto &[label, cfg] : configs) {
        for (const auto &suite : suites)
            points.push_back({label + "/" + suite.name, cfg, suite,
                              uops});
    }
    return points;
}

} // namespace runner
} // namespace srl
