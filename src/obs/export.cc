#include "obs/export.hh"

#include <cstdio>
#include <unordered_map>
#include <vector>

namespace srl
{
namespace obs
{

namespace
{

/** Per-kind payload field names (null = field unused). */
struct ArgNames
{
    const char *a;
    const char *b;
    const char *c;
};

ArgNames
argNames(EventKind k)
{
    switch (k) {
      case EventKind::kDispatch:
        return {"seq", "pc", "cls"};
      case EventKind::kCommit:
        return {"first_seq", "uops", "ckpt"};
      case EventKind::kCkptAlloc:
      case EventKind::kCkptReclaim:
        return {"first_seq", nullptr, "ckpt"};
      case EventKind::kCkptRollback:
        return {"boundary_seq", nullptr, "ckpt"};
      case EventKind::kMissEnter:
      case EventKind::kMissExit:
        return {"seq", "addr", nullptr};
      case EventKind::kSliceEnter:
      case EventKind::kSliceReinsert:
        return {"seq", nullptr, "passes"};
      case EventKind::kSrlPush:
        return {"seq", "addr", "dependent"};
      case EventKind::kSrlFill:
      case EventKind::kSrlDrain:
        return {"seq", "addr", "slot"};
      case EventKind::kSrlStall:
        return {"seq", "addr", nullptr};
      case EventKind::kIndexedForward:
        return {"seq", "addr", "slot"};
      case EventKind::kLcfHit:
        return {"addr", nullptr, "count"};
      case EventKind::kFcInsert:
        return {"addr", nullptr, "store_index"};
      case EventKind::kFcEvict:
        return {"addr", nullptr, nullptr};
      case EventKind::kFcDiscard:
        return {"live_entries", nullptr, nullptr};
      case EventKind::kLoadBufInsert:
        return {"seq", "addr", "overflowed"};
      case EventKind::kLoadBufSnoop:
        return {"addr", nullptr, "hit"};
      case EventKind::kLoadBufViolation:
        return {"seq", "addr", "ckpt"};
      case EventKind::kMemMissIssue:
        return {"line", "ready", nullptr};
      case EventKind::kMemMissReturn:
        return {"line", nullptr, nullptr};
      case EventKind::kNumKinds:
        break;
    }
    return {"a", "b", "c"};
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

/** {"name":"...","ph":"M",...} thread/process naming metadata. */
void
appendMetadataEvents(std::vector<std::string> &events,
                     const std::vector<bool> &tid_used)
{
    events.push_back("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                     "\"tid\":0,\"args\":{\"name\":\"srlsim\"}}");
    for (std::size_t s = 0; s < tid_used.size(); ++s) {
        if (!tid_used[s])
            continue;
        const auto *name = structureName(static_cast<Structure>(s));
        events.push_back(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
            u64(s + 1) + ",\"args\":{\"name\":\"" + name + "\"}}");
    }
}

std::string
instantEvent(const Event &e)
{
    const ArgNames names = argNames(e.kind);
    std::string ev = "{\"name\":\"";
    ev += eventKindName(e.kind);
    ev += "\",\"cat\":\"";
    ev += structureName(e.structure);
    ev += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    ev += u64(e.cycle);
    ev += ",\"pid\":1,\"tid\":";
    ev += u64(static_cast<std::uint64_t>(e.structure) + 1);
    ev += ",\"args\":{";
    bool first = true;
    const auto arg = [&](const char *name, std::uint64_t v) {
        if (!name)
            return;
        if (!first)
            ev += ",";
        first = false;
        ev += "\"";
        ev += name;
        ev += "\":";
        ev += u64(v);
    };
    arg(names.a, e.a);
    arg(names.b, e.b);
    arg(names.c, e.c);
    ev += "}}";
    return ev;
}

/** Async begin/end pair for a [start, end) window keyed by @p id. */
void
appendSpan(std::vector<std::string> &events, const char *name,
           const char *cat, std::uint64_t id, Cycle begin, Cycle end,
           std::uint64_t tid)
{
    const std::string common = std::string("\"name\":\"") + name +
                               "\",\"cat\":\"" + cat + "\",\"id\":\"" +
                               u64(id) + "\",\"pid\":1,\"tid\":" +
                               u64(tid);
    events.push_back("{" + common + ",\"ph\":\"b\",\"ts\":" +
                     u64(begin) + "}");
    if (end >= begin)
        events.push_back("{" + common + ",\"ph\":\"e\",\"ts\":" +
                         u64(end) + "}");
}

} // namespace

std::string
toChromeTrace(const Recording &rec)
{
    std::vector<std::string> events;
    events.reserve(rec.ring.size() + rec.sampler.samples().size() *
                                         rec.sampler.gaugeNames().size() +
                   16);

    std::vector<bool> tid_used(
        static_cast<std::size_t>(Structure::kNumStructures), false);
    rec.ring.forEach([&](const Event &e) {
        const auto s = static_cast<std::size_t>(e.structure);
        if (s < tid_used.size())
            tid_used[s] = true;
    });

    appendMetadataEvents(events, tid_used);

    const auto mem_tid =
        static_cast<std::uint64_t>(Structure::kMemory) + 1;
    const auto core_tid =
        static_cast<std::uint64_t>(Structure::kCore) + 1;

    // First surviving kMissExit per load seq, for span matching.
    std::unordered_map<std::uint64_t, Cycle> miss_exit_at;
    rec.ring.forEach([&](const Event &e) {
        if (e.kind == EventKind::kMissExit &&
            !miss_exit_at.count(e.a))
            miss_exit_at.emplace(e.a, e.cycle);
    });

    rec.ring.forEach([&](const Event &e) {
        events.push_back(instantEvent(e));
        // Span views for the two window-shaped event kinds: a memory
        // miss knows its fill time at issue (payload b), a load's
        // poison window closes at its matching kMissExit.
        if (e.kind == EventKind::kMemMissIssue)
            appendSpan(events, "mem_miss", "memory", e.a, e.cycle, e.b,
                       mem_tid);
        if (e.kind == EventKind::kMissEnter) {
            const auto it = miss_exit_at.find(e.a);
            if (it != miss_exit_at.end() && it->second >= e.cycle) {
                appendSpan(events, "load_miss", "core", e.a, e.cycle,
                           it->second, core_tid);
            } else {
                // Exit dropped from the ring or the run ended
                // mid-miss: emit only the begin (viewers tolerate it).
                events.push_back(
                    "{\"name\":\"load_miss\",\"cat\":\"core\",\"id\":"
                    "\"" + u64(e.a) + "\",\"pid\":1,\"tid\":" +
                    u64(core_tid) + ",\"ph\":\"b\",\"ts\":" +
                    u64(e.cycle) + "}");
            }
        }
    });

    const auto &names = rec.sampler.gaugeNames();
    for (const auto &sample : rec.sampler.samples()) {
        for (std::size_t g = 0; g < names.size(); ++g) {
            events.push_back("{\"name\":\"" + jsonEscape(names[g]) +
                             "\",\"ph\":\"C\",\"ts\":" +
                             u64(sample.cycle) +
                             ",\"pid\":1,\"tid\":0,\"args\":{\"value\":" +
                             u64(sample.values[g]) + "}}");
        }
    }

    std::string out = "{\n  \"displayTimeUnit\": \"ns\",\n"
                      "  \"otherData\": {\n"
                      "    \"schema\": \"srlsim-trace-v1\",\n";
    for (const auto &[k, v] : rec.meta) {
        out += "    \"" + jsonEscape(k) + "\": \"" + jsonEscape(v) +
               "\",\n";
    }
    out += "    \"events_accepted\": \"" + u64(rec.ring.accepted()) +
           "\",\n";
    out += "    \"events_dropped\": \"" + u64(rec.ring.dropped()) +
           "\",\n";
    out += "    \"ring_capacity\": \"" + u64(rec.ring.capacity()) +
           "\",\n";
    out += "    \"sample_every\": \"" + u64(rec.sampler.interval()) +
           "\"\n  },\n  \"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        out += "    ";
        out += events[i];
        out += i + 1 < events.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

stats::StatsReport
timelineReport(const Recording &rec)
{
    stats::StatsReport rep;
    rep.meta["schema"] = "srlsim-timeline-v1";
    for (const auto &[k, v] : rec.meta)
        rep.meta[k] = v;
    rep.meta["sample_every"] = u64(rec.sampler.interval());
    rep.meta["events_accepted"] = u64(rec.ring.accepted());
    rep.meta["events_dropped"] = u64(rec.ring.dropped());

    const auto &names = rec.sampler.gaugeNames();
    rep.runs.reserve(rec.sampler.samples().size());
    for (const auto &sample : rec.sampler.samples()) {
        stats::RunRecord r;
        r.name = "cycle_" + u64(sample.cycle);
        r.set("cycle", static_cast<double>(sample.cycle));
        for (std::size_t g = 0; g < names.size(); ++g)
            r.set(names[g], static_cast<double>(sample.values[g]));
        rep.runs.push_back(std::move(r));
    }
    return rep;
}

std::string
timelineCsv(const Recording &rec)
{
    return timelineReport(rec).toCsv();
}

double
percentSamplesAbove(const Recording &rec, const std::string &gauge,
                    std::uint64_t threshold)
{
    const auto &names = rec.sampler.gaugeNames();
    std::size_t idx = names.size();
    for (std::size_t g = 0; g < names.size(); ++g) {
        if (names[g] == gauge)
            idx = g;
    }
    if (idx == names.size())
        return 0.0;

    std::uint64_t occupied = 0, above = 0;
    for (const auto &sample : rec.sampler.samples()) {
        const std::uint64_t v = sample.values[idx];
        if (v > 0)
            ++occupied;
        if (v > threshold)
            ++above;
    }
    return occupied ? 100.0 * static_cast<double>(above) /
                          static_cast<double>(occupied)
                    : 0.0;
}

} // namespace obs
} // namespace srl
