/**
 * @file
 * Fixed-capacity event ring: the default probe-bus sink. A flight
 * recorder — when full it overwrites the oldest event and counts the
 * overwrite, so the newest `capacity` events survive and the exporter
 * can report exactly how many were dropped. Append is O(1) with no
 * allocation after construction, keeping enabled-probe overhead flat.
 */

#ifndef SRLSIM_OBS_RING_HH
#define SRLSIM_OBS_RING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/probe.hh"

namespace srl
{
namespace obs
{

class EventRing : public ProbeSink
{
  public:
    /** @p capacity must be > 0 (fatal otherwise). */
    explicit EventRing(std::size_t capacity);

    void onEvent(const Event &e) override;

    std::size_t capacity() const { return slots_.size(); }

    /** Events currently held (min(accepted, capacity)). */
    std::size_t size() const;

    /** Events ever offered to the ring. */
    std::uint64_t accepted() const { return accepted_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const;

    /** The i-th surviving event, oldest first. @pre i < size() */
    const Event &at(std::size_t i) const;

    /** Apply @p fn to surviving events, oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            fn(at(i));
    }

    void clear();

  private:
    std::vector<Event> slots_;
    std::uint64_t accepted_ = 0;
};

} // namespace obs
} // namespace srl

#endif // SRLSIM_OBS_RING_HH
