/**
 * @file
 * Observability recording and exporters.
 *
 * A Recording bundles the two capture structures of one instrumented
 * run — the probe-event ring and the counter-timeline sampler — plus
 * free-form metadata (config, suite, seed). Exporters turn it into:
 *
 *  - Chrome/Perfetto trace-event JSON (`toChromeTrace`). The schema
 *    is `srlsim-trace-v1`: one instant event per surviving probe
 *    event, async begin/end spans for miss windows, one counter track
 *    per sampled gauge, and `otherData` carrying run metadata plus
 *    drop accounting. One simulated cycle maps to one microsecond of
 *    trace time. The file loads directly in https://ui.perfetto.dev
 *    and chrome://tracing.
 *
 *  - A counter-timeline stats report (`timelineReport` /
 *    `timelineCsv`) that reuses the srlsim-stats machinery: one
 *    RunRecord per sample row, so the JSON/CSV renderers, the parser
 *    and the byte-identical determinism guarantees all apply
 *    unchanged (schema `srlsim-timeline-v1`).
 */

#ifndef SRLSIM_OBS_EXPORT_HH
#define SRLSIM_OBS_EXPORT_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.hh"
#include "obs/ring.hh"
#include "obs/sampler.hh"

namespace srl
{
namespace obs
{

/** Capture options for one instrumented run. */
struct ObsConfig
{
    bool enabled = false;
    /** Probe-event ring capacity (newest events win; drops counted). */
    std::size_t ring_capacity = 1u << 16;
    /** Counter-timeline sampling period in cycles; 0 disables. */
    std::uint64_t sample_every = 64;
};

/** Everything captured from one instrumented run. */
struct Recording
{
    Recording(std::size_t ring_capacity, std::uint64_t sample_every)
        : ring(ring_capacity), sampler(sample_every)
    {
    }

    EventRing ring;
    CounterSampler sampler;
    /** Run identification (config/suite/seed), copied into exports. */
    std::map<std::string, std::string> meta;
};

/** Render @p rec as Chrome trace-event JSON (srlsim-trace-v1). */
std::string toChromeTrace(const Recording &rec);

/**
 * The counter timeline as a stats report (srlsim-timeline-v1): one
 * run record per sample, metrics in gauge registration order.
 */
stats::StatsReport timelineReport(const Recording &rec);

/** Wide CSV rendering of timelineReport (one row per sample). */
std::string timelineCsv(const Recording &rec);

/**
 * Figure-7 style curve point: percent of *occupied* samples (gauge
 * value > 0) in which @p gauge exceeded @p threshold. Returns 0 when
 * the gauge does not exist or never went above zero.
 */
double percentSamplesAbove(const Recording &rec,
                           const std::string &gauge,
                           std::uint64_t threshold);

} // namespace obs
} // namespace srl

#endif // SRLSIM_OBS_EXPORT_HH
