/**
 * @file
 * The observability probe bus: a typed, cycle-stamped event channel
 * that instrumented structures publish into and sinks (the event ring,
 * exporters, tests) subscribe to.
 *
 * Design constraints (see DESIGN.md "Observability"):
 *  - Zero overhead when disabled. Instrumented code holds a raw
 *    `ProbeBus *` that is null by default; every probe point is a
 *    single branch-on-null. No virtual call, no allocation, no
 *    formatting happens unless a bus is attached.
 *  - Events are plain 32-byte PODs. Emission is a bounds-free copy
 *    into each attached sink; interpretation (names, JSON) happens
 *    only at export time.
 *  - Deterministic: probe points fire from single-threaded simulation
 *    code in pipeline phase order, so for a fixed (config, suite,
 *    seed) the event stream is byte-identical run to run — the CI
 *    determinism diff covers exported traces.
 *
 * Payload fields `a`, `b`, `c` are kind-specific; the table below is
 * the normative schema (`srlsim-trace-v1` exports it verbatim):
 *
 *   kind              structure    a              b            c
 *   ----------------- ------------ -------------- ------------ --------
 *   kDispatch         kCore        seq            pc           uop cls
 *   kCommit           kCheckpoint  first_seq      uops         ckpt id
 *   kCkptAlloc        kCheckpoint  first_seq      -            ckpt id
 *   kCkptReclaim      kCheckpoint  first_seq      -            ckpt id
 *   kCkptRollback     kCheckpoint  boundary_seq   -            ckpt id
 *   kMissEnter        kCore        load seq       addr         -
 *   kMissExit         kCore        load seq       addr         -
 *   kSliceEnter       kSdb         seq            -            passes
 *   kSliceReinsert    kSdb         seq            -            passes
 *   kSrlPush          kSrl         store seq      addr         dep?1:0
 *   kSrlFill          kSrl         store seq      addr         slot
 *   kSrlDrain         kSrl         store seq      addr         slot
 *   kSrlStall         kSrl         load seq       addr         -
 *   kIndexedForward   kSrl         load seq       addr         slot
 *   kLcfHit           kLcf         addr           -            count
 *   kFcInsert         kFwdCache    addr           -            id index
 *   kFcEvict          kFwdCache    word addr      -            -
 *   kFcDiscard        kFwdCache    live entries   -            -
 *   kLoadBufInsert    kLoadBuffer  load seq       addr         ovf?1:0
 *   kLoadBufSnoop     kLoadBuffer  addr           -            hit?1:0
 *   kLoadBufViolation kLoadBuffer  load seq       addr         ckpt id
 *   kMemMissIssue     kMemory      line addr      ready cycle  -
 *   kMemMissReturn    kMemory      line addr      -            -
 */

#ifndef SRLSIM_OBS_PROBE_HH
#define SRLSIM_OBS_PROBE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace srl
{
namespace obs
{

/** What happened. Keep eventKindName() in probe.cc in sync. */
enum class EventKind : std::uint8_t
{
    kDispatch,
    kCommit,
    kCkptAlloc,
    kCkptReclaim,
    kCkptRollback,
    kMissEnter,
    kMissExit,
    kSliceEnter,
    kSliceReinsert,
    kSrlPush,
    kSrlFill,
    kSrlDrain,
    kSrlStall,
    kIndexedForward,
    kLcfHit,
    kFcInsert,
    kFcEvict,
    kFcDiscard,
    kLoadBufInsert,
    kLoadBufSnoop,
    kLoadBufViolation,
    kMemMissIssue,
    kMemMissReturn,
    kNumKinds, ///< sentinel, not a valid kind
};

/** Which modeled structure reported it. Keep structureName() in sync. */
enum class Structure : std::uint8_t
{
    kCore,
    kCheckpoint,
    kSdb,
    kSrl,
    kLcf,
    kFwdCache,
    kLoadBuffer,
    kMemory,
    kNumStructures, ///< sentinel
};

/** Stable lowercase identifier ("dispatch", "srl_push", ...). */
const char *eventKindName(EventKind k);

/** Stable lowercase identifier ("core", "srl", ...). */
const char *structureName(Structure s);

/** One probe event. POD; payload meaning is per-kind (file header). */
struct Event
{
    Cycle cycle = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t c = 0;
    EventKind kind = EventKind::kDispatch;
    Structure structure = Structure::kCore;
};

/** Convenience builder keeping call sites one line. */
inline Event
makeEvent(Cycle cycle, EventKind kind, Structure structure,
          std::uint64_t a = 0, std::uint64_t b = 0, std::uint32_t c = 0)
{
    Event e;
    e.cycle = cycle;
    e.a = a;
    e.b = b;
    e.c = c;
    e.kind = kind;
    e.structure = structure;
    return e;
}

/** A subscriber to the probe bus. */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;
    virtual void onEvent(const Event &e) = 0;
};

/**
 * Fans emitted events out to attached sinks. Not thread-safe by
 * design: a bus belongs to exactly one simulation (runOne builds one
 * per run; parallel sweeps give every run its own).
 */
class ProbeBus
{
  public:
    void
    attach(ProbeSink *sink)
    {
        if (sink)
            sinks_.push_back(sink);
    }

    void
    detach(ProbeSink *sink)
    {
        for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
            if (*it == sink) {
                sinks_.erase(it);
                return;
            }
        }
    }

    bool active() const { return !sinks_.empty(); }
    std::size_t sinkCount() const { return sinks_.size(); }

    void
    emit(const Event &e)
    {
        for (ProbeSink *s : sinks_)
            s->onEvent(e);
    }

  private:
    std::vector<ProbeSink *> sinks_;
};

} // namespace obs
} // namespace srl

#endif // SRLSIM_OBS_PROBE_HH
