#include "obs/probe.hh"

namespace srl
{
namespace obs
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::kDispatch:         return "dispatch";
      case EventKind::kCommit:           return "commit";
      case EventKind::kCkptAlloc:        return "ckpt_alloc";
      case EventKind::kCkptReclaim:      return "ckpt_reclaim";
      case EventKind::kCkptRollback:     return "ckpt_rollback";
      case EventKind::kMissEnter:        return "miss_enter";
      case EventKind::kMissExit:         return "miss_exit";
      case EventKind::kSliceEnter:       return "slice_enter";
      case EventKind::kSliceReinsert:    return "slice_reinsert";
      case EventKind::kSrlPush:          return "srl_push";
      case EventKind::kSrlFill:          return "srl_fill";
      case EventKind::kSrlDrain:         return "srl_drain";
      case EventKind::kSrlStall:         return "srl_stall";
      case EventKind::kIndexedForward:   return "indexed_forward";
      case EventKind::kLcfHit:           return "lcf_hit";
      case EventKind::kFcInsert:         return "fc_insert";
      case EventKind::kFcEvict:          return "fc_evict";
      case EventKind::kFcDiscard:        return "fc_discard";
      case EventKind::kLoadBufInsert:    return "loadbuf_insert";
      case EventKind::kLoadBufSnoop:     return "loadbuf_snoop";
      case EventKind::kLoadBufViolation: return "loadbuf_violation";
      case EventKind::kMemMissIssue:     return "mem_miss_issue";
      case EventKind::kMemMissReturn:    return "mem_miss_return";
      case EventKind::kNumKinds:         break;
    }
    return "unknown";
}

const char *
structureName(Structure s)
{
    switch (s) {
      case Structure::kCore:          return "core";
      case Structure::kCheckpoint:    return "checkpoint";
      case Structure::kSdb:           return "sdb";
      case Structure::kSrl:           return "srl";
      case Structure::kLcf:           return "lcf";
      case Structure::kFwdCache:      return "fwd_cache";
      case Structure::kLoadBuffer:    return "load_buffer";
      case Structure::kMemory:        return "memory";
      case Structure::kNumStructures: break;
    }
    return "unknown";
}

} // namespace obs
} // namespace srl
