#include "obs/ring.hh"

#include "common/logging.hh"

namespace srl
{
namespace obs
{

EventRing::EventRing(std::size_t capacity) : slots_(capacity)
{
    fatal_if(capacity == 0, "event ring capacity must be > 0");
}

void
EventRing::onEvent(const Event &e)
{
    slots_[accepted_ % slots_.size()] = e;
    ++accepted_;
}

std::size_t
EventRing::size() const
{
    return accepted_ < slots_.size()
               ? static_cast<std::size_t>(accepted_)
               : slots_.size();
}

std::uint64_t
EventRing::dropped() const
{
    return accepted_ > slots_.size() ? accepted_ - slots_.size() : 0;
}

const Event &
EventRing::at(std::size_t i) const
{
    panic_if(i >= size(), "event ring index %zu out of range", i);
    if (accepted_ <= slots_.size())
        return slots_[i];
    return slots_[(accepted_ + i) % slots_.size()];
}

void
EventRing::clear()
{
    accepted_ = 0;
}

} // namespace obs
} // namespace srl
