/**
 * @file
 * Periodic counter-timeline sampler. The processor registers a set of
 * named occupancy gauges (SRL entries, forwarding-cache live words,
 * LCF non-zero counters, load-buffer entries, ...) and the sampler
 * reads all of them every N cycles, building the timeline behind the
 * paper's Figure 7 occupancy curves.
 *
 * Like the probe bus, the sampler is branch-on-null at the call site:
 * a processor without an attached sampler pays one pointer compare per
 * cycle. With one attached, sampling cost is amortized by the
 * interval (`--sample-every`).
 */

#ifndef SRLSIM_OBS_SAMPLER_HH
#define SRLSIM_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace srl
{
namespace obs
{

class CounterSampler
{
  public:
    /** @p every = sampling period in cycles; 0 disables sampling. */
    explicit CounterSampler(std::uint64_t every = 0) : every_(every) {}

    std::uint64_t interval() const { return every_; }

    /**
     * Register a gauge. Must happen before the first tick(); the
     * column order of samples is registration order.
     */
    void
    addGauge(std::string name, std::function<std::uint64_t()> read)
    {
        names_.push_back(std::move(name));
        reads_.push_back(std::move(read));
    }

    /** Sample if @p now is on the sampling grid. */
    void
    tick(Cycle now)
    {
        if (every_ == 0 || reads_.empty() || now % every_ != 0)
            return;
        Sample s;
        s.cycle = now;
        s.values.reserve(reads_.size());
        for (const auto &read : reads_)
            s.values.push_back(read());
        samples_.push_back(std::move(s));
    }

    /** One timeline row: the cycle plus one value per gauge. */
    struct Sample
    {
        Cycle cycle = 0;
        std::vector<std::uint64_t> values;
    };

    const std::vector<std::string> &gaugeNames() const { return names_; }
    const std::vector<Sample> &samples() const { return samples_; }

    /**
     * Drop the gauge closures (they capture pointers into the
     * processor) while keeping names and samples. Called when the
     * simulation ends so a Recording can safely outlive its Processor.
     */
    void
    dropGauges()
    {
        reads_.clear();
    }

    void
    clear()
    {
        names_.clear();
        reads_.clear();
        samples_.clear();
    }

  private:
    std::uint64_t every_;
    std::vector<std::string> names_;
    std::vector<std::function<std::uint64_t()>> reads_;
    std::vector<Sample> samples_;
};

} // namespace obs
} // namespace srl

#endif // SRLSIM_OBS_SAMPLER_HH
