#include "predictor/store_sets.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace predictor
{

StoreSets::StoreSets(const StoreSetsParams &params)
    : params_(params), ssit_(params.ssit_entries, kNoSet),
      lfst_(params.lfst_entries, kInvalidSeqNum)
{
    fatal_if(!isPowerOf2(params.ssit_entries),
             "SSIT size must be a power of two");
    fatal_if(params.lfst_entries == 0, "LFST must be non-empty");
}

unsigned
StoreSets::ssitIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (ssit_.size() - 1));
}

void
StoreSets::maybeClear()
{
    ++accesses_;
    if (params_.clear_interval && accesses_ % params_.clear_interval == 0) {
        std::fill(ssit_.begin(), ssit_.end(), kNoSet);
        std::fill(lfst_.begin(), lfst_.end(), kInvalidSeqNum);
        lfst_rev_.clear();
    }
}

void
StoreSets::lfstWrite(unsigned slot, SeqNum seq)
{
    const SeqNum old = lfst_[slot];
    if (old != kInvalidSeqNum) {
        auto [it, end] = lfst_rev_.equal_range(old);
        for (; it != end; ++it) {
            if (it->second == slot) {
                lfst_rev_.erase(it);
                break;
            }
        }
    }
    lfst_[slot] = seq;
    if (seq != kInvalidSeqNum)
        lfst_rev_.emplace(seq, slot);
}

void
StoreSets::storeFetched(Addr pc, SeqNum seq)
{
    maybeClear();
    const std::uint16_t ssid = ssit_[ssitIndex(pc)];
    if (ssid != kNoSet)
        lfstWrite(ssid % lfst_.size(), seq);
}

void
StoreSets::storeRetired(SeqNum seq)
{
    // Clear every LFST slot still naming this store, located through
    // the reverse index (equivalent to the naive full-table scan).
    auto range = lfst_rev_.equal_range(seq);
    for (auto it = range.first; it != range.second; ++it)
        lfst_[it->second] = kInvalidSeqNum;
    lfst_rev_.erase(range.first, range.second);
}

SeqNum
StoreSets::predict(Addr pc)
{
    maybeClear();
    ++predictions;
    const std::uint16_t ssid = ssit_[ssitIndex(pc)];
    if (ssid == kNoSet)
        return kInvalidSeqNum;
    const SeqNum dep = lfst_[ssid % lfst_.size()];
    if (dep != kInvalidSeqNum)
        ++dependencesPredicted;
    return dep;
}

void
StoreSets::trainViolation(Addr load_pc, Addr store_pc)
{
    ++violationsTrained;
    const unsigned li = ssitIndex(load_pc);
    const unsigned si = ssitIndex(store_pc);
    std::uint16_t lset = ssit_[li];
    std::uint16_t sset = ssit_[si];

    if (lset == kNoSet && sset == kNoSet) {
        const std::uint16_t ssid = next_ssid_++ % params_.lfst_entries;
        ssit_[li] = ssid;
        ssit_[si] = ssid;
    } else if (lset == kNoSet) {
        ssit_[li] = sset;
    } else if (sset == kNoSet) {
        ssit_[si] = lset;
    } else {
        // Both have sets: merge into the smaller SSID (declining-set
        // rule from the original paper).
        const std::uint16_t winner = std::min(lset, sset);
        ssit_[li] = winner;
        ssit_[si] = winner;
    }
}

void
StoreSets::serialize(bytes::ByteWriter &w) const
{
    w.u64(ssit_.size());
    for (const std::uint16_t v : ssit_)
        w.u16(v);
    w.u64(lfst_.size());
    for (const SeqNum v : lfst_)
        w.u64(v);
    w.u16(next_ssid_);
    w.u64(accesses_);
    w.u64(predictions.value());
    w.u64(dependencesPredicted.value());
    w.u64(violationsTrained.value());
}

void
StoreSets::deserialize(bytes::ByteReader &r)
{
    if (r.u64() != ssit_.size())
        throw bytes::CodecError("SSIT size mismatch");
    for (std::uint16_t &v : ssit_)
        v = r.u16();
    if (r.u64() != lfst_.size())
        throw bytes::CodecError("LFST size mismatch");
    lfst_rev_.clear();
    for (std::size_t i = 0; i < lfst_.size(); ++i) {
        lfst_[i] = r.u64();
        if (lfst_[i] != kInvalidSeqNum)
            lfst_rev_.emplace(lfst_[i], static_cast<unsigned>(i));
    }
    next_ssid_ = r.u16();
    accesses_ = r.u64();
    const auto restore = [&r](stats::Scalar &s) {
        s.reset();
        s += r.u64();
    };
    restore(predictions);
    restore(dependencesPredicted);
    restore(violationsTrained);
}

} // namespace predictor
} // namespace srl
