#include "predictor/store_sets.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace predictor
{

StoreSets::StoreSets(const StoreSetsParams &params)
    : params_(params), ssit_(params.ssit_entries, kNoSet),
      lfst_(params.lfst_entries, kInvalidSeqNum)
{
    fatal_if(!isPowerOf2(params.ssit_entries),
             "SSIT size must be a power of two");
    fatal_if(params.lfst_entries == 0, "LFST must be non-empty");
}

unsigned
StoreSets::ssitIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (ssit_.size() - 1));
}

void
StoreSets::maybeClear()
{
    ++accesses_;
    if (params_.clear_interval && accesses_ % params_.clear_interval == 0) {
        std::fill(ssit_.begin(), ssit_.end(), kNoSet);
        std::fill(lfst_.begin(), lfst_.end(), kInvalidSeqNum);
        lfst_rev_.clear();
    }
}

void
StoreSets::lfstWrite(unsigned slot, SeqNum seq)
{
    const SeqNum old = lfst_[slot];
    if (old != kInvalidSeqNum) {
        auto [it, end] = lfst_rev_.equal_range(old);
        for (; it != end; ++it) {
            if (it->second == slot) {
                lfst_rev_.erase(it);
                break;
            }
        }
    }
    lfst_[slot] = seq;
    if (seq != kInvalidSeqNum)
        lfst_rev_.emplace(seq, slot);
}

void
StoreSets::storeFetched(Addr pc, SeqNum seq)
{
    maybeClear();
    const std::uint16_t ssid = ssit_[ssitIndex(pc)];
    if (ssid != kNoSet)
        lfstWrite(ssid % lfst_.size(), seq);
}

void
StoreSets::storeRetired(SeqNum seq)
{
    // Clear every LFST slot still naming this store, located through
    // the reverse index (equivalent to the naive full-table scan).
    auto range = lfst_rev_.equal_range(seq);
    for (auto it = range.first; it != range.second; ++it)
        lfst_[it->second] = kInvalidSeqNum;
    lfst_rev_.erase(range.first, range.second);
}

SeqNum
StoreSets::predict(Addr pc)
{
    maybeClear();
    ++predictions;
    const std::uint16_t ssid = ssit_[ssitIndex(pc)];
    if (ssid == kNoSet)
        return kInvalidSeqNum;
    const SeqNum dep = lfst_[ssid % lfst_.size()];
    if (dep != kInvalidSeqNum)
        ++dependencesPredicted;
    return dep;
}

void
StoreSets::trainViolation(Addr load_pc, Addr store_pc)
{
    ++violationsTrained;
    const unsigned li = ssitIndex(load_pc);
    const unsigned si = ssitIndex(store_pc);
    std::uint16_t lset = ssit_[li];
    std::uint16_t sset = ssit_[si];

    if (lset == kNoSet && sset == kNoSet) {
        const std::uint16_t ssid = next_ssid_++ % params_.lfst_entries;
        ssit_[li] = ssid;
        ssit_[si] = ssid;
    } else if (lset == kNoSet) {
        ssit_[li] = sset;
    } else if (sset == kNoSet) {
        ssit_[si] = lset;
    } else {
        // Both have sets: merge into the smaller SSID (declining-set
        // rule from the original paper).
        const std::uint16_t winner = std::min(lset, sset);
        ssit_[li] = winner;
        ssit_[si] = winner;
    }
}

} // namespace predictor
} // namespace srl
