/**
 * @file
 * Store-sets memory dependence predictor (Chrysos & Emer, ISCA '98;
 * Table 1: "Memory dependence pred: Store sets").
 *
 * Two tables:
 *  - SSIT (Store Set ID Table), PC-indexed: maps a load or store PC to
 *    its store-set identifier (SSID).
 *  - LFST (Last Fetched Store Table), SSID-indexed: the most recently
 *    fetched store belonging to that set.
 *
 * In the CFP machine the predictor answers one question at load
 * allocate: "does this load depend on a store that is still pending?"
 * If the returned store is poisoned (miss-dependent), the load is
 * steered into the slice instead of executing ahead — a misprediction
 * either way is what the secondary load buffer exists to catch
 * (paper Fig. 4 cases v and vi).
 */

#ifndef SRLSIM_PREDICTOR_STORE_SETS_HH
#define SRLSIM_PREDICTOR_STORE_SETS_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace srl
{
namespace predictor
{

struct StoreSetsParams
{
    unsigned ssit_entries = 4096;
    unsigned lfst_entries = 256;
    /** Periodic whole-table clear interval in accesses (0 = never). */
    std::uint64_t clear_interval = 1u << 20;
};

class StoreSets
{
  public:
    static constexpr std::uint16_t kNoSet = 0xffff;

    explicit StoreSets(const StoreSetsParams &params);

    /**
     * A store at @p pc with dynamic sequence number @p seq is fetched:
     * records it as the last fetched store of its set (if it has one).
     */
    void storeFetched(Addr pc, SeqNum seq);

    /**
     * A store with sequence @p seq leaves the window (completed or
     * squashed): clear any LFST entry still naming it.
     */
    void storeRetired(SeqNum seq);

    /**
     * Predict the store (by sequence number) the load at @p pc depends
     * on. @return kInvalidSeqNum when no dependence is predicted.
     */
    SeqNum predict(Addr pc);

    /**
     * Train on a detected memory-order violation between the load at
     * @p load_pc and the store at @p store_pc: merge their store sets
     * (assigning new ones as needed).
     */
    void trainViolation(Addr load_pc, Addr store_pc);

    stats::Scalar predictions;
    stats::Scalar dependencesPredicted;
    stats::Scalar violationsTrained;

  private:
    unsigned ssitIndex(Addr pc) const;
    void maybeClear();

    StoreSetsParams params_;
    std::vector<std::uint16_t> ssit_;
    std::vector<SeqNum> lfst_;
    std::uint16_t next_ssid_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace predictor
} // namespace srl

#endif // SRLSIM_PREDICTOR_STORE_SETS_HH
