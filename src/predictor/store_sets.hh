/**
 * @file
 * Store-sets memory dependence predictor (Chrysos & Emer, ISCA '98;
 * Table 1: "Memory dependence pred: Store sets").
 *
 * Two tables:
 *  - SSIT (Store Set ID Table), PC-indexed: maps a load or store PC to
 *    its store-set identifier (SSID).
 *  - LFST (Last Fetched Store Table), SSID-indexed: the most recently
 *    fetched store belonging to that set.
 *
 * In the CFP machine the predictor answers one question at load
 * allocate: "does this load depend on a store that is still pending?"
 * If the returned store is poisoned (miss-dependent), the load is
 * steered into the slice instead of executing ahead — a misprediction
 * either way is what the secondary load buffer exists to catch
 * (paper Fig. 4 cases v and vi).
 */

#ifndef SRLSIM_PREDICTOR_STORE_SETS_HH
#define SRLSIM_PREDICTOR_STORE_SETS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace srl
{
namespace predictor
{

struct StoreSetsParams
{
    unsigned ssit_entries = 4096;
    unsigned lfst_entries = 256;
    /** Periodic whole-table clear interval in accesses (0 = never). */
    std::uint64_t clear_interval = 1u << 20;
};

class StoreSets
{
  public:
    static constexpr std::uint16_t kNoSet = 0xffff;

    explicit StoreSets(const StoreSetsParams &params);

    /**
     * A store at @p pc with dynamic sequence number @p seq is fetched:
     * records it as the last fetched store of its set (if it has one).
     */
    void storeFetched(Addr pc, SeqNum seq);

    /**
     * A store with sequence @p seq leaves the window (completed or
     * squashed): clear any LFST entry still naming it.
     */
    void storeRetired(SeqNum seq);

    /**
     * Predict the store (by sequence number) the load at @p pc depends
     * on. @return kInvalidSeqNum when no dependence is predicted.
     */
    SeqNum predict(Addr pc);

    /**
     * Train on a detected memory-order violation between the load at
     * @p load_pc and the store at @p store_pc: merge their store sets
     * (assigning new ones as needed).
     */
    void trainViolation(Addr load_pc, Addr store_pc);

    /** Accesses performed so far (drives the periodic-clear policy). */
    std::uint64_t accesses() const { return accesses_; }

    /**
     * Accesses left before the next periodic whole-table clear fires;
     * ~0 when clearing is disabled. A caller replaying quiescent
     * cycles must keep its replayed accesses strictly below this.
     */
    std::uint64_t
    accessesUntilClear() const
    {
        if (!params_.clear_interval)
            return ~0ull;
        return params_.clear_interval -
               accesses_ % params_.clear_interval;
    }

    /**
     * Account @p n predictor accesses (@p preds predictions, @p deps
     * of them with a dependence) made by replayed quiescent cycles
     * without touching the tables. The replayed span must not reach a
     * clear boundary — the caller clamps against accessesUntilClear().
     */
    void
    addIdleAccesses(std::uint64_t n, std::uint64_t preds,
                    std::uint64_t deps)
    {
        accesses_ += n;
        predictions += preds;
        dependencesPredicted += deps;
    }

    /** Serialize SSIT/LFST + counters (the reverse index is derived). */
    void serialize(bytes::ByteWriter &w) const;

    /** Restore into a predictor of identical geometry. */
    void deserialize(bytes::ByteReader &r);

    stats::Scalar predictions;
    stats::Scalar dependencesPredicted;
    stats::Scalar violationsTrained;

  private:
    unsigned ssitIndex(Addr pc) const;
    void maybeClear();

    /** Write @p seq into LFST slot @p slot, keeping lfst_rev_ in sync. */
    void lfstWrite(unsigned slot, SeqNum seq);

    StoreSetsParams params_;
    std::vector<std::uint16_t> ssit_;
    std::vector<SeqNum> lfst_;
    /**
     * Reverse index of lfst_: seq -> slots currently holding it.
     * Retirement is then a hash lookup instead of a full LFST scan
     * (storeRetired fires for every store leaving the window, almost
     * none of which are still anyone's last-fetched store).
     */
    std::unordered_multimap<SeqNum, unsigned> lfst_rev_;
    std::uint16_t next_ssid_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace predictor
} // namespace srl

#endif // SRLSIM_PREDICTOR_STORE_SETS_HH
