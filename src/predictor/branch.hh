/**
 * @file
 * Branch direction predictors for the front end (Table 1: gshare-
 * perceptron hybrid; 64K-entry gshare, 256 perceptrons).
 *
 * The trace is dynamically resolved, so the predictor's job in srlsim is
 * purely timing: a mispredicted branch charges the pipeline-restart
 * penalty and, on the CPR substrate, squashes back to the containing
 * checkpoint.
 */

#ifndef SRLSIM_PREDICTOR_BRANCH_HH
#define SRLSIM_PREDICTOR_BRANCH_HH

#include <cstdint>
#include <vector>

#include "common/bytes.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace srl
{
namespace predictor
{

/** Abstract direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /** Train with the resolved direction; also advances history. */
    virtual void update(Addr pc, bool taken) = 0;

    stats::Scalar lookups;
    stats::Scalar mispredicts;
};

/** Classic gshare: global history XOR PC indexing a 2-bit counter table. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(unsigned table_entries = 64 * 1024,
                             unsigned history_bits = 16);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

    /** Serialize table + history + counters for checkpointing. */
    void serialize(bytes::ByteWriter &w) const;

    /** Restore into a predictor of identical geometry. */
    void deserialize(bytes::ByteReader &r);

  private:
    unsigned index(Addr pc) const;

    std::vector<std::uint8_t> table_; ///< 2-bit saturating counters
    unsigned history_bits_;
    std::uint64_t history_ = 0;
};

/** Single-layer perceptron predictor (Jimenez & Lin). */
class PerceptronPredictor : public BranchPredictor
{
  public:
    explicit PerceptronPredictor(unsigned num_perceptrons = 256,
                                 unsigned history_bits = 24);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

    /** Serialize weights + history + counters for checkpointing. */
    void serialize(bytes::ByteWriter &w) const;

    /** Restore into a predictor of identical geometry. */
    void deserialize(bytes::ByteReader &r);

  private:
    int output(Addr pc) const;

    unsigned num_perceptrons_;
    unsigned history_bits_;
    int threshold_;
    std::vector<std::int16_t> weights_; ///< (history_bits+1) per row
    std::uint64_t history_ = 0;
};

/**
 * Gshare-perceptron hybrid with a 2-bit chooser table, trained only when
 * the components disagree.
 */
class HybridPredictor : public BranchPredictor
{
  public:
    HybridPredictor(unsigned gshare_entries = 64 * 1024,
                    unsigned num_perceptrons = 256,
                    unsigned chooser_entries = 4096);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

    /** Serialize both components, chooser, and counters. */
    void serialize(bytes::ByteWriter &w) const;

    /** Restore into a predictor of identical geometry. */
    void deserialize(bytes::ByteReader &r);

  private:
    GsharePredictor gshare_;
    PerceptronPredictor perceptron_;
    std::vector<std::uint8_t> chooser_; ///< 2-bit: >=2 favors perceptron
    // Last predictions, keyed implicitly by call order (predict is
    // always followed by update for the same branch in this simulator).
    bool last_gshare_ = false;
    bool last_perceptron_ = false;
};

} // namespace predictor
} // namespace srl

#endif // SRLSIM_PREDICTOR_BRANCH_HH
