#include "predictor/branch.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace predictor
{

namespace
{

/** Saturating 2-bit counter update. */
std::uint8_t
bump2(std::uint8_t c, bool up)
{
    if (up)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

} // namespace

GsharePredictor::GsharePredictor(unsigned table_entries,
                                 unsigned history_bits)
    : table_(table_entries, 1), history_bits_(history_bits)
{
    fatal_if(!isPowerOf2(table_entries),
             "gshare table size must be a power of two");
}

unsigned
GsharePredictor::index(Addr pc) const
{
    const std::uint64_t h = history_ & mask(history_bits_);
    return static_cast<unsigned>(((pc >> 2) ^ h) & (table_.size() - 1));
}

bool
GsharePredictor::predict(Addr pc)
{
    ++lookups;
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    const unsigned idx = index(pc);
    if ((table_[idx] >= 2) != taken)
        ++mispredicts;
    table_[idx] = bump2(table_[idx], taken);
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

PerceptronPredictor::PerceptronPredictor(unsigned num_perceptrons,
                                         unsigned history_bits)
    : num_perceptrons_(num_perceptrons), history_bits_(history_bits),
      threshold_(static_cast<int>(1.93 * history_bits + 14)),
      weights_(static_cast<std::size_t>(num_perceptrons) *
               (history_bits + 1))
{
    fatal_if(!isPowerOf2(num_perceptrons),
             "perceptron count must be a power of two");
    fatal_if(history_bits_ > 62, "history too long");
}

int
PerceptronPredictor::output(Addr pc) const
{
    const std::size_t row =
        static_cast<std::size_t>((pc >> 2) & (num_perceptrons_ - 1)) *
        (history_bits_ + 1);
    int y = weights_[row]; // bias weight
    for (unsigned i = 0; i < history_bits_; ++i) {
        const bool bit = (history_ >> i) & 1;
        y += bit ? weights_[row + 1 + i] : -weights_[row + 1 + i];
    }
    return y;
}

bool
PerceptronPredictor::predict(Addr pc)
{
    ++lookups;
    return output(pc) >= 0;
}

void
PerceptronPredictor::update(Addr pc, bool taken)
{
    const int y = output(pc);
    const bool predicted = y >= 0;
    if (predicted != taken)
        ++mispredicts;

    if (predicted != taken || std::abs(y) <= threshold_) {
        const std::size_t row =
            static_cast<std::size_t>((pc >> 2) &
                                     (num_perceptrons_ - 1)) *
            (history_bits_ + 1);
        const int t = taken ? 1 : -1;
        auto bump = [](std::int16_t w, int delta) {
            const int v = std::clamp(w + delta, -128, 127);
            return static_cast<std::int16_t>(v);
        };
        weights_[row] = bump(weights_[row], t);
        for (unsigned i = 0; i < history_bits_; ++i) {
            const int x = ((history_ >> i) & 1) ? 1 : -1;
            weights_[row + 1 + i] = bump(weights_[row + 1 + i], t * x);
        }
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

HybridPredictor::HybridPredictor(unsigned gshare_entries,
                                 unsigned num_perceptrons,
                                 unsigned chooser_entries)
    : gshare_(gshare_entries), perceptron_(num_perceptrons),
      chooser_(chooser_entries, 2)
{
    fatal_if(!isPowerOf2(chooser_entries),
             "chooser table size must be a power of two");
}

bool
HybridPredictor::predict(Addr pc)
{
    ++lookups;
    last_gshare_ = gshare_.predict(pc);
    last_perceptron_ = perceptron_.predict(pc);
    const auto idx = (pc >> 2) & (chooser_.size() - 1);
    return chooser_[idx] >= 2 ? last_perceptron_ : last_gshare_;
}

void
HybridPredictor::update(Addr pc, bool taken)
{
    const auto idx = (pc >> 2) & (chooser_.size() - 1);
    const bool chose_perceptron = chooser_[idx] >= 2;
    const bool prediction =
        chose_perceptron ? last_perceptron_ : last_gshare_;
    if (prediction != taken)
        ++mispredicts;
    if (last_gshare_ != last_perceptron_)
        chooser_[idx] = bump2(chooser_[idx], last_perceptron_ == taken);
    gshare_.update(pc, taken);
    perceptron_.update(pc, taken);
}

namespace
{

void
restoreScalar(stats::Scalar &s, std::uint64_t v)
{
    s.reset();
    s += v;
}

} // namespace

void
GsharePredictor::serialize(bytes::ByteWriter &w) const
{
    w.u64(table_.size());
    w.raw(table_.data(), table_.size());
    w.u64(history_);
    w.u64(lookups.value());
    w.u64(mispredicts.value());
}

void
GsharePredictor::deserialize(bytes::ByteReader &r)
{
    if (r.u64() != table_.size())
        throw bytes::CodecError("gshare table size mismatch");
    r.raw(table_.data(), table_.size());
    history_ = r.u64();
    restoreScalar(lookups, r.u64());
    restoreScalar(mispredicts, r.u64());
}

void
PerceptronPredictor::serialize(bytes::ByteWriter &w) const
{
    w.u64(weights_.size());
    for (const std::int16_t v : weights_)
        w.u16(static_cast<std::uint16_t>(v));
    w.u64(history_);
    w.u64(lookups.value());
    w.u64(mispredicts.value());
}

void
PerceptronPredictor::deserialize(bytes::ByteReader &r)
{
    if (r.u64() != weights_.size())
        throw bytes::CodecError("perceptron weight count mismatch");
    for (std::int16_t &v : weights_)
        v = static_cast<std::int16_t>(r.u16());
    history_ = r.u64();
    restoreScalar(lookups, r.u64());
    restoreScalar(mispredicts, r.u64());
}

void
HybridPredictor::serialize(bytes::ByteWriter &w) const
{
    gshare_.serialize(w);
    perceptron_.serialize(w);
    w.u64(chooser_.size());
    w.raw(chooser_.data(), chooser_.size());
    w.boolean(last_gshare_);
    w.boolean(last_perceptron_);
    w.u64(lookups.value());
    w.u64(mispredicts.value());
}

void
HybridPredictor::deserialize(bytes::ByteReader &r)
{
    gshare_.deserialize(r);
    perceptron_.deserialize(r);
    if (r.u64() != chooser_.size())
        throw bytes::CodecError("chooser table size mismatch");
    r.raw(chooser_.data(), chooser_.size());
    last_gshare_ = r.boolean();
    last_perceptron_ = r.boolean();
    restoreScalar(lookups, r.u64());
    restoreScalar(mispredicts, r.u64());
}

} // namespace predictor
} // namespace srl
