#include "service/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace srl
{
namespace service
{
namespace json
{

namespace
{

/** Nesting bound: protocol messages are shallow; 64 is generous. */
constexpr unsigned kMaxDepth = 64;

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw ParseError("service JSON: " + what + " at offset " +
                         std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ >= text_.size())
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_ + i];
                    unsigned nibble;
                    if (h >= '0' && h <= '9')
                        nibble = static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        nibble = static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        nibble = static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                    cp = (cp << 4) | nibble;
                }
                pos_ += 4;
                // Protocol strings only escape control/ASCII chars;
                // encode the low byte (matching the stats reader).
                out += static_cast<char>(cp & 0xff);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    double
    parseNumber()
    {
        skipWs();
        // Validate against the strict JSON number grammar before
        // handing to strtod: strtod alone also accepts leading zeros,
        // "+5", ".5", hex floats, inf and nan — all invalid JSON.
        const std::size_t start_pos = pos_;
        std::size_t p = pos_;
        const auto digit = [&](std::size_t i) {
            return i < text_.size() && text_[i] >= '0' &&
                   text_[i] <= '9';
        };
        if (p < text_.size() && text_[p] == '-')
            ++p;
        if (!digit(p))
            fail("expected number");
        if (text_[p] == '0') {
            ++p;
        } else {
            while (digit(p))
                ++p;
        }
        if (p < text_.size() && text_[p] == '.') {
            ++p;
            if (!digit(p))
                fail("bad number: digit required after '.'");
            while (digit(p))
                ++p;
        }
        if (p < text_.size() && (text_[p] == 'e' || text_[p] == 'E')) {
            ++p;
            if (p < text_.size() &&
                (text_[p] == '+' || text_[p] == '-'))
                ++p;
            if (!digit(p))
                fail("bad number: digit required in exponent");
            while (digit(p))
                ++p;
        }
        if (digit(p))
            fail("bad number: leading zero");
        const char *start = text_.c_str() + start_pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end != start + (p - start_pos))
            fail("bad number");
        pos_ = p;
        return v;
    }

    Value
    parseValue(unsigned depth)
    {
        if (depth > kMaxDepth)
            fail("nesting too deep");
        const char c = peek();
        if (c == '{') {
            ++pos_;
            Value v = Value::object();
            if (consume('}'))
                return v;
            do {
                std::string key = parseString();
                expect(':');
                v.set(std::move(key), parseValue(depth + 1));
            } while (consume(','));
            expect('}');
            return v;
        }
        if (c == '[') {
            ++pos_;
            Value v = Value::array();
            if (consume(']'))
                return v;
            do {
                v.push(parseValue(depth + 1));
            } while (consume(','));
            expect(']');
            return v;
        }
        if (c == '"')
            return Value::str(parseString());
        if (consumeWord("true"))
            return Value::boolean(true);
        if (consumeWord("false"))
            return Value::boolean(false);
        if (consumeWord("null"))
            return Value::null();
        return Value::number(parseNumber());
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

[[noreturn]] void
kindFail(const char *want)
{
    throw ParseError(std::string("service JSON: value is not ") + want);
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::kBool)
        kindFail("a bool");
    return bool_;
}

double
Value::asNumber() const
{
    if (kind_ != Kind::kNumber)
        kindFail("a number");
    return num_;
}

std::uint64_t
Value::asU64() const
{
    const double v = asNumber();
    if (v < 0 || std::isnan(v))
        kindFail("a non-negative integer");
    return static_cast<std::uint64_t>(v);
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::kString)
        kindFail("a string");
    return str_;
}

const std::vector<Value> &
Value::items() const
{
    if (kind_ != Kind::kArray)
        kindFail("an array");
    return arr_;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (kind_ != Kind::kObject)
        kindFail("an object");
    return obj_;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::kObject)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
Value::getString(const std::string &key,
                 const std::string &fallback) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->str_ : fallback;
}

double
Value::getNumber(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->num_ : fallback;
}

std::uint64_t
Value::getU64(const std::string &key, std::uint64_t fallback) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->asU64() : fallback;
}

bool
Value::getBool(const std::string &key, bool fallback) const
{
    const Value *v = find(key);
    return v && v->isBool() ? v->bool_ : fallback;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        throw ParseError("service JSON: missing required field '" +
                         key + "'");
    return *v;
}

Value &
Value::set(const std::string &key, Value v)
{
    if (kind_ != Kind::kObject)
        kindFail("an object");
    for (auto &[k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

Value &
Value::push(Value v)
{
    if (kind_ != Kind::kArray)
        kindFail("an array");
    arr_.push_back(std::move(v));
    return *this;
}

void
Value::dumpTo(std::string &out) const
{
    switch (kind_) {
      case Kind::kNull:
        out += "null";
        break;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber:
        out += stats::formatDouble(num_);
        break;
      case Kind::kString:
        out += '"';
        out += escape(str_);
        out += '"';
        break;
      case Kind::kArray: {
        out += '[';
        bool first = true;
        for (const auto &v : arr_) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Kind::kObject: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += escape(k);
            out += "\":";
            v.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Value::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

Value
Value::parse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

} // namespace json
} // namespace service
} // namespace srl
