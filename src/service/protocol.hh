/**
 * @file
 * srlsim-service-v1: the sweep daemon's line-delimited JSON protocol.
 *
 * Every message is one JSON object on one line. Client requests:
 *
 *   {"schema":"srlsim-service-v1","op":"hello","client":"sweep_tool"}
 *   {"schema":"srlsim-service-v1","op":"submit","id":3,"point":{...}}
 *   {"schema":"srlsim-service-v1","op":"stats"}
 *
 * Server responses (matched to submits by "id"; results may arrive in
 * any order relative to submission):
 *
 *   {"schema":...,"op":"welcome","server":"srlsim-serve/1"}
 *   {"schema":...,"op":"accepted","id":3,"key":"<32-hex>"}
 *   {"schema":...,"op":"busy","id":3,"retry_after_ms":200}
 *   {"schema":...,"op":"result","id":3,"key":"...","cached":true,
 *    "coalesced":false,"record":"<srlsim-stats-v1 single-run JSON>"}
 *   {"schema":...,"op":"stats","report":"<srlsim-stats-v1 JSON>"}
 *   {"schema":...,"op":"error","id":3,"message":"..."}
 *
 * A completed run travels as its srlsim-stats-v1 single-run report
 * embedded as a JSON string, so the byte-exact stats round-tripper is
 * the (already pinned) codec for result payloads: a record fetched
 * from the daemon re-serializes byte-identically to one produced by a
 * direct runner::runSweep.
 *
 * A design point travels as a *spec* — a named base configuration plus
 * a small set of override knobs — rather than a full field dump; the
 * server materializes the spec into a full ProcessorConfig/SuiteProfile
 * and content-addresses the materialized structs (common/chash.hh), so
 * any two specs that materialize identically share one cache entry
 * regardless of how the request was phrased.
 */

#ifndef SRLSIM_SERVICE_PROTOCOL_HH
#define SRLSIM_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "core/config.hh"
#include "service/json.hh"
#include "workload/profile.hh"

namespace srl
{
namespace service
{

/** Protocol schema marker; present on every message both ways. */
extern const char kProtocolSchema[];

/**
 * One design point, as it travels on the wire: a base config name
 * ("baseline", "srl", "hierarchical", "ideal", "monolithic"), a
 * built-in suite name, uops, the fully derived run seed, and optional
 * overrides (0 / empty = keep the base's value).
 */
struct PointSpec
{
    std::string name;  ///< report row name
    std::string base = "srl";
    std::string suite = "SFP2K";
    std::uint64_t uops = 150000;
    std::uint64_t run_seed = 0; ///< raw seed_override (0 = canonical)
    bool occupancy_series = true;

    unsigned srl_depth = 0;    ///< SRL capacity override
    unsigned lcf_entries = 0;  ///< LCF size override
    std::string lcf_hash;      ///< "", "lab" or "3pax"
    unsigned stq_entries = 0;  ///< monolithic STQ size override

    /**
     * Sampled-run plan (all zero = fully detailed, the default). When
     * sampled(), the service runs the point through runner::runSampled
     * with this per-interval ff/warm/detail budget; shard_start /
     * shard_count select a slice of the detailed intervals
     * (shard_count 0 = all remaining), served from the daemon's
     * checkpoint directory.
     */
    std::uint64_t ff_uops = 0;
    std::uint64_t warm_uops = 0;
    std::uint64_t detail_uops = 0;
    std::uint64_t shard_start = 0;
    std::uint64_t shard_count = 0;

    /**
     * Request pipelined independent-interval sampling semantics
     * (DESIGN.md §15) instead of the chained interval loop. Changes
     * the results — so it is part of the cache key — but the *worker
     * count* the daemon uses is a server-side knob
     * (ServiceOptions::sample_jobs): pipelined results are
     * byte-identical at any worker count, so the count never appears
     * on the wire or in the key. Incompatible with a shard window.
     */
    bool pipelined = false;

    bool
    sampled() const
    {
        return ff_uops != 0 || warm_uops != 0 || detail_uops != 0;
    }

    /**
     * Expand the spec into the full processor config it names.
     * @throws stats::ParseError on an unknown base/hash name.
     */
    core::ProcessorConfig materializeConfig() const;

    /**
     * Resolve the suite name against the built-in Table 2 profiles.
     * @throws stats::ParseError on an unknown suite.
     */
    workload::SuiteProfile materializeSuite() const;

    json::Value toJson() const;
    static PointSpec fromJson(const json::Value &v);
};

/** A parsed client request. */
struct Request
{
    std::string op;         ///< "hello" | "submit" | "stats"
    std::uint64_t id = 0;   ///< submit correlation id
    std::string client;     ///< hello: client name
    PointSpec point;        ///< submit: the design point
};

/**
 * Parse one request line. @throws stats::ParseError on malformed
 * JSON, a wrong/missing schema marker, or an unknown op.
 */
Request parseRequest(const std::string &line);

/** Serialize requests (client side). */
std::string helloLine(const std::string &client);
std::string submitLine(std::uint64_t id, const PointSpec &point);
std::string statsLine();

/** Serialize responses (server side). */
std::string welcomeLine(const std::string &server);
std::string acceptedLine(std::uint64_t id, const std::string &key_hex);
std::string busyLine(std::uint64_t id, unsigned retry_after_ms);
std::string errorLine(std::uint64_t id, const std::string &message);
std::string resultLine(std::uint64_t id, const std::string &key_hex,
                       bool cached, bool coalesced,
                       const stats::RunRecord &record);
std::string statsReportLine(const stats::StatsReport &report);

/**
 * Decode a "result" payload back into the run record it carries.
 * @throws stats::ParseError if the embedded report is malformed or
 * does not hold exactly one run.
 */
stats::RunRecord decodeResultRecord(const json::Value &result_msg);

/** Wrap one record as a single-run srlsim-stats-v1 report string. */
std::string encodeRecord(const stats::RunRecord &record);

} // namespace service
} // namespace srl

#endif // SRLSIM_SERVICE_PROTOCOL_HH
