/**
 * @file
 * The sweep service: admission control and execution for design-point
 * requests, on top of the content-addressed ResultCache and the
 * runner's ThreadPool.
 *
 * Admission: each client owns a FIFO of pending jobs; a round-robin
 * dispatcher feeds at most `jobs` concurrent simulations from those
 * FIFOs, so one client streaming thousands of points cannot starve
 * another submitting two. Total queued (not yet running) jobs are
 * bounded by `queue_depth`; a submit over the bound is rejected with
 * kBusy and the client's retry_after hint — backpressure instead of
 * unbounded memory. drain() stops admission (further submits get
 * kDraining) and blocks until every queued and running job has
 * completed and delivered its result, which is what the daemon does on
 * SIGTERM.
 *
 * Execution: a job materializes its PointSpec, content-addresses the
 * materialized point (common/chash.hh), and runs it through
 * ResultCache::getOrCompute — so identical points across clients (or
 * across daemon restarts, via the disk store) simulate once.
 *
 * runSweepCached() is the daemon-less flavor of the same memoization:
 * runner::runSweep semantics (byte-identical report, any job count)
 * with each point wrapped in the cache.
 */

#ifndef SRLSIM_SERVICE_SERVICE_HH
#define SRLSIM_SERVICE_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "service/protocol.hh"
#include "service/result_cache.hh"

namespace srl
{
namespace service
{

struct ServiceOptions
{
    /** Concurrent simulations; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Max queued (admitted, not yet running) jobs across clients. */
    std::size_t queue_depth = 64;
    /** Backpressure hint handed to rejected clients. */
    unsigned retry_after_ms = 200;
    /**
     * Checkpoint directory for sampled points (PointSpec::sampled()):
     * shard requests restore their interval's `srlsim-ckpt-v1` entry
     * from here and leave the next shard's behind. Empty = sampled
     * points run straight through without checkpoint I/O (shard
     * requests then fail loudly).
     */
    std::string ckpt_dir;
    /**
     * Detail-worker count for pipelined sampled points
     * (PointSpec::pipelined): how many concurrent detailed intervals
     * one pipelined run uses. Purely a server-side throughput knob —
     * pipelined results are byte-identical at any value, so it is not
     * part of the cache key. 0 = 1 (serial pipelined).
     */
    unsigned sample_jobs = 0;
};

class SweepService
{
  public:
    /** How a submit was received. */
    enum class Admit : std::uint8_t
    {
        kAccepted,
        kBusy,     ///< queue full; retry after retry_after_ms
        kDraining, ///< shutting down; no new work
    };

    /**
     * Completion callback: the finished record (name forced to the
     * spec's), its content key, and how the cache satisfied it. Called
     * on a worker thread; error records carry RunRecord::error.
     */
    using ResultFn = std::function<void(
        const stats::RunRecord &, const chash::Hash128 &,
        ResultCache::Outcome)>;

    SweepService(ResultCache &cache, const ServiceOptions &opts);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Admit one design point for @p client. On kAccepted, @p done
     * fires exactly once, later, from a worker thread; on kBusy /
     * kDraining it never fires.
     */
    Admit submit(std::uint64_t client, PointSpec spec, ResultFn done);

    /** Stop admitting and block until all admitted work completed. */
    void drain();

    const ServiceOptions &options() const { return opts_; }
    unsigned retryAfterMs() const { return opts_.retry_after_ms; }

    /** Service + cache counters as one srlsim-stats-v1 report. */
    stats::StatsReport statsReport() const;

  private:
    struct Job
    {
        PointSpec spec;
        ResultFn done;
    };

    void pump(std::unique_lock<std::mutex> &lock);
    void runJob(Job job);

    ResultCache &cache_;
    ServiceOptions opts_;
    unsigned max_active_;
    runner::ThreadPool pool_;

    mutable std::mutex mutex_;
    std::condition_variable drained_cv_;
    std::map<std::uint64_t, std::deque<Job>> queues_;
    std::vector<std::uint64_t> rr_clients_; ///< clients with queued work
    std::size_t rr_cursor_ = 0;
    std::size_t queued_ = 0;
    unsigned active_ = 0;
    bool draining_ = false;

    // Counters (guarded by mutex_).
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t rejected_busy_ = 0;
    std::uint64_t rejected_draining_ = 0;
    std::size_t queue_peak_ = 0;
};

/**
 * runner::runSweep with every point memoized through @p cache. The
 * report is byte-identical to runner::runSweep of the same points and
 * options — on a cold cache because each task computes exactly the
 * runSweep record, on a warm cache because entries round-trip through
 * the byte-exact stats codec (and record names are re-imposed from
 * the point list, so a cache entry can serve differently named rows).
 */
stats::StatsReport runSweepCached(
    const std::vector<runner::SweepPoint> &points,
    const runner::SweepOptions &opts, ResultCache &cache);

/**
 * The canonical 11-point SRL design-space sweep (sweep_tool's sweep:
 * baseline, four SRL depths, four LCF size x hash points,
 * hierarchical, ideal) as protocol specs, with per-point run seeds
 * derived from @p base_seed exactly like runner::runTasks derives
 * them — so a server-side execution of these specs reproduces a local
 * runSweep byte for byte.
 */
std::vector<PointSpec> canonicalSweepSpecs(const std::string &suite,
                                           std::uint64_t uops,
                                           std::uint64_t base_seed);

/**
 * Expand specs into runner sweep points (materialized config + suite,
 * in spec order). @throws stats::ParseError on an invalid spec.
 */
std::vector<runner::SweepPoint>
materializePoints(const std::vector<PointSpec> &specs);

} // namespace service
} // namespace srl

#endif // SRLSIM_SERVICE_SERVICE_HH
