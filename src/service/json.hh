/**
 * @file
 * Minimal JSON value type for the sweep-service wire protocol
 * (srlsim-service-v1): parse one line-delimited message into a tree,
 * read it field by field, and dump a tree back to a compact single
 * line. Object member order is preserved on both sides so dumps are
 * deterministic.
 *
 * This is deliberately separate from the srlsim-stats-v1 reader in
 * common/stats.cc: that one is schema-driven and pinned to the report
 * round-trip; this one is generic because protocol messages nest
 * arbitrary small objects. Malformed input of any kind — truncation,
 * bad escapes, trailing garbage, over-deep nesting — raises
 * stats::ParseError, never UB.
 */

#ifndef SRLSIM_SERVICE_JSON_HH
#define SRLSIM_SERVICE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace srl
{
namespace service
{
namespace json
{

/** Parse failure; alias of the stats parser's error for one catch. */
using ParseError = stats::ParseError;

class Value
{
  public:
    enum class Kind : std::uint8_t
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Value() = default;

    static Value null() { return Value(); }
    static Value
    boolean(bool b)
    {
        Value v;
        v.kind_ = Kind::kBool;
        v.bool_ = b;
        return v;
    }
    static Value
    number(double n)
    {
        Value v;
        v.kind_ = Kind::kNumber;
        v.num_ = n;
        return v;
    }
    static Value
    str(std::string s)
    {
        Value v;
        v.kind_ = Kind::kString;
        v.str_ = std::move(s);
        return v;
    }
    static Value
    array()
    {
        Value v;
        v.kind_ = Kind::kArray;
        return v;
    }
    static Value
    object()
    {
        Value v;
        v.kind_ = Kind::kObject;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isObject() const { return kind_ == Kind::kObject; }
    bool isArray() const { return kind_ == Kind::kArray; }
    bool isString() const { return kind_ == Kind::kString; }
    bool isNumber() const { return kind_ == Kind::kNumber; }
    bool isBool() const { return kind_ == Kind::kBool; }

    /** Typed accessors; throw ParseError on a kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    std::uint64_t asU64() const;
    const std::string &asString() const;
    const std::vector<Value> &items() const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    /** Object member by key; null when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Convenience getters with defaults for optional fields. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    double getNumber(const std::string &key, double fallback = 0) const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback = 0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    /** Required-field getters; throw ParseError when absent. */
    const Value &at(const std::string &key) const;

    /** Builders (object/array only; throw on kind mismatch). */
    Value &set(const std::string &key, Value v);
    Value &push(Value v);

    /**
     * Compact single-line serialization (no spaces, members in
     * insertion order, numbers via stats::formatDouble so a
     * dump/parse/dump cycle is byte-stable).
     */
    std::string dump() const;

    /**
     * Parse exactly one JSON document; trailing non-whitespace is an
     * error. @throws ParseError on any malformed input.
     */
    static Value parse(const std::string &text);

  private:
    void dumpTo(std::string &out) const;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

} // namespace json
} // namespace service
} // namespace srl

#endif // SRLSIM_SERVICE_JSON_HH
