/**
 * @file
 * Client for the sweep daemon: connects to the unix socket, submits a
 * batch of PointSpecs, rides out backpressure (busy responses are
 * retried after the server's hint), collects results in any arrival
 * order, and reassembles them into a StatsReport in point order —
 * byte-identical to a direct runner::runSweep of the same points,
 * because result payloads travel as srlsim-stats-v1 records and the
 * report-level meta (seed, points) is reconstructed exactly the way
 * runner::runTasks writes it.
 */

#ifndef SRLSIM_SERVICE_CLIENT_HH
#define SRLSIM_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "service/protocol.hh"

namespace srl
{
namespace service
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the daemon socket; false + stderr note on failure. */
    bool connect(const std::string &socket_path);

    bool connected() const { return fd_ >= 0; }

    void close();

    /**
     * Submit every point, handle busy/retry, await all results, and
     * return the report in point order. @p base_seed goes into
     * rep.meta["seed"] (the specs already carry their derived
     * run_seeds, so it does not influence execution here).
     * @throws std::runtime_error on a connection failure or a
     * server-reported error.
     */
    stats::StatsReport runSweep(const std::vector<PointSpec> &points,
                                std::uint64_t base_seed);

    /**
     * Totals of the last runSweep: how many of its results came from
     * the daemon's cache (disk hit or coalesced onto another run).
     */
    std::uint64_t lastCachedResults() const { return last_cached_; }
    std::uint64_t lastComputedResults() const { return last_computed_; }
    std::uint64_t lastBusyRetries() const { return last_busy_; }

    /** Fetch the daemon's service/cache counters report. */
    stats::StatsReport fetchStats();

  private:
    void sendLine(const std::string &line);
    /** Blocking read of one line. @throws std::runtime_error on EOF. */
    std::string readLine();

    int fd_ = -1;
    std::string buffer_;
    std::uint64_t last_cached_ = 0;
    std::uint64_t last_computed_ = 0;
    std::uint64_t last_busy_ = 0;
};

} // namespace service
} // namespace srl

#endif // SRLSIM_SERVICE_CLIENT_HH
