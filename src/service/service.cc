#include "service/service.hh"

#include <thread>
#include <utility>

#include "runner/sampled.hh"

namespace srl
{
namespace service
{

SweepService::SweepService(ResultCache &cache,
                           const ServiceOptions &opts)
    : cache_(cache), opts_(opts),
      max_active_(opts.jobs ? opts.jobs
                            : (std::thread::hardware_concurrency()
                                   ? std::thread::hardware_concurrency()
                                   : 1)),
      pool_(max_active_)
{
}

SweepService::~SweepService()
{
    drain();
}

SweepService::Admit
SweepService::submit(std::uint64_t client, PointSpec spec,
                     ResultFn done)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
        ++rejected_draining_;
        return Admit::kDraining;
    }
    if (queued_ >= opts_.queue_depth) {
        ++rejected_busy_;
        return Admit::kBusy;
    }
    auto &q = queues_[client];
    if (q.empty())
        rr_clients_.push_back(client);
    q.push_back(Job{std::move(spec), std::move(done)});
    ++queued_;
    ++submitted_;
    queue_peak_ = std::max(queue_peak_, queued_);
    pump(lock);
    return Admit::kAccepted;
}

void
SweepService::pump(std::unique_lock<std::mutex> &lock)
{
    // Called with mutex_ held; hands ready jobs to the pool
    // round-robin across clients until the concurrency budget or the
    // queues run out.
    (void)lock;
    while (active_ < max_active_ && queued_ > 0) {
        rr_cursor_ %= rr_clients_.size();
        const std::uint64_t client = rr_clients_[rr_cursor_];
        auto &q = queues_[client];
        Job job = std::move(q.front());
        q.pop_front();
        --queued_;
        if (q.empty()) {
            queues_.erase(client);
            // The erase shifts the next client into the cursor slot,
            // so the cursor only advances when the client stays.
            rr_clients_.erase(rr_clients_.begin() +
                              static_cast<std::ptrdiff_t>(rr_cursor_));
        } else {
            ++rr_cursor_;
        }
        ++active_;
        auto shared = std::make_shared<Job>(std::move(job));
        pool_.submit([this, shared] { runJob(std::move(*shared)); });
    }
}

void
SweepService::runJob(Job job)
{
    stats::RunRecord record;
    chash::Hash128 key{};
    ResultCache::Outcome outcome = ResultCache::Outcome::kMiss;

    try {
        const core::ProcessorConfig cfg = job.spec.materializeConfig();
        const workload::SuiteProfile suite =
            job.spec.materializeSuite();
        const std::uint64_t run_seed = job.spec.run_seed;
        const std::uint64_t uops = job.spec.uops;
        const bool occupancy = job.spec.occupancy_series;
        key = chash::pointKey(cfg, suite, uops, run_seed, occupancy,
                              job.spec.ff_uops, job.spec.warm_uops,
                              job.spec.detail_uops,
                              job.spec.shard_start,
                              job.spec.shard_count,
                              job.spec.pipelined);
        const PointSpec &spec = job.spec;
        const std::string &ckpt_dir = opts_.ckpt_dir;
        const unsigned sample_jobs = opts_.sample_jobs;
        ResultCache::GetResult got = cache_.getOrCompute(
            key,
            [&cfg, &suite, uops, run_seed, occupancy, &spec,
             &ckpt_dir, sample_jobs] {
                if (spec.sampled()) {
                    runner::SampledOptions sopts;
                    sopts.plan.ff_uops = spec.ff_uops;
                    sopts.plan.warm_uops = spec.warm_uops;
                    sopts.plan.detail_uops = spec.detail_uops;
                    sopts.ckpt_dir = ckpt_dir;
                    sopts.shard_start = spec.shard_start;
                    if (spec.shard_count)
                        sopts.shard_count = spec.shard_count;
                    // Worker count is a daemon knob, never part of
                    // the key: pipelined results are jobs-invariant.
                    if (spec.pipelined)
                        sopts.sample_jobs =
                            sample_jobs ? sample_jobs : 1;
                    return runner::runSampled(cfg, suite, uops,
                                              run_seed, sopts)
                        .record;
                }
                const core::RunResult r =
                    core::runOne(cfg, suite, uops, run_seed);
                return runner::recordFromResult(r, run_seed, occupancy);
            });
        record = std::move(got.record);
        outcome = got.outcome;
    } catch (const std::exception &e) {
        record.error = e.what();
    } catch (...) {
        record.error = "unknown exception";
    }
    record.name = job.spec.name;

    if (job.done)
        job.done(record, key, outcome);

    std::unique_lock<std::mutex> lock(mutex_);
    --active_;
    ++completed_;
    if (record.failed())
        ++failed_;
    pump(lock);
    if (queued_ == 0 && active_ == 0)
        drained_cv_.notify_all();
}

void
SweepService::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    drained_cv_.wait(lock,
                     [this] { return queued_ == 0 && active_ == 0; });
}

stats::StatsReport
SweepService::statsReport() const
{
    stats::StatsReport rep;
    rep.meta["role"] = "srlsim-service";

    stats::RunRecord svc;
    svc.name = "service";
    {
        std::lock_guard<std::mutex> lock(mutex_);
        svc.set("submitted", static_cast<double>(submitted_));
        svc.set("completed", static_cast<double>(completed_));
        svc.set("failed", static_cast<double>(failed_));
        svc.set("rejected_busy", static_cast<double>(rejected_busy_));
        svc.set("rejected_draining",
                static_cast<double>(rejected_draining_));
        svc.set("queue_depth", static_cast<double>(queued_));
        svc.set("queue_peak", static_cast<double>(queue_peak_));
        svc.set("active", static_cast<double>(active_));
        svc.set("max_active", static_cast<double>(max_active_));
    }
    rep.runs.push_back(std::move(svc));
    rep.runs.push_back(cache_.countersRecord());
    return rep;
}

stats::StatsReport
runSweepCached(const std::vector<runner::SweepPoint> &points,
               const runner::SweepOptions &opts, ResultCache &cache)
{
    std::vector<runner::Task> tasks;
    tasks.reserve(points.size());
    for (const auto &p : points) {
        tasks.push_back(
            {p.name, [&p, &opts, &cache](std::uint64_t run_seed) {
                 const chash::Hash128 key =
                     chash::pointKey(p.config, p.suite, p.uops,
                                     run_seed, opts.occupancy_series);
                 ResultCache::GetResult got = cache.getOrCompute(
                     key, [&p, &opts, run_seed] {
                         const core::RunResult r = core::runOne(
                             p.config, p.suite, p.uops, run_seed);
                         return runner::recordFromResult(
                             r, run_seed, opts.occupancy_series);
                     });
                 // runTasks re-imposes the task name, so a hit that
                 // was stored under another row name still lands
                 // correctly.
                 return got.record;
             }});
    }
    return runner::runTasks(tasks, opts);
}

std::vector<PointSpec>
canonicalSweepSpecs(const std::string &suite, std::uint64_t uops,
                    std::uint64_t base_seed)
{
    std::vector<PointSpec> specs;
    const auto add = [&](PointSpec s) {
        s.suite = suite;
        s.uops = uops;
        s.run_seed = runner::deriveRunSeed(base_seed, specs.size());
        specs.push_back(std::move(s));
    };

    PointSpec baseline;
    baseline.name = "baseline";
    baseline.base = "baseline";
    add(baseline);
    for (const unsigned depth : {128u, 256u, 512u, 1024u}) {
        PointSpec s;
        s.name = "srl-depth-" + std::to_string(depth);
        s.base = "srl";
        s.srl_depth = depth;
        add(s);
    }
    for (const char *hash : {"lab", "3pax"}) {
        for (const unsigned entries : {256u, 2048u}) {
            PointSpec s;
            s.name = "lcf-" + std::to_string(entries) + "-" + hash;
            s.base = "srl";
            s.lcf_entries = entries;
            s.lcf_hash = hash;
            add(s);
        }
    }
    PointSpec hier;
    hier.name = "hierarchical";
    hier.base = "hierarchical";
    add(hier);
    PointSpec ideal;
    ideal.name = "ideal-stq";
    ideal.base = "ideal";
    add(ideal);
    return specs;
}

std::vector<runner::SweepPoint>
materializePoints(const std::vector<PointSpec> &specs)
{
    std::vector<runner::SweepPoint> points;
    points.reserve(specs.size());
    for (const auto &s : specs) {
        points.push_back({s.name, s.materializeConfig(),
                          s.materializeSuite(), s.uops});
    }
    return points;
}

} // namespace service
} // namespace srl
