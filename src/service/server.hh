/**
 * @file
 * Unix-domain-socket front end for the sweep service: accepts
 * connections, reads line-delimited srlsim-service-v1 requests,
 * dispatches submits into the SweepService, and writes responses.
 *
 * Threading: one accept loop (run()), one reader thread per
 * connection. Result callbacks fire on simulation worker threads and
 * write directly to the client socket under the connection's write
 * mutex, so responses never interleave mid-line; a connection that
 * died first simply drops its results (send errors are ignored, the
 * cache keeps the completed work). requestStop() is async-signal-safe
 * to *flag* from a handler: both loops poll with a short timeout and
 * observe the flag. run() then stops accepting, drains the service,
 * and joins every connection thread before returning — the graceful
 * SIGTERM path.
 */

#ifndef SRLSIM_SERVICE_SERVER_HH
#define SRLSIM_SERVICE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hh"

namespace srl
{
namespace service
{

struct ServerOptions
{
    std::string socket_path;
    /** Listen backlog. */
    int backlog = 16;
};

class Server
{
  public:
    Server(SweepService &service, const ServerOptions &opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind and listen on the unix socket (unlinking a stale socket
     * file first). Returns false with a message on stderr on failure.
     */
    bool start();

    /**
     * Serve until requestStop(); then drain the sweep service, close
     * every connection, and join all threads. Returns the number of
     * connections served.
     */
    std::uint64_t run();

    /** Ask run() to wind down; safe to call from a signal handler's
     * flag path (only touches an atomic). */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    bool stopping() const
    {
        return stop_.load(std::memory_order_relaxed);
    }

  private:
    struct Connection
    {
        int fd = -1;
        std::uint64_t id = 0;
        std::mutex write_mutex;
        std::atomic<bool> open{true};
    };

    void handleConnection(const std::shared_ptr<Connection> &conn);
    void writeLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line);

    SweepService &service_;
    ServerOptions opts_;
    int listen_fd_ = -1;
    std::atomic<bool> stop_{false};
    std::uint64_t next_conn_id_ = 1;
    std::vector<std::thread> conn_threads_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::mutex conns_mutex_;
};

} // namespace service
} // namespace srl

#endif // SRLSIM_SERVICE_SERVER_HH
