/**
 * @file
 * Disk-backed content-addressed store of completed simulation runs,
 * with in-flight request coalescing.
 *
 * Every entry is one file, `<dir>/<32-hex-key>.json`, holding a
 * single-run srlsim-stats-v1 report whose report-level meta records
 * the content key. Writes are atomic (private temp file + rename, the
 * workload stream-cache discipline), so a reader never observes a
 * partial entry even when the writer is killed mid-write; reads
 * validate the JSON schema, the embedded key, and the single-run
 * shape, and treat any mismatch as a miss (the corrupt file is
 * removed and recomputed). The cache can lose, never corrupt.
 *
 * getOrCompute() additionally dedupes *in-flight* work: N concurrent
 * requests for the same key run exactly one computation; the rest
 * block on a shared future and are counted as coalesced. Failed
 * computations (records with a non-empty error) are delivered to all
 * waiters but never persisted.
 *
 * With max_entries > 0 the store is bounded: after an insert pushes
 * the entry count over the cap, the oldest entries (by file mtime) are
 * evicted.
 */

#ifndef SRLSIM_SERVICE_RESULT_CACHE_HH
#define SRLSIM_SERVICE_RESULT_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/chash.hh"
#include "common/stats.hh"

namespace srl
{
namespace service
{

class ResultCache
{
  public:
    struct Options
    {
        /** Cache directory; created on demand. Empty = in-flight
         * coalescing only, nothing touches disk. */
        std::string dir;
        /** Bound on stored entries; 0 = unbounded. */
        std::size_t max_entries = 0;
    };

    /** How getOrCompute satisfied a request. */
    enum class Outcome : std::uint8_t
    {
        kHit,       ///< served from the disk store
        kMiss,      ///< computed (and stored) by this call
        kCoalesced, ///< joined another caller's in-flight computation
    };

    struct GetResult
    {
        stats::RunRecord record;
        Outcome outcome = Outcome::kMiss;
    };

    /** Monotonic counters; snapshot via the accessors or statsReport. */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t coalesced = 0;
        std::uint64_t stores = 0;
        std::uint64_t store_failures = 0;
        std::uint64_t corrupt_entries = 0;
        std::uint64_t evictions = 0;
    };

    explicit ResultCache(Options opts);

    /**
     * Return the record for @p key, computing it with @p compute on a
     * miss. Thread-safe; concurrent calls with the same key coalesce
     * onto one computation. @p compute must not throw — report
     * failures through RunRecord::error (the sweep-runner convention);
     * as a backstop a thrown exception is converted to an error
     * record.
     */
    GetResult getOrCompute(
        const chash::Hash128 &key,
        const std::function<stats::RunRecord()> &compute);

    /** Disk-only probe; true and fills @p out on a valid entry. */
    bool lookup(const chash::Hash128 &key, stats::RunRecord &out);

    Counters counters() const;

    /** Counters as one srlsim-stats-v1 run ("result_cache"). */
    stats::RunRecord countersRecord() const;

    const Options &options() const { return opts_; }

    /** Entry file path for @p key (for tests / inspection). */
    std::string entryPath(const chash::Hash128 &key) const;

  private:
    struct Inflight
    {
        std::promise<GetResult> promise;
        std::shared_future<GetResult> future;
    };

    bool readEntry(const std::string &path, const std::string &key_hex,
                   stats::RunRecord &out, bool &corrupt);
    bool writeEntry(const std::string &path, const std::string &key_hex,
                    const stats::RunRecord &record);
    void evictOverCap();

    Options opts_;
    mutable std::mutex mutex_;
    Counters counters_;
    std::unordered_map<std::string, std::shared_ptr<Inflight>>
        inflight_;
};

} // namespace service
} // namespace srl

#endif // SRLSIM_SERVICE_RESULT_CACHE_HH
