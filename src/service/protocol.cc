#include "service/protocol.hh"

#include <cstdlib>

namespace srl
{
namespace service
{

const char kProtocolSchema[] = "srlsim-service-v1";

core::ProcessorConfig
PointSpec::materializeConfig() const
{
    core::ProcessorConfig cfg;
    if (base == "baseline") {
        cfg = core::baselineConfig();
    } else if (base == "srl") {
        cfg = core::srlConfig();
    } else if (base == "hierarchical") {
        cfg = core::hierarchicalConfig();
    } else if (base == "ideal") {
        cfg = core::idealConfig();
    } else if (base == "monolithic") {
        cfg = core::monolithicConfig(stq_entries ? stq_entries : 48);
    } else {
        throw stats::ParseError("service point: unknown base config '" +
                                base + "'");
    }
    if (srl_depth)
        cfg.srl.srl.capacity = srl_depth;
    if (lcf_entries)
        cfg.srl.lcf.entries = lcf_entries;
    if (!lcf_hash.empty()) {
        if (lcf_hash == "lab")
            cfg.srl.lcf.hash = lsq::HashScheme::kLowerAddressBits;
        else if (lcf_hash == "3pax")
            cfg.srl.lcf.hash = lsq::HashScheme::kThreePieceXor;
        else
            throw stats::ParseError(
                "service point: unknown lcf hash '" + lcf_hash + "'");
    }
    if (stq_entries && base != "monolithic")
        cfg.stq.capacity = stq_entries;
    return cfg;
}

workload::SuiteProfile
PointSpec::materializeSuite() const
{
    // suiteProfile() is fatal on an unknown name; validate here so a
    // bad request is a protocol error, not a daemon abort.
    for (const auto &p : workload::suiteProfiles()) {
        if (p.name == suite)
            return p;
    }
    throw stats::ParseError("service point: unknown suite '" + suite +
                            "'");
}

json::Value
PointSpec::toJson() const
{
    json::Value v = json::Value::object();
    v.set("name", json::Value::str(name));
    v.set("base", json::Value::str(base));
    v.set("suite", json::Value::str(suite));
    v.set("uops", json::Value::number(static_cast<double>(uops)));
    // The run seed is a full 64-bit mix; a JSON number (double) only
    // holds 53 bits, so it travels as a decimal string (the same
    // convention the stats codec uses for run_seed).
    v.set("run_seed", json::Value::str(std::to_string(run_seed)));
    v.set("occupancy_series", json::Value::boolean(occupancy_series));
    if (srl_depth)
        v.set("srl_depth", json::Value::number(srl_depth));
    if (lcf_entries)
        v.set("lcf_entries", json::Value::number(lcf_entries));
    if (!lcf_hash.empty())
        v.set("lcf_hash", json::Value::str(lcf_hash));
    if (stq_entries)
        v.set("stq_entries", json::Value::number(stq_entries));
    // Sampling plan fields travel only when set, so pre-sampling
    // clients and servers interoperate unchanged.
    if (ff_uops)
        v.set("ff_uops",
              json::Value::number(static_cast<double>(ff_uops)));
    if (warm_uops)
        v.set("warm_uops",
              json::Value::number(static_cast<double>(warm_uops)));
    if (detail_uops)
        v.set("detail_uops",
              json::Value::number(static_cast<double>(detail_uops)));
    if (shard_start)
        v.set("shard_start",
              json::Value::number(static_cast<double>(shard_start)));
    if (shard_count)
        v.set("shard_count",
              json::Value::number(static_cast<double>(shard_count)));
    if (pipelined)
        v.set("pipelined", json::Value::boolean(true));
    return v;
}

PointSpec
PointSpec::fromJson(const json::Value &v)
{
    if (!v.isObject())
        throw stats::ParseError("service point: not an object");
    PointSpec p;
    p.name = v.at("name").asString();
    p.base = v.getString("base", "srl");
    p.suite = v.getString("suite", "SFP2K");
    p.uops = v.at("uops").asU64();
    if (const json::Value *seed = v.find("run_seed")) {
        if (seed->isString())
            p.run_seed = std::strtoull(seed->asString().c_str(),
                                       nullptr, 10);
        else
            p.run_seed = seed->asU64();
    }
    p.occupancy_series = v.getBool("occupancy_series", true);
    p.srl_depth = static_cast<unsigned>(v.getU64("srl_depth", 0));
    p.lcf_entries = static_cast<unsigned>(v.getU64("lcf_entries", 0));
    p.lcf_hash = v.getString("lcf_hash", "");
    p.stq_entries = static_cast<unsigned>(v.getU64("stq_entries", 0));
    p.ff_uops = v.getU64("ff_uops", 0);
    p.warm_uops = v.getU64("warm_uops", 0);
    p.detail_uops = v.getU64("detail_uops", 0);
    p.shard_start = v.getU64("shard_start", 0);
    p.shard_count = v.getU64("shard_count", 0);
    p.pipelined = v.getBool("pipelined", false);
    return p;
}

namespace
{

json::Value
messageShell(const char *op)
{
    json::Value v = json::Value::object();
    v.set("schema", json::Value::str(kProtocolSchema));
    v.set("op", json::Value::str(op));
    return v;
}

} // namespace

Request
parseRequest(const std::string &line)
{
    const json::Value v = json::Value::parse(line);
    if (!v.isObject())
        throw stats::ParseError("service request: not an object");
    if (v.getString("schema") != kProtocolSchema)
        throw stats::ParseError(
            "service request: missing or unsupported schema marker");
    Request req;
    req.op = v.at("op").asString();
    if (req.op == "hello") {
        req.client = v.getString("client", "anonymous");
    } else if (req.op == "submit") {
        req.id = v.at("id").asU64();
        req.point = PointSpec::fromJson(v.at("point"));
    } else if (req.op == "stats") {
        // no payload
    } else {
        throw stats::ParseError("service request: unknown op '" +
                                req.op + "'");
    }
    return req;
}

std::string
helloLine(const std::string &client)
{
    json::Value v = messageShell("hello");
    v.set("client", json::Value::str(client));
    return v.dump();
}

std::string
submitLine(std::uint64_t id, const PointSpec &point)
{
    json::Value v = messageShell("submit");
    v.set("id", json::Value::number(static_cast<double>(id)));
    v.set("point", point.toJson());
    return v.dump();
}

std::string
statsLine()
{
    return messageShell("stats").dump();
}

std::string
welcomeLine(const std::string &server)
{
    json::Value v = messageShell("welcome");
    v.set("server", json::Value::str(server));
    return v.dump();
}

std::string
acceptedLine(std::uint64_t id, const std::string &key_hex)
{
    json::Value v = messageShell("accepted");
    v.set("id", json::Value::number(static_cast<double>(id)));
    v.set("key", json::Value::str(key_hex));
    return v.dump();
}

std::string
busyLine(std::uint64_t id, unsigned retry_after_ms)
{
    json::Value v = messageShell("busy");
    v.set("id", json::Value::number(static_cast<double>(id)));
    v.set("retry_after_ms", json::Value::number(retry_after_ms));
    return v.dump();
}

std::string
errorLine(std::uint64_t id, const std::string &message)
{
    json::Value v = messageShell("error");
    v.set("id", json::Value::number(static_cast<double>(id)));
    v.set("message", json::Value::str(message));
    return v.dump();
}

std::string
encodeRecord(const stats::RunRecord &record)
{
    stats::StatsReport rep;
    rep.runs.push_back(record);
    return rep.toJson();
}

std::string
resultLine(std::uint64_t id, const std::string &key_hex, bool cached,
           bool coalesced, const stats::RunRecord &record)
{
    json::Value v = messageShell("result");
    v.set("id", json::Value::number(static_cast<double>(id)));
    v.set("key", json::Value::str(key_hex));
    v.set("cached", json::Value::boolean(cached));
    v.set("coalesced", json::Value::boolean(coalesced));
    v.set("record", json::Value::str(encodeRecord(record)));
    return v.dump();
}

std::string
statsReportLine(const stats::StatsReport &report)
{
    json::Value v = messageShell("stats");
    v.set("report", json::Value::str(report.toJson()));
    return v.dump();
}

stats::RunRecord
decodeResultRecord(const json::Value &result_msg)
{
    const std::string &text = result_msg.at("record").asString();
    stats::StatsReport rep = stats::StatsReport::fromJson(text);
    if (rep.runs.size() != 1)
        throw stats::ParseError(
            "service result: embedded report must hold exactly one "
            "run, got " +
            std::to_string(rep.runs.size()));
    return std::move(rep.runs.front());
}

} // namespace service
} // namespace srl
