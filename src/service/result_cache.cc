#include "service/result_cache.hh"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <ctime>
#include <utility>
#include <vector>

namespace srl
{
namespace service
{

namespace
{

/** Report meta key recording the content address of the entry. */
constexpr char kMetaKey[] = "chash";

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

bool
ensureDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    return false;
}

} // namespace

ResultCache::ResultCache(Options opts) : opts_(std::move(opts))
{
    if (!opts_.dir.empty())
        ensureDir(opts_.dir);
}

std::string
ResultCache::entryPath(const chash::Hash128 &key) const
{
    return opts_.dir + "/" + key.toHex() + ".json";
}

bool
ResultCache::readEntry(const std::string &path,
                       const std::string &key_hex,
                       stats::RunRecord &out, bool &corrupt)
{
    corrupt = false;
    std::string text;
    if (!readWholeFile(path, text))
        return false; // absent (or unreadable): plain miss
    try {
        stats::StatsReport rep = stats::StatsReport::fromJson(text);
        const auto it = rep.meta.find(kMetaKey);
        if (it == rep.meta.end() || it->second != key_hex ||
            rep.runs.size() != 1) {
            corrupt = true;
            return false;
        }
        // Never serve a persisted failure (shouldn't exist — failures
        // are not stored — but a hand-edited entry must not wedge the
        // key forever).
        if (rep.runs.front().failed()) {
            corrupt = true;
            return false;
        }
        out = std::move(rep.runs.front());
        return true;
    } catch (const stats::ParseError &) {
        // Truncated or garbled entry (e.g. pre-atomic-rename crash
        // artifacts or bit rot): treat as a miss and recompute.
        corrupt = true;
        return false;
    }
}

bool
ResultCache::writeEntry(const std::string &path,
                        const std::string &key_hex,
                        const stats::RunRecord &record)
{
    stats::StatsReport rep;
    rep.meta[kMetaKey] = key_hex;
    rep.runs.push_back(record);
    const std::string text = rep.toJson();

    // Atomic publish: temp file + rename, so concurrent writers race
    // benignly (identical contents) and interrupted writers leave no
    // partial entry under the final name.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fclose(f) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

void
ResultCache::evictOverCap()
{
    if (opts_.max_entries == 0)
        return;
    DIR *d = ::opendir(opts_.dir.c_str());
    if (!d)
        return;
    std::vector<std::pair<std::time_t, std::string>> entries;
    while (const dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() != 37 ||
            name.compare(name.size() - 5, 5, ".json") != 0)
            continue; // 32 hex chars + ".json"; skip temp/foreign files
        const std::string path = opts_.dir + "/" + name;
        struct stat st{};
        if (::stat(path.c_str(), &st) != 0)
            continue;
        entries.emplace_back(st.st_mtime, path);
    }
    ::closedir(d);
    if (entries.size() <= opts_.max_entries)
        return;
    std::sort(entries.begin(), entries.end());
    const std::size_t excess = entries.size() - opts_.max_entries;
    std::uint64_t evicted = 0;
    for (std::size_t i = 0; i < excess; ++i) {
        if (std::remove(entries[i].second.c_str()) == 0)
            ++evicted;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.evictions += evicted;
}

bool
ResultCache::lookup(const chash::Hash128 &key, stats::RunRecord &out)
{
    if (opts_.dir.empty())
        return false;
    bool corrupt = false;
    return readEntry(entryPath(key), key.toHex(), out, corrupt);
}

ResultCache::GetResult
ResultCache::getOrCompute(
    const chash::Hash128 &key,
    const std::function<stats::RunRecord()> &compute)
{
    const std::string hex = key.toHex();

    std::shared_ptr<Inflight> mine;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto it = inflight_.find(hex);
        if (it != inflight_.end()) {
            ++counters_.coalesced;
            std::shared_future<GetResult> fut = it->second->future;
            lock.unlock(); // wait outside the lock
            GetResult r = fut.get();
            r.outcome = Outcome::kCoalesced;
            return r;
        }
        mine = std::make_shared<Inflight>();
        mine->future = mine->promise.get_future().share();
        inflight_.emplace(hex, mine);
    }

    GetResult result;
    bool corrupt = false;
    const std::string path = opts_.dir.empty() ? "" : entryPath(key);
    if (!path.empty() &&
        readEntry(path, hex, result.record, corrupt)) {
        result.outcome = Outcome::kHit;
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.hits;
    } else {
        if (corrupt)
            std::remove(path.c_str());
        try {
            result.record = compute();
        } catch (const std::exception &e) {
            result.record.error = e.what();
        } catch (...) {
            result.record.error = "unknown exception";
        }
        result.outcome = Outcome::kMiss;
        bool stored = false;
        bool store_failed = false;
        if (!path.empty() && !result.record.failed()) {
            stored = writeEntry(path, hex, result.record);
            store_failed = !stored;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.misses;
            if (corrupt)
                ++counters_.corrupt_entries;
            if (stored)
                ++counters_.stores;
            if (store_failed)
                ++counters_.store_failures;
        }
        if (stored)
            evictOverCap();
    }

    mine->promise.set_value(result);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        inflight_.erase(hex);
    }
    return result;
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

stats::RunRecord
ResultCache::countersRecord() const
{
    const Counters c = counters();
    stats::RunRecord rec;
    rec.name = "result_cache";
    rec.meta["dir"] = opts_.dir;
    rec.set("hits", static_cast<double>(c.hits));
    rec.set("misses", static_cast<double>(c.misses));
    rec.set("coalesced", static_cast<double>(c.coalesced));
    rec.set("stores", static_cast<double>(c.stores));
    rec.set("store_failures", static_cast<double>(c.store_failures));
    rec.set("corrupt_entries", static_cast<double>(c.corrupt_entries));
    rec.set("evictions", static_cast<double>(c.evictions));
    return rec;
}

} // namespace service
} // namespace srl
