#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace srl
{
namespace service
{

Client::~Client()
{
    close();
}

bool
Client::connect(const std::string &socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "client: socket path too long: %s\n",
                     socket_path.c_str());
        return false;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        std::perror("client: socket");
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::fprintf(stderr, "client: cannot connect to %s: %s\n",
                     socket_path.c_str(), std::strerror(errno));
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

void
Client::sendLine(const std::string &line)
{
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::send(
            fd_, framed.data() + off, framed.size() - off,
            MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            throw std::runtime_error("client: send failed: " +
                                     std::string(std::strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
}

std::string
Client::readLine()
{
    while (true) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            throw std::runtime_error(
                "client: connection closed by server");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

stats::StatsReport
Client::runSweep(const std::vector<PointSpec> &points,
                 std::uint64_t base_seed)
{
    if (!connected())
        throw std::runtime_error("client: not connected");
    last_cached_ = 0;
    last_computed_ = 0;
    last_busy_ = 0;

    std::vector<stats::RunRecord> records(points.size());
    std::vector<bool> have(points.size(), false);
    std::size_t remaining = points.size();

    // Submit ids are point indices; results may interleave with
    // accepted/busy acks, so one read loop handles everything.
    std::unordered_map<std::uint64_t, std::size_t> pending;
    std::size_t next_submit = 0;

    const auto submitOne = [&](std::size_t i) {
        sendLine(submitLine(i, points[i]));
        pending.emplace(i, i);
    };

    while (remaining > 0) {
        while (next_submit < points.size() &&
               pending.size() < 64) { // bounded submit window
            submitOne(next_submit);
            ++next_submit;
        }

        const std::string line = readLine();
        json::Value msg = json::Value::parse(line);
        const std::string op = msg.getString("op");
        if (op == "accepted") {
            continue;
        } else if (op == "busy") {
            const std::uint64_t id = msg.getU64("id");
            const auto retry_ms = msg.getU64("retry_after_ms", 200);
            ++last_busy_;
            const auto it = pending.find(id);
            if (it == pending.end())
                throw std::runtime_error(
                    "client: busy for unknown submit id");
            const std::size_t idx = it->second;
            pending.erase(it);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(retry_ms));
            submitOne(idx);
        } else if (op == "result") {
            const std::uint64_t id = msg.getU64("id");
            const auto it = pending.find(id);
            if (it == pending.end())
                throw std::runtime_error(
                    "client: result for unknown submit id");
            const std::size_t idx = it->second;
            pending.erase(it);
            if (!have[idx]) {
                records[idx] = decodeResultRecord(msg);
                have[idx] = true;
                --remaining;
                if (msg.getBool("cached") ||
                    msg.getBool("coalesced"))
                    ++last_cached_;
                else
                    ++last_computed_;
            }
        } else if (op == "error") {
            throw std::runtime_error("client: server error: " +
                                     msg.getString("message",
                                                   "(no message)"));
        } else {
            throw std::runtime_error(
                "client: unexpected server op '" + op + "'");
        }
    }

    // Reassemble exactly what runner::runTasks would have written:
    // names forced to the point names, meta carrying seed and count.
    stats::StatsReport rep;
    rep.meta["seed"] = std::to_string(base_seed);
    rep.meta["points"] = std::to_string(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        records[i].name = points[i].name;
    rep.runs = std::move(records);
    return rep;
}

stats::StatsReport
Client::fetchStats()
{
    if (!connected())
        throw std::runtime_error("client: not connected");
    sendLine(statsLine());
    while (true) {
        const std::string line = readLine();
        json::Value msg = json::Value::parse(line);
        if (msg.getString("op") == "stats")
            return stats::StatsReport::fromJson(
                msg.at("report").asString());
        // Skip stray messages (e.g. late results after an aborted
        // sweep); anything else while waiting for stats is unexpected
        // but harmless to ignore.
    }
}

} // namespace service
} // namespace srl
