#include "service/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace srl
{
namespace service
{

namespace
{

constexpr int kPollTimeoutMs = 100;

} // namespace

Server::Server(SweepService &service, const ServerOptions &opts)
    : service_(service), opts_(opts)
{
}

Server::~Server()
{
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(opts_.socket_path.c_str());
    }
}

bool
Server::start()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "serve: socket path too long: %s\n",
                     opts_.socket_path.c_str());
        return false;
    }
    std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        std::perror("serve: socket");
        return false;
    }
    // A previous daemon that died uncleanly leaves the socket file
    // behind; binding over it needs the unlink.
    ::unlink(opts_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        std::perror("serve: bind");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::listen(listen_fd_, opts_.backlog) != 0) {
        std::perror("serve: listen");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    return true;
}

void
Server::writeLine(const std::shared_ptr<Connection> &conn,
                  const std::string &line)
{
    if (!conn->open.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        // MSG_NOSIGNAL: a client that hung up must cost us an EPIPE
        // errno, not a process-killing SIGPIPE.
        const ssize_t n =
            ::send(conn->fd, framed.data() + off, framed.size() - off,
                   MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            conn->open.store(false, std::memory_order_relaxed);
            return; // dead client: drop the message, keep the work
        }
        off += static_cast<std::size_t>(n);
    }
}

void
Server::handleConnection(const std::shared_ptr<Connection> &conn)
{
    std::string buffer;
    char chunk[4096];
    while (!stopping() && conn->open.load(std::memory_order_relaxed)) {
        pollfd pfd{conn->fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, kPollTimeoutMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue; // timeout: re-check the stop flag
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break; // EOF or error
        }
        buffer.append(chunk, static_cast<std::size_t>(n));

        std::size_t start = 0;
        for (std::size_t nl = buffer.find('\n', start);
             nl != std::string::npos;
             nl = buffer.find('\n', start)) {
            const std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (line.empty())
                continue;

            Request req;
            try {
                req = parseRequest(line);
            } catch (const stats::ParseError &e) {
                writeLine(conn, errorLine(0, e.what()));
                continue;
            }

            if (req.op == "hello") {
                writeLine(conn, welcomeLine("srlsim-serve/1"));
            } else if (req.op == "stats") {
                writeLine(conn,
                          statsReportLine(service_.statsReport()));
            } else if (req.op == "submit") {
                const std::uint64_t id = req.id;
                std::weak_ptr<Connection> weak = conn;
                // Compute the key up front so "accepted" can echo it.
                std::string key_hex;
                try {
                    const auto cfg = req.point.materializeConfig();
                    const auto suite = req.point.materializeSuite();
                    key_hex =
                        chash::pointKey(cfg, suite, req.point.uops,
                                        req.point.run_seed,
                                        req.point.occupancy_series)
                            .toHex();
                } catch (const stats::ParseError &e) {
                    writeLine(conn, errorLine(id, e.what()));
                    continue;
                }
                const SweepService::Admit admit = service_.submit(
                    conn->id, req.point,
                    [this, weak, id](const stats::RunRecord &rec,
                                     const chash::Hash128 &key,
                                     ResultCache::Outcome outcome) {
                        const auto c = weak.lock();
                        if (!c)
                            return;
                        const bool cached =
                            outcome == ResultCache::Outcome::kHit;
                        const bool coalesced =
                            outcome ==
                            ResultCache::Outcome::kCoalesced;
                        writeLine(c, resultLine(id, key.toHex(),
                                                cached, coalesced,
                                                rec));
                    });
                switch (admit) {
                  case SweepService::Admit::kAccepted:
                    writeLine(conn, acceptedLine(id, key_hex));
                    break;
                  case SweepService::Admit::kBusy:
                    writeLine(conn,
                              busyLine(id, service_.retryAfterMs()));
                    break;
                  case SweepService::Admit::kDraining:
                    writeLine(conn, errorLine(id, "draining"));
                    break;
                }
            }
        }
        buffer.erase(0, start);
    }
}

std::uint64_t
Server::run()
{
    std::uint64_t served = 0;
    while (!stopping()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, kPollTimeoutMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pr == 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conn->id = next_conn_id_++;
            connections_.push_back(conn);
            conn_threads_.emplace_back(
                [this, conn] { handleConnection(conn); });
        }
        ++served;
    }

    // Graceful drain: no new connections (loop exited), no new
    // admissions past this point benefit from it (submits during the
    // drain get "draining" errors once the service flips), every
    // admitted job completes and flushes its result line.
    service_.drain();

    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (const auto &c : connections_) {
            c->open.store(false, std::memory_order_relaxed);
            ::shutdown(c->fd, SHUT_RDWR);
        }
    }
    for (auto &t : conn_threads_)
        t.join();
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (const auto &c : connections_)
            ::close(c->fd);
        connections_.clear();
        conn_threads_.clear();
    }
    return served;
}

} // namespace service
} // namespace srl
