#include "isa/validate.hh"

#include <cstdarg>
#include <cstdio>

namespace srl
{
namespace isa
{

namespace
{

void
addError(std::vector<ValidationError> &errors, SeqNum seq,
         const char *fmt, ...)
{
    char buf[160];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    errors.push_back({seq, buf});
}

bool
validReg(ArchReg r)
{
    return r == kInvalidArchReg || r < kNumArchRegs;
}

} // namespace

void
validateUop(const Uop &u, SeqNum expected_seq,
            std::vector<ValidationError> &errors)
{
    if (u.seq != expected_seq) {
        addError(errors, u.seq,
                 "sequence number %llu, expected %llu",
                 static_cast<unsigned long long>(u.seq),
                 static_cast<unsigned long long>(expected_seq));
    }
    if (!validReg(u.dst) || !validReg(u.src1) || !validReg(u.src2)) {
        addError(errors, u.seq, "register index out of range "
                 "(d=%u s1=%u s2=%u)", u.dst, u.src1, u.src2);
    }

    switch (u.cls) {
      case UopClass::kLoad:
        if (!u.hasDst())
            addError(errors, u.seq, "load without destination");
        [[fallthrough]];
      case UopClass::kStore: {
        const unsigned size = u.memSize;
        if (size != 1 && size != 2 && size != 4 && size != 8) {
            addError(errors, u.seq, "memory size %u not in {1,2,4,8}",
                     size);
            break;
        }
        if (u.effAddr % size != 0) {
            addError(errors, u.seq,
                     "unaligned access: addr %#llx size %u",
                     static_cast<unsigned long long>(u.effAddr), size);
        }
        if (u.effAddr / 8 != (u.effAddr + size - 1) / 8) {
            addError(errors, u.seq,
                     "access crosses an 8-byte word boundary");
        }
        if (u.cls == UopClass::kStore && u.hasDst())
            addError(errors, u.seq, "store with a destination register");
        break;
      }
      case UopClass::kBranch:
        if (u.hasDst())
            addError(errors, u.seq, "branch with a destination register");
        break;
      case UopClass::kIntAlu:
      case UopClass::kIntMul:
      case UopClass::kFpAlu:
      case UopClass::kFpMul:
        if (!u.hasDst())
            addError(errors, u.seq, "ALU op without destination");
        break;
      case UopClass::kNop:
        break;
    }
}

std::vector<ValidationError>
validateStream(UopStream &stream, unsigned max_errors)
{
    std::vector<ValidationError> errors;
    Uop u;
    SeqNum expected = 0;
    while (stream.next(u)) {
        validateUop(u, expected, errors);
        ++expected;
        if (errors.size() >= max_errors) {
            addError(errors, kInvalidSeqNum,
                     "too many errors; validation stopped");
            break;
        }
    }
    if (expected == 0)
        addError(errors, kInvalidSeqNum, "stream is empty");
    return errors;
}

} // namespace isa
} // namespace srl
