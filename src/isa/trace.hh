/**
 * @file
 * Binary micro-op trace files: record any UopStream to disk and replay
 * it later. Lets users snapshot a (profile, seed) workload, share the
 * exact stimulus of an experiment, or drive the simulator from traces
 * produced by external tools.
 *
 * Format (little-endian, fixed-width):
 *   header: magic "SRLT", u32 version, u64 uop count
 *   per uop: u64 seq, u64 pc, u8 cls, u8 dst, u8 src1, u8 src2,
 *            u8 memSize, u8 taken, u16 pad, u64 effAddr,
 *            u64 storeData, u64 target
 */

#ifndef SRLSIM_ISA_TRACE_HH
#define SRLSIM_ISA_TRACE_HH

#include <cstdio>
#include <string>

#include "isa/uop.hh"

namespace srl
{
namespace isa
{

/** Magic number and current version of the trace format. */
inline constexpr char kTraceMagic[4] = {'S', 'R', 'L', 'T'};
inline constexpr std::uint32_t kTraceVersion = 1;

/**
 * Records uops to a trace file. Writes the header on construction and
 * back-patches the uop count on finish()/destruction.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing. Fatal on I/O failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one uop. */
    void append(const Uop &u);

    /** Drain @p stream entirely into the file; returns uops written. */
    std::uint64_t appendAll(UopStream &stream);

    /** Finalize the header; further appends are invalid. */
    void finish();

    std::uint64_t written() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    bool finished_ = false;
};

/**
 * Replays a trace file as a UopStream. Validates the header eagerly;
 * corrupt or truncated files are fatal (user error).
 */
class TraceReader : public UopStream
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(Uop &out) override;

    /** Total uops the header declares. */
    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
};

} // namespace isa
} // namespace srl

#endif // SRLSIM_ISA_TRACE_HH
