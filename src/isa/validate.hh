/**
 * @file
 * Stream validation: checks a micro-op stream against the invariants
 * the simulator assumes — contiguous sequence numbers, naturally
 * aligned memory accesses that stay within one 8-byte word, register
 * indices in range, and class-consistent fields. Used by the trace
 * tool before replaying external traces, and by tests.
 */

#ifndef SRLSIM_ISA_VALIDATE_HH
#define SRLSIM_ISA_VALIDATE_HH

#include <string>
#include <vector>

#include "isa/uop.hh"

namespace srl
{
namespace isa
{

/** One validation finding. */
struct ValidationError
{
    SeqNum seq;          ///< offending uop (kInvalidSeqNum: stream-level)
    std::string message;
};

/**
 * Validate @p stream, collecting up to @p max_errors findings.
 * Consumes the stream.
 */
std::vector<ValidationError> validateStream(UopStream &stream,
                                            unsigned max_errors = 16);

/** Validate a single uop given the expected sequence number. */
void validateUop(const Uop &u, SeqNum expected_seq,
                 std::vector<ValidationError> &errors);

} // namespace isa
} // namespace srl

#endif // SRLSIM_ISA_VALIDATE_HH
