/**
 * @file
 * The dynamic micro-op (uop) model.
 *
 * srlsim is trace-driven: workload generators emit fully-resolved dynamic
 * uops (effective addresses and branch outcomes precomputed), and the core
 * model spends its effort on *timing* — scheduling, queue occupancy,
 * forwarding, checkpoint recovery — plus a functional memory image so
 * store-to-load forwarding correctness is actually observable. Register
 * operands drive dependence tracking; memory values are real and flow
 * through the modeled store queues and caches.
 */

#ifndef SRLSIM_ISA_UOP_HH
#define SRLSIM_ISA_UOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace srl
{
namespace isa
{

/** Functional-unit class of a micro-op. */
enum class UopClass : std::uint8_t
{
    kIntAlu,  ///< single-cycle integer op
    kIntMul,  ///< multi-cycle integer op (mul/div lumped)
    kFpAlu,   ///< pipelined FP add-class op
    kFpMul,   ///< pipelined FP mul/div-class op
    kLoad,    ///< memory read
    kStore,   ///< memory write
    kBranch,  ///< conditional/indirect branch
    kNop,     ///< no-op filler
};

/** @return short mnemonic for @p cls. */
const char *uopClassName(UopClass cls);

/** @return true for kLoad/kStore. */
constexpr bool
isMemory(UopClass cls)
{
    return cls == UopClass::kLoad || cls == UopClass::kStore;
}

/** @return true for FP classes. */
constexpr bool
isFloat(UopClass cls)
{
    return cls == UopClass::kFpAlu || cls == UopClass::kFpMul;
}

/** Number of architectural registers (0-31 integer, 32-63 FP). */
inline constexpr unsigned kNumArchRegs = 64;
inline constexpr ArchReg kInvalidArchReg = 0xff;

/** A dynamic micro-op as produced by a workload generator. */
struct Uop
{
    SeqNum seq = kInvalidSeqNum; ///< assigned at fetch, program order
    Addr pc = 0;
    UopClass cls = UopClass::kNop;

    ArchReg dst = kInvalidArchReg;  ///< destination register (if any)
    ArchReg src1 = kInvalidArchReg; ///< first source (if any)
    ArchReg src2 = kInvalidArchReg; ///< second source (if any)

    // Memory operation fields (valid when isMemory(cls)).
    Addr effAddr = 0;          ///< byte effective address
    std::uint8_t memSize = 0;  ///< access size in bytes (1/2/4/8)
    std::uint64_t storeData = 0; ///< value a store writes

    // Branch fields (valid when cls == kBranch).
    bool taken = false;
    Addr target = 0;

    bool isLoad() const { return cls == UopClass::kLoad; }
    bool isStore() const { return cls == UopClass::kStore; }
    bool isBranch() const { return cls == UopClass::kBranch; }

    bool hasDst() const { return dst != kInvalidArchReg; }
    bool hasSrc1() const { return src1 != kInvalidArchReg; }
    bool hasSrc2() const { return src2 != kInvalidArchReg; }

    /** Human-readable one-line rendering, for debug traces. */
    std::string toString() const;
};

/** Execution latency in cycles of a non-memory uop class. */
unsigned executeLatency(UopClass cls);

/**
 * Pull interface for dynamic uop streams. Generators implement this;
 * the core fetches from it. Streams are finite: next() returns false
 * at end-of-trace.
 */
class UopStream
{
  public:
    virtual ~UopStream() = default;

    /** Produce the next uop in program order. @return false at end. */
    virtual bool next(Uop &out) = 0;
};

} // namespace isa
} // namespace srl

#endif // SRLSIM_ISA_UOP_HH
