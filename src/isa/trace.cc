#include "isa/trace.hh"

#include <cstddef>
#include <cstring>

#include "common/logging.hh"

namespace srl
{
namespace isa
{

namespace
{

/** On-disk record layout (little-endian host assumed). */
struct TraceRecord
{
    std::uint64_t seq;
    std::uint64_t pc;
    std::uint8_t cls;
    std::uint8_t dst;
    std::uint8_t src1;
    std::uint8_t src2;
    std::uint8_t mem_size;
    std::uint8_t taken;
    std::uint16_t pad;
    std::uint64_t eff_addr;
    std::uint64_t store_data;
    std::uint64_t target;
};
static_assert(sizeof(TraceRecord) == 48, "trace record packing");

struct TraceHeader
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
};
static_assert(sizeof(TraceHeader) == 16, "trace header packing");

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot open trace file '%s' for writing",
             path.c_str());
    TraceHeader h;
    std::memcpy(h.magic, kTraceMagic, 4);
    h.version = kTraceVersion;
    h.count = 0;
    fatal_if(std::fwrite(&h, sizeof(h), 1, file_) != 1,
             "trace header write failed");
}

TraceWriter::~TraceWriter()
{
    if (!finished_)
        finish();
}

void
TraceWriter::append(const Uop &u)
{
    panic_if(finished_, "append to finished trace");
    TraceRecord r{};
    r.seq = u.seq;
    r.pc = u.pc;
    r.cls = static_cast<std::uint8_t>(u.cls);
    r.dst = u.dst;
    r.src1 = u.src1;
    r.src2 = u.src2;
    r.mem_size = u.memSize;
    r.taken = u.taken ? 1 : 0;
    r.eff_addr = u.effAddr;
    r.store_data = u.storeData;
    r.target = u.target;
    fatal_if(std::fwrite(&r, sizeof(r), 1, file_) != 1,
             "trace record write failed");
    ++count_;
}

std::uint64_t
TraceWriter::appendAll(UopStream &stream)
{
    Uop u;
    std::uint64_t n = 0;
    while (stream.next(u)) {
        append(u);
        ++n;
    }
    return n;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    // Back-patch the count in the header.
    fatal_if(std::fseek(file_, offsetof(TraceHeader, count),
                        SEEK_SET) != 0,
             "trace header seek failed");
    fatal_if(std::fwrite(&count_, sizeof(count_), 1, file_) != 1,
             "trace header patch failed");
    // Buffered record writes may not have touched the disk yet; a
    // flush/close failure here (ENOSPC and friends) means the file is
    // truncated or corrupt and must not be reported as written.
    fatal_if(std::fflush(file_) != 0, "trace flush failed");
    const int close_rc = std::fclose(file_);
    file_ = nullptr;
    fatal_if(close_rc != 0, "trace close failed");
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file '%s'", path.c_str());
    TraceHeader h;
    fatal_if(std::fread(&h, sizeof(h), 1, file_) != 1,
             "trace '%s': truncated header", path.c_str());
    fatal_if(std::memcmp(h.magic, kTraceMagic, 4) != 0,
             "trace '%s': bad magic", path.c_str());
    fatal_if(h.version != kTraceVersion,
             "trace '%s': unsupported version %u", path.c_str(),
             h.version);
    count_ = h.count;
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(Uop &out)
{
    if (read_ >= count_)
        return false;
    TraceRecord r;
    fatal_if(std::fread(&r, sizeof(r), 1, file_) != 1,
             "trace truncated at record %llu",
             static_cast<unsigned long long>(read_));
    out = Uop{};
    out.seq = r.seq;
    out.pc = r.pc;
    out.cls = static_cast<UopClass>(r.cls);
    out.dst = r.dst;
    out.src1 = r.src1;
    out.src2 = r.src2;
    out.memSize = r.mem_size;
    out.taken = r.taken != 0;
    out.effAddr = r.eff_addr;
    out.storeData = r.store_data;
    out.target = r.target;
    ++read_;
    return true;
}

} // namespace isa
} // namespace srl
