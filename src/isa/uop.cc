#include "isa/uop.hh"

#include <cstdio>

#include "common/logging.hh"

namespace srl
{
namespace isa
{

const char *
uopClassName(UopClass cls)
{
    switch (cls) {
      case UopClass::kIntAlu: return "ialu";
      case UopClass::kIntMul: return "imul";
      case UopClass::kFpAlu:  return "falu";
      case UopClass::kFpMul:  return "fmul";
      case UopClass::kLoad:   return "load";
      case UopClass::kStore:  return "store";
      case UopClass::kBranch: return "br";
      case UopClass::kNop:    return "nop";
    }
    panic("unknown uop class %d", static_cast<int>(cls));
}

unsigned
executeLatency(UopClass cls)
{
    // Pentium-4-equivalent functional unit latencies (Table 1).
    switch (cls) {
      case UopClass::kIntAlu: return 1;
      case UopClass::kIntMul: return 3;
      case UopClass::kFpAlu:  return 4;
      case UopClass::kFpMul:  return 6;
      case UopClass::kBranch: return 1;
      case UopClass::kNop:    return 1;
      case UopClass::kLoad:
      case UopClass::kStore:
        panic("memory uops have no fixed execute latency");
    }
    panic("unknown uop class %d", static_cast<int>(cls));
}

std::string
Uop::toString() const
{
    char buf[160];
    if (isMemory(cls)) {
        std::snprintf(buf, sizeof(buf),
                      "[%llu] %s pc=%#llx addr=%#llx sz=%u d=%u s1=%u "
                      "s2=%u",
                      static_cast<unsigned long long>(seq),
                      uopClassName(cls),
                      static_cast<unsigned long long>(pc),
                      static_cast<unsigned long long>(effAddr), memSize,
                      dst, src1, src2);
    } else if (isBranch()) {
        std::snprintf(buf, sizeof(buf),
                      "[%llu] br pc=%#llx %s tgt=%#llx s1=%u",
                      static_cast<unsigned long long>(seq),
                      static_cast<unsigned long long>(pc),
                      taken ? "T" : "N",
                      static_cast<unsigned long long>(target), src1);
    } else {
        std::snprintf(buf, sizeof(buf), "[%llu] %s pc=%#llx d=%u s1=%u s2=%u",
                      static_cast<unsigned long long>(seq),
                      uopClassName(cls),
                      static_cast<unsigned long long>(pc), dst, src1,
                      src2);
    }
    return buf;
}

} // namespace isa
} // namespace srl
