/**
 * @file
 * The load/store ordering bit-array (paper Section 4.3, last paragraph):
 * during redo mode the store at the SRL head may update the cache only
 * after all program-order-prior loads have executed (write-after-read).
 *
 * Hardware: a bit array with head and tail pointers; every load and
 * store gets an entry in program order, only loads set (at allocate)
 * and clear (at completion) their bit; a store at the head knows all
 * prior loads are done. Model: we track the set of outstanding
 * (allocated, not yet completed) load sequence numbers and answer
 * "is any load older than this store still outstanding?", which is the
 * exact question the bit array answers.
 */

#ifndef SRLSIM_LSQ_ORDER_FENCE_HH
#define SRLSIM_LSQ_ORDER_FENCE_HH

#include <set>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace srl
{
namespace lsq
{

class OrderFence
{
  public:
    /** A load allocates: its bit is set. */
    void
    loadAllocated(SeqNum seq)
    {
        outstanding_.insert(seq);
    }

    /** The load completed execution: its bit clears. */
    void
    loadCompleted(SeqNum seq)
    {
        const auto it = outstanding_.find(seq);
        panic_if(it == outstanding_.end(),
                 "order fence: completing untracked load %llu",
                 static_cast<unsigned long long>(seq));
        outstanding_.erase(it);
    }

    /** The load was squashed before completing. */
    void
    loadSquashed(SeqNum seq)
    {
        outstanding_.erase(seq);
    }

    /** Squash all tracked loads younger than @p seq. */
    void
    squashAfter(SeqNum seq)
    {
        outstanding_.erase(outstanding_.upper_bound(seq),
                           outstanding_.end());
    }

    /**
     * May the store with sequence @p store_seq drain (update the
     * cache)? True iff no older load is still outstanding.
     */
    bool
    storeMayDrain(SeqNum store_seq) const
    {
        if (outstanding_.empty())
            return true;
        const bool ok = *outstanding_.begin() > store_seq;
        if (!ok)
            ++const_cast<stats::Scalar &>(drainBlocked);
        return ok;
    }

    std::size_t outstandingLoads() const { return outstanding_.size(); }

    void clear() { outstanding_.clear(); }

    mutable stats::Scalar drainBlocked;

  private:
    std::set<SeqNum> outstanding_;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_ORDER_FENCE_HH
