/**
 * @file
 * Store identifiers with wrap-around ordering (paper Section 3).
 *
 * A store's identifier is the SRL slot it was allocated plus a single
 * wrap-around bit that flips each time allocation wraps past the end of
 * the SRL ring. The relative program order of any two stores that are
 * simultaneously tracked (i.e. less than one full ring apart) is then a
 * simple magnitude comparison — no content search needed. Loads capture
 * the identifier of the last store allocated before them, making
 * load-vs-store age checks equally cheap.
 *
 * The struct also carries a simulator-only absolute allocation number
 * used to *assert* that the hardware (wrap, index) comparison always
 * agrees with ground truth; the model never bases decisions on it
 * without the hardware compare agreeing.
 */

#ifndef SRLSIM_LSQ_STORE_ID_HH
#define SRLSIM_LSQ_STORE_ID_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace srl
{
namespace lsq
{

struct StoreId
{
    std::uint32_t index = 0; ///< SRL slot
    bool wrap = false;       ///< flips on each ring wrap-around
    std::uint64_t abs = 0;   ///< ground truth (simulator-only)

    bool
    operator==(const StoreId &other) const
    {
        return index == other.index && wrap == other.wrap;
    }
};

/**
 * A StoreId value denoting "no store yet": abs == 0 is reserved as the
 * null marker (real allocations start at abs 1) and is treated as older
 * than every real store. Hardware would carry this as a separate
 * "no prior store" valid bit alongside the identifier.
 */
inline constexpr StoreId kNullStoreId{0, false, 0};

/** True iff @p id is the null ("no store") marker. */
inline bool
isNullStoreId(const StoreId &id)
{
    return id.abs == 0;
}

/**
 * Hardware wrap-around magnitude comparison: true iff @p a was allocated
 * strictly before @p b. Valid while both ids are within one ring of each
 * other, which holds for ids that are simultaneously live. The null id
 * is before every real id.
 */
inline bool
allocatedBefore(const StoreId &a, const StoreId &b)
{
    if (isNullStoreId(a))
        return !isNullStoreId(b);
    if (isNullStoreId(b))
        return false;

    bool hw_result;
    if (a.wrap == b.wrap)
        hw_result = a.index < b.index;
    else
        hw_result = a.index > b.index;

    // Equal ids are never "before".
    if (a.index == b.index && a.wrap == b.wrap)
        hw_result = false;

    const bool truth = a.abs < b.abs;
    panic_if(hw_result != truth,
             "wrap-around StoreId compare diverged from ground truth "
             "(a={%u,%d,%llu} b={%u,%d,%llu}): ids more than one ring "
             "apart",
             a.index, a.wrap, static_cast<unsigned long long>(a.abs),
             b.index, b.wrap, static_cast<unsigned long long>(b.abs));
    return hw_result;
}

/**
 * Allocator handing out consecutive StoreIds over a ring of
 * @p ring_size slots.
 */
class StoreIdAllocator
{
  public:
    explicit StoreIdAllocator(std::uint32_t ring_size)
        : ring_size_(ring_size)
    {
        panic_if(ring_size == 0, "StoreId ring must be non-empty");
    }

    /** Identifier the next allocation will receive. */
    StoreId
    peek() const
    {
        return {next_index_, wrap_, next_abs_};
    }

    /** Allocate the next identifier. */
    StoreId
    allocate()
    {
        const StoreId id = peek();
        ++next_abs_;
        if (++next_index_ == ring_size_) {
            next_index_ = 0;
            wrap_ = !wrap_;
        }
        return id;
    }

    /**
     * Identifier of the most recently allocated store — what a newly
     * allocated load records as its "nearest store". kNullStoreId when
     * no store has been allocated yet.
     */
    StoreId
    lastAllocated() const
    {
        if (next_abs_ == 1)
            return kNullStoreId;
        StoreId id{next_index_, wrap_, next_abs_ - 1};
        if (id.index == 0) {
            id.index = ring_size_ - 1;
            id.wrap = !id.wrap;
        } else {
            --id.index;
        }
        return id;
    }

    /** True iff any store has ever been allocated. */
    bool any() const { return next_abs_ != 1; }

    /**
     * Checkpoint-rollback support: make the next allocation hand out
     * exactly @p id again (squashed stores release their ring slots).
     */
    void
    rewind(const StoreId &id)
    {
        panic_if(isNullStoreId(id) || id.abs > next_abs_,
                 "invalid StoreId rewind target");
        next_index_ = id.index;
        wrap_ = id.wrap;
        next_abs_ = id.abs;
    }

    void
    reset()
    {
        next_index_ = 0;
        wrap_ = false;
        next_abs_ = 1;
    }

  private:
    std::uint32_t ring_size_;
    std::uint32_t next_index_ = 0;
    bool wrap_ = false;
    std::uint64_t next_abs_ = 1; ///< abs 0 is the null marker
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_STORE_ID_HH
