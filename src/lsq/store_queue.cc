#include "lsq/store_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srl
{
namespace lsq
{

StoreQueue::StoreQueue(const StoreQueueParams &params) : params_(params)
{
    fatal_if(params_.capacity == 0, "%s: capacity must be > 0",
             params_.name.c_str());
}

void
StoreQueue::allocate(SeqNum seq, StoreId id, CheckpointId ckpt)
{
    panic_if(full(), "%s: allocate on full store queue",
             params_.name.c_str());
    StoreQueueEntry e;
    e.seq = seq;
    e.id = id;
    e.ckpt = ckpt;
    // Age-ordered insert: usually at the tail, but a slice store
    // re-inserted from the SDB can be older than front-end stores that
    // allocated while it waited (paper Section 4.3: re-inserted stores
    // "re-allocate L1 STQ entries").
    auto it = entries_.end();
    while (it != entries_.begin() && std::prev(it)->seq > seq)
        --it;
    panic_if(it != entries_.begin() && std::prev(it)->seq == seq,
             "%s: duplicate store allocation", params_.name.c_str());
    entries_.insert(it, e);
}

void
StoreQueue::pushEntry(const StoreQueueEntry &entry)
{
    panic_if(full(), "%s: pushEntry on full store queue",
             params_.name.c_str());
    panic_if(!entries_.empty() && entries_.back().seq >= entry.seq,
             "%s: pushEntry out of program order", params_.name.c_str());
    entries_.push_back(entry);
}

void
StoreQueue::writeAddrData(SeqNum seq, Addr addr, std::uint8_t size,
                          std::uint64_t data)
{
    StoreQueueEntry *e = find(seq);
    panic_if(!e, "%s: writeAddrData for absent store %llu",
             params_.name.c_str(), static_cast<unsigned long long>(seq));
    e->addr = addr;
    e->size = size;
    e->data = data;
    e->addr_valid = true;
    e->data_valid = true;
    e->poisoned = false;
}

void
StoreQueue::markPoisoned(SeqNum seq)
{
    StoreQueueEntry *e = find(seq);
    panic_if(!e, "%s: markPoisoned for absent store %llu",
             params_.name.c_str(), static_cast<unsigned long long>(seq));
    e->poisoned = true;
}

ForwardResult
StoreQueue::forward(SeqNum load_seq, Addr addr, std::uint8_t size) const
{
    ++searches;
    ForwardResult result;

    // CAM: every older valid entry's comparators fire.
    // Select: youngest matching store older than the load.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        const StoreQueueEntry &e = *it;
        if (e.seq >= load_seq)
            continue;
        ++entriesSearched;
        if (!e.addr_valid) {
            // Unknown address: a conventional OoO design lets the load
            // speculate past it (the memory dependence predictor and
            // load queue catch mistakes), so keep searching.
            continue;
        }
        if (!bytesOverlap(e.addr, e.size, addr, size))
            continue;
        if (e.data_valid && !e.poisoned &&
            bytesCover(e.addr, e.size, addr, size)) {
            result.outcome = ForwardOutcome::kForward;
            const unsigned shift =
                static_cast<unsigned>(addr - e.addr) * 8;
            const std::uint64_t full = e.data >> shift;
            result.data = size >= 8
                              ? full
                              : (full & ((1ull << (8 * size)) - 1));
            result.store_seq = e.seq;
            result.store_id = e.id;
            ++forwards;
        } else {
            // Partial coverage, or data not ready, or poisoned:
            // the load cannot be satisfied here.
            result.outcome = ForwardOutcome::kBlocked;
            result.store_seq = e.seq;
            result.store_id = e.id;
            ++blocks;
        }
        return result;
    }
    return result;
}

StoreQueueEntry *
StoreQueue::find(SeqNum seq)
{
    for (auto &e : entries_) {
        if (e.seq == seq)
            return &e;
    }
    return nullptr;
}

const StoreQueueEntry &
StoreQueue::head() const
{
    panic_if(entries_.empty(), "%s: head() on empty store queue",
             params_.name.c_str());
    return entries_.front();
}

StoreQueueEntry
StoreQueue::popHead()
{
    panic_if(entries_.empty(), "%s: popHead() on empty store queue",
             params_.name.c_str());
    StoreQueueEntry e = entries_.front();
    entries_.pop_front();
    return e;
}

std::vector<StoreQueueEntry>
StoreQueue::squashAfter(SeqNum seq)
{
    std::vector<StoreQueueEntry> removed;
    while (!entries_.empty() && entries_.back().seq > seq) {
        removed.push_back(entries_.back());
        entries_.pop_back();
    }
    return removed;
}

void
StoreQueue::forEach(
    const std::function<void(const StoreQueueEntry &)> &fn) const
{
    for (const auto &e : entries_)
        fn(e);
}

} // namespace lsq
} // namespace srl
