#include "lsq/store_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srl
{
namespace lsq
{

StoreQueue::StoreQueue(const StoreQueueParams &params) : params_(params)
{
    fatal_if(params_.capacity == 0, "%s: capacity must be > 0",
             params_.name.c_str());
    buf_.reserve(params_.capacity * 2);
    scan_addr_.reserve(params_.capacity * 2);
    scan_size_.reserve(params_.capacity * 2);
}

std::size_t
StoreQueue::lowerBound(SeqNum seq) const
{
    // Entries are seq-sorted ascending, so the scan start is a binary
    // search instead of a youngest-first walk over skipped entries.
    std::size_t lo = head_, hi = buf_.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (buf_[mid].seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

std::size_t
StoreQueue::indexOf(SeqNum seq) const
{
    const std::size_t i = lowerBound(seq);
    if (i < buf_.size() && buf_[i].seq == seq)
        return i;
    return buf_.size();
}

void
StoreQueue::allocate(SeqNum seq, StoreId id, CheckpointId ckpt)
{
    panic_if(full(), "%s: allocate on full store queue",
             params_.name.c_str());
    StoreQueueEntry e;
    e.seq = seq;
    e.id = id;
    e.ckpt = ckpt;
    // Age-ordered insert: usually at the tail, but a slice store
    // re-inserted from the SDB can be older than front-end stores that
    // allocated while it waited (paper Section 4.3: re-inserted stores
    // "re-allocate L1 STQ entries").
    const std::size_t pos = lowerBound(seq);
    panic_if(pos < buf_.size() && buf_[pos].seq == seq,
             "%s: duplicate store allocation", params_.name.c_str());
    buf_.insert(buf_.begin() + static_cast<long>(pos), e);
    scan_addr_.insert(scan_addr_.begin() + static_cast<long>(pos),
                      kNoAddr);
    scan_size_.insert(scan_size_.begin() + static_cast<long>(pos), 0);
}

void
StoreQueue::pushEntry(const StoreQueueEntry &entry)
{
    panic_if(full(), "%s: pushEntry on full store queue",
             params_.name.c_str());
    panic_if(!empty() && buf_.back().seq >= entry.seq,
             "%s: pushEntry out of program order", params_.name.c_str());
    buf_.push_back(entry);
    scan_addr_.push_back(entry.addr_valid ? entry.addr : kNoAddr);
    scan_size_.push_back(entry.size);
}

void
StoreQueue::writeAddrData(SeqNum seq, Addr addr, std::uint8_t size,
                          std::uint64_t data)
{
    const std::size_t i = indexOf(seq);
    panic_if(i == buf_.size(), "%s: writeAddrData for absent store %llu",
             params_.name.c_str(), static_cast<unsigned long long>(seq));
    StoreQueueEntry &e = buf_[i];
    e.addr = addr;
    e.size = size;
    e.data = data;
    e.addr_valid = true;
    e.data_valid = true;
    e.poisoned = false;
    scan_addr_[i] = addr;
    scan_size_[i] = size;
}

void
StoreQueue::markPoisoned(SeqNum seq)
{
    const std::size_t i = indexOf(seq);
    panic_if(i == buf_.size(), "%s: markPoisoned for absent store %llu",
             params_.name.c_str(), static_cast<unsigned long long>(seq));
    buf_[i].poisoned = true;
}

ForwardResult
StoreQueue::forward(SeqNum load_seq, Addr addr, std::uint8_t size) const
{
    ++searches;
    ForwardResult result;

    // CAM: every older valid entry's comparators fire.
    // Select: youngest matching store older than the load. The scan
    // walks the address/size lanes only; the full entry is read at the
    // match point. Entries younger than the load never activated their
    // comparators in the original walk either, so the binary-searched
    // start preserves the entriesSearched count exactly.
    const std::size_t begin = lowerBound(load_seq);
    std::uint64_t searched = 0;
    for (std::size_t i = begin; i-- > head_;) {
        ++searched;
        const Addr ea = scan_addr_[i];
        if (ea == kNoAddr) {
            // Unknown address: a conventional OoO design lets the load
            // speculate past it (the memory dependence predictor and
            // load queue catch mistakes), so keep searching.
            continue;
        }
        if (!bytesOverlap(ea, scan_size_[i], addr, size))
            continue;
        const StoreQueueEntry &e = buf_[i];
        if (e.data_valid && !e.poisoned &&
            bytesCover(e.addr, e.size, addr, size)) {
            result.outcome = ForwardOutcome::kForward;
            const unsigned shift =
                static_cast<unsigned>(addr - e.addr) * 8;
            const std::uint64_t full = e.data >> shift;
            result.data = size >= 8
                              ? full
                              : (full & ((1ull << (8 * size)) - 1));
            result.store_seq = e.seq;
            result.store_id = e.id;
            ++forwards;
        } else {
            // Partial coverage, or data not ready, or poisoned:
            // the load cannot be satisfied here.
            result.outcome = ForwardOutcome::kBlocked;
            result.store_seq = e.seq;
            result.store_id = e.id;
            ++blocks;
        }
        entriesSearched += searched;
        return result;
    }
    entriesSearched += searched;
    return result;
}

const StoreQueueEntry *
StoreQueue::find(SeqNum seq) const
{
    const std::size_t i = indexOf(seq);
    return i == buf_.size() ? nullptr : &buf_[i];
}

const StoreQueueEntry &
StoreQueue::head() const
{
    panic_if(empty(), "%s: head() on empty store queue",
             params_.name.c_str());
    return buf_[head_];
}

void
StoreQueue::compactHead()
{
    // Amortized O(1) pop_front: reclaim the dead prefix only once it
    // dominates the allocation.
    if (head_ >= 64 && head_ * 2 >= buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(head_));
        scan_addr_.erase(scan_addr_.begin(),
                         scan_addr_.begin() + static_cast<long>(head_));
        scan_size_.erase(scan_size_.begin(),
                         scan_size_.begin() + static_cast<long>(head_));
        head_ = 0;
    }
}

StoreQueueEntry
StoreQueue::popHead()
{
    panic_if(empty(), "%s: popHead() on empty store queue",
             params_.name.c_str());
    StoreQueueEntry e = buf_[head_];
    ++head_;
    compactHead();
    return e;
}

std::vector<StoreQueueEntry>
StoreQueue::squashAfter(SeqNum seq)
{
    std::vector<StoreQueueEntry> removed;
    while (!empty() && buf_.back().seq > seq) {
        removed.push_back(buf_.back());
        buf_.pop_back();
        scan_addr_.pop_back();
        scan_size_.pop_back();
    }
    return removed;
}

void
StoreQueue::forEach(
    const std::function<void(const StoreQueueEntry &)> &fn) const
{
    for (std::size_t i = head_; i < buf_.size(); ++i)
        fn(buf_[i]);
}

void
StoreQueue::clear()
{
    buf_.clear();
    scan_addr_.clear();
    scan_size_.clear();
    head_ = 0;
}

} // namespace lsq
} // namespace srl
