/**
 * @file
 * Loose Check Filter (paper Section 4.3).
 *
 * A direct-mapped, non-tagged array of 6-bit counters indexed by a hash
 * of the memory address, based on a counting Bloom filter. A store
 * entering the SRL increments its counter; the store leaving the SRL
 * decrements it. A zero counter at a load's address guarantees no store
 * to that address is in the SRL, so the load may bypass the SRL safely.
 *
 * Each LCF entry additionally records the SRL index of the last matching
 * store inserted, enabling *indexed forwarding*: a load that hits a
 * non-zero counter indexes the SRL directly (no CAM, no search); a
 * single external comparator then checks full address and age. If that
 * check fails, the load stalls until the counter drains to zero.
 *
 * The counter and the SRL index of a bucket are packed into one 64-bit
 * lane (count in the low 16 bits, index above), so every filter
 * operation is a single hash plus a single word-sized read-modify-write
 * — the hardware reads one RAM row, and the model touches one cache
 * line. The membership update itself is branch-free: saturation and
 * the zero->nonzero transition are folded into arithmetic (a saturated
 * counter cannot be zero, since the max is >= 1).
 */

#ifndef SRLSIM_LSQ_LCF_HH
#define SRLSIM_LSQ_LCF_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "lsq/counting_bloom.hh"
#include "obs/probe.hh"

namespace srl
{
namespace lsq
{

struct LcfParams
{
    unsigned entries = 2048;
    unsigned counter_bits = 6;
    HashScheme hash = HashScheme::kThreePieceXor;
};

class LooseCheckFilter
{
  public:
    explicit LooseCheckFilter(const LcfParams &params)
        : params_(params), lanes_(params.entries, kEmptyLane),
          counter_max_((1u << params.counter_bits) - 1),
          idx_bits_(ceilLog2(params.entries)), scheme_(params.hash)
    {
        fatal_if(!isPowerOf2(params.entries),
                 "LCF entries must be a power of two");
        fatal_if(params.counter_bits == 0 || params.counter_bits > 16,
                 "LCF counter width out of range");
    }

    static constexpr std::uint32_t kNoIndex = 0xffffffff;

    const LcfParams &params() const { return params_; }

    /** Word-granular hash index for @p addr. */
    unsigned
    index(Addr addr) const
    {
        // >>3: word granularity; hashes operate on the word address.
        switch (scheme_) {
          case HashScheme::kLowerAddressBits:
            return static_cast<unsigned>(labIndex(addr, idx_bits_, 3));
          case HashScheme::kThreePieceXor:
            return static_cast<unsigned>(paxIndex(addr, idx_bits_, 3));
        }
        panic("unknown hash scheme");
    }

    /**
     * A store to @p addr enters the SRL at slot @p srl_index.
     * @return false on counter saturation: the caller must stall SRL
     * allocation until the counter drains.
     */
    bool
    storeInserted(Addr addr, std::uint32_t srl_index)
    {
        std::uint64_t &lane = lanes_[index(addr)];
        const std::uint64_t c = lane & kCountMask;
        const std::uint64_t saturated = c >= counter_max_ ? 1u : 0u;
        overflows += saturated;
        nonzero_ += c == 0 ? 1u : 0u;
        // On saturation the lane is unchanged (count stays at max, the
        // recorded index keeps pointing at the store that filled it).
        const std::uint64_t updated =
            (static_cast<std::uint64_t>(srl_index) << kIndexShift) |
            (c + 1u);
        lane = saturated ? lane : updated;
        inserts += 1u - saturated;
        return saturated == 0;
    }

    /** A store to @p addr left the SRL. */
    void
    storeRemoved(Addr addr)
    {
        std::uint64_t &lane = lanes_[index(addr)];
        panic_if((lane & kCountMask) == 0,
                 "LCF decrement below zero");
        --lane;
        nonzero_ -= (lane & kCountMask) == 0 ? 1u : 0u;
        ++removes;
    }

    /** One-hash load-side check: counter plus recorded SRL slot. */
    struct Check
    {
        unsigned count;          ///< 0 = SRL definitely has no match
        std::uint32_t srl_index; ///< last inserted aliasing slot
        bool mayMatch() const { return count != 0; }
    };

    /**
     * Load-side check: reads the bucket once and returns both the
     * counter and the indexed-forwarding slot. A zero counter means
     * the SRL definitely holds no store to @p addr.
     */
    Check
    lookup(Addr addr) const
    {
        ++checks;
        const std::uint64_t lane = lanes_[index(addr)];
        const Check r{static_cast<unsigned>(lane & kCountMask),
                      static_cast<std::uint32_t>(lane >> kIndexShift)};
        if (r.count != 0) {
            ++hits;
            if (probe_)
                probe_->emit(obs::makeEvent(
                    *clock_, obs::EventKind::kLcfHit,
                    obs::Structure::kLcf, addr, 0, r.count));
        }
        return r;
    }

    /** Load-side check: zero means the SRL definitely has no match. */
    bool mayMatch(Addr addr) const { return lookup(addr).mayMatch(); }

    /** Attach the observability probe bus (see StoreRedoLog::setProbe). */
    void
    setProbe(obs::ProbeBus *bus, const Cycle *clock)
    {
        probe_ = bus;
        clock_ = clock;
    }

    /**
     * SRL index recorded for the last store whose address hashed to
     * @p addr's entry (for indexed forwarding). Only meaningful when
     * mayMatch(addr) is true.
     */
    std::uint32_t
    lastSrlIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(lanes_[index(addr)] >>
                                          kIndexShift);
    }

    unsigned
    count(Addr addr) const
    {
        return static_cast<unsigned>(lanes_[index(addr)] & kCountMask);
    }

    /** True iff every counter is zero (invariant checks in tests). */
    bool
    allZero() const
    {
        for (const auto lane : lanes_) {
            if ((lane & kCountMask) != 0)
                return false;
        }
        return true;
    }

    /** Number of counters currently non-zero (occupancy gauge). */
    std::size_t nonzeroCounters() const { return nonzero_; }

    void
    clear()
    {
        std::fill(lanes_.begin(), lanes_.end(), kEmptyLane);
        nonzero_ = 0;
    }

    mutable stats::Scalar checks;
    mutable stats::Scalar hits;
    stats::Scalar inserts;
    stats::Scalar removes;
    stats::Scalar overflows;

  private:
    static constexpr unsigned kIndexShift = 16;
    static constexpr std::uint64_t kCountMask = 0xffff;
    static constexpr std::uint64_t kEmptyLane =
        static_cast<std::uint64_t>(kNoIndex) << kIndexShift;

    LcfParams params_;
    std::vector<std::uint64_t> lanes_;
    unsigned counter_max_;
    unsigned idx_bits_;
    HashScheme scheme_;
    std::size_t nonzero_ = 0;
    obs::ProbeBus *probe_ = nullptr;
    const Cycle *clock_ = nullptr;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_LCF_HH
