/**
 * @file
 * Loose Check Filter (paper Section 4.3).
 *
 * A direct-mapped, non-tagged array of 6-bit counters indexed by a hash
 * of the memory address, based on a counting Bloom filter. A store
 * entering the SRL increments its counter; the store leaving the SRL
 * decrements it. A zero counter at a load's address guarantees no store
 * to that address is in the SRL, so the load may bypass the SRL safely.
 *
 * Each LCF entry additionally records the SRL index of the last matching
 * store inserted, enabling *indexed forwarding*: a load that hits a
 * non-zero counter indexes the SRL directly (no CAM, no search); a
 * single external comparator then checks full address and age. If that
 * check fails, the load stalls until the counter drains to zero.
 */

#ifndef SRLSIM_LSQ_LCF_HH
#define SRLSIM_LSQ_LCF_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "lsq/counting_bloom.hh"
#include "obs/probe.hh"

namespace srl
{
namespace lsq
{

struct LcfParams
{
    unsigned entries = 2048;
    unsigned counter_bits = 6;
    HashScheme hash = HashScheme::kThreePieceXor;
};

class LooseCheckFilter
{
  public:
    explicit LooseCheckFilter(const LcfParams &params)
        : params_(params),
          bloom_(params.entries, params.counter_bits, params.hash),
          last_srl_index_(params.entries, kNoIndex)
    {
    }

    static constexpr std::uint32_t kNoIndex = 0xffffffff;

    const LcfParams &params() const { return params_; }

    /**
     * A store to @p addr enters the SRL at slot @p srl_index.
     * @return false on counter saturation: the caller must stall SRL
     * allocation until the counter drains.
     */
    bool
    storeInserted(Addr addr, std::uint32_t srl_index)
    {
        if (!bloom_.increment(addr))
            return false;
        last_srl_index_[bloom_.index(addr)] = srl_index;
        ++inserts;
        return true;
    }

    /** A store to @p addr left the SRL. */
    void
    storeRemoved(Addr addr)
    {
        bloom_.decrement(addr);
        ++removes;
    }

    /** Load-side check: zero means the SRL definitely has no match. */
    bool
    mayMatch(Addr addr) const
    {
        ++checks;
        const bool hit = bloom_.mayContain(addr);
        if (hit) {
            ++hits;
            if (probe_)
                probe_->emit(obs::makeEvent(
                    *clock_, obs::EventKind::kLcfHit,
                    obs::Structure::kLcf, addr, 0,
                    bloom_.count(addr)));
        }
        return hit;
    }

    /** Attach the observability probe bus (see StoreRedoLog::setProbe). */
    void
    setProbe(obs::ProbeBus *bus, const Cycle *clock)
    {
        probe_ = bus;
        clock_ = clock;
    }

    /**
     * SRL index recorded for the last store whose address hashed to
     * @p addr's entry (for indexed forwarding). Only meaningful when
     * mayMatch(addr) is true.
     */
    std::uint32_t
    lastSrlIndex(Addr addr) const
    {
        return last_srl_index_[bloom_.index(addr)];
    }

    unsigned count(Addr addr) const { return bloom_.count(addr); }

    void
    clear()
    {
        bloom_.clear();
        std::fill(last_srl_index_.begin(), last_srl_index_.end(),
                  kNoIndex);
    }

    const CountingBloom &bloom() const { return bloom_; }
    CountingBloom &bloom() { return bloom_; }

    mutable stats::Scalar checks;
    mutable stats::Scalar hits;
    stats::Scalar inserts;
    stats::Scalar removes;

  private:
    LcfParams params_;
    CountingBloom bloom_;
    std::vector<std::uint32_t> last_srl_index_;
    obs::ProbeBus *probe_ = nullptr;
    const Cycle *clock_ = nullptr;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_LCF_HH
