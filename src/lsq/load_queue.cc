#include "lsq/load_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srl
{
namespace lsq
{

LoadQueue::LoadQueue(const LoadQueueParams &params) : params_(params)
{
    fatal_if(params_.capacity == 0, "load queue capacity must be > 0");
    entries_.reserve(params_.capacity * 2);
}

void
LoadQueue::allocate(SeqNum seq, CheckpointId ckpt)
{
    panic_if(full(), "load queue allocate when full");
    panic_if(size() != 0 && entries_.back().seq >= seq,
             "load queue allocation out of program order "
             "(tail %llu, new %llu)",
             static_cast<unsigned long long>(entries_.back().seq),
             static_cast<unsigned long long>(seq));
    Entry e;
    e.seq = seq;
    e.ckpt = ckpt;
    entries_.push_back(e);
}

std::size_t
LoadQueue::lowerBound(SeqNum seq) const
{
    // Entries are allocated in program order, so seq is sorted
    // ascending and lookups can binary-search the live range.
    std::size_t lo = head_, hi = entries_.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (entries_[mid].seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

void
LoadQueue::executed(SeqNum seq, Addr addr, std::uint8_t size,
                    SeqNum fwd_store_seq)
{
    const std::size_t i = lowerBound(seq);
    panic_if(i == entries_.size() || entries_[i].seq != seq,
             "load queue executed() for absent load %llu",
             static_cast<unsigned long long>(seq));
    Entry &e = entries_[i];
    e.addr = addr;
    e.size = size;
    e.fwd_store_seq = fwd_store_seq;
    e.executed = true;
}

std::optional<LoadViolation>
LoadQueue::storeCheck(SeqNum store_seq, Addr addr, std::uint8_t size)
{
    ++camSearches;
    camEntriesSearched += this->size();
    // Only loads younger than the store can violate; binary-search the
    // scan start (the CAM activity charge above is unchanged: the
    // modeled CAM still activates every entry).
    for (std::size_t i = lowerBound(store_seq + 1); i < entries_.size();
         ++i) { // oldest first
        const Entry &e = entries_[i];
        if (!e.executed)
            continue;
        if (!bytesOverlap(e.addr, e.size, addr, size))
            continue;
        // Did the load obtain its data from this store or a newer one?
        if (e.fwd_store_seq != kInvalidSeqNum &&
            e.fwd_store_seq >= store_seq) {
            continue;
        }
        ++violations;
        return LoadViolation{e.seq, e.ckpt};
    }
    return std::nullopt;
}

std::optional<LoadViolation>
LoadQueue::snoopCheck(Addr addr, std::uint8_t size)
{
    ++camSearches;
    camEntriesSearched += this->size();
    for (std::size_t i = head_; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        if (!e.executed)
            continue;
        if (bytesOverlap(e.addr, e.size, addr, size)) {
            ++snoopHits;
            return LoadViolation{e.seq, e.ckpt};
        }
    }
    return std::nullopt;
}

void
LoadQueue::compactHead()
{
    // Amortized O(1) pop_front: reclaim the dead prefix only once it
    // dominates the allocation.
    if (head_ >= 64 && head_ * 2 >= entries_.size()) {
        entries_.erase(entries_.begin(),
                       entries_.begin() + static_cast<long>(head_));
        head_ = 0;
    }
}

void
LoadQueue::commitUpTo(SeqNum seq)
{
    while (head_ < entries_.size() && entries_[head_].seq <= seq)
        ++head_;
    compactHead();
}

void
LoadQueue::squashAfter(SeqNum seq)
{
    while (size() != 0 && entries_.back().seq > seq)
        entries_.pop_back();
}

} // namespace lsq
} // namespace srl
