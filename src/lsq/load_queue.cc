#include "lsq/load_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srl
{
namespace lsq
{

LoadQueue::LoadQueue(const LoadQueueParams &params) : params_(params)
{
    fatal_if(params_.capacity == 0, "load queue capacity must be > 0");
}

void
LoadQueue::allocate(SeqNum seq, CheckpointId ckpt)
{
    panic_if(full(), "load queue allocate when full");
    panic_if(!entries_.empty() && entries_.back().seq >= seq,
             "load queue allocation out of program order "
             "(tail %llu, new %llu)",
             static_cast<unsigned long long>(entries_.back().seq),
             static_cast<unsigned long long>(seq));
    Entry e;
    e.seq = seq;
    e.ckpt = ckpt;
    entries_.push_back(e);
}

auto
LoadQueue::lowerBound(SeqNum seq) -> std::deque<Entry>::iterator
{
    // Entries are allocated in program order, so seq is sorted
    // ascending and lookups can binary-search.
    return std::lower_bound(entries_.begin(), entries_.end(), seq,
                            [](const Entry &e, SeqNum s) {
                                return e.seq < s;
                            });
}

void
LoadQueue::executed(SeqNum seq, Addr addr, std::uint8_t size,
                    SeqNum fwd_store_seq)
{
    const auto it = lowerBound(seq);
    panic_if(it == entries_.end() || it->seq != seq,
             "load queue executed() for absent load %llu",
             static_cast<unsigned long long>(seq));
    it->addr = addr;
    it->size = size;
    it->fwd_store_seq = fwd_store_seq;
    it->executed = true;
}

std::optional<LoadViolation>
LoadQueue::storeCheck(SeqNum store_seq, Addr addr, std::uint8_t size)
{
    ++camSearches;
    camEntriesSearched += entries_.size();
    // Only loads younger than the store can violate; binary-search the
    // scan start (the CAM activity charge above is unchanged: the
    // modeled CAM still activates every entry).
    for (auto it = lowerBound(store_seq + 1); it != entries_.end();
         ++it) { // oldest first
        const Entry &e = *it;
        if (!e.executed)
            continue;
        if (!bytesOverlap(e.addr, e.size, addr, size))
            continue;
        // Did the load obtain its data from this store or a newer one?
        if (e.fwd_store_seq != kInvalidSeqNum &&
            e.fwd_store_seq >= store_seq) {
            continue;
        }
        ++violations;
        return LoadViolation{e.seq, e.ckpt};
    }
    return std::nullopt;
}

std::optional<LoadViolation>
LoadQueue::snoopCheck(Addr addr, std::uint8_t size)
{
    ++camSearches;
    camEntriesSearched += entries_.size();
    for (const auto &e : entries_) {
        if (!e.executed)
            continue;
        if (bytesOverlap(e.addr, e.size, addr, size)) {
            ++snoopHits;
            return LoadViolation{e.seq, e.ckpt};
        }
    }
    return std::nullopt;
}

void
LoadQueue::commitUpTo(SeqNum seq)
{
    while (!entries_.empty() && entries_.front().seq <= seq)
        entries_.pop_front();
}

void
LoadQueue::squashAfter(SeqNum seq)
{
    while (!entries_.empty() && entries_.back().seq > seq)
        entries_.pop_back();
}

} // namespace lsq
} // namespace srl
