#include "lsq/fwd_cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace lsq
{

ForwardingCache::ForwardingCache(const FwdCacheParams &params)
    : params_(params), entries_(params.entries)
{
    fatal_if(params_.assoc == 0 ||
                 params_.entries % params_.assoc != 0,
             "forwarding cache entries/assoc mismatch");
    num_sets_ = params_.entries / params_.assoc;
    fatal_if(!isPowerOf2(num_sets_),
             "forwarding cache set count must be a power of two");
}

unsigned
ForwardingCache::setIndex(Addr word) const
{
    return static_cast<unsigned>((word >> 3) & (num_sets_ - 1));
}

const ForwardingCache::Entry *
ForwardingCache::findWord(Addr word) const
{
    return const_cast<ForwardingCache *>(this)->findWord(word);
}

ForwardingCache::Entry *
ForwardingCache::findWord(Addr word)
{
    const unsigned set = setIndex(word);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Entry &e = entries_[set * params_.assoc + w];
        if (e.valid && e.word == word)
            return &e;
    }
    return nullptr;
}

void
ForwardingCache::storeUpdate(Addr addr, std::uint8_t size,
                             std::uint64_t data, StoreId id)
{
    panic_if(size == 0 || size > 8 || (addr % size) != 0,
             "forwarding cache store must be naturally aligned");
    const Addr word = alignDown(addr, 8);
    Entry *e = findWord(word);
    if (!e) {
        // Allocate: LRU within the set, preferring invalid ways.
        const unsigned set = setIndex(word);
        Entry *victim = &entries_[set * params_.assoc];
        for (unsigned w = 0; w < params_.assoc; ++w) {
            Entry &cand = entries_[set * params_.assoc + w];
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (cand.lru < victim->lru)
                victim = &cand;
        }
        if (victim->valid) {
            ++liveEvictions;
            if (probe_)
                probe_->emit(obs::makeEvent(
                    *clock_, obs::EventKind::kFcEvict,
                    obs::Structure::kFwdCache, victim->word, 0, 0));
        }
        victim->valid = true;
        victim->word = word;
        victim->byte_mask = 0;
        victim->last_store = kNullStoreId;
        e = victim;
    }
    const unsigned off = static_cast<unsigned>(addr - word);
    // Contract: updates arrive in program order (stores leave the L1
    // STQ in order — that in-order departure is what makes a single
    // age representative per word sound). A null tag means the entry
    // mirrors committed cache state; any live store is younger.
    panic_if(!isNullStoreId(e->last_store) &&
                 allocatedBefore(id, e->last_store),
             "forwarding cache updated out of program order");
    for (unsigned i = 0; i < size; ++i) {
        e->bytes[off + i] = static_cast<std::uint8_t>(data >> (8 * i));
        e->byte_mask |= static_cast<std::uint8_t>(1u << (off + i));
    }
    e->last_store = id;
    e->lru = ++stamp_;
    ++updates;
    if (probe_)
        probe_->emit(obs::makeEvent(*clock_, obs::EventKind::kFcInsert,
                                    obs::Structure::kFwdCache, addr, 0,
                                    id.index));
}

bool
ForwardingCache::wouldEvictLive(Addr addr) const
{
    const Addr word = alignDown(addr, 8);
    if (findWord(word))
        return false;
    const unsigned set = setIndex(word);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!entries_[set * params_.assoc + w].valid)
            return false;
    }
    return true;
}

std::optional<FwdCacheHit>
ForwardingCache::load(Addr addr, std::uint8_t size) const
{
    ++lookups;
    panic_if(size == 0 || size > 8 || (addr % size) != 0,
             "forwarding cache load must be naturally aligned");
    const Addr word = alignDown(addr, 8);
    const Entry *e = findWord(word);
    if (!e)
        return std::nullopt;
    const unsigned off = static_cast<unsigned>(addr - word);
    for (unsigned i = 0; i < size; ++i) {
        if (!(e->byte_mask & (1u << (off + i))))
            return std::nullopt;
    }
    std::uint64_t data = 0;
    for (unsigned i = 0; i < size; ++i)
        data |= static_cast<std::uint64_t>(e->bytes[off + i]) << (8 * i);
    ++hits;
    return FwdCacheHit{data, e->last_store};
}

void
ForwardingCache::storeDrained(Addr addr, std::uint8_t size,
                              std::uint64_t data, StoreId id)
{
    const Addr word = alignDown(addr, 8);
    Entry *e = findWord(word);
    if (!e)
        return;
    if (!isNullStoreId(e->last_store) && !(e->last_store == id)) {
        // A different live store age-represents this word. If it is
        // younger than the drained store its bytes are newer; leave
        // the entry alone. (It cannot be older: drains are in order.)
        return;
    }
    const unsigned off = static_cast<unsigned>(addr - word);
    for (unsigned i = 0; i < size; ++i) {
        e->bytes[off + i] = static_cast<std::uint8_t>(data >> (8 * i));
        e->byte_mask |= static_cast<std::uint8_t>(1u << (off + i));
    }
    e->last_store = kNullStoreId;
}

void
ForwardingCache::discardAll()
{
    if (probe_)
        probe_->emit(obs::makeEvent(
            *clock_, obs::EventKind::kFcDiscard,
            obs::Structure::kFwdCache,
            static_cast<std::uint64_t>(liveEntries()), 0, 0));
    for (auto &e : entries_)
        e.valid = false;
}

std::size_t
ForwardingCache::liveEntries() const
{
    std::size_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace lsq
} // namespace srl
