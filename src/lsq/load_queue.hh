/**
 * @file
 * Conventional fully-associative load queue (paper Section 2.2.1 /
 * Section 2.3), used by the non-SRL configurations (baseline, monolithic
 * STQ sweep, hierarchical, ideal).
 *
 * A FIFO of all in-flight (allocated but not committed) loads. Internal
 * store executions and external snoops CAM the entire queue against
 * their address; a younger load that executed without forwarding from
 * the store (or from some newer store) raises a memory-order violation
 * and execution restarts from the violating load's checkpoint. CAM
 * activity counters feed the power model.
 */

#ifndef SRLSIM_LSQ_LOAD_QUEUE_HH
#define SRLSIM_LSQ_LOAD_QUEUE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "lsq/store_queue.hh" // bytesOverlap

namespace srl
{
namespace lsq
{

/** A detected memory-ordering violation. */
struct LoadViolation
{
    SeqNum load_seq = kInvalidSeqNum;
    CheckpointId ckpt = kInvalidCheckpoint;
};

struct LoadQueueParams
{
    unsigned capacity = 1024;
};

class LoadQueue
{
  public:
    explicit LoadQueue(const LoadQueueParams &params);

    unsigned capacity() const { return params_.capacity; }
    std::size_t size() const { return entries_.size() - head_; }
    bool full() const { return size() >= params_.capacity; }

    /** Allocate at rename, in program order. @pre !full() */
    void allocate(SeqNum seq, CheckpointId ckpt);

    /**
     * The load executed: record its address and which store (if any)
     * forwarded to it (kInvalidSeqNum for cache/none).
     */
    void executed(SeqNum seq, Addr addr, std::uint8_t size,
                  SeqNum fwd_store_seq);

    /**
     * A store with now-known address executes/completes: CAM the queue.
     * @return the oldest violating load, if any.
     */
    std::optional<LoadViolation> storeCheck(SeqNum store_seq, Addr addr,
                                            std::uint8_t size);

    /**
     * External (other-processor) store snoop: any executed load whose
     * address matches must restart (no age check needed, Section 3).
     * @return the oldest matching load, if any.
     */
    std::optional<LoadViolation> snoopCheck(Addr addr,
                                            std::uint8_t size);

    /** Commit (remove) all loads with seq <= @p seq. */
    void commitUpTo(SeqNum seq);

    /** Squash all loads with seq > @p seq. */
    void squashAfter(SeqNum seq);

    void
    clear()
    {
        entries_.clear();
        head_ = 0;
    }

    mutable stats::Scalar camSearches;
    mutable stats::Scalar camEntriesSearched;
    stats::Scalar violations;
    stats::Scalar snoopHits;

  private:
    struct Entry
    {
        SeqNum seq = kInvalidSeqNum;
        CheckpointId ckpt = kInvalidCheckpoint;
        Addr addr = 0;
        std::uint8_t size = 0;
        SeqNum fwd_store_seq = kInvalidSeqNum;
        bool executed = false;
    };

    /** First live index with entry seq >= @p seq (seq-sorted). */
    std::size_t lowerBound(SeqNum seq) const;
    void compactHead();

    LoadQueueParams params_;
    /**
     * Seq-sorted entries on one contiguous allocation with an amortized
     * head offset (commits advance head_; the dead prefix is reclaimed
     * in batches), replacing a std::deque whose chunked iterators made
     * the per-store CAM walk and binary search two dependent loads per
     * step. Live range is [head_, entries_.size()).
     */
    std::vector<Entry> entries_;
    std::size_t head_ = 0;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_LOAD_QUEUE_HH
