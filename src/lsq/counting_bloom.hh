/**
 * @file
 * A direct-mapped, untagged counting Bloom filter [Fan et al. 2000,
 * Bloom 1970] over memory addresses.
 *
 * Two users in this repo:
 *  - the Loose Check Filter (lcf.hh) that tells loads whether a store to
 *    a (hash-alias of) their address may still sit in the SRL;
 *  - the Membership Test Buffer of the hierarchical store queue baseline
 *    [Akkary et al. 2003], which filters L2 STQ lookups.
 *
 * Addresses are hashed at naturally-aligned 8-byte-word granularity
 * (every access in this machine is 1/2/4/8 bytes, naturally aligned, so
 * an access touches exactly one word). Counters saturate: an increment
 * that would overflow fails and the caller must stall (the paper handles
 * LCF counter overflow by stalling SRL store allocation).
 */

#ifndef SRLSIM_LSQ_COUNTING_BLOOM_HH
#define SRLSIM_LSQ_COUNTING_BLOOM_HH

#include <cstdint>
#include <vector>

#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace srl
{
namespace lsq
{

/** Address-to-index hashing schemes evaluated in the paper (Sec 6.4). */
enum class HashScheme : std::uint8_t
{
    kLowerAddressBits, ///< LAB: low-order word-address bits
    kThreePieceXor,    ///< 3-PAX: XOR of lower, middle, upper fields
};

class CountingBloom
{
  public:
    CountingBloom(unsigned entries, unsigned counter_bits,
                  HashScheme scheme)
        : counters_(entries, 0), counter_max_((1u << counter_bits) - 1),
          idx_bits_(ceilLog2(entries)), scheme_(scheme)
    {
        fatal_if(!isPowerOf2(entries),
                 "counting bloom entries must be a power of two");
        fatal_if(counter_bits == 0 || counter_bits > 16,
                 "counter width out of range");
    }

    /** Word-granular hash index for @p addr. */
    unsigned
    index(Addr addr) const
    {
        // >>3: word granularity; hashes operate on the word address.
        switch (scheme_) {
          case HashScheme::kLowerAddressBits:
            return static_cast<unsigned>(labIndex(addr, idx_bits_, 3));
          case HashScheme::kThreePieceXor:
            return static_cast<unsigned>(paxIndex(addr, idx_bits_, 3));
        }
        panic("unknown hash scheme");
    }

    /**
     * Increment the counter for @p addr.
     * @return false (and change nothing) on counter saturation.
     *
     * Branch-free on the hot path: saturation and the zero->nonzero
     * transition are folded into arithmetic (a saturated counter
     * cannot be zero, since counter_max_ >= 1), so the only branches
     * left are the hash-scheme switch and the caller's result check.
     */
    bool
    increment(Addr addr)
    {
        auto &c = counters_[index(addr)];
        const unsigned saturated = c >= counter_max_ ? 1u : 0u;
        overflows += saturated;
        nonzero_ += c == 0 ? 1u : 0u;
        c = static_cast<std::uint16_t>(c + 1u - saturated);
        return saturated == 0;
    }

    /** Decrement the counter for @p addr. @pre counter > 0 */
    void
    decrement(Addr addr)
    {
        auto &c = counters_[index(addr)];
        panic_if(c == 0, "counting bloom decrement below zero");
        --c;
        nonzero_ -= c == 0 ? 1u : 0u;
    }

    /** Counter value for @p addr. Zero guarantees no member hashes here. */
    unsigned count(Addr addr) const { return counters_[index(addr)]; }

    /** May an inserted address alias with @p addr? */
    bool mayContain(Addr addr) const { return count(addr) != 0; }

    unsigned
    entries() const
    {
        return static_cast<unsigned>(counters_.size());
    }

    /** True iff every counter is zero (invariant checks in tests). */
    bool
    allZero() const
    {
        for (const auto c : counters_) {
            if (c != 0)
                return false;
        }
        return true;
    }

    /** Number of counters currently non-zero (occupancy gauge). */
    std::size_t nonzeroCounters() const { return nonzero_; }

    void
    clear()
    {
        std::fill(counters_.begin(), counters_.end(), 0);
        nonzero_ = 0;
    }

    stats::Scalar overflows;

  private:
    std::size_t nonzero_ = 0;
    std::vector<std::uint16_t> counters_;
    unsigned counter_max_;
    unsigned idx_bits_;
    HashScheme scheme_;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_COUNTING_BLOOM_HH
