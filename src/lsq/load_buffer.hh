/**
 * @file
 * The secondary load buffer (paper Section 3) — the paper's scalable,
 * CAM-free load tracking structure.
 *
 * Organized like a cache: set-associative, indexed by the load's data
 * address. Unlike a cache, multiple loads to the same address occupy
 * separate ways of the set. Each entry carries:
 *  - the address (tag),
 *  - the identifier of the nearest preceding store (StoreId: SRL index
 *    plus wrap bit), so load/store program order is a magnitude compare,
 *  - the identifier of the store that forwarded to the load, if any,
 *  - checkpoint bits enabling bulk reset at checkpoint commit/squash.
 *
 * A completing store looks up only one set (no full CAM). On an address
 * match, the nearest-store and forwarding-store identifiers decide
 * whether a memory-dependence violation occurred; recovery rolls back
 * to the violating load's checkpoint (coarse-grain recovery is why no
 * exact load ordering is needed). External snoops hit any matching load
 * and restart from the oldest matching checkpoint. Set overflow is
 * handled either by a small fully-associative victim buffer or by
 * taking a memory-ordering violation (both paper options; ablation A2).
 */

#ifndef SRLSIM_LSQ_LOAD_BUFFER_HH
#define SRLSIM_LSQ_LOAD_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "lsq/load_queue.hh" // LoadViolation
#include "lsq/store_id.hh"
#include "lsq/store_queue.hh" // bytesOverlap
#include "obs/probe.hh"

namespace srl
{
namespace lsq
{

/** What to do when a set is full at insertion (Section 3). */
enum class OverflowPolicy : std::uint8_t
{
    kVictimBuffer, ///< spill to a small fully-associative victim buffer
    kViolate,      ///< take a memory-ordering violation on the overflow
};

struct LoadBufferParams
{
    unsigned entries = 1024;
    unsigned assoc = 4;
    OverflowPolicy overflow = OverflowPolicy::kVictimBuffer;
    unsigned victim_entries = 16;
};

/** Result of inserting a completed load. */
struct LoadBufferInsert
{
    bool overflowed = false; ///< caller must treat as ordering violation
};

class SecondaryLoadBuffer
{
  public:
    explicit SecondaryLoadBuffer(const LoadBufferParams &params);

    const LoadBufferParams &params() const { return params_; }

    /**
     * A load completed: allocate an entry indexed by its data address.
     * @p nearest is the id of the last store allocated before the load;
     * @p fwd is the store that forwarded to it (kNullStoreId if the
     * data came from the cache).
     */
    LoadBufferInsert insert(SeqNum seq, CheckpointId ckpt, Addr addr,
                            std::uint8_t size, StoreId nearest,
                            StoreId fwd);

    /**
     * An internal store (with identifier @p store_id) completes or
     * drains: set-associative lookup for violating loads. Violation:
     * the load is younger than the store, addresses overlap, and the
     * load did not get its data from this store or a newer one.
     * @return the oldest violating load (program-order check among the
     * set's hits), if any.
     */
    std::optional<LoadViolation> storeCheck(StoreId store_id, Addr addr,
                                            std::uint8_t size);

    /**
     * External store snoop: restart from the oldest matching load's
     * checkpoint; no age comparison needed.
     */
    std::optional<LoadViolation> snoopCheck(Addr addr,
                                            std::uint8_t size);

    /** Bulk-reset all entries belonging to checkpoint @p ckpt. */
    void clearCheckpoint(CheckpointId ckpt);

    /** Squash entries younger than @p seq (rollback support). */
    void squashAfter(SeqNum seq);

    void clear();

    std::size_t liveEntries() const;

    /** Attach the observability probe bus (see StoreRedoLog::setProbe). */
    void
    setProbe(obs::ProbeBus *bus, const Cycle *clock)
    {
        probe_ = bus;
        clock_ = clock;
    }

    mutable stats::Scalar setLookups;     ///< store/snoop set reads
    mutable stats::Scalar entriesCompared; ///< per-way comparator firings
    stats::Scalar inserts;
    stats::Scalar overflows;
    stats::Scalar victimInserts;
    stats::Scalar violationsFlagged;

  private:
    struct Entry
    {
        bool valid = false;
        SeqNum seq = kInvalidSeqNum;
        CheckpointId ckpt = kInvalidCheckpoint;
        Addr addr = 0;
        std::uint8_t size = 0;
        StoreId nearest = kNullStoreId;
        StoreId fwd = kNullStoreId;
    };

    unsigned setIndex(Addr addr) const;

    /** Violation predicate for one entry against a completing store. */
    static bool violates(const Entry &e, const StoreId &store_id,
                         Addr addr, std::uint8_t size);

    template <typename Pred>
    std::optional<LoadViolation> scan(Addr addr, const Pred &pred);

    LoadBufferParams params_;
    unsigned num_sets_;
    std::vector<Entry> sets_;    ///< num_sets_ x assoc
    std::vector<Entry> victims_; ///< fully associative victim buffer
    obs::ProbeBus *probe_ = nullptr;
    const Cycle *clock_ = nullptr;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_LOAD_BUFFER_HH
