/**
 * @file
 * The Forwarding Cache (paper Sections 4.3 and 6.5).
 *
 * A small set-associative cache (default 256 entries, 4-way) holding the
 * *temporary* values of miss-independent stores so that later
 * independent loads can get their data without searching the SRL, and
 * without modifying the L1 data cache. All contents are discarded in
 * bulk when the miss returns and the redo phase begins.
 *
 * Granularity is a naturally-aligned 8-byte word with a per-byte valid
 * mask, so partial stores merge and loads hit only when every byte they
 * need is present. Updates MUST arrive in program order — which the
 * machine guarantees, because stores update the FC as they leave the
 * L1 STQ head, in order. That in-order discipline is what makes a
 * single age representative (last_store) per word sound: every valid
 * byte holds its program-youngest writer's value, so a load that
 * checks last_store is program-order-before itself can safely consume
 * any valid bytes. (A property test demonstrated that out-of-order
 * updates would break this; the contract is therefore enforced.)
 * Evicting a live entry is legal: correctness is preserved because the
 * LCF still counts the evicted store, so any load that misses the FC
 * but hits the LCF falls back to the stall / indexed-forwarding path
 * rather than reading stale cache data.
 */

#ifndef SRLSIM_LSQ_FWD_CACHE_HH
#define SRLSIM_LSQ_FWD_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "lsq/store_id.hh"
#include "obs/probe.hh"

namespace srl
{
namespace lsq
{

struct FwdCacheParams
{
    unsigned entries = 256;
    unsigned assoc = 4;
};

/** Result of a forwarding-cache load lookup. */
struct FwdCacheHit
{
    std::uint64_t data = 0;
    StoreId store_id = kNullStoreId; ///< youngest store that wrote any byte
};

class ForwardingCache
{
  public:
    explicit ForwardingCache(const FwdCacheParams &params);

    /**
     * A miss-independent store writes its bytes. @p id is the store's
     * ring identifier (recorded per entry so a forwarding load can
     * report which store fed it, for the load buffer's check).
     */
    void storeUpdate(Addr addr, std::uint8_t size, std::uint64_t data,
                     StoreId id);

    /**
     * Would storing to @p addr displace a live entry? Used by the
     * "temporary updates in the data cache" mode (Section 6.5), where
     * associativity conflicts must *stall store processing* instead of
     * silently evicting speculative data.
     */
    bool wouldEvictLive(Addr addr) const;

    /**
     * The store with identifier @p id drained from the SRL to the
     * cache. If this word's entry is age-represented by @p id (or has
     * already been neutralized), refresh its bytes and neutralize the
     * age tag (kNullStoreId): the entry's value now equals the cache's,
     * so any load may consume it, and — critically — the entry never
     * holds the identifier of a store that left the SRL ring, keeping
     * every live age comparison within one ring span (where the
     * wrap-around magnitude compare is valid).
     */
    void storeDrained(Addr addr, std::uint8_t size, std::uint64_t data,
                      StoreId id);

    /**
     * Load lookup: hit iff every requested byte is valid.
     */
    std::optional<FwdCacheHit> load(Addr addr, std::uint8_t size) const;

    /** Discard all temporary updates (redo-phase start). */
    void discardAll();

    std::size_t liveEntries() const;

    /** Attach the observability probe bus (see StoreRedoLog::setProbe). */
    void
    setProbe(obs::ProbeBus *bus, const Cycle *clock)
    {
        probe_ = bus;
        clock_ = clock;
    }

    stats::Scalar updates;
    mutable stats::Scalar lookups;
    mutable stats::Scalar hits;
    stats::Scalar liveEvictions; ///< valid entries displaced (risk stat)

  private:
    struct Entry
    {
        bool valid = false;
        Addr word = 0; ///< word-aligned address
        std::uint8_t byte_mask = 0;
        std::uint8_t bytes[8] = {};
        StoreId last_store = kNullStoreId;
        std::uint64_t lru = 0;
    };

    unsigned setIndex(Addr word) const;
    const Entry *findWord(Addr word) const;
    Entry *findWord(Addr word);

    FwdCacheParams params_;
    unsigned num_sets_;
    std::vector<Entry> entries_;
    std::uint64_t stamp_ = 0;
    obs::ProbeBus *probe_ = nullptr;
    const Cycle *clock_ = nullptr;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_FWD_CACHE_HH
