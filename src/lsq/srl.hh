/**
 * @file
 * The Store Redo Log (paper Section 4) — the paper's central structure.
 *
 * A FIFO with *no CAM and no search* that records, in program order,
 * every store that leaves the L1 STQ while a long-latency miss is being
 * tolerated (or while earlier stores still sit in the SRL). Independent
 * stores write their address and data on entry; dependent (poisoned)
 * stores reserve their slot and fill it when they re-execute from the
 * Slice Data Buffer. Once the head entry has data — and all program-
 * order-prior loads have executed (the WAR fence, order_fence.hh) — it
 * drains to the data cache, so memory updates occur exactly in program
 * order.
 *
 * Slots are addressed by StoreId.index: because stores receive ring ids
 * at allocation and enter the SRL in program order, a store's SRL slot
 * is its id's index. The only random access is *indexed* (no search):
 * the LCF hands a load the slot of the last aliasing store and a single
 * external comparator validates address and age (indexed forwarding).
 */

#ifndef SRLSIM_LSQ_SRL_HH
#define SRLSIM_LSQ_SRL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "lsq/store_id.hh"
#include "obs/probe.hh"

namespace srl
{
namespace lsq
{

/** One SRL record. */
struct SrlEntry
{
    SeqNum seq = kInvalidSeqNum;
    StoreId id = kNullStoreId;
    CheckpointId ckpt = kInvalidCheckpoint;
    Addr addr = 0;
    std::uint8_t size = 0;
    std::uint64_t data = 0;
    bool data_valid = false; ///< false for a dependent store's reserved slot
    bool dependent = false;  ///< was miss-dependent (filled at re-execute)
};

struct SrlParams
{
    unsigned capacity = 1024;
};

class StoreRedoLog
{
  public:
    explicit StoreRedoLog(const SrlParams &params);

    unsigned capacity() const { return params_.capacity; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ >= params_.capacity; }

    /**
     * An independent store enters with address and data.
     * @pre !full(); ids must arrive in allocation order.
     */
    void pushIndependent(SeqNum seq, StoreId id, CheckpointId ckpt,
                         Addr addr, std::uint8_t size,
                         std::uint64_t data);

    /**
     * A dependent store reserves its slot (no address/data yet); the
     * slot index to record in the SDB is id.index.
     */
    void pushDependent(SeqNum seq, StoreId id, CheckpointId ckpt);

    /**
     * A re-executed dependent store fills its reserved slot.
     * @pre the slot holds the matching reserved entry.
     */
    void fillDependent(StoreId id, Addr addr, std::uint8_t size,
                       std::uint64_t data);

    /** Head (oldest) entry. @pre !empty() */
    const SrlEntry &head() const;

    /** True iff the head entry has drainable data. */
    bool headReady() const;

    /** Pop the head entry. @pre headReady() */
    SrlEntry popHead();

    /**
     * Indexed access for LCF indexed forwarding: the entry at @p slot if
     * that slot is live, else nullptr. This is a RAM read, not a search.
     */
    const SrlEntry *peekSlot(std::uint32_t slot) const;

    /**
     * Squash all entries with seq > @p seq (checkpoint rollback);
     * returns the ids of removed entries so the caller can unwind LCF
     * counters.
     */
    std::vector<SrlEntry> squashAfter(SeqNum seq);

    /** Drop everything (whole-pipeline reset). */
    void clear();

    /** Apply @p fn to live entries, oldest first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::uint64_t a = head_abs_;
        for (std::size_t i = 0; i < count_; ++i, ++a)
            fn(slots_[(a - 1) % params_.capacity]);
    }

    /**
     * Attach the observability probe bus (null detaches); @p clock is
     * the owning processor's cycle counter, read at emission time so
     * events are cycle-stamped. Disabled probes cost one null check.
     */
    void
    setProbe(obs::ProbeBus *bus, const Cycle *clock)
    {
        probe_ = bus;
        clock_ = clock;
    }

    stats::Scalar pushes;
    stats::Scalar dependentPushes;
    stats::Scalar drains;
    stats::Scalar indexedReads;

  private:
    obs::ProbeBus *probe_ = nullptr;
    const Cycle *clock_ = nullptr;

    SrlParams params_;
    std::vector<SrlEntry> slots_;
    std::uint64_t head_abs_ = 0; ///< abs id of the head entry
    std::uint64_t tail_abs_ = 0; ///< abs id the next push must carry
    std::size_t count_ = 0;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_SRL_HH
