#include "lsq/load_buffer.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace lsq
{

SecondaryLoadBuffer::SecondaryLoadBuffer(const LoadBufferParams &params)
    : params_(params)
{
    fatal_if(params_.assoc == 0 ||
                 params_.entries % params_.assoc != 0,
             "load buffer entries/assoc mismatch");
    num_sets_ = params_.entries / params_.assoc;
    fatal_if(!isPowerOf2(num_sets_),
             "load buffer set count must be a power of two");
    sets_.resize(params_.entries);
    if (params_.overflow == OverflowPolicy::kVictimBuffer)
        victims_.resize(params_.victim_entries);
}

unsigned
SecondaryLoadBuffer::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr >> 3) & (num_sets_ - 1));
}

LoadBufferInsert
SecondaryLoadBuffer::insert(SeqNum seq, CheckpointId ckpt, Addr addr,
                            std::uint8_t size, StoreId nearest,
                            StoreId fwd)
{
    Entry e;
    e.valid = true;
    e.seq = seq;
    e.ckpt = ckpt;
    e.addr = addr;
    e.size = size;
    e.nearest = nearest;
    e.fwd = fwd;

    const unsigned set = setIndex(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Entry &slot = sets_[set * params_.assoc + w];
        if (!slot.valid) {
            slot = e;
            ++inserts;
            if (probe_)
                probe_->emit(obs::makeEvent(
                    *clock_, obs::EventKind::kLoadBufInsert,
                    obs::Structure::kLoadBuffer, seq, addr, 0));
            return {};
        }
    }

    // Set overflow.
    ++overflows;
    if (params_.overflow == OverflowPolicy::kVictimBuffer) {
        for (auto &slot : victims_) {
            if (!slot.valid) {
                slot = e;
                ++inserts;
                ++victimInserts;
                if (probe_)
                    probe_->emit(obs::makeEvent(
                        *clock_, obs::EventKind::kLoadBufInsert,
                        obs::Structure::kLoadBuffer, seq, addr, 0));
                return {};
            }
        }
    }
    if (probe_)
        probe_->emit(obs::makeEvent(
            *clock_, obs::EventKind::kLoadBufInsert,
            obs::Structure::kLoadBuffer, seq, addr, 1));
    return {.overflowed = true};
}

bool
SecondaryLoadBuffer::violates(const Entry &e, const StoreId &store_id,
                              Addr addr, std::uint8_t size)
{
    if (!e.valid || !bytesOverlap(e.addr, e.size, addr, size))
        return false;
    // Is the store program-order-before the load? (store id <= the
    // load's nearest-preceding-store id, by wrap-around magnitude.)
    if (allocatedBefore(e.nearest, store_id))
        return false; // store is younger than the load
    // Did the load obtain data from this store or a newer one?
    if (!isNullStoreId(e.fwd) && !allocatedBefore(e.fwd, store_id))
        return false; // forwarded from store_id itself or newer
    return true;
}

std::optional<LoadViolation>
SecondaryLoadBuffer::storeCheck(StoreId store_id, Addr addr,
                                std::uint8_t size)
{
    ++setLookups;
    const unsigned set = setIndex(addr);
    std::optional<LoadViolation> oldest;
    SeqNum oldest_seq = kInvalidSeqNum;

    auto consider = [&](const Entry &e) {
        ++entriesCompared;
        if (!violates(e, store_id, addr, size))
            return;
        if (!oldest || e.seq < oldest_seq) {
            oldest = LoadViolation{e.seq, e.ckpt};
            oldest_seq = e.seq;
        }
    };

    for (unsigned w = 0; w < params_.assoc; ++w)
        consider(sets_[set * params_.assoc + w]);
    for (const auto &v : victims_)
        consider(v);

    if (oldest) {
        ++violationsFlagged;
        if (probe_)
            probe_->emit(obs::makeEvent(
                *clock_, obs::EventKind::kLoadBufViolation,
                obs::Structure::kLoadBuffer, oldest->load_seq, addr,
                oldest->ckpt));
    }
    return oldest;
}

std::optional<LoadViolation>
SecondaryLoadBuffer::snoopCheck(Addr addr, std::uint8_t size)
{
    ++setLookups;
    const unsigned set = setIndex(addr);
    std::optional<LoadViolation> oldest;
    SeqNum oldest_seq = kInvalidSeqNum;

    auto consider = [&](const Entry &e) {
        ++entriesCompared;
        if (!e.valid || !bytesOverlap(e.addr, e.size, addr, size))
            return;
        if (!oldest || e.seq < oldest_seq) {
            oldest = LoadViolation{e.seq, e.ckpt};
            oldest_seq = e.seq;
        }
    };

    for (unsigned w = 0; w < params_.assoc; ++w)
        consider(sets_[set * params_.assoc + w]);
    for (const auto &v : victims_)
        consider(v);

    if (probe_)
        probe_->emit(obs::makeEvent(
            *clock_, obs::EventKind::kLoadBufSnoop,
            obs::Structure::kLoadBuffer, addr, 0, oldest ? 1 : 0));
    return oldest;
}

void
SecondaryLoadBuffer::clearCheckpoint(CheckpointId ckpt)
{
    for (auto &e : sets_) {
        if (e.valid && e.ckpt == ckpt)
            e.valid = false;
    }
    for (auto &e : victims_) {
        if (e.valid && e.ckpt == ckpt)
            e.valid = false;
    }
}

void
SecondaryLoadBuffer::squashAfter(SeqNum seq)
{
    for (auto &e : sets_) {
        if (e.valid && e.seq > seq)
            e.valid = false;
    }
    for (auto &e : victims_) {
        if (e.valid && e.seq > seq)
            e.valid = false;
    }
}

void
SecondaryLoadBuffer::clear()
{
    for (auto &e : sets_)
        e.valid = false;
    for (auto &e : victims_)
        e.valid = false;
}

std::size_t
SecondaryLoadBuffer::liveEntries() const
{
    std::size_t n = 0;
    for (const auto &e : sets_)
        n += e.valid ? 1 : 0;
    for (const auto &e : victims_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace lsq
} // namespace srl
