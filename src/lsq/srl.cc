#include "lsq/srl.hh"

#include "common/logging.hh"

namespace srl
{
namespace lsq
{

StoreRedoLog::StoreRedoLog(const SrlParams &params)
    : params_(params), slots_(params.capacity)
{
    fatal_if(params_.capacity == 0, "SRL capacity must be > 0");
}

void
StoreRedoLog::pushIndependent(SeqNum seq, StoreId id, CheckpointId ckpt,
                              Addr addr, std::uint8_t size,
                              std::uint64_t data)
{
    panic_if(full(), "SRL push on full log");
    if (empty()) {
        head_abs_ = id.abs;
        tail_abs_ = id.abs;
    }
    panic_if(id.abs != tail_abs_,
             "SRL push out of order: got abs %llu expected %llu",
             static_cast<unsigned long long>(id.abs),
             static_cast<unsigned long long>(tail_abs_));
    // abs ids start at 1 (0 is the null marker), so slot = (abs-1) % cap.
    panic_if((id.abs - 1) % params_.capacity != id.index,
             "StoreId index %u inconsistent with SRL ring (abs %llu)",
             id.index, static_cast<unsigned long long>(id.abs));

    SrlEntry &e = slots_[id.index];
    e.seq = seq;
    e.id = id;
    e.ckpt = ckpt;
    e.addr = addr;
    e.size = size;
    e.data = data;
    e.data_valid = true;
    e.dependent = false;
    ++tail_abs_;
    ++count_;
    ++pushes;
    if (probe_)
        probe_->emit(obs::makeEvent(*clock_, obs::EventKind::kSrlPush,
                                    obs::Structure::kSrl, seq, addr, 0));
}

void
StoreRedoLog::pushDependent(SeqNum seq, StoreId id, CheckpointId ckpt)
{
    panic_if(full(), "SRL push on full log");
    if (empty()) {
        head_abs_ = id.abs;
        tail_abs_ = id.abs;
    }
    panic_if(id.abs != tail_abs_,
             "SRL push out of order: got abs %llu expected %llu",
             static_cast<unsigned long long>(id.abs),
             static_cast<unsigned long long>(tail_abs_));

    SrlEntry &e = slots_[id.index];
    e.seq = seq;
    e.id = id;
    e.ckpt = ckpt;
    e.addr = 0;
    e.size = 0;
    e.data = 0;
    e.data_valid = false;
    e.dependent = true;
    ++tail_abs_;
    ++count_;
    ++pushes;
    ++dependentPushes;
    if (probe_)
        probe_->emit(obs::makeEvent(*clock_, obs::EventKind::kSrlPush,
                                    obs::Structure::kSrl, seq, 0, 1));
}

void
StoreRedoLog::fillDependent(StoreId id, Addr addr, std::uint8_t size,
                            std::uint64_t data)
{
    panic_if(id.abs < head_abs_ || id.abs >= tail_abs_,
             "fillDependent of non-live SRL slot (abs %llu)",
             static_cast<unsigned long long>(id.abs));
    SrlEntry &e = slots_[id.index];
    panic_if(!e.dependent || e.data_valid,
             "fillDependent of a non-reserved slot %u", id.index);
    e.addr = addr;
    e.size = size;
    e.data = data;
    e.data_valid = true;
    if (probe_)
        probe_->emit(obs::makeEvent(*clock_, obs::EventKind::kSrlFill,
                                    obs::Structure::kSrl, e.seq, addr,
                                    id.index));
}

const SrlEntry &
StoreRedoLog::head() const
{
    panic_if(empty(), "SRL head() on empty log");
    return slots_[(head_abs_ - 1) % params_.capacity];
}

bool
StoreRedoLog::headReady() const
{
    return !empty() && head().data_valid;
}

SrlEntry
StoreRedoLog::popHead()
{
    panic_if(!headReady(), "SRL popHead() without drainable head");
    SrlEntry e = slots_[(head_abs_ - 1) % params_.capacity];
    ++head_abs_;
    --count_;
    ++drains;
    if (probe_)
        probe_->emit(obs::makeEvent(*clock_, obs::EventKind::kSrlDrain,
                                    obs::Structure::kSrl, e.seq, e.addr,
                                    e.id.index));
    return e;
}

const SrlEntry *
StoreRedoLog::peekSlot(std::uint32_t slot) const
{
    ++const_cast<stats::Scalar &>(indexedReads);
    if (slot >= params_.capacity || count_ == 0)
        return nullptr;
    const SrlEntry &e = slots_[slot];
    // Slot is live iff its entry's abs id lies in [head_abs_, tail_abs_).
    if (e.id.abs >= head_abs_ && e.id.abs < tail_abs_ &&
        e.id.index == slot) {
        return &e;
    }
    return nullptr;
}

std::vector<SrlEntry>
StoreRedoLog::squashAfter(SeqNum seq)
{
    std::vector<SrlEntry> removed;
    while (count_ > 0) {
        const SrlEntry &tail = slots_[(tail_abs_ - 2) % params_.capacity];
        if (tail.seq == kInvalidSeqNum || tail.seq <= seq)
            break;
        removed.push_back(tail);
        --tail_abs_;
        --count_;
    }
    return removed;
}

void
StoreRedoLog::clear()
{
    head_abs_ = 0;
    tail_abs_ = 0;
    count_ = 0;
}

} // namespace lsq
} // namespace srl
