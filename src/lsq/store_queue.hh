/**
 * @file
 * A conventional CAM-searched store queue (paper Section 2.3 / Figure 3).
 *
 * This one class models every CAM store-queue flavor in the evaluation by
 * parameter choice:
 *  - the 48-entry, 3-cycle primary L1 STQ used by all configurations;
 *  - the monolithic 128/256/512/1K STQs of the Figure 2 sweep;
 *  - the "ideal" 1K-entry, 3-cycle STQ of Figure 6;
 *  - the hierarchical design's 1K-entry, 8-cycle L2 STQ (wrapped together
 *    with a Membership Test Buffer in hier_stq.hh).
 *
 * Entries live in program (allocation) order. A load search is a CAM
 * match of the load address against all older stores with known
 * addresses, youngest-first select, with byte-granularity coverage:
 * a single fully-covering store forwards; partial coverage or a matching
 * store with unknown data blocks the load (it must wait for the store to
 * drain to the cache). CAM activity counters feed the power model.
 *
 * Storage is a seq-sorted contiguous vector with an amortized head
 * offset (pops advance an index; the prefix is reclaimed in batches),
 * plus structure-of-arrays address/size lanes so the CAM scan — the
 * hottest loop in the whole model for the 1K-entry configurations —
 * touches 9 bytes per entry instead of the full 40-byte entry. The
 * sorted order also lets find() and the scan's starting point use
 * binary search. Counter semantics are unchanged: entriesSearched
 * counts every older entry visited until the first overlap, inclusive,
 * exactly as the youngest-first CAM walk always did.
 */

#ifndef SRLSIM_LSQ_STORE_QUEUE_HH
#define SRLSIM_LSQ_STORE_QUEUE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "lsq/store_id.hh"

namespace srl
{
namespace lsq
{

/** One store queue entry. */
struct StoreQueueEntry
{
    SeqNum seq = kInvalidSeqNum;
    StoreId id = kNullStoreId;       ///< SRL-ring identifier
    CheckpointId ckpt = kInvalidCheckpoint;
    Addr addr = 0;
    std::uint8_t size = 0;
    std::uint64_t data = 0;
    bool addr_valid = false; ///< address computed
    bool data_valid = false; ///< data available
    bool poisoned = false;   ///< miss-dependent (CFP slice member)
};

/** Outcome of a store-to-load forwarding search. */
enum class ForwardOutcome : std::uint8_t
{
    kNoMatch,  ///< no older store overlaps: read the cache
    kForward,  ///< a single store fully covers the load: data valid
    kBlocked,  ///< overlap without forwardable data: load must wait
};

struct ForwardResult
{
    ForwardOutcome outcome = ForwardOutcome::kNoMatch;
    std::uint64_t data = 0;        ///< valid when kForward
    SeqNum store_seq = kInvalidSeqNum; ///< matching/blocking store
    StoreId store_id = kNullStoreId;
};

/** Do the byte ranges [a, a+as) and [b, b+bs) overlap? */
inline bool
bytesOverlap(Addr a, unsigned as, Addr b, unsigned bs)
{
    return a < b + bs && b < a + as;
}

/** Does [outer, outer+os) fully cover [inner, inner+is)? */
inline bool
bytesCover(Addr outer, unsigned os, Addr inner, unsigned is)
{
    return outer <= inner && inner + is <= outer + os;
}

struct StoreQueueParams
{
    std::string name = "stq";
    unsigned capacity = 48;
    unsigned forward_latency = 3; ///< cycles to forward on a hit
};

class StoreQueue
{
  public:
    explicit StoreQueue(const StoreQueueParams &params);

    const StoreQueueParams &params() const { return params_; }
    unsigned capacity() const { return params_.capacity; }
    unsigned forwardLatency() const { return params_.forward_latency; }

    std::size_t size() const { return buf_.size() - head_; }
    bool empty() const { return head_ == buf_.size(); }
    bool full() const { return size() >= params_.capacity; }

    /**
     * Allocate an entry at the tail (program order). @pre !full()
     */
    void allocate(SeqNum seq, StoreId id, CheckpointId ckpt);

    /** Insert a fully-formed entry at the tail (hierarchical overflow). */
    void pushEntry(const StoreQueueEntry &entry);

    /** The store executes: record address and data. */
    void writeAddrData(SeqNum seq, Addr addr, std::uint8_t size,
                       std::uint64_t data);

    /** Mark the store poisoned (miss-dependent). */
    void markPoisoned(SeqNum seq);

    /**
     * CAM search on behalf of a load (@p load_seq, @p addr, @p size):
     * youngest older store wins. Updates CAM activity stats.
     */
    ForwardResult forward(SeqNum load_seq, Addr addr,
                          std::uint8_t size) const;

    /**
     * Entry for @p seq, or nullptr. Read-only: address/size changes
     * must go through writeAddrData() so the scan lanes stay in sync.
     */
    const StoreQueueEntry *find(SeqNum seq) const;

    /** Head (oldest) entry. @pre !empty() */
    const StoreQueueEntry &head() const;

    /** Pop the head entry. @pre !empty() */
    StoreQueueEntry popHead();

    /**
     * Remove all entries with seq > @p seq; returns the removed entries
     * (youngest first) so callers can unwind side structures (MTB).
     */
    std::vector<StoreQueueEntry> squashAfter(SeqNum seq);

    /** Apply @p fn to each entry, oldest first. */
    void forEach(const std::function<void(const StoreQueueEntry &)> &fn)
        const;

    void clear();

    // CAM activity (power model inputs).
    mutable stats::Scalar searches;        ///< load lookups performed
    mutable stats::Scalar entriesSearched; ///< CAM cells activated
    mutable stats::Scalar forwards;
    mutable stats::Scalar blocks;
    stats::Scalar allocFails; ///< full-queue allocation stalls observed

  private:
    /** Sentinel in the address lane for entries without a known addr. */
    static constexpr Addr kNoAddr = ~static_cast<Addr>(0);

    /** Live index of the entry holding @p seq, or npos. */
    std::size_t indexOf(SeqNum seq) const;
    /** First live index with entry seq >= @p seq (lower bound). */
    std::size_t lowerBound(SeqNum seq) const;
    void compactHead();

    StoreQueueParams params_;
    /** Entries, seq-sorted ascending; live range is [head_, size). */
    std::vector<StoreQueueEntry> buf_;
    std::size_t head_ = 0;
    // Scan lanes mirroring buf_ (same indices): address (kNoAddr when
    // the address is not yet known) and access size.
    std::vector<Addr> scan_addr_;
    std::vector<std::uint8_t> scan_size_;
};

} // namespace lsq
} // namespace srl

#endif // SRLSIM_LSQ_STORE_QUEUE_HH
