/**
 * @file
 * Functional backing store for the simulated physical address space.
 *
 * The architectural memory image lives here; timing caches in this
 * directory track only tags/state. Speculative values (L1 STQ entries,
 * forwarding-cache contents, SRL-recorded store data) live in their own
 * structures and only reach MainMemory when a store drains in program
 * order — which is exactly the ordering discipline the Store Redo Log
 * enforces.
 *
 * Storage is sparse (4 KiB pages allocated on touch) so workloads can
 * scatter accesses across a large address space cheaply.
 */

#ifndef SRLSIM_MEMSYS_MAIN_MEMORY_HH
#define SRLSIM_MEMSYS_MAIN_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/bytes.hh"
#include "common/types.hh"

namespace srl
{
namespace memsys
{

class MainMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr std::size_t kPageBytes = 1ull << kPageShift;

    /**
     * Read @p size bytes (1/2/4/8) at @p addr as a little-endian value.
     * Untouched memory reads as zero.
     */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(Addr addr, unsigned size, std::uint64_t value);

    /** Number of pages materialized so far (for tests/stats). */
    std::size_t pageCount() const { return pages_.size(); }

    MainMemory()
    {
        cache_idx_.fill(~static_cast<Addr>(0));
        cache_page_.fill(nullptr);
    }

    /** Reset to the all-zero image. */
    void
    clear()
    {
        pages_.clear();
        cache_idx_.fill(~static_cast<Addr>(0));
        cache_page_.fill(nullptr);
    }

    /**
     * Serialize the full image, pages in ascending index order so the
     * encoding is independent of hash-map iteration order.
     */
    void serialize(bytes::ByteWriter &w) const;

    /** Replace the image with a serialized one. @throws bytes::CodecError */
    void deserialize(bytes::ByteReader &r);

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    // Direct-mapped page-pointer cache (see findPage): workloads
    // stride several pages at once, which a one-entry cache thrashes
    // on. A missing page is cached as nullptr, so touchPage must not
    // trust a null hit. Page payloads are stable (unique_ptr, never
    // individually removed), so cached pointers stay valid until
    // clear().
    static constexpr std::size_t kPageCacheSlots = 64;
    mutable std::array<Addr, kPageCacheSlots> cache_idx_;
    mutable std::array<Page *, kPageCacheSlots> cache_page_;
};

} // namespace memsys
} // namespace srl

#endif // SRLSIM_MEMSYS_MAIN_MEMORY_HH
