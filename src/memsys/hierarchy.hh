/**
 * @file
 * The three-level memory hierarchy of the baseline machine (Table 1):
 * 32 KB / 3-cycle L1 data cache, 1 MB / 8-cycle unified L2, and a flat
 * 100 ns main memory (800 core cycles at 8 GHz), with MSHR-tracked miss
 * merging and a 16-stream prefetcher filling the L2.
 *
 * Caches are timing-only; architectural data lives in MainMemory and is
 * written strictly in program order by whichever store-queue model is
 * active. Loads that reach the hierarchy report which level serviced
 * them and when their data is ready; a load serviced by main memory is
 * the paper's "long latency miss" that switches the core into Continual
 * Flow (slice) mode.
 */

#ifndef SRLSIM_MEMSYS_HIERARCHY_HH
#define SRLSIM_MEMSYS_HIERARCHY_HH

#include <cstdint>
#include <map>

#include "common/stats.hh"
#include "common/types.hh"
#include "memsys/cache.hh"
#include "memsys/main_memory.hh"
#include "memsys/prefetcher.hh"
#include "obs/probe.hh"

namespace srl
{
namespace memsys
{

struct HierarchyParams
{
    CacheParams l1{"l1d", 32 * 1024, 8, 64, 3};
    CacheParams l2{"l2", 1024 * 1024, 16, 64, 8};
    unsigned memory_latency = 800; ///< request-to-use, core cycles
    unsigned num_mshrs = 32;       ///< outstanding memory misses
    bool enable_prefetch = true;
    PrefetcherParams prefetch{};
};

/** Which level serviced a load. */
enum class ServiceLevel : std::uint8_t
{
    kL1,
    kL2,
    kMemory,
};

struct LoadResult
{
    bool mshr_full = false;    ///< no MSHR available; retry later
    ServiceLevel level = ServiceLevel::kL1;
    Cycle ready = 0;           ///< cycle the data is usable
};

class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params, MainMemory &mem);

    /** Timing access for a load issued at @p now. */
    LoadResult load(Addr addr, Cycle now);

    /**
     * A store draining to the memory system (program order commit
     * point): write-allocates in L1 and marks the line dirty. Returns
     * the store-visible latency (L1 hit latency; misses complete in the
     * background without stalling the drain).
     */
    unsigned storeDrain(Addr addr, Cycle now);

    /**
     * Write back any dirty copy of the line holding @p addr to the next
     * level and clean it (used before temporary in-D$ updates, Sec 6.5).
     * @return true if a writeback actually happened.
     */
    bool writebackLine(Addr addr);

    /** Invalidate @p addr in both cache levels (external snoop). */
    void snoopInvalidate(Addr addr);

    /**
     * Functional cache warming for the fast-forward engine: models
     * the tag/LRU/prefetcher effects of a load without MSHR tracking,
     * probes, or latency (there is no clock while fast-forwarding).
     * Mirrors load()'s hit/fill path exactly, including the hit/miss
     * counters — warmed counters are documented as including warming
     * accesses.
     */
    void warmLoad(Addr addr);

    /** Functional warming for a draining store: storeDrain sans clock. */
    void warmStore(Addr addr);

    /**
     * Drop cycle-keyed transient state (MSHRs) and any attached probe
     * at a segment boundary: the next detailed segment starts its
     * clock at zero, so cycle-stamped entries from the previous
     * segment must not leak across. Tags are installed at request
     * time, so clearing completed fills loses nothing architectural.
     */
    void resetTiming();

    /** Serialize caches, prefetcher, and counters (MSHRs excluded). */
    void serialize(bytes::ByteWriter &w) const;

    /** Restore a serialized hierarchy of identical geometry. */
    void deserialize(bytes::ByteReader &r);

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    MainMemory &mem() { return mem_; }
    const HierarchyParams &params() const { return params_; }

    /** Outstanding memory-miss count at @p now (expired MSHRs pruned). */
    unsigned outstandingMisses(Cycle now);

    /** Attach the observability probe bus (see StoreRedoLog::setProbe). */
    void
    setProbe(obs::ProbeBus *bus, const Cycle *clock)
    {
        probe_ = bus;
        clock_ = clock;
    }

    stats::Scalar loads;
    stats::Scalar l1Hits;
    stats::Scalar l2Hits;
    stats::Scalar memMisses;
    stats::Scalar mshrMerges;
    stats::Scalar mshrFullEvents;
    stats::Scalar storeDrains;

  private:
    void prune(Cycle now);

    HierarchyParams params_;
    MainMemory &mem_;
    Cache l1_;
    Cache l2_;
    StreamPrefetcher prefetcher_;
    /** line addr -> cycle its memory fill completes */
    std::map<Addr, Cycle> mshrs_;
    obs::ProbeBus *probe_ = nullptr;
    const Cycle *clock_ = nullptr;
};

} // namespace memsys
} // namespace srl

#endif // SRLSIM_MEMSYS_HIERARCHY_HH
