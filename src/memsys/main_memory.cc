#include "memsys/main_memory.hh"

#include "common/logging.hh"

namespace srl
{
namespace memsys
{

const MainMemory::Page *
MainMemory::findPage(Addr addr) const
{
    const auto it = pages_.find(addr >> kPageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

MainMemory::Page &
MainMemory::touchPage(Addr addr)
{
    auto &slot = pages_[addr >> kPageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 8, "bad memory read size %u", size);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        const Page *page = findPage(a);
        const std::uint8_t byte =
            page ? (*page)[a & (kPageBytes - 1)] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
MainMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    panic_if(size == 0 || size > 8, "bad memory write size %u", size);
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        Page &page = touchPage(a);
        page[a & (kPageBytes - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

} // namespace memsys
} // namespace srl
