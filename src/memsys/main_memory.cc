#include "memsys/main_memory.hh"

#include "common/logging.hh"

namespace srl
{
namespace memsys
{

const MainMemory::Page *
MainMemory::findPage(Addr addr) const
{
    // One-entry page cache: accesses cluster heavily within a page,
    // and Page storage is stable (unique_ptr payloads never move, and
    // pages are never individually removed).
    const Addr idx = addr >> kPageShift;
    if (idx == last_idx_)
        return last_page_;
    const auto it = pages_.find(idx);
    last_idx_ = idx;
    last_page_ = it == pages_.end() ? nullptr : it->second.get();
    return last_page_;
}

MainMemory::Page &
MainMemory::touchPage(Addr addr)
{
    const Addr idx = addr >> kPageShift;
    if (idx == last_idx_ && last_page_)
        return *last_page_;
    auto &slot = pages_[idx];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    last_idx_ = idx;
    last_page_ = slot.get();
    return *slot;
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 8, "bad memory read size %u", size);
    std::uint64_t value = 0;
    if (((addr + size - 1) >> kPageShift) == (addr >> kPageShift)) {
        // Whole access within one page: a single lookup.
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        const std::size_t off = addr & (kPageBytes - 1);
        for (unsigned i = 0; i < size; ++i)
            value |= static_cast<std::uint64_t>((*page)[off + i])
                     << (8 * i);
        return value;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        const Page *page = findPage(a);
        const std::uint8_t byte =
            page ? (*page)[a & (kPageBytes - 1)] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
MainMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    panic_if(size == 0 || size > 8, "bad memory write size %u", size);
    if (((addr + size - 1) >> kPageShift) == (addr >> kPageShift)) {
        Page &page = touchPage(addr);
        const std::size_t off = addr & (kPageBytes - 1);
        for (unsigned i = 0; i < size; ++i)
            page[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        Page &page = touchPage(a);
        page[a & (kPageBytes - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

} // namespace memsys
} // namespace srl
