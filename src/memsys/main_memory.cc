#include "memsys/main_memory.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace srl
{
namespace memsys
{

const MainMemory::Page *
MainMemory::findPage(Addr addr) const
{
    const Addr idx = addr >> kPageShift;
    const std::size_t slot = idx & (kPageCacheSlots - 1);
    if (cache_idx_[slot] == idx)
        return cache_page_[slot];
    const auto it = pages_.find(idx);
    cache_idx_[slot] = idx;
    cache_page_[slot] = it == pages_.end() ? nullptr : it->second.get();
    return cache_page_[slot];
}

MainMemory::Page &
MainMemory::touchPage(Addr addr)
{
    const Addr idx = addr >> kPageShift;
    const std::size_t slot = idx & (kPageCacheSlots - 1);
    if (cache_idx_[slot] == idx && cache_page_[slot])
        return *cache_page_[slot];
    auto &entry = pages_[idx];
    if (!entry) {
        entry = std::make_unique<Page>();
        entry->fill(0);
    }
    cache_idx_[slot] = idx;
    cache_page_[slot] = entry.get();
    return *entry;
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 8, "bad memory read size %u", size);
    std::uint64_t value = 0;
    if (((addr + size - 1) >> kPageShift) == (addr >> kPageShift)) {
        // Whole access within one page: a single lookup.
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        const std::size_t off = addr & (kPageBytes - 1);
        if (off + 8 <= kPageBytes) {
            // One little-endian word load covers every size; mask off
            // the bytes beyond the access.
            std::memcpy(&value, page->data() + off, 8);
            if (size < 8)
                value &= (1ull << (8 * size)) - 1;
            return value;
        }
        for (unsigned i = 0; i < size; ++i)
            value |= static_cast<std::uint64_t>((*page)[off + i])
                     << (8 * i);
        return value;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        const Page *page = findPage(a);
        const std::uint8_t byte =
            page ? (*page)[a & (kPageBytes - 1)] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
MainMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    panic_if(size == 0 || size > 8, "bad memory write size %u", size);
    if (((addr + size - 1) >> kPageShift) == (addr >> kPageShift)) {
        Page &page = touchPage(addr);
        const std::size_t off = addr & (kPageBytes - 1);
        // The low `size` bytes of a little-endian value are exactly
        // the bytes to store.
        std::memcpy(page.data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        Page &page = touchPage(a);
        page[a & (kPageBytes - 1)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

void
MainMemory::serialize(bytes::ByteWriter &w) const
{
    std::vector<Addr> idxs;
    idxs.reserve(pages_.size());
    for (const auto &kv : pages_)
        idxs.push_back(kv.first);
    std::sort(idxs.begin(), idxs.end());
    w.u64(idxs.size());
    for (const Addr idx : idxs) {
        w.u64(idx);
        w.raw(pages_.at(idx)->data(), kPageBytes);
    }
}

void
MainMemory::deserialize(bytes::ByteReader &r)
{
    clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr idx = r.u64();
        if (pages_.count(idx))
            throw bytes::CodecError("memory image: duplicate page");
        auto page = std::make_unique<Page>();
        r.raw(page->data(), kPageBytes);
        pages_.emplace(idx, std::move(page));
    }
}

} // namespace memsys
} // namespace srl
