#include "memsys/hierarchy.hh"

#include "common/logging.hh"

namespace srl
{
namespace memsys
{

Hierarchy::Hierarchy(const HierarchyParams &params, MainMemory &mem)
    : params_(params), mem_(mem), l1_(params.l1), l2_(params.l2),
      prefetcher_(params.prefetch)
{
}

void
Hierarchy::prune(Cycle now)
{
    for (auto it = mshrs_.begin(); it != mshrs_.end();) {
        if (it->second <= now) {
            if (probe_)
                probe_->emit(obs::makeEvent(
                    it->second, obs::EventKind::kMemMissReturn,
                    obs::Structure::kMemory, it->first, 0, 0));
            it = mshrs_.erase(it);
        } else {
            ++it;
        }
    }
}

unsigned
Hierarchy::outstandingMisses(Cycle now)
{
    prune(now);
    return static_cast<unsigned>(mshrs_.size());
}

LoadResult
Hierarchy::load(Addr addr, Cycle now)
{
    ++loads;
    LoadResult result;
    const Addr line = l1_.lineAddr(addr);

    // A fill already in flight for this line? Tags are installed at
    // request time, so this check must precede the hit path: a load to
    // a pending line merges into the outstanding miss and waits for
    // its data.
    prune(now);
    if (auto it = mshrs_.find(line); it != mshrs_.end()) {
        ++mshrMerges;
        l1_.touch(line);
        result.level = ServiceLevel::kMemory;
        result.ready = it->second;
        return result;
    }

    if (l1_.touch(line)) {
        ++l1Hits;
        result.level = ServiceLevel::kL1;
        result.ready = now + l1_.hitLatency();
        return result;
    }

    // The stream prefetcher trains on L1 demand misses (hit or miss in
    // L2), keeping armed streams running ahead of the demand stream.
    if (params_.enable_prefetch) {
        prefetcher_.observeMiss(addr, [this](Addr pf_line) {
            l2_.fill(pf_line);
        });
    }

    if (l2_.touch(line)) {
        ++l2Hits;
        result.level = ServiceLevel::kL2;
        result.ready = now + l2_.hitLatency();
        l1_.fill(line);
        return result;
    }

    // Miss to memory: needs an MSHR.
    if (mshrs_.size() >= params_.num_mshrs) {
        ++mshrFullEvents;
        result.mshr_full = true;
        return result;
    }

    ++memMisses;
    const Cycle ready = now + params_.memory_latency;
    if (probe_)
        probe_->emit(obs::makeEvent(now, obs::EventKind::kMemMissIssue,
                                    obs::Structure::kMemory, line, ready,
                                    0));
    mshrs_.emplace(line, ready);
    l2_.fill(line);
    l1_.fill(line);
    result.level = ServiceLevel::kMemory;
    result.ready = ready;
    return result;
}

unsigned
Hierarchy::storeDrain(Addr addr, Cycle now)
{
    (void)now;
    ++storeDrains;
    const Addr line = l1_.lineAddr(addr);
    const auto result = l1_.access(line, true);
    if (result.writeback)
        l2_.access(result.victim_line, true);
    if (!result.hit) {
        // Write-allocate fill from L2/memory happens in the background;
        // keep L2 tags warm.
        l2_.fill(line);
    }
    return l1_.hitLatency();
}

void
Hierarchy::warmLoad(Addr addr)
{
    ++loads;
    const Addr line = l1_.lineAddr(addr);
    if (l1_.touch(line)) {
        ++l1Hits;
        return;
    }
    if (params_.enable_prefetch) {
        prefetcher_.observeMiss(addr, [this](Addr pf_line) {
            l2_.fill(pf_line);
        });
    }
    if (l2_.touch(line)) {
        ++l2Hits;
        l1_.fill(line);
        return;
    }
    ++memMisses;
    l2_.fill(line);
    l1_.fill(line);
}

void
Hierarchy::warmStore(Addr addr)
{
    ++storeDrains;
    const Addr line = l1_.lineAddr(addr);
    const auto result = l1_.access(line, true);
    if (result.writeback)
        l2_.access(result.victim_line, true);
    if (!result.hit)
        l2_.fill(line);
}

void
Hierarchy::resetTiming()
{
    mshrs_.clear();
    probe_ = nullptr;
    clock_ = nullptr;
}

void
Hierarchy::serialize(bytes::ByteWriter &w) const
{
    l1_.serialize(w);
    l2_.serialize(w);
    prefetcher_.serialize(w);
    w.u64(loads.value());
    w.u64(l1Hits.value());
    w.u64(l2Hits.value());
    w.u64(memMisses.value());
    w.u64(mshrMerges.value());
    w.u64(mshrFullEvents.value());
    w.u64(storeDrains.value());
}

void
Hierarchy::deserialize(bytes::ByteReader &r)
{
    l1_.deserialize(r);
    l2_.deserialize(r);
    prefetcher_.deserialize(r);
    const auto restore = [&r](stats::Scalar &s) {
        s.reset();
        s += r.u64();
    };
    restore(loads);
    restore(l1Hits);
    restore(l2Hits);
    restore(memMisses);
    restore(mshrMerges);
    restore(mshrFullEvents);
    restore(storeDrains);
    mshrs_.clear();
}

bool
Hierarchy::writebackLine(Addr addr)
{
    const Addr line = l1_.lineAddr(addr);
    if (l1_.isDirty(line)) {
        l1_.cleanLine(line);
        l2_.access(line, true);
        ++l1_.writebacks;
        return true;
    }
    return false;
}

void
Hierarchy::snoopInvalidate(Addr addr)
{
    l1_.invalidate(l1_.lineAddr(addr));
    l2_.invalidate(l2_.lineAddr(addr));
}

} // namespace memsys
} // namespace srl
