/**
 * @file
 * A timing-only set-associative cache: tags, valid/dirty state and true
 * LRU, with no data array (the architectural image lives in MainMemory).
 *
 * The cache additionally models the per-checkpoint speculative state the
 * paper's Section 4.3 describes for the alternative "temporary updates in
 * the data cache" design: a speculative bit and a speculatively-valid bit
 * per line, bulk-clearable, with the constraint that only one checkpoint's
 * stores may own a given speculative line.
 */

#ifndef SRLSIM_MEMSYS_CACHE_HH
#define SRLSIM_MEMSYS_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace srl
{
namespace memsys
{

struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned line_bytes = 64;
    unsigned hit_latency = 3;
};

/** Result of a cache lookup/allocation. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty victim was evicted
    Addr victim_line = 0;   ///< line address of the dirty victim
};

class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    const CacheParams &params() const { return params_; }

    /** Line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const;

    /** Probe without side effects. */
    bool probe(Addr addr) const;

    /**
     * Access for a read or write: on hit, updates LRU (and dirty on
     * write); on miss, allocates the line, evicting the LRU victim.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Touch (LRU update) on hit only; never allocates. */
    bool touch(Addr addr);

    /** Allocate @p addr if absent (e.g. prefetch fill). */
    CacheAccessResult fill(Addr addr);

    /** Invalidate the line holding @p addr if present. */
    void invalidate(Addr addr);

    /**
     * Mark the line speculative on behalf of @p ckpt. Returns false and
     * changes nothing if the line is already speculative for a
     * *different* checkpoint (the single-version constraint: the store
     * must stall).
     *
     * @pre the line is present.
     */
    bool markSpeculative(Addr addr, CheckpointId ckpt);

    /** True iff the line holding @p addr is currently speculative. */
    bool isSpeculative(Addr addr) const;

    /** True iff the line is speculative on behalf of @p ckpt. */
    bool isSpeculativeFor(Addr addr, CheckpointId ckpt) const;

    /** True iff the line holding @p addr is dirty. */
    bool isDirty(Addr addr) const;

    /** Clear the dirty bit of the line holding @p addr, if present. */
    void cleanLine(Addr addr);

    /**
     * Bulk-commit checkpoint @p ckpt: its speculative lines become
     * committed (speculative bits cleared, dirty retained).
     */
    void commitCheckpoint(CheckpointId ckpt);

    /**
     * Bulk-squash checkpoint @p ckpt: its speculative lines are
     * invalidated (the temporary data is discarded). Returns the number
     * of lines discarded.
     */
    unsigned squashCheckpoint(CheckpointId ckpt);

    /** Discard *all* speculative lines (redo-phase start). */
    unsigned squashAllSpeculative();

    unsigned numSets() const { return num_sets_; }
    unsigned hitLatency() const { return params_.hit_latency; }

    /**
     * Serialize tags/valid/dirty/LRU state and the access counters.
     * Speculative per-checkpoint state is transient (it exists only
     * while a checkpoint is in flight); serializing with speculative
     * lines outstanding is a caller bug and panics.
     */
    void serialize(bytes::ByteWriter &w) const;

    /**
     * Restore a serialized image into a cache of identical geometry.
     * @throws bytes::CodecError on mismatch or truncation
     */
    void deserialize(bytes::ByteReader &r);

    // Stats, exposed for experiment harnesses.
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar writebacks;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool speculative = false;
        CheckpointId spec_ckpt = kInvalidCheckpoint;
        std::uint64_t lru = 0; ///< last-use stamp; larger = more recent
    };

    /** tags_ value for an invalid way: no real tag reaches it (it
     * would need a byte address of 2^64 - line). */
    static constexpr Addr kNoTag = ~Addr{0};

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    CacheParams params_;
    unsigned num_sets_;
    unsigned line_shift_;
    unsigned set_shift_; ///< log2(num_sets_)
    std::vector<Line> lines_; ///< num_sets_ x assoc, row-major
    /**
     * Tag lane: tags_[i] mirrors lines_[i]'s tag, kNoTag when the way
     * is invalid. The lookup that every load/store/probe performs scans
     * this dense lane — one cache line covers a whole 8-way set —
     * instead of striding through the 32-byte Line records.
     */
    std::vector<Addr> tags_;
    /**
     * Indices of lines marked speculative since the last bulk walk.
     * The per-checkpoint commit/squash walks visit only these instead
     * of every line; entries can go stale (the line was evicted or
     * invalidated in between, possibly re-marked and re-appended), so
     * every visit re-checks the line's current state before acting and
     * the walk compacts survivors in place.
     */
    std::vector<std::uint32_t> spec_idx_;
    std::uint64_t use_stamp_ = 0;
    /**
     * Count of currently speculative lines; lets the per-checkpoint
     * bulk commit/squash walks short-circuit when no line is
     * speculative (always, for configurations whose temporary updates
     * bypass the data cache).
     */
    unsigned spec_lines_ = 0;
};

} // namespace memsys
} // namespace srl

#endif // SRLSIM_MEMSYS_CACHE_HH
