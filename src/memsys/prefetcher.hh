/**
 * @file
 * Stream-based hardware data prefetcher (Table 1: "Stream-based, 16
 * streams"). Detects unit-line-stride streams from the demand-miss
 * sequence and runs a configurable prefetch depth ahead, filling the L2.
 */

#ifndef SRLSIM_MEMSYS_PREFETCHER_HH
#define SRLSIM_MEMSYS_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/bytes.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace srl
{
namespace memsys
{

struct PrefetcherParams
{
    unsigned num_streams = 16;
    unsigned line_bytes = 64;
    unsigned train_threshold = 2; ///< consecutive next-line misses to arm
    unsigned degree = 16;         ///< lines fetched ahead once armed
    unsigned match_slack = 8;     ///< lines of out-of-order skew tolerated
};

class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(const PrefetcherParams &params);

    /**
     * Observe a demand miss at @p addr; may synchronously call
     * @p issue(Addr line_addr) for each line to prefetch. Templated on
     * the callable so the per-miss hot path pays no std::function
     * construction or indirect-call cost.
     */
    template <typename IssueFn>
    void
    observeMiss(Addr addr, const IssueFn &issue)
    {
        const Addr line = addr & ~static_cast<Addr>(params_.line_bytes -
                                                    1);

        // Look for a stream near this line. Demand accesses are issued
        // by an out-of-order core, so matching tolerates a few lines of
        // skew around the expected next line.
        const Addr slack = static_cast<Addr>(params_.match_slack) *
                           params_.line_bytes;
        for (auto &s : streams_) {
            if (!s.valid)
                continue;
            const Addr lo = s.next_line > slack ? s.next_line - slack
                                                : 0;
            const Addr hi = s.next_line + slack;
            if (line < lo || line > hi)
                continue;
            s.lru = ++stamp_;
            if (line >= s.next_line)
                s.next_line = line + params_.line_bytes;
            if (s.confidence < params_.train_threshold) {
                ++s.confidence;
            }
            if (s.confidence >= params_.train_threshold) {
                // Armed: keep the prefetch edge 'degree' lines ahead.
                const Addr want_edge =
                    line + static_cast<Addr>(params_.degree) *
                               params_.line_bytes;
                if (s.prefetch_edge < line)
                    s.prefetch_edge = line;
                while (s.prefetch_edge < want_edge) {
                    s.prefetch_edge += params_.line_bytes;
                    issue(s.prefetch_edge);
                    ++issued;
                }
            }
            return;
        }

        allocateStream(line);
    }

    /** Serialize stream table + counters for checkpointing. */
    void serialize(bytes::ByteWriter &w) const;

    /** Restore into a prefetcher with the same stream count. */
    void deserialize(bytes::ByteReader &r);

    stats::Scalar issued;
    stats::Scalar streamsAllocated;

  private:
    struct Stream
    {
        bool valid = false;
        Addr next_line = 0;     ///< expected next demand line
        unsigned confidence = 0;
        Addr prefetch_edge = 0; ///< highest line prefetched so far
        std::uint64_t lru = 0;
    };

    /** Allocate (replace LRU) a tentative stream for @p line. */
    void allocateStream(Addr line);

    PrefetcherParams params_;
    std::vector<Stream> streams_;
    std::uint64_t stamp_ = 0;
};

} // namespace memsys
} // namespace srl

#endif // SRLSIM_MEMSYS_PREFETCHER_HH
