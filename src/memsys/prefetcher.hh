/**
 * @file
 * Stream-based hardware data prefetcher (Table 1: "Stream-based, 16
 * streams"). Detects unit-line-stride streams from the demand-miss
 * sequence and runs a configurable prefetch depth ahead, filling the L2.
 */

#ifndef SRLSIM_MEMSYS_PREFETCHER_HH
#define SRLSIM_MEMSYS_PREFETCHER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace srl
{
namespace memsys
{

struct PrefetcherParams
{
    unsigned num_streams = 16;
    unsigned line_bytes = 64;
    unsigned train_threshold = 2; ///< consecutive next-line misses to arm
    unsigned degree = 16;         ///< lines fetched ahead once armed
    unsigned match_slack = 8;     ///< lines of out-of-order skew tolerated
};

class StreamPrefetcher
{
  public:
    using IssueFn = std::function<void(Addr line_addr)>;

    explicit StreamPrefetcher(const PrefetcherParams &params);

    /**
     * Observe a demand miss at @p addr; may synchronously call
     * @p issue for each line to prefetch.
     */
    void observeMiss(Addr addr, const IssueFn &issue);

    stats::Scalar issued;
    stats::Scalar streamsAllocated;

  private:
    struct Stream
    {
        bool valid = false;
        Addr next_line = 0;     ///< expected next demand line
        unsigned confidence = 0;
        Addr prefetch_edge = 0; ///< highest line prefetched so far
        std::uint64_t lru = 0;
    };

    PrefetcherParams params_;
    std::vector<Stream> streams_;
    std::uint64_t stamp_ = 0;
};

} // namespace memsys
} // namespace srl

#endif // SRLSIM_MEMSYS_PREFETCHER_HH
