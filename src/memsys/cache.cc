#include "memsys/cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace memsys
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    fatal_if(!isPowerOf2(params_.line_bytes), "%s: line size must be a "
             "power of two", params_.name.c_str());
    fatal_if(params_.assoc == 0, "%s: associativity must be > 0",
             params_.name.c_str());
    const std::uint64_t lines = params_.size_bytes / params_.line_bytes;
    fatal_if(lines % params_.assoc != 0,
             "%s: size/line/assoc mismatch", params_.name.c_str());
    num_sets_ = static_cast<unsigned>(lines / params_.assoc);
    fatal_if(!isPowerOf2(num_sets_), "%s: set count must be a power of "
             "two", params_.name.c_str());
    line_shift_ = floorLog2(params_.line_bytes);
    set_shift_ = floorLog2(num_sets_);
    lines_.resize(lines);
    tags_.assign(lines, kNoTag);
}

Addr
Cache::lineAddr(Addr addr) const
{
    return addr >> line_shift_ << line_shift_;
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr >> line_shift_) & (num_sets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> line_shift_ >> set_shift_;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Addr *tags = tags_.data() + std::size_t{set} * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (tags[w] == tag)
            return &lines_[std::size_t{set} * params_.assoc + w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    CacheAccessResult result;
    if (Line *line = findLine(addr)) {
        line->lru = ++use_stamp_;
        if (is_write)
            line->dirty = true;
        ++hits;
        result.hit = true;
        return result;
    }

    ++misses;

    // Allocate: pick the LRU way, preferring invalid ways.
    const unsigned set = setIndex(addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        ++writebacks;
        result.writeback = true;
        result.victim_line = (victim->tag << set_shift_ | set)
                             << line_shift_;
    }

    if (victim->valid && victim->speculative)
        --spec_lines_;
    victim->tag = tagOf(addr);
    victim->valid = true;
    victim->dirty = is_write;
    victim->speculative = false;
    victim->spec_ckpt = kInvalidCheckpoint;
    victim->lru = ++use_stamp_;
    tags_[static_cast<std::size_t>(victim - lines_.data())] =
        victim->tag;
    return result;
}

bool
Cache::touch(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->lru = ++use_stamp_;
        return true;
    }
    return false;
}

CacheAccessResult
Cache::fill(Addr addr)
{
    CacheAccessResult result;
    if (findLine(addr)) {
        result.hit = true;
        return result;
    }
    return access(addr, false);
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        if (line->speculative)
            --spec_lines_;
        line->valid = false;
        line->dirty = false;
        line->speculative = false;
        line->spec_ckpt = kInvalidCheckpoint;
        tags_[static_cast<std::size_t>(line - lines_.data())] = kNoTag;
    }
}

bool
Cache::markSpeculative(Addr addr, CheckpointId ckpt)
{
    Line *line = findLine(addr);
    panic_if(!line, "markSpeculative on absent line %#llx",
             static_cast<unsigned long long>(addr));
    if (line->speculative && line->spec_ckpt != ckpt)
        return false; // single-version constraint: caller must stall
    if (!line->speculative) {
        ++spec_lines_;
        spec_idx_.push_back(static_cast<std::uint32_t>(
            line - lines_.data()));
    }
    line->speculative = true;
    line->spec_ckpt = ckpt;
    return true;
}

bool
Cache::isSpeculative(Addr addr) const
{
    const Line *line = findLine(addr);
    return line && line->speculative;
}

bool
Cache::isSpeculativeFor(Addr addr, CheckpointId ckpt) const
{
    const Line *line = findLine(addr);
    return line && line->speculative && line->spec_ckpt == ckpt;
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *line = findLine(addr);
    return line && line->dirty;
}

void
Cache::cleanLine(Addr addr)
{
    if (Line *line = findLine(addr))
        line->dirty = false;
}

void
Cache::commitCheckpoint(CheckpointId ckpt)
{
    // The common configurations (temporary updates in the forwarding
    // cache, not the data cache) never mark lines speculative, so the
    // bulk walk short-circuits on the live count.
    if (spec_lines_ == 0) {
        spec_idx_.clear();
        return;
    }
    std::size_t keep = 0;
    for (const std::uint32_t i : spec_idx_) {
        Line &line = lines_[i];
        if (!line.valid || !line.speculative)
            continue; // stale: cleared since it was recorded
        if (line.spec_ckpt == ckpt) {
            line.speculative = false;
            line.spec_ckpt = kInvalidCheckpoint;
            --spec_lines_;
        } else {
            spec_idx_[keep++] = i;
        }
    }
    spec_idx_.resize(keep);
}

unsigned
Cache::squashCheckpoint(CheckpointId ckpt)
{
    unsigned discarded = 0;
    if (spec_lines_ == 0) {
        spec_idx_.clear();
        return discarded;
    }
    std::size_t keep = 0;
    for (const std::uint32_t i : spec_idx_) {
        Line &line = lines_[i];
        if (!line.valid || !line.speculative)
            continue; // stale: cleared since it was recorded
        if (line.spec_ckpt == ckpt) {
            line.valid = false;
            line.dirty = false;
            line.speculative = false;
            line.spec_ckpt = kInvalidCheckpoint;
            tags_[i] = kNoTag;
            --spec_lines_;
            ++discarded;
        } else {
            spec_idx_[keep++] = i;
        }
    }
    spec_idx_.resize(keep);
    return discarded;
}

void
Cache::serialize(bytes::ByteWriter &w) const
{
    panic_if(spec_lines_ != 0,
             "%s: serializing with %u speculative lines outstanding",
             params_.name.c_str(), spec_lines_);
    w.u64(lines_.size());
    for (const Line &line : lines_) {
        w.u64(line.tag);
        w.boolean(line.valid);
        w.boolean(line.dirty);
        w.u64(line.lru);
    }
    w.u64(use_stamp_);
    w.u64(hits.value());
    w.u64(misses.value());
    w.u64(writebacks.value());
}

void
Cache::deserialize(bytes::ByteReader &r)
{
    if (r.u64() != lines_.size())
        throw bytes::CodecError(params_.name +
                                ": cache geometry mismatch");
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        Line &line = lines_[i];
        line.tag = r.u64();
        line.valid = r.boolean();
        line.dirty = r.boolean();
        line.speculative = false;
        line.spec_ckpt = kInvalidCheckpoint;
        line.lru = r.u64();
        tags_[i] = line.valid ? line.tag : kNoTag;
    }
    use_stamp_ = r.u64();
    spec_idx_.clear();
    spec_lines_ = 0;
    hits.reset();
    hits += r.u64();
    misses.reset();
    misses += r.u64();
    writebacks.reset();
    writebacks += r.u64();
}

unsigned
Cache::squashAllSpeculative()
{
    unsigned discarded = 0;
    if (spec_lines_ == 0) {
        spec_idx_.clear();
        return discarded;
    }
    for (const std::uint32_t i : spec_idx_) {
        Line &line = lines_[i];
        if (line.valid && line.speculative) {
            line.valid = false;
            line.dirty = false;
            line.speculative = false;
            line.spec_ckpt = kInvalidCheckpoint;
            tags_[i] = kNoTag;
            ++discarded;
        }
    }
    spec_idx_.clear();
    spec_lines_ = 0;
    return discarded;
}

} // namespace memsys
} // namespace srl
