#include "memsys/prefetcher.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace memsys
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherParams &params)
    : params_(params), streams_(params.num_streams)
{
    fatal_if(!isPowerOf2(params_.line_bytes),
             "prefetcher line size must be a power of two");
}

void
StreamPrefetcher::allocateStream(Addr line)
{
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lru < victim->lru)
            victim = &s;
    }
    victim->valid = true;
    victim->next_line = line + params_.line_bytes;
    victim->confidence = 0;
    victim->prefetch_edge = line;
    victim->lru = ++stamp_;
    ++streamsAllocated;
}

} // namespace memsys
} // namespace srl
