#include "memsys/prefetcher.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace memsys
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherParams &params)
    : params_(params), streams_(params.num_streams)
{
    fatal_if(!isPowerOf2(params_.line_bytes),
             "prefetcher line size must be a power of two");
}

void
StreamPrefetcher::observeMiss(Addr addr, const IssueFn &issue)
{
    const Addr line = alignDown(addr, params_.line_bytes);

    // Look for a stream near this line. Demand accesses are issued by
    // an out-of-order core, so matching tolerates a few lines of skew
    // around the expected next line.
    const Addr slack = static_cast<Addr>(params_.match_slack) *
                       params_.line_bytes;
    for (auto &s : streams_) {
        if (!s.valid)
            continue;
        const Addr lo = s.next_line > slack ? s.next_line - slack : 0;
        const Addr hi = s.next_line + slack;
        if (line < lo || line > hi)
            continue;
        s.lru = ++stamp_;
        if (line >= s.next_line)
            s.next_line = line + params_.line_bytes;
        if (s.confidence < params_.train_threshold) {
            ++s.confidence;
        }
        if (s.confidence >= params_.train_threshold) {
            // Armed: keep the prefetch edge 'degree' lines ahead.
            const Addr want_edge =
                line + static_cast<Addr>(params_.degree) *
                           params_.line_bytes;
            if (s.prefetch_edge < line)
                s.prefetch_edge = line;
            while (s.prefetch_edge < want_edge) {
                s.prefetch_edge += params_.line_bytes;
                issue(s.prefetch_edge);
                ++issued;
            }
        }
        return;
    }

    // No stream matched: allocate (replace LRU) a tentative stream.
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lru < victim->lru)
            victim = &s;
    }
    victim->valid = true;
    victim->next_line = line + params_.line_bytes;
    victim->confidence = 0;
    victim->prefetch_edge = line;
    victim->lru = ++stamp_;
    ++streamsAllocated;
}

} // namespace memsys
} // namespace srl
