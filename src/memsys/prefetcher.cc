#include "memsys/prefetcher.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace memsys
{

StreamPrefetcher::StreamPrefetcher(const PrefetcherParams &params)
    : params_(params), streams_(params.num_streams)
{
    fatal_if(!isPowerOf2(params_.line_bytes),
             "prefetcher line size must be a power of two");
}

void
StreamPrefetcher::allocateStream(Addr line)
{
    Stream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lru < victim->lru)
            victim = &s;
    }
    victim->valid = true;
    victim->next_line = line + params_.line_bytes;
    victim->confidence = 0;
    victim->prefetch_edge = line;
    victim->lru = ++stamp_;
    ++streamsAllocated;
}

void
StreamPrefetcher::serialize(bytes::ByteWriter &w) const
{
    w.u64(streams_.size());
    for (const Stream &s : streams_) {
        w.boolean(s.valid);
        w.u64(s.next_line);
        w.u32(s.confidence);
        w.u64(s.prefetch_edge);
        w.u64(s.lru);
    }
    w.u64(stamp_);
    w.u64(issued.value());
    w.u64(streamsAllocated.value());
}

void
StreamPrefetcher::deserialize(bytes::ByteReader &r)
{
    if (r.u64() != streams_.size())
        throw bytes::CodecError("prefetcher stream count mismatch");
    for (Stream &s : streams_) {
        s.valid = r.boolean();
        s.next_line = r.u64();
        s.confidence = r.u32();
        s.prefetch_edge = r.u64();
        s.lru = r.u64();
    }
    stamp_ = r.u64();
    issued.reset();
    issued += r.u64();
    streamsAllocated.reset();
    streamsAllocated += r.u64();
}

} // namespace memsys
} // namespace srl
