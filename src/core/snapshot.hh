/**
 * @file
 * Versioned on-disk simulator-state checkpoints: `srlsim-ckpt-v1`.
 *
 * A checkpoint captures everything a sampled run needs to resume at a
 * drained interval boundary: the run's identity (canonical config and
 * suite digests, seed, length, sampling plan), the resume cursor and
 * accumulated detailed-interval statistics, the persistent SimState
 * (memory image, caches, predictors, snoop RNG), and the workload
 * generator cursor. Restore-then-run from a checkpoint is
 * byte-identical to the uninterrupted sampled run — enforced by
 * tests/test_sampled.cc across the golden configurations.
 *
 * File layout (all integers little-endian):
 *
 *     "srlsim-ckpt-v1\n"   15-byte magic
 *     u32  version (1)
 *     u64  payload size in bytes
 *     u64  payload digest lo, u64 hi   (chash of the payload bytes)
 *     payload                          (context, meta, SimState,
 *                                       GeneratorState)
 *
 * Writes are atomic (temp file + rename, like service::ResultCache);
 * every validation failure — truncation, bad magic/version, digest
 * mismatch, context mismatch, trailing bytes — throws SnapshotError.
 * A corrupt checkpoint can therefore never restore silently wrong.
 *
 * The payload digest doubles as the fast-forward determinism hash:
 * two runs that reach the same boundary with identical state produce
 * identical digests (snapshotDigest computes it without touching disk).
 */

#ifndef SRLSIM_CORE_SNAPSHOT_HH
#define SRLSIM_CORE_SNAPSHOT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.hh"
#include "common/chash.hh"
#include "common/stats.hh"
#include "core/processor.hh"
#include "core/sim_state.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace srl
{
namespace core
{

/** Raised on any checkpoint I/O or validation failure. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Identity of the sampled run a checkpoint belongs to. The loader
 * hard-errors when any field disagrees, so a checkpoint can never be
 * restored into a differently configured simulation.
 */
struct SnapshotContext
{
    chash::Hash128 config_digest;
    chash::Hash128 suite_digest;
    std::uint64_t run_seed = 0;
    std::uint64_t total_uops = 0;
    std::uint64_t ff_uops = 0;
    std::uint64_t warm_uops = 0;
    std::uint64_t detail_uops = 0;
};

/** Build the context for (config, suite, length, seed, plan). */
SnapshotContext makeSnapshotContext(const ProcessorConfig &config,
                                    const workload::SuiteProfile &suite,
                                    std::uint64_t total_uops,
                                    std::uint64_t run_seed,
                                    std::uint64_t ff_uops,
                                    std::uint64_t warm_uops,
                                    std::uint64_t detail_uops);

/**
 * Resume cursor + accumulated aggregates. Statistics accumulated over
 * the detailed intervals run so far ride inside the checkpoint so a
 * restored shard's final aggregate record is byte-identical to the
 * straight-through run's.
 */
struct SnapshotMeta
{
    std::uint64_t consumed_uops = 0; ///< stream position (= next seq)
    std::uint64_t next_interval = 0; ///< detailed interval to run next
    std::uint64_t ff_done = 0;       ///< uops fast-forwarded (pure)
    std::uint64_t warm_done = 0;     ///< uops fast-forwarded warming
    std::uint64_t detail_done = 0;   ///< uops simulated in detail
    ProcessorStats stats;            ///< summed detailed-segment stats
    stats::Occupancy occupancy;      ///< merged SRL occupancy
};

/** Visit every ProcessorStats counter in canonical order. */
template <typename Stats, typename Fn>
void
visitStatsFields(Stats &s, Fn &&fn)
{
    fn(s.cycles);
    fn(s.committed_uops);
    fn(s.committed_loads);
    fn(s.committed_stores);
    fn(s.slice_uops);
    fn(s.poisoned_stores);
    fn(s.redone_stores);
    fn(s.srl_stalled_loads);
    fn(s.indexed_forwards);
    fn(s.mem_violations);
    fn(s.snoop_violations);
    fn(s.overflow_violations);
    fn(s.branch_mispredicts);
    fn(s.mem_misses);
    fn(s.fc_writebacks);
    fn(s.redo_phase_misses);
    fn(s.temp_update_stalls);
    fn(s.stall_ckpt);
    fn(s.stall_stq);
    fn(s.stall_lq);
    fn(s.stall_sdb);
    fn(s.stall_sched);
    fn(s.stall_rf);
    fn(s.miss_hot);
    fn(s.miss_warm);
    fn(s.miss_cold);
    fn(s.miss_stream);
    fn(s.drain_block_head);
    fn(s.drain_block_fence);
    fn(s.drain_block_line);
    fn(s.skipped_cycles);
}

/** a += b, field-wise. */
void accumulateStats(ProcessorStats &a, const ProcessorStats &b);

/**
 * Payload digest of the state (context + meta + sim + gen) without
 * writing a file — the fast-forward determinism hash.
 */
chash::Hash128 snapshotDigest(const SnapshotContext &ctx,
                              const SnapshotMeta &meta,
                              const SimState &sim,
                              const workload::GeneratorState &gen);

/**
 * Serialize (context, meta, sim, gen) into the `srlsim-ckpt-v1`
 * *payload* byte string — exactly the bytes that follow the file
 * header on disk, so an in-memory handoff and a persisted checkpoint
 * are the same encoding. @p recycled (possibly empty) is consumed as
 * the output buffer: its capacity is reused, so a pipelined producer
 * cycling buffers through a pool allocates nothing in steady state.
 */
std::string buildSnapshotPayload(const SnapshotContext &ctx,
                                 const SnapshotMeta &meta,
                                 const SimState &sim,
                                 const workload::GeneratorState &gen,
                                 std::string &&recycled = {});

/**
 * Atomically write an already-built payload to @p path under the
 * `srlsim-ckpt-v1` container (header + digest + payload).
 * @return payload digest. @throws SnapshotError on I/O failure.
 */
chash::Hash128 writeSnapshotPayload(const std::string &path,
                                    const std::string &payload);

/**
 * Atomically write a checkpoint to @p path. @return payload digest.
 * @throws SnapshotError on any I/O failure (ENOSPC included).
 */
chash::Hash128 saveSnapshot(const std::string &path,
                            const SnapshotContext &ctx,
                            const SnapshotMeta &meta,
                            const SimState &sim,
                            const workload::GeneratorState &gen);

struct LoadedSnapshot
{
    SnapshotMeta meta;
    workload::GeneratorState gen;
    chash::Hash128 digest; ///< payload digest of the loaded file
};

/**
 * Load, validate, and restore a checkpoint: @p sim is overwritten with
 * the stored state; the meta and generator cursor are returned.
 * @throws SnapshotError on any validation failure, including a context
 * mismatch with @p ctx. On throw, @p sim is unspecified.
 */
LoadedSnapshot loadSnapshot(const std::string &path,
                            const SnapshotContext &ctx, SimState &sim);

/**
 * Restore simulator state from an in-memory payload produced by
 * buildSnapshotPayload: @p sim is overwritten, the meta and generator
 * cursor are returned. Validates the embedded context against @p ctx
 * (and payload well-formedness) exactly like loadSnapshot, but skips
 * the container digest check — the bytes never left the process. The
 * returned digest field is zero.
 * @throws SnapshotError on context mismatch or malformed payload.
 */
LoadedSnapshot adoptSnapshotPayload(const std::string &payload,
                                    const SnapshotContext &ctx,
                                    SimState &sim);

/**
 * Canonical file name of the checkpoint at detailed-interval
 * boundary @p interval of the run @p ctx: "ckpt-<32 hex>.v1".
 * Pipelined-mode entry checkpoints (independent-interval semantics,
 * DESIGN.md §15) carry different state for the same (ctx, interval)
 * than chained-mode ones, so @p pipelined salts the name — the two
 * modes can share a directory without ever colliding.
 */
std::string snapshotFileName(const SnapshotContext &ctx,
                             std::uint64_t interval,
                             bool pipelined = false);

} // namespace core
} // namespace srl

#endif // SRLSIM_CORE_SNAPSHOT_HH
