#include "core/spec_mem.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace srl
{
namespace core
{

namespace
{

// SWAR helpers over the 16-bit writer-count lanes: a same-page store
// span of up to 8 bytes covers up to 16 bytes of counters, so the
// increment/decrement across the span batches into two word updates
// with no per-byte branches. Zero-lane detection is the classic
// carry-trick: (v - 1-per-lane) & ~v & msb-per-lane leaves the lane
// MSB set exactly for lanes that were zero.
constexpr std::uint64_t kLaneOnes = 0x0001000100010001ull;
constexpr std::uint64_t kLaneMsbs = 0x8000800080008000ull;

inline std::uint64_t
loadWord(const std::uint16_t *p)
{
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    return w;
}

inline void
storeWord(std::uint16_t *p, std::uint64_t w)
{
    std::memcpy(p, &w, 8);
}

/** MSB-per-lane set for lanes of @p w that are zero. */
inline std::uint64_t
zeroLanes(std::uint64_t w)
{
    return (w - kLaneOnes) & ~w & kLaneMsbs;
}

/** All-ones in the low @p n 16-bit lanes (n <= 4). */
inline std::uint64_t
laneMask(unsigned n)
{
    return n >= 4 ? ~0ull : (1ull << (16 * n)) - 1;
}

} // namespace

void
SpeculativeMemory::write(SeqNum seq, CheckpointId ckpt, Addr addr,
                         unsigned size, std::uint64_t data)
{
    panic_if(!log_.empty() && log_.back().seq >= seq,
             "speculative store drain out of program order "
             "(%llu after %llu)",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(log_.back().seq));
    LogEntry e{seq, ckpt, addr, size, data};
    log_.push_back(e);
    applyToOverlay(e);
}

SpeculativeMemory::OverlayPage &
SpeculativeMemory::touchPage(Addr addr)
{
    const Addr idx = addr >> kPageShift;
    const std::size_t slot = idx & (kPageCacheSlots - 1);
    if (cache_idx_[slot] == idx && cache_page_[slot])
        return *cache_page_[slot];
    auto &entry = overlay_[idx];
    if (!entry)
        entry = std::make_unique<OverlayPage>();
    cache_idx_[slot] = idx;
    cache_page_[slot] = entry.get();
    return *entry;
}

const SpeculativeMemory::OverlayPage *
SpeculativeMemory::findPage(Addr addr) const
{
    const Addr idx = addr >> kPageShift;
    const std::size_t slot = idx & (kPageCacheSlots - 1);
    if (cache_idx_[slot] == idx)
        return cache_page_[slot];
    const auto it = overlay_.find(idx);
    cache_idx_[slot] = idx;
    cache_page_[slot] = it == overlay_.end() ? nullptr : it->second.get();
    return cache_page_[slot];
}

void
SpeculativeMemory::applyToOverlay(const LogEntry &e)
{
    const std::size_t off = e.addr & (kPageBytes - 1);
    if (off + 8 <= kPageBytes) {
        // Whole (sub-)word span within one page — the overwhelmingly
        // common case. Value bytes land with one copy (the low e.size
        // bytes of the little-endian data are exactly the stored
        // bytes), and the writer counts batch into two lane-wise word
        // increments.
        OverlayPage &page = touchPage(e.addr);
        std::memcpy(page.value.data() + off, &e.data, e.size);

        std::uint16_t *w = page.writers.data() + off;
        const unsigned lo = e.size < 4 ? e.size : 4;
        const std::uint64_t m0 = laneMask(lo);
        std::uint64_t w0 = loadWord(w);
        panic_if(zeroLanes(~w0) & m0, "overlay writer count overflow");
        overlay_bytes_ += static_cast<std::size_t>(
            std::popcount(zeroLanes(w0) & m0));
        storeWord(w, w0 + (kLaneOnes & m0));
        if (e.size > 4) {
            const std::uint64_t m1 = laneMask(e.size - 4);
            std::uint64_t w1 = loadWord(w + 4);
            panic_if(zeroLanes(~w1) & m1,
                     "overlay writer count overflow");
            overlay_bytes_ += static_cast<std::size_t>(
                std::popcount(zeroLanes(w1) & m1));
            storeWord(w + 4, w1 + (kLaneOnes & m1));
        }
        return;
    }
    for (unsigned i = 0; i < e.size; ++i) {
        const Addr a = e.addr + i;
        OverlayPage &page = touchPage(a);
        const std::size_t o = a & (kPageBytes - 1);
        page.value[o] = static_cast<std::uint8_t>(e.data >> (8 * i));
        if (page.writers[o]++ == 0)
            ++overlay_bytes_;
    }
}

std::uint64_t
SpeculativeMemory::read(Addr addr, unsigned size) const
{
    // Read the committed image once for the whole span, then patch in
    // any overlay bytes (equivalent to the per-byte overlay-first read,
    // since overlay bytes simply shadow committed ones).
    std::uint64_t value = mem_.read(addr, size);
    if (overlay_bytes_ == 0)
        return value;
    if (((addr + size - 1) >> kPageShift) == (addr >> kPageShift)) {
        // Whole load within one page: one lookup covers the span.
        const OverlayPage *page = findPage(addr);
        if (!page)
            return value;
        const std::size_t off = addr & (kPageBytes - 1);
        for (unsigned i = 0; i < size; ++i) {
            if (page->writers[off + i] == 0)
                continue;
            value &= ~(static_cast<std::uint64_t>(0xff) << (8 * i));
            value |= static_cast<std::uint64_t>(page->value[off + i])
                     << (8 * i);
        }
        return value;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        const OverlayPage *page = findPage(a);
        if (!page)
            continue;
        const std::size_t off = a & (kPageBytes - 1);
        if (page->writers[off] == 0)
            continue;
        value &= ~(static_cast<std::uint64_t>(0xff) << (8 * i));
        value |= static_cast<std::uint64_t>(page->value[off]) << (8 * i);
    }
    return value;
}

void
SpeculativeMemory::commitCheckpoint(CheckpointId ckpt)
{
    while (!log_.empty() && log_.front().ckpt == ckpt) {
        const LogEntry &e = log_.front();
        mem_.write(e.addr, e.size, e.data);
        const std::size_t off = e.addr & (kPageBytes - 1);
        if (off + 8 <= kPageBytes) {
            // Mirror of applyToOverlay: lane-wise batched decrement.
            OverlayPage &page = touchPage(e.addr);
            std::uint16_t *w = page.writers.data() + off;
            const unsigned lo = e.size < 4 ? e.size : 4;
            const std::uint64_t m0 = laneMask(lo);
            std::uint64_t w0 = loadWord(w);
            panic_if(zeroLanes(w0) & m0,
                     "overlay byte missing at commit");
            w0 -= kLaneOnes & m0;
            overlay_bytes_ -= static_cast<std::size_t>(
                std::popcount(zeroLanes(w0) & m0));
            storeWord(w, w0);
            if (e.size > 4) {
                const std::uint64_t m1 = laneMask(e.size - 4);
                std::uint64_t w1 = loadWord(w + 4);
                panic_if(zeroLanes(w1) & m1,
                         "overlay byte missing at commit");
                w1 -= kLaneOnes & m1;
                overlay_bytes_ -= static_cast<std::size_t>(
                    std::popcount(zeroLanes(w1) & m1));
                storeWord(w + 4, w1);
            }
            // Fully-quiesced pages stay allocated for reuse; a
            // rollback's rebuild drops them wholesale.
        } else {
            for (unsigned i = 0; i < e.size; ++i) {
                const Addr a = e.addr + i;
                OverlayPage &page = touchPage(a);
                const std::size_t o = a & (kPageBytes - 1);
                panic_if(page.writers[o] == 0,
                         "overlay byte missing at commit");
                if (--page.writers[o] == 0)
                    --overlay_bytes_;
            }
        }
        log_.pop_front();
    }
    // Sanity: no entry of this checkpoint may remain deeper in the log
    // (drains are program-ordered, so a checkpoint's stores are always
    // a prefix at its commit). The scan is O(pending stores) per commit
    // — debug builds only.
#ifndef NDEBUG
    for (const auto &e : log_) {
        panic_if(e.ckpt == ckpt,
                 "committed checkpoint %u still has buried drained "
                 "stores", ckpt);
    }
#endif
}

void
SpeculativeMemory::rollback(SeqNum first_squashed_seq)
{
    bool removed = false;
    while (!log_.empty() && log_.back().seq >= first_squashed_seq) {
        log_.pop_back();
        removed = true;
    }
    if (removed)
        rebuildOverlay();
}

void
SpeculativeMemory::rebuildOverlay()
{
    overlay_.clear();
    overlay_bytes_ = 0;
    cache_idx_.fill(~static_cast<Addr>(0));
    cache_page_.fill(nullptr);
    for (const auto &e : log_)
        applyToOverlay(e);
}

} // namespace core
} // namespace srl
