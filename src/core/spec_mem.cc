#include "core/spec_mem.hh"

#include "common/logging.hh"

namespace srl
{
namespace core
{

void
SpeculativeMemory::write(SeqNum seq, CheckpointId ckpt, Addr addr,
                         unsigned size, std::uint64_t data)
{
    panic_if(!log_.empty() && log_.back().seq >= seq,
             "speculative store drain out of program order "
             "(%llu after %llu)",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(log_.back().seq));
    LogEntry e{seq, ckpt, addr, size, data};
    log_.push_back(e);
    applyToOverlay(e);
}

void
SpeculativeMemory::applyToOverlay(const LogEntry &e)
{
    for (unsigned i = 0; i < e.size; ++i) {
        OverlayByte &b = overlay_[e.addr + i];
        b.value = static_cast<std::uint8_t>(e.data >> (8 * i));
        ++b.writers;
    }
}

std::uint64_t
SpeculativeMemory::read(Addr addr, unsigned size) const
{
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        const auto it = overlay_.find(addr + i);
        const std::uint8_t byte =
            it != overlay_.end()
                ? it->second.value
                : static_cast<std::uint8_t>(mem_.read(addr + i, 1));
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
SpeculativeMemory::commitCheckpoint(CheckpointId ckpt)
{
    while (!log_.empty() && log_.front().ckpt == ckpt) {
        const LogEntry &e = log_.front();
        mem_.write(e.addr, e.size, e.data);
        for (unsigned i = 0; i < e.size; ++i) {
            const auto it = overlay_.find(e.addr + i);
            panic_if(it == overlay_.end(),
                     "overlay byte missing at commit");
            if (--it->second.writers == 0)
                overlay_.erase(it);
        }
        log_.pop_front();
    }
    // Sanity: no entry of this checkpoint may remain deeper in the log
    // (drains are program-ordered, so a checkpoint's stores are always
    // a prefix at its commit).
    for (const auto &e : log_) {
        panic_if(e.ckpt == ckpt,
                 "committed checkpoint %u still has buried drained "
                 "stores", ckpt);
    }
}

void
SpeculativeMemory::rollback(SeqNum first_squashed_seq)
{
    bool removed = false;
    while (!log_.empty() && log_.back().seq >= first_squashed_seq) {
        log_.pop_back();
        removed = true;
    }
    if (removed)
        rebuildOverlay();
}

void
SpeculativeMemory::rebuildOverlay()
{
    overlay_.clear();
    for (const auto &e : log_)
        applyToOverlay(e);
}

} // namespace core
} // namespace srl
