#include "core/spec_mem.hh"

#include "common/logging.hh"

namespace srl
{
namespace core
{

void
SpeculativeMemory::write(SeqNum seq, CheckpointId ckpt, Addr addr,
                         unsigned size, std::uint64_t data)
{
    panic_if(!log_.empty() && log_.back().seq >= seq,
             "speculative store drain out of program order "
             "(%llu after %llu)",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(log_.back().seq));
    LogEntry e{seq, ckpt, addr, size, data};
    log_.push_back(e);
    applyToOverlay(e);
}

SpeculativeMemory::OverlayPage &
SpeculativeMemory::touchPage(Addr addr)
{
    const Addr idx = addr >> kPageShift;
    if (idx == last_idx_ && last_page_)
        return *last_page_;
    auto &slot = overlay_[idx];
    if (!slot)
        slot = std::make_unique<OverlayPage>();
    last_idx_ = idx;
    last_page_ = slot.get();
    return *slot;
}

const SpeculativeMemory::OverlayPage *
SpeculativeMemory::findPage(Addr addr) const
{
    const Addr idx = addr >> kPageShift;
    if (idx == last_idx_)
        return last_page_;
    const auto it = overlay_.find(idx);
    last_idx_ = idx;
    last_page_ = it == overlay_.end() ? nullptr : it->second.get();
    return last_page_;
}

void
SpeculativeMemory::applyToOverlay(const LogEntry &e)
{
    for (unsigned i = 0; i < e.size; ++i) {
        const Addr a = e.addr + i;
        OverlayPage &page = touchPage(a);
        const std::size_t off = a & (kPageBytes - 1);
        page.value[off] = static_cast<std::uint8_t>(e.data >> (8 * i));
        if (page.writers[off]++ == 0)
            ++overlay_bytes_;
    }
}

std::uint64_t
SpeculativeMemory::read(Addr addr, unsigned size) const
{
    // Read the committed image once for the whole span, then patch in
    // any overlay bytes (equivalent to the per-byte overlay-first read,
    // since overlay bytes simply shadow committed ones).
    std::uint64_t value = mem_.read(addr, size);
    if (overlay_bytes_ == 0)
        return value;
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        const OverlayPage *page = findPage(a);
        if (!page)
            continue;
        const std::size_t off = a & (kPageBytes - 1);
        if (page->writers[off] == 0)
            continue;
        value &= ~(static_cast<std::uint64_t>(0xff) << (8 * i));
        value |= static_cast<std::uint64_t>(page->value[off]) << (8 * i);
    }
    return value;
}

void
SpeculativeMemory::commitCheckpoint(CheckpointId ckpt)
{
    while (!log_.empty() && log_.front().ckpt == ckpt) {
        const LogEntry &e = log_.front();
        mem_.write(e.addr, e.size, e.data);
        for (unsigned i = 0; i < e.size; ++i) {
            const Addr a = e.addr + i;
            OverlayPage &page = touchPage(a);
            const std::size_t off = a & (kPageBytes - 1);
            panic_if(page.writers[off] == 0,
                     "overlay byte missing at commit");
            if (--page.writers[off] == 0)
                --overlay_bytes_;
            // Fully-quiesced pages stay allocated for reuse; a
            // rollback's rebuild drops them wholesale.
        }
        log_.pop_front();
    }
    // Sanity: no entry of this checkpoint may remain deeper in the log
    // (drains are program-ordered, so a checkpoint's stores are always
    // a prefix at its commit). The scan is O(pending stores) per commit
    // — debug builds only.
#ifndef NDEBUG
    for (const auto &e : log_) {
        panic_if(e.ckpt == ckpt,
                 "committed checkpoint %u still has buried drained "
                 "stores", ckpt);
    }
#endif
}

void
SpeculativeMemory::rollback(SeqNum first_squashed_seq)
{
    bool removed = false;
    while (!log_.empty() && log_.back().seq >= first_squashed_seq) {
        log_.pop_back();
        removed = true;
    }
    if (removed)
        rebuildOverlay();
}

void
SpeculativeMemory::rebuildOverlay()
{
    overlay_.clear();
    overlay_bytes_ = 0;
    last_idx_ = ~static_cast<Addr>(0);
    last_page_ = nullptr;
    for (const auto &e : log_)
        applyToOverlay(e);
}

} // namespace core
} // namespace srl
