#include "core/snapshot.hh"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>

namespace srl
{
namespace core
{

namespace
{

constexpr char kMagic[] = "srlsim-ckpt-v1\n"; // 15 bytes + NUL
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;
constexpr std::uint32_t kCkptVersion = 1;

void
serializeContext(bytes::ByteWriter &w, const SnapshotContext &ctx)
{
    w.u64(ctx.config_digest.lo);
    w.u64(ctx.config_digest.hi);
    w.u64(ctx.suite_digest.lo);
    w.u64(ctx.suite_digest.hi);
    w.u64(ctx.run_seed);
    w.u64(ctx.total_uops);
    w.u64(ctx.ff_uops);
    w.u64(ctx.warm_uops);
    w.u64(ctx.detail_uops);
}

SnapshotContext
deserializeContext(bytes::ByteReader &r)
{
    SnapshotContext ctx;
    ctx.config_digest.lo = r.u64();
    ctx.config_digest.hi = r.u64();
    ctx.suite_digest.lo = r.u64();
    ctx.suite_digest.hi = r.u64();
    ctx.run_seed = r.u64();
    ctx.total_uops = r.u64();
    ctx.ff_uops = r.u64();
    ctx.warm_uops = r.u64();
    ctx.detail_uops = r.u64();
    return ctx;
}

bool
sameContext(const SnapshotContext &a, const SnapshotContext &b)
{
    return a.config_digest.lo == b.config_digest.lo &&
           a.config_digest.hi == b.config_digest.hi &&
           a.suite_digest.lo == b.suite_digest.lo &&
           a.suite_digest.hi == b.suite_digest.hi &&
           a.run_seed == b.run_seed && a.total_uops == b.total_uops &&
           a.ff_uops == b.ff_uops && a.warm_uops == b.warm_uops &&
           a.detail_uops == b.detail_uops;
}

void
serializeMeta(bytes::ByteWriter &w, const SnapshotMeta &meta)
{
    w.u64(meta.consumed_uops);
    w.u64(meta.next_interval);
    w.u64(meta.ff_done);
    w.u64(meta.warm_done);
    w.u64(meta.detail_done);
    visitStatsFields(meta.stats,
                     [&w](const std::uint64_t &v) { w.u64(v); });
    const auto &occ = meta.occupancy.cyclesAt();
    w.u64(occ.size());
    for (const auto &[entries, cycles] : occ) {
        w.u64(entries);
        w.u64(cycles);
    }
}

SnapshotMeta
deserializeMeta(bytes::ByteReader &r)
{
    SnapshotMeta meta;
    meta.consumed_uops = r.u64();
    meta.next_interval = r.u64();
    meta.ff_done = r.u64();
    meta.warm_done = r.u64();
    meta.detail_done = r.u64();
    visitStatsFields(meta.stats,
                     [&r](std::uint64_t &v) { v = r.u64(); });
    const std::uint64_t buckets = r.u64();
    for (std::uint64_t i = 0; i < buckets; ++i) {
        const std::uint64_t entries = r.u64();
        const std::uint64_t cycles = r.u64();
        meta.occupancy.observe(entries, cycles);
    }
    return meta;
}

/**
 * Decode and validate a checkpoint payload (context check, state
 * restore, trailing-bytes check). @p what names the source in error
 * messages. The digest field of the result is left zero.
 */
LoadedSnapshot
parsePayload(const char *payload, std::size_t payload_size,
             const SnapshotContext &ctx, SimState &sim,
             const std::string &what)
{
    try {
        bytes::ByteReader r(payload, payload_size);
        const SnapshotContext stored = deserializeContext(r);
        if (!sameContext(stored, ctx))
            throw SnapshotError(
                "snapshot: context mismatch in " + what +
                " (different config/suite/seed/plan)");
        LoadedSnapshot out;
        out.meta = deserializeMeta(r);
        sim.deserialize(r);
        out.gen.deserialize(r);
        r.expectEnd();
        return out;
    } catch (const bytes::CodecError &e) {
        throw SnapshotError("snapshot: malformed payload in " + what +
                            ": " + e.what());
    }
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool ok = !std::ferror(f);
    std::fclose(f);
    return ok;
}

} // namespace

SnapshotContext
makeSnapshotContext(const ProcessorConfig &config,
                    const workload::SuiteProfile &suite,
                    std::uint64_t total_uops, std::uint64_t run_seed,
                    std::uint64_t ff_uops, std::uint64_t warm_uops,
                    std::uint64_t detail_uops)
{
    SnapshotContext ctx;
    ctx.config_digest =
        chash::hashString(chash::serializeConfig(config));
    ctx.suite_digest = chash::hashString(chash::serializeSuite(suite));
    ctx.run_seed = run_seed;
    ctx.total_uops = total_uops;
    ctx.ff_uops = ff_uops;
    ctx.warm_uops = warm_uops;
    ctx.detail_uops = detail_uops;
    return ctx;
}

void
accumulateStats(ProcessorStats &a, const ProcessorStats &b)
{
    std::array<std::uint64_t, 31> src{};
    std::size_t n = 0;
    visitStatsFields(b, [&](const std::uint64_t &v) { src[n++] = v; });
    std::size_t i = 0;
    visitStatsFields(a, [&](std::uint64_t &v) { v += src[i++]; });
}

std::string
buildSnapshotPayload(const SnapshotContext &ctx,
                     const SnapshotMeta &meta, const SimState &sim,
                     const workload::GeneratorState &gen,
                     std::string &&recycled)
{
    bytes::ByteWriter w(std::move(recycled));
    serializeContext(w, ctx);
    serializeMeta(w, meta);
    sim.serialize(w);
    gen.serialize(w);
    return w.take();
}

chash::Hash128
snapshotDigest(const SnapshotContext &ctx, const SnapshotMeta &meta,
               const SimState &sim, const workload::GeneratorState &gen)
{
    const std::string payload =
        buildSnapshotPayload(ctx, meta, sim, gen);
    return chash::hashBytes(payload.data(), payload.size());
}

chash::Hash128
writeSnapshotPayload(const std::string &path,
                     const std::string &payload)
{
    const chash::Hash128 digest =
        chash::hashBytes(payload.data(), payload.size());

    bytes::ByteWriter w;
    w.raw(kMagic, kMagicLen);
    w.u32(kCkptVersion);
    w.u64(payload.size());
    w.u64(digest.lo);
    w.u64(digest.hi);
    w.raw(payload.data(), payload.size());
    const std::string &blob = w.data();

    // Atomic publish: temp file + rename (service::ResultCache idiom)
    // so an interrupted or failed write never leaves a partial file
    // under the final name.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw SnapshotError("snapshot: cannot create " + tmp);
    bool ok =
        std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw SnapshotError("snapshot: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("snapshot: cannot rename into " + path);
    }
    return digest;
}

chash::Hash128
saveSnapshot(const std::string &path, const SnapshotContext &ctx,
             const SnapshotMeta &meta, const SimState &sim,
             const workload::GeneratorState &gen)
{
    return writeSnapshotPayload(
        path, buildSnapshotPayload(ctx, meta, sim, gen));
}

LoadedSnapshot
loadSnapshot(const std::string &path, const SnapshotContext &ctx,
             SimState &sim)
{
    std::string blob;
    if (!readWholeFile(path, blob))
        throw SnapshotError("snapshot: cannot read " + path);

    constexpr std::size_t kHeaderSize =
        kMagicLen + sizeof(std::uint32_t) + 3 * sizeof(std::uint64_t);
    if (blob.size() < kHeaderSize)
        throw SnapshotError("snapshot: truncated header in " + path);
    if (std::memcmp(blob.data(), kMagic, kMagicLen) != 0)
        throw SnapshotError("snapshot: bad magic in " + path);

    bytes::ByteReader hdr(blob.data() + kMagicLen,
                          kHeaderSize - kMagicLen);
    const std::uint32_t version = hdr.u32();
    if (version != kCkptVersion)
        throw SnapshotError("snapshot: unsupported version " +
                            std::to_string(version) + " in " + path);
    const std::uint64_t payload_size = hdr.u64();
    chash::Hash128 digest;
    digest.lo = hdr.u64();
    digest.hi = hdr.u64();
    if (blob.size() - kHeaderSize != payload_size)
        throw SnapshotError("snapshot: payload size mismatch in " +
                            path);

    const char *payload = blob.data() + kHeaderSize;
    const chash::Hash128 actual =
        chash::hashBytes(payload, payload_size);
    if (actual.lo != digest.lo || actual.hi != digest.hi)
        throw SnapshotError("snapshot: payload digest mismatch in " +
                            path + " (corrupt file)");

    LoadedSnapshot out = parsePayload(payload, payload_size, ctx, sim, path);
    out.digest = digest;
    return out;
}

LoadedSnapshot
adoptSnapshotPayload(const std::string &payload,
                     const SnapshotContext &ctx, SimState &sim)
{
    return parsePayload(payload.data(), payload.size(), ctx, sim,
                        "<in-memory payload>");
}

std::string
snapshotFileName(const SnapshotContext &ctx, std::uint64_t interval,
                 bool pipelined)
{
    bytes::ByteWriter w;
    w.str(pipelined ? "srlsim-ckpt-name-v1-pipelined"
                    : "srlsim-ckpt-name-v1");
    serializeContext(w, ctx);
    w.u64(interval);
    const std::string &b = w.data();
    return "ckpt-" + chash::hashBytes(b.data(), b.size()).toHex() +
           ".v1";
}

} // namespace core
} // namespace srl
