/**
 * @file
 * Speculative memory overlay.
 *
 * Stores drain to the cache *speculatively* (before their checkpoint
 * commits) in this machine, exactly as the paper's checkpointed L1 data
 * cache does. The architectural image (memsys::MainMemory) must only
 * ever hold committed data, so drained-but-uncommitted store values
 * live in this overlay:
 *
 *  - drains append to a program-ordered log and update a byte-granular
 *    overlay map (in-order overwrite is safe because the drain
 *    discipline is strictly program order);
 *  - loads read overlay bytes first, falling back to main memory
 *    (a drained store is always program-order-older than any
 *    still-incomplete load, thanks to the WAR order fence, so this is
 *    always the correct view);
 *  - committing a checkpoint applies its (prefix of the) log to main
 *    memory; a rollback truncates the log suffix and rebuilds the
 *    overlay — the modeled-hardware analogue is the bulk clear of
 *    speculatively-valid cache lines.
 */

#ifndef SRLSIM_CORE_SPEC_MEM_HH
#define SRLSIM_CORE_SPEC_MEM_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/types.hh"
#include "memsys/main_memory.hh"

namespace srl
{
namespace core
{

class SpeculativeMemory
{
  public:
    explicit SpeculativeMemory(memsys::MainMemory &mem) : mem_(mem)
    {
        cache_idx_.fill(~static_cast<Addr>(0));
        cache_page_.fill(nullptr);
    }

    /** A store drains (program order). */
    void write(SeqNum seq, CheckpointId ckpt, Addr addr, unsigned size,
               std::uint64_t data);

    /** Load view: overlay bytes over the committed image. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /**
     * Commit checkpoint @p ckpt: its drained stores must form the log
     * prefix (drains are program-ordered); apply them to main memory.
     */
    void commitCheckpoint(CheckpointId ckpt);

    /** Discard drained stores with seq >= @p first_squashed_seq. */
    void rollback(SeqNum first_squashed_seq);

    std::size_t pendingStores() const { return log_.size(); }

  private:
    struct LogEntry
    {
        SeqNum seq;
        CheckpointId ckpt;
        Addr addr;
        unsigned size;
        std::uint64_t data;
    };

    /**
     * Overlay shadow page: per-byte value and writer count (writers ==
     * 0 means the byte is not overlaid). Page-granular arrays replace
     * a per-byte hash map so drain/commit/read touch bytes with plain
     * indexing — the hash cost is paid once per page, and a one-entry
     * page cache absorbs the typical access locality.
     */
    static constexpr unsigned kPageShift = 12;
    static constexpr std::size_t kPageBytes = 1ull << kPageShift;

    struct OverlayPage
    {
        std::array<std::uint8_t, kPageBytes> value{};
        /** Per-byte pending-writer count; 16-bit lanes so a span's
         * counters batch into whole-word SWAR updates (the count is
         * bounded by in-flight stores, far below 65535). */
        std::array<std::uint16_t, kPageBytes> writers{};
    };

    OverlayPage &touchPage(Addr addr);
    const OverlayPage *findPage(Addr addr) const;

    void applyToOverlay(const LogEntry &e);
    void rebuildOverlay();

    memsys::MainMemory &mem_;
    std::deque<LogEntry> log_; ///< program order, oldest first
    std::unordered_map<Addr, std::unique_ptr<OverlayPage>> overlay_;
    std::size_t overlay_bytes_ = 0; ///< total bytes with writers > 0

    /** Direct-mapped page-pointer cache over overlay_: redo-mode
     * drains/loads alternate between a handful of pages, which a
     * one-entry cache thrashes on. Caches negative lookups too
     * (nullptr); touchPage refreshes the slot on insertion and
     * rebuildOverlay resets the table. */
    static constexpr std::size_t kPageCacheSlots = 64;
    mutable std::array<Addr, kPageCacheSlots> cache_idx_;
    mutable std::array<OverlayPage *, kPageCacheSlots> cache_page_;
};

} // namespace core
} // namespace srl

#endif // SRLSIM_CORE_SPEC_MEM_HH
