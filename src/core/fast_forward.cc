#include "core/fast_forward.hh"

namespace srl
{
namespace core
{

void
FastForwardEngine::retireOldestStore()
{
    sim_.store_sets.storeRetired(ring_[ring_head_]);
    ring_head_ = (ring_head_ + 1) % kRingSize;
    --ring_count_;
}

std::uint64_t
FastForwardEngine::run(isa::UopStream &stream, std::uint64_t n,
                       bool warm)
{
    std::uint64_t consumed = 0;
    isa::Uop u;
    while (consumed < n && stream.next(u)) {
        ++consumed;
        if (u.isStore()) {
            sim_.mem.write(u.effAddr, u.memSize, u.storeData);
            if (warm) {
                sim_.hier.warmStore(u.effAddr);
                sim_.store_sets.storeFetched(u.pc, u.seq);
                if (ring_count_ == kRingSize)
                    retireOldestStore();
                ring_[(ring_head_ + ring_count_) % kRingSize] = u.seq;
                ++ring_count_;
            }
        } else if (u.isLoad()) {
            if (warm) {
                sim_.hier.warmLoad(u.effAddr);
                (void)sim_.store_sets.predict(u.pc);
            }
        } else if (u.isBranch() && warm) {
            // predict-then-update mirrors the detailed fetch stage and
            // keeps the hybrid's last-prediction latches coherent.
            (void)sim_.bpred.predict(u.pc);
            sim_.bpred.update(u.pc, u.taken);
        }
    }
    while (ring_count_ > 0)
        retireOldestStore();
    return consumed;
}

} // namespace core
} // namespace srl
