/**
 * @file
 * Full processor configuration. Defaults encode Table 1 of the paper:
 * 8 GHz, 4-wide allocate / 6-wide issue, 64+64+32 scheduling windows,
 * 8 map-table checkpoints, 192+192 registers, 48-entry store buffer,
 * 1K-entry load buffer, store-sets dependence prediction, P4-equivalent
 * functional units, gshare-perceptron hybrid branch prediction, stream
 * prefetcher, 32 KB/3-cycle L1D, 1 MB/8-cycle L2, 100 ns memory.
 *
 * StqModel selects the store-queue organization under evaluation — the
 * experiment axis of Figures 2, 6, 8, 9, 10.
 */

#ifndef SRLSIM_CORE_CONFIG_HH
#define SRLSIM_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "cfp/checkpoint.hh"
#include "cfp/sdb.hh"
#include "lsq/fwd_cache.hh"
#include "lsq/lcf.hh"
#include "lsq/load_buffer.hh"
#include "lsq/load_queue.hh"
#include "lsq/srl.hh"
#include "lsq/store_queue.hh"
#include "memsys/hierarchy.hh"
#include "predictor/store_sets.hh"

namespace srl
{
namespace core
{

/** Store-queue organizations under evaluation. */
enum class StqModel : std::uint8_t
{
    /**
     * A single CAM store queue of configurable size and latency. With
     * the defaults (48 entries / 3 cycles) this is the speedup
     * denominator; 128..1024 entries give the Figure 2 sweep; 1024
     * entries at 3 cycles is the "ideal STQ" of Figure 6.
     */
    kMonolithic,
    /**
     * Hierarchical two-level store queue [Akkary et al. 2003]:
     * 48-entry/3-cycle L1 STQ, 1K-entry/8-cycle CAM L2 STQ, and a
     * Membership Test Buffer filtering L2 lookups (Figure 6 baseline).
     */
    kHierarchical,
    /**
     * The paper's proposal: 48-entry L1 STQ + Store Redo Log + Loose
     * Check Filter + forwarding cache + set-associative secondary load
     * buffer (Figures 6-10).
     */
    kSrl,
};

/** SRL-model options (the Figures 8/9/10 ablation axes). */
struct SrlOptions
{
    lsq::SrlParams srl{1024};
    bool use_lcf = true;
    lsq::LcfParams lcf{2048, 6, lsq::HashScheme::kThreePieceXor};
    bool indexed_forwarding = true;
    /**
     * true: temporary updates go to the separate forwarding cache;
     * false: temporary updates go to the L1 data cache (Figure 10's
     * alternative), paying dirty-writebacks before updates, extra
     * redo-phase misses after discard, and single-version stalls.
     */
    bool use_fwd_cache = true;
    /**
     * Paper-faithful drain gating (Section 4.1/4.3): while a memory
     * miss is outstanding the SRL only accumulates; its cache
     * re-updates happen during store-redo mode ("when the miss data
     * returns") or once no miss is pending. false drains the head
     * opportunistically whenever its WAR fence allows.
     */
    bool drain_only_in_redo = true;
    lsq::FwdCacheParams fwd_cache{256, 4};
};

struct ProcessorConfig
{
    std::string name = "cfp";

    // Pipeline widths (Table 1: rename/issue/retire 4/6/4).
    unsigned alloc_width = 4;
    unsigned issue_width = 6;

    // Branch handling.
    unsigned branch_mispredict_penalty = 20; ///< minimum, cycles

    // Scheduling windows (Table 1).
    unsigned sched_int = 64;
    unsigned sched_fp = 64;
    unsigned sched_mem = 32;

    // Register file (Table 1).
    unsigned regs_int = 192;
    unsigned regs_fp = 192;

    // Functional units (P4-equivalent).
    unsigned fu_int_alu = 3;
    unsigned fu_int_mul = 1;
    unsigned fu_fp = 2;
    unsigned load_ports = 2;
    unsigned store_ports = 1;

    cfp::CheckpointParams checkpoints{};
    cfp::SdbParams sdb{};

    // Store-queue organization under test.
    StqModel model = StqModel::kMonolithic;

    /** The primary (or only) store queue. */
    lsq::StoreQueueParams stq{"l1stq", 48, 3};

    /** Hierarchical model: the L2 STQ and its membership filter. */
    lsq::StoreQueueParams l2_stq{"l2stq", 1024, 8};
    unsigned mtb_entries = 1024;

    /** SRL model options. */
    SrlOptions srl{};

    /** Conventional (CAM) load queue, non-SRL models. */
    lsq::LoadQueueParams load_queue{1024};

    /** Secondary load buffer, SRL model. */
    lsq::LoadBufferParams load_buffer{1024, 8,
                                      lsq::OverflowPolicy::kVictimBuffer,
                                      32};

    predictor::StoreSetsParams store_sets{};
    memsys::HierarchyParams memory{};

    /**
     * Multiprocessor traffic model: mean external store snoops per
     * cycle (0 disables). Snoops target random hot-region words with
     * fresh values and exercise the load-tracking structures'
     * multiprocessor-ordering path (Section 3).
     */
    double snoop_rate = 0.0;
    std::uint64_t snoop_seed = 0x5eed;

    /** Deadlock watchdog: panic after this many commit-free cycles. */
    std::uint64_t watchdog_cycles = 1'000'000;

    /**
     * Event-driven quiescence skipping: when a tick makes no forward
     * progress (deep in a miss shadow with every structure stalled),
     * jump the clock to the next scheduled wakeup instead of ticking
     * idle cycles one by one. Cycle-exact by construction — per-cycle
     * stall-attribution counters are replayed for the skipped span —
     * and verified byte-identical by tests/test_skip_ahead.cc. Runs
     * with a per-cycle sampler or a nonzero snoop_rate never skip
     * regardless of this flag.
     */
    bool skip_ahead = true;

    /**
     * Drive issue selection with the legacy full scheduler scan
     * instead of the dependence-driven ready queues. Only honored in
     * SRLSIM_ISSUE_SCAN_CHECK builds (which carry both stages for the
     * scan-vs-wakeup equivalence tests); ignored otherwise.
     */
    bool issue_scan = false;
};

/** The Figure 6 named configurations. */
ProcessorConfig baselineConfig();            ///< 48-entry STQ only
ProcessorConfig monolithicConfig(unsigned entries); ///< Fig. 2 sweep
ProcessorConfig idealConfig();               ///< 1K-entry, 3-cycle STQ
ProcessorConfig hierarchicalConfig();        ///< L1+L2+MTB
ProcessorConfig srlConfig();                 ///< SRL+LCF+FC

} // namespace core
} // namespace srl

#endif // SRLSIM_CORE_CONFIG_HH
