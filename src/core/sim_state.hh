/**
 * @file
 * The simulator state that persists across sampled-run segments: the
 * architectural memory image, the cache hierarchy (tags/LRU/dirty and
 * prefetcher), the branch and memory-dependence predictors, and the
 * external-snoop RNG cursor.
 *
 * A sampled run (runner/sampled.hh) interleaves fast-forward spans
 * (FastForwardEngine mutates this state directly) with detailed
 * intervals (a fresh Processor adopts this state for the segment and
 * exports the snoop cursor back). Everything here — and only what is
 * here plus the workload GeneratorState — crosses segment boundaries;
 * pipeline structures (window, STQ/SRL, scheduler, events) are
 * per-segment and provably empty at every boundary because a segment
 * only ends once the machine drains. Checkpoint files (core/snapshot)
 * serialize exactly this struct plus the generator cursor.
 */

#ifndef SRLSIM_CORE_SIM_STATE_HH
#define SRLSIM_CORE_SIM_STATE_HH

#include <cstdint>

#include "common/bytes.hh"
#include "common/random.hh"
#include "core/config.hh"
#include "memsys/hierarchy.hh"
#include "memsys/main_memory.hh"
#include "predictor/branch.hh"
#include "predictor/store_sets.hh"

namespace srl
{
namespace core
{

struct SimState
{
    explicit SimState(const ProcessorConfig &cfg)
        : hier(cfg.memory, mem), store_sets(cfg.store_sets),
          snoop_rng_state(Random(cfg.snoop_seed).rawState())
    {
    }

    SimState(const SimState &) = delete;
    SimState &operator=(const SimState &) = delete;

    memsys::MainMemory mem;
    memsys::Hierarchy hier;
    predictor::HybridPredictor bpred;
    predictor::StoreSets store_sets;

    /** Raw PCG cursor of the external snoop source (config.snoop_seed
     * stream), carried across detailed segments so snoop traffic
     * continues instead of restarting. */
    std::uint64_t snoop_rng_state = 0;

    /** Monotonic payload counter of injected snoops. */
    std::uint64_t snoop_payload = 0;

    void
    serialize(bytes::ByteWriter &w) const
    {
        mem.serialize(w);
        hier.serialize(w);
        bpred.serialize(w);
        store_sets.serialize(w);
        w.u64(snoop_rng_state);
        w.u64(snoop_payload);
    }

    void
    deserialize(bytes::ByteReader &r)
    {
        mem.deserialize(r);
        hier.deserialize(r);
        bpred.deserialize(r);
        store_sets.deserialize(r);
        snoop_rng_state = r.u64();
        snoop_payload = r.u64();
    }
};

} // namespace core
} // namespace srl

#endif // SRLSIM_CORE_SIM_STATE_HH
