#include "core/processor.hh"

#include <algorithm>
#include <cstdlib>

#include "common/debug.hh"
#include "common/intmath.hh"
#include "common/logging.hh"
#include "core/sim_state.hh"

namespace srl
{
namespace core
{

namespace
{

/** How far fetch may run ahead of allocate, in uops. */
constexpr std::size_t kFetchAhead = 32;

} // namespace

Processor::Processor(const ProcessorConfig &config, isa::UopStream &stream)
    : config_(config), stream_(stream), ckpts_(config.checkpoints),
      sdb_(config.sdb),
      store_ids_(config.model == StqModel::kSrl
                     ? config.srl.srl.capacity
                     : 1u << 20)
{
    snoop_rng_ = Random(config.snoop_seed);
    owned_mem_ = std::make_unique<memsys::MainMemory>();
    mem_ = owned_mem_.get();
    owned_hier_ =
        std::make_unique<memsys::Hierarchy>(config_.memory, *mem_);
    hier_ = owned_hier_.get();
    owned_bpred_ = std::make_unique<predictor::HybridPredictor>();
    bpred_ = owned_bpred_.get();
    owned_store_sets_ =
        std::make_unique<predictor::StoreSets>(config.store_sets);
    store_sets_ = owned_store_sets_.get();
    initPipeline();
}

Processor::Processor(const ProcessorConfig &config, isa::UopStream &stream,
                     SimState &state, SeqNum start_seq)
    : config_(config), stream_(stream), ckpts_(config.checkpoints),
      sdb_(config.sdb),
      store_ids_(config.model == StqModel::kSrl
                     ? config.srl.srl.capacity
                     : 1u << 20)
{
    mem_ = &state.mem;
    hier_ = &state.hier;
    bpred_ = &state.bpred;
    store_sets_ = &state.store_sets;
    // MSHRs are cycle-keyed against the previous segment's clock (all
    // logically expired at a drained boundary) and a previous
    // segment's probe bus must not leak in.
    hier_->resetTiming();
    snoop_rng_.setRawState(state.snoop_rng_state);
    snoop_payload_ = state.snoop_payload;
    window_base_ = start_seq;
    initPipeline();
}

void
Processor::initPipeline()
{
    spec_mem_ = std::make_unique<SpeculativeMemory>(*mem_);
    stq_ = std::make_unique<lsq::StoreQueue>(config_.stq);

    switch (config_.model) {
      case StqModel::kMonolithic:
        lq_ = std::make_unique<lsq::LoadQueue>(config_.load_queue);
        break;
      case StqModel::kHierarchical:
        lq_ = std::make_unique<lsq::LoadQueue>(config_.load_queue);
        l2_stq_ = std::make_unique<lsq::StoreQueue>(config_.l2_stq);
        mtb_ = std::make_unique<lsq::CountingBloom>(
            config_.mtb_entries, 8, lsq::HashScheme::kLowerAddressBits);
        break;
      case StqModel::kSrl:
        srl_ = std::make_unique<lsq::StoreRedoLog>(config_.srl.srl);
        if (config_.srl.use_lcf)
            lcf_ = std::make_unique<lsq::LooseCheckFilter>(
                config_.srl.lcf);
        if (config_.srl.use_fwd_cache) {
            fc_ = std::make_unique<lsq::ForwardingCache>(
                config_.srl.fwd_cache);
        } else {
            // Temporary updates go "in the data cache": model its
            // capacity/associativity with an FC sized like the L1.
            lsq::FwdCacheParams dparams;
            dparams.entries = static_cast<unsigned>(
                config_.memory.l1.size_bytes / 8);
            dparams.assoc = config_.memory.l1.assoc;
            fc_ = std::make_unique<lsq::ForwardingCache>(dparams);
        }
        load_buffer_ = std::make_unique<lsq::SecondaryLoadBuffer>(
            config_.load_buffer);
        break;
    }
}

Processor::~Processor() = default;

void
Processor::exportState(SimState &state) const
{
    state.snoop_rng_state = snoop_rng_.rawState();
    state.snoop_payload = snoop_payload_;
}

// --------------------------------------------------------------------
// Window access
// --------------------------------------------------------------------

DynUop *
Processor::find(SeqNum seq)
{
    if (seq < window_base_ || seq >= window_base_ + window_.size())
        return nullptr;
    return &window_[seq - window_base_];
}

const DynUop *
Processor::find(SeqNum seq) const
{
    return const_cast<Processor *>(this)->find(seq);
}

bool
Processor::inWindow(SeqNum seq) const
{
    return find(seq) != nullptr;
}

bool
Processor::producerReady(SeqNum prod) const
{
    if (prod == kInvalidSeqNum)
        return true;
    const DynUop *p = find(prod);
    if (!p)
        return true; // committed long ago
    // A producer that has not been allocated yet (replay) is not ready.
    return p->completed() && p->complete_cycle <= now_;
}

bool
Processor::producerPoisoned(SeqNum prod) const
{
    if (prod == kInvalidSeqNum)
        return false;
    const DynUop *p = find(prod);
    return p && p->poisoned;
}

bool
Processor::sourcesReady(const DynUop &d) const
{
    return producerReady(d.src1_prod) && producerReady(d.src2_prod) &&
           producerReady(d.memdep_prod);
}

bool
Processor::sourcesPoisoned(const DynUop &d) const
{
    return producerPoisoned(d.src1_prod) ||
           producerPoisoned(d.src2_prod) ||
           producerPoisoned(d.memdep_prod);
}

/**
 * One-pass fusion of sourcesPoisoned/sourcesReady for the issue loop:
 * each producer is looked up once instead of once per predicate.
 * Poison dominates (the legacy scan checked it first), and any poisoned
 * producer sends the consumer to the slice regardless of the others, so
 * the early return preserves the two-predicate outcome exactly.
 */
Processor::SourceStatus
Processor::sourceStatus(const DynUop &d) const
{
    bool wait = false;
    const SeqNum prods[3] = {d.src1_prod, d.src2_prod, d.memdep_prod};
    for (const SeqNum prod : prods) {
        if (prod == kInvalidSeqNum)
            continue;
        const DynUop *p = find(prod);
        if (!p)
            continue; // committed long ago
        if (p->poisoned)
            return SourceStatus::kPoisoned;
        if (!(p->completed() && p->complete_cycle <= now_))
            wait = true;
    }
    return wait ? SourceStatus::kWait : SourceStatus::kReady;
}

SchedClass
Processor::schedClassOf(const isa::Uop &u)
{
    if (isa::isMemory(u.cls))
        return SchedClass::kMem;
    if (isa::isFloat(u.cls))
        return SchedClass::kFp;
    return SchedClass::kInt;
}

void
Processor::schedulerPush(DynUop &d)
{
    const auto cls = static_cast<unsigned>(schedClassOf(d.uop));
    d.sched_ticket = next_ticket_++;
    d.sched_sleep = false;
    d.src_resolved = false;
    ready_[cls].insert(d.sched_ticket, d.uop.seq);
    ++sched_count_[cls];
#ifdef SRLSIM_ISSUE_SCAN_CHECK
    scan_list_[cls].push_back(d.uop.seq);
#endif
}

void
Processor::schedulerRemove(DynUop &d)
{
    const auto cls = static_cast<unsigned>(schedClassOf(d.uop));
    ready_[cls].erase(d.sched_ticket); // no-op when asleep
    panic_if(sched_count_[cls] == 0, "scheduler occupancy underflow");
    --sched_count_[cls];
#ifdef SRLSIM_ISSUE_SCAN_CHECK
    auto &list = scan_list_[cls];
    const auto it = std::find(list.begin(), list.end(), d.uop.seq);
    if (it != list.end())
        list.erase(it);
#endif
}

void
Processor::releaseSchedulerSlot(DynUop &d)
{
    schedulerRemove(d);
}

/**
 * Rebuild the ready queues and occupancy counts from the window (after
 * a rollback rewrote scheduler membership wholesale). Every surviving
 * scheduler entry is awake at this point — resetWakeState() ran — and
 * tickets are stable across squash, so inserting survivors by ticket
 * reproduces exactly the relative order the legacy lists kept through
 * their remove_if.
 */
void
Processor::rebuildSchedulerQueues()
{
    for (unsigned c = 0; c < 3; ++c) {
        ready_[c].clear();
        sched_count_[c] = 0;
    }
    for (std::size_t i = 0; i < window_.size(); ++i) {
        DynUop &d = window_[i];
        if (d.state != UopState::kInScheduler)
            continue;
        const auto cls = static_cast<unsigned>(schedClassOf(d.uop));
        ready_[cls].insert(d.sched_ticket, d.uop.seq);
        ++sched_count_[cls];
    }
}

void
Processor::releaseRegister(DynUop &d)
{
    if (!d.uop.hasDst())
        return;
    if (isa::isFloat(d.uop.cls) ||
        (d.uop.isLoad() && d.uop.dst >= isa::kNumArchRegs / 2)) {
        if (rf_used_fp_ > 0)
            --rf_used_fp_;
    } else {
        if (rf_used_int_ > 0)
            --rf_used_int_;
    }
}

// --------------------------------------------------------------------
// Fetch
// --------------------------------------------------------------------

void
Processor::fetch()
{
    if (now_ < fetch_resume_ || fetch_block_branch_ != kInvalidSeqNum)
        return;

    for (unsigned i = 0; i < config_.alloc_width; ++i) {
        // Bound how far fetch runs ahead of allocate.
        const std::size_t pending = window_.size() - alloc_index_;
        if (pending >= kFetchAhead || stream_done_)
            break;

        isa::Uop u;
        if (!stream_.next(u)) {
            stream_done_ = true;
            tick_progress_ = true;
            break;
        }
        panic_if(u.seq != window_base_ + window_.size(),
                 "stream seq %llu out of order",
                 static_cast<unsigned long long>(u.seq));

        DynUop &d = window_.emplace_back();
        d.uop = u;
        if (u.isBranch()) {
            const bool pred = bpred_->predict(u.pc);
            bpred_->update(u.pc, u.taken);
            d.mispredicted = pred != u.taken;
            d.branch_counted = true;
        }
        tick_progress_ = true;

        if (d.mispredicted) {
            // Fetch stalls at a mispredicted branch until it resolves
            // (trace-driven: the wrong path contributes no useful work).
            fetch_block_branch_ = u.seq;
            break;
        }
    }
}

// --------------------------------------------------------------------
// Allocate (slice re-insertion has priority, then new uops)
// --------------------------------------------------------------------

void
Processor::resolveSources(DynUop &d)
{
    d.src1_prod = kInvalidSeqNum;
    d.src2_prod = kInvalidSeqNum;
    d.memdep_prod = kInvalidSeqNum;

    auto resolve = [&](ArchReg reg) -> SeqNum {
        if (reg == isa::kInvalidArchReg)
            return kInvalidSeqNum;
        const SeqNum prod = rename_[reg].producer;
        if (prod == kInvalidSeqNum || !inWindow(prod))
            return kInvalidSeqNum;
        return prod;
    };
    d.src1_prod = resolve(d.uop.src1);
    d.src2_prod = resolve(d.uop.src2);

    if (d.uop.isLoad()) {
        const SeqNum pred = store_sets_->predict(d.uop.pc);
        if (pred != kInvalidSeqNum && inWindow(pred) && pred < d.uop.seq) {
            const DynUop *s = find(pred);
            if (s && s->uop.isStore() && !s->completed())
                d.memdep_prod = pred;
        }
    }
}

bool
Processor::resourcesFor(const DynUop &d, bool reinsertion) const
{
    // Scheduler slot. A few entries per window are reserved for slice
    // re-insertion: without the reservation, new loads stalled behind
    // the SRL can fill the window and deadlock against the slice store
    // they are waiting for (the slice processing unit of a real CFP
    // design owns its re-insertion bandwidth).
    const auto cls = static_cast<unsigned>(schedClassOf(d.uop));
    const unsigned cap = cls == 0 ? config_.sched_int
                         : cls == 1 ? config_.sched_fp
                                    : config_.sched_mem;
    const unsigned reserve =
        reinsertion ? 0 : std::min(4u, cap / 8);
    if (sched_count_[cls] + reserve >= cap)
        return false;

    // Destination register.
    if (d.uop.hasDst()) {
        const bool fp = isa::isFloat(d.uop.cls) ||
                        (d.uop.isLoad() &&
                         d.uop.dst >= isa::kNumArchRegs / 2);
        if (fp ? rf_used_fp_ >= config_.regs_fp
               : rf_used_int_ >= config_.regs_int)
            return false;
    }

    // Store queue entry (unless the store still owns one: conventional
    // models keep the poisoned entry resident across the slice).
    if (d.uop.isStore() && !d.in_stq && stq_->full())
        return false;

    // Conventional load queue entry (first allocation only).
    if (!reinsertion && d.uop.isLoad() && lq_ && !d.lq_tracked &&
        lq_->full())
        return false;

    return true;
}

void
Processor::enterSlice(DynUop &d, bool from_scheduler)
{
    if (from_scheduler) {
        releaseSchedulerSlot(d);
        releaseRegister(d);
    }
    d.state = UopState::kInSlice;
    d.poisoned = true;
    unlinkWaiter(d);
    wakeWaiters(d, true);
    DTRACE(kSlice, "cycle %llu: drain to SDB: %s",
           (unsigned long long)now_, d.uop.toString().c_str());

    if (!d.counted_slice) {
        d.counted_slice = true;
        ++stats_.slice_uops;
        if (d.uop.isStore() && !d.was_poisoned_store) {
            d.was_poisoned_store = true;
            ++stats_.poisoned_stores;
        }
    }
    if (d.uop.isStore() && d.in_stq) {
        if (stq_->find(d.uop.seq))
            stq_->markPoisoned(d.uop.seq);
    }
    if (d.uop.hasDst())
        rename_[d.uop.dst].poisoned = true;

    cfp::SliceEntry entry;
    entry.uop = d.uop;
    entry.ckpt = d.ckpt;
    entry.srl_id = d.store_id;
    entry.has_srl_slot = d.srl_slot_reserved;
    entry.src1_producer = d.src1_prod;
    entry.src2_producer = d.src2_prod;
    entry.passes = ++d.passes;
    sdb_.push(std::move(entry));
    if (probe_)
        probe_->emit(obs::makeEvent(
            now_, obs::EventKind::kSliceEnter, obs::Structure::kSdb,
            d.uop.seq, 0, d.passes));
}

bool
Processor::tryReinsertSliceHead()
{
    if (sdb_.empty())
        return false;
    const cfp::SliceEntry &head = sdb_.front();
    DynUop *d = find(head.uop.seq);
    panic_if(!d, "SDB head %llu not in window",
             static_cast<unsigned long long>(head.uop.seq));
    panic_if(d->state != UopState::kInSlice,
             "SDB head %llu not in slice state",
             static_cast<unsigned long long>(head.uop.seq));

    // Wait until no producer is still pending a memory miss or parked
    // behind this entry in the slice.
    auto blocked = [&](SeqNum prod) {
        if (prod == kInvalidSeqNum)
            return false;
        const DynUop *p = find(prod);
        if (!p || p->completed())
            return false;
        // Producer must itself be back in the pipeline (it is older,
        // so it re-inserted earlier) and not poisoned-pending.
        return p->state == UopState::kInSlice || p->poisoned;
    };
    if (blocked(d->src1_prod) || blocked(d->src2_prod) ||
        blocked(d->memdep_prod))
        return false;

    if (!resourcesFor(*d, true))
        return false;

    // Entering redo: the first re-insertion of a slice burst discards
    // all temporary forwarding updates (Section 4.3). The miss-
    // dependent instructions must not observe temporary state.
    if (config_.model == StqModel::kSrl && !slice_active_) {
        slice_active_ = true;
        if (!std::getenv("SRL_NO_DISCARD"))
            beginRedoPhase();
    }

    sdb_.pop();
    if (probe_)
        probe_->emit(obs::makeEvent(
            now_, obs::EventKind::kSliceReinsert, obs::Structure::kSdb,
            d->uop.seq, 0, d->passes));
    d->state = UopState::kInScheduler;
    d->poisoned = false;
    schedulerPush(*d);
    if (d->uop.hasDst()) {
        const bool fp = isa::isFloat(d->uop.cls) ||
                        (d->uop.isLoad() &&
                         d->uop.dst >= isa::kNumArchRegs / 2);
        (fp ? rf_used_fp_ : rf_used_int_)++;
    }
    // A slice store re-allocates an L1 STQ entry (Section 4.3).
    if (d->uop.isStore() && !d->in_stq) {
        stq_->allocate(d->uop.seq, d->store_id, d->ckpt);
        d->in_stq = true;
    }
    return true;
}

bool
Processor::allocateOne(DynUop &d, bool reinsertion)
{
    (void)reinsertion;
    // Checkpoint management: open a new one if policy demands. CPR
    // checkpoints selectively at *low-confidence* branches; the trace
    // knows the outcome, so "will mispredict" stands in for a
    // confidence estimator.
    if (ckpts_.wantNew(d.uop.isBranch() && d.mispredicted)) {
        if (!ckpts_.canCreate()) {
            ++ckpts_.createStalls;
            ++stats_.stall_ckpt;
            return false;
        }
        const CheckpointId nid =
            ckpts_.create(d.uop.seq, rename_.snapshot());
        // The checkpoint exists even if a later resource check fails
        // this cycle: the tick changed state and cannot be skipped.
        tick_progress_ = true;
        DTRACE(kCheckpoint, "cycle %llu: open checkpoint %u at seq %llu",
               (unsigned long long)now_, nid,
               (unsigned long long)d.uop.seq);
        if (probe_)
            probe_->emit(obs::makeEvent(
                now_, obs::EventKind::kCkptAlloc,
                obs::Structure::kCheckpoint, d.uop.seq, 0, nid));
    }

    resolveSources(d);

    const bool to_slice =
        sourcesPoisoned(d) ||
        (d.uop.isLoad() && d.memdep_prod != kInvalidSeqNum &&
         producerPoisoned(d.memdep_prod));

    // Stores always hold a store-queue entry; loads a load-queue entry
    // (conventional models) and an order-fence slot; both need these
    // even when steered straight into the slice.
    if (d.uop.isStore() && stq_->full()) {
        ++stq_->allocFails;
        ++stats_.stall_stq;
        return false;
    }
    // SRL model: the wrap-around StoreId ring can only order ids less
    // than one SRL-capacity apart, and ids are referenced by every
    // in-flight uop (a load's nearest-store id lives until it
    // commits). Store allocation therefore stalls when the ring would
    // advance a full capacity past the oldest in-flight reference.
    if (d.uop.isStore() && srl_ && !window_.empty() &&
        alloc_index_ > 0) {
        const std::uint64_t oldest = window_.front().alloc_store_abs;
        if (store_ids_.peek().abs - oldest >=
            config_.srl.srl.capacity) {
            ++stats_.stall_stq;
            return false;
        }
    }
    if (d.uop.isLoad() && lq_ && lq_->full()) {
        ++stats_.stall_lq;
        return false;
    }
    if (to_slice && sdb_.full()) {
        ++stats_.stall_sdb;
        return false;
    }
    if (!to_slice && !resourcesFor(d, false)) {
        const auto cls = static_cast<unsigned>(schedClassOf(d.uop));
        const unsigned cap = cls == 0   ? config_.sched_int
                             : cls == 1 ? config_.sched_fp
                                        : config_.sched_mem;
        if (sched_count_[cls] >= cap)
            ++stats_.stall_sched;
        else
            ++stats_.stall_rf;
        return false;
    }

    d.ckpt = ckpts_.youngest().id;
    d.alloc_store_abs = store_ids_.peek().abs;
    ckpts_.allocated(d.uop.seq);

    if (d.uop.isStore()) {
        d.store_id = store_ids_.allocate();
        stq_->allocate(d.uop.seq, d.store_id, d.ckpt);
        d.in_stq = true;
        d.drained = false;
        store_sets_->storeFetched(d.uop.pc, d.uop.seq);
        ++undrained_[d.ckpt];
        ++inflight_stores_;
        d.undrained_counted = true;
    }
    if (d.uop.isLoad()) {
        d.nearest_id = store_ids_.lastAllocated();
        fence_.loadAllocated(d.uop.seq);
        if (lq_) {
            lq_->allocate(d.uop.seq, d.ckpt);
            d.lq_tracked = true;
        }
    }
    if (d.uop.hasDst()) {
        rename_[d.uop.dst].producer = d.uop.seq;
        rename_[d.uop.dst].poisoned = false;
    }

    if (to_slice) {
        d.passes = 0; // enterSlice will bump it
        enterSlice(d, false);
    } else {
        d.state = UopState::kInScheduler;
        schedulerPush(d);
        if (d.uop.hasDst()) {
            const bool fp = isa::isFloat(d.uop.cls) ||
                            (d.uop.isLoad() &&
                             d.uop.dst >= isa::kNumArchRegs / 2);
            (fp ? rf_used_fp_ : rf_used_int_)++;
        }
    }
    if (probe_)
        probe_->emit(obs::makeEvent(
            now_, obs::EventKind::kDispatch, obs::Structure::kCore,
            d.uop.seq, d.uop.pc,
            static_cast<std::uint32_t>(d.uop.cls)));
    return true;
}

void
Processor::allocate()
{
    unsigned budget = config_.alloc_width;

    // Slice re-insertion first: SDB entries are the oldest work.
    while (budget > 0 && tryReinsertSliceHead()) {
        --budget;
        tick_progress_ = true;
    }

    // Then new uops, in order.
    while (budget > 0 && alloc_index_ < window_.size()) {
        DynUop &d = window_[alloc_index_];
        panic_if(d.state != UopState::kWaitAlloc,
                 "alloc pointer at uop %llu in state %u",
                 static_cast<unsigned long long>(d.uop.seq),
                 static_cast<unsigned>(d.state));
        if (!allocateOne(d, false))
            break;
        ++alloc_index_;
        --budget;
        tick_progress_ = true;
    }
}

// --------------------------------------------------------------------
// Issue
// --------------------------------------------------------------------

void
Processor::scheduleCompletion(DynUop &d, Cycle when)
{
    d.state = UopState::kIssued;
    events_.push(Event(when, d.uop.seq, d.generation));
}

Processor::LoadRoute
Processor::routeLoad(DynUop &d, std::uint64_t &value, Cycle &ready)
{
    const Addr addr = d.uop.effAddr;
    const std::uint8_t size = d.uop.memSize;

    // 1. Primary store queue CAM (all models).
    const lsq::ForwardResult fr = stq_->forward(d.uop.seq, addr, size);
    if (fr.outcome == lsq::ForwardOutcome::kForward) {
        value = fr.data;
        ready = now_ + stq_->forwardLatency();
        d.fwd_store_seq = fr.store_seq;
        d.fwd_store_id = fr.store_id;
        return LoadRoute::kStqForward;
    }
    if (fr.outcome == lsq::ForwardOutcome::kBlocked)
        return LoadRoute::kRetry;

    // 2. Hierarchical: Membership Test Buffer filters L2 STQ lookups.
    if (config_.model == StqModel::kHierarchical &&
        mtb_->mayContain(addr)) {
        const lsq::ForwardResult f2 =
            l2_stq_->forward(d.uop.seq, addr, size);
        if (f2.outcome == lsq::ForwardOutcome::kForward) {
            value = f2.data;
            ready = now_ + l2_stq_->forwardLatency();
            d.fwd_store_seq = f2.store_seq;
            d.fwd_store_id = f2.store_id;
            return LoadRoute::kL2StqForward;
        }
        if (f2.outcome == lsq::ForwardOutcome::kBlocked)
            return LoadRoute::kRetry;
    }

    // 3. SRL model: forwarding cache, then the Loose Check Filter.
    if (config_.model == StqModel::kSrl) {
        const auto hit = fc_->load(addr, size);
        if (hit &&
            !lsq::allocatedBefore(d.nearest_id, hit->store_id)) {
            // Temporary-update hit from a program-order-older store;
            // forwarding happens at L1 hit latency (Section 6.1).
            value = hit->data;
            ready = now_ + hier_->l1().hitLatency();
            d.fwd_store_seq = kInvalidSeqNum;
            d.fwd_store_id = hit->store_id;
            return LoadRoute::kFcForward;
        }

        // Section 4.3: the SRL-matching problem only arises during
        // *store redo mode*, when discarded temporary state means a
        // load's data may sit in the SRL without having updated the
        // cache yet. Outside redo mode, loads that miss the STQ and FC
        // read the cache; a mistake (e.g. an FC eviction, or an
        // unknown-address dependent store) is caught by the secondary
        // load buffer when the store completes or drains (Figure 4
        // cases v and vi).
        if (redo_mode_) {
            if (lcf_) {
                // One hash, one lane read: counter and indexed-
                // forwarding slot come back together.
                const lsq::LooseCheckFilter::Check chk =
                    lcf_->lookup(addr);
                if (chk.mayMatch()) {
                    // Indexed forwarding: RAM-read the last aliasing
                    // SRL slot; one external comparator checks address
                    // and age (no CAM, no search).
                    if (config_.srl.indexed_forwarding) {
                        const std::uint32_t slot = chk.srl_index;
                        const lsq::SrlEntry *e = srl_->peekSlot(slot);
                        if (e && e->data_valid &&
                            lsq::bytesCover(e->addr, e->size, addr,
                                            size) &&
                            !lsq::allocatedBefore(d.nearest_id,
                                                  e->id)) {
                            const unsigned shift =
                                static_cast<unsigned>(addr - e->addr) *
                                8;
                            const std::uint64_t full = e->data >> shift;
                            value = size >= 8
                                        ? full
                                        : (full &
                                           ((1ull << (8 * size)) - 1));
                            ready = now_ + hier_->l1().hitLatency();
                            d.fwd_store_seq = e->seq;
                            d.fwd_store_id = e->id;
                            ++stats_.indexed_forwards;
                            if (probe_)
                                probe_->emit(obs::makeEvent(
                                    now_,
                                    obs::EventKind::kIndexedForward,
                                    obs::Structure::kSrl, d.uop.seq,
                                    addr, slot));
                            return LoadRoute::kIndexedForward;
                        }
                    }
                    // Stall until the aliasing stores drain past the
                    // load (single comparator on the SRL head id).
                    if (!srl_->empty() &&
                        !lsq::allocatedBefore(d.nearest_id,
                                              srl_->head().id)) {
                        if (!d.counted_srl_stall) {
                            d.counted_srl_stall = true;
                            ++stats_.srl_stalled_loads;
                            if (probe_)
                                probe_->emit(obs::makeEvent(
                                    now_, obs::EventKind::kSrlStall,
                                    obs::Structure::kSrl, d.uop.seq,
                                    addr, 0));
                        }
                        return LoadRoute::kRetry;
                    }
                }
            } else {
                // No LCF: the hardware cannot tell whether *any* SRL
                // store matches, so every load without forwarded data
                // stalls until the SRL drains past it ("these loads
                // would have to stall until the SRL drains
                // completely").
                if (!srl_->empty() &&
                    !lsq::allocatedBefore(d.nearest_id,
                                          srl_->head().id)) {
                    if (!d.counted_srl_stall) {
                        d.counted_srl_stall = true;
                        ++stats_.srl_stalled_loads;
                        if (probe_)
                            probe_->emit(obs::makeEvent(
                                now_, obs::EventKind::kSrlStall,
                                obs::Structure::kSrl, d.uop.seq, addr,
                                0));
                    }
                    return LoadRoute::kRetry;
                }
            }
        }
    }

    // 4. The cache hierarchy (value from the speculative overlay view).
    const memsys::LoadResult lr = hier_->load(addr, now_);
    if (lr.mshr_full)
        return LoadRoute::kRetry;
    value = spec_mem_->read(addr, size);
    ready = lr.ready;
    if (lr.level == memsys::ServiceLevel::kMemory) {
        d.pending_mem_miss = true;
        d.poisoned = true;
        wakeWaiters(d, true);
        if (d.uop.hasDst())
            rename_[d.uop.dst].poisoned = true;
        ++outstanding_mem_misses_;
        ++stats_.mem_misses;
        if (probe_)
            probe_->emit(obs::makeEvent(
                now_, obs::EventKind::kMissEnter, obs::Structure::kCore,
                d.uop.seq, addr, 0));
        switch (addr >> 28) {
          case 0x1: ++stats_.miss_hot; break;
          case 0x2: ++stats_.miss_warm; break;
          case 0x4: case 0x5: case 0x6: case 0x7:
            ++stats_.miss_cold; break;
          default: ++stats_.miss_stream; break;
        }
    } else if (redo_mode_ && config_.model == StqModel::kSrl &&
               !config_.srl.use_fwd_cache) {
        ++stats_.redo_phase_misses;
    }
    d.fwd_store_seq = kInvalidSeqNum;
    d.fwd_store_id = lsq::kNullStoreId;
    return LoadRoute::kCache;
}

bool
Processor::issueLoad(DynUop &d)
{
    std::uint64_t value = 0;
    Cycle ready = now_;
    const LoadRoute route = routeLoad(d, value, ready);
    if (route == LoadRoute::kRetry)
        return false;

    d.load_value = value;

    // The load's value is bound now: it becomes visible to store
    // completion/drain checks, and clears its order-fence bit.
    fence_.loadCompleted(d.uop.seq);
    if (lq_) {
        lq_->executed(d.uop.seq, d.uop.effAddr, d.uop.memSize,
                      d.fwd_store_seq);
    }
    if (load_buffer_) {
        const auto ins = load_buffer_->insert(
            d.uop.seq, d.ckpt, d.uop.effAddr, d.uop.memSize,
            d.nearest_id, d.fwd_store_id);
        if (ins.overflowed) {
            // Section 3: take a memory-ordering violation on overflow.
            ++stats_.overflow_violations;
            scheduleCompletion(d, ready);
            handleViolation(lsq::LoadViolation{d.uop.seq, d.ckpt},
                            kInvalidSeqNum, true);
            return true;
        }
    }

    scheduleCompletion(d, ready);
    return true;
}

bool
Processor::issueStore(DynUop &d)
{
    // Address and data generation: one cycle through the store port.
    scheduleCompletion(d, now_ + 1);
    return true;
}

bool
Processor::tryIssue(DynUop &d)
{
    if (d.uop.isLoad())
        return issueLoad(d);
    if (d.uop.isStore())
        return issueStore(d);
    scheduleCompletion(d, now_ + isa::executeLatency(d.uop.cls));
    return true;
}

// --------------------------------------------------------------------
// Scheduler sleep/wakeup
//
// A scheduler entry whose sources are not ready goes to sleep: it
// leaves its class's ready queue and is linked into an intrusive LIFO
// chain on each incomplete producer. When a producer completes or
// becomes poisoned — the only transitions that can change the entry's
// issue outcome — the chain walk re-inserts it into the ready queue at
// its original ticket position, so issue() never examines blocked
// work and its selection order (and therefore timing) is exactly that
// of the legacy full per-cycle scan.
// --------------------------------------------------------------------

void
Processor::sleepSchedEntry(DynUop &d)
{
    const SeqNum prods[3] = {d.src1_prod, d.src2_prod, d.memdep_prod};
    bool linked = false;
    for (unsigned slot = 0; slot < 3; ++slot) {
        if (d.wait_linked[slot]) {
            // Still chained to this producer from an earlier sleep.
            linked = true;
            continue;
        }
        const SeqNum prod = prods[slot];
        if (prod == kInvalidSeqNum)
            continue;
        DynUop *p = find(prod);
        if (!p || p->completed())
            continue;
        d.wait_linked[slot] = true;
        d.wait_next[slot] = p->first_waiter;
        d.wait_next_slot[slot] = p->first_waiter_slot;
        p->first_waiter = d.uop.seq;
        p->first_waiter_slot = static_cast<std::uint8_t>(slot);
        linked = true;
    }
    // No link could mean every producer completed between the
    // readiness check and here; stay ready and retry next cycle.
    d.sched_sleep = linked;
    if (linked)
        ready_[static_cast<unsigned>(schedClassOf(d.uop))].erase(
            d.sched_ticket);
}

void
Processor::wakeWaiters(DynUop &p, bool poison)
{
    SeqNum cur = p.first_waiter;
    std::uint8_t slot = p.first_waiter_slot;
    p.first_waiter = kInvalidSeqNum;
    p.first_waiter_slot = 0;
    while (cur != kInvalidSeqNum) {
        DynUop *w = find(cur);
        panic_if(!w, "waiter %llu left the window before its producer",
                 static_cast<unsigned long long>(cur));
        const SeqNum next = w->wait_next[slot];
        const std::uint8_t next_slot = w->wait_next_slot[slot];
        w->wait_linked[slot] = false;
        w->wait_next[slot] = kInvalidSeqNum;
        // A completion wake is deferred until the waiter's last linked
        // producer finishes: a visit before that would only re-sleep it
        // (no stats, probes or progress on that path), so skipping the
        // early wake is unobservable. A poison wake reinserts
        // immediately — the waiter must drain into the slice even
        // though other producers are still pending (the issue pass
        // checks sourcesPoisoned before sourcesReady).
        if (w->sched_sleep &&
            (poison || !(w->wait_linked[0] || w->wait_linked[1] ||
                         w->wait_linked[2]))) {
            w->sched_sleep = false;
            // A gated completion wake proves readiness outright: the
            // linked producers all completed (this was the last), the
            // unlinked ones had already completed when the waiter went
            // to sleep, and completed producers are never poisoned.
            // The issue pass can skip its source re-check.
            if (!poison)
                w->src_resolved = true;
            ready_[static_cast<unsigned>(schedClassOf(w->uop))].insert(
                w->sched_ticket, cur);
        }
        cur = next;
        slot = next_slot;
    }
}

void
Processor::unlinkWaiter(DynUop &w)
{
    // Excise w from every producer chain it is still linked into (it
    // is leaving the scheduler through a path other than issue, e.g.
    // a slice drain, and its link storage is about to be reused).
    const SeqNum prods[3] = {w.src1_prod, w.src2_prod, w.memdep_prod};
    for (unsigned slot = 0; slot < 3; ++slot) {
        if (!w.wait_linked[slot])
            continue;
        w.wait_linked[slot] = false;
        DynUop *p = find(prods[slot]);
        if (!p) {
            w.wait_next[slot] = kInvalidSeqNum;
            continue;
        }
        SeqNum *link_seq = &p->first_waiter;
        std::uint8_t *link_slot = &p->first_waiter_slot;
        while (*link_seq != kInvalidSeqNum &&
               !(*link_seq == w.uop.seq && *link_slot == slot)) {
            DynUop *n = find(*link_seq);
            const std::uint8_t s = *link_slot;
            link_seq = &n->wait_next[s];
            link_slot = &n->wait_next_slot[s];
        }
        if (*link_seq != kInvalidSeqNum) {
            *link_seq = w.wait_next[slot];
            *link_slot = w.wait_next_slot[slot];
        }
        w.wait_next[slot] = kInvalidSeqNum;
    }
    // The entry is leaving the scheduler; the caller already removed it
    // from its ready queue, so only the flag needs clearing.
    w.sched_sleep = false;
}

void
Processor::resetWakeState()
{
    for (std::size_t i = 0; i < window_.size(); ++i) {
        DynUop &d = window_[i];
        d.sched_sleep = false;
        d.first_waiter = kInvalidSeqNum;
        d.first_waiter_slot = 0;
        for (unsigned s = 0; s < 3; ++s) {
            d.wait_linked[s] = false;
            d.wait_next[s] = kInvalidSeqNum;
        }
    }
}

void
Processor::issue()
{
#ifdef SRLSIM_ISSUE_SCAN_CHECK
    if (config_.issue_scan) {
        issueScan();
        return;
    }
#endif
    unsigned budget = config_.issue_width;
    unsigned fu_int = config_.fu_int_alu;
    unsigned fu_mul = config_.fu_int_mul;
    unsigned fu_fp = config_.fu_fp;
    unsigned loads = config_.load_ports;
    unsigned stores = config_.store_ports;

    for (unsigned cls = 0; cls < 3 && budget > 0; ++cls) {
        ReadyQueue &rq = ready_[cls];
        // Ticket-cursor walk: visits exactly the entries the legacy
        // scan would have examined, in the same order, while skipping
        // sleepers entirely. The cursor makes the walk robust against
        // mutation from inside the loop body — an issued load that
        // misses wakes its consumers (they join at their tickets,
        // visited iff the scan would still have reached them), a
        // poisoned entry drains out, a failed readiness check puts the
        // current entry to sleep.
        std::uint64_t cursor = 0;
        std::size_t pos_hint = 0;
        while (budget > 0) {
            const ReadyQueue::Entry *e = rq.firstAfter(cursor, pos_hint);
            if (!e)
                break;
            cursor = e->ticket;
            DynUop *d = find(e->seq);
            panic_if(!d || d->state != UopState::kInScheduler,
                     "scheduler holds stale uop");
            if (!d->src_resolved) {
                const SourceStatus st = sourceStatus(*d);
                if (st == SourceStatus::kPoisoned) {
                    // Miss-dependent: drain into the slice, freeing
                    // the slot (this is the CFP resource-release
                    // mechanism). With the SDB full it stays ready
                    // and retries.
                    if (!sdb_.full()) {
                        enterSlice(*d, true);
                        tick_progress_ = true;
                    }
                    continue;
                }
                if (st == SourceStatus::kWait) {
                    sleepSchedEntry(*d);
                    continue;
                }
                d->src_resolved = true;
            }

            // Functional-unit availability.
            bool fu_ok = true;
            switch (d->uop.cls) {
              case isa::UopClass::kIntAlu:
              case isa::UopClass::kBranch:
              case isa::UopClass::kNop:
                fu_ok = fu_int > 0;
                break;
              case isa::UopClass::kIntMul:
                fu_ok = fu_mul > 0;
                break;
              case isa::UopClass::kFpAlu:
              case isa::UopClass::kFpMul:
                fu_ok = fu_fp > 0;
                break;
              case isa::UopClass::kLoad:
                fu_ok = loads > 0;
                break;
              case isa::UopClass::kStore:
                fu_ok = stores > 0;
                break;
            }
            if (!fu_ok)
                continue; // port-starved; stays ready for next cycle

            // Even a failed issue attempt is progress: routeLoad
            // touches the cache hierarchy, prefetcher, CAM counters,
            // and per-cycle probe events (e.g. kLcfHit) on its retry
            // paths, so these cycles must be executed for real.
            tick_progress_ = true;
            const std::uint64_t epoch = rollback_epoch_;
            if (!tryIssue(*d))
                continue; // structural stall; retry next cycle
            if (epoch != rollback_epoch_) {
                // The issue triggered a violation rollback; the
                // scheduler queues were rebuilt under us. Abort the
                // pass.
                return;
            }

            switch (d->uop.cls) {
              case isa::UopClass::kIntAlu:
              case isa::UopClass::kBranch:
              case isa::UopClass::kNop:
                --fu_int;
                break;
              case isa::UopClass::kIntMul:
                --fu_mul;
                break;
              case isa::UopClass::kFpAlu:
              case isa::UopClass::kFpMul:
                --fu_fp;
                break;
              case isa::UopClass::kLoad:
                --loads;
                break;
              case isa::UopClass::kStore:
                --stores;
                break;
            }
            --budget;
            schedulerRemove(*d);
        }
    }
}

#ifdef SRLSIM_ISSUE_SCAN_CHECK
/**
 * The pre-ready-queue issue stage, verbatim: a full scan of every
 * scheduler entry each cycle, skipping sleepers by flag. Selected at
 * runtime with config.issue_scan so equivalence tests can run both
 * stages in one binary; the shared helpers keep scan_list_ and the
 * ready queues coherent whichever stage drives selection.
 */
void
Processor::issueScan()
{
    unsigned budget = config_.issue_width;
    unsigned fu_int = config_.fu_int_alu;
    unsigned fu_mul = config_.fu_int_mul;
    unsigned fu_fp = config_.fu_fp;
    unsigned loads = config_.load_ports;
    unsigned stores = config_.store_ports;

    for (unsigned cls = 0; cls < 3 && budget > 0; ++cls) {
        auto &list = scan_list_[cls];
        for (std::size_t i = 0; i < list.size() && budget > 0;) {
            DynUop *d = find(list[i]);
            panic_if(!d || d->state != UopState::kInScheduler,
                     "scheduler holds stale uop");
            if (d->sched_sleep) {
                ++i;
                continue;
            }
            if (sourcesPoisoned(*d)) {
                if (!sdb_.full()) {
                    enterSlice(*d, true);
                    tick_progress_ = true;
                    continue; // entry removed; same index is next
                }
                ++i;
                continue;
            }
            if (!sourcesReady(*d)) {
                sleepSchedEntry(*d);
                ++i;
                continue;
            }

            bool fu_ok = true;
            switch (d->uop.cls) {
              case isa::UopClass::kIntAlu:
              case isa::UopClass::kBranch:
              case isa::UopClass::kNop:
                fu_ok = fu_int > 0;
                break;
              case isa::UopClass::kIntMul:
                fu_ok = fu_mul > 0;
                break;
              case isa::UopClass::kFpAlu:
              case isa::UopClass::kFpMul:
                fu_ok = fu_fp > 0;
                break;
              case isa::UopClass::kLoad:
                fu_ok = loads > 0;
                break;
              case isa::UopClass::kStore:
                fu_ok = stores > 0;
                break;
            }
            if (!fu_ok) {
                ++i;
                continue;
            }

            tick_progress_ = true;
            const std::uint64_t epoch = rollback_epoch_;
            if (!tryIssue(*d)) {
                ++i;
                continue;
            }
            if (epoch != rollback_epoch_)
                return;

            switch (d->uop.cls) {
              case isa::UopClass::kIntAlu:
              case isa::UopClass::kBranch:
              case isa::UopClass::kNop:
                --fu_int;
                break;
              case isa::UopClass::kIntMul:
                --fu_mul;
                break;
              case isa::UopClass::kFpAlu:
              case isa::UopClass::kFpMul:
                --fu_fp;
                break;
              case isa::UopClass::kLoad:
                --loads;
                break;
              case isa::UopClass::kStore:
                --stores;
                break;
            }
            --budget;
            schedulerRemove(*d); // erases this list slot too
        }
    }
}

/**
 * Cross-check-build invariant: the ready queues must hold exactly the
 * awake entries of the legacy lists, in list order, and the occupancy
 * counts must match the list sizes. Checked every tick in both modes.
 */
void
Processor::verifySchedulerCoherence() const
{
    for (unsigned cls = 0; cls < 3; ++cls) {
        const auto &list = scan_list_[cls];
        panic_if(sched_count_[cls] != list.size(),
                 "sched_count[%u]=%u but scan list holds %zu", cls,
                 sched_count_[cls], list.size());
        std::size_t r = 0;
        std::uint64_t last_ticket = 0;
        for (const SeqNum seq : list) {
            const DynUop *d = find(seq);
            panic_if(!d, "scan list holds evicted seq");
            panic_if(d->sched_ticket <= last_ticket,
                     "scan list out of ticket order");
            last_ticket = d->sched_ticket;
            if (d->sched_sleep)
                continue;
            panic_if(r >= ready_[cls].size(),
                     "ready queue missing awake entry %llu",
                     static_cast<unsigned long long>(seq));
            panic_if(ready_[cls][r].ticket != d->sched_ticket ||
                         ready_[cls][r].seq != seq,
                     "ready queue diverges at class %u pos %zu", cls,
                     r);
            ++r;
        }
        panic_if(r != ready_[cls].size(),
                 "ready queue holds %zu entries, expected %zu",
                 ready_[cls].size(), r);
    }
}
#endif // SRLSIM_ISSUE_SCAN_CHECK

// --------------------------------------------------------------------
// Completions
// --------------------------------------------------------------------

void
Processor::processEvents()
{
    while (!events_.empty() && events_.top().cycle <= now_) {
        const Event ev = events_.top();
        events_.pop();
        tick_progress_ = true;
        DynUop *d = find(ev.seq());
        if (!d || (d->generation & Event::kGenMask) != ev.generation() ||
            d->state != UopState::kIssued)
            continue; // squashed/stale
        completeUop(*d);
    }
}

void
Processor::completeUop(DynUop &d)
{
    d.state = UopState::kCompleted;
    d.complete_cycle = now_;
    releaseRegister(d);
    ckpts_.completed(d.ckpt);
    wakeWaiters(d, false);

    if (d.uop.isLoad()) {
        completeLoad(d);
    } else if (d.uop.isStore()) {
        completeStore(d);
    } else if (d.uop.isBranch() && d.mispredicted) {
        ++stats_.branch_mispredicts;
        fetch_resume_ = now_ + config_.branch_mispredict_penalty;
        if (fetch_block_branch_ == d.uop.seq)
            fetch_block_branch_ = kInvalidSeqNum;
        d.mispredicted = false;
    }

    // The result exists now; consumers stop seeing poison.
    if (d.poisoned) {
        d.poisoned = false;
        if (d.uop.hasDst() && rename_[d.uop.dst].producer == d.uop.seq)
            rename_[d.uop.dst].poisoned = false;
    }
}

void
Processor::completeLoad(DynUop &d)
{
    if (d.pending_mem_miss) {
        d.pending_mem_miss = false;
        panic_if(outstanding_mem_misses_ == 0,
                 "mem miss count underflow");
        --outstanding_mem_misses_;
        if (probe_)
            probe_->emit(obs::makeEvent(
                now_, obs::EventKind::kMissExit, obs::Structure::kCore,
                d.uop.seq, d.uop.effAddr, 0));
        // The miss data returned; the slice will start re-inserting
        // (the forwarding-cache discard happens at the first actual
        // re-insertion of this redo burst, see tryReinsertSliceHead).
    }
}

void
Processor::completeStore(DynUop &d)
{
    // Record address and data in whichever store queue holds the
    // entry; a store that already left the L1 STQ with a reserved SRL
    // slot fills that slot by index instead (no search involved).
    const lsq::StoreQueueEntry *e = stq_->find(d.uop.seq);
    bool in_l2 = false;
    if (!e && l2_stq_) {
        e = l2_stq_->find(d.uop.seq);
        in_l2 = e != nullptr;
    }
    if (e) {
        if (in_l2 && !e->addr_valid)
            mtb_->increment(d.uop.effAddr);
        (in_l2 ? *l2_stq_ : *stq_)
            .writeAddrData(d.uop.seq, d.uop.effAddr, d.uop.memSize,
                           d.uop.storeData);
    } else {
        panic_if(!d.srl_slot_reserved,
                 "completing store %llu has no store queue entry and "
                 "no SRL slot",
                 static_cast<unsigned long long>(d.uop.seq));
        pending_srl_fills_.push_back(d.uop.seq);
    }

    // Memory-dependence check against already-executed younger loads
    // (paper Section 3 / Figure 4 case v).
    std::optional<lsq::LoadViolation> v;
    if (load_buffer_) {
        v = load_buffer_->storeCheck(d.store_id, d.uop.effAddr,
                                     d.uop.memSize);
    } else if (lq_) {
        v = lq_->storeCheck(d.uop.seq, d.uop.effAddr, d.uop.memSize);
    }
    if (v)
        handleViolation(*v, d.uop.seq, false);
}

// --------------------------------------------------------------------
// Store drain
// --------------------------------------------------------------------

bool
Processor::drainStoreToCache(const SeqNum seq, CheckpointId ckpt,
                             Addr addr, std::uint8_t size,
                             std::uint64_t data)
{
    // Even a refused drain (single-version conflict below) has already
    // touched cache state: never treat this path as quiescent.
    tick_progress_ = true;

    const Addr line = hier_->l1().lineAddr(addr);

    // D$-temporary-update mode: a redo drain to a line holding a
    // temporary version discards that version (the drain supersedes
    // it); later loads may re-miss, which is part of the option's cost
    // (Section 6.5).
    if (hier_->l1().isSpeculativeFor(line, kTempCkpt)) {
        hier_->l1().invalidate(line);
        hier_->l1().fill(line);
    }

    // Committed-but-dirty data must survive a later squash of this
    // speculative update: write it back first (Section 4.3).
    if (hier_->l1().probe(line) && hier_->l1().isDirty(line) &&
        !hier_->l1().isSpeculative(line)) {
        hier_->writebackLine(line);
    }

    hier_->storeDrain(addr, now_);

    // Single-version constraint: one checkpoint owns a speculative
    // line; a conflicting store stalls the drain.
    if (!hier_->l1().markSpeculative(line, ckpt)) {
        ++stats_.temp_update_stalls;
        return false;
    }

    spec_mem_->write(seq, ckpt, addr, size, data);
    return true;
}

bool
Processor::drainConventionalHead()
{
    if (stq_->empty())
        return false;
    const lsq::StoreQueueEntry &h = stq_->head();
    if (!h.data_valid) {
        ++stats_.drain_block_head;
        return false;
    }
    if (!fence_.storeMayDrain(h.seq)) {
        ++stats_.drain_block_fence;
        return false;
    }
    if (!drainStoreToCache(h.seq, h.ckpt, h.addr, h.size, h.data)) {
        ++stats_.drain_block_line;
        return false;
    }
    const lsq::StoreQueueEntry e = stq_->popHead();
    DynUop *d = find(e.seq);
    panic_if(!d, "drained store not in window");
    d->in_stq = false;
    d->drained = true;
    panic_if(undrained_[e.ckpt] == 0, "undrained counter underflow");
    --undrained_[e.ckpt];
    --inflight_stores_;
    return true;
}

void
Processor::displaceToL2()
{
    // Keep the L1 STQ holding the most recent stores: displace from
    // its head into the L2 STQ when full.
    unsigned moves = config_.alloc_width;
    while (moves-- > 0 && stq_->full() && !l2_stq_->full()) {
        const lsq::StoreQueueEntry &h = stq_->head();
        if (!h.addr_valid && !h.poisoned)
            break; // un-executed store: nothing to displace yet
        tick_progress_ = true;
        lsq::StoreQueueEntry e = stq_->popHead();
        if (e.addr_valid)
            mtb_->increment(e.addr);
        l2_stq_->pushEntry(e);
    }
}

bool
Processor::drainHierarchical()
{
    displaceToL2();

    lsq::StoreQueue *q =
        !l2_stq_->empty() ? l2_stq_.get() : stq_.get();
    if (q->empty())
        return false;
    const lsq::StoreQueueEntry &h = q->head();
    if (!h.data_valid || !fence_.storeMayDrain(h.seq))
        return false;
    if (!drainStoreToCache(h.seq, h.ckpt, h.addr, h.size, h.data))
        return false;
    const lsq::StoreQueueEntry e = q->popHead();
    if (q == l2_stq_.get() && e.addr_valid)
        mtb_->decrement(e.addr);
    DynUop *d = find(e.seq);
    panic_if(!d, "drained store not in window");
    d->in_stq = false;
    d->drained = true;
    panic_if(undrained_[e.ckpt] == 0, "undrained counter underflow");
    --undrained_[e.ckpt];
    --inflight_stores_;
    return true;
}

bool
Processor::moveStqHeadToSrl()
{
    if (stq_->empty())
        return false;
    const lsq::StoreQueueEntry &h = stq_->head();
    // A store normally leaves the head once it has data (or is a known
    // slice member). Under capacity pressure any store may leave with
    // a reserved SRL slot it fills later by index — without this, an
    // un-executed head store can clog the L1 STQ against slice
    // re-insertion (which needs a free entry) and deadlock.
    const bool ready_to_leave =
        h.data_valid || h.poisoned || stq_->full();
    if (!ready_to_leave)
        return false;

    const bool srl_path =
        outstanding_mem_misses_ > 0 || !srl_->empty();

    if (!srl_path) {
        // No miss being tolerated and the SRL is empty: drain straight
        // to the cache like a conventional machine.
        if (!h.data_valid)
            return false;
        return drainConventionalHead();
    }

    DynUop *d = find(h.seq);
    panic_if(!d, "L1 STQ head not in window");

    if (d->srl_slot_reserved) {
        if (h.data_valid) {
            // Re-executed dependent store: fill the reserved slot.
            if (lcf_ && !lcf_->storeInserted(h.addr, h.id.index))
                return false; // LCF counter saturated: stall
            srl_->fillDependent(h.id, h.addr, h.size, h.data);
        } else if (!stq_->full()) {
            return false; // keep it resident until it executes
        }
        // else: forced out under pressure; the completion fills the
        // already-reserved slot by index (processPendingFills).
    } else if (!h.data_valid) {
        // Dependent store (or an un-executed one forced out under
        // pressure): reserve its SRL slot; it fills it by index after
        // executing (Section 4.3: the SDB records the entry index).
        if (srl_->full())
            return false;
        srl_->pushDependent(h.seq, h.id, h.ckpt);
        d->srl_slot_reserved = true;
    } else {
        // Independent store: record in the SRL and update the
        // temporary-forwarding structure.
        if (srl_->full())
            return false;
        if (config_.model == StqModel::kSrl &&
            !config_.srl.use_fwd_cache &&
            fc_->wouldEvictLive(h.addr)) {
            // D$-temporary-update mode: an associativity conflict
            // stalls store processing (Section 6.5).
            ++stats_.temp_update_stalls;
            return false;
        }
        if (lcf_ && !lcf_->storeInserted(h.addr, h.id.index))
            return false;
        srl_->pushIndependent(h.seq, h.id, h.ckpt, h.addr, h.size,
                              h.data);
        if (config_.srl.use_fwd_cache) {
            fc_->storeUpdate(h.addr, h.size, h.data, h.id);
        } else {
            // Temporary update in the data cache: write back dirty
            // committed data first, then mark the line as a temporary
            // speculative version.
            const Addr line = hier_->l1().lineAddr(h.addr);
            if (hier_->l1().probe(line) && hier_->l1().isDirty(line) &&
                !hier_->l1().isSpeculative(line)) {
                hier_->writebackLine(line);
                ++stats_.fc_writebacks;
            }
            hier_->l1().access(line, true);
            hier_->l1().markSpeculative(line, kTempCkpt);
            fc_->storeUpdate(h.addr, h.size, h.data, h.id);
        }
    }

    tick_progress_ = true;
    stq_->popHead();
    d->in_stq = false;
    return true;
}

bool
Processor::drainSrlHead()
{
    if (srl_->empty())
        return false;
    // Paper drain discipline: in the shadow of an outstanding miss the
    // SRL only records; its re-updates of the cache happen during redo
    // mode (after the miss data returns) — "these store re-updates
    // occur ... when the miss data returns" (Section 4.1).
    if (config_.srl.drain_only_in_redo &&
        outstanding_mem_misses_ > 0 && !redo_mode_) {
        ++stats_.drain_block_head;
        return false;
    }
    if (!srl_->headReady()) {
        ++stats_.drain_block_head;
        return false;
    }
    const lsq::SrlEntry &h = srl_->head();
    if (!fence_.storeMayDrain(h.seq)) {
        ++stats_.drain_block_fence;
        return false;
    }
    if (!drainStoreToCache(h.seq, h.ckpt, h.addr, h.size, h.data)) {
        ++stats_.drain_block_line;
        return false;
    }

    const lsq::SrlEntry e = srl_->popHead();
    DTRACE(kSrl, "cycle %llu: drain seq %llu addr %#llx%s",
           (unsigned long long)now_, (unsigned long long)e.seq,
           (unsigned long long)e.addr, e.dependent ? " (dep)" : "");
    if (lcf_)
        lcf_->storeRemoved(e.addr);
    // Keep the forwarding cache's age tags within the live SRL ring:
    // the drained store's entry now mirrors cache state.
    fc_->storeDrained(e.addr, e.size, e.data, e.id);
    if (srl_->empty()) {
        // The secondary structures are operational only during a miss
        // (Section 1); an emptied SRL ends the epoch and temporary
        // forwarding state is dropped.
        fc_->discardAll();
        if (!config_.srl.use_fwd_cache)
            hier_->l1().squashCheckpoint(kTempCkpt);
    }

    DynUop *d = find(e.seq);
    panic_if(!d, "SRL head not in window");
    d->drained = true;
    d->via_srl = true;
    ++stats_.redone_stores;
    panic_if(undrained_[e.ckpt] == 0, "undrained counter underflow");
    --undrained_[e.ckpt];
    --inflight_stores_;

    if (srl_->empty() && redo_mode_)
        redo_mode_ = false;

    // Figure 4 case vi: the drain is the last moment this store's data
    // becomes visible; check for younger loads that missed it.
    if (auto v = load_buffer_->storeCheck(e.id, e.addr, e.size))
        handleViolation(*v, e.seq, false);
    return true;
}

void
Processor::processPendingFills()
{
    for (auto it = pending_srl_fills_.begin();
         it != pending_srl_fills_.end();) {
        DynUop *d = find(*it);
        if (!d || !d->srl_slot_reserved || !d->completed()) {
            it = pending_srl_fills_.erase(it); // squashed meanwhile
            tick_progress_ = true;
            continue;
        }
        const lsq::SrlEntry *e = srl_->peekSlot(d->store_id.index);
        if (!e || e->seq != d->uop.seq || e->data_valid) {
            it = pending_srl_fills_.erase(it);
            tick_progress_ = true;
            continue;
        }
        if (lcf_ &&
            !lcf_->storeInserted(d->uop.effAddr, d->store_id.index)) {
            ++it; // LCF saturated: retry next cycle
            continue;
        }
        srl_->fillDependent(d->store_id, d->uop.effAddr,
                            d->uop.memSize, d->uop.storeData);
        it = pending_srl_fills_.erase(it);
        tick_progress_ = true;
    }
}

void
Processor::drainStores()
{
    switch (config_.model) {
      case StqModel::kMonolithic:
        drainConventionalHead();
        break;
      case StqModel::kHierarchical:
        drainHierarchical();
        break;
      case StqModel::kSrl:
        processPendingFills();
        drainSrlHead();
        moveStqHeadToSrl();
        break;
    }
}

// --------------------------------------------------------------------
// Commit
// --------------------------------------------------------------------

void
Processor::commit()
{
    while (ckpts_.oldestCommittable() &&
           undrained_[ckpts_.oldest().id] == 0) {
        tick_progress_ = true;
        const cfp::Checkpoint c = ckpts_.commitOldest();
        DTRACE(kCommit,
               "cycle %llu: bulk commit checkpoint %u (%llu uops from "
               "seq %llu)",
               (unsigned long long)now_, c.id,
               (unsigned long long)c.allocated,
               (unsigned long long)c.first_seq);

        if (probe_)
            probe_->emit(obs::makeEvent(
                now_, obs::EventKind::kCommit,
                obs::Structure::kCheckpoint, c.first_seq, c.allocated,
                c.id));
        spec_mem_->commitCheckpoint(c.id);
        hier_->l1().commitCheckpoint(c.id);
        if (load_buffer_)
            load_buffer_->clearCheckpoint(c.id);

        // Retire this checkpoint's uops from the window front.
        SeqNum last = 0;
        std::uint64_t n = 0;
        while (!window_.empty() && window_.front().ckpt == c.id) {
            DynUop &d = window_.front();
            panic_if(!d.completed(),
                     "committing incomplete uop %llu",
                     static_cast<unsigned long long>(d.uop.seq));
            last = d.uop.seq;
            ++stats_.committed_uops;
            if (d.uop.isLoad()) {
                ++stats_.committed_loads;
                if (hook_)
                    hook_(d.uop.seq, d.uop.effAddr, d.uop.memSize,
                          d.load_value);
            }
            if (d.uop.isStore()) {
                ++stats_.committed_stores;
                store_sets_->storeRetired(d.uop.seq);
            }
            window_.pop_front();
            ++window_base_;
            panic_if(alloc_index_ == 0, "alloc index underflow");
            --alloc_index_;
            ++n;
        }
        panic_if(n != c.allocated,
                 "checkpoint %u committed %llu of %llu uops", c.id,
                 static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(c.allocated));
        if (lq_)
            lq_->commitUpTo(last);
        last_commit_cycle_ = now_;
    }
}

// --------------------------------------------------------------------
// Recovery
// --------------------------------------------------------------------

void
Processor::handleViolation(const lsq::LoadViolation &v, SeqNum store_seq,
                           bool snoop)
{
    DTRACE(kLoadBuffer,
           "cycle %llu: %s violation: load seq %llu restarts ckpt %u",
           (unsigned long long)now_, snoop ? "snoop" : "memory-order",
           (unsigned long long)v.load_seq, v.ckpt);
    if (snoop) {
        ++stats_.snoop_violations;
    } else {
        ++stats_.mem_violations;
        const DynUop *ld = find(v.load_seq);
        const DynUop *st =
            store_seq != kInvalidSeqNum ? find(store_seq) : nullptr;
        if (ld && st)
            store_sets_->trainViolation(ld->uop.pc, st->uop.pc);
    }
    rollbackToCheckpoint(v.ckpt);
}

void
Processor::beginRedoPhase()
{
    fc_->discardAll();
    if (!config_.srl.use_fwd_cache)
        hier_->l1().squashCheckpoint(kTempCkpt);
    redo_mode_ = !srl_->empty();
}

void
Processor::rollbackToCheckpoint(CheckpointId target)
{
    ++rollback_epoch_;
    tick_progress_ = true;
    // Wholesale wakeup-state reset: squashed waiters would otherwise
    // leave dangling chain links through surviving producers.
    resetWakeState();
    DTRACE(kRollback, "cycle %llu: rollback to checkpoint %u",
           (unsigned long long)now_, target);

    // Collect the checkpoint slots being reset (the target itself plus
    // everything younger).
    const SeqNum target_first = ckpts_.find(target)->first_seq;
    std::vector<CheckpointId> squashed;
    for (CheckpointId id = 0;
         id < 2 * config_.checkpoints.num_checkpoints; ++id) {
        const cfp::Checkpoint *c = ckpts_.find(id);
        if (c && c->first_seq >= target_first) {
            squashed.push_back(id);
            if (probe_ && id != target)
                probe_->emit(obs::makeEvent(
                    now_, obs::EventKind::kCkptReclaim,
                    obs::Structure::kCheckpoint, c->first_seq, 0, id));
        }
    }

    const cfp::Checkpoint restored = ckpts_.rollbackTo(target);
    const SeqNum boundary = restored.first_seq;
    if (probe_)
        probe_->emit(obs::makeEvent(
            now_, obs::EventKind::kCkptRollback,
            obs::Structure::kCheckpoint, boundary, 0, target));
    rename_ = restored.map;

    // Squash every structure past the boundary. squashAfter(keep)
    // removes seq > keep, so boundary 0 (squash everything, including
    // seq 0) needs explicit clears.
    if (boundary == 0) {
        stq_->clear();
        if (l2_stq_) {
            l2_stq_->clear();
            mtb_->clear();
        }
        if (srl_) {
            srl_->clear();
            if (lcf_)
                lcf_->clear();
        }
        if (load_buffer_)
            load_buffer_->clear();
        if (lq_)
            lq_->clear();
        fence_.clear();
        sdb_.clear();
    } else {
        const SeqNum keep = boundary - 1;
        stq_->squashAfter(keep);
        if (l2_stq_) {
            for (const auto &e : l2_stq_->squashAfter(keep)) {
                if (e.addr_valid)
                    mtb_->decrement(e.addr);
            }
        }
        if (srl_) {
            for (const auto &e : srl_->squashAfter(keep)) {
                if (lcf_ && e.data_valid)
                    lcf_->storeRemoved(e.addr);
            }
        }
        if (load_buffer_)
            load_buffer_->squashAfter(keep);
        if (lq_)
            lq_->squashAfter(keep);
        fence_.squashAfter(keep);
        sdb_.squashAfter(keep);
    }
    if (fc_) {
        fc_->discardAll();
        if (!config_.srl.use_fwd_cache)
            hier_->l1().squashCheckpoint(kTempCkpt);
    }
    spec_mem_->rollback(boundary);
    for (const CheckpointId id : squashed) {
        hier_->l1().squashCheckpoint(id);
        undrained_[id] = 0;
    }

    // Reset all squashed uops for re-execution.
    bool rewound_ids = false;
    for (std::size_t i = boundary - window_base_; i < window_.size();
         ++i) {
        DynUop &d = window_[i];
        if (d.state == UopState::kInScheduler) {
            releaseSchedulerSlot(d);
            releaseRegister(d);
        } else if (d.state == UopState::kIssued) {
            releaseRegister(d);
        }
        if (d.pending_mem_miss) {
            d.pending_mem_miss = false;
            panic_if(outstanding_mem_misses_ == 0,
                     "mem miss count underflow on squash");
            --outstanding_mem_misses_;
        }
        if (d.uop.isStore()) {
            if (!rewound_ids && !lsq::isNullStoreId(d.store_id)) {
                store_ids_.rewind(d.store_id);
                rewound_ids = true;
            }
            if (d.undrained_counted && !d.drained) {
                panic_if(inflight_stores_ == 0,
                         "inflight store count underflow");
                --inflight_stores_;
            }
            store_sets_->storeRetired(d.uop.seq);
        }
        ++d.generation;
        d.state = UopState::kWaitAlloc;
        d.ckpt = kInvalidCheckpoint;
        d.poisoned = false;
        d.in_stq = false;
        d.drained = false;
        d.undrained_counted = false;
        d.srl_slot_reserved = false;
        d.via_srl = false;
        d.lq_tracked = false;
        d.store_id = lsq::kNullStoreId;
        d.nearest_id = lsq::kNullStoreId;
        d.fwd_store_seq = kInvalidSeqNum;
        d.fwd_store_id = lsq::kNullStoreId;
        d.src1_prod = kInvalidSeqNum;
        d.src2_prod = kInvalidSeqNum;
        d.memdep_prod = kInvalidSeqNum;
        d.complete_cycle = kInvalidCycle;
        // A replayed branch was already trained: model it as correctly
        // predicted the second time.
        d.mispredicted = false;
    }

    // Rebuild scheduler membership around the survivors.
#ifdef SRLSIM_ISSUE_SCAN_CHECK
    for (auto &list : scan_list_) {
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](SeqNum s) { return s >= boundary; }),
                   list.end());
    }
#endif
    rebuildSchedulerQueues();

    // Unblock fetch if the blocking branch was squashed.
    if (fetch_block_branch_ != kInvalidSeqNum &&
        fetch_block_branch_ >= boundary) {
        fetch_block_branch_ = kInvalidSeqNum;
        fetch_resume_ = now_;
    }

    alloc_index_ = boundary - window_base_;
}

// --------------------------------------------------------------------
// Snoops
// --------------------------------------------------------------------

void
Processor::injectSnoop(Addr addr, unsigned size, std::uint64_t data)
{
    DTRACE(kSnoop, "cycle %llu: external store %#llx size %u",
           (unsigned long long)now_, (unsigned long long)addr, size);
    tick_progress_ = true;
    mem_->write(addr, size, data);
    hier_->snoopInvalidate(addr);

    std::optional<lsq::LoadViolation> v;
    if (load_buffer_) {
        v = load_buffer_->snoopCheck(addr,
                                     static_cast<std::uint8_t>(size));
    } else if (lq_) {
        v = lq_->snoopCheck(addr, static_cast<std::uint8_t>(size));
    }
    if (v)
        handleViolation(*v, kInvalidSeqNum, true);
}

// --------------------------------------------------------------------
// Top level
// --------------------------------------------------------------------

void
Processor::tick()
{
    tick_progress_ = false;
    processEvents();

    if (slice_active_ && sdb_.empty())
        slice_active_ = false;

    // End of stream: close the final checkpoint region so it can
    // commit (no younger checkpoint will ever open it otherwise).
    if (stream_done_ && alloc_index_ == window_.size() && sdb_.empty())
        ckpts_.closeYoungest();

    commit();
    drainStores();
    allocate();
    issue();
    fetch();

#ifdef SRLSIM_ISSUE_SCAN_CHECK
    verifySchedulerCoherence();
#endif

    if (srl_)
        srl_occupancy_.observe(srl_->size(), 1);

    if (sampler_)
        sampler_->tick(now_);

    // Synthetic multiprocessor traffic: external stores snoop the
    // load-tracking structures (Section 3).
    if (config_.snoop_rate > 0.0 &&
        snoop_rng_.chance(config_.snoop_rate)) {
        const Addr addr = workloadSnoopAddr();
        injectSnoop(addr, 8, 0xE0E0'0000'0000'0000ull |
                                 ++snoop_payload_);
    }

    ++now_;
    ++stats_.cycles;

    if (now_ - last_commit_cycle_ > config_.watchdog_cycles) {
        std::fprintf(stderr,
                     "watchdog state: window %zu sdb %zu stq %zu srl "
                     "%zu alloc %zu misses %u fence-out %zu\n",
                     window_.size(), sdb_.size(), stq_->size(),
                     srl_ ? srl_->size() : 0, alloc_index_,
                     outstanding_mem_misses_,
                     fence_.outstandingLoads());
        if (!sdb_.empty()) {
            const auto &h = sdb_.front();
            const DynUop *d = find(h.uop.seq);
            std::fprintf(stderr,
                         "sdb head: %s p1=%lld p2=%lld md=%lld\n",
                         h.uop.toString().c_str(),
                         d ? (long long)d->src1_prod : -1,
                         d ? (long long)d->src2_prod : -1,
                         d ? (long long)d->memdep_prod : -1);
            auto show = [&](SeqNum p) {
                if (p == kInvalidSeqNum)
                    return;
                const DynUop *x = find(p);
                std::fprintf(stderr,
                             "  producer %llu state=%u poisoned=%d "
                             "pendmiss=%d: %s\n",
                             (unsigned long long)p,
                             x ? (unsigned)x->state : 99,
                             x ? x->poisoned : 0,
                             x ? x->pending_mem_miss : 0,
                             x ? x->uop.toString().c_str() : "?");
            };
            if (d) {
                show(d->src1_prod);
                show(d->src2_prod);
                show(d->memdep_prod);
            }
        }
        if (srl_ && !srl_->empty()) {
            const auto &h = srl_->head();
            const DynUop *d = find(h.seq);
            std::fprintf(stderr,
                         "srl head: seq=%llu dep=%d dv=%d state=%u\n",
                         (unsigned long long)h.seq, h.dependent,
                         h.data_valid, d ? (unsigned)d->state : 99);
        }
        if (!stq_->empty()) {
            const auto &h = stq_->head();
            const DynUop *d = find(h.seq);
            std::fprintf(stderr,
                         "stq head: seq=%llu av=%d dv=%d po=%d "
                         "state=%u\n",
                         (unsigned long long)h.seq, h.addr_valid,
                         h.data_valid, h.poisoned,
                         d ? (unsigned)d->state : 99);
        }
        std::fprintf(stderr,
                     "rf int %u/%u fp %u/%u; sched %u/%u/%u "
                     "(ready %zu/%zu/%zu)\n",
                     rf_used_int_, config_.regs_int, rf_used_fp_,
                     config_.regs_fp, sched_count_[0], sched_count_[1],
                     sched_count_[2], ready_[0].size(),
                     ready_[1].size(), ready_[2].size());
        for (unsigned c = 0; c < 3; ++c) {
            for (std::size_t i = 0;
                 i < std::min<std::size_t>(ready_[c].size(), 3); ++i) {
                const DynUop *d = find(ready_[c][i].seq);
                std::fprintf(stderr, "ready[%u][%zu]: %s", c, i,
                             d ? d->uop.toString().c_str() : "?");
                if (d) {
                    std::fprintf(
                        stderr, " p1=%lld p2=%lld md=%lld poisrc=%d",
                        (long long)d->src1_prod, (long long)d->src2_prod,
                        (long long)d->memdep_prod, sourcesPoisoned(*d));
                }
                std::fprintf(stderr, "\n");
            }
        }
        panic("watchdog: no commit for %llu cycles at cycle %llu",
              static_cast<unsigned long long>(config_.watchdog_cycles),
              static_cast<unsigned long long>(now_));
    }
}

bool
Processor::done() const
{
    return stream_done_ && window_.empty();
}

// --------------------------------------------------------------------
// Quiescence skip-ahead
// --------------------------------------------------------------------

bool
Processor::canSkipIdle() const
{
    // A per-cycle sampler observes gauges every cycle, and the snoop
    // source rolls its RNG every cycle: both make every cycle
    // observable-distinct, so neither run may skip.
    return config_.skip_ahead && !sampler_ && config_.snoop_rate <= 0.0;
}

Processor::IdleCounters
Processor::captureIdleCounters() const
{
    IdleCounters c;
    c.stall_ckpt = stats_.stall_ckpt;
    c.stall_stq = stats_.stall_stq;
    c.stall_lq = stats_.stall_lq;
    c.stall_sdb = stats_.stall_sdb;
    c.stall_sched = stats_.stall_sched;
    c.stall_rf = stats_.stall_rf;
    c.drain_block_head = stats_.drain_block_head;
    c.drain_block_fence = stats_.drain_block_fence;
    c.temp_update_stalls = stats_.temp_update_stalls;
    c.ckpt_create_stalls = ckpts_.createStalls.value();
    c.stq_alloc_fails = stq_->allocFails.value();
    c.lcf_overflows = lcf_ ? lcf_->overflows.value() : 0;
    c.srl_indexed_reads = srl_ ? srl_->indexedReads.value() : 0;
    c.fence_drain_blocked = fence_.drainBlocked.value();
    c.ss_accesses = store_sets_->accesses();
    c.ss_predictions = store_sets_->predictions.value();
    c.ss_deps = store_sets_->dependencesPredicted.value();
    return c;
}

void
Processor::skipQuiescentCycles(const IdleCounters &before,
                               std::uint64_t max_cycles)
{
    // The tick just executed changed nothing but the stall counters
    // snapshotted in @p before: until an external wakeup arrives the
    // machine would repeat it verbatim. Find the earliest wakeup and
    // replay the per-cycle counter deltas across the gap instead.
    //
    // Wakeup sources, all conservative (skipping less is always safe):
    //  - the event heap (execution completions, miss returns);
    //  - fetch_resume_ (branch redirect penalty elapsing);
    //  - the commit watchdog (so a hang panics at the same cycle);
    //  - the run() cycle limit;
    //  - the store-sets periodic-clear boundary (its access counter
    //    advances per replayed cycle and must not cross a clear).
    Cycle wake = last_commit_cycle_ + config_.watchdog_cycles;
    if (!events_.empty())
        wake = std::min(wake, events_.top().cycle);
    // <= not <: the quiescent tick ran at now_ - 1, so fetch_resume_ ==
    // now_ means the redirect penalty expires on the very next tick.
    if (now_ <= fetch_resume_ && fetch_block_branch_ == kInvalidSeqNum)
        wake = std::min(wake, fetch_resume_);
    wake = std::min<Cycle>(wake, max_cycles);
    if (wake <= now_)
        return;
    std::uint64_t span = wake - now_;

    const IdleCounters after = captureIdleCounters();
    const std::uint64_t da = after.ss_accesses - before.ss_accesses;
    if (da > 0) {
        // Stay strictly below the next whole-table clear; the tick
        // that crosses it must execute for real.
        const std::uint64_t dist = store_sets_->accessesUntilClear();
        span = std::min(span, (dist - 1) / da);
        if (span == 0)
            return;
    }

    const auto delta = [span](std::uint64_t a, std::uint64_t b) {
        return (a - b) * span;
    };
    stats_.stall_ckpt += delta(after.stall_ckpt, before.stall_ckpt);
    stats_.stall_stq += delta(after.stall_stq, before.stall_stq);
    stats_.stall_lq += delta(after.stall_lq, before.stall_lq);
    stats_.stall_sdb += delta(after.stall_sdb, before.stall_sdb);
    stats_.stall_sched += delta(after.stall_sched, before.stall_sched);
    stats_.stall_rf += delta(after.stall_rf, before.stall_rf);
    stats_.drain_block_head +=
        delta(after.drain_block_head, before.drain_block_head);
    stats_.drain_block_fence +=
        delta(after.drain_block_fence, before.drain_block_fence);
    stats_.temp_update_stalls +=
        delta(after.temp_update_stalls, before.temp_update_stalls);
    ckpts_.createStalls +=
        delta(after.ckpt_create_stalls, before.ckpt_create_stalls);
    stq_->allocFails +=
        delta(after.stq_alloc_fails, before.stq_alloc_fails);
    if (lcf_)
        lcf_->overflows +=
            delta(after.lcf_overflows, before.lcf_overflows);
    if (srl_)
        srl_->indexedReads +=
            delta(after.srl_indexed_reads, before.srl_indexed_reads);
    fence_.drainBlocked +=
        delta(after.fence_drain_blocked, before.fence_drain_blocked);
    store_sets_->addIdleAccesses(
        da * span, delta(after.ss_predictions, before.ss_predictions),
        delta(after.ss_deps, before.ss_deps));
    if (srl_)
        srl_occupancy_.observe(srl_->size(), span);

    now_ += span;
    stats_.cycles += span;
    stats_.skipped_cycles += span;
}

const ProcessorStats &
Processor::run(std::uint64_t max_cycles)
{
    if (!canSkipIdle()) {
        while (!done() && now_ < max_cycles)
            tick();
        return stats_;
    }
    while (!done() && now_ < max_cycles) {
        const IdleCounters before = captureIdleCounters();
        tick();
#ifdef SRLSIM_SKIP_CHECK
        if (!tick_progress_) {
            Cycle wake = last_commit_cycle_ + config_.watchdog_cycles;
            if (!events_.empty())
                wake = std::min(wake, events_.top().cycle);
            if (now_ <= fetch_resume_ &&
                fetch_block_branch_ == kInvalidSeqNum)
                wake = std::min(wake, fetch_resume_);
            wake = std::min<Cycle>(wake, max_cycles);
            while (!done() && now_ < max_cycles && !tick_progress_) {
                const Cycle c = now_;
                tick();
                if (tick_progress_ && c < wake) {
                    std::fprintf(
                        stderr,
                        "SKIPBUG: progress at cycle %llu, wake %llu "
                        "(events %zu, fetch_resume %llu, blockbr %llu, "
                        "win %zu alloc %zu stq %zu sdb %zu srl %zu)\n",
                        (unsigned long long)c, (unsigned long long)wake,
                        events_.size(),
                        (unsigned long long)fetch_resume_,
                        (unsigned long long)fetch_block_branch_,
                        window_.size(), (std::size_t)alloc_index_,
                        stq_->size(), sdb_.size(),
                        srl_ ? srl_->size() : 0);
                    std::abort();
                }
            }
        }
#else
        if (!tick_progress_)
            skipQuiescentCycles(before, max_cycles);
#endif
    }
    return stats_;
}

void
Processor::attachProbeBus(obs::ProbeBus *bus)
{
    probe_ = bus;
    if (srl_)
        srl_->setProbe(bus, &now_);
    if (lcf_)
        lcf_->setProbe(bus, &now_);
    if (fc_)
        fc_->setProbe(bus, &now_);
    if (load_buffer_)
        load_buffer_->setProbe(bus, &now_);
    hier_->setProbe(bus, &now_);
}

void
Processor::attachSampler(obs::CounterSampler *sampler)
{
    sampler_ = sampler;
    if (!sampler)
        return;
    sampler->addGauge("window", [this] {
        return static_cast<std::uint64_t>(window_.size());
    });
    sampler->addGauge("sched", [this] {
        return static_cast<std::uint64_t>(
            sched_count_[0] + sched_count_[1] + sched_count_[2]);
    });
    sampler->addGauge("stq", [this] {
        return static_cast<std::uint64_t>(stq_->size());
    });
    sampler->addGauge("sdb", [this] {
        return static_cast<std::uint64_t>(sdb_.size());
    });
    sampler->addGauge("checkpoints", [this] {
        return static_cast<std::uint64_t>(ckpts_.liveCount());
    });
    sampler->addGauge("outstanding_misses", [this] {
        return static_cast<std::uint64_t>(outstanding_mem_misses_);
    });
    if (srl_) {
        sampler->addGauge("srl", [this] {
            return static_cast<std::uint64_t>(srl_->size());
        });
    }
    if (lcf_) {
        sampler->addGauge("lcf_nonzero", [this] {
            return static_cast<std::uint64_t>(
                lcf_->nonzeroCounters());
        });
    }
    if (fc_) {
        sampler->addGauge("fc_live", [this] {
            return static_cast<std::uint64_t>(fc_->liveEntries());
        });
    }
    if (load_buffer_) {
        sampler->addGauge("load_buffer", [this] {
            return static_cast<std::uint64_t>(
                load_buffer_->liveEntries());
        });
    }
    if (l2_stq_) {
        sampler->addGauge("l2_stq", [this] {
            return static_cast<std::uint64_t>(l2_stq_->size());
        });
    }
}

Addr
Processor::workloadSnoopAddr()
{
    // Hot-region word addresses: the region every suite touches, so
    // snoops actually collide with in-flight loads.
    return 0x1000'0000 + snoop_rng_.below(448) * 64 +
           snoop_rng_.below(8) * 8;
}

std::string
Processor::formatStats() const
{
    stats::StatGroup g("processor." + config_.name);

    // Pipeline-level values (doubles so StatGroup can reference them).
    // Reserved up front: StatGroup keeps raw pointers into the vector,
    // so it must never reallocate while the groups are alive.
    std::vector<double> vals;
    vals.reserve(64);
    auto add = [&](const char *name, double v, const char *desc) {
        vals.push_back(v);
        g.registerValue(name, &vals.back(), desc);
    };
    add("cycles", static_cast<double>(stats_.cycles), "elapsed cycles");
    add("committed_uops", static_cast<double>(stats_.committed_uops),
        "architecturally committed micro-ops");
    add("ipc", stats_.ipc(), "committed uops per cycle");
    add("committed_loads", static_cast<double>(stats_.committed_loads),
        "committed loads");
    add("committed_stores",
        static_cast<double>(stats_.committed_stores),
        "committed stores");
    add("mem_misses", static_cast<double>(stats_.mem_misses),
        "loads serviced by main memory");
    add("slice_uops", static_cast<double>(stats_.slice_uops),
        "uops that drained into the SDB");
    add("poisoned_stores", static_cast<double>(stats_.poisoned_stores),
        "miss-dependent stores");
    add("redone_stores", static_cast<double>(stats_.redone_stores),
        "stores drained through the SRL");
    add("srl_stalled_loads",
        static_cast<double>(stats_.srl_stalled_loads),
        "loads that stalled on the SRL");
    add("indexed_forwards",
        static_cast<double>(stats_.indexed_forwards),
        "loads served by LCF indexed forwarding");
    add("mem_violations", static_cast<double>(stats_.mem_violations),
        "memory-dependence violations");
    add("snoop_violations",
        static_cast<double>(stats_.snoop_violations),
        "external-snoop ordering violations");
    add("overflow_violations",
        static_cast<double>(stats_.overflow_violations),
        "load-buffer overflow violations");
    add("branch_mispredicts",
        static_cast<double>(stats_.branch_mispredicts),
        "mispredicted branches");
    add("rollbacks",
        static_cast<double>(ckpts_.rollbacks.value()),
        "checkpoint rollbacks");
    add("checkpoints_committed",
        static_cast<double>(ckpts_.committed.value()),
        "bulk-committed checkpoints");

    std::string out = g.format();

    stats::StatGroup lsu("lsu." + config_.name);
    lsu.registerScalar("l1stq.searches", &stq_->searches,
                       "L1 STQ CAM searches");
    lsu.registerScalar("l1stq.entries_searched",
                       &stq_->entriesSearched,
                       "L1 STQ CAM cells activated");
    lsu.registerScalar("l1stq.forwards", &stq_->forwards,
                       "L1 STQ store-to-load forwards");
    lsu.registerScalar("l1stq.blocks", &stq_->blocks,
                       "loads blocked by L1 STQ conflicts");
    if (l2_stq_) {
        lsu.registerScalar("l2stq.searches", &l2_stq_->searches,
                           "L2 STQ CAM searches");
        lsu.registerScalar("l2stq.forwards", &l2_stq_->forwards,
                           "L2 STQ forwards");
    }
    if (srl_) {
        lsu.registerScalar("srl.pushes", &srl_->pushes,
                           "stores entering the SRL");
        lsu.registerScalar("srl.dependent_pushes",
                           &srl_->dependentPushes,
                           "reserved (dependent) SRL slots");
        lsu.registerScalar("srl.drains", &srl_->drains,
                           "SRL cache re-updates");
        lsu.registerScalar("srl.indexed_reads", &srl_->indexedReads,
                           "indexed SRL slot reads");
    }
    if (lcf_) {
        lsu.registerScalar("lcf.checks", &lcf_->checks,
                           "LCF load-side checks");
        lsu.registerScalar("lcf.hits", &lcf_->hits,
                           "LCF non-zero counters seen");
        lsu.registerScalar("lcf.overflows", &lcf_->overflows,
                           "LCF counter saturations");
    }
    if (fc_) {
        lsu.registerScalar("fc.updates", &fc_->updates,
                           "forwarding-cache store updates");
        lsu.registerScalar("fc.lookups", &fc_->lookups,
                           "forwarding-cache load lookups");
        lsu.registerScalar("fc.hits", &fc_->hits,
                           "forwarding-cache hits");
        lsu.registerScalar("fc.live_evictions", &fc_->liveEvictions,
                           "live forwarding-cache evictions");
    }
    if (load_buffer_) {
        lsu.registerScalar("ldbuf.inserts", &load_buffer_->inserts,
                           "secondary load buffer inserts");
        lsu.registerScalar("ldbuf.set_lookups",
                           &load_buffer_->setLookups,
                           "set lookups by stores/snoops");
        lsu.registerScalar("ldbuf.violations",
                           &load_buffer_->violationsFlagged,
                           "violations flagged");
        lsu.registerScalar("ldbuf.overflows",
                           &load_buffer_->overflows,
                           "set overflows");
    }
    if (lq_) {
        lsu.registerScalar("ldq.cam_searches", &lq_->camSearches,
                           "conventional LQ CAM searches");
        lsu.registerScalar("ldq.cam_entries",
                           &lq_->camEntriesSearched,
                           "conventional LQ CAM cells activated");
        lsu.registerScalar("ldq.violations", &lq_->violations,
                           "LQ violations");
    }
    out += lsu.format();

    stats::StatGroup mem("memory." + config_.name);
    mem.registerScalar("l1d.hits", &hier_->l1().hits, "L1D hits");
    mem.registerScalar("l1d.misses", &hier_->l1().misses,
                       "L1D misses");
    mem.registerScalar("l1d.writebacks", &hier_->l1().writebacks,
                       "L1D writebacks");
    mem.registerScalar("l2.hits", &hier_->l2().hits, "L2 hits");
    mem.registerScalar("l2.misses", &hier_->l2().misses, "L2 misses");
    mem.registerScalar("mshr.merges", &hier_->mshrMerges,
                       "misses merged into in-flight fills");
    mem.registerScalar("mshr.full_events", &hier_->mshrFullEvents,
                       "load retries due to MSHR exhaustion");
    mem.registerScalar("store_drains", &hier_->storeDrains,
                       "stores drained to the cache");
    out += mem.format();
    return out;
}

} // namespace core
} // namespace srl
