/**
 * @file
 * The latency-tolerant processor model: a Continual Flow Pipeline on a
 * Checkpoint Processing and Recovery substrate (paper Section 2),
 * parameterized by the store-queue organization under evaluation
 * (config.hh StqModel).
 *
 * The model is trace-driven and cycle-stepped with an event heap for
 * execution completions. It is *functional over memory*: stores carry
 * real data through the modeled queues (L1 STQ, SRL, forwarding cache,
 * hierarchical L2 STQ), loads read real values along the exact path the
 * hardware would use, speculative drained data lives in a checkpointed
 * overlay, and memory-ordering violations trigger true checkpoint
 * rollback and re-execution. Final committed state is therefore
 * comparable against an in-order reference executor — that comparison
 * is the backbone of the test suite.
 *
 * Per-cycle phase order: complete -> commit -> drain -> allocate
 * (slice re-insertion has priority over new fetch) -> issue -> fetch.
 */

#ifndef SRLSIM_CORE_PROCESSOR_HH
#define SRLSIM_CORE_PROCESSOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "cfp/checkpoint.hh"
#include "cfp/rename.hh"
#include "cfp/sdb.hh"
#include "common/random.hh"
#include "common/ready_queue.hh"
#include "common/ring_window.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/spec_mem.hh"
#include "isa/uop.hh"
#include "lsq/counting_bloom.hh"
#include "lsq/fwd_cache.hh"
#include "lsq/lcf.hh"
#include "lsq/load_buffer.hh"
#include "lsq/load_queue.hh"
#include "lsq/order_fence.hh"
#include "lsq/srl.hh"
#include "lsq/store_id.hh"
#include "lsq/store_queue.hh"
#include "memsys/hierarchy.hh"
#include "memsys/main_memory.hh"
#include "obs/probe.hh"
#include "obs/sampler.hh"
#include "predictor/branch.hh"
#include "predictor/store_sets.hh"

namespace srl
{
namespace core
{

struct SimState;

/** Pseudo-checkpoint id marking temporary in-D$ updates (Fig. 10 mode). */
inline constexpr CheckpointId kTempCkpt = 254;

/** Lifecycle of an in-flight dynamic uop. */
enum class UopState : std::uint8_t
{
    kWaitAlloc,   ///< fetched, waiting for allocate (or re-allocate)
    kInScheduler, ///< holds a scheduling-window slot
    kIssued,      ///< executing; a completion event is pending
    kInSlice,     ///< drained into the SDB (miss-dependent)
    kCompleted,   ///< execution done (stores may still await drain)
};

/** Scheduler class of a uop. */
enum class SchedClass : std::uint8_t { kInt, kFp, kMem };

/** Per-uop dynamic bookkeeping (lives in the in-flight window). */
struct DynUop
{
    isa::Uop uop;
    UopState state = UopState::kWaitAlloc;
    CheckpointId ckpt = kInvalidCheckpoint;
    std::uint32_t generation = 0; ///< bumped on squash; stale events die
    unsigned passes = 0;          ///< SDB round trips

    // Dependences resolved at allocate.
    SeqNum src1_prod = kInvalidSeqNum;
    SeqNum src2_prod = kInvalidSeqNum;
    SeqNum memdep_prod = kInvalidSeqNum; ///< store-sets predicted store

    bool poisoned = false; ///< result unavailable pending a memory miss
    Cycle complete_cycle = kInvalidCycle; ///< kept beside state/poisoned:
                                          ///< producer checks read all
                                          ///< three per lookup

    // Store state.
    lsq::StoreId store_id = lsq::kNullStoreId;
    bool srl_slot_reserved = false;
    bool in_stq = false;
    bool drained = false;
    bool undrained_counted = false; ///< counted in per-ckpt drain gate
    bool via_srl = false;        ///< drained through the SRL (redone)
    bool was_poisoned_store = false;

    // Load state.
    lsq::StoreId nearest_id = lsq::kNullStoreId;
    SeqNum fwd_store_seq = kInvalidSeqNum;
    lsq::StoreId fwd_store_id = lsq::kNullStoreId;
    std::uint64_t load_value = 0;
    bool pending_mem_miss = false;
    bool lq_tracked = false;
    bool counted_srl_stall = false;
    bool counted_slice = false;

    /** Allocator abs position when this uop (re)allocated: bounds
     * live StoreId spans for the wrap-around compare. */
    std::uint64_t alloc_store_abs = 0;

    // Branch state.
    bool mispredicted = false;
    bool branch_counted = false; ///< predictor consulted already

    // Scheduler sleep/wakeup bookkeeping (pure performance state: a
    // blocked scheduler entry leaves the per-class ready queue until a
    // producer it sleeps on completes or becomes poisoned, which are
    // the only transitions that can change its issue outcome). Links
    // form one intrusive LIFO chain per producer, one slot per source
    // operand (0 = src1, 1 = src2, 2 = memdep). The ticket is the
    // entry's position in legacy scan order (see common/ready_queue.hh)
    // and is reassigned every time the uop (re)enters a scheduler.
    std::uint64_t sched_ticket = 0;
    bool sched_sleep = false;
    /** Source checks passed once; sticky until the next scheduler
     * (re)entry. Completed producers never regress or re-poison
     * within a rollback epoch, so "all sources ready" is monotonic
     * and repeat issue-loop visits (port starvation, structural
     * stalls) can skip the per-producer window lookups. */
    bool src_resolved = false;
    bool wait_linked[3] = {false, false, false};
    SeqNum wait_next[3] = {kInvalidSeqNum, kInvalidSeqNum,
                           kInvalidSeqNum};
    std::uint8_t wait_next_slot[3] = {0, 0, 0};
    SeqNum first_waiter = kInvalidSeqNum;
    std::uint8_t first_waiter_slot = 0;

    bool completed() const { return state == UopState::kCompleted; }
};

/** Aggregate run statistics surfaced to harnesses. */
struct ProcessorStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committed_uops = 0;
    std::uint64_t committed_loads = 0;
    std::uint64_t committed_stores = 0;

    std::uint64_t slice_uops = 0;       ///< uops that drained to the SDB
    std::uint64_t poisoned_stores = 0;  ///< miss-dependent stores
    std::uint64_t redone_stores = 0;    ///< stores drained via the SRL
    std::uint64_t srl_stalled_loads = 0; ///< loads that stalled on the SRL
    std::uint64_t indexed_forwards = 0;
    std::uint64_t mem_violations = 0;
    std::uint64_t snoop_violations = 0;
    std::uint64_t overflow_violations = 0;
    std::uint64_t branch_mispredicts = 0;
    std::uint64_t mem_misses = 0;
    std::uint64_t fc_writebacks = 0;   ///< Fig. 10 mode dirty writebacks
    std::uint64_t redo_phase_misses = 0;
    std::uint64_t temp_update_stalls = 0;

    // Allocation-stall attribution (cycles the front of the allocate
    // stage was blocked, by resource).
    std::uint64_t stall_ckpt = 0;
    std::uint64_t stall_stq = 0;
    std::uint64_t stall_lq = 0;
    std::uint64_t stall_sdb = 0;
    std::uint64_t stall_sched = 0;
    std::uint64_t stall_rf = 0;

    // SRL drain-blockage attribution (cycles).
    std::uint64_t miss_hot = 0, miss_warm = 0, miss_cold = 0,
                  miss_stream = 0; ///< memory misses by address region
    std::uint64_t drain_block_head = 0;  ///< head entry has no data yet
    std::uint64_t drain_block_fence = 0; ///< older load not yet executed
    std::uint64_t drain_block_line = 0;  ///< speculative-line conflict

    /**
     * Host-side diagnostic, not a model statistic: cycles the clock
     * jumped over via quiescence skip-ahead (always 0 with skipping
     * off). The only stats field allowed to differ between a skip-on
     * and a skip-off run of the same workload.
     */
    std::uint64_t skipped_cycles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed_uops) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

class Processor
{
  public:
    /** Called at commit for every load: (seq, addr, size, value). */
    using LoadCommitHook =
        std::function<void(SeqNum, Addr, unsigned, std::uint64_t)>;

    Processor(const ProcessorConfig &config, isa::UopStream &stream);

    /**
     * Adopting constructor for sampled runs: run a detailed segment
     * against persistent simulator state (memory image, caches,
     * predictors, snoop RNG) owned by @p state instead of fresh
     * instances. The segment starts with an empty pipeline at cycle 0;
     * @p start_seq is the sequence number of the first uop the stream
     * will deliver (uops consumed by fast-forwarding keep global
     * numbering). Cycle-keyed hierarchy state (MSHRs) is reset — at a
     * drained segment boundary every outstanding fill has logically
     * completed. Call exportState() after run() to write the snoop RNG
     * cursor back so the next segment continues the stream.
     */
    Processor(const ProcessorConfig &config, isa::UopStream &stream,
              SimState &state, SeqNum start_seq);

    ~Processor();

    /** Write per-segment persistent state (snoop RNG) back to @p state. */
    void exportState(SimState &state) const;

    /**
     * Run until the stream is exhausted and the window drains, or
     * until @p max_cycles elapse. @return final statistics.
     *
     * When config().skip_ahead allows it, quiescent stretches (ticks
     * that make no forward progress — typically deep in a memory-miss
     * shadow) are skipped event-driven: the clock jumps to the next
     * scheduled wakeup and the per-cycle stall counters are replayed
     * for the skipped span. Final state, statistics, and the probe
     * event stream are byte-identical to ticking every cycle.
     */
    const ProcessorStats &run(std::uint64_t max_cycles = ~0ull);

    /** Advance exactly one cycle (exposed for fine-grained tests). */
    void tick();

    /** True when the stream is done and the machine is empty. */
    bool done() const;

    /**
     * Inject an external (other-processor) store: updates main memory
     * directly, invalidates cached copies, and snoops the load
     * tracking structure (multiprocessor ordering, Section 3).
     */
    void injectSnoop(Addr addr, unsigned size, std::uint64_t data);

    void setLoadCommitHook(LoadCommitHook hook) { hook_ = std::move(hook); }

    const ProcessorStats &stats() const { return stats_; }
    const ProcessorConfig &config() const { return config_; }
    Cycle now() const { return now_; }

    memsys::MainMemory &mem() { return *mem_; }
    memsys::Hierarchy &hierarchyMut() { return *hier_; }
    const stats::Occupancy &srlOccupancy() const { return srl_occupancy_; }
    const lsq::StoreRedoLog *srlLog() const { return srl_.get(); }
    const lsq::StoreQueue &stq() const { return *stq_; }
    const lsq::StoreQueue *l2Stq() const { return l2_stq_.get(); }
    const lsq::LooseCheckFilter *lcf() const { return lcf_.get(); }
    const lsq::ForwardingCache *fwdCache() const { return fc_.get(); }
    const lsq::SecondaryLoadBuffer *loadBuffer() const
    {
        return load_buffer_.get();
    }
    const lsq::LoadQueue *loadQueue() const { return lq_.get(); }
    const memsys::Hierarchy &hierarchy() const { return *hier_; }
    const cfp::CheckpointManager &checkpoints() const { return ckpts_; }
    const predictor::BranchPredictor &branchPredictor() const
    {
        return *bpred_;
    }

    /**
     * Full statistics report: pipeline counters plus every structure's
     * activity counters, as an aligned text table (gem5-style dump).
     */
    std::string formatStats() const;

    /**
     * Attach an observability probe bus (null detaches). Forwards the
     * bus plus this processor's cycle counter to every instrumented
     * structure; core-side probe points fire through the same bus.
     * Costs one branch per probe point when detached.
     */
    void attachProbeBus(obs::ProbeBus *bus);

    /**
     * Attach a periodic occupancy sampler (null detaches). Registers
     * gauges for the window, schedulers, SRL, STQ, SDB, forwarding
     * cache, LCF, load buffer, checkpoints and outstanding misses; the
     * sampler's tick runs once per simulated cycle. The gauges capture
     * `this` — call CounterSampler::dropGauges() (or detach) before
     * the processor is destroyed if the sampler outlives it.
     */
    void attachSampler(obs::CounterSampler *sampler);

  private:
    /** Construct the per-segment pipeline structures (both ctors). */
    void initPipeline();

    // ----- pipeline phases -----
    void processEvents();
    void commit();
    void drainStores();
    void allocate();
    void issue();
    void fetch();

    // ----- scheduler sleep/wakeup helpers -----
    void sleepSchedEntry(DynUop &d);
    /**
     * Producer @p p finished: unlink every waiter and reinsert the
     * eligible ones into their ready queues. @p poison distinguishes a
     * poison wake (the producer drained into the slice or missed to
     * memory; waiters must be visited immediately so they can follow)
     * from a completion wake (waiters reinsert only once their last
     * linked producer finishes — an earlier visit would just re-sleep
     * them).
     */
    void wakeWaiters(DynUop &p, bool poison);
    void unlinkWaiter(DynUop &w);
    void resetWakeState();
    void schedulerPush(DynUop &d);
    void schedulerRemove(DynUop &d);
    void rebuildSchedulerQueues();
#ifdef SRLSIM_ISSUE_SCAN_CHECK
    void issueScan();
    void verifySchedulerCoherence() const;
#endif

    // ----- allocate helpers -----
    bool allocateOne(DynUop &d, bool reinsertion);
    bool resourcesFor(const DynUop &d, bool reinsertion) const;
    void resolveSources(DynUop &d);
    void enterSlice(DynUop &d, bool from_scheduler);
    bool tryReinsertSliceHead();

    // ----- issue helpers -----
    bool sourcesReady(const DynUop &d) const;
    bool sourcesPoisoned(const DynUop &d) const;
    enum class SourceStatus : std::uint8_t
    {
        kReady,
        kWait,
        kPoisoned,
    };
    SourceStatus sourceStatus(const DynUop &d) const;
    bool tryIssue(DynUop &d);
    bool issueLoad(DynUop &d);
    bool issueStore(DynUop &d);
    void scheduleCompletion(DynUop &d, Cycle when);

    // ----- load path -----
    enum class LoadRoute : std::uint8_t
    {
        kStqForward,
        kL2StqForward,
        kFcForward,
        kIndexedForward,
        kCache,
        kRetry, ///< structural/conflict stall; retry later
    };
    LoadRoute routeLoad(DynUop &d, std::uint64_t &value, Cycle &ready);

    // ----- store drain -----
    bool drainConventionalHead();
    bool drainHierarchical();
    bool moveStqHeadToSrl();
    bool drainSrlHead();
    void processPendingFills();
    bool drainStoreToCache(const SeqNum seq, CheckpointId ckpt, Addr addr,
                           std::uint8_t size, std::uint64_t data);
    void displaceToL2();

    // ----- completions -----
    void completeUop(DynUop &d);
    void completeLoad(DynUop &d);
    void completeStore(DynUop &d);

    // ----- recovery -----
    void handleViolation(const lsq::LoadViolation &v, SeqNum store_seq,
                         bool snoop);
    void rollbackToCheckpoint(CheckpointId target);
    void beginRedoPhase();

    // ----- quiescence skip-ahead -----
    /**
     * Snapshot of every counter a no-progress tick may bump. A
     * quiescent machine repeats such a tick identically until the next
     * wakeup, so run() replays the observed per-cycle deltas times the
     * skipped span instead of executing the cycles. Any state change
     * outside this set marks the tick as progress (tick_progress_) and
     * disqualifies it from skipping.
     */
    struct IdleCounters
    {
        std::uint64_t stall_ckpt, stall_stq, stall_lq, stall_sdb,
            stall_sched, stall_rf;
        std::uint64_t drain_block_head, drain_block_fence;
        std::uint64_t temp_update_stalls;
        std::uint64_t ckpt_create_stalls;
        std::uint64_t stq_alloc_fails;
        std::uint64_t lcf_overflows;
        std::uint64_t srl_indexed_reads;
        std::uint64_t fence_drain_blocked;
        std::uint64_t ss_accesses, ss_predictions, ss_deps;
    };
    bool canSkipIdle() const;
    IdleCounters captureIdleCounters() const;
    void skipQuiescentCycles(const IdleCounters &before,
                             std::uint64_t max_cycles);

    // ----- window access -----
    DynUop *find(SeqNum seq);
    const DynUop *find(SeqNum seq) const;
    bool inWindow(SeqNum seq) const;
    bool producerReady(SeqNum prod) const;
    bool producerPoisoned(SeqNum prod) const;

    Addr workloadSnoopAddr();
    void releaseSchedulerSlot(DynUop &d);
    void releaseRegister(DynUop &d);
    static SchedClass schedClassOf(const isa::Uop &u);

    // ----- members -----
    ProcessorConfig config_;
    isa::UopStream &stream_;
    bool stream_done_ = false;

    // Memory system and predictors. Raw pointers name the live
    // instances; the owned_* slots are populated only by the
    // standalone constructor. The adopting constructor points them at
    // a SimState's members instead, so architectural and
    // predictor state persists across sampled-run segments while the
    // pipeline structures below stay per-segment.
    memsys::MainMemory *mem_ = nullptr;
    memsys::Hierarchy *hier_ = nullptr;
    std::unique_ptr<SpeculativeMemory> spec_mem_;
    predictor::BranchPredictor *bpred_ = nullptr;
    predictor::StoreSets *store_sets_ = nullptr;
    std::unique_ptr<memsys::MainMemory> owned_mem_;
    std::unique_ptr<memsys::Hierarchy> owned_hier_;
    std::unique_ptr<predictor::BranchPredictor> owned_bpred_;
    std::unique_ptr<predictor::StoreSets> owned_store_sets_;

    // CPR / CFP.
    cfp::CheckpointManager ckpts_;
    cfp::RenameMap rename_;
    cfp::SliceDataBuffer sdb_;

    // Store path (model-dependent subset is instantiated).
    std::unique_ptr<lsq::StoreQueue> stq_;
    std::unique_ptr<lsq::StoreQueue> l2_stq_;        // hierarchical
    std::unique_ptr<lsq::CountingBloom> mtb_;        // hierarchical
    std::unique_ptr<lsq::StoreRedoLog> srl_;         // srl
    std::unique_ptr<lsq::LooseCheckFilter> lcf_;     // srl
    std::unique_ptr<lsq::ForwardingCache> fc_;       // srl (FC or D$ temp)
    std::unique_ptr<lsq::SecondaryLoadBuffer> load_buffer_; // srl
    std::unique_ptr<lsq::LoadQueue> lq_;             // conventional
    lsq::OrderFence fence_;
    lsq::StoreIdAllocator store_ids_;

    // In-flight window (replay buffer), indexed by seq - base. A
    // contiguous ring: every phase walks or indexes it each cycle, so
    // the layout is the hottest data path in the model.
    RingWindow<DynUop> window_;
    SeqNum window_base_ = 0;
    std::size_t alloc_index_ = 0; ///< next window index to allocate

    /**
     * Per-class ready queues: the awake scheduler entries, in legacy
     * scan order (ticket order). issue() walks only these; sleeping
     * entries are reachable solely through their producers' wakeup
     * chains, so a cycle's issue cost is O(ready), not O(window).
     */
    ReadyQueue ready_[3];
    unsigned sched_count_[3] = {0, 0, 0}; ///< occupancy incl. sleepers
    std::uint64_t next_ticket_ = 1;
#ifdef SRLSIM_ISSUE_SCAN_CHECK
    /** Legacy scheduler lists, kept only in cross-check builds so the
     * original O(window) scan can run against the same machine. */
    std::vector<SeqNum> scan_list_[3];
#endif
    unsigned rf_used_int_ = 0;
    unsigned rf_used_fp_ = 0;

    // Event heap: (cycle, seq, generation). The seq and generation
    // share one word (seq in the low 40 bits, generation's low 24
    // above) so a heap element is 16 bytes instead of 24 — the sift
    // moves during push/pop are the hottest fixed cost of the cycle
    // loop. Runs are far below 2^40 uops, and a generation collision
    // needs the same window slot squashed a multiple of 2^24 times
    // between schedule and fire. Ordering still compares cycle alone,
    // so the pop order is bit-identical to the unpacked heap's.
    struct Event
    {
        static constexpr unsigned kSeqBits = 40;
        static constexpr std::uint64_t kSeqMask =
            (1ull << kSeqBits) - 1;
        static constexpr std::uint32_t kGenMask = 0xffffff;

        Cycle cycle;
        std::uint64_t seq_gen;

        Event() = default;
        Event(Cycle c, SeqNum seq, std::uint32_t generation)
            : cycle(c),
              seq_gen((static_cast<std::uint64_t>(generation)
                       << kSeqBits) |
                      (seq & kSeqMask))
        {
        }

        SeqNum seq() const { return seq_gen & kSeqMask; }
        std::uint32_t
        generation() const
        {
            return static_cast<std::uint32_t>(seq_gen >> kSeqBits) &
                   kGenMask;
        }
        bool operator>(const Event &o) const { return cycle > o.cycle; }
    };
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;

    // Fetch/redirect state.
    SeqNum fetch_block_branch_ = kInvalidSeqNum;
    Cycle fetch_resume_ = 0;

    /** Stores that completed after leaving the L1 STQ: indexed SRL
     * fills waiting (e.g. on LCF counter space). */
    std::vector<SeqNum> pending_srl_fills_;

    // Mode flags.
    bool redo_mode_ = false;
    bool slice_active_ = false; ///< a slice re-insertion burst is live
    unsigned outstanding_mem_misses_ = 0;
    std::uint64_t rollback_epoch_ = 0; ///< bumped per rollback

    /** Per-checkpoint-slot count of allocated-but-undrained stores. */
    std::array<unsigned, 16> undrained_{};

    /** Allocated-but-undrained stores (StoreId ring span gate). */
    unsigned inflight_stores_ = 0;

    /** Deterministic external-snoop traffic source (config.snoop_rate). */
    Random snoop_rng_{0};
    std::uint64_t snoop_payload_ = 0;

    Cycle now_ = 0;
    Cycle last_commit_cycle_ = 0;

    /** Did the current tick() change any state outside IdleCounters? */
    bool tick_progress_ = false;

    // Observability (null unless a harness attaches them).
    obs::ProbeBus *probe_ = nullptr;
    obs::CounterSampler *sampler_ = nullptr;

    ProcessorStats stats_;
    stats::Occupancy srl_occupancy_;
    LoadCommitHook hook_;
};

} // namespace core
} // namespace srl

#endif // SRLSIM_CORE_PROCESSOR_HH
