#include "core/config.hh"

namespace srl
{
namespace core
{

ProcessorConfig
baselineConfig()
{
    ProcessorConfig c;
    c.name = "baseline-48stq";
    c.model = StqModel::kMonolithic;
    c.stq = {"stq", 48, 3};
    return c;
}

ProcessorConfig
monolithicConfig(unsigned entries)
{
    ProcessorConfig c;
    c.name = "monolithic-" + std::to_string(entries);
    c.model = StqModel::kMonolithic;
    c.stq = {"stq", entries, 3};
    return c;
}

ProcessorConfig
idealConfig()
{
    ProcessorConfig c = monolithicConfig(1024);
    c.name = "ideal-stq";
    return c;
}

ProcessorConfig
hierarchicalConfig()
{
    ProcessorConfig c;
    c.name = "hierarchical-stq";
    c.model = StqModel::kHierarchical;
    c.stq = {"l1stq", 48, 3};
    c.l2_stq = {"l2stq", 1024, 8};
    c.mtb_entries = 1024;
    return c;
}

ProcessorConfig
srlConfig()
{
    ProcessorConfig c;
    c.name = "srl";
    c.model = StqModel::kSrl;
    c.stq = {"l1stq", 48, 3};
    return c;
}

} // namespace core
} // namespace srl
