#include "core/simulator.hh"

#include "common/logging.hh"
#include "common/random.hh"

#include "workload/prewarm.hh"
#include "workload/stream_cache.hh"

namespace srl
{
namespace core
{

void
ReferenceExecutor::run(isa::UopStream &stream)
{
    isa::Uop u;
    while (stream.next(u)) {
        if (u.isLoad()) {
            load_values_[u.seq] = mem_.read(u.effAddr, u.memSize);
        } else if (u.isStore()) {
            mem_.write(u.effAddr, u.memSize, u.storeData);
        }
        ++uops_;
    }
}

std::uint64_t
ReferenceExecutor::loadValue(SeqNum seq) const
{
    const auto it = load_values_.find(seq);
    panic_if(it == load_values_.end(),
             "reference has no load at seq %llu",
             static_cast<unsigned long long>(seq));
    return it->second;
}

bool
ReferenceExecutor::hasLoad(SeqNum seq) const
{
    return load_values_.count(seq) != 0;
}

const std::vector<std::uint64_t> &
figure7Thresholds()
{
    static const std::vector<std::uint64_t> kThresholds{
        0, 64, 128, 192, 256, 384, 512, 768, 1024};
    return kThresholds;
}

RunResult
runOne(const ProcessorConfig &config,
       const workload::SuiteProfile &suite, std::uint64_t num_uops,
       std::uint64_t seed_override)
{
    return runOne(config, suite, num_uops, seed_override,
                  obs::ObsConfig{});
}

RunResult
runOne(const ProcessorConfig &config,
       const workload::SuiteProfile &suite, std::uint64_t num_uops,
       std::uint64_t seed_override, const obs::ObsConfig &obs)
{
    // The stream comes from the workload cache when
    // SRLSIM_WORKLOAD_CACHE is set (CI does); otherwise it is generated
    // inline. Identical either way — the cache just memoizes expansion.
    const auto gen =
        workload::openStreamEnv(suite, num_uops, seed_override);
    ProcessorConfig cfg = config;
    if (seed_override)
        cfg.snoop_seed = splitmix64(seed_override ^ cfg.snoop_seed);
    Processor cpu(cfg, *gen);

    // Warmed-cache methodology: pre-fill the suite's cache-resident
    // regions so compulsory misses do not swamp the phase behavior the
    // experiments study (the paper's tracing methodology runs long
    // warmups for the same reason).
    workload::prewarmCaches(suite, cpu.hierarchyMut());

    // Observability: attach the capture structures before the first
    // cycle so the event stream and timeline cover the whole run.
    std::shared_ptr<obs::Recording> rec;
    obs::ProbeBus bus;
    if (obs.enabled) {
        rec = std::make_shared<obs::Recording>(obs.ring_capacity,
                                               obs.sample_every);
        rec->meta["config"] = config.name;
        rec->meta["suite"] = suite.name;
        rec->meta["uops"] = std::to_string(num_uops);
        rec->meta["seed"] = std::to_string(seed_override);
        bus.attach(&rec->ring);
        cpu.attachProbeBus(&bus);
        // A periodic sampler observes the machine every cycle, which
        // forces the model to tick every cycle (no quiescence skip).
        // Only attach one when sampling is actually requested, so
        // probe-only traced runs keep the fast path.
        if (obs.sample_every > 0)
            cpu.attachSampler(&rec->sampler);
    }

    const ProcessorStats &s = cpu.run();

    if (rec) {
        // The gauges capture the processor; it dies with this frame.
        rec->sampler.dropGauges();
        rec->meta["cycles"] = std::to_string(s.cycles);
    }

    RunResult r;
    r.config_name = config.name;
    r.workload_name = suite.name;
    r.uops = s.committed_uops;
    r.cycles = s.cycles;
    r.ipc = s.ipc();
    r.stats = s;

    if (config.model == StqModel::kSrl) {
        const auto stores = s.committed_stores;
        r.pct_stores_redone =
            stores ? 100.0 * static_cast<double>(s.redone_stores) /
                         static_cast<double>(stores)
                   : 0.0;
        r.pct_miss_dep_stores =
            stores ? 100.0 * static_cast<double>(s.poisoned_stores) /
                         static_cast<double>(stores)
                   : 0.0;
        r.pct_miss_dep_uops =
            s.committed_uops
                ? 100.0 * static_cast<double>(s.slice_uops) /
                      static_cast<double>(s.committed_uops)
                : 0.0;
        r.srl_stalls_per_10k =
            s.committed_uops
                ? 1e4 * static_cast<double>(s.srl_stalled_loads) /
                      static_cast<double>(s.committed_uops)
                : 0.0;
        r.pct_time_srl_occupied = cpu.srlOccupancy().percentOccupied();
        for (const auto t : figure7Thresholds())
            r.srl_occupancy_above[t] = cpu.srlOccupancy().percentAbove(t);
    }
    r.recording = std::move(rec);
    return r;
}

} // namespace core
} // namespace srl
