/**
 * @file
 * Functional fast-forward engine for sampled simulation.
 *
 * Retires uops in-order at functional speed — no window, scheduler,
 * store queue, or event heap ever ticks — keeping only the
 * architectural memory image exact: every store writes MainMemory with
 * the same (addr, size, data) the detailed machine would commit, which
 * is the "instantaneous instruction execution" semantics the
 * ReferenceExecutor already embodies. In warming mode it additionally
 * streams the access pattern through the cache hierarchy, the branch
 * predictor, and the store-sets tables so a detailed interval that
 * follows starts from realistically warm microarchitectural state
 * instead of a cold machine.
 *
 * External snoop traffic is cycle-driven and therefore does not occur
 * while fast-forwarding; the snoop RNG cursor in SimState simply stays
 * put until the next detailed segment. This is part of the sampled-run
 * semantics (see DESIGN.md §14), not an approximation of the detailed
 * run: both a straight sampled run and a checkpoint-restored one skip
 * the same spans identically.
 */

#ifndef SRLSIM_CORE_FAST_FORWARD_HH
#define SRLSIM_CORE_FAST_FORWARD_HH

#include <array>
#include <cstdint>

#include "core/sim_state.hh"
#include "isa/uop.hh"

namespace srl
{
namespace core
{

class FastForwardEngine
{
  public:
    explicit FastForwardEngine(SimState &state) : sim_(state) {}

    /**
     * Consume up to @p n uops from @p stream, in order. With @p warm
     * set, also warm caches and predictors. @return the number of
     * uops actually consumed (short only if the stream ended). Any
     * stores still aging in the warm-mode retire ring are retired
     * (store-sets LFST cleared) when the span ends — by then they
     * have long left any realistic window.
     */
    std::uint64_t run(isa::UopStream &stream, std::uint64_t n,
                      bool warm);

  private:
    void retireOldestStore();

    SimState &sim_;

    /**
     * Warm-mode store retire ring: a fetched store remains the
     * "youngest store in flight" for store-sets purposes until
     * kRingSize younger stores arrive, approximating the passage of a
     * (generously sized) instruction window without simulating one.
     */
    static constexpr std::size_t kRingSize = 512;
    std::array<SeqNum, kRingSize> ring_{};
    std::size_t ring_head_ = 0;
    std::size_t ring_count_ = 0;
};

} // namespace core
} // namespace srl

#endif // SRLSIM_CORE_FAST_FORWARD_HH
