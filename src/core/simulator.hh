/**
 * @file
 * Simulation driver: runs a (config, workload) pair to completion,
 * surfaces run-level metrics, provides the in-order functional
 * reference executor used for correctness checking, and computes the
 * percent-speedup-over-baseline numbers every figure in the paper
 * reports.
 */

#ifndef SRLSIM_CORE_SIMULATOR_HH
#define SRLSIM_CORE_SIMULATOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hh"
#include "core/processor.hh"
#include "isa/uop.hh"
#include "memsys/main_memory.hh"
#include "obs/export.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace srl
{
namespace core
{

/** Result of one simulation run. */
struct RunResult
{
    std::string config_name;
    std::string workload_name;
    std::uint64_t uops = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    ProcessorStats stats;

    // SRL-specific series (empty for other models).
    double pct_stores_redone = 0.0;
    double pct_miss_dep_stores = 0.0;
    double pct_miss_dep_uops = 0.0;
    double srl_stalls_per_10k = 0.0;
    double pct_time_srl_occupied = 0.0;
    std::map<std::uint64_t, double> srl_occupancy_above; ///< Fig. 7

    /**
     * Observability capture (null unless the run was instrumented via
     * the ObsConfig overload of runOne). Shared so results stay
     * copyable; the gauges are dropped before the processor dies, so
     * the recording is safe to use for the result's whole lifetime.
     */
    std::shared_ptr<obs::Recording> recording;
};

/** Percent speedup of @p ipc over @p base_ipc. */
inline double
percentSpeedup(double ipc, double base_ipc)
{
    return base_ipc > 0 ? 100.0 * (ipc / base_ipc - 1.0) : 0.0;
}

/**
 * The in-order functional reference: executes the uop stream one at a
 * time against a private memory image. Used to validate the committed
 * load values and final memory image of the out-of-order machine.
 */
class ReferenceExecutor
{
  public:
    /** Run the whole stream; records every load's value by seq. */
    void run(isa::UopStream &stream);

    /** Value the reference observed for the load at @p seq. */
    std::uint64_t loadValue(SeqNum seq) const;

    /** True iff a load at @p seq was executed. */
    bool hasLoad(SeqNum seq) const;

    memsys::MainMemory &mem() { return mem_; }
    const memsys::MainMemory &mem() const { return mem_; }

    std::uint64_t uops() const { return uops_; }

  private:
    memsys::MainMemory mem_;
    /** Hash map, not ordered: the validation hot path is point lookups
     * keyed by seq (one per committed load), never ordered scans. */
    std::unordered_map<SeqNum, std::uint64_t> load_values_;
    std::uint64_t uops_ = 0;
};

/**
 * Run one (config, suite) pair for @p num_uops micro-ops and collect
 * metrics (including the Table 3 columns when the config is SRL).
 *
 * A non-zero @p seed_override replaces the suite's built-in workload
 * seed (and re-keys the snoop stream) so a sweep driver can give every
 * run an independent deterministic RNG stream. Zero keeps the suite's
 * canonical seed. runOne has no shared mutable state: concurrent calls
 * from different threads are safe.
 */
RunResult runOne(const ProcessorConfig &config,
                 const workload::SuiteProfile &suite,
                 std::uint64_t num_uops,
                 std::uint64_t seed_override = 0);

/**
 * Instrumented variant: when @p obs.enabled, the run is executed with
 * a probe bus feeding an event ring of @p obs.ring_capacity and a
 * counter sampler at @p obs.sample_every cycles; the capture is
 * returned in RunResult::recording. With obs.enabled false this is
 * exactly the plain runOne (no probes attached, recording null).
 */
RunResult runOne(const ProcessorConfig &config,
                 const workload::SuiteProfile &suite,
                 std::uint64_t num_uops, std::uint64_t seed_override,
                 const obs::ObsConfig &obs);

/** Occupancy thresholds reported in Figure 7. */
const std::vector<std::uint64_t> &figure7Thresholds();

} // namespace core
} // namespace srl

#endif // SRLSIM_CORE_SIMULATOR_HH
