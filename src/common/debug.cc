#include "common/debug.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace srl
{
namespace debug
{

namespace detail
{
std::atomic<std::uint32_t> g_flags{0};
std::atomic<bool> g_env_parsed{false};
} // namespace detail

using detail::g_env_parsed;
using detail::g_flags;

namespace
{

struct FlagName
{
    Flag flag;
    const char *name;
};

constexpr FlagName kFlagNames[] = {
    {Flag::kFetch, "Fetch"},
    {Flag::kAlloc, "Alloc"},
    {Flag::kIssue, "Issue"},
    {Flag::kCommit, "Commit"},
    {Flag::kSrl, "Srl"},
    {Flag::kLcf, "Lcf"},
    {Flag::kFwdCache, "FwdCache"},
    {Flag::kLoadBuffer, "LoadBuffer"},
    {Flag::kSlice, "Slice"},
    {Flag::kRollback, "Rollback"},
    {Flag::kDrain, "Drain"},
    {Flag::kSnoop, "Snoop"},
    {Flag::kCheckpoint, "Checkpoint"},
};

} // namespace

void
setFlag(Flag flag, bool enabled)
{
    if (enabled)
        g_flags |= static_cast<std::uint32_t>(flag);
    else
        g_flags &= ~static_cast<std::uint32_t>(flag);
}

unsigned
enableFromList(const std::string &list)
{
    unsigned enabled = 0;
    std::size_t pos = 0;
    while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        bool found = false;
        for (const auto &fn : kFlagNames) {
            if (name == fn.name) {
                setFlag(fn.flag, true);
                ++enabled;
                found = true;
                break;
            }
        }
        if (!found)
            warn("unknown debug flag '%s'", name.c_str());
    }
    return enabled;
}

void
initFromEnvironment()
{
    if (g_env_parsed.exchange(true))
        return;
    if (const char *env = std::getenv("SRLSIM_DEBUG"))
        enableFromList(env);
}

void
clearAll()
{
    g_flags = 0;
}

const char *
flagName(Flag flag)
{
    for (const auto &fn : kFlagNames) {
        if (fn.flag == flag)
            return fn.name;
    }
    return "?";
}

void
tracef(Flag flag, const char *fmt, ...)
{
    char body[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(body, sizeof(body), fmt, args);
    va_end(args);
    std::fprintf(stderr, "[%s] %s\n", flagName(flag), body);
}

} // namespace debug
} // namespace srl
