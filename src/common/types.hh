/**
 * @file
 * Fundamental value types shared by every srlsim module.
 *
 * The simulator is cycle-driven: a Cycle is an absolute count of core
 * clock ticks since reset. Addresses are byte addresses in a flat 64-bit
 * physical space. SeqNum is a global, never-reused dynamic micro-op
 * sequence number that also encodes program order.
 */

#ifndef SRLSIM_COMMON_TYPES_HH
#define SRLSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace srl
{

/** Absolute core clock cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated flat physical address space. */
using Addr = std::uint64_t;

/** Dynamic micro-op sequence number; strictly increasing in program order. */
using SeqNum = std::uint64_t;

/** Physical register index. */
using PhysReg = std::uint16_t;

/** Architectural register index. */
using ArchReg = std::uint8_t;

/** Checkpoint slot index in the CPR checkpoint manager. */
using CheckpointId = std::uint8_t;

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kInvalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no sequence number". */
inline constexpr SeqNum kInvalidSeqNum = std::numeric_limits<SeqNum>::max();

/** Sentinel for "no physical register". */
inline constexpr PhysReg kInvalidPhysReg =
    std::numeric_limits<PhysReg>::max();

/** Sentinel for "no checkpoint". */
inline constexpr CheckpointId kInvalidCheckpoint =
    std::numeric_limits<CheckpointId>::max();

} // namespace srl

#endif // SRLSIM_COMMON_TYPES_HH
