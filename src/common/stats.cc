#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "logging.hh"

namespace srl
{
namespace stats
{

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    panic_if(!std::is_sorted(bounds_.begin(), bounds_.end()),
             "Histogram bounds must be sorted");
}

void
Histogram::sample(std::uint64_t v, std::uint64_t weight)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    counts_[idx] += weight;
    total_ += weight;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

double
Histogram::fractionAbove(std::uint64_t threshold) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        // Bucket i covers values <= bounds_[i] (last bucket: above all).
        const bool bucket_above =
            i >= bounds_.size() || bounds_[i] > threshold;
        if (bucket_above)
            above += counts_[i];
    }
    return static_cast<double>(above) / static_cast<double>(total_);
}

void
Occupancy::observe(std::uint64_t entries, std::uint64_t cycles)
{
    if (cycles == 0)
        return;
    cycles_at_[entries] += cycles;
    total_cycles_ += cycles;
    if (entries > 0)
        occupied_cycles_ += cycles;
    peak_ = std::max(peak_, entries);
}

void
Occupancy::reset()
{
    cycles_at_.clear();
    occupied_cycles_ = 0;
    total_cycles_ = 0;
    peak_ = 0;
}

void
Occupancy::merge(const Occupancy &other)
{
    for (const auto &[entries, cycles] : other.cycles_at_)
        observe(entries, cycles);
}

double
Occupancy::percentAbove(std::uint64_t threshold) const
{
    if (occupied_cycles_ == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (const auto &[entries, cycles] : cycles_at_) {
        if (entries > threshold)
            above += cycles;
    }
    return 100.0 * static_cast<double>(above) /
           static_cast<double>(occupied_cycles_);
}

double
Occupancy::percentOccupied() const
{
    if (total_cycles_ == 0)
        return 0.0;
    return 100.0 * static_cast<double>(occupied_cycles_) /
           static_cast<double>(total_cycles_);
}

void
StatGroup::registerScalar(const std::string &name, const Scalar *s,
                          const std::string &desc)
{
    entries_.push_back({name, Kind::kScalar, s, desc});
}

void
StatGroup::registerAverage(const std::string &name, const Average *a,
                           const std::string &desc)
{
    entries_.push_back({name, Kind::kAverage, a, desc});
}

void
StatGroup::registerValue(const std::string &name, const double *v,
                         const std::string &desc)
{
    entries_.push_back({name, Kind::kValue, v, desc});
}

std::vector<StatRow>
StatGroup::snapshot() const
{
    std::vector<StatRow> rows;
    rows.reserve(entries_.size());
    for (const auto &e : entries_) {
        double v = 0;
        switch (e.kind) {
          case Kind::kScalar:
            v = static_cast<double>(
                static_cast<const Scalar *>(e.ptr)->value());
            break;
          case Kind::kAverage:
            v = static_cast<const Average *>(e.ptr)->mean();
            break;
          case Kind::kValue:
            v = *static_cast<const double *>(e.ptr);
            break;
        }
        rows.push_back({e.name, v, e.desc});
    }
    return rows;
}

std::string
StatGroup::format() const
{
    std::string out = name_ + "\n";
    std::size_t width = 0;
    const auto rows = snapshot();
    for (const auto &r : rows)
        width = std::max(width, r.name.size());
    char buf[256];
    for (const auto &r : rows) {
        std::snprintf(buf, sizeof(buf), "  %-*s %16.4f  # %s\n",
                      static_cast<int>(width), r.name.c_str(), r.value,
                      r.desc.c_str());
        out += buf;
    }
    return out;
}

std::string
formatDouble(double v)
{
    if (std::isnan(v))
        return "null";
    if (std::isinf(v))
        return v > 0 ? "1e999" : "-1e999";
    char buf[40];
    for (const int prec : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

void
RunRecord::set(const std::string &key, double v)
{
    for (auto &[k, val] : metrics) {
        if (k == key) {
            val = v;
            return;
        }
    }
    metrics.emplace_back(key, v);
}

bool
RunRecord::hasMetric(const std::string &key) const
{
    for (const auto &[k, v] : metrics) {
        if (k == key)
            return true;
    }
    return false;
}

double
RunRecord::metric(const std::string &key) const
{
    for (const auto &[k, v] : metrics) {
        if (k == key)
            return v;
    }
    throw std::out_of_range("RunRecord '" + name + "' has no metric '" +
                            key + "'");
}

// ------------------------------------------------------------- JSON out

namespace
{

/** JSON string escape (control chars, quote, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
appendStringMap(std::string &out,
                const std::map<std::string, std::string> &m,
                const char *indent, const char *close_indent)
{
    out += "{";
    bool first = true;
    for (const auto &[k, v] : m) {
        out += first ? "\n" : ",\n";
        first = false;
        out += indent;
        out += "\"" + jsonEscape(k) + "\": \"" + jsonEscape(v) + "\"";
    }
    if (!first) {
        out += "\n";
        out += close_indent;
    }
    out += "}";
}

} // namespace

std::string
StatsReport::toJson() const
{
    std::string out = "{\n  \"schema\": \"srlsim-stats-v1\",\n";
    out += "  \"meta\": ";
    appendStringMap(out, meta, "    ", "  ");
    out += ",\n  \"runs\": [";
    bool first_run = true;
    for (const auto &r : runs) {
        out += first_run ? "\n" : ",\n";
        first_run = false;
        out += "    {\n      \"name\": \"" + jsonEscape(r.name) + "\",\n";
        if (!r.error.empty())
            out += "      \"error\": \"" + jsonEscape(r.error) + "\",\n";
        out += "      \"meta\": ";
        appendStringMap(out, r.meta, "        ", "      ");
        out += ",\n      \"metrics\": {";
        bool first_m = true;
        for (const auto &[k, v] : r.metrics) {
            out += first_m ? "\n" : ",\n";
            first_m = false;
            out += "        \"" + jsonEscape(k) + "\": " + formatDouble(v);
        }
        if (!first_m)
            out += "\n      ";
        out += "}\n    }";
    }
    if (!first_run)
        out += "\n  ";
    out += "]\n}\n";
    return out;
}

// -------------------------------------------------------------- CSV out

namespace
{

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
StatsReport::toCsv() const
{
    // Column union: sorted meta keys, then metric names in
    // first-appearance order across runs.
    std::set<std::string> meta_keys;
    std::vector<std::string> metric_keys;
    std::set<std::string> metric_seen;
    for (const auto &r : runs) {
        for (const auto &[k, v] : r.meta)
            meta_keys.insert(k);
        for (const auto &[k, v] : r.metrics) {
            if (metric_seen.insert(k).second)
                metric_keys.push_back(k);
        }
    }

    std::string out = "name,error";
    for (const auto &k : meta_keys)
        out += "," + csvEscape(k);
    for (const auto &k : metric_keys)
        out += "," + csvEscape(k);
    out += "\n";

    for (const auto &r : runs) {
        out += csvEscape(r.name) + "," + csvEscape(r.error);
        for (const auto &k : meta_keys) {
            const auto it = r.meta.find(k);
            out += ",";
            if (it != r.meta.end())
                out += csvEscape(it->second);
        }
        for (const auto &k : metric_keys) {
            out += ",";
            if (r.hasMetric(k))
                out += formatDouble(r.metric(k));
        }
        out += "\n";
    }
    return out;
}

// ------------------------------------------------------------- JSON in

namespace
{

/**
 * Minimal recursive-descent JSON reader for the report schema.
 * Supports objects, arrays, strings, numbers, true/false/null; object
 * member order is surfaced to the caller so metric order survives the
 * round-trip.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : text_(text) {}

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    [[noreturn]] void
    fail(const std::string &what)
    {
        throw ParseError("stats JSON: " + what + " at offset " +
                         std::to_string(pos_));
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                long cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_ + i];
                    int nibble;
                    if (h >= '0' && h <= '9')
                        nibble = h - '0';
                    else if (h >= 'a' && h <= 'f')
                        nibble = h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        nibble = h - 'A' + 10;
                    else
                        fail("bad \\u escape digit");
                    cp = (cp << 4) | nibble;
                }
                pos_ += 4;
                // Report strings only ever escape control chars.
                out += static_cast<char>(cp & 0xff);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    double
    parseNumber()
    {
        skipWs();
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            fail("expected number");
        pos_ += static_cast<std::size_t>(end - start);
        return v;
    }

    /** Parse a {"k": "v", ...} object of string values. */
    std::map<std::string, std::string>
    parseStringMap()
    {
        std::map<std::string, std::string> out;
        expect('{');
        if (consume('}'))
            return out;
        do {
            const std::string k = parseString();
            expect(':');
            out[k] = parseString();
        } while (consume(','));
        expect('}');
        return out;
    }

    /** Parse a {"k": number, ...} object preserving member order. */
    std::vector<std::pair<std::string, double>>
    parseMetricMap()
    {
        std::vector<std::pair<std::string, double>> out;
        expect('{');
        if (consume('}'))
            return out;
        do {
            const std::string k = parseString();
            expect(':');
            skipWs();
            double v;
            if (text_.compare(pos_, 4, "null") == 0) {
                pos_ += 4;
                v = std::nan("");
            } else {
                v = parseNumber();
            }
            out.emplace_back(k, v);
        } while (consume(','));
        expect('}');
        return out;
    }

    RunRecord
    parseRun()
    {
        RunRecord r;
        expect('{');
        if (consume('}'))
            return r;
        do {
            const std::string k = parseString();
            expect(':');
            if (k == "name") {
                r.name = parseString();
            } else if (k == "error") {
                r.error = parseString();
            } else if (k == "meta") {
                r.meta = parseStringMap();
            } else if (k == "metrics") {
                r.metrics = parseMetricMap();
            } else {
                fail("unknown run key '" + k + "'");
            }
        } while (consume(','));
        expect('}');
        return r;
    }

    StatsReport
    parseReport()
    {
        StatsReport rep;
        expect('{');
        bool saw_schema = false;
        if (!consume('}')) {
            do {
                const std::string k = parseString();
                expect(':');
                if (k == "schema") {
                    const std::string s = parseString();
                    if (s != "srlsim-stats-v1")
                        fail("unsupported schema '" + s + "'");
                    saw_schema = true;
                } else if (k == "meta") {
                    rep.meta = parseStringMap();
                } else if (k == "runs") {
                    expect('[');
                    if (!consume(']')) {
                        do {
                            rep.runs.push_back(parseRun());
                        } while (consume(','));
                        expect(']');
                    }
                } else {
                    fail("unknown report key '" + k + "'");
                }
            } while (consume(','));
            expect('}');
        }
        if (!saw_schema)
            fail("missing schema marker");
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return rep;
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

StatsReport
StatsReport::fromJson(const std::string &text)
{
    JsonReader reader(text);
    return reader.parseReport();
}

} // namespace stats
} // namespace srl
