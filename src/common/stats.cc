#include "stats.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace srl
{
namespace stats
{

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    panic_if(!std::is_sorted(bounds_.begin(), bounds_.end()),
             "Histogram bounds must be sorted");
}

void
Histogram::sample(std::uint64_t v, std::uint64_t weight)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    counts_[idx] += weight;
    total_ += weight;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

double
Histogram::fractionAbove(std::uint64_t threshold) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        // Bucket i covers values <= bounds_[i] (last bucket: above all).
        const bool bucket_above =
            i >= bounds_.size() || bounds_[i] > threshold;
        if (bucket_above)
            above += counts_[i];
    }
    return static_cast<double>(above) / static_cast<double>(total_);
}

void
Occupancy::observe(std::uint64_t entries, std::uint64_t cycles)
{
    if (cycles == 0)
        return;
    cycles_at_[entries] += cycles;
    total_cycles_ += cycles;
    if (entries > 0)
        occupied_cycles_ += cycles;
    peak_ = std::max(peak_, entries);
}

void
Occupancy::reset()
{
    cycles_at_.clear();
    occupied_cycles_ = 0;
    total_cycles_ = 0;
    peak_ = 0;
}

double
Occupancy::percentAbove(std::uint64_t threshold) const
{
    if (occupied_cycles_ == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (const auto &[entries, cycles] : cycles_at_) {
        if (entries > threshold)
            above += cycles;
    }
    return 100.0 * static_cast<double>(above) /
           static_cast<double>(occupied_cycles_);
}

double
Occupancy::percentOccupied() const
{
    if (total_cycles_ == 0)
        return 0.0;
    return 100.0 * static_cast<double>(occupied_cycles_) /
           static_cast<double>(total_cycles_);
}

void
StatGroup::registerScalar(const std::string &name, const Scalar *s,
                          const std::string &desc)
{
    entries_.push_back({name, Kind::kScalar, s, desc});
}

void
StatGroup::registerAverage(const std::string &name, const Average *a,
                           const std::string &desc)
{
    entries_.push_back({name, Kind::kAverage, a, desc});
}

void
StatGroup::registerValue(const std::string &name, const double *v,
                         const std::string &desc)
{
    entries_.push_back({name, Kind::kValue, v, desc});
}

std::vector<StatRow>
StatGroup::snapshot() const
{
    std::vector<StatRow> rows;
    rows.reserve(entries_.size());
    for (const auto &e : entries_) {
        double v = 0;
        switch (e.kind) {
          case Kind::kScalar:
            v = static_cast<double>(
                static_cast<const Scalar *>(e.ptr)->value());
            break;
          case Kind::kAverage:
            v = static_cast<const Average *>(e.ptr)->mean();
            break;
          case Kind::kValue:
            v = *static_cast<const double *>(e.ptr);
            break;
        }
        rows.push_back({e.name, v, e.desc});
    }
    return rows;
}

std::string
StatGroup::format() const
{
    std::string out = name_ + "\n";
    std::size_t width = 0;
    const auto rows = snapshot();
    for (const auto &r : rows)
        width = std::max(width, r.name.size());
    char buf[256];
    for (const auto &r : rows) {
        std::snprintf(buf, sizeof(buf), "  %-*s %16.4f  # %s\n",
                      static_cast<int>(width), r.name.c_str(), r.value,
                      r.desc.c_str());
        out += buf;
    }
    return out;
}

} // namespace stats
} // namespace srl
