/**
 * @file
 * Canonical serialization and content hashing for design points.
 *
 * A design point — (ProcessorConfig, SuiteProfile, uops, run_seed) —
 * fully determines a simulation's result (the determinism contract of
 * the sweep runner), so a collision-resistant digest of the point is a
 * safe content address for memoizing completed runs.
 *
 * The serialization is *canonical*: every field is emitted explicitly,
 * in a fixed schema order, as a (type tag, field name, little-endian
 * value) triple. Struct layout, padding, and the order in which a
 * request happened to populate fields are all irrelevant — identical
 * points serialize to identical bytes regardless of origin, and
 * re-serializing a point is byte-stable. A schema version string is
 * folded into every digest so a field addition or reordering of the
 * canonical schema invalidates old cache entries wholesale instead of
 * silently aliasing them.
 *
 * The digest is a 128-bit non-cryptographic mix (two independently
 * keyed 64-bit lanes, SplitMix64-finalized per block). It addresses
 * accidental collisions among design points, not adversarial inputs.
 */

#ifndef SRLSIM_COMMON_CHASH_HH
#define SRLSIM_COMMON_CHASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace srl
{
namespace core
{
struct ProcessorConfig;
} // namespace core
namespace workload
{
struct SuiteProfile;
} // namespace workload

namespace chash
{

/** Canonical-schema version; folded into every digest. */
extern const char kSchemaVersion[];

/** A 128-bit content digest. */
struct Hash128
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const Hash128 &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
    bool operator!=(const Hash128 &o) const { return !(*this == o); }

    /** 32 lowercase hex chars (hi then lo), usable as a file name. */
    std::string toHex() const;
};

/** Digest an arbitrary byte string. */
Hash128 hashBytes(const void *data, std::size_t len);

inline Hash128
hashString(const std::string &s)
{
    return hashBytes(s.data(), s.size());
}

/**
 * Canonical field-by-field serializer. Fields are appended as
 * (u8 type tag, u16 name length, name bytes, fixed-width little-endian
 * value); sections as begin/end markers. The writer makes no attempt
 * to be compact — it is the *stability* of the bytes that matters.
 */
class CanonicalWriter
{
  public:
    void u64(const char *name, std::uint64_t v);
    void u32(const char *name, std::uint32_t v);
    /** Doubles are serialized as their IEEE-754 bit pattern. */
    void f64(const char *name, double v);
    void boolean(const char *name, bool v);
    void str(const char *name, const std::string &v);
    /** Enums are serialized as a named u32 of the underlying value. */
    template <typename E>
    void
    enumeration(const char *name, E v)
    {
        u32(name, static_cast<std::uint32_t>(v));
    }

    void begin(const char *section);
    void end(const char *section);

    const std::string &bytes() const { return bytes_; }

  private:
    void tagAndName(std::uint8_t tag, const char *name);

    std::string bytes_;
};

/** Canonical bytes of a full processor configuration (every field). */
std::string serializeConfig(const core::ProcessorConfig &config);

/** Canonical bytes of a full workload suite profile (every field). */
std::string serializeSuite(const workload::SuiteProfile &suite);

/**
 * Content address of one design point. @p run_seed is the raw
 * seed_override handed to core::runOne — zero (suite-canonical seed)
 * is deliberately kept distinct from an explicit seed equal to the
 * suite's, because the two re-key the snoop stream differently.
 * @p occupancy_series is part of the address because it changes which
 * metrics the resulting record carries.
 */
Hash128 pointKey(const core::ProcessorConfig &config,
                 const workload::SuiteProfile &suite,
                 std::uint64_t uops, std::uint64_t run_seed,
                 bool occupancy_series = true);

/**
 * Sampled-run variant: folds the sampling plan (per-interval
 * ff/warm/detail uops and the shard window) into the address. When the
 * whole plan is zero (a fully detailed run) this is exactly the plain
 * pointKey — existing cache entries keep their addresses.
 *
 * @p pipelined selects the independent-interval semantics (DESIGN.md
 * §15), whose results legitimately differ from the chained loop's —
 * so it is folded into the address, but only when true, preserving
 * every pre-existing chained-mode cache address. The pipelined worker
 * count is deliberately NOT part of the key: results are
 * byte-identical at any worker count.
 */
Hash128 pointKey(const core::ProcessorConfig &config,
                 const workload::SuiteProfile &suite,
                 std::uint64_t uops, std::uint64_t run_seed,
                 bool occupancy_series, std::uint64_t ff_uops,
                 std::uint64_t warm_uops, std::uint64_t detail_uops,
                 std::uint64_t shard_start, std::uint64_t shard_count,
                 bool pipelined = false);

} // namespace chash
} // namespace srl

#endif // SRLSIM_COMMON_CHASH_HH
