/**
 * @file
 * A growable ring buffer with deque semantics (push_back / pop_front /
 * random access) on one contiguous power-of-two allocation.
 *
 * This is the storage behind the processor's in-flight window: the
 * per-cycle phases walk and index it millions of times per run, and
 * std::deque's chunked storage (two dependent loads per operator[])
 * made that walk the single hottest data path in the profile. A ring
 * over one flat vector keeps window scans cache-linear and indexing a
 * mask-and-add.
 *
 * Unlike CircularFifo (a fixed-capacity structural model), RingWindow
 * grows by doubling: the window is a software bookkeeping structure,
 * not a modeled hardware resource, so running out of slots must never
 * panic the simulation.
 */

#ifndef SRLSIM_COMMON_RING_WINDOW_HH
#define SRLSIM_COMMON_RING_WINDOW_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "logging.hh"

namespace srl
{

template <typename T>
class RingWindow
{
  public:
    explicit RingWindow(std::size_t initial_capacity = 64)
    {
        std::size_t cap = 1;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    T &
    operator[](std::size_t i)
    {
        return slots_[(head_ + i) & mask()];
    }

    const T &
    operator[](std::size_t i) const
    {
        return slots_[(head_ + i) & mask()];
    }

    T &
    front()
    {
        panic_if(empty(), "RingWindow front() on empty ring");
        return slots_[head_];
    }

    T &
    back()
    {
        panic_if(empty(), "RingWindow back() on empty ring");
        return slots_[(head_ + size_ - 1) & mask()];
    }

    void
    push_back(T value)
    {
        if (size_ == slots_.size())
            grow();
        slots_[(head_ + size_) & mask()] = std::move(value);
        ++size_;
    }

    /**
     * Append a default-constructed element and return it, letting the
     * caller fill it in place (skips the extra whole-struct copy a
     * build-then-push_back sequence pays for large T).
     */
    T &
    emplace_back()
    {
        if (size_ == slots_.size())
            grow();
        T &slot = slots_[(head_ + size_) & mask()];
        slot = T{}; // the slot may hold a stale popped value
        ++size_;
        return slot;
    }

    void
    pop_front()
    {
        panic_if(empty(), "RingWindow pop_front() on empty ring");
        // The stale slot is left as-is: push_back whole-assigns a slot
        // before it is ever read again, and the window's element type
        // owns no resources worth releasing eagerly.
        head_ = (head_ + 1) & mask();
        --size_;
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            slots_[(head_ + i) & mask()] = T{};
        head_ = 0;
        size_ = 0;
    }

  private:
    std::size_t mask() const { return slots_.size() - 1; }

    void
    grow()
    {
        std::vector<T> bigger(slots_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = std::move(slots_[(head_ + i) & mask()]);
        slots_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace srl

#endif // SRLSIM_COMMON_RING_WINDOW_HH
