/**
 * @file
 * Small integer-math helpers used throughout the simulator: power-of-two
 * predicates, log2, alignment, bit extraction, and address-hashing
 * primitives (including the 3-piece XOR fold used by the Loose Check
 * Filter's 3-PAX indexing scheme).
 */

#ifndef SRLSIM_COMMON_INTMATH_HH
#define SRLSIM_COMMON_INTMATH_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace srl
{

/** @return true iff @p v is a non-zero power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log base 2. @pre v != 0 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Ceiling of log base 2. @pre v != 0 */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    assert(v != 0);
    return v == 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    assert(isPowerOf2(align));
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    assert(isPowerOf2(align));
    return (v + align - 1) & ~(align - 1);
}

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    assert(width <= 64);
    if (width == 64)
        return v >> lo;
    return (v >> lo) & ((std::uint64_t{1} << width) - 1);
}

/** A mask with the low @p width bits set. */
constexpr std::uint64_t
mask(unsigned width)
{
    assert(width <= 64);
    return width == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << width) - 1;
}

/**
 * Lower-Address-Bits (LAB) index: take bits [shift, shift+idx_bits) of
 * the address. This is one of the two LCF hashing functions the paper
 * evaluates (Section 6.4).
 */
constexpr std::uint64_t
labIndex(std::uint64_t addr, unsigned idx_bits, unsigned shift)
{
    return bits(addr, shift, idx_bits);
}

/**
 * 3-Piece-Address-XOR (3-PAX) index: XOR of the lower, middle and upper
 * address-bit fields, each @p idx_bits wide, taken above a byte-offset
 * @p shift. This is the paper's better-performing LCF hash (Section 6.4).
 */
constexpr std::uint64_t
paxIndex(std::uint64_t addr, unsigned idx_bits, unsigned shift)
{
    const std::uint64_t a = addr >> shift;
    const std::uint64_t lo = bits(a, 0, idx_bits);
    const std::uint64_t mid = bits(a, idx_bits, idx_bits);
    const std::uint64_t hi = bits(a, 2 * idx_bits, idx_bits);
    return lo ^ mid ^ hi;
}

/**
 * A 64-bit finalizer-style mix (splitmix64 finalizer). Used to decorrelate
 * synthetic addresses and for deterministic hashing inside the workload
 * generators; NOT used by the modeled hardware structures.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace srl

#endif // SRLSIM_COMMON_INTMATH_HH
