/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A PCG32 generator (O'Neill's pcg32_oneseq variant) keeps every workload
 * run exactly reproducible from a 64-bit seed, independent of the standard
 * library implementation. All synthetic-trace randomness flows through
 * this class so results are bit-identical across platforms.
 */

#ifndef SRLSIM_COMMON_RANDOM_HH
#define SRLSIM_COMMON_RANDOM_HH

#include <cassert>
#include <cstdint>

namespace srl
{

/** Deterministic 32-bit PCG random generator. */
class Random
{
  public:
    /** Seed with a 64-bit value; identical seeds give identical streams. */
    explicit Random(std::uint64_t seed = 0x853c49e6748fea9bull)
    {
        state_ = 0;
        next32();
        state_ += seed;
        next32();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next32()
    {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ull + 1442695040888963407ull;
        const auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        const auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next32()) << 32) | next32();
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint32_t
    below(std::uint32_t bound)
    {
        assert(bound > 0);
        // Lemire-style rejection-free-enough bounded generation with
        // threshold rejection to remove modulo bias.
        const std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint32_t r = next32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi]. @pre lo <= hi */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        const std::uint64_t span = hi - lo + 1;
        if (span == 0) // full 64-bit range
            return next64();
        if (span <= 0xffffffffull)
            return lo + below(static_cast<std::uint32_t>(span));
        return lo + (next64() % span);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next32()) * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial: true with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /**
     * Geometric-ish burst length: number of consecutive successes with
     * continuation probability @p p, capped at @p cap.
     */
    unsigned
    burst(double p, unsigned cap)
    {
        unsigned n = 1;
        while (n < cap && chance(p))
            ++n;
        return n;
    }

    /**
     * Raw PCG state, for checkpointing: restoring it with
     * setRawState() resumes the stream exactly where it left off.
     */
    std::uint64_t rawState() const { return state_; }
    void setRawState(std::uint64_t s) { state_ = s; }

  private:
    std::uint64_t state_;
};

/**
 * SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
 * Used to derive independent per-run seeds from (base seed, run index)
 * so parallel sweep runs draw from uncorrelated PCG streams.
 */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace srl

#endif // SRLSIM_COMMON_RANDOM_HH
