#include "common/chash.hh"

#include <bit>
#include <cstring>

#include "common/random.hh"
#include "core/config.hh"
#include "workload/profile.hh"

namespace srl
{
namespace chash
{

const char kSchemaVersion[] = "srlsim-chash-v1";

namespace
{

// Field type tags. Values are part of the canonical schema: changing
// them (like changing field order) must change every digest, which is
// why kSchemaVersion is folded into pointKey.
constexpr std::uint8_t kTagU32 = 1;
constexpr std::uint8_t kTagU64 = 2;
constexpr std::uint8_t kTagF64 = 3;
constexpr std::uint8_t kTagBool = 4;
constexpr std::uint8_t kTagStr = 5;
constexpr std::uint8_t kTagBegin = 6;
constexpr std::uint8_t kTagEnd = 7;

void
appendLe(std::string &out, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xff);
}

} // namespace

std::string
Hash128::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (unsigned i = 0; i < 16; ++i) {
        const std::uint64_t word = i < 8 ? hi : lo;
        const unsigned shift = 8 * (7 - (i & 7));
        const auto byte =
            static_cast<unsigned>((word >> shift) & 0xff);
        out[2 * i] = digits[byte >> 4];
        out[2 * i + 1] = digits[byte & 0xf];
    }
    return out;
}

Hash128
hashBytes(const void *data, std::size_t len)
{
    // Two independently keyed 64-bit lanes over 8-byte blocks, each
    // block folded in with a SplitMix64 finalization. Non-cryptographic
    // but well-mixed: any single-bit change in the input avalanches
    // through both lanes.
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h1 = 0x9e3779b97f4a7c15ull ^ len;
    std::uint64_t h2 = 0xc2b2ae3d27d4eb4full ^ (len * 0x9ddfea08eb382d69ull);
    std::size_t n = len;
    while (n >= 8) {
        std::uint64_t k;
        std::memcpy(&k, p, 8);
        h1 = splitmix64(h1 ^ k);
        h2 = splitmix64(h2 + (k * 0xff51afd7ed558ccdull));
        p += 8;
        n -= 8;
    }
    if (n > 0) {
        std::uint64_t k = 0;
        std::memcpy(&k, p, n);
        k |= static_cast<std::uint64_t>(n) << 56; // length-tag the tail
        h1 = splitmix64(h1 ^ k);
        h2 = splitmix64(h2 + (k * 0xff51afd7ed558ccdull));
    }
    // Cross-mix the lanes so they never degenerate to one another.
    Hash128 out;
    out.lo = splitmix64(h1 ^ (h2 >> 1));
    out.hi = splitmix64(h2 ^ (out.lo >> 1));
    return out;
}

void
CanonicalWriter::tagAndName(std::uint8_t tag, const char *name)
{
    bytes_ += static_cast<char>(tag);
    const std::size_t n = std::strlen(name);
    appendLe(bytes_, n, 2);
    bytes_.append(name, n);
}

void
CanonicalWriter::u64(const char *name, std::uint64_t v)
{
    tagAndName(kTagU64, name);
    appendLe(bytes_, v, 8);
}

void
CanonicalWriter::u32(const char *name, std::uint32_t v)
{
    tagAndName(kTagU32, name);
    appendLe(bytes_, v, 4);
}

void
CanonicalWriter::f64(const char *name, double v)
{
    tagAndName(kTagF64, name);
    appendLe(bytes_, std::bit_cast<std::uint64_t>(v), 8);
}

void
CanonicalWriter::boolean(const char *name, bool v)
{
    tagAndName(kTagBool, name);
    bytes_ += static_cast<char>(v ? 1 : 0);
}

void
CanonicalWriter::str(const char *name, const std::string &v)
{
    tagAndName(kTagStr, name);
    appendLe(bytes_, v.size(), 4);
    bytes_ += v;
}

void
CanonicalWriter::begin(const char *section)
{
    tagAndName(kTagBegin, section);
}

void
CanonicalWriter::end(const char *section)
{
    tagAndName(kTagEnd, section);
}

std::string
serializeConfig(const core::ProcessorConfig &c)
{
    CanonicalWriter w;
    w.begin("config");
    w.str("name", c.name);

    w.u32("alloc_width", c.alloc_width);
    w.u32("issue_width", c.issue_width);
    w.u32("branch_mispredict_penalty", c.branch_mispredict_penalty);
    w.u32("sched_int", c.sched_int);
    w.u32("sched_fp", c.sched_fp);
    w.u32("sched_mem", c.sched_mem);
    w.u32("regs_int", c.regs_int);
    w.u32("regs_fp", c.regs_fp);
    w.u32("fu_int_alu", c.fu_int_alu);
    w.u32("fu_int_mul", c.fu_int_mul);
    w.u32("fu_fp", c.fu_fp);
    w.u32("load_ports", c.load_ports);
    w.u32("store_ports", c.store_ports);

    w.begin("checkpoints");
    w.u32("num_checkpoints", c.checkpoints.num_checkpoints);
    w.u32("max_interval", c.checkpoints.max_interval);
    w.u32("branch_interval", c.checkpoints.branch_interval);
    w.end("checkpoints");

    w.begin("sdb");
    w.u32("capacity", c.sdb.capacity);
    w.end("sdb");

    w.enumeration("model", c.model);

    const auto stq = [&w](const char *section,
                          const lsq::StoreQueueParams &p) {
        w.begin(section);
        w.str("name", p.name);
        w.u32("capacity", p.capacity);
        w.u32("forward_latency", p.forward_latency);
        w.end(section);
    };
    stq("stq", c.stq);
    stq("l2_stq", c.l2_stq);
    w.u32("mtb_entries", c.mtb_entries);

    w.begin("srl");
    w.u32("srl_capacity", c.srl.srl.capacity);
    w.boolean("use_lcf", c.srl.use_lcf);
    w.u32("lcf_entries", c.srl.lcf.entries);
    w.u32("lcf_counter_bits", c.srl.lcf.counter_bits);
    w.enumeration("lcf_hash", c.srl.lcf.hash);
    w.boolean("indexed_forwarding", c.srl.indexed_forwarding);
    w.boolean("use_fwd_cache", c.srl.use_fwd_cache);
    w.boolean("drain_only_in_redo", c.srl.drain_only_in_redo);
    w.u32("fwd_cache_entries", c.srl.fwd_cache.entries);
    w.u32("fwd_cache_assoc", c.srl.fwd_cache.assoc);
    w.end("srl");

    w.begin("load_queue");
    w.u32("capacity", c.load_queue.capacity);
    w.end("load_queue");

    w.begin("load_buffer");
    w.u32("entries", c.load_buffer.entries);
    w.u32("assoc", c.load_buffer.assoc);
    w.enumeration("overflow", c.load_buffer.overflow);
    w.u32("victim_entries", c.load_buffer.victim_entries);
    w.end("load_buffer");

    w.begin("store_sets");
    w.u32("ssit_entries", c.store_sets.ssit_entries);
    w.u32("lfst_entries", c.store_sets.lfst_entries);
    w.u64("clear_interval", c.store_sets.clear_interval);
    w.end("store_sets");

    const auto cache = [&w](const char *section,
                            const memsys::CacheParams &p) {
        w.begin(section);
        w.str("name", p.name);
        w.u64("size_bytes", p.size_bytes);
        w.u32("assoc", p.assoc);
        w.u32("line_bytes", p.line_bytes);
        w.u32("hit_latency", p.hit_latency);
        w.end(section);
    };
    w.begin("memory");
    cache("l1", c.memory.l1);
    cache("l2", c.memory.l2);
    w.u32("memory_latency", c.memory.memory_latency);
    w.u32("num_mshrs", c.memory.num_mshrs);
    w.boolean("enable_prefetch", c.memory.enable_prefetch);
    w.begin("prefetch");
    w.u32("num_streams", c.memory.prefetch.num_streams);
    w.u32("line_bytes", c.memory.prefetch.line_bytes);
    w.u32("train_threshold", c.memory.prefetch.train_threshold);
    w.u32("degree", c.memory.prefetch.degree);
    w.u32("match_slack", c.memory.prefetch.match_slack);
    w.end("prefetch");
    w.end("memory");

    w.f64("snoop_rate", c.snoop_rate);
    w.u64("snoop_seed", c.snoop_seed);
    w.u64("watchdog_cycles", c.watchdog_cycles);
    // skip_ahead and issue_scan are deliberately excluded: both are
    // exact-equivalence execution strategies (pinned by
    // test_skip_ahead / test_ready_queue) that cannot change a result,
    // so they must not fragment the content address space.
    w.end("config");
    return w.bytes();
}

std::string
serializeSuite(const workload::SuiteProfile &s)
{
    CanonicalWriter w;
    w.begin("suite");
    w.str("name", s.name);

    w.f64("load_frac", s.load_frac);
    w.f64("store_frac", s.store_frac);
    w.f64("branch_frac", s.branch_frac);
    w.f64("fp_frac", s.fp_frac);
    w.f64("mul_frac", s.mul_frac);

    w.u32("hot_lines", s.hot_lines);
    w.u32("warm_lines", s.warm_lines);
    w.u32("cold_lines", s.cold_lines);
    w.f64("warm_frac", s.warm_frac);
    w.f64("cold_frac", s.cold_frac);
    w.f64("background_cold_frac", s.background_cold_frac);
    w.u32("burst_period_uops", s.burst_period_uops);
    w.u32("burst_len_uops", s.burst_len_uops);
    w.f64("stream_frac", s.stream_frac);
    w.u32("stream_wrap_lines", s.stream_wrap_lines);

    w.f64("chain_frac", s.chain_frac);
    w.f64("leaf_frac", s.leaf_frac);
    w.u32("num_strands", s.num_strands);
    w.f64("strand_restart", s.strand_restart);
    w.f64("store_chain_frac", s.store_chain_frac);
    w.f64("store_leaf_frac", s.store_leaf_frac);
    w.f64("pointer_chase_frac", s.pointer_chase_frac);
    w.f64("fwd_pair_frac", s.fwd_pair_frac);
    w.u32("fwd_distance", s.fwd_distance);

    w.f64("hard_branch_frac", s.hard_branch_frac);
    w.f64("easy_branch_bias", s.easy_branch_bias);

    w.u32("static_uops", s.static_uops);
    w.u64("seed", s.seed);
    w.end("suite");
    return w.bytes();
}

Hash128
pointKey(const core::ProcessorConfig &config,
         const workload::SuiteProfile &suite, std::uint64_t uops,
         std::uint64_t run_seed, bool occupancy_series)
{
    CanonicalWriter w;
    w.str("schema", kSchemaVersion);
    w.begin("point");
    w.u64("uops", uops);
    w.u64("run_seed", run_seed);
    w.boolean("occupancy_series", occupancy_series);
    w.end("point");
    std::string bytes = w.bytes();
    bytes += serializeConfig(config);
    bytes += serializeSuite(suite);
    return hashString(bytes);
}

Hash128
pointKey(const core::ProcessorConfig &config,
         const workload::SuiteProfile &suite, std::uint64_t uops,
         std::uint64_t run_seed, bool occupancy_series,
         std::uint64_t ff_uops, std::uint64_t warm_uops,
         std::uint64_t detail_uops, std::uint64_t shard_start,
         std::uint64_t shard_count, bool pipelined)
{
    if (ff_uops == 0 && warm_uops == 0 && detail_uops == 0)
        return pointKey(config, suite, uops, run_seed,
                        occupancy_series);
    CanonicalWriter w;
    w.str("schema", kSchemaVersion);
    w.begin("point");
    w.u64("uops", uops);
    w.u64("run_seed", run_seed);
    w.boolean("occupancy_series", occupancy_series);
    w.end("point");
    w.begin("sampling");
    w.u64("ff_uops", ff_uops);
    w.u64("warm_uops", warm_uops);
    w.u64("detail_uops", detail_uops);
    w.u64("shard_start", shard_start);
    w.u64("shard_count", shard_count);
    // Folded in only when set so every chained-mode address predating
    // the pipelined engine survives unchanged.
    if (pipelined)
        w.boolean("pipelined", true);
    w.end("sampling");
    std::string bytes = w.bytes();
    bytes += serializeConfig(config);
    bytes += serializeSuite(suite);
    return hashString(bytes);
}

} // namespace chash
} // namespace srl
