/**
 * @file
 * Runtime debug tracing, in the spirit of gem5's DPRINTF: named debug
 * flags that can be enabled programmatically or via the SRLSIM_DEBUG
 * environment variable (comma-separated flag names, e.g.
 * `SRLSIM_DEBUG=Srl,Rollback ./build/examples/quickstart`). Disabled
 * flags cost one branch per site; output goes to stderr with the flag
 * name prefixed, so traces from different subsystems interleave
 * legibly.
 */

#ifndef SRLSIM_COMMON_DEBUG_HH
#define SRLSIM_COMMON_DEBUG_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace srl
{
namespace debug
{

/** Debug flags, one per traceable subsystem. */
enum class Flag : std::uint32_t
{
    kFetch = 1u << 0,
    kAlloc = 1u << 1,
    kIssue = 1u << 2,
    kCommit = 1u << 3,
    kSrl = 1u << 4,
    kLcf = 1u << 5,
    kFwdCache = 1u << 6,
    kLoadBuffer = 1u << 7,
    kSlice = 1u << 8,
    kRollback = 1u << 9,
    kDrain = 1u << 10,
    kSnoop = 1u << 11,
    kCheckpoint = 1u << 12,
};

/** Enable/disable one flag. */
void setFlag(Flag flag, bool enabled);

/** Enable flags from a comma-separated list of names ("Srl,Rollback").
 *  Unknown names are reported with warn() and skipped.
 *  @return number of flags enabled. */
unsigned enableFromList(const std::string &list);

/** Parse the SRLSIM_DEBUG environment variable (done lazily on first
 *  isEnabled call; callable explicitly from tests). */
void initFromEnvironment();

namespace detail
{
// Exposed so isEnabled inlines to a load-and-test at every DTRACE
// site; treat as private to debug.cc otherwise.
extern std::atomic<std::uint32_t> g_flags;
extern std::atomic<bool> g_env_parsed;
} // namespace detail

/** Is @p flag currently enabled? */
inline bool
isEnabled(Flag flag)
{
    if (!detail::g_env_parsed.load(std::memory_order_relaxed))
        initFromEnvironment();
    return (detail::g_flags.load(std::memory_order_relaxed) &
            static_cast<std::uint32_t>(flag)) != 0;
}

/** Disable everything (test isolation). */
void clearAll();

/** Name of a flag ("Srl"), for output prefixes. */
const char *flagName(Flag flag);

/** Emit one printf-formatted trace line, prefixed with the flag name. */
void tracef(Flag flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace debug
} // namespace srl

/**
 * Trace-point macro: cheap when the flag is off.
 *   DTRACE(kSrl, "drain seq %llu addr %#llx", seq, addr);
 */
#define DTRACE(flag, ...)                                                \
    do {                                                                 \
        if (::srl::debug::isEnabled(::srl::debug::Flag::flag))           \
            ::srl::debug::tracef(::srl::debug::Flag::flag,               \
                                 __VA_ARGS__);                           \
    } while (0)

#endif // SRLSIM_COMMON_DEBUG_HH
