/**
 * @file
 * Fixed-capacity circular FIFO. This is the structural idiom behind the
 * Store Redo Log, the Slice Data Buffer, and the load/store ordering
 * bit-array: hardware queues with head/tail pointers and wrap-around,
 * where capacity is a hard structural limit (push on full is a modeling
 * bug, so it panics).
 *
 * Entries are addressable by a stable *slot index* (the physical position
 * in the ring), which is how the SRL hands out store identifiers that
 * other structures (LCF, SDB) record and later use to index back in.
 */

#ifndef SRLSIM_COMMON_CIRCULAR_FIFO_HH
#define SRLSIM_COMMON_CIRCULAR_FIFO_HH

#include <cstddef>
#include <vector>

#include "logging.hh"

namespace srl
{

template <typename T>
class CircularFifo
{
  public:
    explicit CircularFifo(std::size_t capacity)
        : slots_(capacity), capacity_(capacity)
    {
        panic_if(capacity == 0, "CircularFifo capacity must be > 0");
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == capacity_; }

    /** Physical slot index the next push will occupy. */
    std::size_t tailSlot() const { return tail_; }

    /** Physical slot index of the current head entry. @pre !empty() */
    std::size_t
    headSlot() const
    {
        panic_if(empty(), "headSlot() on empty fifo");
        return head_;
    }

    /** Append an entry; returns its physical slot index. @pre !full() */
    std::size_t
    push(T value)
    {
        panic_if(full(), "push() on full fifo (capacity %zu)", capacity_);
        const std::size_t slot = tail_;
        slots_[slot] = std::move(value);
        tail_ = next(tail_);
        ++size_;
        return slot;
    }

    /** Remove and return the head entry. @pre !empty() */
    T
    pop()
    {
        panic_if(empty(), "pop() on empty fifo");
        T value = std::move(slots_[head_]);
        head_ = next(head_);
        --size_;
        return value;
    }

    /** Access the head entry in place. @pre !empty() */
    T &
    front()
    {
        panic_if(empty(), "front() on empty fifo");
        return slots_[head_];
    }

    const T &
    front() const
    {
        panic_if(empty(), "front() on empty fifo");
        return slots_[head_];
    }

    /**
     * Access an entry by physical slot index. The caller must know the
     * slot is live (between head and tail); this models indexed access
     * into a hardware ring (e.g. SRL indexed forwarding).
     */
    T &at(std::size_t slot) { return slots_[slot]; }
    const T &at(std::size_t slot) const { return slots_[slot]; }

    /** True iff physical slot @p slot currently holds a live entry. */
    bool
    isLive(std::size_t slot) const
    {
        if (slot >= capacity_ || size_ == 0)
            return false;
        if (size_ == capacity_)
            return true;
        if (head_ <= tail_)
            return slot >= head_ && slot < tail_;
        return slot >= head_ || slot < tail_;
    }

    /** Logical position (0 = head) of live physical slot @p slot. */
    std::size_t
    logicalIndex(std::size_t slot) const
    {
        panic_if(!isLive(slot), "logicalIndex() of dead slot %zu", slot);
        return slot >= head_ ? slot - head_ : slot + capacity_ - head_;
    }

    /** Drop all entries. */
    void
    clear()
    {
        head_ = 0;
        tail_ = 0;
        size_ = 0;
    }

    /** Apply @p fn to each live entry in FIFO order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::size_t slot = head_;
        for (std::size_t i = 0; i < size_; ++i) {
            fn(slots_[slot]);
            slot = next(slot);
        }
    }

  private:
    std::size_t next(std::size_t i) const { return (i + 1) % capacity_; }

    std::vector<T> slots_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    std::size_t size_ = 0;
};

} // namespace srl

#endif // SRLSIM_COMMON_CIRCULAR_FIFO_HH
