/**
 * @file
 * Status and error reporting, following the gem5 convention:
 *
 *  - panic(): an internal simulator invariant was violated (a bug in
 *    srlsim itself). Aborts so a debugger/core dump is available.
 *  - fatal(): the simulation cannot continue because of a user error
 *    (bad configuration, invalid arguments). Exits with status 1.
 *  - warn()/inform(): non-terminating status messages.
 */

#ifndef SRLSIM_COMMON_LOGGING_HH
#define SRLSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace srl
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace srl

/** Abort with a message: an srlsim bug, never a user error. */
#define panic(...)                                                        \
    ::srl::detail::panicImpl(__FILE__, __LINE__,                          \
                             ::srl::detail::vformat(__VA_ARGS__))

/** Exit(1) with a message: a user/configuration error. */
#define fatal(...)                                                        \
    ::srl::detail::fatalImpl(__FILE__, __LINE__,                          \
                             ::srl::detail::vformat(__VA_ARGS__))

/** Non-fatal warning. */
#define warn(...)                                                         \
    ::srl::detail::warnImpl(::srl::detail::vformat(__VA_ARGS__))

/** Informational status message. */
#define inform(...)                                                       \
    ::srl::detail::informImpl(::srl::detail::vformat(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

/** fatal() unless @p cond holds. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

#endif // SRLSIM_COMMON_LOGGING_HH
