/**
 * @file
 * Ordered set of issuable scheduler entries, the storage behind the
 * dependence-driven wakeup/select model (processor.cc "Scheduler
 * sleep/wakeup").
 *
 * Each scheduler entry carries a monotonically increasing *ticket*
 * assigned when it enters a scheduler list; the legacy issue scan
 * visited entries in list order, and since lists only ever push at the
 * back, ticket order *is* list order. The ready queue holds exactly
 * the awake (not producer-blocked) entries of one scheduler class,
 * ordered by ticket, so popping in ticket order reproduces the scan's
 * selection order while touching only ready work.
 *
 * Storage is a sorted flat vector of 16-byte entries: the population
 * is bounded by the scheduler class capacity (tens of entries), so
 * binary search plus a memmove beats any node-based container, reuses
 * its capacity steadily (no per-cycle allocation), and iterating with
 * a ticket cursor survives arbitrary insert/erase during the walk —
 * wakeups triggered mid-issue (a producer poisons and drains to the
 * slice) land exactly where the legacy scan would have observed them.
 */

#ifndef SRLSIM_COMMON_READY_QUEUE_HH
#define SRLSIM_COMMON_READY_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace srl
{

class ReadyQueue
{
  public:
    struct Entry
    {
        std::uint64_t ticket;
        std::uint64_t seq;
        bool operator<(const Entry &o) const { return ticket < o.ticket; }
    };

    /** Insert (idempotent: re-inserting a present ticket is a no-op). */
    void
    insert(std::uint64_t ticket, std::uint64_t seq)
    {
        // Fast path: wakeups overwhelmingly arrive in ticket order
        // relative to the current tail (younger consumers sleep later).
        if (v_.empty() || v_.back().ticket < ticket) {
            v_.push_back(Entry{ticket, seq});
            return;
        }
        const auto it = std::lower_bound(v_.begin(), v_.end(),
                                         Entry{ticket, 0});
        if (it != v_.end() && it->ticket == ticket)
            return;
        v_.insert(it, Entry{ticket, seq});
    }

    /** Erase by ticket; a no-op when absent (entry already asleep). */
    void
    erase(std::uint64_t ticket)
    {
        // The overwhelmingly common erase is of the entry the issue
        // walk just visited (it issued or went to sleep); firstAfter
        // remembers that position, saving the binary search.
        if (visit_pos_ < v_.size() && v_[visit_pos_].ticket == ticket) {
            v_.erase(v_.begin() + static_cast<std::ptrdiff_t>(visit_pos_));
            return;
        }
        const auto it = std::lower_bound(v_.begin(), v_.end(),
                                         Entry{ticket, 0});
        if (it != v_.end() && it->ticket == ticket)
            v_.erase(it);
    }

    /**
     * The entry with the smallest ticket strictly greater than
     * @p ticket, or nullptr. The issue loop's cursor: robust against
     * any insert/erase between calls, including of the cursor entry.
     *
     * @p hint is a position guess maintained by the caller across a
     * walk (start it at 0). The result never depends on it — the
     * resync loops land on the unique sorted position with ticket >
     * @p ticket from any starting point — but a good hint (the common
     * case: the walk advances one entry, or the current entry was just
     * erased) turns the lookup into one or two comparisons instead of
     * a binary search.
     */
    const Entry *
    firstAfter(std::uint64_t ticket, std::size_t &hint) const
    {
        std::size_t i = hint < v_.size() ? hint : v_.size();
        while (i > 0 && v_[i - 1].ticket > ticket)
            --i;
        while (i < v_.size() && v_[i].ticket <= ticket)
            ++i;
        hint = i + 1;
        visit_pos_ = i;
        return i == v_.size() ? nullptr : &v_[i];
    }

    bool empty() const { return v_.empty(); }
    std::size_t size() const { return v_.size(); }
    void clear() { v_.clear(); }

    const Entry &operator[](std::size_t i) const { return v_[i]; }

  private:
    std::vector<Entry> v_;
    /** Index returned by the last firstAfter call (see erase). */
    mutable std::size_t visit_pos_ = 0;
};

} // namespace srl

#endif // SRLSIM_COMMON_READY_QUEUE_HH
