/**
 * @file
 * A small statistics package in the spirit of gem5's Stats, sized for
 * srlsim's needs: named scalar counters, averages, ratio formulas,
 * fixed-bucket distributions and threshold ("at least N") occupancy
 * histograms, all registerable in a StatGroup that can render itself as
 * an aligned text table.
 *
 * The occupancy distribution directly supports the paper's Figure 7
 * (SRL occupancy CDF at thresholds 0, 64, 128, ... 1024).
 */

#ifndef SRLSIM_COMMON_STATS_HH
#define SRLSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace srl
{
namespace stats
{

/** A named 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &
    operator++()
    {
        ++value_;
        return *this;
    }

    Scalar &
    operator+=(std::uint64_t v)
    {
        value_ += v;
        return *this;
    }

    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of observed samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

  private:
    double sum_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Histogram over explicit bucket upper bounds. A sample v lands in the
 * first bucket whose bound is >= v; samples beyond the last bound land
 * in a final overflow bucket.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<std::uint64_t> bounds);

    void sample(std::uint64_t v, std::uint64_t weight = 1);
    void reset();

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }
    const std::vector<std::uint64_t> &counts() const { return counts_; }
    std::uint64_t total() const { return total_; }

    /** Fraction of samples strictly greater than @p threshold. */
    double fractionAbove(std::uint64_t threshold) const;

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Time-weighted occupancy tracker: records, for each observed occupancy
 * value, how many cycles the structure spent at that occupancy. Reports
 * the "percent of occupied time with occupancy > N" series of Figure 7.
 */
class Occupancy
{
  public:
    /** Record that the structure held @p entries for @p cycles. */
    void observe(std::uint64_t entries, std::uint64_t cycles);
    void reset();

    /** Total cycles observed with occupancy > 0. */
    std::uint64_t occupiedCycles() const { return occupied_cycles_; }

    /** Total cycles observed (including empty). */
    std::uint64_t totalCycles() const { return total_cycles_; }

    /** Max occupancy ever observed. */
    std::uint64_t peak() const { return peak_; }

    /**
     * Percent of *occupied* time the occupancy exceeded @p threshold
     * (the paper's Figure 7 y-axis; ">0" is 100% by construction).
     */
    double percentAbove(std::uint64_t threshold) const;

    /** Percent of *total* time the structure was non-empty (Table 3). */
    double percentOccupied() const;

    /**
     * Per-occupancy cycle counts, exposed so sampled runs can
     * serialize the tracker and merge per-interval observations:
     * replaying observe(entries, cycles) over this map reconstructs
     * the tracker exactly.
     */
    const std::map<std::uint64_t, std::uint64_t> &
    cyclesAt() const
    {
        return cycles_at_;
    }

    /** Fold another tracker's observations into this one. */
    void merge(const Occupancy &other);

  private:
    std::map<std::uint64_t, std::uint64_t> cycles_at_;
    std::uint64_t occupied_cycles_ = 0;
    std::uint64_t total_cycles_ = 0;
    std::uint64_t peak_ = 0;
};

/** One row of a rendered stats table. */
struct StatRow
{
    std::string name;
    double value;
    std::string desc;
};

/**
 * A named collection of stats rendered as an aligned table. Modules
 * register (name, getter, description) rows; the group pulls current
 * values on dump.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void registerScalar(const std::string &name, const Scalar *s,
                        const std::string &desc);
    void registerAverage(const std::string &name, const Average *a,
                         const std::string &desc);
    void registerValue(const std::string &name, const double *v,
                       const std::string &desc);

    /** Current snapshot of all registered rows. */
    std::vector<StatRow> snapshot() const;

    /** Render an aligned text table. */
    std::string format() const;

    const std::string &name() const { return name_; }

  private:
    enum class Kind { kScalar, kAverage, kValue };

    struct Entry
    {
        std::string name;
        Kind kind;
        const void *ptr;
        std::string desc;
    };

    std::string name_;
    std::vector<Entry> entries_;
};

/**
 * Deterministically render @p v so that parsing the text recovers the
 * exact double (shortest of %.15g/%.16g/%.17g that round-trips). Used
 * by every machine-readable export so identical results serialize to
 * identical bytes regardless of thread count or platform locale.
 */
std::string formatDouble(double v);

/**
 * One simulation run inside a StatsReport: a row name, string metadata
 * (config/suite/seed), and an *ordered* list of named metric values.
 * Metric order is insertion order and is preserved by the JSON
 * round-trip, so reports built from the same sweep are byte-identical.
 */
struct RunRecord
{
    std::string name;
    std::map<std::string, std::string> meta;
    std::vector<std::pair<std::string, double>> metrics;
    /** Non-empty iff the run failed; metrics are then best-effort. */
    std::string error;

    /** Append (or overwrite) one named metric. */
    void set(const std::string &key, double v);

    bool hasMetric(const std::string &key) const;

    /** Value of @p key; throws std::out_of_range if absent. */
    double metric(const std::string &key) const;

    bool failed() const { return !error.empty(); }
};

/** Raised by StatsReport::fromJson on malformed input. */
class ParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A machine-readable sweep report: report-level metadata plus one
 * RunRecord per sweep point, in sweep order. Serializes to a stable
 * JSON schema ("srlsim-stats-v1") and to CSV; fromJson inverts toJson
 * exactly (byte-identical re-serialization), which is what the CI
 * determinism check diffs.
 */
struct StatsReport
{
    std::map<std::string, std::string> meta;
    std::vector<RunRecord> runs;

    /** Stable, deterministic JSON (2-space indent, trailing newline). */
    std::string toJson() const;

    /**
     * Wide-format CSV: one row per run; columns are `name`, `error`,
     * the sorted union of run-meta keys, then the union of metric
     * names in first-appearance order. Missing cells are empty.
     */
    std::string toCsv() const;

    /** Parse a report serialized by toJson. @throws ParseError */
    static StatsReport fromJson(const std::string &text);
};

} // namespace stats
} // namespace srl

#endif // SRLSIM_COMMON_STATS_HH
