/**
 * @file
 * Little-endian byte codec for simulator state serialization.
 *
 * ByteWriter appends fixed-width fields to a growable byte buffer;
 * ByteReader consumes them back, throwing CodecError on truncation or
 * trailing garbage. All integers are written little-endian byte by
 * byte, so the encoding is identical across platforms — the snapshot
 * digest of a simulator state is therefore portable.
 *
 * Components own their wire format: each serializable class exposes
 * `serialize(ByteWriter&) const` / `deserialize(ByteReader&)` members
 * and this header stays ignorant of what is being encoded. The
 * checkpoint file container (header, digest, atomic write) lives in
 * src/core/snapshot.
 */

#ifndef SRLSIM_COMMON_BYTES_HH
#define SRLSIM_COMMON_BYTES_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace srl
{
namespace bytes
{

/** Raised by ByteReader on truncated or malformed input. */
class CodecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Append-only little-endian encoder over a std::string buffer. */
class ByteWriter
{
  public:
    ByteWriter() = default;

    /**
     * Recycle @p buf as the output buffer: its contents are cleared
     * but its capacity is kept, so a writer fed from a buffer pool
     * reaches a steady state where serialization allocates nothing.
     */
    explicit ByteWriter(std::string &&buf) : buf_(std::move(buf))
    {
        buf_.clear();
    }

    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    raw(const void *data, std::size_t size)
    {
        buf_.append(static_cast<const char *>(data), size);
    }

    /** Length-prefixed byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        raw(s.data(), s.size());
    }

    const std::string &data() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Sequential decoder over a byte buffer; throws on truncation. */
class ByteReader
{
  public:
    ByteReader(const void *data, std::size_t size)
        : data_(static_cast<const std::uint8_t *>(data)), size_(size)
    {
    }

    explicit ByteReader(const std::string &buf)
        : ByteReader(buf.data(), buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (std::uint16_t{u8()} << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t{u16()} << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t{u32()} << 32);
    }

    bool
    boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw CodecError("byte codec: bad boolean");
        return v != 0;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void
    raw(void *out, std::size_t size)
    {
        need(size);
        std::memcpy(out, data_ + pos_, size);
        pos_ += size;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

    /** Require that the whole buffer was consumed. */
    void
    expectEnd() const
    {
        if (!atEnd())
            throw CodecError("byte codec: trailing bytes");
    }

  private:
    void
    need(std::size_t n) const
    {
        if (size_ - pos_ < n)
            throw CodecError("byte codec: truncated input");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace bytes
} // namespace srl

#endif // SRLSIM_COMMON_BYTES_HH
