/**
 * @file
 * Analytical power and area model for the load/store tracking
 * structures (paper Section 6.2).
 *
 * The paper reports SPICE measurements of two designed circuits in a
 * 90 nm technology [Kuhn et al. 2002]:
 *
 *   512-entry L2 STQ CAM (36 addr bits + 8 byte-mask bits per entry):
 *     area 1.4 mm^2, leakage 95 mW, dynamic 4.4 W if every load
 *     searches (440 mW at the hierarchical design's 10% lookup rate).
 *
 *   512-entry SRL (6-byte entries) + 2K-entry LCF (2-byte entries):
 *     area 0.35 mm^2, leakage 40 mW, dynamic 30 mW.
 *   Adding the 256-entry forwarding cache:
 *     area 0.45 mm^2, leakage 48 mW, dynamic 37 mW.
 *
 * Without SPICE or a PDK, this model derives per-bit constants for
 * three circuit families — CAM bitcells (match-line + storage), queue
 * RAM (register-file style), and SRAM (6T cache arrays) — from exactly
 * those published datapoints, then evaluates arbitrary configurations
 * (entry counts, widths, activity factors) at 8 GHz. Absolute numbers
 * therefore reproduce the paper's table by construction; the model's
 * value is the *scaling*: how area/leakage/dynamic power move with
 * queue size and lookup rate, which is the paper's argument against
 * large CAMs.
 */

#ifndef SRLSIM_POWER_MODEL_HH
#define SRLSIM_POWER_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace srl
{
namespace power
{

/** Per-bit constants of one circuit family at 90 nm. */
struct BitConstants
{
    double area_mm2;   ///< layout area per bit
    double leak_mw;    ///< leakage power per bit
    double energy_pj;  ///< energy per bit activated per access
};

/** The calibrated 90 nm technology point. */
struct Technology90nm
{
    double freq_ghz = 8.0;
    BitConstants cam;  ///< CAM cell: XOR compare + match line
    BitConstants ram;  ///< queue/register-file RAM
    BitConstants sram; ///< 6T SRAM (cache) arrays
};

/** The constants derived from the paper's published datapoints. */
Technology90nm paperTechnology();

/** A structure to evaluate. */
struct StructureDesign
{
    std::string name;
    std::uint64_t entries = 0;
    unsigned cam_bits_per_entry = 0;  ///< searched on every lookup
    unsigned ram_bits_per_entry = 0;  ///< read/written per access
    unsigned sram_bits_per_entry = 0; ///< cache-style storage
};

/** Average activity, in events per core cycle. */
struct Activity
{
    /** CAM searches per cycle (each activates all entries' CAM bits). */
    double searches_per_cycle = 0.0;
    /** RAM/SRAM entry reads+writes per cycle (decoded: one entry). */
    double accesses_per_cycle = 0.0;
};

struct PowerArea
{
    double area_mm2 = 0.0;
    double leakage_mw = 0.0;
    double dynamic_mw = 0.0;

    double total_mw() const { return leakage_mw + dynamic_mw; }
};

/** Evaluate @p design under @p activity at technology @p tech. */
PowerArea evaluate(const StructureDesign &design,
                   const Activity &activity,
                   const Technology90nm &tech);

// --- The paper's specific structures, for the Section 6.2 table ---

/** The hierarchical design's N-entry L2 STQ CAM array. */
StructureDesign l2StqDesign(std::uint64_t entries);

/** An N-entry SRL address queue. */
StructureDesign srlDesign(std::uint64_t entries);

/** An N-entry LCF (10-bit SRL index + 6-bit counter per entry). */
StructureDesign lcfDesign(std::uint64_t entries);

/** The 256-entry, 4-way forwarding cache. */
StructureDesign fwdCacheDesign(std::uint64_t entries);

/** One row of the Section 6.2 comparison. */
struct ComparisonRow
{
    std::string name;
    PowerArea model;
    PowerArea paper; ///< published values (0 when the paper gives none)
};

/**
 * Reproduce the Section 6.2 comparison: the 512-entry L2 STQ versus
 * the 512-entry SRL + 2K LCF, with and without the forwarding cache.
 * @p l2_lookup_fraction is the fraction of loads that search the L2
 * STQ (0.10 in the hierarchical design).
 */
std::vector<ComparisonRow> section62Comparison(
    double l2_lookup_fraction = 0.10);

} // namespace power
} // namespace srl

#endif // SRLSIM_POWER_MODEL_HH
