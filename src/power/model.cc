#include "power/model.hh"

#include "common/logging.hh"

namespace srl
{
namespace power
{

namespace
{

// Bit counts of the paper's designed structures (Section 6.2).
constexpr unsigned kL2StqCamBits = 36 + 8; // address + byte mask
constexpr unsigned kSrlEntryBits = 48;     // 6-byte address+data record
constexpr unsigned kLcfEntryBits = 16;     // 10-bit index + 6-bit count
constexpr unsigned kFcEntryBits = 100;     // tag + byte mask + 64b data

// Published calibration datapoints.
constexpr double kL2Stq512Area = 1.4;    // mm^2
constexpr double kL2Stq512Leak = 95.0;   // mW
constexpr double kL2Stq512DynFull = 4400.0; // mW at 1 search/cycle
constexpr double kSrlLcfArea = 0.35;     // mm^2 (512 SRL + 2K LCF)
constexpr double kSrlLcfLeak = 40.0;
constexpr double kSrlLcfDyn = 30.0;      // at nominal activity
constexpr double kFcDeltaArea = 0.45 - 0.35;
constexpr double kFcDeltaLeak = 48.0 - 40.0;
constexpr double kFcDeltaDyn = 37.0 - 30.0;

constexpr double kFreqGhz = 8.0;

// Nominal activity used to back out per-bit dynamic energies: the SRL
// sees one entry write and one entry read per cycle plus two LCF
// half-accesses, the FC one access per cycle — the rates at which the
// paper's dynamic numbers were quoted.
constexpr double kSrlNominalBitsPerCycle =
    2.0 * kSrlEntryBits + 2.0 * kLcfEntryBits;
constexpr double kFcNominalBitsPerCycle = 1.0 * kFcEntryBits;

} // namespace

Technology90nm
paperTechnology()
{
    Technology90nm t;
    t.freq_ghz = kFreqGhz;

    const double cam_bits = 512.0 * kL2StqCamBits;
    t.cam.area_mm2 = kL2Stq512Area / cam_bits;
    t.cam.leak_mw = kL2Stq512Leak / cam_bits;
    // 4.4 W when every cycle searches all CAM bits.
    t.cam.energy_pj =
        kL2Stq512DynFull * 1e-3 / (kFreqGhz * 1e9 * cam_bits) * 1e12;

    const double ram_bits = 512.0 * kSrlEntryBits + 2048.0 * kLcfEntryBits;
    t.ram.area_mm2 = kSrlLcfArea / ram_bits;
    t.ram.leak_mw = kSrlLcfLeak / ram_bits;
    t.ram.energy_pj = kSrlLcfDyn * 1e-3 /
                      (kFreqGhz * 1e9 * kSrlNominalBitsPerCycle) * 1e12;

    const double sram_bits = 256.0 * kFcEntryBits;
    t.sram.area_mm2 = kFcDeltaArea / sram_bits;
    t.sram.leak_mw = kFcDeltaLeak / sram_bits;
    t.sram.energy_pj = kFcDeltaDyn * 1e-3 /
                       (kFreqGhz * 1e9 * kFcNominalBitsPerCycle) * 1e12;

    return t;
}

PowerArea
evaluate(const StructureDesign &design, const Activity &activity,
         const Technology90nm &tech)
{
    PowerArea out;
    const double entries = static_cast<double>(design.entries);
    const double cam_bits = entries * design.cam_bits_per_entry;
    const double ram_bits = entries * design.ram_bits_per_entry;
    const double sram_bits = entries * design.sram_bits_per_entry;

    out.area_mm2 = cam_bits * tech.cam.area_mm2 +
                   ram_bits * tech.ram.area_mm2 +
                   sram_bits * tech.sram.area_mm2;
    out.leakage_mw = cam_bits * tech.cam.leak_mw +
                     ram_bits * tech.ram.leak_mw +
                     sram_bits * tech.sram.leak_mw;

    const double hz = tech.freq_ghz * 1e9;
    // A CAM search activates every entry's compare bits; a RAM/SRAM
    // access activates one decoded entry's bits.
    const double cam_w = activity.searches_per_cycle * hz * cam_bits *
                         tech.cam.energy_pj * 1e-12;
    const double ram_w = activity.accesses_per_cycle * hz *
                         design.ram_bits_per_entry *
                         tech.ram.energy_pj * 1e-12;
    const double sram_w = activity.accesses_per_cycle * hz *
                          design.sram_bits_per_entry *
                          tech.sram.energy_pj * 1e-12;
    out.dynamic_mw = (cam_w + ram_w + sram_w) * 1e3;
    return out;
}

StructureDesign
l2StqDesign(std::uint64_t entries)
{
    return {"L2 STQ (CAM)", entries, kL2StqCamBits, 0, 0};
}

StructureDesign
srlDesign(std::uint64_t entries)
{
    return {"SRL (FIFO)", entries, 0, kSrlEntryBits, 0};
}

StructureDesign
lcfDesign(std::uint64_t entries)
{
    return {"LCF", entries, 0, kLcfEntryBits, 0};
}

StructureDesign
fwdCacheDesign(std::uint64_t entries)
{
    return {"Forwarding cache", entries, 0, 0, kFcEntryBits};
}

std::vector<ComparisonRow>
section62Comparison(double l2_lookup_fraction)
{
    const Technology90nm tech = paperTechnology();
    std::vector<ComparisonRow> rows;

    // 512-entry L2 STQ, searched by l2_lookup_fraction of loads.
    {
        ComparisonRow r;
        r.name = "512-entry L2 STQ (hierarchical)";
        r.model = evaluate(l2StqDesign(512),
                           {l2_lookup_fraction, 0.0}, tech);
        r.paper = {1.4, 95.0, 440.0};
        rows.push_back(r);
    }

    // 512-entry SRL + 2K LCF.
    {
        ComparisonRow r;
        r.name = "512-entry SRL + 2K-entry LCF";
        const PowerArea srl =
            evaluate(srlDesign(512), {0.0, 2.0}, tech);
        const PowerArea lcf =
            evaluate(lcfDesign(2048), {0.0, 2.0}, tech);
        r.model = {srl.area_mm2 + lcf.area_mm2,
                   srl.leakage_mw + lcf.leakage_mw,
                   srl.dynamic_mw + lcf.dynamic_mw};
        r.paper = {0.35, 40.0, 30.0};
        rows.push_back(r);
    }

    // Plus the forwarding cache.
    {
        ComparisonRow r;
        r.name = "SRL + LCF + 256-entry forwarding cache";
        const PowerArea base = rows.back().model;
        const PowerArea fc =
            evaluate(fwdCacheDesign(256), {0.0, 1.0}, tech);
        r.model = {base.area_mm2 + fc.area_mm2,
                   base.leakage_mw + fc.leakage_mw,
                   base.dynamic_mw + fc.dynamic_mw};
        r.paper = {0.45, 48.0, 37.0};
        rows.push_back(r);
    }

    return rows;
}

} // namespace power
} // namespace srl
