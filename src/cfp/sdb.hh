/**
 * @file
 * Slice Data Buffer (paper Sections 1, 2.1; Continual Flow Pipelines
 * [Srinivasan et al., ASPLOS 2004]).
 *
 * Miss-dependent instructions (the "slice") drain out of the pipeline in
 * program order, releasing scheduler and register-file resources, and
 * wait here with their *ready source values captured*. When the miss
 * data returns they re-enter the pipeline in FIFO order, re-acquire
 * resources, and execute; captured sources are immediately ready, while
 * poisoned sources resolve through the slice's own dataflow. Slice uops
 * keep their original sequence numbers and checkpoint membership — their
 * checkpoints simply cannot commit until the slice completes.
 *
 * A dependent store's entry records the SRL slot reserved for it, so its
 * re-execution can fill that slot (paper Section 4.3).
 */

#ifndef SRLSIM_CFP_SDB_HH
#define SRLSIM_CFP_SDB_HH

#include <cstdint>
#include <deque>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/uop.hh"
#include "lsq/store_id.hh"

namespace srl
{
namespace cfp
{

/** One slice entry: a drained uop plus its captured-source state. */
struct SliceEntry
{
    isa::Uop uop;
    CheckpointId ckpt = kInvalidCheckpoint;
    /** SRL slot reserved for a dependent store (stores only). */
    lsq::StoreId srl_id = lsq::kNullStoreId;
    bool has_srl_slot = false;
    /** Source captured ready at drain time (value travels with entry). */
    bool src1_captured = false;
    bool src2_captured = false;
    /** Producer seq for non-captured (poisoned) sources. */
    SeqNum src1_producer = kInvalidSeqNum;
    SeqNum src2_producer = kInvalidSeqNum;
    /** Number of times this uop has passed through the SDB. */
    unsigned passes = 0;
};

struct SdbParams
{
    unsigned capacity = 8192;
};

class SliceDataBuffer
{
  public:
    explicit SliceDataBuffer(const SdbParams &params) : params_(params) {}

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    bool full() const { return entries_.size() >= params_.capacity; }

    /**
     * Drain a slice uop into the buffer. Entries are kept in program
     * order; drains arrive nearly ordered but can interleave across
     * scheduler classes, so insertion is age-ordered (hardware drains
     * through an ordered slice-rename stage).
     */
    void
    push(SliceEntry entry)
    {
        panic_if(full(), "SDB overflow (capacity %u)", params_.capacity);
        auto it = entries_.end();
        while (it != entries_.begin() &&
               std::prev(it)->uop.seq > entry.uop.seq)
            --it;
        panic_if(it != entries_.begin() &&
                     std::prev(it)->uop.seq == entry.uop.seq,
                 "duplicate SDB drain for seq %llu",
                 static_cast<unsigned long long>(entry.uop.seq));
        entries_.insert(it, std::move(entry));
        ++drained;
        peak_size = std::max(peak_size, entries_.size());
    }

    /** Oldest entry. @pre !empty() */
    const SliceEntry &
    front() const
    {
        panic_if(entries_.empty(), "SDB front() when empty");
        return entries_.front();
    }

    /** Remove and return the oldest entry. @pre !empty() */
    SliceEntry
    pop()
    {
        panic_if(entries_.empty(), "SDB pop() when empty");
        SliceEntry e = std::move(entries_.front());
        entries_.pop_front();
        ++reinserted;
        return e;
    }

    /** Squash entries younger than @p seq (rollback). */
    void
    squashAfter(SeqNum seq)
    {
        while (!entries_.empty() && entries_.back().uop.seq > seq)
            entries_.pop_back();
    }

    void clear() { entries_.clear(); }

    stats::Scalar drained;
    stats::Scalar reinserted;
    std::size_t peak_size = 0;

  private:
    SdbParams params_;
    std::deque<SliceEntry> entries_;
};

} // namespace cfp
} // namespace srl

#endif // SRLSIM_CFP_SDB_HH
