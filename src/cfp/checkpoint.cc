#include "cfp/checkpoint.hh"

#include <algorithm>

#include "common/logging.hh"

namespace srl
{
namespace cfp
{

CheckpointManager::CheckpointManager(const CheckpointParams &params)
    : params_(params)
{
    fatal_if(params_.num_checkpoints == 0,
             "need at least one checkpoint");
    fatal_if(params_.max_interval == 0, "checkpoint interval must be > 0");
    by_slot_.assign(params_.num_checkpoints, nullptr);
}

bool
CheckpointManager::wantNew(bool is_branch) const
{
    if (live_.empty())
        return true;
    const auto region = youngestRegionSize();
    if (live_.back().forced_single && region >= 1)
        return true;
    if (region >= params_.max_interval)
        return true;
    if (is_branch && region >= params_.branch_interval)
        return true;
    return false;
}

CheckpointId
CheckpointManager::create(SeqNum first_seq, const RenameMap &map)
{
    panic_if(!canCreate(), "checkpoint create with no free slot");

    // Pick the smallest slot id not in use by a live checkpoint.
    CheckpointId slot = 0;
    while (by_slot_[slot])
        ++slot;

    if (!live_.empty())
        live_.back().closed = true;

    Checkpoint c;
    c.id = slot;
    c.first_seq = first_seq;
    c.map = map;
    c.forced_single = force_single_next_;
    force_single_next_ = false;
    live_.push_back(std::move(c));
    by_slot_[slot] = &live_.back();
    ++created;
    return slot;
}

void
CheckpointManager::allocated(SeqNum seq)
{
    panic_if(live_.empty(), "uop allocated with no live checkpoint");
    (void)seq;
    ++live_.back().allocated;
}

void
CheckpointManager::completed(CheckpointId id)
{
    Checkpoint *c =
        id < by_slot_.size() ? by_slot_[id] : nullptr;
    panic_if(!c, "completion for non-live checkpoint %u", id);
    ++c->completed;
    panic_if(c->completed > c->allocated,
             "checkpoint %u completed more uops than allocated", id);
}

const Checkpoint &
CheckpointManager::youngest() const
{
    panic_if(live_.empty(), "youngest() with no live checkpoint");
    return live_.back();
}

const Checkpoint &
CheckpointManager::oldest() const
{
    panic_if(live_.empty(), "oldest() with no live checkpoint");
    return live_.front();
}

const Checkpoint *
CheckpointManager::find(CheckpointId id) const
{
    return id < by_slot_.size() ? by_slot_[id] : nullptr;
}

bool
CheckpointManager::oldestCommittable() const
{
    if (live_.empty())
        return false;
    const Checkpoint &c = live_.front();
    return c.closed && c.completed == c.allocated;
}

Checkpoint
CheckpointManager::commitOldest()
{
    panic_if(!oldestCommittable(), "commitOldest() not committable");
    Checkpoint c = std::move(live_.front());
    by_slot_[c.id] = nullptr;
    live_.pop_front();
    ++committed;
    return c;
}

void
CheckpointManager::closeYoungest()
{
    if (!live_.empty())
        live_.back().closed = true;
}

Checkpoint
CheckpointManager::rollbackTo(CheckpointId id)
{
    panic_if(!find(id), "rollback to non-live checkpoint %u", id);
    while (!live_.empty() && live_.back().id != id) {
        by_slot_[live_.back().id] = nullptr;
        live_.pop_back();
    }
    panic_if(live_.empty(), "rollback lost target checkpoint");

    Checkpoint &c = live_.back();
    c.allocated = 0;
    c.completed = 0;
    c.closed = false;
    // Forward progress: the re-executed region closes after one uop.
    c.forced_single = true;
    ++rollbacks;
    return c;
}

std::uint64_t
CheckpointManager::youngestRegionSize() const
{
    return live_.empty() ? 0 : live_.back().allocated;
}

void
CheckpointManager::clear()
{
    live_.clear();
    std::fill(by_slot_.begin(), by_slot_.end(), nullptr);
    force_single_next_ = false;
}

} // namespace cfp
} // namespace srl
