/**
 * @file
 * Checkpoint Processing and Recovery (CPR) checkpoint manager
 * [Akkary et al., MICRO 2003] — the substrate the paper's latency
 * tolerant processor is built on (Section 2.1).
 *
 * A small number (Table 1: 8) of rename-map checkpoints replace the
 * reorder buffer. Instructions belong to the checkpoint that was
 * youngest when they were allocated; per-checkpoint completion counters
 * track outstanding instructions, and the oldest checkpoint bulk-commits
 * instantaneously once all its instructions have completed and the
 * region is closed by a younger checkpoint. Recovery (branch
 * misprediction, memory-ordering violation, external snoop hit)
 * restores the rename map snapshot of the target checkpoint and
 * squashes everything younger; re-executing from the checkpoint's first
 * instruction. Forward progress is guaranteed by forcing a checkpoint
 * on the instruction after a restarted checkpoint's first instruction.
 */

#ifndef SRLSIM_CFP_CHECKPOINT_HH
#define SRLSIM_CFP_CHECKPOINT_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cfp/rename.hh"

namespace srl
{
namespace cfp
{

struct CheckpointParams
{
    unsigned num_checkpoints = 8;
    /** Open a new checkpoint after this many uops... */
    unsigned max_interval = 256;
    /** ...or at the first branch after this many uops. */
    unsigned branch_interval = 64;
};

/** One live checkpoint (a contiguous program-order region of uops). */
struct Checkpoint
{
    CheckpointId id = kInvalidCheckpoint; ///< slot id (reused, mod N)
    SeqNum first_seq = kInvalidSeqNum;    ///< first uop of the region
    RenameMap map;                        ///< rename state at creation
    std::uint64_t allocated = 0;          ///< uops allocated into region
    std::uint64_t completed = 0;          ///< uops completed
    bool closed = false;                  ///< a younger ckpt exists
    bool forced_single = false;           ///< forward-progress region
};

class CheckpointManager
{
  public:
    explicit CheckpointManager(const CheckpointParams &params);

    const CheckpointParams &params() const { return params_; }

    /** Any live checkpoints at all? */
    bool empty() const { return live_.empty(); }

    /** Number of live checkpoints. */
    std::size_t liveCount() const { return live_.size(); }

    /** True iff a new checkpoint can be created (a slot is free). */
    bool canCreate() const { return live_.size() < params_.num_checkpoints; }

    /**
     * Should allocation open a new checkpoint before uop @p seq?
     * Policy: first uop ever, region at max_interval, a branch with the
     * region past branch_interval, or a forced single-uop region.
     */
    bool wantNew(bool is_branch) const;

    /**
     * Create a checkpoint starting at @p first_seq with rename snapshot
     * @p map. @pre canCreate()
     */
    CheckpointId create(SeqNum first_seq, const RenameMap &map);

    /** Record a uop allocated into the youngest checkpoint. */
    void allocated(SeqNum seq);

    /** Record completion of a uop belonging to checkpoint @p id. */
    void completed(CheckpointId id);

    /** Youngest (currently filling) checkpoint. @pre !empty() */
    const Checkpoint &youngest() const;

    /** Oldest checkpoint. @pre !empty() */
    const Checkpoint &oldest() const;

    /** The checkpoint with slot id @p id; nullptr if not live. */
    const Checkpoint *find(CheckpointId id) const;

    /**
     * Is the oldest checkpoint ready to bulk-commit? (All its uops
     * completed and the region is closed.)
     */
    bool oldestCommittable() const;

    /** Bulk-commit the oldest checkpoint. @pre oldestCommittable() */
    Checkpoint commitOldest();

    /**
     * Close the youngest checkpoint without opening a successor (end of
     * the instruction stream, so the final region can commit).
     */
    void closeYoungest();

    /**
     * Roll back to checkpoint @p id: checkpoints younger than it are
     * discarded, and @p id itself is reset to empty (its uops will
     * re-allocate) and marked forced_single for forward progress.
     * @return the restored checkpoint (map + first_seq).
     */
    Checkpoint rollbackTo(CheckpointId id);

    /** Uops allocated since the youngest checkpoint was created. */
    std::uint64_t youngestRegionSize() const;

    void clear();

    stats::Scalar created;
    stats::Scalar committed;
    stats::Scalar rollbacks;
    stats::Scalar createStalls; ///< wanted a checkpoint, none free

  private:
    CheckpointParams params_;
    std::deque<Checkpoint> live_; ///< oldest at front
    /**
     * Slot id -> live checkpoint, for O(1) completion counting on the
     * per-uop hot path. Deque references are stable under the only
     * mutations used here (push_back, pop_front, pop_back), so the
     * pointers stay valid for surviving checkpoints.
     */
    std::vector<Checkpoint *> by_slot_;
    CheckpointId next_slot_ = 0;
    bool force_single_next_ = false;
};

} // namespace cfp
} // namespace srl

#endif // SRLSIM_CFP_CHECKPOINT_HH
