/**
 * @file
 * Register rename map with poison-bit propagation (paper Section 2.1).
 *
 * For a trace-driven timing model, renaming means tracking, per
 * architectural register, the dynamic producer uop, when its value is
 * ready, and whether it is *poisoned* — i.e. (transitively) dependent on
 * an outstanding long-latency miss. Uops reading a poisoned register
 * inherit the poison for their destination; that inheritance is what
 * steers instructions into the slice (SDB) instead of the scheduler.
 *
 * The whole map is the unit of CPR checkpointing: CheckpointManager
 * snapshots it at checkpoint creation and restores it on rollback.
 */

#ifndef SRLSIM_CFP_RENAME_HH
#define SRLSIM_CFP_RENAME_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/uop.hh"

namespace srl
{
namespace cfp
{

/** Per-architectural-register rename record. */
struct RenameEntry
{
    SeqNum producer = kInvalidSeqNum; ///< last writer (invalid: no writer)
    Cycle ready = 0;                  ///< cycle the value is available
    bool poisoned = false;            ///< miss-dependent value
};

/** The full architectural-to-physical map state. */
class RenameMap
{
  public:
    RenameEntry &
    operator[](ArchReg reg)
    {
        return entries_[reg];
    }

    const RenameEntry &
    operator[](ArchReg reg) const
    {
        return entries_[reg];
    }

    /** Snapshot for CPR checkpoint creation (the map is small). */
    RenameMap snapshot() const { return *this; }

    /** Clear all poison bits (e.g. full restart). */
    void
    clearPoison()
    {
        for (auto &e : entries_)
            e.poisoned = false;
    }

    /** Number of poisoned registers (diagnostics). */
    unsigned
    poisonedCount() const
    {
        unsigned n = 0;
        for (const auto &e : entries_)
            n += e.poisoned ? 1 : 0;
        return n;
    }

  private:
    std::array<RenameEntry, isa::kNumArchRegs> entries_{};
};

} // namespace cfp
} // namespace srl

#endif // SRLSIM_CFP_RENAME_HH
