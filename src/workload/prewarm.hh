/**
 * @file
 * Cache pre-warming for measurement runs.
 *
 * The paper's execution-driven methodology simulates long instruction
 * counts, so compulsory misses are negligible against the phase
 * behavior under study. Our runs are shorter; pre-filling the cache
 * tags with each suite's cache-resident regions (hot -> L1+L2, warm and
 * the bounded stream buffers -> L2) reproduces the same steady-state
 * starting point.
 */

#ifndef SRLSIM_WORKLOAD_PREWARM_HH
#define SRLSIM_WORKLOAD_PREWARM_HH

#include "memsys/hierarchy.hh"
#include "workload/profile.hh"

namespace srl
{
namespace workload
{

/** Pre-fill @p hier's tags with @p profile's resident working set. */
void prewarmCaches(const SuiteProfile &profile, memsys::Hierarchy &hier);

} // namespace workload
} // namespace srl

#endif // SRLSIM_WORKLOAD_PREWARM_HH
