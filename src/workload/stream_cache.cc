#include "workload/stream_cache.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <type_traits>
#include <vector>

#include "workload/generator.hh"

namespace srl
{
namespace workload
{

namespace
{

static_assert(std::is_trivially_copyable_v<isa::Uop>,
              "cached streams store raw Uop records");

constexpr std::uint64_t kMagic = 0x53524c57'00000001ull; // "SRLW" v1

struct FileHeader
{
    std::uint64_t magic = kMagic;
    std::uint64_t record_size = sizeof(isa::Uop);
    std::uint64_t count = 0;
    std::uint64_t seed = 0;
};

/** Replays a fully loaded uop vector. */
class VectorStream : public isa::UopStream
{
  public:
    explicit VectorStream(std::vector<isa::Uop> uops)
        : uops_(std::move(uops))
    {
    }

    bool
    next(isa::Uop &out) override
    {
        if (pos_ == uops_.size())
            return false;
        out = uops_[pos_++];
        return true;
    }

  private:
    std::vector<isa::Uop> uops_;
    std::size_t pos_ = 0;
};

std::string
cachePath(const std::string &dir, const SuiteProfile &profile,
          std::uint64_t max_uops, std::uint64_t seed_override)
{
    const std::uint64_t seed = seed_override ? seed_override
                                             : profile.seed;
    return dir + "/" + profile.name + "-" + std::to_string(seed) + "-" +
           std::to_string(max_uops) + ".uops";
}

/** Load a cached stream; empty vector + false on any mismatch. */
bool
loadFile(const std::string &path, std::uint64_t expect_count,
         std::uint64_t expect_seed, std::vector<isa::Uop> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    FileHeader h;
    bool ok = std::fread(&h, sizeof(h), 1, f) == 1 &&
              h.magic == kMagic && h.record_size == sizeof(isa::Uop) &&
              h.count == expect_count && h.seed == expect_seed;
    if (ok) {
        out.resize(h.count);
        ok = h.count == 0 ||
             std::fread(out.data(), sizeof(isa::Uop), h.count, f) ==
                 h.count;
    }
    std::fclose(f);
    if (!ok)
        out.clear();
    return ok;
}

bool
writeFile(const std::string &path, std::uint64_t seed,
          const std::vector<isa::Uop> &uops)
{
    // Atomic publish: write a private temp file, then rename. Readers
    // either see the complete file or none at all, so concurrent sweep
    // workers filling the same entry race benignly (last rename wins,
    // every rename has identical contents).
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    FileHeader h;
    h.count = uops.size();
    h.seed = seed;
    bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1 &&
              (uops.empty() ||
               std::fwrite(uops.data(), sizeof(isa::Uop), uops.size(),
                           f) == uops.size());
    ok = std::fclose(f) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
}

} // namespace

std::unique_ptr<isa::UopStream>
openStream(const SuiteProfile &profile, std::uint64_t max_uops,
           std::uint64_t seed_override, const std::string &cache_dir)
{
    if (cache_dir.empty())
        return std::make_unique<Generator>(profile, max_uops,
                                           seed_override);

    const std::uint64_t seed = seed_override ? seed_override
                                             : profile.seed;
    const std::string path =
        cachePath(cache_dir, profile, max_uops, seed_override);

    std::vector<isa::Uop> uops;
    if (loadFile(path, max_uops, seed, uops))
        return std::make_unique<VectorStream>(std::move(uops));

    Generator gen(profile, max_uops, seed_override);
    uops.reserve(max_uops);
    isa::Uop u;
    while (gen.next(u))
        uops.push_back(u);
    // A short stream (generator ended early) is not cached: the header
    // count doubles as the validity check and must equal the request.
    if (uops.size() == max_uops)
        writeFile(path, seed, uops);
    return std::make_unique<VectorStream>(std::move(uops));
}

std::unique_ptr<isa::UopStream>
openStreamEnv(const SuiteProfile &profile, std::uint64_t max_uops,
              std::uint64_t seed_override)
{
    const char *dir = std::getenv("SRLSIM_WORKLOAD_CACHE");
    return openStream(profile, max_uops, seed_override,
                      dir ? dir : "");
}

} // namespace workload
} // namespace srl
