/**
 * @file
 * On-disk cache for generated uop streams.
 *
 * Workload generation is deterministic — a (profile, uops, seed)
 * triple always expands to the identical uop sequence — so the
 * expansion can be memoized to disk and replayed with a plain
 * sequential read. A cached stream is a versioned binary file: a
 * header recording the uop count and record size, followed by the raw
 * `isa::Uop` array. The record size in the header guards against
 * layout drift: a file written by a binary with a different Uop layout
 * is silently regenerated, never misread.
 *
 * The cache is strictly an I/O-for-CPU trade and must be semantically
 * invisible: a replayed stream is byte-for-byte the generator's
 * output (pinned by test_workload). CI keys the cache directory on a
 * hash of src/workload + src/isa so any generator change invalidates
 * it wholesale.
 */

#ifndef SRLSIM_WORKLOAD_STREAM_CACHE_HH
#define SRLSIM_WORKLOAD_STREAM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "isa/uop.hh"
#include "workload/profile.hh"

namespace srl
{
namespace workload
{

/**
 * Open the uop stream for (@p profile, @p max_uops, @p seed_override),
 * memoized under @p cache_dir. On a hit the stream replays the cached
 * file; on a miss it is generated, written atomically (temp file +
 * rename, so concurrent sweep workers never observe a partial file),
 * and then replayed. Any I/O or validation failure falls back to the
 * plain generator — the cache can lose, never corrupt.
 *
 * An empty @p cache_dir bypasses the cache entirely and returns the
 * generator itself.
 */
std::unique_ptr<isa::UopStream>
openStream(const SuiteProfile &profile, std::uint64_t max_uops,
           std::uint64_t seed_override, const std::string &cache_dir);

/**
 * Like openStream, with the cache directory taken from the
 * SRLSIM_WORKLOAD_CACHE environment variable (unset/empty = no cache).
 * This is the hook the simulation driver uses, so CI can enable
 * caching without plumbing an option through every harness.
 */
std::unique_ptr<isa::UopStream>
openStreamEnv(const SuiteProfile &profile, std::uint64_t max_uops,
              std::uint64_t seed_override);

} // namespace workload
} // namespace srl

#endif // SRLSIM_WORKLOAD_STREAM_CACHE_HH
