/**
 * @file
 * Deterministic synthetic uop-stream generator.
 *
 * A profile (profile.hh) is expanded into a *static program*: a loop
 * body of `static_uops` slots with fixed PCs, register assignments, and
 * dependence structure. The generator then streams dynamic instances of
 * that body. Static structure matters: recurring PCs are what train the
 * branch predictors and the store-sets memory dependence predictor, and
 * stable store→load PC pairs are what make forwarding predictable, just
 * as in real traces.
 *
 * Dynamic behavior per instance: memory uops roll their address region
 * (hot = L1-resident, warm = L2-resident, cold = memory, stream =
 * sequential/prefetchable), forwarding-pair loads reuse the partner
 * store's address from the same iteration, and data-dependent branches
 * roll their direction. All randomness is from a private PCG stream, so
 * a (profile, seed) pair always yields the identical uop sequence —
 * which is how the functional reference executor and the timing model
 * can consume two copies of the same program.
 */

#ifndef SRLSIM_WORKLOAD_GENERATOR_HH
#define SRLSIM_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/bytes.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "isa/uop.hh"
#include "workload/profile.hh"

namespace srl
{
namespace workload
{

/** Base addresses of the generator's synthetic address regions. */
struct AddressRegions
{
    static constexpr Addr kHot = 0x1000'0000;
    static constexpr Addr kWarm = 0x2000'0000;
    static constexpr Addr kCold = 0x4000'0000;
    static constexpr Addr kStream = 0x8000'0000;
    static constexpr unsigned kNumStreams = 16;
    static constexpr Addr kStreamSpacing = Addr{1} << 24;
};

/**
 * The generator's dynamic cursor state, capturable at any uop boundary
 * so a checkpointed sampled run can resume the stream exactly where it
 * left off. The static template (slots_) is deterministically rebuilt
 * by re-running the constructor with the same (profile, seed), so only
 * the per-iteration state travels.
 */
struct GeneratorState
{
    std::uint64_t rng_state = 0;
    std::uint64_t cursor = 0;
    std::uint64_t emitted = 0;
    std::vector<Addr> iter_addr;
    std::vector<std::uint8_t> iter_size;
    std::vector<Addr> streams;
    std::uint64_t next_burst_start = 0;

    void serialize(bytes::ByteWriter &w) const;
    void deserialize(bytes::ByteReader &r);
};

class Generator : public isa::UopStream
{
  public:
    /**
     * @param profile suite behavioral parameters
     * @param max_uops stream length (finite)
     * @param seed_override if non-zero, replaces profile.seed
     */
    Generator(const SuiteProfile &profile, std::uint64_t max_uops,
              std::uint64_t seed_override = 0);

    bool next(isa::Uop &out) override;

    std::uint64_t emitted() const { return emitted_; }

    /** Capture the dynamic cursor state (see GeneratorState). */
    GeneratorState captureState() const;

    /**
     * Restore state captured from a generator built with the same
     * (profile, seed); fatals if the template shapes disagree.
     */
    void restoreState(const GeneratorState &state);

  private:
    /** Address region kinds a memory slot can target. */
    enum class Region : std::uint8_t { kHot, kWarm, kCold, kStream };

    struct StaticUop
    {
        isa::UopClass cls = isa::UopClass::kIntAlu;
        ArchReg dst = isa::kInvalidArchReg;
        ArchReg src1 = isa::kInvalidArchReg;
        ArchReg src2 = isa::kInvalidArchReg;
        // Memory slots.
        int fwd_partner = -1;   ///< template index of paired store
        int stream_cursor = -1; ///< stream id for sequential accesses
        // Branch slots.
        bool hard_branch = false;
        double taken_bias = 0.5;
    };

    void buildTemplate();
    Addr rollAddress(const StaticUop &s, std::uint8_t &size);

    SuiteProfile profile_;
    std::uint64_t max_uops_;
    Random rng_;

    std::vector<StaticUop> slots_;
    std::size_t cursor_ = 0;      ///< next template slot
    std::uint64_t emitted_ = 0;

    /** Per-template-slot address+size of the current iteration. */
    std::vector<Addr> iter_addr_;
    std::vector<std::uint8_t> iter_size_;

    /** Sequential stream cursors (prefetchable cold accesses). */
    std::vector<Addr> streams_;

    /** Uop index at which the next miss burst begins. */
    std::uint64_t next_burst_start_ = 0;

    static constexpr Addr kHotBase = AddressRegions::kHot;
    static constexpr Addr kWarmBase = AddressRegions::kWarm;
    static constexpr Addr kColdBase = AddressRegions::kCold;
    static constexpr Addr kStreamBase = AddressRegions::kStream;
    static constexpr Addr kCodeBase = 0x0040'0000;
};

/** A UopStream over a fixed vector (directed tests, Fig. 4 replays). */
class SequenceStream : public isa::UopStream
{
  public:
    explicit SequenceStream(std::vector<isa::Uop> uops)
        : uops_(std::move(uops))
    {
    }

    bool
    next(isa::Uop &out) override
    {
        if (pos_ >= uops_.size())
            return false;
        out = uops_[pos_++];
        return true;
    }

  private:
    std::vector<isa::Uop> uops_;
    std::size_t pos_ = 0;
};

} // namespace workload
} // namespace srl

#endif // SRLSIM_WORKLOAD_GENERATOR_HH
