/**
 * @file
 * Synthetic workload suite profiles (stand-ins for Table 2's benchmark
 * suites: SPEC or the commercial traces cannot be redistributed, so each
 * suite is characterized by the behavioral parameters that drive the
 * paper's results — memory-miss exposure, dependence-chain shape into
 * the miss shadow, store/load mix, forwarding distance, and branch
 * predictability — and a deterministic generator (generator.hh) expands
 * a profile into a dynamic uop stream).
 *
 * The knobs were calibrated (see EXPERIMENTS.md) so the per-suite
 * differentiation of Table 3 lands in the reported ballpark: SFP2K with
 * long FP chains and heavy memory missing, SERVER with pointer chasing,
 * PROD with an almost cache-resident working set, etc.
 */

#ifndef SRLSIM_WORKLOAD_PROFILE_HH
#define SRLSIM_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace srl
{
namespace workload
{

struct SuiteProfile
{
    std::string name;

    // --- Instruction mix (fractions of all uops) ---
    double load_frac = 0.25;
    double store_frac = 0.12;
    double branch_frac = 0.10;
    double fp_frac = 0.0;    ///< fraction of ALU ops that are FP
    double mul_frac = 0.05;  ///< fraction of ALU ops that are long-latency

    // --- Memory address behavior ---
    /** L1-resident hot region, in 64 B lines (<=512 fits 32 KB L1). */
    unsigned hot_lines = 448;
    /** L2-resident warm region, in lines (<=16384 fits 1 MB L2). */
    unsigned warm_lines = 8192;
    /** Memory-resident cold region, in lines (far exceeds L2). */
    unsigned cold_lines = 1u << 22;
    /** Probability a memory access targets the warm region. */
    double warm_frac = 0.10;
    /**
     * Probability a memory access targets the cold region *during a
     * miss burst*. Real programs miss in phases (a cache-unfriendly
     * traversal, then compute); the burst structure below is what sets
     * the fraction of execution spent in miss shadows (Table 3's
     * "% execution time SRL is occupied").
     */
    double cold_frac = 0.05;
    /** Cold probability between bursts (background misses). */
    double background_cold_frac = 0.0001;
    /** Mean uops between burst starts (randomized +/-50%). */
    unsigned burst_period_uops = 8000;
    /** Burst length in uops. */
    unsigned burst_len_uops = 300;
    /** Probability a memory access streams sequentially. */
    double stream_frac = 0.0;
    /** Lines per stream cursor before it wraps (bounds L2 pollution). */
    unsigned stream_wrap_lines = 256;

    // --- Dependence structure ---
    /**
     * Probability an ALU op continues its strand's spine (src1 = the
     * strand's previous result). Code is modeled as `num_strands`
     * parallel dependence spines that consume load results as leaf
     * operands — the structure that lets one missing load poison a
     * long run of downstream work, as in real FP code.
     */
    double chain_frac = 0.5;
    /** Probability an ALU's second operand reads a recent load (leaf). */
    double leaf_frac = 0.4;
    /** Number of parallel dependence spines. */
    unsigned num_strands = 4;
    /** Per-ALU probability its strand restarts from a fresh value. */
    double strand_restart = 0.03;
    /** Probability a store's data register reads a spine register. */
    double store_chain_frac = 0.25;
    /** Probability a store's data register reads a recent load result
     * directly (stores become miss-dependent without deep ALU chains,
     * the WS/CAD pattern). Evaluated before store_chain_frac. */
    double store_leaf_frac = 0.0;
    /** Probability a load's address register chains (pointer chasing). */
    double pointer_chase_frac = 0.0;
    /** Probability a load re-reads a recent store's address (fwd pair). */
    double fwd_pair_frac = 0.20;
    /** Max template distance between a forwarding store/load pair. */
    unsigned fwd_distance = 24;

    // --- Branch behavior ---
    /** Fraction of static branches that are data-dependent (random). */
    double hard_branch_frac = 0.08;
    /** Taken bias of predictable branches. */
    double easy_branch_bias = 0.92;

    // --- Shape ---
    unsigned static_uops = 2048; ///< static code footprint (loop body)
    std::uint64_t seed = 1;      ///< per-suite deterministic seed
};

/** The seven suites of Table 2, in the paper's order. */
std::vector<SuiteProfile> suiteProfiles();

/** Look up a suite by name; fatal on unknown name. */
SuiteProfile suiteProfile(const std::string &name);

} // namespace workload
} // namespace srl

#endif // SRLSIM_WORKLOAD_PROFILE_HH
