#include "workload/generator.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace srl
{
namespace workload
{

namespace
{

/**
 * Register map: per class (int 0-31, fp 32-63):
 *   [base+0, base+4)   always-ready base registers (rarely written)
 *   [base+4, base+12)  strand (spine) registers, one per strand
 *   [base+12, base+32) rotating load destinations
 */
constexpr ArchReg kIntBase0 = 0;
constexpr ArchReg kFpBase0 = 32;
constexpr unsigned kNumBase = 4;
constexpr unsigned kStrand0 = 4;
constexpr unsigned kMaxStrands = 8;
constexpr unsigned kLoadDst0 = 12;
constexpr unsigned kClassRegs = 32;

} // namespace

Generator::Generator(const SuiteProfile &profile, std::uint64_t max_uops,
                     std::uint64_t seed_override)
    : profile_(profile), max_uops_(max_uops),
      rng_(seed_override ? seed_override : profile.seed),
      streams_(16, 0)
{
    fatal_if(profile_.static_uops == 0, "empty static program");
    for (std::size_t i = 0; i < streams_.size(); ++i)
        streams_[i] = kStreamBase + (static_cast<Addr>(i) << 24);
    buildTemplate();
    iter_addr_.assign(slots_.size(), 0);
    iter_size_.assign(slots_.size(), 0);
}

void
Generator::buildTemplate()
{
    slots_.resize(profile_.static_uops);

    unsigned next_int_dst = kLoadDst0;
    unsigned next_fp_dst = kLoadDst0;
    auto rotate_load_dst = [&](bool fp) -> ArchReg {
        unsigned &next = fp ? next_fp_dst : next_int_dst;
        const unsigned r = next;
        next = next + 1 >= kClassRegs ? kLoadDst0 : next + 1;
        return static_cast<ArchReg>((fp ? kFpBase0 : kIntBase0) + r);
    };

    // Dependence spines ("strands"): each strand owns one register;
    // the register always holds the spine's latest result. ALUs extend
    // a spine and consume recent load results as leaves; stores read
    // spine registers. This is the structure that lets one missing
    // load poison a long run of downstream computation (CFP's miss
    // forward slice).
    const unsigned nstrands =
        std::min(kMaxStrands, std::max(1u, profile_.num_strands));
    std::vector<ArchReg> recent_loads; // leaf pool, most recent last
    std::vector<int> recent_store_slots;
    int prev_load_slot = -1;

    auto base_of = [&](bool fp) -> ArchReg {
        return (fp ? kFpBase0 : kIntBase0) +
               static_cast<ArchReg>(rng_.below(kNumBase));
    };
    auto strand_reg = [&](bool fp, unsigned strand) -> ArchReg {
        return static_cast<ArchReg>((fp ? kFpBase0 : kIntBase0) +
                                    kStrand0 + strand);
    };
    auto strand_of = [&](bool fp) -> ArchReg {
        return strand_reg(fp, rng_.below(nstrands));
    };
    auto leaf_of = [&](bool fp) -> ArchReg {
        if (recent_loads.empty())
            return base_of(fp);
        const unsigned span = static_cast<unsigned>(
            std::min<std::size_t>(recent_loads.size(), 4));
        return recent_loads[recent_loads.size() - 1 - rng_.below(span)];
    };

    for (std::size_t i = 0; i < slots_.size(); ++i) {
        StaticUop s;
        const double roll = rng_.real();
        const bool fp_ctx = rng_.chance(profile_.fp_frac);

        if (roll < profile_.load_frac) {
            s.cls = isa::UopClass::kLoad;
            s.dst = rotate_load_dst(fp_ctx);
            // Address register: pointer chasing chains a load's address
            // onto the previous load's destination.
            if (prev_load_slot >= 0 &&
                rng_.chance(profile_.pointer_chase_frac)) {
                s.src1 = slots_[prev_load_slot].dst;
            } else {
                s.src1 = base_of(false);
            }
            // Forwarding pair: re-read a recent store's address.
            if (!recent_store_slots.empty() &&
                rng_.chance(profile_.fwd_pair_frac)) {
                const unsigned span = std::min<std::size_t>(
                    recent_store_slots.size(), profile_.fwd_distance);
                s.fwd_partner =
                    recent_store_slots[recent_store_slots.size() - 1 -
                                       rng_.below(span)];
            }
            if (rng_.chance(profile_.stream_frac))
                s.stream_cursor =
                    static_cast<int>(rng_.below(streams_.size()));
            prev_load_slot = static_cast<int>(i);
            recent_loads.push_back(s.dst);
            if (recent_loads.size() > 8)
                recent_loads.erase(recent_loads.begin());
        } else if (roll < profile_.load_frac + profile_.store_frac) {
            s.cls = isa::UopClass::kStore;
            // Data register: read a recent load (leaf), a spine tail,
            // or an always-ready base value.
            const double sroll = rng_.real();
            if (sroll < profile_.store_leaf_frac) {
                s.src1 = leaf_of(fp_ctx);
            } else if (sroll <
                       profile_.store_leaf_frac +
                           profile_.store_chain_frac) {
                s.src1 = strand_of(fp_ctx);
            } else {
                s.src1 = base_of(fp_ctx);
            }
            if (rng_.chance(profile_.stream_frac))
                s.stream_cursor =
                    static_cast<int>(rng_.below(streams_.size()));
            recent_store_slots.push_back(static_cast<int>(i));
        } else if (roll < profile_.load_frac + profile_.store_frac +
                              profile_.branch_frac) {
            s.cls = isa::UopClass::kBranch;
            s.hard_branch = rng_.chance(profile_.hard_branch_frac);
            // Hard (data-dependent) branches read quickly-available
            // values: a mispredicted branch whose resolution waited on
            // a memory miss would stall fetch for the whole shadow,
            // which real traces rarely do.
            s.src1 = s.hard_branch ? base_of(false) : strand_of(false);
            if (s.hard_branch) {
                s.taken_bias = 0.5;
            } else {
                s.taken_bias = rng_.chance(0.5)
                                   ? profile_.easy_branch_bias
                                   : 1.0 - profile_.easy_branch_bias;
            }
        } else {
            const bool mul = rng_.chance(profile_.mul_frac);
            if (fp_ctx) {
                s.cls = mul ? isa::UopClass::kFpMul
                            : isa::UopClass::kFpAlu;
            } else {
                s.cls = mul ? isa::UopClass::kIntMul
                            : isa::UopClass::kIntAlu;
            }
            // Spine: continue the strand, or restart it fresh.
            const unsigned strand = rng_.below(nstrands);
            s.dst = strand_reg(fp_ctx, strand);
            if (rng_.chance(profile_.strand_restart) ||
                !rng_.chance(profile_.chain_frac)) {
                s.src1 = base_of(fp_ctx);
            } else {
                s.src1 = s.dst; // read-modify-write the spine register
            }
            // Leaf: mix in a recent load result.
            s.src2 = rng_.chance(profile_.leaf_frac) ? leaf_of(fp_ctx)
                                                     : base_of(fp_ctx);
        }
        slots_[i] = s;

        if (recent_store_slots.size() > 64) {
            recent_store_slots.erase(recent_store_slots.begin(),
                                     recent_store_slots.end() - 64);
        }
    }
}

Addr
Generator::rollAddress(const StaticUop &s, std::uint8_t &size)
{
    // Access size: mostly 8 B, some 4 B, a few 1 B (all naturally
    // aligned, so every access stays within one 8-byte word).
    const double sz = rng_.real();
    size = sz < 0.70 ? 8 : (sz < 0.95 ? 4 : 1);

    // Stream accesses advance a sequential cursor (prefetchable),
    // wrapping so the footprint stays bounded.
    if (s.stream_cursor >= 0) {
        const auto idx = static_cast<unsigned>(s.stream_cursor);
        const Addr base = kStreamBase + (static_cast<Addr>(idx) << 24);
        Addr &cur = streams_[idx];
        const Addr a = cur;
        cur += 64;
        if (cur >= base + static_cast<Addr>(
                              profile_.stream_wrap_lines) * 64)
            cur = base;
        size = 8;
        return a;
    }

    // Miss bursts: programs miss in phases, not uniformly. The burst
    // schedule sets how much of execution happens in miss shadows.
    if (emitted_ >= next_burst_start_ &&
        emitted_ < next_burst_start_ + profile_.burst_len_uops) {
        // in burst
    } else if (emitted_ >=
               next_burst_start_ + profile_.burst_len_uops) {
        const std::uint64_t period = profile_.burst_period_uops;
        next_burst_start_ =
            emitted_ + period / 2 + rng_.range(0, period);
    }
    const bool in_burst =
        emitted_ >= next_burst_start_ &&
        emitted_ < next_burst_start_ + profile_.burst_len_uops;
    const double cold_p =
        in_burst ? profile_.cold_frac : profile_.background_cold_frac;

    const double region = rng_.real();
    Addr base, lines;
    if (region < cold_p) {
        base = kColdBase;
        lines = profile_.cold_lines;
    } else if (region < cold_p + profile_.warm_frac) {
        base = kWarmBase;
        lines = profile_.warm_lines;
    } else {
        base = kHotBase;
        lines = profile_.hot_lines;
    }
    const Addr line = rng_.range(0, lines - 1) * 64;
    const Addr word = rng_.below(8) * 8;
    const Addr off = size == 8 ? 0 : rng_.below(8u / size) * size;
    return base + line + word + off;
}

bool
Generator::next(isa::Uop &out)
{
    if (emitted_ >= max_uops_)
        return false;

    const std::size_t slot = cursor_;
    const StaticUop &s = slots_[slot];
    cursor_ = cursor_ + 1 == slots_.size() ? 0 : cursor_ + 1;

    out = isa::Uop{};
    out.seq = emitted_;
    out.pc = kCodeBase + static_cast<Addr>(slot) * 4;
    out.cls = s.cls;
    out.dst = s.dst;
    out.src1 = s.src1;
    out.src2 = s.src2;

    if (isa::isMemory(s.cls)) {
        std::uint8_t size = 8;
        Addr addr;
        if (s.cls == isa::UopClass::kLoad && s.fwd_partner >= 0 &&
            iter_size_[static_cast<unsigned>(s.fwd_partner)] != 0) {
            // Re-read the partner store's address (and size, so the
            // store fully covers the load).
            addr = iter_addr_[static_cast<unsigned>(s.fwd_partner)];
            size = iter_size_[static_cast<unsigned>(s.fwd_partner)];
        } else {
            addr = rollAddress(s, size);
        }
        out.effAddr = addr;
        out.memSize = size;
        iter_addr_[slot] = addr;
        iter_size_[slot] = size;
        if (s.cls == isa::UopClass::kStore)
            out.storeData = mix64(emitted_ * 0x9e37 + 0x1234);
    } else if (s.cls == isa::UopClass::kBranch) {
        out.taken = rng_.chance(s.taken_bias);
        out.target = out.pc + (out.taken ? 64 : 4);
    }

    ++emitted_;
    return true;
}

void
GeneratorState::serialize(bytes::ByteWriter &w) const
{
    w.u64(rng_state);
    w.u64(cursor);
    w.u64(emitted);
    w.u64(iter_addr.size());
    for (const Addr a : iter_addr)
        w.u64(a);
    w.u64(iter_size.size());
    for (const std::uint8_t s : iter_size)
        w.u8(s);
    w.u64(streams.size());
    for (const Addr a : streams)
        w.u64(a);
    w.u64(next_burst_start);
}

void
GeneratorState::deserialize(bytes::ByteReader &r)
{
    rng_state = r.u64();
    cursor = r.u64();
    emitted = r.u64();
    iter_addr.resize(r.u64());
    for (Addr &a : iter_addr)
        a = r.u64();
    iter_size.resize(r.u64());
    for (std::uint8_t &s : iter_size)
        s = r.u8();
    streams.resize(r.u64());
    for (Addr &a : streams)
        a = r.u64();
    next_burst_start = r.u64();
}

GeneratorState
Generator::captureState() const
{
    GeneratorState st;
    st.rng_state = rng_.rawState();
    st.cursor = cursor_;
    st.emitted = emitted_;
    st.iter_addr = iter_addr_;
    st.iter_size = iter_size_;
    st.streams = streams_;
    st.next_burst_start = next_burst_start_;
    return st;
}

void
Generator::restoreState(const GeneratorState &state)
{
    fatal_if(state.iter_addr.size() != slots_.size() ||
                 state.iter_size.size() != slots_.size() ||
                 state.streams.size() != streams_.size() ||
                 state.cursor >= slots_.size(),
             "generator state does not match this template");
    rng_.setRawState(state.rng_state);
    cursor_ = static_cast<std::size_t>(state.cursor);
    emitted_ = state.emitted;
    iter_addr_ = state.iter_addr;
    iter_size_ = state.iter_size;
    streams_ = state.streams;
    next_burst_start_ = state.next_burst_start;
}

} // namespace workload
} // namespace srl
