#include "workload/profile.hh"

#include "common/logging.hh"

namespace srl
{
namespace workload
{

std::vector<SuiteProfile>
suiteProfiles()
{
    std::vector<SuiteProfile> suites;

    // SPECFP2K: FP-heavy, large streaming working sets, frequent memory
    // misses, long arithmetic chains feeding stores. Highest fraction
    // of stores in miss shadows and of miss-dependent stores (Table 3).
    {
        SuiteProfile p;
        p.name = "SFP2K";
        p.load_frac = 0.29;
        p.store_frac = 0.18;
        p.branch_frac = 0.04;
        p.fp_frac = 0.75;
        p.mul_frac = 0.20;
        p.warm_frac = 0.20;
        p.cold_frac = 0.22;
        p.background_cold_frac = 0.0002;
        p.burst_period_uops = 4300;
        p.burst_len_uops = 500;
        p.chain_frac = 0.90;
        p.leaf_frac = 0.80;
        p.num_strands = 6;
        p.strand_restart = 0.01;
        p.store_chain_frac = 0.85;
        p.fwd_pair_frac = 0.18;
        p.hard_branch_frac = 0.03;
        p.seed = 0x5f01;
        suites.push_back(p);
    }

    // SPECINT2K: branchier, moderate miss exposure, short chains.
    {
        SuiteProfile p;
        p.name = "SINT2K";
        p.load_frac = 0.28;
        p.store_frac = 0.15;
        p.branch_frac = 0.14;
        p.fp_frac = 0.0;
        p.warm_frac = 0.14;
        p.cold_frac = 0.08;
        p.background_cold_frac = 0.0001;
        p.burst_period_uops = 7400;
        p.burst_len_uops = 250;
        p.pointer_chase_frac = 0.10;
        p.chain_frac = 0.85;
        p.leaf_frac = 0.55;
        p.num_strands = 6;
        p.strand_restart = 0.04;
        p.store_chain_frac = 0.25;
        p.fwd_pair_frac = 0.24;
        p.hard_branch_frac = 0.10;
        p.seed = 0x51e7;
        suites.push_back(p);
    }

    // Internet (WEB): server-side Java-ish; modest misses, many short
    // dependence chains, branchy.
    {
        SuiteProfile p;
        p.name = "WEB";
        p.load_frac = 0.28;
        p.store_frac = 0.16;
        p.branch_frac = 0.15;
        p.warm_frac = 0.22;
        p.cold_frac = 0.08;
        p.background_cold_frac = 0.0004;
        p.burst_period_uops = 5600;
        p.burst_len_uops = 250;
        p.pointer_chase_frac = 0.45;
        p.chain_frac = 0.85;
        p.leaf_frac = 0.50;
        p.num_strands = 6;
        p.strand_restart = 0.04;
        p.store_chain_frac = 0.12;
        p.fwd_pair_frac = 0.28;
        p.hard_branch_frac = 0.12;
        p.seed = 0x0eb0;
        suites.push_back(p);
    }

    // Multimedia (MM): streaming kernels, some FP, moderate misses.
    {
        SuiteProfile p;
        p.name = "MM";
        p.load_frac = 0.28;
        p.store_frac = 0.17;
        p.branch_frac = 0.09;
        p.fp_frac = 0.35;
        p.warm_frac = 0.18;
        p.cold_frac = 0.09;
        p.background_cold_frac = 0.0001;
        p.burst_period_uops = 7000;
        p.burst_len_uops = 300;
        p.pointer_chase_frac = 0.05;
        p.chain_frac = 0.88;
        p.leaf_frac = 0.70;
        p.num_strands = 6;
        p.strand_restart = 0.02;
        p.store_chain_frac = 0.35;
        p.fwd_pair_frac = 0.20;
        p.hard_branch_frac = 0.06;
        p.seed = 0x3300;
        suites.push_back(p);
    }

    // Productivity (PROD): cache-resident office workloads; almost no
    // memory misses (Table 3 shows ~0 everywhere).
    {
        SuiteProfile p;
        p.name = "PROD";
        p.load_frac = 0.28;
        p.store_frac = 0.15;
        p.branch_frac = 0.16;
        p.warm_frac = 0.08;
        p.cold_frac = 0.03;
        p.background_cold_frac = 0.00003;
        p.burst_period_uops = 15000;
        p.burst_len_uops = 150;
        p.chain_frac = 0.70;
        p.leaf_frac = 0.30;
        p.num_strands = 6;
        p.strand_restart = 0.08;
        p.store_chain_frac = 0.10;
        p.fwd_pair_frac = 0.30;
        p.hard_branch_frac = 0.08;
        p.seed = 0x0d00;
        suites.push_back(p);
    }

    // Server (SERVER/TPC-C): pointer chasing through a huge working
    // set: dependent-load chains keep the SRL occupied long (Table 3:
    // highest stall rate, 41.7% occupancy).
    {
        SuiteProfile p;
        p.name = "SERVER";
        p.load_frac = 0.30;
        p.store_frac = 0.15;
        p.branch_frac = 0.13;
        p.warm_frac = 0.30;
        p.cold_frac = 0.003;
        p.background_cold_frac = 0.003;
        p.burst_period_uops = 9000;
        p.burst_len_uops = 250;
        p.pointer_chase_frac = 0.75;
        p.chain_frac = 0.80;
        p.leaf_frac = 0.45;
        p.num_strands = 6;
        p.strand_restart = 0.04;
        p.store_chain_frac = 0.12;
        p.fwd_pair_frac = 0.26;
        p.hard_branch_frac = 0.10;
        p.seed = 0x5e1f;
        suites.push_back(p);
    }

    // Workstation (WS): CAD/rendering; store-heavy phases with notable
    // miss-dependent stores (Table 3 column 3 is second-highest).
    {
        SuiteProfile p;
        p.name = "WS";
        p.load_frac = 0.27;
        p.store_frac = 0.19;
        p.branch_frac = 0.08;
        p.fp_frac = 0.45;
        p.mul_frac = 0.12;
        p.warm_frac = 0.16;
        p.cold_frac = 0.20;
        p.background_cold_frac = 0.0001;
        p.burst_period_uops = 14000;
        p.burst_len_uops = 350;
        p.chain_frac = 0.90;
        p.leaf_frac = 0.60;
        p.num_strands = 4;
        p.strand_restart = 0.02;
        p.store_leaf_frac = 0.30;
        p.store_chain_frac = 0.70;
        p.fwd_pair_frac = 0.16;
        p.hard_branch_frac = 0.05;
        p.seed = 0xa005;
        suites.push_back(p);
    }

    return suites;
}

SuiteProfile
suiteProfile(const std::string &name)
{
    for (const auto &p : suiteProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown workload suite '%s'", name.c_str());
}

} // namespace workload
} // namespace srl
