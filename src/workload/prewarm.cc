#include "workload/prewarm.hh"

#include "workload/generator.hh"

namespace srl
{
namespace workload
{

void
prewarmCaches(const SuiteProfile &profile, memsys::Hierarchy &hier)
{
    // Hot region: L1-resident (and inclusive in L2).
    for (unsigned i = 0; i < profile.hot_lines; ++i) {
        const Addr line = AddressRegions::kHot + Addr{i} * 64;
        hier.l2().fill(line);
        hier.l1().fill(line);
    }
    // Warm region: L2-resident.
    for (unsigned i = 0; i < profile.warm_lines; ++i)
        hier.l2().fill(AddressRegions::kWarm + Addr{i} * 64);
    // Stream buffers: their (bounded) first lap is L2-resident.
    if (profile.stream_frac > 0.0) {
        for (unsigned s = 0; s < AddressRegions::kNumStreams; ++s) {
            const Addr base = AddressRegions::kStream +
                              Addr{s} * AddressRegions::kStreamSpacing;
            for (unsigned i = 0; i < profile.stream_wrap_lines; ++i)
                hier.l2().fill(base + Addr{i} * 64);
        }
    }
}

} // namespace workload
} // namespace srl
