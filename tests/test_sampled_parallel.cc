/**
 * @file
 * Jobs-invariance contract for the pipelined sampled engine
 * (runner::runSampledPipelined, DESIGN.md §15).
 *
 * The pipelined mode's core promise is that the worker count is
 * invisible in the results: stats JSON (aggregate + per-interval
 * rows), the srlsim-trace-v1 trace, and the final-state digest are
 * byte-identical at --sample-jobs 1, 2, and 4, across every golden
 * configuration — including the rollback-heavy one whose snoop
 * traffic is the hardest state to keep deterministic. On top of that:
 * backpressure (a tiny queue bound plus deliberately slowed workers)
 * must change nothing but wall time; the on-disk checkpoints the
 * producer can leave behind must round-trip to the exact in-memory
 * payload bytes; and checkpoint retention must keep only the
 * requested tail of the interval checkpoints.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/snapshot.hh"
#include "runner/sampled.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;

/** Self-cleaning temp directory. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/srlsim-test-XXXXXX";
        EXPECT_NE(mkdtemp(tmpl), nullptr);
        path = tmpl;
    }

    ~TempDir()
    {
        if (DIR *d = opendir(path.c_str())) {
            while (const dirent *e = readdir(d)) {
                const std::string n = e->d_name;
                if (n != "." && n != "..")
                    std::remove((path + "/" + n).c_str());
            }
            closedir(d);
        }
        rmdir(path.c_str());
    }

    std::size_t
    fileCount() const
    {
        std::size_t count = 0;
        if (DIR *d = opendir(path.c_str())) {
            while (const dirent *e = readdir(d)) {
                const std::string n = e->d_name;
                if (n != "." && n != "..")
                    ++count;
            }
            closedir(d);
        }
        return count;
    }
};

/** The golden configurations the invariance contract is pinned
 * across (same set as tests/test_sampled.cc). */
std::vector<std::pair<std::string, core::ProcessorConfig>>
goldenConfigs()
{
    std::vector<std::pair<std::string, core::ProcessorConfig>> cfgs;
    cfgs.emplace_back("srl", core::srlConfig());
    cfgs.emplace_back("baseline", core::baselineConfig());

    core::ProcessorConfig deep = core::srlConfig();
    deep.name = "srl-deep-miss";
    deep.memory.memory_latency = 2000;
    cfgs.emplace_back("deep-miss", std::move(deep));

    // External snoops force load-tracking violations and rollbacks —
    // in pipelined mode every interval draws them from its own
    // derived RNG cursor, which must make them jobs-invariant.
    core::ProcessorConfig snoopy = core::srlConfig();
    snoopy.name = "srl-rollback-heavy";
    snoopy.snoop_rate = 0.05;
    cfgs.emplace_back("rollback-heavy", std::move(snoopy));
    return cfgs;
}

runner::SampledOptions
planOpts()
{
    runner::SampledOptions opts;
    opts.plan.ff_uops = 6000;
    opts.plan.warm_uops = 2000;
    opts.plan.detail_uops = 4000;
    return opts;
}

constexpr std::uint64_t kTotal = 60000; // 5 intervals of 12000
constexpr std::uint64_t kSeed = 777;

/** Full report bytes: aggregate + per-interval rows, as sample_tool
 * assembles them. */
std::string
reportJson(const runner::SampledResult &res)
{
    stats::StatsReport rep;
    rep.runs.push_back(res.record);
    for (const auto &r : res.interval_records)
        rep.runs.push_back(r);
    return rep.toJson();
}

TEST(SampledParallel, ResultsAreByteIdenticalAcrossWorkerCounts)
{
    const auto suite = workload::suiteProfile("SFP2K");
    for (const auto &[label, cfg] : goldenConfigs()) {
        SCOPED_TRACE(label);

        runner::SampledOptions opts = planOpts();
        opts.trace_interval = 3;
        opts.sample_jobs = 1;
        const auto r1 =
            runner::runSampled(cfg, suite, kTotal, kSeed, opts);
        ASSERT_EQ(r1.intervals_run, 5u);
        ASSERT_FALSE(r1.trace_json.empty());

        for (const unsigned jobs : {2u, 4u}) {
            SCOPED_TRACE(jobs);
            opts.sample_jobs = jobs;
            const auto rn =
                runner::runSampled(cfg, suite, kTotal, kSeed, opts);
            EXPECT_EQ(reportJson(r1), reportJson(rn));
            EXPECT_EQ(r1.trace_json, rn.trace_json);
            EXPECT_EQ(r1.final_digest.lo, rn.final_digest.lo);
            EXPECT_EQ(r1.final_digest.hi, rn.final_digest.hi);
        }
    }
}

TEST(SampledParallel, PipelinedIsRepeatable)
{
    // Same invocation twice => same bytes (no hidden run-to-run
    // nondeterminism from thread scheduling).
    const auto suite = workload::suiteProfile("MM");
    const core::ProcessorConfig cfg = core::srlConfig();
    runner::SampledOptions opts = planOpts();
    opts.sample_jobs = 4;
    const auto a = runner::runSampled(cfg, suite, kTotal, kSeed, opts);
    const auto b = runner::runSampled(cfg, suite, kTotal, kSeed, opts);
    EXPECT_EQ(reportJson(a), reportJson(b));
    EXPECT_EQ(a.final_digest.lo, b.final_digest.lo);
    EXPECT_EQ(a.final_digest.hi, b.final_digest.hi);
}

TEST(SampledParallel, BackpressureAndSlowWorkersChangeNothing)
{
    // Queue bound of one plus deliberately slowed even intervals: the
    // producer must block (backpressure) rather than skip or reorder,
    // and the stitched results must stay byte-identical.
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();

    runner::SampledOptions ref = planOpts();
    ref.sample_jobs = 1;
    const auto r_ref =
        runner::runSampled(cfg, suite, kTotal, kSeed, ref);

    runner::SampledOptions stressed = planOpts();
    stressed.sample_jobs = 2;
    stressed.queue_capacity = 1;
    stressed.worker_start_hook = [](std::uint64_t interval) {
        if (interval % 2 == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    };
    const auto r_stressed =
        runner::runSampled(cfg, suite, kTotal, kSeed, stressed);

    EXPECT_EQ(reportJson(r_ref), reportJson(r_stressed));
    EXPECT_EQ(r_ref.final_digest.lo, r_stressed.final_digest.lo);
    EXPECT_EQ(r_ref.final_digest.hi, r_stressed.final_digest.hi);
}

TEST(SampledParallel, OnDiskCheckpointsMatchInMemoryPayloads)
{
    // --ckpt-dir in pipelined mode persists the same payload bytes
    // that travel through the in-memory queue: loading a saved file
    // and re-serializing the restored state must reproduce the file's
    // own digest, and writing checkpoints must not perturb results.
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();
    TempDir dir;

    runner::SampledOptions plain = planOpts();
    plain.sample_jobs = 2;
    const auto r_plain =
        runner::runSampled(cfg, suite, kTotal, kSeed, plain);

    runner::SampledOptions saving = planOpts();
    saving.sample_jobs = 2;
    saving.ckpt_dir = dir.path;
    const auto r_saving =
        runner::runSampled(cfg, suite, kTotal, kSeed, saving);
    ASSERT_EQ(r_saving.ckpts_saved.size(), 5u);

    EXPECT_EQ(reportJson(r_plain), reportJson(r_saving));
    EXPECT_EQ(r_plain.final_digest.lo, r_saving.final_digest.lo);
    EXPECT_EQ(r_plain.final_digest.hi, r_saving.final_digest.hi);

    const core::SnapshotContext ctx = core::makeSnapshotContext(
        cfg, suite, kTotal, kSeed, plain.plan.ff_uops,
        plain.plan.warm_uops, plain.plan.detail_uops);
    for (std::uint64_t k = 0; k < r_saving.ckpts_saved.size(); ++k) {
        SCOPED_TRACE(k);
        // Pipelined checkpoints use the salted name, so the two modes
        // can share one directory without collisions.
        EXPECT_EQ(r_saving.ckpts_saved[k],
                  dir.path + "/" +
                      core::snapshotFileName(ctx, k,
                                             /*pipelined=*/true));
        core::SimState sim(cfg);
        const core::LoadedSnapshot loaded = core::loadSnapshot(
            r_saving.ckpts_saved[k], ctx, sim);
        EXPECT_EQ(loaded.meta.next_interval, k);
        // Round-trip: in-memory re-serialization of the restored
        // state reproduces the on-disk payload digest bit for bit.
        const chash::Hash128 again = core::snapshotDigest(
            ctx, loaded.meta, sim, loaded.gen);
        EXPECT_EQ(again.lo, loaded.digest.lo);
        EXPECT_EQ(again.hi, loaded.digest.hi);
    }
}

TEST(SampledParallel, RetentionKeepsOnlyTheRequestedTail)
{
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();
    TempDir dir;

    runner::SampledOptions opts = planOpts();
    opts.sample_jobs = 2;
    opts.ckpt_dir = dir.path;
    opts.ckpt_keep_last = 2;
    const auto res =
        runner::runSampled(cfg, suite, kTotal, kSeed, opts);
    ASSERT_EQ(res.ckpts_saved.size(), 5u);

    // Only the last two interval checkpoints survive; the pruned ones
    // are gone from disk (ckpts_saved records what was *written*).
    EXPECT_EQ(dir.fileCount(), 2u);
    const core::SnapshotContext ctx = core::makeSnapshotContext(
        cfg, suite, kTotal, kSeed, opts.plan.ff_uops,
        opts.plan.warm_uops, opts.plan.detail_uops);
    for (std::uint64_t k = 0; k < 5; ++k) {
        core::SimState sim(cfg);
        const std::string &path = res.ckpts_saved[k];
        if (k < 3) {
            EXPECT_THROW(core::loadSnapshot(path, ctx, sim),
                         core::SnapshotError);
        } else {
            const core::LoadedSnapshot loaded =
                core::loadSnapshot(path, ctx, sim);
            EXPECT_EQ(loaded.meta.next_interval, k);
        }
    }
}

TEST(SampledParallel, PipelinedRejectsShardingAndEmptyPlans)
{
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();

    runner::SampledOptions sharded = planOpts();
    sharded.sample_jobs = 2;
    sharded.shard_start = 1;
    // Sharding is the chained loop's distribution mechanism; the
    // pipelined engine refuses it instead of silently ignoring it.
    EXPECT_THROW(
        runner::runSampled(cfg, suite, kTotal, kSeed, sharded),
        std::invalid_argument);

    runner::SampledOptions windowed = planOpts();
    windowed.sample_jobs = 2;
    windowed.shard_count = 2;
    EXPECT_THROW(
        runner::runSampled(cfg, suite, kTotal, kSeed, windowed),
        std::invalid_argument);

    runner::SampledOptions empty;
    empty.sample_jobs = 2;
    EXPECT_THROW(runner::runSampled(cfg, suite, kTotal, kSeed, empty),
                 std::invalid_argument);
}

TEST(SampledParallel, WorkerFailurePropagatesAsAnException)
{
    // A throwing interval must abort the whole run with the worker's
    // exception — not deadlock the producer on a full queue and not
    // return a partial result.
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();

    runner::SampledOptions opts = planOpts();
    opts.sample_jobs = 2;
    opts.queue_capacity = 1;
    opts.worker_start_hook = [](std::uint64_t interval) {
        if (interval == 2)
            throw std::runtime_error("injected worker failure");
    };
    EXPECT_THROW(runner::runSampled(cfg, suite, kTotal, kSeed, opts),
                 std::runtime_error);
}

} // namespace
