/**
 * @file
 * Unit tests for load tracking: the conventional CAM load queue and
 * the paper's set-associative secondary load buffer (violation
 * predicate over nearest/forwarding store identifiers, oldest-
 * violator selection, snooping, checkpoint bulk reset, overflow
 * policies), plus the WAR order fence.
 */

#include <gtest/gtest.h>

#include "lsq/load_buffer.hh"
#include "lsq/load_queue.hh"
#include "lsq/order_fence.hh"
#include "lsq/store_id.hh"

namespace
{

using namespace srl;
using namespace srl::lsq;

// ------------------------------------------------------------ LoadQueue

TEST(LoadQueue, StoreCheckFlagsStaleLoad)
{
    LoadQueue lq({16});
    lq.allocate(5, 1);
    lq.executed(5, 0x100, 8, kInvalidSeqNum); // read the cache
    // An older store to the same address executes afterwards.
    const auto v = lq.storeCheck(3, 0x100, 8);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->load_seq, 5u);
    EXPECT_EQ(v->ckpt, 1u);
}

TEST(LoadQueue, ForwardedFromStoreOrNewerIsSafe)
{
    LoadQueue lq({16});
    lq.allocate(5, 1);
    lq.executed(5, 0x100, 8, 3); // forwarded from store 3
    EXPECT_FALSE(lq.storeCheck(3, 0x100, 8).has_value()); // same store
    EXPECT_FALSE(lq.storeCheck(2, 0x100, 8).has_value()); // older store
    EXPECT_TRUE(lq.storeCheck(4, 0x100, 8).has_value());  // newer store
}

TEST(LoadQueue, YoungerStoreDoesNotViolateOlderLoad)
{
    LoadQueue lq({16});
    lq.allocate(5, 1);
    lq.executed(5, 0x100, 8, kInvalidSeqNum);
    EXPECT_FALSE(lq.storeCheck(9, 0x100, 8).has_value());
}

TEST(LoadQueue, OldestViolatorSelected)
{
    LoadQueue lq({16});
    lq.allocate(5, 1);
    lq.allocate(7, 2);
    lq.executed(5, 0x100, 8, kInvalidSeqNum);
    lq.executed(7, 0x100, 8, kInvalidSeqNum);
    const auto v = lq.storeCheck(3, 0x100, 8);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->load_seq, 5u);
}

TEST(LoadQueue, SnoopHitsAnyExecutedMatch)
{
    LoadQueue lq({16});
    lq.allocate(5, 1);
    EXPECT_FALSE(lq.snoopCheck(0x100, 8).has_value()); // not executed
    lq.executed(5, 0x100, 8, kInvalidSeqNum);
    EXPECT_TRUE(lq.snoopCheck(0x100, 8).has_value());
    EXPECT_FALSE(lq.snoopCheck(0x200, 8).has_value());
}

TEST(LoadQueue, CommitAndSquash)
{
    LoadQueue lq({16});
    lq.allocate(1, 0);
    lq.allocate(2, 0);
    lq.allocate(3, 1);
    lq.commitUpTo(1);
    EXPECT_EQ(lq.size(), 2u);
    lq.squashAfter(2);
    EXPECT_EQ(lq.size(), 1u);
}

TEST(LoadQueue, ByteOverlapGranularity)
{
    LoadQueue lq({16});
    lq.allocate(5, 1);
    lq.executed(5, 0x104, 4, kInvalidSeqNum);
    EXPECT_TRUE(lq.storeCheck(3, 0x100, 8).has_value());  // covers
    EXPECT_FALSE(lq.storeCheck(3, 0x100, 4).has_value()); // disjoint
}

// --------------------------------------------------- SecondaryLoadBuffer

StoreId
sid(std::uint64_t abs)
{
    return StoreId{static_cast<std::uint32_t>((abs - 1) % 1024),
                   ((abs - 1) / 1024) % 2 != 0, abs};
}

LoadBufferParams
smallBuf(OverflowPolicy p = OverflowPolicy::kVictimBuffer)
{
    return {32, 2, p, 2}; // 16 sets x 2 ways, 2 victims
}

TEST(LoadBuffer, ViolationWhenLoadMissedOlderStore)
{
    SecondaryLoadBuffer b(smallBuf());
    // Load (nearest = store 5) read the cache (fwd = none).
    b.insert(100, 1, 0x100, 8, sid(5), kNullStoreId);
    // Store 3 (program-order before the load) completes: violation.
    const auto v = b.storeCheck(sid(3), 0x100, 8);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->load_seq, 100u);
    EXPECT_EQ(v->ckpt, 1u);
}

TEST(LoadBuffer, ForwardedFromSameOrNewerStoreIsSafe)
{
    SecondaryLoadBuffer b(smallBuf());
    b.insert(100, 1, 0x100, 8, sid(5), sid(4));
    EXPECT_FALSE(b.storeCheck(sid(4), 0x100, 8).has_value());
    EXPECT_FALSE(b.storeCheck(sid(3), 0x100, 8).has_value());
    // A store between the forwarder and the load: the load should have
    // taken its data instead -> violation.
    b.insert(101, 1, 0x200, 8, sid(5), sid(2));
    EXPECT_TRUE(b.storeCheck(sid(3), 0x200, 8).has_value());
}

TEST(LoadBuffer, YoungerStoreNotAViolation)
{
    SecondaryLoadBuffer b(smallBuf());
    b.insert(100, 1, 0x100, 8, sid(5), kNullStoreId);
    // Store 7 was allocated after the load's nearest store (5): the
    // store is younger than the load; no violation.
    EXPECT_FALSE(b.storeCheck(sid(7), 0x100, 8).has_value());
}

TEST(LoadBuffer, OldestViolatorAcrossWaysAndVictims)
{
    SecondaryLoadBuffer b(smallBuf());
    b.insert(200, 2, 0x100, 8, sid(5), kNullStoreId);
    b.insert(100, 1, 0x100, 8, sid(5), kNullStoreId);
    b.insert(300, 3, 0x100, 8, sid(5), kNullStoreId); // to victims
    const auto v = b.storeCheck(sid(3), 0x100, 8);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->load_seq, 100u);
}

TEST(LoadBuffer, SnoopNeedsNoAgeCheck)
{
    SecondaryLoadBuffer b(smallBuf());
    b.insert(100, 1, 0x100, 8, sid(5), sid(5));
    const auto v = b.snoopCheck(0x100, 8);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->load_seq, 100u);
    EXPECT_FALSE(b.snoopCheck(0x900, 8).has_value());
}

TEST(LoadBuffer, CheckpointBulkReset)
{
    SecondaryLoadBuffer b(smallBuf());
    b.insert(100, 1, 0x100, 8, sid(5), kNullStoreId);
    b.insert(101, 2, 0x108, 8, sid(5), kNullStoreId);
    b.clearCheckpoint(1);
    EXPECT_FALSE(b.storeCheck(sid(3), 0x100, 8).has_value());
    EXPECT_TRUE(b.storeCheck(sid(3), 0x108, 8).has_value());
}

TEST(LoadBuffer, SquashAfterSeq)
{
    SecondaryLoadBuffer b(smallBuf());
    b.insert(100, 1, 0x100, 8, sid(5), kNullStoreId);
    b.insert(200, 1, 0x108, 8, sid(5), kNullStoreId);
    b.squashAfter(150);
    EXPECT_TRUE(b.storeCheck(sid(3), 0x100, 8).has_value());
    EXPECT_FALSE(b.storeCheck(sid(3), 0x108, 8).has_value());
}

TEST(LoadBuffer, VictimBufferAbsorbsOverflow)
{
    SecondaryLoadBuffer b(smallBuf(OverflowPolicy::kVictimBuffer));
    // Three loads to set-conflicting addresses (stride 16 sets * 8 B).
    EXPECT_FALSE(b.insert(1, 0, 0x000, 8, sid(5), kNullStoreId)
                     .overflowed);
    EXPECT_FALSE(b.insert(2, 0, 0x080, 8, sid(5), kNullStoreId)
                     .overflowed);
    EXPECT_FALSE(b.insert(3, 0, 0x100, 8, sid(5), kNullStoreId)
                     .overflowed); // victim
    EXPECT_FALSE(b.insert(4, 0, 0x180, 8, sid(5), kNullStoreId)
                     .overflowed); // victim
    EXPECT_TRUE(b.insert(5, 0, 0x200, 8, sid(5), kNullStoreId)
                    .overflowed); // everything full
    EXPECT_EQ(b.victimInserts.value(), 2u);
}

TEST(LoadBuffer, ViolatePolicyOverflowsImmediately)
{
    SecondaryLoadBuffer b(smallBuf(OverflowPolicy::kViolate));
    b.insert(1, 0, 0x000, 8, sid(5), kNullStoreId);
    b.insert(2, 0, 0x080, 8, sid(5), kNullStoreId);
    EXPECT_TRUE(b.insert(3, 0, 0x100, 8, sid(5), kNullStoreId)
                    .overflowed);
}

TEST(LoadBuffer, MultipleLoadsSameAddressCoexist)
{
    SecondaryLoadBuffer b(smallBuf());
    b.insert(100, 1, 0x100, 8, sid(5), kNullStoreId);
    b.insert(101, 1, 0x100, 8, sid(5), kNullStoreId);
    EXPECT_EQ(b.liveEntries(), 2u);
}

// ------------------------------------------------------------ OrderFence

TEST(OrderFence, StoreWaitsForOlderLoads)
{
    OrderFence f;
    f.loadAllocated(10);
    EXPECT_FALSE(f.storeMayDrain(15)); // load 10 outstanding
    EXPECT_TRUE(f.storeMayDrain(5));   // store older than the load
    f.loadCompleted(10);
    EXPECT_TRUE(f.storeMayDrain(15));
}

TEST(OrderFence, SquashReleases)
{
    OrderFence f;
    f.loadAllocated(10);
    f.loadAllocated(20);
    f.squashAfter(15);
    EXPECT_FALSE(f.storeMayDrain(30)); // load 10 still outstanding
    f.loadSquashed(10);
    EXPECT_TRUE(f.storeMayDrain(30));
}

TEST(OrderFence, EmptyAllowsAll)
{
    OrderFence f;
    EXPECT_TRUE(f.storeMayDrain(0));
    EXPECT_EQ(f.outstandingLoads(), 0u);
}

} // namespace
