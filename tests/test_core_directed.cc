/**
 * @file
 * Directed whole-processor tests, including replays of the paper's
 * Figure 4 hazard sequences (WAW, WAR, RAW with and without correct
 * dependence prediction, and the complex case vi), external-snoop
 * multiprocessor ordering, and forward-progress under repeated
 * violations. Every test asserts *functional* outcomes: committed load
 * values and final architectural memory must match program order.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/processor.hh"
#include "core/simulator.hh"
#include "workload/generator.hh"

namespace
{

using namespace srl;
using isa::Uop;
using isa::UopClass;

/** Tiny program builder for directed sequences. */
class Prog
{
  public:
    /** Load from @p addr into @p dst; address register @p areg. */
    SeqNum
    load(Addr addr, ArchReg dst, ArchReg areg = 0, unsigned size = 8)
    {
        Uop u;
        u.seq = uops_.size();
        u.pc = 0x1000 + u.seq * 4;
        u.cls = UopClass::kLoad;
        u.dst = dst;
        u.src1 = areg;
        u.effAddr = addr;
        u.memSize = static_cast<std::uint8_t>(size);
        uops_.push_back(u);
        return u.seq;
    }

    /** Store @p data to @p addr; data register @p dreg. */
    SeqNum
    store(Addr addr, std::uint64_t data, ArchReg dreg = 0,
          unsigned size = 8, Addr pc_override = 0)
    {
        Uop u;
        u.seq = uops_.size();
        u.pc = pc_override ? pc_override : 0x1000 + u.seq * 4;
        u.cls = UopClass::kStore;
        u.src1 = dreg;
        u.effAddr = addr;
        u.memSize = static_cast<std::uint8_t>(size);
        u.storeData = data;
        uops_.push_back(u);
        return u.seq;
    }

    /** Same-PC load (for store-sets training across iterations). */
    SeqNum
    loadAtPc(Addr pc, Addr addr, ArchReg dst, ArchReg areg = 0)
    {
        const SeqNum s = load(addr, dst, areg);
        uops_.back().pc = pc;
        return s;
    }

    SeqNum
    alu(ArchReg dst, ArchReg s1, ArchReg s2 = isa::kInvalidArchReg)
    {
        Uop u;
        u.seq = uops_.size();
        u.pc = 0x1000 + u.seq * 4;
        u.cls = UopClass::kIntAlu;
        u.dst = dst;
        u.src1 = s1;
        u.src2 = s2;
        uops_.push_back(u);
        return u.seq;
    }

    SeqNum
    nop()
    {
        Uop u;
        u.seq = uops_.size();
        u.pc = 0x1000 + u.seq * 4;
        u.cls = UopClass::kNop;
        uops_.push_back(u);
        return u.seq;
    }

    std::vector<Uop> take() { return std::move(uops_); }

  private:
    std::vector<Uop> uops_;
};

struct RunOutcome
{
    core::ProcessorStats stats;
    std::map<SeqNum, std::uint64_t> load_values;
};

/** Owns the stream and processor a directed run leaves behind. */
struct LiveRun
{
    std::unique_ptr<workload::SequenceStream> stream;
    std::unique_ptr<core::Processor> cpu; // destroyed before stream
};

/**
 * Run a directed program; returns committed load values and stats.
 * Callers needing to inspect the processor afterwards (final memory,
 * formatted stats) pass @p live, which keeps the stream and the
 * processor alive until it goes out of scope.
 */
RunOutcome
runProgram(std::vector<Uop> uops, const core::ProcessorConfig &config,
           LiveRun *live = nullptr)
{
    LiveRun local;
    LiveRun &run = live ? *live : local;
    run.stream =
        std::make_unique<workload::SequenceStream>(std::move(uops));
    run.cpu = std::make_unique<core::Processor>(config, *run.stream);
    RunOutcome out;
    run.cpu->setLoadCommitHook(
        [&](SeqNum seq, Addr, unsigned, std::uint64_t v) {
            out.load_values[seq] = v;
        });
    out.stats = run.cpu->run(10'000'000);
    EXPECT_TRUE(run.cpu->done());
    run.cpu->setLoadCommitHook(nullptr);
    return out;
}

constexpr Addr kMissAddr = 0x4000'0000; // cold: always misses to memory
constexpr Addr kA = 0x1000'0100;
constexpr Addr kB = 0x1000'0200;

// ---------------------------------------------------- Figure 4 case (i)

TEST(Fig4, CaseI_WriteAfterWriteHazard)
{
    // LD- (miss) ; ST A (miss-dependent) ; ST A (independent).
    // The independent store executes first and temporarily updates the
    // forwarding structure, but program order must win in memory.
    Prog p;
    const SeqNum miss = p.load(kMissAddr, 12);
    (void)miss;
    p.store(kA, 0xdddd, 12); // data depends on the missing load
    p.store(kA, 0x1111, 0);  // independent
    const SeqNum check = p.load(kA, 13); // must see 0x1111

    for (const auto &cfg :
         {core::srlConfig(), core::baselineConfig(),
          core::hierarchicalConfig()}) {
        LiveRun run;
        auto out = runProgram(p.take(), cfg, &run);
        EXPECT_EQ(out.load_values.at(check), 0x1111u) << cfg.name;
        EXPECT_EQ(run.cpu->mem().read(kA, 8), 0x1111u) << cfg.name;
        // Rebuild the program (take() moved it).
        Prog q;
        q.load(kMissAddr, 12);
        q.store(kA, 0xdddd, 12);
        q.store(kA, 0x1111, 0);
        q.load(kA, 13);
        p = std::move(q);
    }
}

// --------------------------------------------------- Figure 4 case (ii)

TEST(Fig4, CaseII_WriteAfterReadHazard)
{
    // LD- (miss) ; LD A (miss-dependent, drains to the slice) ;
    // ST A (independent, younger). The dependent load re-executes
    // after the miss and must see the value *before* the store.
    for (const auto &cfg : {core::srlConfig(), core::baselineConfig()}) {
        Prog q;
        q.load(kMissAddr, 12);
        const SeqNum dl = q.load(kA, 13, 12); // address dep on miss
        q.store(kA, 0x2222, 0);               // independent, younger
        workload::SequenceStream stream(q.take());
        core::Processor cpu(cfg, stream);
        cpu.mem().write(kA, 8, 0x0101); // old value
        std::map<SeqNum, std::uint64_t> vals;
        cpu.setLoadCommitHook(
            [&](SeqNum seq, Addr, unsigned, std::uint64_t v) {
                vals[seq] = v;
            });
        cpu.run(10'000'000);
        ASSERT_TRUE(cpu.done()) << cfg.name;
        EXPECT_EQ(vals.at(dl), 0x0101u) << cfg.name; // pre-store value
        EXPECT_EQ(cpu.mem().read(kA, 8), 0x2222u) << cfg.name;
    }
}

// -------------------------------------------------- Figure 4 case (iii)

TEST(Fig4, CaseIII_IndependentForwarding)
{
    // LD- (miss) ; ST B ; ST A (deps on miss) ; LD B.
    // The independent pair forwards in the shadow of the miss.
    Prog p;
    p.load(kMissAddr, 12);
    p.store(kB, 0xbeef, 0);   // independent
    p.store(kA, 0xdead, 12);  // miss-dependent
    const SeqNum ldb = p.load(kB, 13);

    auto out = runProgram(p.take(), core::srlConfig());
    EXPECT_EQ(out.load_values.at(ldb), 0xbeefu);
}

// --------------------------------------------------- Figure 4 case (v)

TEST(Fig4, CaseV_MispredictedDependenceDetected)
{
    // ST A's data depends on the miss; LD A is (incorrectly) treated
    // as independent, reads stale data, and the store's re-execution
    // must detect the violation through the secondary load buffer.
    Prog p;
    p.load(kMissAddr, 12);
    p.store(kA, 0x5555, 12); // miss-dependent store to A
    const SeqNum lda = p.load(kA, 13); // no trained dependence

    LiveRun run;
    auto out = runProgram(p.take(), core::srlConfig(), &run);
    // Functional outcome: the committed load saw the store's data.
    EXPECT_EQ(out.load_values.at(lda), 0x5555u);
    EXPECT_EQ(run.cpu->mem().read(kA, 8), 0x5555u);
    // Mechanism: a memory-dependence violation was flagged & recovered.
    EXPECT_GE(out.stats.mem_violations, 1u);
}

// --------------------------------------------------- Figure 4 case (vi)

TEST(Fig4, CaseVI_ComplexOrderingResolved)
{
    // LD- ; ST A (independent) ; ST B (miss-dependent) ; LD A.
    // Whatever forwarding path LD A takes, its committed value must be
    // the independent ST A's data, enforced by the SRL drain check.
    Prog p;
    p.load(kMissAddr, 12);
    p.store(kA, 0xaaaa, 0);  // independent
    p.store(kB, 0xbbbb, 12); // miss-dependent
    const SeqNum lda = p.load(kA, 13);
    p.nop();

    LiveRun run;
    auto out = runProgram(p.take(), core::srlConfig(), &run);
    EXPECT_EQ(out.load_values.at(lda), 0xaaaau);
    EXPECT_EQ(run.cpu->mem().read(kA, 8), 0xaaaau);
    EXPECT_EQ(run.cpu->mem().read(kB, 8), 0xbbbbu);
}

// ------------------------------------------------ store-sets training

TEST(Directed, StoreSetsTrainOnViolation)
{
    // The same (load PC, store PC) pair violates in iteration 1; by a
    // later iteration the predictor should steer the load to wait and
    // the violation count should stop growing.
    Prog p;
    const Addr store_pc = 0x9000, load_pc = 0x9100;
    for (int iter = 0; iter < 6; ++iter) {
        p.load(kMissAddr + 0x10000 * iter, 12);
        p.store(kA, 0x100 + iter, 12, 8, store_pc);
        p.loadAtPc(load_pc, kA, 13);
        for (int i = 0; i < 8; ++i)
            p.nop();
    }

    LiveRun run;
    auto out = runProgram(p.take(), core::srlConfig(), &run);
    // All committed values correct despite the hazard pattern.
    EXPECT_EQ(run.cpu->mem().read(kA, 8), 0x105u);
    // Fewer violations than iterations: the predictor learned.
    EXPECT_GE(out.stats.mem_violations, 1u);
    EXPECT_LT(out.stats.mem_violations, 6u);
}

// ------------------------------------------------------- snooping

TEST(Directed, ExternalSnoopForcesReload)
{
    // A completed-but-uncommitted load must restart when an external
    // store hits its address (multiprocessor ordering, Section 3).
    Prog p;
    p.load(kMissAddr, 12); // long miss keeps the window open
    const SeqNum lda = p.load(kA, 13);
    for (int i = 0; i < 4; ++i)
        p.nop();

    for (const auto &cfg : {core::srlConfig(), core::baselineConfig()}) {
        workload::SequenceStream stream([&p] {
            Prog q;
            q.load(kMissAddr, 12);
            q.load(kA, 13);
            for (int i = 0; i < 4; ++i)
                q.nop();
            return q.take();
        }());
        core::Processor cpu(cfg, stream);
        cpu.mem().write(kA, 8, 0x1111);
        std::map<SeqNum, std::uint64_t> vals;
        cpu.setLoadCommitHook(
            [&](SeqNum seq, Addr, unsigned, std::uint64_t v) {
                vals[seq] = v;
            });
        // Let the load execute, then snoop before the miss returns.
        for (int i = 0; i < 100; ++i)
            cpu.tick();
        cpu.injectSnoop(kA, 8, 0x9999);
        cpu.run(10'000'000);
        ASSERT_TRUE(cpu.done()) << cfg.name;
        EXPECT_EQ(vals.at(lda), 0x9999u) << cfg.name;
        EXPECT_GE(cpu.stats().snoop_violations, 1u) << cfg.name;
    }
}

// ----------------------------------------------- forward progress

TEST(Directed, ForwardProgressUnderRepeatedViolations)
{
    // A dense violating pattern must still complete (the restarted
    // checkpoint closes after one uop, guaranteeing retirement).
    Prog p;
    for (int iter = 0; iter < 20; ++iter) {
        p.load(kMissAddr + 0x40 * iter, 12);
        p.store(kA + 0x40 * iter, iter, 12);
        p.load(kA + 0x40 * iter, 13);
    }
    auto out = runProgram(p.take(), core::srlConfig());
    EXPECT_EQ(out.stats.committed_uops, 60u);
}

// ------------------------------------------------ partial forwarding

TEST(Directed, PartialStoreBlocksThenMerges)
{
    // A 4-byte store followed by an 8-byte load of the word: the load
    // cannot forward (partial coverage) and must wait for the store to
    // drain, then read the merged value.
    Prog p;
    p.store(kA, 0x1111111111111111ull, 0, 8);
    p.nop();
    p.store(kA + 4, 0x2222, 0, 4);
    const SeqNum lda = p.load(kA, 13);

    auto out = runProgram(p.take(), core::srlConfig());
    EXPECT_EQ(out.load_values.at(lda), 0x0000222211111111ull);
}

TEST(Directed, ByteStoreForwarding)
{
    Prog p;
    p.store(kA, 0xaabbccdd11223344ull, 0, 8);
    const SeqNum l1 = p.load(kA + 2, 13, 0, 1);
    auto out = runProgram(p.take(), core::srlConfig());
    EXPECT_EQ(out.load_values.at(l1), 0x22u);
}


// ------------------------------------------------ stats reporting

TEST(Directed, FormatStatsContainsKeyCounters)
{
    Prog p;
    p.load(kMissAddr, 12);
    p.store(kA, 0x1, 0);
    p.load(kA, 13);
    LiveRun run;
    runProgram(p.take(), core::srlConfig(), &run);
    const std::string s = run.cpu->formatStats();
    EXPECT_NE(s.find("committed_uops"), std::string::npos);
    EXPECT_NE(s.find("srl.pushes"), std::string::npos);
    EXPECT_NE(s.find("lcf.checks"), std::string::npos);
    EXPECT_NE(s.find("fc.updates"), std::string::npos);
    EXPECT_NE(s.find("ldbuf.inserts"), std::string::npos);
    EXPECT_NE(s.find("l1d.hits"), std::string::npos);
}

TEST(Directed, SnoopRateConfigInjectsTraffic)
{
    auto cfg = core::srlConfig();
    cfg.snoop_rate = 0.05;
    workload::Generator gen(workload::suiteProfile("PROD"), 5000);
    core::Processor cpu(cfg, gen);
    cpu.run(10'000'000);
    EXPECT_TRUE(cpu.done());
    // Hot-region snoops must have hit some in-flight loads.
    EXPECT_GT(cpu.stats().snoop_violations, 0u);
}

} // namespace
