/**
 * @file
 * Cycle-exactness contract for event-driven quiescence skipping.
 *
 * The hot-loop overhaul lets the model jump the clock over quiescent
 * cycles (no fetch/allocate/issue/commit/event progress) instead of
 * ticking them one by one, replaying the per-cycle stall-attribution
 * counters for the skipped span. That is only a performance
 * transformation if it is *invisible*: with skipping on or off, a run
 * must produce the same final cycle count, the same statistics, and —
 * when instrumented — a byte-identical srlsim-trace-v1 event stream.
 *
 * These tests pin that contract across the store-queue models and,
 * critically, a deep-miss-latency configuration whose long miss
 * shadows are exactly where skipping triggers most.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "obs/export.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;

std::vector<std::pair<std::string, core::ProcessorConfig>>
configsUnderTest()
{
    std::vector<std::pair<std::string, core::ProcessorConfig>> cfgs;
    cfgs.emplace_back("srl", core::srlConfig());
    cfgs.emplace_back("baseline", core::baselineConfig());
    cfgs.emplace_back("hierarchical", core::hierarchicalConfig());

    // Deep memory latency: long quiescent miss shadows make this the
    // configuration where skip-ahead does the most work (and where a
    // missed wakeup would be most visible).
    core::ProcessorConfig deep = core::srlConfig();
    deep.name = "srl-deep-miss";
    deep.memory.memory_latency = 2000;
    cfgs.emplace_back("deep-miss", std::move(deep));
    return cfgs;
}

void
expectSameStats(const core::RunResult &off, const core::RunResult &on,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_DOUBLE_EQ(off.ipc, on.ipc);

    const core::ProcessorStats &a = off.stats;
    const core::ProcessorStats &b = on.stats;
    // Every stats field except skipped_cycles, which is the skip
    // machinery's own diagnostic and differs between the runs by design.
#define SRLSIM_EXPECT_FIELD(f) EXPECT_EQ(a.f, b.f) << #f
    SRLSIM_EXPECT_FIELD(cycles);
    SRLSIM_EXPECT_FIELD(committed_uops);
    SRLSIM_EXPECT_FIELD(committed_loads);
    SRLSIM_EXPECT_FIELD(committed_stores);
    SRLSIM_EXPECT_FIELD(slice_uops);
    SRLSIM_EXPECT_FIELD(poisoned_stores);
    SRLSIM_EXPECT_FIELD(redone_stores);
    SRLSIM_EXPECT_FIELD(srl_stalled_loads);
    SRLSIM_EXPECT_FIELD(indexed_forwards);
    SRLSIM_EXPECT_FIELD(mem_violations);
    SRLSIM_EXPECT_FIELD(snoop_violations);
    SRLSIM_EXPECT_FIELD(overflow_violations);
    SRLSIM_EXPECT_FIELD(branch_mispredicts);
    SRLSIM_EXPECT_FIELD(mem_misses);
    SRLSIM_EXPECT_FIELD(fc_writebacks);
    SRLSIM_EXPECT_FIELD(redo_phase_misses);
    SRLSIM_EXPECT_FIELD(temp_update_stalls);
    SRLSIM_EXPECT_FIELD(stall_ckpt);
    SRLSIM_EXPECT_FIELD(stall_stq);
    SRLSIM_EXPECT_FIELD(stall_lq);
    SRLSIM_EXPECT_FIELD(stall_sdb);
    SRLSIM_EXPECT_FIELD(stall_sched);
    SRLSIM_EXPECT_FIELD(stall_rf);
    SRLSIM_EXPECT_FIELD(miss_hot);
    SRLSIM_EXPECT_FIELD(miss_warm);
    SRLSIM_EXPECT_FIELD(miss_cold);
    SRLSIM_EXPECT_FIELD(miss_stream);
    SRLSIM_EXPECT_FIELD(drain_block_head);
    SRLSIM_EXPECT_FIELD(drain_block_fence);
    SRLSIM_EXPECT_FIELD(drain_block_line);
#undef SRLSIM_EXPECT_FIELD
}

TEST(SkipAhead, FinalStatsMatchWithSkippingOnAndOff)
{
    const auto suite = workload::suiteProfile("SFP2K");
    for (const auto &[label, cfg] : configsUnderTest()) {
        core::ProcessorConfig off = cfg;
        off.skip_ahead = false;
        core::ProcessorConfig on = cfg;
        on.skip_ahead = true;

        const auto r_off = core::runOne(off, suite, 20000);
        const auto r_on = core::runOne(on, suite, 20000);
        expectSameStats(r_off, r_on, label);
    }
}

TEST(SkipAhead, InstrumentedTraceIsByteIdenticalWithSkippingOnAndOff)
{
    // Events-only capture: a per-cycle sampler would disable skipping
    // (runs with a sampler attached always tick every cycle), so this
    // is the strongest instrumented mode under which skipping engages.
    obs::ObsConfig capture;
    capture.enabled = true;
    capture.sample_every = 0;
    capture.ring_capacity = 1u << 16;

    const auto suite = workload::suiteProfile("MM");
    for (const auto &[label, cfg] : configsUnderTest()) {
        SCOPED_TRACE(label);
        core::ProcessorConfig off = cfg;
        off.skip_ahead = false;
        core::ProcessorConfig on = cfg;
        on.skip_ahead = true;

        const auto r_off = core::runOne(off, suite, 20000, 0, capture);
        const auto r_on = core::runOne(on, suite, 20000, 0, capture);
        expectSameStats(r_off, r_on, label);

        ASSERT_NE(r_off.recording, nullptr);
        ASSERT_NE(r_on.recording, nullptr);
        const std::string trace_off = obs::toChromeTrace(*r_off.recording);
        const std::string trace_on = obs::toChromeTrace(*r_on.recording);
        EXPECT_EQ(trace_off, trace_on)
            << "srlsim-trace-v1 stream diverges when quiescent cycles "
               "are skipped";
    }
}

TEST(SkipAhead, QuiescentCyclesAreActuallySkipped)
{
    // Guard against the skip path silently rotting: the equivalence
    // tests above are only meaningful if skipping actually engages.
    // stats.skipped_cycles counts the cycles the clock jumped over;
    // every config under test must show some, the deep-miss one a
    // substantial share, and a skip-off run exactly zero.
    const auto suite = workload::suiteProfile("SFP2K");
    for (const auto &[label, cfg] : configsUnderTest()) {
        SCOPED_TRACE(label);
        core::ProcessorConfig on = cfg;
        on.skip_ahead = true;
        const auto r = core::runOne(on, suite, 20000);
        EXPECT_GT(r.stats.skipped_cycles, 0u)
            << "skip-ahead never engaged; the equivalence tests above "
               "are exercising a no-op";
        EXPECT_LT(r.stats.skipped_cycles, r.cycles);
    }

    core::ProcessorConfig off = core::srlConfig();
    off.skip_ahead = false;
    const auto r_off = core::runOne(off, suite, 20000);
    EXPECT_EQ(r_off.stats.skipped_cycles, 0u);
}

} // namespace
