/**
 * @file
 * Unit tests for the common substrate: integer math and hashing,
 * deterministic RNG, the statistics package (histograms and the
 * Figure-7-style occupancy tracker), and the circular FIFO.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <stdexcept>

#include "common/circular_fifo.hh"
#include "common/intmath.hh"
#include "common/random.hh"
#include "common/stats.hh"

namespace
{

using namespace srl;

// ---------------------------------------------------------------- intmath

TEST(IntMath, PowerOfTwoPredicates)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(IntMath, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(IntMath, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300u);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200u);
}

TEST(IntMath, BitsAndMask)
{
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~0ull);
}

TEST(IntMath, LabIndexTakesLowBits)
{
    // 8-bit index above a 3-bit (word) shift.
    EXPECT_EQ(labIndex(0x0, 8, 3), 0u);
    EXPECT_EQ(labIndex(0x8, 8, 3), 1u); // next word
    EXPECT_EQ(labIndex(0x8 << 8, 8, 3), 0u); // beyond the field
}

TEST(IntMath, PaxIndexMixesThreePieces)
{
    // Changing only the *upper* piece must change the 3-PAX index but
    // not the LAB index.
    const std::uint64_t a = 0x10;
    const std::uint64_t b = a | (0x3ull << (3 + 16)); // upper field bits
    EXPECT_EQ(labIndex(a, 8, 3), labIndex(b, 8, 3));
    EXPECT_NE(paxIndex(a, 8, 3), paxIndex(b, 8, 3));
}

// ---------------------------------------------------------------- random

TEST(Random, DeterministicAcrossInstances)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next32(), b.next32());
}

TEST(Random, SeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next32() == b.next32();
    EXPECT_LT(same, 5);
}

TEST(Random, BelowIsInRange)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Random, RangeIsInclusive)
{
    Random r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Random, ChanceExtremes)
{
    Random r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, RealInUnitInterval)
{
    Random r(11);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

// ---------------------------------------------------------------- stats

TEST(Stats, ScalarBasics)
{
    stats::Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageBasics)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, HistogramBuckets)
{
    stats::Histogram h({10, 20, 30});
    h.sample(5);   // <=10
    h.sample(10);  // <=10
    h.sample(15);  // <=20
    h.sample(35);  // overflow
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.counts()[0], 2u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 0u);
    EXPECT_EQ(h.counts()[3], 1u);
    EXPECT_DOUBLE_EQ(h.fractionAbove(10), 0.5);
}

TEST(Stats, OccupancyPercentAbove)
{
    stats::Occupancy o;
    o.observe(0, 50);   // empty half the time
    o.observe(10, 25);
    o.observe(100, 25);
    EXPECT_EQ(o.totalCycles(), 100u);
    EXPECT_EQ(o.occupiedCycles(), 50u);
    EXPECT_DOUBLE_EQ(o.percentOccupied(), 50.0);
    EXPECT_DOUBLE_EQ(o.percentAbove(0), 100.0);
    EXPECT_DOUBLE_EQ(o.percentAbove(10), 50.0);
    EXPECT_DOUBLE_EQ(o.percentAbove(100), 0.0);
    EXPECT_EQ(o.peak(), 100u);
}

TEST(Stats, StatGroupSnapshotAndFormat)
{
    stats::Scalar s;
    s += 7;
    stats::Average a;
    a.sample(1.5);
    double v = 2.25;

    stats::StatGroup g("grp");
    g.registerScalar("s", &s, "a scalar");
    g.registerAverage("a", &a, "an average");
    g.registerValue("v", &v, "a value");

    const auto rows = g.snapshot();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_DOUBLE_EQ(rows[0].value, 7.0);
    EXPECT_DOUBLE_EQ(rows[1].value, 1.5);
    EXPECT_DOUBLE_EQ(rows[2].value, 2.25);
    EXPECT_NE(g.format().find("grp"), std::string::npos);
    EXPECT_NE(g.format().find("a scalar"), std::string::npos);
}

// ----------------------------------------------------- stats report/json

stats::StatsReport
sampleReport()
{
    stats::StatsReport rep;
    rep.meta["seed"] = "42";
    rep.meta["suite"] = "SFP2K";

    stats::RunRecord a;
    a.name = "baseline";
    a.meta["config"] = "baseline-48stq";
    a.set("ipc", 1.2060107576159581);
    a.set("cycles", 41459);
    a.set("tiny", 4.9e-324); // denormal min: hardest round-trip case
    a.set("negative", -0.1);
    rep.runs.push_back(a);

    stats::RunRecord b;
    b.name = "weird \"name\"\nwith\\escapes";
    b.meta["note"] = "tab\there";
    b.error = "run exploded";
    rep.runs.push_back(b);
    return rep;
}

TEST(StatsReport, JsonRoundTripIsExact)
{
    const stats::StatsReport rep = sampleReport();
    const std::string json = rep.toJson();
    const stats::StatsReport back = stats::StatsReport::fromJson(json);

    // Byte-identical re-serialization is the determinism contract the
    // CI diff step relies on.
    EXPECT_EQ(back.toJson(), json);

    EXPECT_EQ(back.meta.at("seed"), "42");
    ASSERT_EQ(back.runs.size(), 2u);
    EXPECT_EQ(back.runs[0].name, "baseline");
    EXPECT_DOUBLE_EQ(back.runs[0].metric("ipc"), 1.2060107576159581);
    EXPECT_EQ(back.runs[0].metric("tiny"), 4.9e-324);
    EXPECT_EQ(back.runs[1].name, "weird \"name\"\nwith\\escapes");
    EXPECT_EQ(back.runs[1].meta.at("note"), "tab\there");
    EXPECT_TRUE(back.runs[1].failed());
    EXPECT_EQ(back.runs[1].error, "run exploded");
}

TEST(StatsReport, EmptyReportRoundTrips)
{
    stats::StatsReport rep;
    const auto back = stats::StatsReport::fromJson(rep.toJson());
    EXPECT_TRUE(back.meta.empty());
    EXPECT_TRUE(back.runs.empty());
    EXPECT_EQ(back.toJson(), rep.toJson());
}

TEST(StatsReport, MetricOrderSurvivesRoundTrip)
{
    stats::StatsReport rep;
    stats::RunRecord r;
    r.name = "run";
    r.set("zulu", 1);
    r.set("alpha", 2);
    r.set("mike", 3);
    rep.runs.push_back(r);
    const auto back = stats::StatsReport::fromJson(rep.toJson());
    ASSERT_EQ(back.runs[0].metrics.size(), 3u);
    EXPECT_EQ(back.runs[0].metrics[0].first, "zulu");
    EXPECT_EQ(back.runs[0].metrics[1].first, "alpha");
    EXPECT_EQ(back.runs[0].metrics[2].first, "mike");
}

TEST(StatsReport, FromJsonRejectsGarbage)
{
    EXPECT_THROW(stats::StatsReport::fromJson(""), stats::ParseError);
    EXPECT_THROW(stats::StatsReport::fromJson("[]"), stats::ParseError);
    EXPECT_THROW(stats::StatsReport::fromJson("{\"runs\": []}"),
                 stats::ParseError); // missing schema marker
    EXPECT_THROW(stats::StatsReport::fromJson(
                     "{\"schema\": \"other-v9\", \"runs\": []}"),
                 stats::ParseError);
    const std::string good = sampleReport().toJson();
    EXPECT_THROW(
        stats::StatsReport::fromJson(good.substr(0, good.size() / 2)),
        stats::ParseError);
    EXPECT_THROW(stats::StatsReport::fromJson(good + "x"),
                 stats::ParseError);
}

TEST(StatsReport, CsvHasUnionHeaderAndStableCells)
{
    stats::StatsReport rep;
    stats::RunRecord a;
    a.name = "a";
    a.meta["suite"] = "WS";
    a.set("ipc", 1.5);
    rep.runs.push_back(a);
    stats::RunRecord b;
    b.name = "b,with comma";
    b.set("ipc", 2.0);
    b.set("extra", 7);
    rep.runs.push_back(b);

    const std::string csv = rep.toCsv();
    EXPECT_EQ(csv, "name,error,suite,ipc,extra\n"
                   "a,,WS,1.5,\n"
                   "\"b,with comma\",,,2,7\n");
}

TEST(StatsReport, RunRecordMetricAccessors)
{
    stats::RunRecord r;
    r.name = "r";
    r.set("x", 1.0);
    r.set("x", 2.0); // overwrite, not append
    ASSERT_EQ(r.metrics.size(), 1u);
    EXPECT_DOUBLE_EQ(r.metric("x"), 2.0);
    EXPECT_TRUE(r.hasMetric("x"));
    EXPECT_FALSE(r.hasMetric("y"));
    EXPECT_THROW(r.metric("y"), std::out_of_range);
}

TEST(StatsReport, FormatDoubleRoundTripsExactly)
{
    for (const double v :
         {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1.2060107576159581,
          4.9e-324, 1.7976931348623157e308, -2.5e-10}) {
        const std::string s = stats::formatDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
    EXPECT_EQ(stats::formatDouble(0.5), "0.5"); // shortest form wins
}

// ---------------------------------------------------------------- fifo

TEST(CircularFifo, PushPopOrder)
{
    CircularFifo<int> f(4);
    EXPECT_TRUE(f.empty());
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.size(), 3u);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    f.push(4);
    f.push(5);
    f.push(6);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.pop(), 3);
    EXPECT_EQ(f.pop(), 4);
    EXPECT_EQ(f.pop(), 5);
    EXPECT_EQ(f.pop(), 6);
    EXPECT_TRUE(f.empty());
}

TEST(CircularFifo, SlotLiveness)
{
    CircularFifo<int> f(4);
    const auto s0 = f.push(10);
    const auto s1 = f.push(11);
    EXPECT_TRUE(f.isLive(s0));
    EXPECT_TRUE(f.isLive(s1));
    EXPECT_FALSE(f.isLive(2));
    f.pop();
    EXPECT_FALSE(f.isLive(s0));
    EXPECT_EQ(f.at(s1), 11);
    EXPECT_EQ(f.logicalIndex(s1), 0u);
}

TEST(CircularFifo, WrapAroundSlots)
{
    CircularFifo<int> f(3);
    f.push(1);
    f.push(2);
    f.pop();
    f.pop();
    const auto s = f.push(3); // wraps within ring
    EXPECT_EQ(s, 2u);
    const auto s2 = f.push(4);
    EXPECT_EQ(s2, 0u);
    EXPECT_TRUE(f.isLive(s));
    EXPECT_TRUE(f.isLive(s2));
    EXPECT_FALSE(f.isLive(1));
}

TEST(CircularFifo, ForEachInOrder)
{
    CircularFifo<int> f(3);
    f.push(1);
    f.push(2);
    f.pop();
    f.push(3);
    f.push(4);
    std::vector<int> seen;
    f.forEach([&](int v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<int>{2, 3, 4}));
}

} // namespace
