/**
 * @file
 * Unit tests for the analytical power/area model: calibration against
 * the paper's published Section 6.2 datapoints, linear scaling in
 * entries, linear dynamic scaling in activity, and the CAM-vs-RAM
 * relative claims the paper's argument rests on.
 */

#include <gtest/gtest.h>

#include "power/model.hh"

namespace
{

using namespace srl::power;

TEST(Power, CalibrationReproducesPaperTable)
{
    const auto rows = section62Comparison();
    ASSERT_EQ(rows.size(), 3u);

    // 512-entry L2 STQ: 1.4 mm^2, 95 mW leakage, 440 mW dynamic @10%.
    EXPECT_NEAR(rows[0].model.area_mm2, 1.4, 0.01);
    EXPECT_NEAR(rows[0].model.leakage_mw, 95.0, 0.5);
    EXPECT_NEAR(rows[0].model.dynamic_mw, 440.0, 2.0);

    // SRL + LCF: 0.35 mm^2, 40 mW, 30 mW.
    EXPECT_NEAR(rows[1].model.area_mm2, 0.35, 0.01);
    EXPECT_NEAR(rows[1].model.leakage_mw, 40.0, 0.5);
    EXPECT_NEAR(rows[1].model.dynamic_mw, 30.0, 0.5);

    // With the forwarding cache: 0.45 mm^2, 48 mW, 37 mW.
    EXPECT_NEAR(rows[2].model.area_mm2, 0.45, 0.01);
    EXPECT_NEAR(rows[2].model.leakage_mw, 48.0, 0.5);
    EXPECT_NEAR(rows[2].model.dynamic_mw, 37.0, 0.5);
}

TEST(Power, FullLookupRateMatchesSpice)
{
    // 4.4 W if every load searches the 512-entry CAM (1 per cycle).
    const auto tech = paperTechnology();
    const auto pa = evaluate(l2StqDesign(512), {1.0, 0.0}, tech);
    EXPECT_NEAR(pa.dynamic_mw, 4400.0, 20.0);
}

TEST(Power, AreaScalesLinearlyWithEntries)
{
    const auto tech = paperTechnology();
    const auto a256 = evaluate(l2StqDesign(256), {0.1, 0}, tech);
    const auto a512 = evaluate(l2StqDesign(512), {0.1, 0}, tech);
    const auto a1024 = evaluate(l2StqDesign(1024), {0.1, 0}, tech);
    EXPECT_NEAR(a512.area_mm2 / a256.area_mm2, 2.0, 1e-9);
    EXPECT_NEAR(a1024.area_mm2 / a512.area_mm2, 2.0, 1e-9);
    EXPECT_NEAR(a1024.leakage_mw / a256.leakage_mw, 4.0, 1e-9);
}

TEST(Power, DynamicScalesLinearlyWithActivity)
{
    const auto tech = paperTechnology();
    const auto lo = evaluate(l2StqDesign(512), {0.05, 0}, tech);
    const auto hi = evaluate(l2StqDesign(512), {0.50, 0}, tech);
    EXPECT_NEAR(hi.dynamic_mw / lo.dynamic_mw, 10.0, 1e-9);
}

TEST(Power, CamCostsDominateRamAtEqualCapacity)
{
    // The paper's core claim: per tracked store, the CAM structure is
    // several times more expensive in area and leakage than the
    // SRL+LCF RAM structures.
    const auto tech = paperTechnology();
    const auto cam = evaluate(l2StqDesign(512), {0.10, 0}, tech);
    const auto srl = evaluate(srlDesign(512), {0, 2.0}, tech);
    const auto lcf = evaluate(lcfDesign(2048), {0, 2.0}, tech);
    const double srl_area = srl.area_mm2 + lcf.area_mm2;
    const double srl_total = srl.total_mw() + lcf.total_mw();
    EXPECT_GT(cam.area_mm2 / srl_area, 3.0);
    EXPECT_GT(cam.total_mw() / srl_total, 5.0);
}

TEST(Power, ZeroActivityLeavesOnlyLeakage)
{
    const auto tech = paperTechnology();
    const auto pa = evaluate(l2StqDesign(512), {0.0, 0.0}, tech);
    EXPECT_DOUBLE_EQ(pa.dynamic_mw, 0.0);
    EXPECT_GT(pa.leakage_mw, 0.0);
    EXPECT_DOUBLE_EQ(pa.total_mw(), pa.leakage_mw);
}

TEST(Power, MixedStructureSumsComponents)
{
    const auto tech = paperTechnology();
    StructureDesign mixed{"mixed", 100, 10, 20, 30};
    const auto both = evaluate(mixed, {0.5, 1.0}, tech);
    const auto cam_only =
        evaluate({"c", 100, 10, 0, 0}, {0.5, 1.0}, tech);
    const auto ram_only =
        evaluate({"r", 100, 0, 20, 0}, {0.5, 1.0}, tech);
    const auto sram_only =
        evaluate({"s", 100, 0, 0, 30}, {0.5, 1.0}, tech);
    EXPECT_NEAR(both.area_mm2,
                cam_only.area_mm2 + ram_only.area_mm2 +
                    sram_only.area_mm2,
                1e-12);
    EXPECT_NEAR(both.dynamic_mw,
                cam_only.dynamic_mw + ram_only.dynamic_mw +
                    sram_only.dynamic_mw,
                1e-9);
}

} // namespace
