/**
 * @file
 * Unit tests for the CAM store queue and the wrap-around StoreId:
 * forwarding select (youngest older match), byte-coverage semantics,
 * blocking, squash, age-ordered insertion, and the identifier ring.
 */

#include <gtest/gtest.h>

#include "lsq/store_id.hh"
#include "lsq/store_queue.hh"

namespace
{

using namespace srl;
using namespace srl::lsq;

// ------------------------------------------------------------ StoreId

TEST(StoreId, AllocatorSequence)
{
    StoreIdAllocator a(4);
    EXPECT_FALSE(a.any());
    EXPECT_TRUE(isNullStoreId(a.lastAllocated()));
    const StoreId s0 = a.allocate();
    EXPECT_EQ(s0.index, 0u);
    EXPECT_FALSE(s0.wrap);
    const StoreId s1 = a.allocate();
    const StoreId s2 = a.allocate();
    const StoreId s3 = a.allocate();
    const StoreId s4 = a.allocate(); // wraps
    EXPECT_EQ(s3.index, 3u);
    EXPECT_EQ(s4.index, 0u);
    EXPECT_TRUE(s4.wrap);
    EXPECT_TRUE(allocatedBefore(s0, s1));
    EXPECT_TRUE(allocatedBefore(s1, s2));
    EXPECT_TRUE(allocatedBefore(s3, s4)); // across the wrap
    EXPECT_FALSE(allocatedBefore(s4, s3));
    EXPECT_FALSE(allocatedBefore(s1, s1));
}

TEST(StoreId, NullIsOlderThanEverything)
{
    StoreIdAllocator a(8);
    const StoreId s = a.allocate();
    EXPECT_TRUE(allocatedBefore(kNullStoreId, s));
    EXPECT_FALSE(allocatedBefore(s, kNullStoreId));
    EXPECT_FALSE(allocatedBefore(kNullStoreId, kNullStoreId));
}

TEST(StoreId, LastAllocatedTracks)
{
    StoreIdAllocator a(8);
    const StoreId s0 = a.allocate();
    EXPECT_EQ(a.lastAllocated().abs, s0.abs);
    const StoreId s1 = a.allocate();
    EXPECT_EQ(a.lastAllocated().abs, s1.abs);
}

TEST(StoreId, RewindReissuesSameIds)
{
    StoreIdAllocator a(8);
    a.allocate();
    const StoreId s1 = a.allocate();
    a.allocate();
    a.rewind(s1);
    const StoreId again = a.allocate();
    EXPECT_EQ(again.abs, s1.abs);
    EXPECT_EQ(again.index, s1.index);
    EXPECT_EQ(again.wrap, s1.wrap);
}

TEST(StoreIdDeathTest, DivergentComparePanics)
{
    // Two ids more than one ring apart must trip the model's check.
    StoreIdAllocator a(4);
    const StoreId s0 = a.allocate();
    for (int i = 0; i < 4; ++i)
        a.allocate();
    const StoreId s5 = a.allocate(); // 5 ids later on a 4-ring
    EXPECT_DEATH((void)allocatedBefore(s0, s5), "diverged");
}

// ------------------------------------------------------------ StoreQueue

StoreQueue
makeStq(unsigned cap = 8)
{
    return StoreQueue{{"t", cap, 3}};
}

StoreId
id(std::uint32_t index, std::uint64_t abs)
{
    return StoreId{index, false, abs};
}

TEST(StoreQueue, ForwardFromYoungestOlderStore)
{
    auto q = makeStq();
    q.allocate(1, id(0, 1), 0);
    q.allocate(2, id(1, 2), 0);
    q.writeAddrData(1, 0x100, 8, 0xaaaa);
    q.writeAddrData(2, 0x100, 8, 0xbbbb);

    // Load younger than both: youngest match (seq 2) wins.
    auto r = q.forward(5, 0x100, 8);
    EXPECT_EQ(r.outcome, ForwardOutcome::kForward);
    EXPECT_EQ(r.data, 0xbbbbu);
    EXPECT_EQ(r.store_seq, 2u);

    // Load between the two stores: only seq 1 is older.
    r = q.forward(2, 0x100, 8);
    EXPECT_EQ(r.outcome, ForwardOutcome::kForward);
    EXPECT_EQ(r.data, 0xaaaau);
}

TEST(StoreQueue, SubsetForwardExtractsBytes)
{
    auto q = makeStq();
    q.allocate(1, id(0, 1), 0);
    q.writeAddrData(1, 0x100, 8, 0x8877665544332211ull);
    auto r = q.forward(2, 0x104, 4);
    EXPECT_EQ(r.outcome, ForwardOutcome::kForward);
    EXPECT_EQ(r.data, 0x88776655u);
    r = q.forward(2, 0x103, 1);
    EXPECT_EQ(r.data, 0x44u);
}

TEST(StoreQueue, PartialCoverageBlocks)
{
    auto q = makeStq();
    q.allocate(1, id(0, 1), 0);
    q.writeAddrData(1, 0x100, 4, 0xdead);
    // An 8-byte load over a 4-byte store: blocked, not forwarded.
    const auto r = q.forward(2, 0x100, 8);
    EXPECT_EQ(r.outcome, ForwardOutcome::kBlocked);
    EXPECT_EQ(r.store_seq, 1u);
}

TEST(StoreQueue, UnknownAddressIsSearchedPast)
{
    auto q = makeStq();
    q.allocate(1, id(0, 1), 0);              // address unknown
    q.allocate(2, id(1, 2), 0);
    q.writeAddrData(2, 0x200, 8, 0x42);
    // Load to 0x200 forwards from store 2; store 1 (unknown addr) is
    // speculated past, as conventional designs do.
    const auto r = q.forward(3, 0x200, 8);
    EXPECT_EQ(r.outcome, ForwardOutcome::kForward);
    // Load to an unrelated address: no match at all.
    EXPECT_EQ(q.forward(3, 0x300, 8).outcome, ForwardOutcome::kNoMatch);
}

TEST(StoreQueue, PoisonedEntryInvisibleToForwarding)
{
    auto q = makeStq();
    q.allocate(1, id(0, 1), 0);
    q.markPoisoned(1);
    EXPECT_EQ(q.forward(2, 0x100, 8).outcome, ForwardOutcome::kNoMatch);
}

TEST(StoreQueue, YoungerStoresDoNotForwardBackwards)
{
    auto q = makeStq();
    q.allocate(5, id(0, 1), 0);
    q.writeAddrData(5, 0x100, 8, 0x99);
    EXPECT_EQ(q.forward(3, 0x100, 8).outcome, ForwardOutcome::kNoMatch);
}

TEST(StoreQueue, AgeOrderedInsertion)
{
    auto q = makeStq();
    q.allocate(10, id(1, 2), 0);
    q.allocate(5, id(0, 1), 0); // older slice store re-allocates
    EXPECT_EQ(q.head().seq, 5u);
    q.popHead();
    EXPECT_EQ(q.head().seq, 10u);
}

TEST(StoreQueue, SquashAfterReturnsRemoved)
{
    auto q = makeStq();
    q.allocate(1, id(0, 1), 0);
    q.allocate(2, id(1, 2), 0);
    q.allocate(3, id(2, 3), 0);
    const auto removed = q.squashAfter(1);
    ASSERT_EQ(removed.size(), 2u);
    EXPECT_EQ(removed[0].seq, 3u);
    EXPECT_EQ(removed[1].seq, 2u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(StoreQueue, CamActivityCounters)
{
    auto q = makeStq();
    q.allocate(1, id(0, 1), 0);
    q.allocate(2, id(1, 2), 0);
    q.writeAddrData(1, 0x100, 8, 1);
    q.writeAddrData(2, 0x180, 8, 2);
    q.forward(10, 0x100, 8);
    EXPECT_EQ(q.searches.value(), 1u);
    EXPECT_EQ(q.entriesSearched.value(), 2u);
}

TEST(StoreQueue, OverlapHelpers)
{
    EXPECT_TRUE(bytesOverlap(0x100, 8, 0x104, 4));
    EXPECT_FALSE(bytesOverlap(0x100, 4, 0x104, 4));
    EXPECT_TRUE(bytesCover(0x100, 8, 0x104, 4));
    EXPECT_FALSE(bytesCover(0x104, 4, 0x100, 8));
    EXPECT_TRUE(bytesCover(0x100, 4, 0x100, 4));
}

} // namespace
