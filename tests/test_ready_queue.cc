/**
 * @file
 * Equivalence contract for the dependence-driven wakeup/select issue
 * stage.
 *
 * The scheduler overhaul replaces the legacy per-cycle scan over every
 * scheduler entry with ready queues fed by producer wakeup lists, so
 * issue touches only ready work (O(ready) instead of O(window)). That
 * is a pure performance transformation only if selection order is
 * preserved *exactly*: with either stage, a run must produce the same
 * final statistics and — when instrumented — a byte-identical
 * srlsim-trace-v1 event stream.
 *
 * SRLSIM_ISSUE_SCAN_CHECK builds carry both stages (the legacy scan is
 * kept verbatim behind config.issue_scan, and every tick cross-checks
 * ready-queue coherence against the scheduler lists), which is what
 * lets these tests run the two implementations side by side. In
 * regular builds only the wakeup stage is compiled and the tests skip.
 *
 * The configurations stress the paths where wakeup bookkeeping could
 * silently diverge from the scan: deep miss shadows (entries sleep for
 * thousands of cycles and wake via completion events), and
 * rollback-heavy runs (squash repair must rebuild ready state for
 * re-dispatched work) — plus snoop-driven violations, whose rollbacks
 * arrive asynchronously to the pipeline.
 */

#include <gtest/gtest.h>

#ifdef SRLSIM_ISSUE_SCAN_CHECK

#include <string>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "obs/export.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;

std::vector<std::pair<std::string, core::ProcessorConfig>>
configsUnderTest()
{
    std::vector<std::pair<std::string, core::ProcessorConfig>> cfgs;
    cfgs.emplace_back("srl", core::srlConfig());
    cfgs.emplace_back("baseline", core::baselineConfig());
    cfgs.emplace_back("hierarchical", core::hierarchicalConfig());

    // Deep memory latency: long miss shadows put most of the window to
    // sleep on producer wakeup lists; a lost or duplicated wakeup is
    // most visible here.
    core::ProcessorConfig deep = core::srlConfig();
    deep.name = "srl-deep-miss";
    deep.memory.memory_latency = 2000;
    cfgs.emplace_back("deep-miss", std::move(deep));

    // Rollback-heavy: a tiny store-set predictor aliases constantly,
    // so memory-dependence speculation keeps failing and squash repair
    // keeps rebuilding scheduler (and therefore ready-queue) state.
    core::ProcessorConfig rb = core::srlConfig();
    rb.name = "srl-rollback-heavy";
    rb.store_sets.ssit_entries = 16;
    rb.store_sets.lfst_entries = 4;
    rb.store_sets.clear_interval = 4096;
    cfgs.emplace_back("rollback-heavy", std::move(rb));

    // Snoop-driven violations: external invalidations roll checkpoints
    // back asynchronously to pipeline progress (and disable skip-ahead,
    // covering the every-cycle tick path too).
    core::ProcessorConfig snoopy = core::srlConfig();
    snoopy.name = "srl-snoopy";
    snoopy.snoop_rate = 0.05;
    cfgs.emplace_back("snoopy", std::move(snoopy));
    return cfgs;
}

void
expectSameStats(const core::RunResult &scan, const core::RunResult &wake,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(scan.cycles, wake.cycles);
    EXPECT_DOUBLE_EQ(scan.ipc, wake.ipc);

    const core::ProcessorStats &a = scan.stats;
    const core::ProcessorStats &b = wake.stats;
#define SRLSIM_EXPECT_FIELD(f) EXPECT_EQ(a.f, b.f) << #f
    SRLSIM_EXPECT_FIELD(cycles);
    SRLSIM_EXPECT_FIELD(skipped_cycles);
    SRLSIM_EXPECT_FIELD(committed_uops);
    SRLSIM_EXPECT_FIELD(committed_loads);
    SRLSIM_EXPECT_FIELD(committed_stores);
    SRLSIM_EXPECT_FIELD(slice_uops);
    SRLSIM_EXPECT_FIELD(poisoned_stores);
    SRLSIM_EXPECT_FIELD(redone_stores);
    SRLSIM_EXPECT_FIELD(srl_stalled_loads);
    SRLSIM_EXPECT_FIELD(indexed_forwards);
    SRLSIM_EXPECT_FIELD(mem_violations);
    SRLSIM_EXPECT_FIELD(snoop_violations);
    SRLSIM_EXPECT_FIELD(overflow_violations);
    SRLSIM_EXPECT_FIELD(branch_mispredicts);
    SRLSIM_EXPECT_FIELD(mem_misses);
    SRLSIM_EXPECT_FIELD(fc_writebacks);
    SRLSIM_EXPECT_FIELD(redo_phase_misses);
    SRLSIM_EXPECT_FIELD(temp_update_stalls);
    SRLSIM_EXPECT_FIELD(stall_ckpt);
    SRLSIM_EXPECT_FIELD(stall_stq);
    SRLSIM_EXPECT_FIELD(stall_lq);
    SRLSIM_EXPECT_FIELD(stall_sdb);
    SRLSIM_EXPECT_FIELD(stall_sched);
    SRLSIM_EXPECT_FIELD(stall_rf);
    SRLSIM_EXPECT_FIELD(miss_hot);
    SRLSIM_EXPECT_FIELD(miss_warm);
    SRLSIM_EXPECT_FIELD(miss_cold);
    SRLSIM_EXPECT_FIELD(miss_stream);
    SRLSIM_EXPECT_FIELD(drain_block_head);
    SRLSIM_EXPECT_FIELD(drain_block_fence);
    SRLSIM_EXPECT_FIELD(drain_block_line);
#undef SRLSIM_EXPECT_FIELD
}

TEST(ReadyQueue, FinalStatsMatchScanAndWakeupStages)
{
    const auto suite = workload::suiteProfile("SFP2K");
    for (const auto &[label, cfg] : configsUnderTest()) {
        core::ProcessorConfig scan = cfg;
        scan.issue_scan = true;
        core::ProcessorConfig wake = cfg;
        wake.issue_scan = false;

        const auto r_scan = core::runOne(scan, suite, 20000);
        const auto r_wake = core::runOne(wake, suite, 20000);
        expectSameStats(r_scan, r_wake, label);
    }
}

TEST(ReadyQueue, InstrumentedTraceIsByteIdenticalAcrossStages)
{
    // Events-only capture: per-event issue/complete/commit records
    // expose selection *order*, not just aggregate counts, so a
    // divergent pick shows up even when the totals happen to agree.
    obs::ObsConfig capture;
    capture.enabled = true;
    capture.sample_every = 0;
    capture.ring_capacity = 1u << 16;

    const auto suite = workload::suiteProfile("MM");
    for (const auto &[label, cfg] : configsUnderTest()) {
        SCOPED_TRACE(label);
        core::ProcessorConfig scan = cfg;
        scan.issue_scan = true;
        core::ProcessorConfig wake = cfg;
        wake.issue_scan = false;

        const auto r_scan = core::runOne(scan, suite, 20000, 0, capture);
        const auto r_wake = core::runOne(wake, suite, 20000, 0, capture);
        expectSameStats(r_scan, r_wake, label);

        ASSERT_NE(r_scan.recording, nullptr);
        ASSERT_NE(r_wake.recording, nullptr);
        const std::string t_scan = obs::toChromeTrace(*r_scan.recording);
        const std::string t_wake = obs::toChromeTrace(*r_wake.recording);
        EXPECT_EQ(t_scan, t_wake)
            << "srlsim-trace-v1 stream diverges between the legacy "
               "scan and the wakeup/select stage";
    }
}

TEST(ReadyQueue, StressConfigsActuallyStress)
{
    // Guard against the interesting configs silently rotting: the
    // equivalence runs above only earn their keep if the
    // rollback-heavy config really rolls back and the snoopy config
    // really takes snoop violations.
    const auto suite = workload::suiteProfile("SFP2K");
    for (const auto &[label, cfg] : configsUnderTest()) {
        SCOPED_TRACE(label);
        const auto r = core::runOne(cfg, suite, 20000);
        if (label == "rollback-heavy") {
            EXPECT_GT(r.stats.mem_violations, 0u)
                << "store-set predictor too accurate; shrink it";
        } else if (label == "snoopy") {
            EXPECT_GT(r.stats.snoop_violations, 0u)
                << "snoop stream produced no violations";
        } else if (label == "deep-miss") {
            EXPECT_GT(r.stats.mem_misses, 0u);
        }
    }
}

} // namespace

#else // !SRLSIM_ISSUE_SCAN_CHECK

TEST(ReadyQueue, RequiresScanCheckBuild)
{
    GTEST_SKIP() << "scan/wakeup equivalence needs the legacy issue "
                    "scan compiled in; configure with "
                    "-DSRLSIM_ISSUE_SCAN_CHECK=ON";
}

#endif // SRLSIM_ISSUE_SCAN_CHECK
