/**
 * @file
 * Unit tests for the observability subsystem: probe bus fan-out, event
 * ring wraparound and drop accounting, sampler periodicity, capture
 * through the simulator facade, exporter well-formedness, and the
 * determinism contract for traced parallel sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "obs/export.hh"
#include "obs/probe.hh"
#include "obs/ring.hh"
#include "obs/sampler.hh"
#include "runner/sweep.hh"
#include "workload/generator.hh"

namespace
{

using namespace srl;

/** Test sink that remembers every event it saw. */
class VectorSink : public obs::ProbeSink
{
  public:
    void onEvent(const obs::Event &e) override { events.push_back(e); }
    std::vector<obs::Event> events;
};

obs::Event
eventWithSeq(std::uint64_t seq)
{
    return obs::makeEvent(seq * 10, obs::EventKind::kDispatch,
                          obs::Structure::kCore, seq);
}

TEST(ProbeBus, InactiveWithoutSinksAndFansOutToAll)
{
    obs::ProbeBus bus;
    EXPECT_FALSE(bus.active());
    EXPECT_EQ(bus.sinkCount(), 0u);

    VectorSink a, b;
    bus.attach(&a);
    bus.attach(&b);
    bus.attach(nullptr); // ignored
    EXPECT_TRUE(bus.active());
    EXPECT_EQ(bus.sinkCount(), 2u);

    bus.emit(eventWithSeq(7));
    ASSERT_EQ(a.events.size(), 1u);
    ASSERT_EQ(b.events.size(), 1u);
    EXPECT_EQ(a.events[0].a, 7u);
    EXPECT_EQ(a.events[0].cycle, 70u);

    bus.detach(&a);
    EXPECT_EQ(bus.sinkCount(), 1u);
    bus.emit(eventWithSeq(8));
    EXPECT_EQ(a.events.size(), 1u);
    EXPECT_EQ(b.events.size(), 2u);
}

TEST(EventRing, FillsWithoutDroppingBelowCapacity)
{
    obs::EventRing ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.onEvent(eventWithSeq(i));
    EXPECT_EQ(ring.size(), 5u);
    EXPECT_EQ(ring.accepted(), 5u);
    EXPECT_EQ(ring.dropped(), 0u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(ring.at(i).a, i);
}

TEST(EventRing, WrapsKeepingNewestAndCountsDrops)
{
    obs::EventRing ring(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        ring.onEvent(eventWithSeq(i));

    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.accepted(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);

    // Survivors are the newest four, oldest-first: 6, 7, 8, 9.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ring.at(i).a, 6u + i);
        EXPECT_EQ(ring.at(i).cycle, (6u + i) * 10);
    }

    // forEach visits the same events in the same order as at().
    std::vector<std::uint64_t> seen;
    ring.forEach([&](const obs::Event &e) { seen.push_back(e.a); });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{6, 7, 8, 9}));

    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(CounterSampler, SamplesOnGridOnly)
{
    obs::CounterSampler sampler(4);
    std::uint64_t value = 0;
    sampler.addGauge("v", [&] { return value; });

    for (Cycle now = 0; now < 10; ++now) {
        value = now * 100;
        sampler.tick(now);
    }

    ASSERT_EQ(sampler.samples().size(), 3u); // cycles 0, 4, 8
    EXPECT_EQ(sampler.samples()[0].cycle, 0u);
    EXPECT_EQ(sampler.samples()[1].cycle, 4u);
    EXPECT_EQ(sampler.samples()[2].cycle, 8u);
    EXPECT_EQ(sampler.samples()[1].values[0], 400u);
    EXPECT_EQ(sampler.samples()[2].values[0], 800u);

    // Dropping the gauges keeps names and samples readable.
    sampler.dropGauges();
    EXPECT_EQ(sampler.gaugeNames().size(), 1u);
    EXPECT_EQ(sampler.samples().size(), 3u);
}

TEST(CounterSampler, ZeroIntervalDisablesSampling)
{
    obs::CounterSampler sampler(0);
    sampler.addGauge("v", [] { return 1u; });
    for (Cycle now = 0; now < 100; ++now)
        sampler.tick(now);
    EXPECT_TRUE(sampler.samples().empty());
}

TEST(ObsNames, EveryKindAndStructureHasAStableName)
{
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(obs::EventKind::kNumKinds); ++k) {
        const char *name =
            obs::eventKindName(static_cast<obs::EventKind>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "");
    }
    for (std::size_t s = 0;
         s < static_cast<std::size_t>(obs::Structure::kNumStructures);
         ++s) {
        const char *name =
            obs::structureName(static_cast<obs::Structure>(s));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "");
    }
}

TEST(Capture, DisabledRunHasNoRecording)
{
    const auto suite = workload::suiteProfile("MM");
    const auto r = core::runOne(core::srlConfig(), suite, 5000, 0,
                                obs::ObsConfig{});
    EXPECT_EQ(r.recording, nullptr);
}

TEST(Capture, EnabledRunRecordsEventsSamplesAndMeta)
{
    obs::ObsConfig capture;
    capture.enabled = true;
    capture.ring_capacity = 1u << 14;
    capture.sample_every = 32;

    const auto suite = workload::suiteProfile("SFP2K");
    const auto r =
        core::runOne(core::srlConfig(), suite, 20000, 0, capture);

    ASSERT_NE(r.recording, nullptr);
    const auto &rec = *r.recording;
    EXPECT_GT(rec.ring.accepted(), 0u);
    EXPECT_FALSE(rec.sampler.samples().empty());
    EXPECT_FALSE(rec.sampler.gaugeNames().empty());

    // The SRL config samples an "srl" gauge (the Figure 7 curve).
    const auto &names = rec.sampler.gaugeNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "srl"),
              names.end());

    // Meta identifies the run.
    EXPECT_EQ(rec.meta.at("config"), r.config_name);
    EXPECT_EQ(rec.meta.at("suite"), r.workload_name);
    EXPECT_FALSE(rec.meta.at("cycles").empty());

    // Every event is stamped within the run. (Emission order is not
    // globally monotone in the stamp: kMemMissReturn carries the fill
    // cycle and is published retroactively at MSHR-prune time.)
    const auto total = static_cast<Cycle>(r.cycles);
    rec.ring.forEach([&](const obs::Event &e) {
        EXPECT_LE(e.cycle, total);
        EXPECT_LT(static_cast<std::size_t>(e.kind),
                  static_cast<std::size_t>(obs::EventKind::kNumKinds));
        EXPECT_LT(
            static_cast<std::size_t>(e.structure),
            static_cast<std::size_t>(obs::Structure::kNumStructures));
    });
}

TEST(Capture, InstrumentedRunMatchesUninstrumentedResults)
{
    // Probes observe; they must never perturb the simulation.
    obs::ObsConfig capture;
    capture.enabled = true;
    const auto suite = workload::suiteProfile("SINT2K");

    const auto plain = core::runOne(core::srlConfig(), suite, 20000);
    const auto traced =
        core::runOne(core::srlConfig(), suite, 20000, 0, capture);

    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.stats.committed_uops, traced.stats.committed_uops);
    EXPECT_EQ(plain.stats.mem_misses, traced.stats.mem_misses);
    EXPECT_EQ(plain.stats.redone_stores, traced.stats.redone_stores);
}

TEST(Export, ChromeTraceIsStructurallySound)
{
    obs::ObsConfig capture;
    capture.enabled = true;
    capture.sample_every = 64;
    const auto suite = workload::suiteProfile("SFP2K");
    const auto r =
        core::runOne(core::srlConfig(), suite, 20000, 0, capture);
    ASSERT_NE(r.recording, nullptr);

    const std::string json = obs::toChromeTrace(*r.recording);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("srlsim-trace-v1"), std::string::npos);
    EXPECT_NE(json.find("\"events_accepted\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos); // counters
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos); // instants

    // No emitted string contains braces, so bracket balance is a
    // meaningful structural check without a JSON parser.
    const auto count = [&](char ch) {
        return std::count(json.begin(), json.end(), ch);
    };
    EXPECT_EQ(count('{'), count('}'));
    EXPECT_EQ(count('['), count(']'));
}

TEST(Export, TimelineReportRoundTripsThroughJson)
{
    obs::ObsConfig capture;
    capture.enabled = true;
    capture.sample_every = 64;
    const auto suite = workload::suiteProfile("MM");
    const auto r =
        core::runOne(core::srlConfig(), suite, 15000, 0, capture);
    ASSERT_NE(r.recording, nullptr);

    const auto rep = obs::timelineReport(*r.recording);
    EXPECT_EQ(rep.meta.at("schema"), "srlsim-timeline-v1");
    EXPECT_EQ(rep.runs.size(), r.recording->sampler.samples().size());

    const std::string json = rep.toJson();
    const auto parsed = stats::StatsReport::fromJson(json);
    EXPECT_EQ(parsed.toJson(), json);

    // CSV has one row per sample plus the header.
    const std::string csv = obs::timelineCsv(*r.recording);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              rep.runs.size() + 1);
}

TEST(Export, PercentSamplesAboveMatchesHandComputation)
{
    obs::Recording rec(8, 2);
    std::uint64_t value = 0;
    rec.sampler.addGauge("occ", [&] { return value; });
    const std::uint64_t series[] = {0, 5, 10, 0, 20, 5};
    Cycle now = 0;
    for (const auto v : series) {
        value = v;
        rec.sampler.tick(now);
        now += 2;
    }

    // Occupied samples: 5, 10, 20, 5 (four of six).
    EXPECT_DOUBLE_EQ(obs::percentSamplesAbove(rec, "occ", 0), 100.0);
    EXPECT_DOUBLE_EQ(obs::percentSamplesAbove(rec, "occ", 5), 50.0);
    EXPECT_DOUBLE_EQ(obs::percentSamplesAbove(rec, "occ", 10), 25.0);
    EXPECT_DOUBLE_EQ(obs::percentSamplesAbove(rec, "occ", 100), 0.0);
    EXPECT_DOUBLE_EQ(obs::percentSamplesAbove(rec, "missing", 0), 0.0);
}

TEST(TracedSweep, ParallelTracesAreByteIdenticalToSerial)
{
    std::vector<runner::SweepPoint> points;
    for (const char *s : {"MM", "SFP2K", "SINT2K", "PROD"}) {
        runner::SweepPoint p;
        p.name = std::string("srl/") + s;
        p.config = core::srlConfig();
        p.suite = workload::suiteProfile(s);
        p.uops = 8000;
        points.push_back(std::move(p));
    }
    const std::vector<std::string> traced = {"srl/SFP2K", "srl/PROD"};

    obs::ObsConfig capture;
    capture.sample_every = 64;

    runner::SweepOptions serial;
    serial.jobs = 1;
    serial.seed = 42;
    runner::SweepOptions parallel;
    parallel.jobs = 4;
    parallel.seed = 42;

    const auto r1 =
        runner::runSweepTraced(points, serial, traced, capture);
    const auto r4 =
        runner::runSweepTraced(points, parallel, traced, capture);

    EXPECT_EQ(r1.report.toJson(), r4.report.toJson());

    ASSERT_EQ(r1.traces.size(), 2u);
    ASSERT_EQ(r4.traces.size(), 2u);
    // Traces come back in point order regardless of completion order.
    EXPECT_EQ(r1.traces[0].first, "srl/SFP2K");
    EXPECT_EQ(r1.traces[1].first, "srl/PROD");
    for (std::size_t i = 0; i < r1.traces.size(); ++i) {
        EXPECT_EQ(r1.traces[i].first, r4.traces[i].first);
        EXPECT_EQ(r1.traces[i].second, r4.traces[i].second);
    }
}

} // namespace
