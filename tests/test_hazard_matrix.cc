/**
 * @file
 * Hazard matrix (TEST_P): replays the paper's Figure 4 hazard
 * sequences on *every* SRL configuration variant (full, no indexed
 * forwarding, no LCF, data-cache temporary updates, violate-on-
 * overflow, tiny structures). Whatever the variant's performance
 * path, the committed values and final memory must follow program
 * order — the hazard handling is a property of the algorithm, not of
 * the performance options.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/processor.hh"
#include "core/simulator.hh"
#include "workload/generator.hh"

namespace
{

using namespace srl;
using isa::Uop;
using isa::UopClass;

constexpr Addr kMiss = 0x4000'0000;
constexpr Addr kA = 0x1000'0100;
constexpr Addr kB = 0x1000'0200;

Uop
mkLoad(SeqNum seq, Addr addr, ArchReg dst, ArchReg areg = 0)
{
    Uop u;
    u.seq = seq;
    u.pc = 0x1000 + seq * 4;
    u.cls = UopClass::kLoad;
    u.dst = dst;
    u.src1 = areg;
    u.effAddr = addr;
    u.memSize = 8;
    return u;
}

Uop
mkStore(SeqNum seq, Addr addr, std::uint64_t data, ArchReg dreg = 0)
{
    Uop u;
    u.seq = seq;
    u.pc = 0x1000 + seq * 4;
    u.cls = UopClass::kStore;
    u.src1 = dreg;
    u.effAddr = addr;
    u.memSize = 8;
    u.storeData = data;
    return u;
}

enum class Variant
{
    kFull,
    kNoIdx,
    kNoLcf,
    kDcacheTemp,
    kViolateOverflow,
    kTiny,
    kEagerDrain,
};

core::ProcessorConfig
configOf(Variant v)
{
    auto c = core::srlConfig();
    switch (v) {
      case Variant::kFull:
        break;
      case Variant::kNoIdx:
        c.srl.indexed_forwarding = false;
        break;
      case Variant::kNoLcf:
        c.srl.use_lcf = false;
        c.srl.indexed_forwarding = false;
        break;
      case Variant::kDcacheTemp:
        c.srl.use_fwd_cache = false;
        break;
      case Variant::kViolateOverflow:
        c.load_buffer.overflow = lsq::OverflowPolicy::kViolate;
        break;
      case Variant::kTiny:
        c.srl.srl.capacity = 64;
        c.srl.lcf.entries = 64;
        c.srl.fwd_cache = {16, 4};
        c.load_buffer.entries = 64;
        break;
      case Variant::kEagerDrain:
        c.srl.drain_only_in_redo = false;
        break;
    }
    return c;
}

const char *
nameOf(Variant v)
{
    switch (v) {
      case Variant::kFull: return "full";
      case Variant::kNoIdx: return "no_idx";
      case Variant::kNoLcf: return "no_lcf";
      case Variant::kDcacheTemp: return "dcache_temp";
      case Variant::kViolateOverflow: return "violate_ovfl";
      case Variant::kTiny: return "tiny";
      case Variant::kEagerDrain: return "eager_drain";
    }
    return "?";
}

class HazardMatrix : public ::testing::TestWithParam<Variant>
{
  protected:
    std::map<SeqNum, std::uint64_t> vals_;
    std::unique_ptr<workload::SequenceStream> stream_;
    std::unique_ptr<core::Processor> cpu_; // destroyed before stream_

    core::Processor *
    runSeq(std::vector<Uop> prog, std::uint64_t init_a = 0)
    {
        stream_ =
            std::make_unique<workload::SequenceStream>(std::move(prog));
        cpu_ = std::make_unique<core::Processor>(configOf(GetParam()),
                                                 *stream_);
        if (init_a)
            cpu_->mem().write(kA, 8, init_a);
        cpu_->setLoadCommitHook(
            [this](SeqNum seq, Addr, unsigned, std::uint64_t v) {
                vals_[seq] = v;
            });
        cpu_->run(10'000'000);
        EXPECT_TRUE(cpu_->done()) << nameOf(GetParam());
        return cpu_.get();
    }
};

TEST_P(HazardMatrix, WriteAfterWrite)
{
    auto *cpu = runSeq({mkLoad(0, kMiss, 12), mkStore(1, kA, 0xd, 12),
                        mkStore(2, kA, 0x1), mkLoad(3, kA, 13)});
    EXPECT_EQ(vals_.at(3), 0x1u) << nameOf(GetParam());
    EXPECT_EQ(cpu->mem().read(kA, 8), 0x1u);
}

TEST_P(HazardMatrix, WriteAfterRead)
{
    auto *cpu = runSeq({mkLoad(0, kMiss, 12), mkLoad(1, kA, 13, 12),
                        mkStore(2, kA, 0x2)},
                       /*init_a=*/0x9);
    EXPECT_EQ(vals_.at(1), 0x9u) << nameOf(GetParam());
    EXPECT_EQ(cpu->mem().read(kA, 8), 0x2u);
}

TEST_P(HazardMatrix, ReadAfterWriteIndependent)
{
    runSeq({mkLoad(0, kMiss, 12), mkStore(1, kB, 0xb),
            mkStore(2, kA, 0xa, 12), mkLoad(3, kB, 13)});
    EXPECT_EQ(vals_.at(3), 0xbu) << nameOf(GetParam());
}

TEST_P(HazardMatrix, MispredictedDependence)
{
    auto *cpu = runSeq({mkLoad(0, kMiss, 12), mkStore(1, kA, 0x5, 12),
                        mkLoad(2, kA, 13)});
    EXPECT_EQ(vals_.at(2), 0x5u) << nameOf(GetParam());
    EXPECT_EQ(cpu->mem().read(kA, 8), 0x5u);
}

TEST_P(HazardMatrix, ComplexCaseVi)
{
    auto *cpu = runSeq({mkLoad(0, kMiss, 12), mkStore(1, kA, 0xaa),
                        mkStore(2, kB, 0xbb, 12), mkLoad(3, kA, 13)});
    EXPECT_EQ(vals_.at(3), 0xaau) << nameOf(GetParam());
    EXPECT_EQ(cpu->mem().read(kA, 8), 0xaau);
    EXPECT_EQ(cpu->mem().read(kB, 8), 0xbbu);
}

TEST_P(HazardMatrix, BackToBackMissesWithHazards)
{
    // Two overlapping miss epochs with hazards spanning both.
    std::vector<Uop> prog;
    SeqNum s = 0;
    prog.push_back(mkLoad(s++, kMiss, 12));
    prog.push_back(mkStore(s++, kA, 0x11, 12)); // dep on miss 1
    prog.push_back(mkLoad(s++, kMiss + 0x4000, 14));
    prog.push_back(mkStore(s++, kA, 0x22, 14)); // dep on miss 2
    prog.push_back(mkStore(s++, kB, 0x33));     // independent
    prog.push_back(mkLoad(s++, kA, 13));
    prog.push_back(mkLoad(s++, kB, 15));
    auto *cpu = runSeq(std::move(prog));
    EXPECT_EQ(vals_.at(5), 0x22u) << nameOf(GetParam());
    EXPECT_EQ(vals_.at(6), 0x33u) << nameOf(GetParam());
    EXPECT_EQ(cpu->mem().read(kA, 8), 0x22u);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, HazardMatrix,
    ::testing::Values(Variant::kFull, Variant::kNoIdx, Variant::kNoLcf,
                      Variant::kDcacheTemp, Variant::kViolateOverflow,
                      Variant::kTiny, Variant::kEagerDrain),
    [](const auto &info) { return nameOf(info.param); });

} // namespace
