/**
 * @file
 * Directed tests of the hierarchical store queue baseline [Akkary et
 * al. 2003] inside the full machine: L1->L2 displacement under
 * capacity pressure, forwarding from the slow L2 STQ, Membership Test
 * Buffer filtering of L2 lookups, and drain ordering across the two
 * levels. Also exercises SRL-model accounting invariants.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/processor.hh"
#include "core/simulator.hh"
#include "workload/generator.hh"

namespace
{

using namespace srl;
using isa::Uop;
using isa::UopClass;

constexpr Addr kMissAddr = 0x4000'0000;
constexpr Addr kBase = 0x1000'0000;

Uop
mkLoad(SeqNum seq, Addr addr, ArchReg dst, ArchReg areg = 0)
{
    Uop u;
    u.seq = seq;
    u.pc = 0x1000 + seq * 4;
    u.cls = UopClass::kLoad;
    u.dst = dst;
    u.src1 = areg;
    u.effAddr = addr;
    u.memSize = 8;
    return u;
}

Uop
mkStore(SeqNum seq, Addr addr, std::uint64_t data, ArchReg dreg = 0)
{
    Uop u;
    u.seq = seq;
    u.pc = 0x1000 + seq * 4;
    u.cls = UopClass::kStore;
    u.src1 = dreg;
    u.effAddr = addr;
    u.memSize = 8;
    u.storeData = data;
    return u;
}

Uop
mkNop(SeqNum seq)
{
    Uop u;
    u.seq = seq;
    u.pc = 0x1000 + seq * 4;
    u.cls = UopClass::kNop;
    return u;
}

TEST(Hierarchical, ForwardsFromDisplacedL2Store)
{
    // A miss-dependent store at the front freezes the drain (its data
    // waits for the miss); >48 subsequent stores then displace into
    // the L2 STQ; a load to the oldest independent store's address
    // must forward from the L2 (at its higher latency).
    std::vector<Uop> prog;
    SeqNum s = 0;
    prog.push_back(mkLoad(s++, kMissAddr, 12));
    // Dependent store: blocks the drain until the miss returns.
    prog.push_back(mkStore(s++, kBase + 0x8000, 0, 12));
    prog.push_back(mkStore(s++, kBase, 0xfeed));
    for (int i = 0; i < 70; ++i)
        prog.push_back(mkStore(s++, kBase + 0x40 * (i + 1), i));
    const SeqNum ld = s;
    prog.push_back(mkLoad(s++, kBase, 13));

    workload::SequenceStream stream(std::move(prog));
    core::Processor cpu(core::hierarchicalConfig(), stream);
    std::map<SeqNum, std::uint64_t> vals;
    cpu.setLoadCommitHook(
        [&](SeqNum seq, Addr, unsigned, std::uint64_t v) {
            vals[seq] = v;
        });
    cpu.run(10'000'000);
    ASSERT_TRUE(cpu.done());
    EXPECT_EQ(vals.at(ld), 0xfeedu);
    ASSERT_NE(cpu.l2Stq(), nullptr);
    EXPECT_GT(cpu.l2Stq()->forwards.value(), 0u);
}

TEST(Hierarchical, MtbFiltersNonMatchingLoads)
{
    // Loads to addresses with no store in the L2 STQ must not search
    // it: the Membership Test Buffer's zero counters prove absence.
    std::vector<Uop> prog;
    SeqNum s = 0;
    prog.push_back(mkLoad(s++, kMissAddr, 12));
    prog.push_back(mkStore(s++, kBase + 0x8000, 0, 12)); // freeze drain
    for (int i = 0; i < 70; ++i)
        prog.push_back(mkStore(s++, kBase + 0x40 * i, i));
    // Loads far away from every store (different MTB counters).
    for (int i = 0; i < 50; ++i)
        prog.push_back(mkLoad(s++, kBase + 0x100000 + 0x40 * i, 13));

    workload::SequenceStream stream(std::move(prog));
    core::Processor cpu(core::hierarchicalConfig(), stream);
    cpu.run(10'000'000);
    ASSERT_TRUE(cpu.done());
    // The far loads found a zero MTB counter: L2 searches must be far
    // fewer than total loads.
    EXPECT_LT(cpu.l2Stq()->searches.value(), 25u);
}

TEST(Hierarchical, DrainOrderAcrossLevelsPreservesMemoryState)
{
    // Same address written from both levels: the L2 (older) store must
    // drain before the L1 (younger) one.
    std::vector<Uop> prog;
    SeqNum s = 0;
    prog.push_back(mkLoad(s++, kMissAddr, 12));
    prog.push_back(mkStore(s++, kBase + 0x8000, 0, 12)); // freeze drain
    prog.push_back(mkStore(s++, kBase, 0x01)); // will displace to L2
    for (int i = 0; i < 70; ++i)
        prog.push_back(mkStore(s++, kBase + 0x40 * (i + 1), i));
    prog.push_back(mkStore(s++, kBase, 0x02)); // younger, stays in L1
    for (int i = 0; i < 8; ++i)
        prog.push_back(mkNop(s++));

    workload::SequenceStream stream(std::move(prog));
    core::Processor cpu(core::hierarchicalConfig(), stream);
    cpu.run(10'000'000);
    ASSERT_TRUE(cpu.done());
    EXPECT_EQ(cpu.mem().read(kBase, 8), 0x02u);
}

TEST(SrlAccounting, RedoneEqualsDrainsAndOccupancyConsistent)
{
    workload::Generator gen(workload::suiteProfile("SFP2K"), 30000);
    core::Processor cpu(core::srlConfig(), gen);
    cpu.run(80'000'000);
    ASSERT_TRUE(cpu.done());
    // Every redone store corresponds to one SRL drain.
    EXPECT_EQ(cpu.stats().redone_stores, cpu.srlLog()->drains.value());
    // Pushes >= drains (rollbacks squash pushed entries, which then
    // re-push on replay); nothing may be left behind at the end.
    EXPECT_GE(cpu.srlLog()->pushes.value(),
              cpu.srlLog()->drains.value());
    EXPECT_TRUE(cpu.srlLog()->empty());
    // Occupancy observations cover every cycle.
    EXPECT_EQ(cpu.srlOccupancy().totalCycles(), cpu.stats().cycles);
}

TEST(SrlAccounting, LcfCountersReturnToZero)
{
    workload::Generator gen(workload::suiteProfile("WS"), 30000);
    core::Processor cpu(core::srlConfig(), gen);
    cpu.run(80'000'000);
    ASSERT_TRUE(cpu.done());
    const auto *lcf = cpu.lcf();
    ASSERT_NE(lcf, nullptr);
    // The real invariant: with the machine drained, every LCF counter
    // is zero (the stat counters may differ by bulk clears during
    // rollbacks-to-origin, which reset counters without crediting
    // per-store removals).
    EXPECT_TRUE(lcf->allZero());
    EXPECT_GE(lcf->inserts.value(), lcf->removes.value());
}

TEST(SrlAccounting, CommittedStoresAllDrained)
{
    workload::Generator gen(workload::suiteProfile("SERVER"), 30000);
    core::Processor cpu(core::srlConfig(), gen);
    cpu.run(80'000'000);
    ASSERT_TRUE(cpu.done());
    // Every committed store reached the memory system exactly once on
    // the committed path: the architectural image must reflect them
    // (spot-proved by the reference-equivalence suite); here we check
    // the drain counters cover all committed stores.
    EXPECT_GE(cpu.hierarchy().storeDrains.value(),
              cpu.stats().committed_stores);
    EXPECT_TRUE(cpu.stq().empty());
}

} // namespace
