/**
 * @file
 * End-to-end smoke test: every store-queue model runs a small workload
 * to completion and produces exactly the committed state of the
 * in-order functional reference.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"
#include "core/simulator.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;

void
runAndVerify(const core::ProcessorConfig &config,
             const workload::SuiteProfile &suite, std::uint64_t uops)
{
    // Reference execution over an identical stream.
    workload::Generator ref_gen(suite, uops);
    core::ReferenceExecutor ref;
    ref.run(ref_gen);

    workload::Generator gen(suite, uops);
    core::Processor cpu(config, gen);

    std::uint64_t checked = 0;
    cpu.setLoadCommitHook([&](SeqNum seq, Addr, unsigned,
                              std::uint64_t value) {
        ASSERT_TRUE(ref.hasLoad(seq));
        ASSERT_EQ(value, ref.loadValue(seq))
            << "load seq " << seq << " under " << config.name << "/"
            << suite.name;
        ++checked;
    });

    const core::ProcessorStats &s = cpu.run(50'000'000);
    EXPECT_TRUE(cpu.done()) << config.name << "/" << suite.name;
    EXPECT_EQ(s.committed_uops, uops);
    EXPECT_GT(checked, 0u);
    EXPECT_GT(s.ipc(), 0.0);
}

TEST(Smoke, SrlModelMatchesReference)
{
    runAndVerify(core::srlConfig(), workload::suiteProfile("SINT2K"),
                 20000);
}

TEST(Smoke, BaselineModelMatchesReference)
{
    runAndVerify(core::baselineConfig(),
                 workload::suiteProfile("SINT2K"), 20000);
}

TEST(Smoke, HierarchicalModelMatchesReference)
{
    runAndVerify(core::hierarchicalConfig(),
                 workload::suiteProfile("SINT2K"), 20000);
}

TEST(Smoke, IdealModelMatchesReference)
{
    runAndVerify(core::idealConfig(), workload::suiteProfile("SINT2K"),
                 20000);
}

} // namespace
