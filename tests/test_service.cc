/**
 * @file
 * Tests for the sweep service stack: canonical content hashing
 * (common/chash), the protocol JSON codec, PointSpec materialization,
 * the disk result cache (cold/warm/corrupt/coalesced/evicting), the
 * cached sweep runner's byte-identity with the direct runner, the
 * admission-controlled SweepService, the socket server/client loop,
 * and robustness of the srlsim-stats-v1 parser against truncated and
 * corrupted input.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>

#include "common/chash.hh"
#include "core/config.hh"
#include "runner/sweep.hh"
#include "service/client.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/result_cache.hh"
#include "service/server.hh"
#include "service/service.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;
namespace json = srl::service::json;

// Small enough that a simulation takes milliseconds; the byte-identity
// assertions don't care how long the runs are.
constexpr std::uint64_t kTinyUops = 2000;

/** Self-cleaning temp directory. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/srlsim-test-XXXXXX";
        EXPECT_NE(mkdtemp(tmpl), nullptr);
        path = tmpl;
    }

    ~TempDir()
    {
        if (DIR *d = opendir(path.c_str())) {
            while (const dirent *e = readdir(d)) {
                const std::string n = e->d_name;
                if (n != "." && n != "..")
                    std::remove((path + "/" + n).c_str());
            }
            closedir(d);
        }
        rmdir(path.c_str());
    }

    std::size_t
    fileCount() const
    {
        std::size_t count = 0;
        if (DIR *d = opendir(path.c_str())) {
            while (const dirent *e = readdir(d)) {
                const std::string n = e->d_name;
                if (n != "." && n != "..")
                    ++count;
            }
            closedir(d);
        }
        return count;
    }
};

stats::RunRecord
syntheticRecord(const std::string &name, double value)
{
    stats::RunRecord r;
    r.name = name;
    r.meta["config"] = "synthetic";
    r.set("value", value);
    r.set("cycles", 123);
    return r;
}

workload::SuiteProfile
testSuite()
{
    return workload::suiteProfiles().front();
}

// --------------------------------------------------------------- chash

TEST(CanonicalHash, HexIs32LowercaseChars)
{
    const chash::Hash128 h =
        chash::hashString("the quick brown fox");
    const std::string hex = h.toHex();
    ASSERT_EQ(hex.size(), 32u);
    for (const char c : hex)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << hex;
}

TEST(CanonicalHash, DistinguishesContentAndLength)
{
    const std::vector<std::string> inputs = {
        std::string(),         std::string(1, '\0'),
        std::string(2, '\0'),  std::string("a"),
        std::string("b"),      std::string("ab"),
        std::string("ba"),     std::string("abcdefgh"),
        std::string("abcdefghi")};
    std::set<std::string> seen;
    for (const auto &s : inputs)
        seen.insert(chash::hashString(s).toHex());
    EXPECT_EQ(seen.size(), inputs.size());
}

TEST(CanonicalHash, SerializationIsByteStable)
{
    const core::ProcessorConfig cfg = core::srlConfig();
    EXPECT_EQ(chash::serializeConfig(cfg), chash::serializeConfig(cfg));
    const workload::SuiteProfile suite = testSuite();
    EXPECT_EQ(chash::serializeSuite(suite),
              chash::serializeSuite(suite));
    EXPECT_EQ(chash::pointKey(cfg, suite, 1000, 7).toHex(),
              chash::pointKey(cfg, suite, 1000, 7).toHex());
}

using ConfigMutator = void (*)(core::ProcessorConfig &);

/**
 * One mutator per canonically serialized config field. The exhaustive
 * perturbation test below proves every one of them flips the content
 * key — i.e. the canonical serialization covers the whole config.
 */
const std::vector<std::pair<const char *, ConfigMutator>> &
configMutators()
{
    static const std::vector<std::pair<const char *, ConfigMutator>>
        mutators = {
            {"name", [](core::ProcessorConfig &c) { c.name += "x"; }},
            {"alloc_width",
             [](core::ProcessorConfig &c) { ++c.alloc_width; }},
            {"issue_width",
             [](core::ProcessorConfig &c) { ++c.issue_width; }},
            {"branch_mispredict_penalty",
             [](core::ProcessorConfig &c) {
                 ++c.branch_mispredict_penalty;
             }},
            {"sched_int",
             [](core::ProcessorConfig &c) { ++c.sched_int; }},
            {"sched_fp",
             [](core::ProcessorConfig &c) { ++c.sched_fp; }},
            {"sched_mem",
             [](core::ProcessorConfig &c) { ++c.sched_mem; }},
            {"regs_int",
             [](core::ProcessorConfig &c) { ++c.regs_int; }},
            {"regs_fp", [](core::ProcessorConfig &c) { ++c.regs_fp; }},
            {"fu_int_alu",
             [](core::ProcessorConfig &c) { ++c.fu_int_alu; }},
            {"fu_int_mul",
             [](core::ProcessorConfig &c) { ++c.fu_int_mul; }},
            {"fu_fp", [](core::ProcessorConfig &c) { ++c.fu_fp; }},
            {"load_ports",
             [](core::ProcessorConfig &c) { ++c.load_ports; }},
            {"store_ports",
             [](core::ProcessorConfig &c) { ++c.store_ports; }},
            {"checkpoints.num_checkpoints",
             [](core::ProcessorConfig &c) {
                 ++c.checkpoints.num_checkpoints;
             }},
            {"checkpoints.max_interval",
             [](core::ProcessorConfig &c) {
                 ++c.checkpoints.max_interval;
             }},
            {"checkpoints.branch_interval",
             [](core::ProcessorConfig &c) {
                 ++c.checkpoints.branch_interval;
             }},
            {"sdb.capacity",
             [](core::ProcessorConfig &c) { ++c.sdb.capacity; }},
            {"model",
             [](core::ProcessorConfig &c) {
                 c.model = c.model == core::StqModel::kSrl
                               ? core::StqModel::kMonolithic
                               : core::StqModel::kSrl;
             }},
            {"stq.name",
             [](core::ProcessorConfig &c) { c.stq.name += "x"; }},
            {"stq.capacity",
             [](core::ProcessorConfig &c) { ++c.stq.capacity; }},
            {"stq.forward_latency",
             [](core::ProcessorConfig &c) { ++c.stq.forward_latency; }},
            {"l2_stq.name",
             [](core::ProcessorConfig &c) { c.l2_stq.name += "x"; }},
            {"l2_stq.capacity",
             [](core::ProcessorConfig &c) { ++c.l2_stq.capacity; }},
            {"l2_stq.forward_latency",
             [](core::ProcessorConfig &c) {
                 ++c.l2_stq.forward_latency;
             }},
            {"mtb_entries",
             [](core::ProcessorConfig &c) { ++c.mtb_entries; }},
            {"srl.srl.capacity",
             [](core::ProcessorConfig &c) { ++c.srl.srl.capacity; }},
            {"srl.use_lcf",
             [](core::ProcessorConfig &c) {
                 c.srl.use_lcf = !c.srl.use_lcf;
             }},
            {"srl.lcf.entries",
             [](core::ProcessorConfig &c) { ++c.srl.lcf.entries; }},
            {"srl.lcf.counter_bits",
             [](core::ProcessorConfig &c) {
                 ++c.srl.lcf.counter_bits;
             }},
            {"srl.lcf.hash",
             [](core::ProcessorConfig &c) {
                 c.srl.lcf.hash =
                     c.srl.lcf.hash == lsq::HashScheme::kThreePieceXor
                         ? lsq::HashScheme::kLowerAddressBits
                         : lsq::HashScheme::kThreePieceXor;
             }},
            {"srl.indexed_forwarding",
             [](core::ProcessorConfig &c) {
                 c.srl.indexed_forwarding = !c.srl.indexed_forwarding;
             }},
            {"srl.use_fwd_cache",
             [](core::ProcessorConfig &c) {
                 c.srl.use_fwd_cache = !c.srl.use_fwd_cache;
             }},
            {"srl.drain_only_in_redo",
             [](core::ProcessorConfig &c) {
                 c.srl.drain_only_in_redo = !c.srl.drain_only_in_redo;
             }},
            {"srl.fwd_cache.entries",
             [](core::ProcessorConfig &c) {
                 ++c.srl.fwd_cache.entries;
             }},
            {"srl.fwd_cache.assoc",
             [](core::ProcessorConfig &c) { ++c.srl.fwd_cache.assoc; }},
            {"load_queue.capacity",
             [](core::ProcessorConfig &c) { ++c.load_queue.capacity; }},
            {"load_buffer.entries",
             [](core::ProcessorConfig &c) { ++c.load_buffer.entries; }},
            {"load_buffer.assoc",
             [](core::ProcessorConfig &c) { ++c.load_buffer.assoc; }},
            {"load_buffer.overflow",
             [](core::ProcessorConfig &c) {
                 c.load_buffer.overflow =
                     c.load_buffer.overflow ==
                             lsq::OverflowPolicy::kVictimBuffer
                         ? lsq::OverflowPolicy::kViolate
                         : lsq::OverflowPolicy::kVictimBuffer;
             }},
            {"load_buffer.victim_entries",
             [](core::ProcessorConfig &c) {
                 ++c.load_buffer.victim_entries;
             }},
            {"store_sets.ssit_entries",
             [](core::ProcessorConfig &c) {
                 ++c.store_sets.ssit_entries;
             }},
            {"store_sets.lfst_entries",
             [](core::ProcessorConfig &c) {
                 ++c.store_sets.lfst_entries;
             }},
            {"store_sets.clear_interval",
             [](core::ProcessorConfig &c) {
                 ++c.store_sets.clear_interval;
             }},
            {"memory.l1.name",
             [](core::ProcessorConfig &c) { c.memory.l1.name += "x"; }},
            {"memory.l1.size_bytes",
             [](core::ProcessorConfig &c) {
                 c.memory.l1.size_bytes *= 2;
             }},
            {"memory.l1.assoc",
             [](core::ProcessorConfig &c) { ++c.memory.l1.assoc; }},
            {"memory.l1.line_bytes",
             [](core::ProcessorConfig &c) {
                 c.memory.l1.line_bytes *= 2;
             }},
            {"memory.l1.hit_latency",
             [](core::ProcessorConfig &c) {
                 ++c.memory.l1.hit_latency;
             }},
            {"memory.l2.name",
             [](core::ProcessorConfig &c) { c.memory.l2.name += "x"; }},
            {"memory.l2.size_bytes",
             [](core::ProcessorConfig &c) {
                 c.memory.l2.size_bytes *= 2;
             }},
            {"memory.l2.assoc",
             [](core::ProcessorConfig &c) { ++c.memory.l2.assoc; }},
            {"memory.l2.line_bytes",
             [](core::ProcessorConfig &c) {
                 c.memory.l2.line_bytes *= 2;
             }},
            {"memory.l2.hit_latency",
             [](core::ProcessorConfig &c) {
                 ++c.memory.l2.hit_latency;
             }},
            {"memory.memory_latency",
             [](core::ProcessorConfig &c) {
                 ++c.memory.memory_latency;
             }},
            {"memory.num_mshrs",
             [](core::ProcessorConfig &c) { ++c.memory.num_mshrs; }},
            {"memory.enable_prefetch",
             [](core::ProcessorConfig &c) {
                 c.memory.enable_prefetch = !c.memory.enable_prefetch;
             }},
            {"memory.prefetch.num_streams",
             [](core::ProcessorConfig &c) {
                 ++c.memory.prefetch.num_streams;
             }},
            {"memory.prefetch.line_bytes",
             [](core::ProcessorConfig &c) {
                 c.memory.prefetch.line_bytes *= 2;
             }},
            {"memory.prefetch.train_threshold",
             [](core::ProcessorConfig &c) {
                 ++c.memory.prefetch.train_threshold;
             }},
            {"memory.prefetch.degree",
             [](core::ProcessorConfig &c) {
                 ++c.memory.prefetch.degree;
             }},
            {"memory.prefetch.match_slack",
             [](core::ProcessorConfig &c) {
                 ++c.memory.prefetch.match_slack;
             }},
            {"snoop_rate",
             [](core::ProcessorConfig &c) { c.snoop_rate += 0.125; }},
            {"snoop_seed",
             [](core::ProcessorConfig &c) { ++c.snoop_seed; }},
            {"watchdog_cycles",
             [](core::ProcessorConfig &c) { ++c.watchdog_cycles; }},
        };
    return mutators;
}

TEST(CanonicalHash, EveryConfigFieldPerturbationFlipsKey)
{
    const workload::SuiteProfile suite = testSuite();
    const std::string base_key =
        chash::pointKey(core::srlConfig(), suite, 1000, 7).toHex();

    std::set<std::string> keys{base_key};
    for (const auto &[field, mutate] : configMutators()) {
        core::ProcessorConfig cfg = core::srlConfig();
        mutate(cfg);
        const std::string key =
            chash::pointKey(cfg, suite, 1000, 7).toHex();
        EXPECT_NE(key, base_key) << "perturbing config field '" << field
                                 << "' did not change the key";
        EXPECT_TRUE(keys.insert(key).second)
            << "config field '" << field
            << "' collided with another perturbation";
    }
}

using SuiteMutator = void (*)(workload::SuiteProfile &);

const std::vector<std::pair<const char *, SuiteMutator>> &
suiteMutators()
{
    static const std::vector<std::pair<const char *, SuiteMutator>>
        mutators = {
            {"name", [](workload::SuiteProfile &s) { s.name += "x"; }},
            {"load_frac",
             [](workload::SuiteProfile &s) { s.load_frac += 0.01; }},
            {"store_frac",
             [](workload::SuiteProfile &s) { s.store_frac += 0.01; }},
            {"branch_frac",
             [](workload::SuiteProfile &s) { s.branch_frac += 0.01; }},
            {"fp_frac",
             [](workload::SuiteProfile &s) { s.fp_frac += 0.01; }},
            {"mul_frac",
             [](workload::SuiteProfile &s) { s.mul_frac += 0.01; }},
            {"hot_lines",
             [](workload::SuiteProfile &s) { ++s.hot_lines; }},
            {"warm_lines",
             [](workload::SuiteProfile &s) { ++s.warm_lines; }},
            {"cold_lines",
             [](workload::SuiteProfile &s) { ++s.cold_lines; }},
            {"warm_frac",
             [](workload::SuiteProfile &s) { s.warm_frac += 0.01; }},
            {"cold_frac",
             [](workload::SuiteProfile &s) { s.cold_frac += 0.01; }},
            {"background_cold_frac",
             [](workload::SuiteProfile &s) {
                 s.background_cold_frac += 0.01;
             }},
            {"burst_period_uops",
             [](workload::SuiteProfile &s) { ++s.burst_period_uops; }},
            {"burst_len_uops",
             [](workload::SuiteProfile &s) { ++s.burst_len_uops; }},
            {"stream_frac",
             [](workload::SuiteProfile &s) { s.stream_frac += 0.01; }},
            {"stream_wrap_lines",
             [](workload::SuiteProfile &s) { ++s.stream_wrap_lines; }},
            {"chain_frac",
             [](workload::SuiteProfile &s) { s.chain_frac += 0.01; }},
            {"leaf_frac",
             [](workload::SuiteProfile &s) { s.leaf_frac += 0.01; }},
            {"num_strands",
             [](workload::SuiteProfile &s) { ++s.num_strands; }},
            {"strand_restart",
             [](workload::SuiteProfile &s) {
                 s.strand_restart += 0.01;
             }},
            {"store_chain_frac",
             [](workload::SuiteProfile &s) {
                 s.store_chain_frac += 0.01;
             }},
            {"store_leaf_frac",
             [](workload::SuiteProfile &s) {
                 s.store_leaf_frac += 0.01;
             }},
            {"pointer_chase_frac",
             [](workload::SuiteProfile &s) {
                 s.pointer_chase_frac += 0.01;
             }},
            {"fwd_pair_frac",
             [](workload::SuiteProfile &s) {
                 s.fwd_pair_frac += 0.01;
             }},
            {"fwd_distance",
             [](workload::SuiteProfile &s) { ++s.fwd_distance; }},
            {"hard_branch_frac",
             [](workload::SuiteProfile &s) {
                 s.hard_branch_frac += 0.01;
             }},
            {"easy_branch_bias",
             [](workload::SuiteProfile &s) {
                 s.easy_branch_bias += 0.01;
             }},
            {"static_uops",
             [](workload::SuiteProfile &s) { ++s.static_uops; }},
            {"seed", [](workload::SuiteProfile &s) { ++s.seed; }},
        };
    return mutators;
}

TEST(CanonicalHash, EverySuiteFieldPerturbationFlipsKey)
{
    const core::ProcessorConfig cfg = core::srlConfig();
    const std::string base_key =
        chash::pointKey(cfg, testSuite(), 1000, 7).toHex();

    std::set<std::string> keys{base_key};
    for (const auto &[field, mutate] : suiteMutators()) {
        workload::SuiteProfile suite = testSuite();
        mutate(suite);
        const std::string key =
            chash::pointKey(cfg, suite, 1000, 7).toHex();
        EXPECT_NE(key, base_key) << "perturbing suite field '" << field
                                 << "' did not change the key";
        EXPECT_TRUE(keys.insert(key).second)
            << "suite field '" << field
            << "' collided with another perturbation";
    }
}

TEST(CanonicalHash, PointParametersFlipKey)
{
    const core::ProcessorConfig cfg = core::srlConfig();
    const workload::SuiteProfile suite = testSuite();
    const auto base = chash::pointKey(cfg, suite, 1000, 7, true);
    EXPECT_NE(chash::pointKey(cfg, suite, 1001, 7, true), base);
    EXPECT_NE(chash::pointKey(cfg, suite, 1000, 8, true), base);
    EXPECT_NE(chash::pointKey(cfg, suite, 1000, 0, true), base);
    EXPECT_NE(chash::pointKey(cfg, suite, 1000, 7, false), base);
}

TEST(CanonicalHash, SamplingPlanFlipsKeyButZeroPlanPreservesIt)
{
    const core::ProcessorConfig cfg = core::srlConfig();
    const workload::SuiteProfile suite = testSuite();
    const auto plain = chash::pointKey(cfg, suite, 1000, 7, true);
    // An all-zero plan is exactly the plain key: pre-sampling cache
    // entries keep their addresses.
    EXPECT_EQ(chash::pointKey(cfg, suite, 1000, 7, true, 0, 0, 0, 0, 0),
              plain);
    // Every plan/shard field is part of the address.
    const auto sampled =
        chash::pointKey(cfg, suite, 1000, 7, true, 400, 100, 100, 0, 0);
    EXPECT_NE(sampled, plain);
    EXPECT_NE(chash::pointKey(cfg, suite, 1000, 7, true, 401, 100, 100,
                              0, 0),
              sampled);
    EXPECT_NE(chash::pointKey(cfg, suite, 1000, 7, true, 400, 101, 100,
                              0, 0),
              sampled);
    EXPECT_NE(chash::pointKey(cfg, suite, 1000, 7, true, 400, 100, 101,
                              0, 0),
              sampled);
    EXPECT_NE(chash::pointKey(cfg, suite, 1000, 7, true, 400, 100, 100,
                              1, 0),
              sampled);
    EXPECT_NE(chash::pointKey(cfg, suite, 1000, 7, true, 400, 100, 100,
                              0, 1),
              sampled);
}

TEST(CanonicalHash, ExecutionStrategyFlagsDoNotFlipKey)
{
    // skip_ahead and issue_scan are exact-equivalence execution
    // strategies (pinned by test_skip_ahead / test_ready_queue); they
    // must share cache entries with their counterparts.
    const workload::SuiteProfile suite = testSuite();
    core::ProcessorConfig cfg = core::srlConfig();
    const auto base = chash::pointKey(cfg, suite, 1000, 7);
    cfg.skip_ahead = !cfg.skip_ahead;
    EXPECT_EQ(chash::pointKey(cfg, suite, 1000, 7), base);
    cfg.issue_scan = !cfg.issue_scan;
    EXPECT_EQ(chash::pointKey(cfg, suite, 1000, 7), base);
}

// ---------------------------------------------------------------- json

TEST(ServiceJson, DumpParseDumpIsByteStable)
{
    json::Value v = json::Value::object();
    v.set("s", json::Value::str("with \"quotes\", \\slash\\ and \n"));
    v.set("n", json::Value::number(1.5));
    v.set("big", json::Value::number(1e20));
    v.set("neg", json::Value::number(-0.25));
    v.set("t", json::Value::boolean(true));
    v.set("z", json::Value::null());
    json::Value arr = json::Value::array();
    arr.push(json::Value::number(1));
    arr.push(json::Value::str("two"));
    json::Value inner = json::Value::object();
    inner.set("k", json::Value::str("v"));
    arr.push(std::move(inner));
    v.set("arr", std::move(arr));

    const std::string once = v.dump();
    const std::string twice = json::Value::parse(once).dump();
    EXPECT_EQ(once, twice);
}

TEST(ServiceJson, PreservesMemberOrder)
{
    const std::string text = "{\"z\":1,\"a\":2,\"m\":3}";
    EXPECT_EQ(json::Value::parse(text).dump(), text);
}

TEST(ServiceJson, EveryTruncationThrows)
{
    json::Value v = json::Value::object();
    v.set("key", json::Value::str("value with \\ and \" escapes"));
    v.set("num", json::Value::number(-12.5));
    json::Value arr = json::Value::array();
    arr.push(json::Value::boolean(false));
    arr.push(json::Value::null());
    v.set("arr", std::move(arr));
    const std::string line = v.dump();

    for (std::size_t len = 0; len < line.size(); ++len) {
        EXPECT_THROW(json::Value::parse(line.substr(0, len)),
                     json::ParseError)
            << "prefix of length " << len << " parsed";
    }
}

TEST(ServiceJson, RejectsMalformedInput)
{
    EXPECT_THROW(json::Value::parse("{\"a\":1} trailing"),
                 json::ParseError);
    EXPECT_THROW(json::Value::parse("{\"a\" 1}"), json::ParseError);
    EXPECT_THROW(json::Value::parse("{'a':1}"), json::ParseError);
    EXPECT_THROW(json::Value::parse("[1,]"), json::ParseError);
    EXPECT_THROW(json::Value::parse("{\"a\":01}"), json::ParseError);
    EXPECT_THROW(json::Value::parse("\"bad \\q escape\""),
                 json::ParseError);
    EXPECT_THROW(json::Value::parse("\"bad \\u00ZZ escape\""),
                 json::ParseError);
    EXPECT_THROW(json::Value::parse(std::string("\"raw\x01nul\"")),
                 json::ParseError);
    EXPECT_THROW(json::Value::parse("nul"), json::ParseError);
    EXPECT_THROW(json::Value::parse(""), json::ParseError);

    // Over-deep nesting must be rejected, not overflow the stack.
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_THROW(json::Value::parse(deep), json::ParseError);
}

TEST(ServiceJson, TypedAccessorsThrowOnKindMismatch)
{
    const json::Value v = json::Value::parse("{\"a\":1}");
    EXPECT_THROW(v.at("a").asString(), json::ParseError);
    EXPECT_THROW(v.at("missing"), json::ParseError);
    EXPECT_THROW(v.asNumber(), json::ParseError);
    EXPECT_EQ(v.at("a").asU64(), 1u);
    EXPECT_EQ(v.getU64("absent", 9), 9u);
}

// ------------------------------------------------------------ protocol

TEST(ServiceProtocol, PointSpecJsonRoundTrip)
{
    service::PointSpec spec;
    spec.name = "lcf-256-lab";
    spec.base = "srl";
    spec.suite = "SINT2K";
    spec.uops = 123456;
    spec.run_seed = 9129838320742759465ULL; // needs > 53 bits
    spec.occupancy_series = false;
    spec.srl_depth = 512;
    spec.lcf_entries = 256;
    spec.lcf_hash = "lab";
    spec.ff_uops = 880000;
    spec.warm_uops = 20000;
    spec.detail_uops = 100000;
    spec.shard_start = 3;
    spec.shard_count = 2;

    const std::string wire = spec.toJson().dump();
    const service::PointSpec back =
        service::PointSpec::fromJson(json::Value::parse(wire));
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.base, spec.base);
    EXPECT_EQ(back.suite, spec.suite);
    EXPECT_EQ(back.uops, spec.uops);
    EXPECT_EQ(back.run_seed, spec.run_seed);
    EXPECT_EQ(back.occupancy_series, spec.occupancy_series);
    EXPECT_EQ(back.srl_depth, spec.srl_depth);
    EXPECT_EQ(back.lcf_entries, spec.lcf_entries);
    EXPECT_EQ(back.lcf_hash, spec.lcf_hash);
    EXPECT_EQ(back.stq_entries, spec.stq_entries);
    EXPECT_EQ(back.ff_uops, spec.ff_uops);
    EXPECT_EQ(back.warm_uops, spec.warm_uops);
    EXPECT_EQ(back.detail_uops, spec.detail_uops);
    EXPECT_EQ(back.shard_start, spec.shard_start);
    EXPECT_EQ(back.shard_count, spec.shard_count);
    EXPECT_TRUE(back.sampled());

    // A plan-less spec's wire form carries no sampling keys at all
    // (old servers must keep parsing new clients' plain points).
    service::PointSpec plain;
    plain.name = "plain";
    plain.uops = 1000;
    const std::string plain_wire = plain.toJson().dump();
    EXPECT_EQ(plain_wire.find("ff_uops"), std::string::npos);
    EXPECT_EQ(plain_wire.find("shard"), std::string::npos);
    EXPECT_FALSE(plain.sampled());
}

TEST(ServiceProtocol, MaterializationMatchesNamedBuilders)
{
    service::PointSpec spec;
    spec.base = "baseline";
    EXPECT_EQ(chash::serializeConfig(spec.materializeConfig()),
              chash::serializeConfig(core::baselineConfig()));
    spec.base = "hierarchical";
    EXPECT_EQ(chash::serializeConfig(spec.materializeConfig()),
              chash::serializeConfig(core::hierarchicalConfig()));
    spec.base = "ideal";
    EXPECT_EQ(chash::serializeConfig(spec.materializeConfig()),
              chash::serializeConfig(core::idealConfig()));
    spec.base = "monolithic";
    spec.stq_entries = 256;
    EXPECT_EQ(chash::serializeConfig(spec.materializeConfig()),
              chash::serializeConfig(core::monolithicConfig(256)));

    service::PointSpec lcf;
    lcf.base = "srl";
    lcf.srl_depth = 512;
    lcf.lcf_entries = 256;
    lcf.lcf_hash = "lab";
    core::ProcessorConfig want = core::srlConfig();
    want.srl.srl.capacity = 512;
    want.srl.lcf.entries = 256;
    want.srl.lcf.hash = lsq::HashScheme::kLowerAddressBits;
    EXPECT_EQ(chash::serializeConfig(lcf.materializeConfig()),
              chash::serializeConfig(want));

    EXPECT_EQ(spec.materializeSuite().name, "SFP2K");
}

TEST(ServiceProtocol, MaterializationRejectsUnknownNames)
{
    service::PointSpec spec;
    spec.base = "quantum";
    EXPECT_THROW(spec.materializeConfig(), stats::ParseError);
    spec.base = "srl";
    spec.lcf_hash = "crc32";
    EXPECT_THROW(spec.materializeConfig(), stats::ParseError);
    spec.lcf_hash = "";
    spec.suite = "SPEC2077";
    EXPECT_THROW(spec.materializeSuite(), stats::ParseError);
}

TEST(ServiceProtocol, RequestLinesRoundTrip)
{
    const service::Request hello =
        service::parseRequest(service::helloLine("unit-test"));
    EXPECT_EQ(hello.op, "hello");
    EXPECT_EQ(hello.client, "unit-test");

    service::PointSpec spec;
    spec.name = "p0";
    spec.run_seed = 42;
    const service::Request submit =
        service::parseRequest(service::submitLine(17, spec));
    EXPECT_EQ(submit.op, "submit");
    EXPECT_EQ(submit.id, 17u);
    EXPECT_EQ(submit.point.name, "p0");
    EXPECT_EQ(submit.point.run_seed, 42u);

    EXPECT_EQ(service::parseRequest(service::statsLine()).op, "stats");
}

TEST(ServiceProtocol, RejectsForeignAndMalformedRequests)
{
    EXPECT_THROW(service::parseRequest("not json"), stats::ParseError);
    EXPECT_THROW(service::parseRequest("{\"op\":\"hello\"}"),
                 stats::ParseError);
    EXPECT_THROW(
        service::parseRequest(
            "{\"schema\":\"srlsim-service-v2\",\"op\":\"hello\"}"),
        stats::ParseError);
    EXPECT_THROW(
        service::parseRequest(
            "{\"schema\":\"srlsim-service-v1\",\"op\":\"reboot\"}"),
        stats::ParseError);
}

TEST(ServiceProtocol, ResultRecordSurvivesTheWire)
{
    stats::RunRecord rec = syntheticRecord("point-a", 2.5);
    const std::string line =
        service::resultLine(3, "deadbeef", true, false, rec);
    const json::Value msg = json::Value::parse(line);
    EXPECT_EQ(msg.getString("op"), "result");
    EXPECT_EQ(msg.getU64("id"), 3u);
    EXPECT_TRUE(msg.getBool("cached"));
    EXPECT_FALSE(msg.getBool("coalesced"));
    const stats::RunRecord back = service::decodeResultRecord(msg);
    EXPECT_EQ(service::encodeRecord(back), service::encodeRecord(rec));
}

// ---------------------------------------------------------- ResultCache

TEST(ResultCache, ColdMissThenWarmHit)
{
    TempDir dir;
    service::ResultCache cache({dir.path, 0});
    const chash::Hash128 key = chash::hashString("key-a");

    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return syntheticRecord("a", 1.0);
    };

    const auto cold = cache.getOrCompute(key, compute);
    EXPECT_EQ(cold.outcome, service::ResultCache::Outcome::kMiss);
    EXPECT_EQ(computes, 1);

    const auto warm = cache.getOrCompute(key, compute);
    EXPECT_EQ(warm.outcome, service::ResultCache::Outcome::kHit);
    EXPECT_EQ(computes, 1) << "warm hit recomputed";
    EXPECT_EQ(service::encodeRecord(warm.record),
              service::encodeRecord(cold.record));

    stats::RunRecord probed;
    EXPECT_TRUE(cache.lookup(key, probed));
    EXPECT_EQ(service::encodeRecord(probed),
              service::encodeRecord(cold.record));

    const auto c = cache.counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, 1u); // lookup() is a probe, not a counted hit
    EXPECT_EQ(c.stores, 1u);
    EXPECT_EQ(c.corrupt_entries, 0u);
}

TEST(ResultCache, TruncatedEntryIsRecomputedNotTrusted)
{
    TempDir dir;
    service::ResultCache cache({dir.path, 0});
    const chash::Hash128 key = chash::hashString("key-b");

    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return syntheticRecord("b", 2.0);
    };
    cache.getOrCompute(key, compute);

    // Truncate the stored entry at every prefix length that changes
    // behavior class: empty, mid-header, mid-record.
    std::ifstream in(cache.entryPath(key));
    std::string full((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ASSERT_FALSE(full.empty());

    for (const std::size_t len :
         {std::size_t{0}, full.size() / 4, full.size() / 2,
          full.size() - 2}) {
        std::ofstream out(cache.entryPath(key),
                          std::ios::binary | std::ios::trunc);
        out.write(full.data(),
                  static_cast<std::streamsize>(len));
        out.close();

        const int before = computes;
        const auto got = cache.getOrCompute(key, compute);
        EXPECT_EQ(got.outcome, service::ResultCache::Outcome::kMiss)
            << "truncation to " << len << " bytes served a hit";
        EXPECT_EQ(computes, before + 1);
        EXPECT_EQ(got.record.metric("value"), 2.0);
    }
    EXPECT_GE(cache.counters().corrupt_entries, 3u);

    // The recompute re-published a valid entry each time.
    const auto warm = cache.getOrCompute(key, compute);
    EXPECT_EQ(warm.outcome, service::ResultCache::Outcome::kHit);
}

TEST(ResultCache, EntryUnderWrongKeyIsRejected)
{
    TempDir dir;
    service::ResultCache cache({dir.path, 0});
    const chash::Hash128 key_a = chash::hashString("key-a");
    const chash::Hash128 key_b = chash::hashString("key-c");

    cache.getOrCompute(key_a,
                       [] { return syntheticRecord("a", 1.0); });

    // Copy a's entry file to b's name: the embedded key no longer
    // matches the file name, so it must not be served.
    std::ifstream in(cache.entryPath(key_a), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(cache.entryPath(key_b), std::ios::binary);
    out << bytes;
    out.close();

    const auto got = cache.getOrCompute(
        key_b, [] { return syntheticRecord("c", 3.0); });
    EXPECT_EQ(got.outcome, service::ResultCache::Outcome::kMiss);
    EXPECT_EQ(got.record.metric("value"), 3.0);
    EXPECT_GE(cache.counters().corrupt_entries, 1u);
}

TEST(ResultCache, FailedComputationIsDeliveredButNeverStored)
{
    TempDir dir;
    service::ResultCache cache({dir.path, 0});
    const chash::Hash128 key = chash::hashString("key-fail");

    const auto failing = [] {
        stats::RunRecord r;
        r.name = "broken";
        r.error = "simulated failure";
        return r;
    };
    const auto got = cache.getOrCompute(key, failing);
    EXPECT_EQ(got.outcome, service::ResultCache::Outcome::kMiss);
    EXPECT_TRUE(got.record.failed());
    EXPECT_EQ(cache.counters().stores, 0u);
    EXPECT_EQ(dir.fileCount(), 0u);

    // A throwing compute becomes an error record, not an exception.
    const auto thrown = cache.getOrCompute(key, []() -> stats::RunRecord {
        throw std::runtime_error("boom");
    });
    EXPECT_TRUE(thrown.record.failed());
    EXPECT_NE(thrown.record.error.find("boom"), std::string::npos);

    // And the key stays retryable: a later good compute is stored.
    const auto good = cache.getOrCompute(
        key, [] { return syntheticRecord("fixed", 4.0); });
    EXPECT_EQ(good.outcome, service::ResultCache::Outcome::kMiss);
    EXPECT_FALSE(good.record.failed());
    EXPECT_EQ(cache.getOrCompute(key, failing).outcome,
              service::ResultCache::Outcome::kHit);
}

TEST(ResultCache, ConcurrentSameKeyRunsExactlyOneComputation)
{
    TempDir dir;
    service::ResultCache cache({dir.path, 0});
    const chash::Hash128 key = chash::hashString("key-coalesce");

    std::atomic<int> computes{0};
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;

    const auto slow_compute = [&] {
        ++computes;
        std::unique_lock<std::mutex> lock(m);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
        return syntheticRecord("co", 5.0);
    };

    service::ResultCache::GetResult r1, r2;
    std::thread t1([&] { r1 = cache.getOrCompute(key, slow_compute); });
    {
        // Only release the first compute once the second requester is
        // provably inside getOrCompute: it blocks on the shared
        // future, so "thread started + compute entered" is the best
        // observable; give it a moment to reach the wait.
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return entered; });
    }
    std::thread t2([&] { r2 = cache.getOrCompute(key, slow_compute); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
        std::unique_lock<std::mutex> lock(m);
        release = true;
        cv.notify_all();
    }
    t1.join();
    t2.join();

    EXPECT_EQ(computes.load(), 1)
        << "second requester ran its own simulation";
    EXPECT_EQ(r1.outcome, service::ResultCache::Outcome::kMiss);
    EXPECT_EQ(r2.outcome, service::ResultCache::Outcome::kCoalesced);
    EXPECT_EQ(service::encodeRecord(r1.record),
              service::encodeRecord(r2.record));

    const auto c = cache.counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.coalesced, 1u);
}

TEST(ResultCache, EvictsOldestOverCap)
{
    TempDir dir;
    service::ResultCache cache({dir.path, 2});
    for (int i = 0; i < 3; ++i) {
        cache.getOrCompute(
            chash::hashString("evict-" + std::to_string(i)),
            [i] { return syntheticRecord("e", i); });
    }
    EXPECT_EQ(cache.counters().evictions, 1u);
    EXPECT_EQ(dir.fileCount(), 2u);
}

TEST(ResultCache, DirlessCacheOnlyCoalesces)
{
    service::ResultCache cache({"", 0});
    const chash::Hash128 key = chash::hashString("no-disk");
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return syntheticRecord("nd", 1.0);
    };
    EXPECT_EQ(cache.getOrCompute(key, compute).outcome,
              service::ResultCache::Outcome::kMiss);
    EXPECT_EQ(cache.getOrCompute(key, compute).outcome,
              service::ResultCache::Outcome::kMiss);
    EXPECT_EQ(computes, 2);
}

// -------------------------------------------------------- runSweepCached

TEST(SweepCache, ByteIdenticalToDirectRunSweepColdAndWarm)
{
    const workload::SuiteProfile suite = testSuite();
    std::vector<runner::SweepPoint> points = {
        {"baseline", core::baselineConfig(), suite, kTinyUops},
        {"srl", core::srlConfig(), suite, kTinyUops},
        {"ideal-stq", core::idealConfig(), suite, kTinyUops},
    };
    runner::SweepOptions opts;
    opts.jobs = 2;
    opts.seed = 42;

    const std::string direct =
        runner::runSweep(points, opts).toJson();

    TempDir dir;
    service::ResultCache cache({dir.path, 0});
    const std::string cold =
        service::runSweepCached(points, opts, cache).toJson();
    EXPECT_EQ(cold, direct);
    EXPECT_EQ(cache.counters().misses, points.size());

    const std::string warm =
        service::runSweepCached(points, opts, cache).toJson();
    EXPECT_EQ(warm, direct);
    EXPECT_EQ(cache.counters().misses, points.size())
        << "warm rerun simulated";
    EXPECT_EQ(cache.counters().hits, points.size());
}

TEST(SweepCache, CanonicalSpecsReproduceSweepToolPoints)
{
    // The spec list must materialize to the same content addresses the
    // local runner computes, or server-side execution would never hit
    // the entries a local --cache-dir run stored.
    const auto specs =
        service::canonicalSweepSpecs("SFP2K", kTinyUops, 42);
    ASSERT_EQ(specs.size(), 11u);
    const auto points = service::materializePoints(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(specs[i].run_seed, runner::deriveRunSeed(42, i));
        EXPECT_EQ(points[i].name, specs[i].name);
        EXPECT_EQ(
            chash::pointKey(points[i].config, points[i].suite,
                            points[i].uops, specs[i].run_seed),
            chash::pointKey(specs[i].materializeConfig(),
                            specs[i].materializeSuite(), specs[i].uops,
                            specs[i].run_seed));
    }
    // Canonical names, in sweep order.
    EXPECT_EQ(points.front().name, "baseline");
    EXPECT_EQ(points[1].name, "srl-depth-128");
    EXPECT_EQ(points[5].name, "lcf-256-lab");
    EXPECT_EQ(points.back().name, "ideal-stq");
}

// ------------------------------------------------------------- service

service::PointSpec
tinySpec(const std::string &name, std::uint64_t seed)
{
    service::PointSpec spec;
    spec.name = name;
    spec.base = "baseline";
    spec.uops = kTinyUops;
    spec.run_seed = seed;
    return spec;
}

TEST(SweepService, CompletesWorkFromMultipleClients)
{
    TempDir dir;
    service::ResultCache cache({dir.path, 0});
    service::ServiceOptions opts;
    opts.jobs = 2;
    service::SweepService svc(cache, opts);

    std::mutex m;
    std::condition_variable cv;
    std::vector<std::string> done_names;
    const auto on_done = [&](const stats::RunRecord &rec,
                             const chash::Hash128 &,
                             service::ResultCache::Outcome) {
        std::lock_guard<std::mutex> lock(m);
        EXPECT_FALSE(rec.failed()) << rec.error;
        done_names.push_back(rec.name);
        cv.notify_all();
    };

    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(svc.submit(1, tinySpec("c1-" + std::to_string(i), i + 1),
                             on_done),
                  service::SweepService::Admit::kAccepted);
        EXPECT_EQ(svc.submit(2, tinySpec("c2-" + std::to_string(i), i + 1),
                             on_done),
                  service::SweepService::Admit::kAccepted);
    }
    {
        std::unique_lock<std::mutex> lock(m);
        ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60), [&] {
            return done_names.size() == 4;
        }));
    }
    svc.drain();

    // c1-0 and c2-0 are the same design point (same seed, same base):
    // one simulated, one served from cache/coalescing.
    EXPECT_EQ(cache.counters().misses, 2u);
    EXPECT_EQ(cache.counters().hits + cache.counters().coalesced, 2u);

    const stats::StatsReport rep = svc.statsReport();
    ASSERT_EQ(rep.runs.size(), 2u);
    EXPECT_EQ(rep.runs[0].metric("submitted"), 4);
    EXPECT_EQ(rep.runs[0].metric("completed"), 4);
    EXPECT_EQ(rep.runs[0].metric("failed"), 0);
}

TEST(SweepService, RejectsOverflowWithBusyAndRefusesWhileDraining)
{
    TempDir dir;
    service::ResultCache cache({dir.path, 0});
    service::ServiceOptions opts;
    opts.jobs = 1;
    opts.queue_depth = 1;
    service::SweepService svc(cache, opts);

    std::atomic<int> completions{0};
    const auto on_done = [&](const stats::RunRecord &,
                             const chash::Hash128 &,
                             service::ResultCache::Outcome) {
        ++completions;
    };

    // Distinct seeds so nothing coalesces: one active + one queued
    // fill the service; the third submission must bounce.
    service::PointSpec slow = tinySpec("slow", 1);
    slow.uops = 30000;
    ASSERT_EQ(svc.submit(1, slow, on_done),
              service::SweepService::Admit::kAccepted);
    service::PointSpec second = tinySpec("second", 2);
    second.uops = 30000;
    ASSERT_EQ(svc.submit(1, second, on_done),
              service::SweepService::Admit::kAccepted);
    EXPECT_EQ(svc.submit(1, tinySpec("third", 3), on_done),
              service::SweepService::Admit::kBusy);

    svc.drain();
    EXPECT_EQ(completions.load(), 2);
    EXPECT_EQ(svc.submit(1, tinySpec("late", 4), on_done),
              service::SweepService::Admit::kDraining);

    const stats::StatsReport rep = svc.statsReport();
    EXPECT_EQ(rep.runs[0].metric("rejected_busy"), 1);
    EXPECT_EQ(rep.runs[0].metric("rejected_draining"), 1);
}

TEST(SweepService, InvalidSpecYieldsErrorRecordNotCrash)
{
    service::ResultCache cache({"", 0});
    service::ServiceOptions opts;
    opts.jobs = 1;
    service::SweepService svc(cache, opts);

    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    stats::RunRecord result;
    ASSERT_EQ(svc.submit(
                  1,
                  [] {
                      service::PointSpec bad;
                      bad.name = "bad";
                      bad.base = "nonexistent";
                      return bad;
                  }(),
                  [&](const stats::RunRecord &rec,
                      const chash::Hash128 &,
                      service::ResultCache::Outcome) {
                      std::lock_guard<std::mutex> lock(m);
                      result = rec;
                      done = true;
                      cv.notify_all();
                  }),
              service::SweepService::Admit::kAccepted);
    {
        std::unique_lock<std::mutex> lock(m);
        ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                                [&] { return done; }));
    }
    EXPECT_TRUE(result.failed());
    EXPECT_NE(result.error.find("unknown base"), std::string::npos);
    EXPECT_EQ(result.name, "bad");
}

// --------------------------------------------------------- server/client

TEST(ServiceEndToEnd, SocketSweepIsByteIdenticalAndCachesOnResubmit)
{
    TempDir dir;
    TempDir sock_dir;
    const std::string sock = sock_dir.path + "/daemon.sock";

    service::ResultCache cache({dir.path, 0});
    service::ServiceOptions svc_opts;
    svc_opts.jobs = 2;
    service::SweepService svc(cache, svc_opts);
    service::Server server(svc, {sock});
    ASSERT_TRUE(server.start());
    std::thread server_thread([&] { server.run(); });

    // A 4-point slice of the canonical sweep, tiny uops.
    auto specs = service::canonicalSweepSpecs("SFP2K", kTinyUops, 42);
    specs.resize(4);
    const auto points = service::materializePoints(specs);
    runner::SweepOptions opts;
    opts.jobs = 1;
    opts.seed = 42;
    const std::string direct = runner::runSweep(points, opts).toJson();

    service::Client client;
    ASSERT_TRUE(client.connect(sock));
    const std::string served1 = client.runSweep(specs, 42).toJson();
    EXPECT_EQ(served1, direct);
    EXPECT_EQ(client.lastComputedResults(), specs.size());

    const std::string served2 = client.runSweep(specs, 42).toJson();
    EXPECT_EQ(served2, direct);
    EXPECT_EQ(client.lastCachedResults(), specs.size());
    EXPECT_EQ(client.lastComputedResults(), 0u);

    const stats::StatsReport remote_stats = client.fetchStats();
    ASSERT_EQ(remote_stats.runs.size(), 2u);
    EXPECT_GE(remote_stats.runs[1].metric("hits"), 4);
    EXPECT_EQ(remote_stats.runs[1].metric("misses"), 4);

    client.close();
    server.requestStop();
    server_thread.join();
}

TEST(ServiceEndToEnd, TwoClientsShareOneCache)
{
    TempDir dir;
    TempDir sock_dir;
    const std::string sock = sock_dir.path + "/daemon.sock";

    service::ResultCache cache({dir.path, 0});
    service::ServiceOptions svc_opts;
    svc_opts.jobs = 2;
    service::SweepService svc(cache, svc_opts);
    service::Server server(svc, {sock});
    ASSERT_TRUE(server.start());
    std::thread server_thread([&] { server.run(); });

    auto specs = service::canonicalSweepSpecs("SFP2K", kTinyUops, 7);
    specs.resize(3);

    service::Client first;
    ASSERT_TRUE(first.connect(sock));
    const std::string rep1 = first.runSweep(specs, 7).toJson();
    first.close();

    service::Client second;
    ASSERT_TRUE(second.connect(sock));
    const std::string rep2 = second.runSweep(specs, 7).toJson();
    second.close();

    EXPECT_EQ(rep1, rep2);
    EXPECT_EQ(second.lastCachedResults(), specs.size());
    EXPECT_EQ(cache.counters().misses, specs.size());

    server.requestStop();
    server_thread.join();
}

// ----------------------------------------------- stats parser hardening

TEST(StatsParserHardening, EveryTruncationOfAValidReportThrows)
{
    const workload::SuiteProfile suite = testSuite();
    runner::SweepOptions opts;
    opts.jobs = 1;
    opts.seed = 3;
    stats::StatsReport rep = runner::runSweep(
        {{"one", core::baselineConfig(), suite, kTinyUops}}, opts);
    rep.meta["suite"] = suite.name;

    std::string doc = rep.toJson();
    // Strip trailing whitespace: a prefix that only drops trailing
    // newlines is still a complete document and parses fine.
    while (!doc.empty() &&
           (doc.back() == '\n' || doc.back() == ' '))
        doc.pop_back();

    for (std::size_t len = 0; len < doc.size(); ++len) {
        EXPECT_THROW(stats::StatsReport::fromJson(doc.substr(0, len)),
                     stats::ParseError)
            << "prefix of length " << len << "/" << doc.size()
            << " parsed as a complete report";
    }
}

TEST(StatsParserHardening, SingleByteCorruptionNeverCrashes)
{
    stats::StatsReport rep;
    rep.meta["seed"] = "42";
    stats::RunRecord run = syntheticRecord("r", 1.5);
    rep.runs.push_back(run);
    const std::string doc = rep.toJson();

    // Flip every byte through a handful of hostile replacements. The
    // parser may accept semantically harmless flips (digit for digit);
    // the guarantee under test is: ParseError or success, never a
    // crash or a foreign exception.
    for (std::size_t pos = 0; pos < doc.size(); ++pos) {
        for (const char evil : {'\x01', '"', '}', '\\'}) {
            std::string mutated = doc;
            mutated[pos] = evil;
            try {
                (void)stats::StatsReport::fromJson(mutated);
            } catch (const stats::ParseError &) {
                // expected for most mutations
            }
        }
    }
    SUCCEED();
}

TEST(StatsParserHardening, RejectsBadEscapesAndRawControlChars)
{
    stats::StatsReport rep;
    rep.meta["k"] = "vv";
    const std::string doc = rep.toJson();
    const std::size_t at = doc.find("vv");
    ASSERT_NE(at, std::string::npos);

    std::string raw_ctl = doc;
    raw_ctl.replace(at, 2, std::string("v\x01"));
    EXPECT_THROW(stats::StatsReport::fromJson(raw_ctl),
                 stats::ParseError);

    std::string bad_escape = doc;
    bad_escape.replace(at, 2, "\\q");
    EXPECT_THROW(stats::StatsReport::fromJson(bad_escape),
                 stats::ParseError);

    std::string bad_unicode = doc;
    bad_unicode.replace(at, 2, "\\uZZ11");
    EXPECT_THROW(stats::StatsReport::fromJson(bad_unicode),
                 stats::ParseError);

    std::string truncated_unicode = doc;
    truncated_unicode.replace(at, 2, "\\u0");
    EXPECT_THROW(stats::StatsReport::fromJson(truncated_unicode),
                 stats::ParseError);
}

} // namespace
