/**
 * @file
 * Unit tests for the Store Redo Log: FIFO order, dependent-slot
 * reservation and indexed fill, head-drain gating, squash with ring
 * rewind, slot-indexed (no-search) access, and re-anchoring after the
 * log empties.
 */

#include <gtest/gtest.h>

#include "lsq/srl.hh"
#include "lsq/store_id.hh"

namespace
{

using namespace srl;
using namespace srl::lsq;

struct SrlFixture : ::testing::Test
{
    StoreRedoLog log{SrlParams{8}};
    StoreIdAllocator ids{8};
};

TEST_F(SrlFixture, IndependentPushAndDrain)
{
    const StoreId a = ids.allocate();
    const StoreId b = ids.allocate();
    log.pushIndependent(10, a, 0, 0x100, 8, 0xaa);
    log.pushIndependent(11, b, 0, 0x108, 8, 0xbb);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_TRUE(log.headReady());
    const SrlEntry e = log.popHead();
    EXPECT_EQ(e.seq, 10u);
    EXPECT_EQ(e.data, 0xaau);
    EXPECT_EQ(log.head().seq, 11u);
}

TEST_F(SrlFixture, DependentReservationBlocksHead)
{
    const StoreId a = ids.allocate();
    log.pushDependent(10, a, 0);
    EXPECT_FALSE(log.headReady());
    log.fillDependent(a, 0x200, 8, 0x77);
    EXPECT_TRUE(log.headReady());
    const SrlEntry e = log.popHead();
    EXPECT_TRUE(e.dependent);
    EXPECT_EQ(e.data, 0x77u);
}

TEST_F(SrlFixture, FifoOrderAcrossMixedEntries)
{
    const StoreId a = ids.allocate();
    const StoreId b = ids.allocate();
    const StoreId c = ids.allocate();
    log.pushIndependent(1, a, 0, 0x100, 8, 1);
    log.pushDependent(2, b, 0);
    log.pushIndependent(3, c, 0, 0x110, 8, 3);
    // Independent store 3 is ready but cannot pass the unfilled
    // reservation: drains are strictly in order.
    log.popHead();
    EXPECT_FALSE(log.headReady());
    log.fillDependent(b, 0x108, 8, 2);
    EXPECT_EQ(log.popHead().seq, 2u);
    EXPECT_EQ(log.popHead().seq, 3u);
}

TEST_F(SrlFixture, PeekSlotIsIndexedNotSearched)
{
    const StoreId a = ids.allocate();
    const StoreId b = ids.allocate();
    log.pushIndependent(1, a, 0, 0x100, 8, 1);
    log.pushIndependent(2, b, 0, 0x108, 8, 2);
    const SrlEntry *e = log.peekSlot(b.index);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->seq, 2u);
    EXPECT_EQ(log.peekSlot(5), nullptr); // dead slot
    log.popHead();
    EXPECT_EQ(log.peekSlot(a.index), nullptr); // drained slot is dead
}

TEST_F(SrlFixture, SquashReturnsYoungestFirst)
{
    const StoreId a = ids.allocate();
    const StoreId b = ids.allocate();
    const StoreId c = ids.allocate();
    log.pushIndependent(1, a, 0, 0x100, 8, 1);
    log.pushIndependent(2, b, 0, 0x108, 8, 2);
    log.pushIndependent(3, c, 0, 0x110, 8, 3);
    const auto removed = log.squashAfter(1);
    ASSERT_EQ(removed.size(), 2u);
    EXPECT_EQ(removed[0].seq, 3u);
    EXPECT_EQ(removed[1].seq, 2u);
    EXPECT_EQ(log.size(), 1u);

    // After a matching allocator rewind, the ring accepts the ids
    // again in order.
    ids.rewind(removed[1].id);
    const StoreId b2 = ids.allocate();
    log.pushIndependent(20, b2, 0, 0x120, 8, 20);
    EXPECT_EQ(log.size(), 2u);
}

TEST_F(SrlFixture, ReanchorsAfterEmpty)
{
    const StoreId a = ids.allocate();
    log.pushIndependent(1, a, 0, 0x100, 8, 1);
    log.popHead();
    EXPECT_TRUE(log.empty());
    // Ids advanced while the SRL was bypassed (no miss): the next push
    // may arrive with a non-contiguous id and re-anchors the ring.
    ids.allocate();
    ids.allocate();
    const StoreId d = ids.allocate();
    log.pushIndependent(9, d, 0, 0x140, 8, 9);
    EXPECT_EQ(log.head().seq, 9u);
    EXPECT_EQ(log.peekSlot(d.index)->seq, 9u);
}

TEST_F(SrlFixture, FullAtCapacity)
{
    for (unsigned i = 0; i < 8; ++i)
        log.pushIndependent(i, ids.allocate(), 0, 0x100 + 8 * i, 8, i);
    EXPECT_TRUE(log.full());
    log.popHead();
    EXPECT_FALSE(log.full());
}

TEST_F(SrlFixture, ForEachVisitsInOrder)
{
    for (unsigned i = 0; i < 4; ++i)
        log.pushIndependent(i, ids.allocate(), 0, 0x100 + 8 * i, 8, i);
    log.popHead();
    std::vector<SeqNum> seqs;
    log.forEach([&](const SrlEntry &e) { seqs.push_back(e.seq); });
    EXPECT_EQ(seqs, (std::vector<SeqNum>{1, 2, 3}));
}

TEST_F(SrlFixture, WrapAroundRing)
{
    // Fill, drain, and refill across the ring boundary.
    for (unsigned i = 0; i < 8; ++i)
        log.pushIndependent(i, ids.allocate(), 0, 0x100 + 8 * i, 8, i);
    for (unsigned i = 0; i < 6; ++i)
        log.popHead();
    for (unsigned i = 8; i < 12; ++i)
        log.pushIndependent(i, ids.allocate(), 0, 0x100 + 8 * i, 8, i);
    EXPECT_EQ(log.size(), 6u);
    std::vector<SeqNum> seqs;
    log.forEach([&](const SrlEntry &e) { seqs.push_back(e.seq); });
    EXPECT_EQ(seqs, (std::vector<SeqNum>{6, 7, 8, 9, 10, 11}));
}

} // namespace
