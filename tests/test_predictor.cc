/**
 * @file
 * Unit tests for the predictors: gshare, perceptron, the hybrid
 * chooser, and the store-sets memory dependence predictor.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictor/branch.hh"
#include "predictor/store_sets.hh"

namespace
{

using namespace srl;
using namespace srl::predictor;

double
trainAndMeasure(BranchPredictor &bp, unsigned iters,
                bool (*pattern)(unsigned))
{
    const Addr pc = 0x400100;
    unsigned wrong = 0;
    for (unsigned i = 0; i < iters; ++i) {
        const bool taken = pattern(i);
        if (bp.predict(pc) != taken && i > iters / 4)
            ++wrong;
        bp.update(pc, taken);
    }
    return static_cast<double>(wrong) / (iters * 3 / 4);
}

TEST(Gshare, LearnsAlwaysTaken)
{
    GsharePredictor g;
    EXPECT_LT(trainAndMeasure(g, 1000, [](unsigned) { return true; }),
              0.02);
}

TEST(Gshare, LearnsAlternatingViaHistory)
{
    GsharePredictor g;
    EXPECT_LT(trainAndMeasure(
                  g, 2000, [](unsigned i) { return (i & 1) == 0; }),
              0.05);
}

TEST(Perceptron, LearnsBiasedBranch)
{
    PerceptronPredictor p;
    EXPECT_LT(trainAndMeasure(p, 1000, [](unsigned) { return false; }),
              0.02);
}

TEST(Perceptron, LearnsPeriodicPattern)
{
    PerceptronPredictor p;
    EXPECT_LT(trainAndMeasure(
                  p, 4000, [](unsigned i) { return (i % 4) == 0; }),
              0.10);
}

TEST(Hybrid, TracksComponents)
{
    HybridPredictor h;
    EXPECT_LT(trainAndMeasure(
                  h, 4000, [](unsigned i) { return (i & 1) == 0; }),
              0.05);
    EXPECT_GT(h.lookups.value(), 0u);
}

TEST(Hybrid, RandomBranchMispredictsHalf)
{
    HybridPredictor h;
    Random rng(3);
    const Addr pc = 0x400200;
    unsigned wrong = 0;
    const unsigned n = 4000;
    for (unsigned i = 0; i < n; ++i) {
        const bool taken = rng.chance(0.5);
        if (h.predict(pc) != taken)
            ++wrong;
        h.update(pc, taken);
    }
    const double rate = static_cast<double>(wrong) / n;
    EXPECT_GT(rate, 0.35);
    EXPECT_LT(rate, 0.65);
}

// ------------------------------------------------------------ store sets

TEST(StoreSets, NoPredictionUntilTrained)
{
    StoreSets ss({});
    EXPECT_EQ(ss.predict(0x400000), kInvalidSeqNum);
}

TEST(StoreSets, PredictsAfterViolationTraining)
{
    StoreSets ss({});
    const Addr load_pc = 0x400000, store_pc = 0x400100;

    ss.trainViolation(load_pc, store_pc);
    // The store at store_pc is fetched: its set's LFST entry points at
    // it; the load then predicts dependence on that dynamic store.
    ss.storeFetched(store_pc, 77);
    EXPECT_EQ(ss.predict(load_pc), 77u);
}

TEST(StoreSets, RetireClearsLastFetched)
{
    StoreSets ss({});
    ss.trainViolation(0x400000, 0x400100);
    ss.storeFetched(0x400100, 77);
    ss.storeRetired(77);
    EXPECT_EQ(ss.predict(0x400000), kInvalidSeqNum);
}

TEST(StoreSets, LaterFetchSupersedes)
{
    StoreSets ss({});
    ss.trainViolation(0x400000, 0x400100);
    ss.storeFetched(0x400100, 77);
    ss.storeFetched(0x400100, 99);
    EXPECT_EQ(ss.predict(0x400000), 99u);
}

TEST(StoreSets, MergingKeepsBothStoresInOneSet)
{
    StoreSets ss({});
    // Load conflicts with two different stores: sets merge, and the
    // load follows whichever store of the merged set was fetched last.
    ss.trainViolation(0x400000, 0x400100);
    ss.trainViolation(0x400000, 0x400200);
    ss.storeFetched(0x400100, 11);
    EXPECT_EQ(ss.predict(0x400000), 11u);
    ss.storeFetched(0x400200, 22);
    EXPECT_EQ(ss.predict(0x400000), 22u);
}

TEST(StoreSets, UnrelatedPcsUnaffected)
{
    StoreSets ss({});
    ss.trainViolation(0x400000, 0x400100);
    ss.storeFetched(0x400100, 5);
    EXPECT_EQ(ss.predict(0x400004), kInvalidSeqNum);
}

TEST(StoreSets, PeriodicClearForgets)
{
    StoreSetsParams p;
    p.clear_interval = 8;
    StoreSets ss(p);
    ss.trainViolation(0x400000, 0x400100);
    ss.storeFetched(0x400100, 5);
    // Push enough accesses to trip the periodic clear.
    for (int i = 0; i < 16; ++i)
        ss.predict(0x400800);
    EXPECT_EQ(ss.predict(0x400000), kInvalidSeqNum);
}

} // namespace
