/**
 * @file
 * Unit tests for the counting Bloom filter, the Loose Check Filter
 * (counter conservation, saturation, indexed-forwarding index
 * tracking, both hash schemes), and the forwarding cache (program-
 * order-aware byte merging, age discipline, drain neutralization,
 * eviction behavior).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "lsq/counting_bloom.hh"
#include "lsq/fwd_cache.hh"
#include "lsq/lcf.hh"
#include "lsq/store_id.hh"

namespace
{

using namespace srl;
using namespace srl::lsq;

// ------------------------------------------------------- CountingBloom

TEST(CountingBloom, ZeroMeansDefinitelyAbsent)
{
    CountingBloom b(256, 6, HashScheme::kThreePieceXor);
    EXPECT_FALSE(b.mayContain(0x1234));
    b.increment(0x1234);
    EXPECT_TRUE(b.mayContain(0x1234));
    b.decrement(0x1234);
    EXPECT_FALSE(b.mayContain(0x1234));
}

TEST(CountingBloom, CounterConservationUnderChurn)
{
    CountingBloom b(128, 6, HashScheme::kLowerAddressBits);
    Random rng(5);
    std::vector<Addr> live;
    for (int i = 0; i < 2000; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            const Addr a = rng.below(4096) * 8;
            if (b.increment(a))
                live.push_back(a);
        } else {
            const auto idx = rng.below(live.size());
            b.decrement(live[idx]);
            live.erase(live.begin() + idx);
        }
    }
    // Drain everything: all counters must return to zero.
    for (const Addr a : live)
        b.decrement(a);
    for (Addr a = 0; a < 4096; ++a)
        EXPECT_FALSE(b.mayContain(a * 8));
}

TEST(CountingBloom, SaturationRefusesIncrement)
{
    CountingBloom b(16, 2, HashScheme::kLowerAddressBits); // max 3
    const Addr a = 0x40;
    EXPECT_TRUE(b.increment(a));
    EXPECT_TRUE(b.increment(a));
    EXPECT_TRUE(b.increment(a));
    EXPECT_FALSE(b.increment(a));
    EXPECT_EQ(b.overflows.value(), 1u);
    EXPECT_EQ(b.count(a), 3u);
}

TEST(CountingBloom, WordGranularity)
{
    CountingBloom b(256, 6, HashScheme::kLowerAddressBits);
    b.increment(0x100);
    // Any byte within the same naturally-aligned word aliases.
    EXPECT_TRUE(b.mayContain(0x107));
    EXPECT_FALSE(b.mayContain(0x108));
}

TEST(CountingBloom, HashSchemesDifferOnHighBits)
{
    CountingBloom lab(256, 6, HashScheme::kLowerAddressBits);
    CountingBloom pax(256, 6, HashScheme::kThreePieceXor);
    // Two addresses differing only above the LAB field: LAB aliases,
    // 3-PAX separates.
    const Addr a = 0x100;
    const Addr b2 = a + (1ull << (3 + 9));
    EXPECT_EQ(lab.index(a), lab.index(b2));
    EXPECT_NE(pax.index(a), pax.index(b2));
}

// ------------------------------------------------------------ LCF

TEST(Lcf, TracksLastSrlIndex)
{
    LooseCheckFilter lcf({256, 6, HashScheme::kThreePieceXor});
    EXPECT_TRUE(lcf.storeInserted(0x100, 7));
    EXPECT_TRUE(lcf.mayMatch(0x100));
    EXPECT_EQ(lcf.lastSrlIndex(0x100), 7u);
    EXPECT_TRUE(lcf.storeInserted(0x100, 12));
    EXPECT_EQ(lcf.lastSrlIndex(0x100), 12u);
    lcf.storeRemoved(0x100);
    lcf.storeRemoved(0x100);
    EXPECT_FALSE(lcf.mayMatch(0x100));
}

TEST(Lcf, SaturationStallsInsertion)
{
    LooseCheckFilter lcf({16, 1, HashScheme::kLowerAddressBits});
    EXPECT_TRUE(lcf.storeInserted(0x10, 0));
    EXPECT_FALSE(lcf.storeInserted(0x10, 1)); // 1-bit counter full
}

TEST(Lcf, ClearResets)
{
    LooseCheckFilter lcf({64, 6, HashScheme::kLowerAddressBits});
    lcf.storeInserted(0x8, 3);
    lcf.clear();
    EXPECT_FALSE(lcf.mayMatch(0x8));
    EXPECT_EQ(lcf.lastSrlIndex(0x8), LooseCheckFilter::kNoIndex);
}

// ------------------------------------------------------------ FwdCache

StoreId
sid(std::uint64_t abs)
{
    // Ring of 1024 for tests; abs starts at 1.
    return StoreId{static_cast<std::uint32_t>((abs - 1) % 1024),
                   ((abs - 1) / 1024) % 2 != 0, abs};
}

TEST(FwdCache, BasicStoreLoad)
{
    ForwardingCache fc({64, 4});
    fc.storeUpdate(0x100, 8, 0x1122334455667788ull, sid(1));
    const auto hit = fc.load(0x100, 8);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data, 0x1122334455667788ull);
    EXPECT_EQ(hit->store_id.abs, 1u);
    // Subset load.
    const auto sub = fc.load(0x104, 4);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->data, 0x11223344u);
}

TEST(FwdCache, MissOnUncoveredBytes)
{
    ForwardingCache fc({64, 4});
    fc.storeUpdate(0x100, 4, 0xaabbccdd, sid(1));
    EXPECT_FALSE(fc.load(0x100, 8).has_value()); // upper half invalid
    EXPECT_TRUE(fc.load(0x100, 4).has_value());
    EXPECT_FALSE(fc.load(0x200, 8).has_value());
}

TEST(FwdCache, YoungerStoreOverwrites)
{
    ForwardingCache fc({64, 4});
    fc.storeUpdate(0x100, 8, 0x1111111111111111ull, sid(1));
    fc.storeUpdate(0x100, 4, 0x22222222, sid(2));
    const auto hit = fc.load(0x100, 8);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data, 0x1111111122222222ull);
    EXPECT_EQ(hit->store_id.abs, 2u); // age representative updated
}

TEST(FwdCacheDeathTest, OutOfOrderUpdateViolatesContract)
{
    // Stores update the FC as they leave the L1 STQ head — strictly in
    // program order. A property test showed that accepting out-of-
    // order updates silently serves stale bytes, so the contract is
    // enforced.
    ForwardingCache fc({64, 4});
    fc.storeUpdate(0x100, 4, 0x22222222, sid(5));
    EXPECT_DEATH(fc.storeUpdate(0x100, 8, 0x1, sid(2)),
                 "out of program order");
}

TEST(FwdCache, DrainNeutralizesAgeTag)
{
    ForwardingCache fc({64, 4});
    fc.storeUpdate(0x100, 8, 0xabc, sid(3));
    fc.storeDrained(0x100, 8, 0xabc, sid(3));
    const auto hit = fc.load(0x100, 8);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(isNullStoreId(hit->store_id)); // mirrors cache state
    // A subsequent live store becomes the new representative.
    fc.storeUpdate(0x100, 8, 0xdef, sid(9));
    EXPECT_EQ(fc.load(0x100, 8)->store_id.abs, 9u);
}

TEST(FwdCache, DrainOfSupersededStoreLeavesEntry)
{
    ForwardingCache fc({64, 4});
    fc.storeUpdate(0x100, 8, 0x1, sid(3));
    fc.storeUpdate(0x100, 8, 0x2, sid(7)); // younger owns the word
    fc.storeDrained(0x100, 8, 0x1, sid(3)); // older drains
    const auto hit = fc.load(0x100, 8);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->data, 0x2u);
    EXPECT_EQ(hit->store_id.abs, 7u);
}

TEST(FwdCache, DiscardAllEmpties)
{
    ForwardingCache fc({64, 4});
    fc.storeUpdate(0x100, 8, 1, sid(1));
    fc.storeUpdate(0x200, 8, 2, sid(2));
    EXPECT_EQ(fc.liveEntries(), 2u);
    fc.discardAll();
    EXPECT_EQ(fc.liveEntries(), 0u);
    EXPECT_FALSE(fc.load(0x100, 8).has_value());
}

TEST(FwdCache, EvictionWithinSet)
{
    ForwardingCache fc({8, 2}); // 4 sets x 2 ways
    // Three words in the same set (set stride: 4 sets * 8 B = 32 B).
    fc.storeUpdate(0x000, 8, 1, sid(1));
    fc.storeUpdate(0x020, 8, 2, sid(2));
    fc.storeUpdate(0x040, 8, 3, sid(3)); // evicts LRU (0x000)
    EXPECT_EQ(fc.liveEvictions.value(), 1u);
    EXPECT_FALSE(fc.load(0x000, 8).has_value());
    EXPECT_TRUE(fc.load(0x020, 8).has_value());
    EXPECT_TRUE(fc.load(0x040, 8).has_value());
}

TEST(FwdCache, WouldEvictLiveDetectsFullSets)
{
    ForwardingCache fc({8, 2});
    EXPECT_FALSE(fc.wouldEvictLive(0x000));
    fc.storeUpdate(0x000, 8, 1, sid(1));
    fc.storeUpdate(0x020, 8, 2, sid(2));
    EXPECT_FALSE(fc.wouldEvictLive(0x000)); // word present: no eviction
    EXPECT_TRUE(fc.wouldEvictLive(0x040));  // new word, set full
}

} // namespace
