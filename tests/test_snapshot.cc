/**
 * @file
 * Hardening contract for the `srlsim-ckpt-v1` checkpoint container.
 *
 * A checkpoint that cannot be restored *exactly* must be impossible to
 * restore *at all*: every corruption — truncated header, truncated or
 * bit-flipped payload, wrong magic, unsupported schema version,
 * mismatched run context — and every write failure (ENOSPC included)
 * raises core::SnapshotError. These tests mirror the TraceWriter /
 * ResultCache hardening suites.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/config.hh"
#include "core/fast_forward.hh"
#include "core/sim_state.hh"
#include "core/snapshot.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;

/** Self-cleaning temp directory. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/srlsim-test-XXXXXX";
        EXPECT_NE(mkdtemp(tmpl), nullptr);
        path = tmpl;
    }

    ~TempDir()
    {
        if (DIR *d = opendir(path.c_str())) {
            while (const dirent *e = readdir(d)) {
                const std::string n = e->d_name;
                if (n != "." && n != "..")
                    std::remove((path + "/" + n).c_str());
            }
            closedir(d);
        }
        rmdir(path.c_str());
    }
};

/** A checkpoint of genuinely non-trivial state: 20k warmed uops. */
struct Fixture
{
    core::ProcessorConfig cfg = core::srlConfig();
    workload::SuiteProfile suite = workload::suiteProfile("SFP2K");
    core::SnapshotContext ctx;
    core::SimState sim{cfg};
    workload::Generator gen{suite, 100000, /*seed=*/12345};
    core::SnapshotMeta meta;

    Fixture()
    {
        ctx = core::makeSnapshotContext(cfg, suite, 100000, 12345,
                                        15000, 5000, 10000);
        core::FastForwardEngine ff(sim);
        meta.ff_done = ff.run(gen, 15000, /*warm=*/false);
        meta.warm_done = ff.run(gen, 5000, /*warm=*/true);
        meta.consumed_uops = gen.emitted();
        meta.next_interval = 1;
        meta.stats.cycles = 4242;
        meta.stats.committed_uops = 999;
        meta.occupancy.observe(3, 17);
        meta.occupancy.observe(0, 4);
    }

    chash::Hash128
    save(const std::string &path) const
    {
        return core::saveSnapshot(path, ctx, meta, sim,
                                  gen.captureState());
    }
};

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

void
spit(const std::string &path, const std::string &data)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    ASSERT_EQ(std::fclose(f), 0);
}

TEST(Snapshot, RoundTripRestoresByteIdenticalState)
{
    TempDir dir;
    Fixture fx;
    const std::string path = dir.path + "/ckpt.v1";
    const chash::Hash128 saved = fx.save(path);

    core::SimState restored(fx.cfg);
    const core::LoadedSnapshot loaded =
        core::loadSnapshot(path, fx.ctx, restored);
    EXPECT_EQ(loaded.digest.lo, saved.lo);
    EXPECT_EQ(loaded.digest.hi, saved.hi);
    EXPECT_EQ(loaded.meta.consumed_uops, fx.meta.consumed_uops);
    EXPECT_EQ(loaded.meta.next_interval, fx.meta.next_interval);
    EXPECT_EQ(loaded.meta.ff_done, fx.meta.ff_done);
    EXPECT_EQ(loaded.meta.warm_done, fx.meta.warm_done);
    EXPECT_EQ(loaded.meta.stats.cycles, fx.meta.stats.cycles);
    EXPECT_EQ(loaded.meta.stats.committed_uops,
              fx.meta.stats.committed_uops);

    // Re-digesting the restored state reproduces the stored digest:
    // the round trip lost nothing.
    workload::Generator regen(fx.suite, 100000, 12345);
    regen.restoreState(loaded.gen);
    const chash::Hash128 redigest = core::snapshotDigest(
        fx.ctx, loaded.meta, restored, regen.captureState());
    EXPECT_EQ(redigest.lo, saved.lo);
    EXPECT_EQ(redigest.hi, saved.hi);
}

TEST(Snapshot, SaveIsDeterministic)
{
    TempDir dir;
    Fixture a, b;
    const chash::Hash128 ha = a.save(dir.path + "/a.v1");
    const chash::Hash128 hb = b.save(dir.path + "/b.v1");
    EXPECT_EQ(ha.lo, hb.lo);
    EXPECT_EQ(ha.hi, hb.hi);
    EXPECT_EQ(slurp(dir.path + "/a.v1"), slurp(dir.path + "/b.v1"));
}

TEST(Snapshot, MissingFileIsAHardError)
{
    TempDir dir;
    Fixture fx;
    core::SimState sim(fx.cfg);
    EXPECT_THROW(
        core::loadSnapshot(dir.path + "/absent.v1", fx.ctx, sim),
        core::SnapshotError);
}

TEST(Snapshot, TruncatedHeaderIsRejected)
{
    TempDir dir;
    Fixture fx;
    const std::string path = dir.path + "/ckpt.v1";
    fx.save(path);
    const std::string blob = slurp(path);
    core::SimState sim(fx.cfg);
    for (const std::size_t keep : {std::size_t{0}, std::size_t{7},
                                   std::size_t{20}, std::size_t{42}}) {
        spit(path, blob.substr(0, keep));
        EXPECT_THROW(core::loadSnapshot(path, fx.ctx, sim),
                     core::SnapshotError)
            << "kept " << keep << " bytes";
    }
}

TEST(Snapshot, TruncatedPayloadIsRejected)
{
    TempDir dir;
    Fixture fx;
    const std::string path = dir.path + "/ckpt.v1";
    fx.save(path);
    const std::string blob = slurp(path);
    spit(path, blob.substr(0, blob.size() - blob.size() / 3));
    core::SimState sim(fx.cfg);
    EXPECT_THROW(core::loadSnapshot(path, fx.ctx, sim),
                 core::SnapshotError);
}

TEST(Snapshot, BadMagicIsRejected)
{
    TempDir dir;
    Fixture fx;
    const std::string path = dir.path + "/ckpt.v1";
    fx.save(path);
    std::string blob = slurp(path);
    blob[0] = 'X';
    spit(path, blob);
    core::SimState sim(fx.cfg);
    EXPECT_THROW(core::loadSnapshot(path, fx.ctx, sim),
                 core::SnapshotError);
}

TEST(Snapshot, UnsupportedVersionIsRejected)
{
    TempDir dir;
    Fixture fx;
    const std::string path = dir.path + "/ckpt.v1";
    fx.save(path);
    std::string blob = slurp(path);
    blob[15] = 99; // the version u32 sits right after the 15B magic
    spit(path, blob);
    core::SimState sim(fx.cfg);
    EXPECT_THROW(core::loadSnapshot(path, fx.ctx, sim),
                 core::SnapshotError);
}

TEST(Snapshot, EveryBitFlippedPayloadByteIsRejected)
{
    TempDir dir;
    Fixture fx;
    const std::string path = dir.path + "/ckpt.v1";
    fx.save(path);
    const std::string blob = slurp(path);
    constexpr std::size_t kHeader = 15 + 4 + 8 + 16;
    core::SimState sim(fx.cfg);
    // Stride through the payload so the test stays fast while still
    // covering every region (context, meta, memory, caches, tables).
    const std::size_t stride =
        std::max<std::size_t>(1, (blob.size() - kHeader) / 97);
    for (std::size_t i = kHeader; i < blob.size(); i += stride) {
        std::string bad = blob;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        spit(path, bad);
        EXPECT_THROW(core::loadSnapshot(path, fx.ctx, sim),
                     core::SnapshotError)
            << "flip at byte " << i << " slipped through";
    }
}

TEST(Snapshot, ContextMismatchIsRejected)
{
    TempDir dir;
    Fixture fx;
    const std::string path = dir.path + "/ckpt.v1";
    fx.save(path);
    core::SimState sim(fx.cfg);

    core::SnapshotContext other = fx.ctx;
    other.run_seed ^= 1;
    EXPECT_THROW(core::loadSnapshot(path, other, sim),
                 core::SnapshotError);

    other = fx.ctx;
    other.detail_uops += 1;
    EXPECT_THROW(core::loadSnapshot(path, other, sim),
                 core::SnapshotError);

    // A different config digests differently.
    core::ProcessorConfig base = core::baselineConfig();
    const core::SnapshotContext foreign = core::makeSnapshotContext(
        base, fx.suite, 100000, 12345, 15000, 5000, 10000);
    EXPECT_THROW(core::loadSnapshot(path, foreign, sim),
                 core::SnapshotError);
}

TEST(Snapshot, UnwritableDestinationIsAHardError)
{
    Fixture fx;
    EXPECT_THROW(fx.save("/nonexistent-dir/ckpt.v1"),
                 core::SnapshotError);
}

TEST(Snapshot, EnospcWriteFailureIsAHardError)
{
    if (::access("/dev/full", W_OK) != 0)
        GTEST_SKIP() << "/dev/full not available";
    TempDir dir;
    Fixture fx;
    // Route the temp file onto /dev/full via a symlink so the flush
    // inside saveSnapshot hits a real ENOSPC. The final path must not
    // appear, and the failure must be loud.
    const std::string path = dir.path + "/ckpt.v1";
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    ASSERT_EQ(::symlink("/dev/full", tmp.c_str()), 0);
    EXPECT_THROW(fx.save(path), core::SnapshotError);
    EXPECT_NE(::access(path.c_str(), F_OK), 0)
        << "failed save left a file under the final name";
}

TEST(Snapshot, FileNameIsStableAndDistinguishesIntervals)
{
    Fixture fx;
    const std::string n0 = core::snapshotFileName(fx.ctx, 0);
    EXPECT_EQ(n0, core::snapshotFileName(fx.ctx, 0));
    EXPECT_NE(n0, core::snapshotFileName(fx.ctx, 1));
    core::SnapshotContext other = fx.ctx;
    other.run_seed ^= 1;
    EXPECT_NE(n0, core::snapshotFileName(other, 0));
    EXPECT_EQ(n0.substr(0, 5), "ckpt-");
    EXPECT_EQ(n0.substr(n0.size() - 3), ".v1");
}

} // namespace
