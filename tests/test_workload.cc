/**
 * @file
 * Unit tests for the synthetic workload layer: uop model helpers,
 * generator determinism, stream/profile structure (mixes, regions,
 * forwarding pairs, bursts), the sequence stream, and the in-order
 * reference executor.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "core/simulator.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"
#include "workload/stream_cache.hh"

namespace
{

using namespace srl;
using namespace srl::workload;

std::vector<isa::Uop>
generate(const SuiteProfile &p, std::uint64_t n)
{
    Generator g(p, n);
    std::vector<isa::Uop> out;
    isa::Uop u;
    while (g.next(u))
        out.push_back(u);
    return out;
}

TEST(Uop, ClassPredicatesAndNames)
{
    using isa::UopClass;
    EXPECT_TRUE(isa::isMemory(UopClass::kLoad));
    EXPECT_TRUE(isa::isMemory(UopClass::kStore));
    EXPECT_FALSE(isa::isMemory(UopClass::kBranch));
    EXPECT_TRUE(isa::isFloat(UopClass::kFpMul));
    EXPECT_FALSE(isa::isFloat(UopClass::kIntMul));
    EXPECT_STREQ(isa::uopClassName(UopClass::kLoad), "load");
    EXPECT_EQ(isa::executeLatency(UopClass::kIntAlu), 1u);
    EXPECT_GT(isa::executeLatency(UopClass::kFpMul),
              isa::executeLatency(UopClass::kFpAlu));
}

TEST(Profiles, AllSevenSuitesPresent)
{
    const auto suites = suiteProfiles();
    ASSERT_EQ(suites.size(), 7u);
    const char *expected[] = {"SFP2K", "SINT2K", "WEB", "MM",
                              "PROD",  "SERVER", "WS"};
    for (std::size_t i = 0; i < 7; ++i)
        EXPECT_EQ(suites[i].name, expected[i]);
    EXPECT_EQ(suiteProfile("SERVER").name, "SERVER");
}

TEST(Profiles, UnknownSuiteIsFatal)
{
    EXPECT_EXIT(suiteProfile("NOPE"), ::testing::ExitedWithCode(1),
                "unknown workload suite");
}

TEST(Generator, DeterministicForSameSeed)
{
    const auto p = suiteProfile("SINT2K");
    const auto a = generate(p, 5000);
    const auto b = generate(p, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].cls, b[i].cls);
        ASSERT_EQ(a[i].effAddr, b[i].effAddr);
        ASSERT_EQ(a[i].storeData, b[i].storeData);
        ASSERT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(Generator, SeedOverrideChangesStream)
{
    const auto p = suiteProfile("SINT2K");
    Generator g1(p, 2000), g2(p, 2000, 999);
    isa::Uop a, b;
    unsigned diff = 0;
    while (g1.next(a) && g2.next(b))
        diff += a.effAddr != b.effAddr || a.cls != b.cls;
    EXPECT_GT(diff, 100u);
}

TEST(Generator, SequentialSeqNumbers)
{
    const auto uops = generate(suiteProfile("WEB"), 3000);
    for (std::size_t i = 0; i < uops.size(); ++i)
        ASSERT_EQ(uops[i].seq, i);
}

TEST(Generator, MixRoughlyMatchesProfile)
{
    const auto p = suiteProfile("SFP2K");
    const auto uops = generate(p, 50000);
    double loads = 0, stores = 0, branches = 0;
    for (const auto &u : uops) {
        loads += u.isLoad();
        stores += u.isStore();
        branches += u.isBranch();
    }
    EXPECT_NEAR(loads / uops.size(), p.load_frac, 0.03);
    EXPECT_NEAR(stores / uops.size(), p.store_frac, 0.03);
    EXPECT_NEAR(branches / uops.size(), p.branch_frac, 0.03);
}

TEST(Generator, MemoryAccessesNaturallyAligned)
{
    const auto uops = generate(suiteProfile("MM"), 20000);
    for (const auto &u : uops) {
        if (isa::isMemory(u.cls)) {
            ASSERT_TRUE(u.memSize == 1 || u.memSize == 2 ||
                        u.memSize == 4 || u.memSize == 8);
            ASSERT_EQ(u.effAddr % u.memSize, 0u);
            // Never crosses an 8-byte word.
            ASSERT_EQ(u.effAddr / 8, (u.effAddr + u.memSize - 1) / 8);
        }
    }
}

TEST(Generator, AddressesStayInDeclaredRegions)
{
    const auto uops = generate(suiteProfile("SERVER"), 30000);
    for (const auto &u : uops) {
        if (!isa::isMemory(u.cls))
            continue;
        const Addr hi = u.effAddr >> 28;
        ASSERT_TRUE(hi == 0x1 || hi == 0x2 || (hi >= 0x4 && hi <= 0x8))
            << std::hex << u.effAddr;
    }
}

TEST(Generator, ForwardingPairsExist)
{
    // Some loads must re-read a recent store's exact address and size.
    const auto uops = generate(suiteProfile("WEB"), 30000);
    std::map<Addr, std::uint8_t> last_store;
    unsigned pairs = 0;
    for (const auto &u : uops) {
        if (u.isStore())
            last_store[u.effAddr] = u.memSize;
        else if (u.isLoad()) {
            const auto it = last_store.find(u.effAddr);
            pairs += it != last_store.end() &&
                     it->second == u.memSize;
        }
    }
    EXPECT_GT(pairs, 500u);
}

TEST(Generator, ColdMissesAreBursty)
{
    const auto uops = generate(suiteProfile("SFP2K"), 120000);
    std::vector<std::uint64_t> cold_seqs;
    for (const auto &u : uops) {
        if (u.isLoad() && (u.effAddr >> 28) >= 4 && (u.effAddr >> 28) < 8)
            cold_seqs.push_back(u.seq);
    }
    ASSERT_GT(cold_seqs.size(), 20u);
    // Bursty = many small gaps and a few huge gaps: compare the median
    // gap to the mean gap.
    std::vector<std::uint64_t> gaps;
    for (std::size_t i = 1; i < cold_seqs.size(); ++i)
        gaps.push_back(cold_seqs[i] - cold_seqs[i - 1]);
    std::sort(gaps.begin(), gaps.end());
    const double mean =
        static_cast<double>(cold_seqs.back() - cold_seqs.front()) /
        gaps.size();
    const double median = gaps[gaps.size() / 2];
    EXPECT_LT(median, mean / 2);
}

TEST(SequenceStreamTest, ReplaysVectorOnce)
{
    std::vector<isa::Uop> v(3);
    v[0].seq = 0;
    v[1].seq = 1;
    v[2].seq = 2;
    SequenceStream s(v);
    isa::Uop u;
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(s.next(u));
        EXPECT_EQ(u.seq, static_cast<SeqNum>(i));
    }
    EXPECT_FALSE(s.next(u));
}

// Field-wise uop equality (memcmp would compare padding bytes, which
// member-wise assignment legitimately leaves behind).
::testing::AssertionResult
uopsEqual(const isa::Uop &a, const isa::Uop &b)
{
    if (a.seq == b.seq && a.pc == b.pc && a.cls == b.cls &&
        a.dst == b.dst && a.src1 == b.src1 && a.src2 == b.src2 &&
        a.effAddr == b.effAddr && a.memSize == b.memSize &&
        a.storeData == b.storeData && a.taken == b.taken &&
        a.target == b.target)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a.toString() << " != " << b.toString();
}

// The on-disk stream cache must be semantically invisible: cold (write)
// and warm (replay) opens both produce the generator's exact sequence.
TEST(StreamCache, ReplayMatchesGeneratorExactly)
{
    char dir_tmpl[] = "/tmp/srlsim-wlcache-XXXXXX";
    ASSERT_NE(mkdtemp(dir_tmpl), nullptr);
    const std::string dir = dir_tmpl;

    const auto profile = workload::suiteProfile("SFP2K");
    constexpr std::uint64_t kUops = 5000;

    workload::Generator ref(profile, kUops);
    std::vector<isa::Uop> expect;
    isa::Uop u;
    while (ref.next(u))
        expect.push_back(u);

    for (const char *pass : {"cold", "warm"}) {
        SCOPED_TRACE(pass);
        auto s = workload::openStream(profile, kUops, 0, dir);
        std::size_t i = 0;
        while (s->next(u)) {
            ASSERT_LT(i, expect.size());
            ASSERT_TRUE(uopsEqual(u, expect[i]))
                << "uop " << i << " diverges from the generator";
            ++i;
        }
        EXPECT_EQ(i, expect.size());
    }

    // The warm pass must have hit the file written by the cold pass.
    const std::string path = dir + "/SFP2K-" +
                             std::to_string(profile.seed) + "-" +
                             std::to_string(kUops) + ".uops";
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "cache file was not created: " << path;
    std::fclose(f);
    std::remove(path.c_str());
    rmdir(dir.c_str());
}

// A stale or foreign cache file must be ignored, not misread.
TEST(StreamCache, CorruptFileFallsBackToGenerator)
{
    char dir_tmpl[] = "/tmp/srlsim-wlcache-XXXXXX";
    ASSERT_NE(mkdtemp(dir_tmpl), nullptr);
    const std::string dir = dir_tmpl;

    const auto profile = workload::suiteProfile("MM");
    constexpr std::uint64_t kUops = 1000;
    const std::string path = dir + "/MM-" +
                             std::to_string(profile.seed) + "-" +
                             std::to_string(kUops) + ".uops";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a stream cache file", f);
    std::fclose(f);

    workload::Generator ref(profile, kUops);
    auto s = workload::openStream(profile, kUops, 0, dir);
    isa::Uop a, b;
    std::uint64_t n = 0;
    while (ref.next(a)) {
        ASSERT_TRUE(s->next(b));
        ASSERT_TRUE(uopsEqual(a, b));
        ++n;
    }
    EXPECT_FALSE(s->next(b));
    EXPECT_EQ(n, kUops);

    std::remove(path.c_str());
    rmdir(dir.c_str());
}

TEST(Reference, ExecutesInOrder)
{
    std::vector<isa::Uop> v;
    isa::Uop st;
    st.seq = 0;
    st.cls = isa::UopClass::kStore;
    st.effAddr = 0x100;
    st.memSize = 8;
    st.storeData = 0x42;
    v.push_back(st);
    isa::Uop ld;
    ld.seq = 1;
    ld.cls = isa::UopClass::kLoad;
    ld.effAddr = 0x100;
    ld.memSize = 8;
    v.push_back(ld);

    SequenceStream s(std::move(v));
    core::ReferenceExecutor ref;
    ref.run(s);
    EXPECT_EQ(ref.uops(), 2u);
    EXPECT_TRUE(ref.hasLoad(1));
    EXPECT_FALSE(ref.hasLoad(0));
    EXPECT_EQ(ref.loadValue(1), 0x42u);
    EXPECT_EQ(ref.mem().read(0x100, 8), 0x42u);
}

} // namespace
