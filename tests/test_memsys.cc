/**
 * @file
 * Unit tests for the memory system: functional main memory, the
 * timing cache (LRU, dirty/writeback, per-checkpoint speculative
 * state), the stream prefetcher, and the three-level hierarchy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "memsys/cache.hh"
#include "memsys/hierarchy.hh"
#include "memsys/main_memory.hh"
#include "memsys/prefetcher.hh"

namespace
{

using namespace srl;
using namespace srl::memsys;

// ------------------------------------------------------------ MainMemory

TEST(MainMemory, ZeroInitialized)
{
    MainMemory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(MainMemory, ReadBackWrites)
{
    MainMemory m;
    m.write(0x1000, 8, 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x1004, 4), 0x11223344u);
    EXPECT_EQ(m.read(0x1003, 1), 0x55u);
}

TEST(MainMemory, CrossPageAccess)
{
    MainMemory m;
    const Addr a = MainMemory::kPageBytes - 4;
    m.write(a, 8, 0xaabbccdd11223344ull);
    EXPECT_EQ(m.read(a, 8), 0xaabbccdd11223344ull);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(MainMemory, PartialOverwrite)
{
    MainMemory m;
    m.write(0x100, 8, ~0ull);
    m.write(0x102, 2, 0);
    EXPECT_EQ(m.read(0x100, 8), 0xffffffff0000ffffull);
}

// ------------------------------------------------------------ Cache

CacheParams
smallCache()
{
    return {"test", 1024, 2, 64, 3}; // 8 sets x 2 ways
}

TEST(Cache, HitAfterFill)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x1000));
    const auto r = c.access(0x1000, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.hits.value(), 1u);
    EXPECT_EQ(c.misses.value(), 1u);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // Three lines mapping to the same set (set stride = 8 sets * 64 B).
    const Addr a = 0x0000, b = 0x0200, d = 0x0400;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false); // a most recent
    c.access(d, false); // evicts b (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyVictimWriteback)
{
    Cache c(smallCache());
    const Addr a = 0x0000, b = 0x0200, d = 0x0400;
    c.access(a, true); // dirty
    c.access(b, false);
    c.access(b, false);
    const auto r = c.access(d, false); // evicts a
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_line, a);
    EXPECT_EQ(c.writebacks.value(), 1u);
}

TEST(Cache, TouchDoesNotAllocate)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.touch(0x1000));
    c.fill(0x1000);
    EXPECT_TRUE(c.touch(0x1000));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(smallCache());
    c.access(0x1000, true);
    c.invalidate(0x1000);
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, SpeculativeSingleVersionConstraint)
{
    Cache c(smallCache());
    c.fill(0x1000);
    EXPECT_TRUE(c.markSpeculative(0x1000, 1));
    EXPECT_TRUE(c.markSpeculative(0x1000, 1)); // same ckpt OK
    EXPECT_FALSE(c.markSpeculative(0x1000, 2)); // conflict
    EXPECT_TRUE(c.isSpeculative(0x1000));
    EXPECT_TRUE(c.isSpeculativeFor(0x1000, 1));
    EXPECT_FALSE(c.isSpeculativeFor(0x1000, 2));
}

TEST(Cache, CommitClearsSpeculativeKeepsLine)
{
    Cache c(smallCache());
    c.access(0x1000, true);
    c.markSpeculative(0x1000, 3);
    c.commitCheckpoint(3);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.isSpeculative(0x1000));
    EXPECT_TRUE(c.markSpeculative(0x1000, 4)); // now free for others
}

TEST(Cache, SquashInvalidatesSpeculativeLines)
{
    Cache c(smallCache());
    c.fill(0x1000);
    c.fill(0x2000);
    c.markSpeculative(0x1000, 3);
    EXPECT_EQ(c.squashCheckpoint(3), 1u);
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(Cache, SquashAllSpeculative)
{
    Cache c(smallCache());
    c.fill(0x1000);
    c.fill(0x2000);
    c.markSpeculative(0x1000, 1);
    c.markSpeculative(0x2000, 2);
    EXPECT_EQ(c.squashAllSpeculative(), 2u);
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
}

// ------------------------------------------------------------ Prefetcher

TEST(Prefetcher, ArmsOnSequentialMisses)
{
    PrefetcherParams p;
    p.train_threshold = 2;
    p.degree = 4;
    StreamPrefetcher pf(p);
    std::vector<Addr> issued;
    const auto sink = [&](Addr a) { issued.push_back(a); };

    pf.observeMiss(0x10000, sink);
    EXPECT_TRUE(issued.empty()); // tentative
    pf.observeMiss(0x10040, sink);
    pf.observeMiss(0x10080, sink); // armed: prefetches ahead
    EXPECT_FALSE(issued.empty());
    EXPECT_GT(pf.issued.value(), 0u);
    // Prefetches are ahead of the demand line.
    for (const Addr a : issued)
        EXPECT_GT(a, Addr{0x10080});
}

TEST(Prefetcher, ToleratesOutOfOrderSkew)
{
    PrefetcherParams p;
    p.train_threshold = 2;
    p.match_slack = 8;
    StreamPrefetcher pf(p);
    std::vector<Addr> issued;
    const auto sink = [&](Addr a) { issued.push_back(a); };

    // Slightly out-of-order demand stream must still train one stream.
    pf.observeMiss(0x20000, sink);
    pf.observeMiss(0x20080, sink); // skipped one line
    pf.observeMiss(0x20040, sink); // arrives late
    pf.observeMiss(0x200c0, sink);
    EXPECT_EQ(pf.streamsAllocated.value(), 1u);
}

TEST(Prefetcher, RandomMissesDoNotArm)
{
    StreamPrefetcher pf({});
    std::vector<Addr> issued;
    const auto sink = [&](Addr a) { issued.push_back(a); };
    for (Addr a = 0; a < 16; ++a)
        pf.observeMiss(0x1000000 * (a + 1), sink);
    EXPECT_TRUE(issued.empty());
}

// ------------------------------------------------------------ Hierarchy

TEST(Hierarchy, LatenciesByLevel)
{
    MainMemory mem;
    HierarchyParams hp;
    hp.enable_prefetch = false;
    Hierarchy h(hp, mem);

    // Cold: memory latency.
    auto r = h.load(0x5000, 100);
    EXPECT_EQ(r.level, ServiceLevel::kMemory);
    EXPECT_EQ(r.ready, 100u + hp.memory_latency);

    // Now L1 resident.
    r = h.load(0x5000, 2000);
    EXPECT_EQ(r.level, ServiceLevel::kL1);
    EXPECT_EQ(r.ready, 2000u + hp.l1.hit_latency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MainMemory mem;
    HierarchyParams hp;
    hp.enable_prefetch = false;
    hp.l1 = {"l1", 2 * 64, 1, 64, 3}; // 2-line direct-ish L1
    Hierarchy h(hp, mem);

    h.load(0x0000, 0);
    h.load(0x1000, 2000); // same set, evicts 0x0000 from tiny L1
    auto r = h.load(0x0000, 4000);
    EXPECT_EQ(r.level, ServiceLevel::kL2);
}

TEST(Hierarchy, MshrMergingSameLine)
{
    MainMemory mem;
    HierarchyParams hp;
    hp.enable_prefetch = false;
    Hierarchy h(hp, mem);

    const auto r1 = h.load(0x9000, 10);
    const auto r2 = h.load(0x9008, 12); // same line, in flight
    EXPECT_EQ(r2.level, ServiceLevel::kMemory);
    EXPECT_EQ(r2.ready, r1.ready); // merged into the same fill
    EXPECT_EQ(h.mshrMerges.value(), 1u);
    EXPECT_EQ(h.memMisses.value(), 1u);
}

TEST(Hierarchy, MshrCapacityExhaustion)
{
    MainMemory mem;
    HierarchyParams hp;
    hp.enable_prefetch = false;
    hp.num_mshrs = 2;
    Hierarchy h(hp, mem);

    EXPECT_FALSE(h.load(0x10000, 0).mshr_full);
    EXPECT_FALSE(h.load(0x20000, 0).mshr_full);
    EXPECT_TRUE(h.load(0x30000, 0).mshr_full);
    // After the fills complete, capacity frees up.
    EXPECT_FALSE(h.load(0x30000, 10000).mshr_full);
}

TEST(Hierarchy, StoreDrainAllocatesDirtyLine)
{
    MainMemory mem;
    HierarchyParams hp;
    hp.enable_prefetch = false;
    Hierarchy h(hp, mem);

    h.storeDrain(0x7000, 0);
    EXPECT_TRUE(h.l1().probe(0x7000));
    EXPECT_TRUE(h.l1().isDirty(0x7000));
}

TEST(Hierarchy, WritebackLineCleans)
{
    MainMemory mem;
    HierarchyParams hp;
    hp.enable_prefetch = false;
    Hierarchy h(hp, mem);

    h.storeDrain(0x7000, 0);
    EXPECT_TRUE(h.writebackLine(0x7000));
    EXPECT_FALSE(h.l1().isDirty(0x7000));
    EXPECT_FALSE(h.writebackLine(0x7000)); // already clean
}

TEST(Hierarchy, SnoopInvalidateDropsBothLevels)
{
    MainMemory mem;
    HierarchyParams hp;
    hp.enable_prefetch = false;
    Hierarchy h(hp, mem);

    h.load(0x8000, 0);
    h.snoopInvalidate(0x8000);
    EXPECT_FALSE(h.l1().probe(0x8000));
    EXPECT_FALSE(h.l2().probe(0x8000));
}

} // namespace
