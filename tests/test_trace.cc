/**
 * @file
 * Unit tests for the binary trace format: round-trip fidelity,
 * header/count handling, replay equivalence through the simulator,
 * and error handling for corrupt files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <string>

#include "core/processor.hh"
#include "core/simulator.hh"
#include "isa/trace.hh"
#include "workload/generator.hh"

namespace
{

using namespace srl;

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Trace, RoundTripPreservesEveryField)
{
    const auto path = tmpPath("roundtrip.srlt");
    const auto suite = workload::suiteProfile("MM");

    {
        workload::Generator gen(suite, 5000);
        isa::TraceWriter w(path);
        EXPECT_EQ(w.appendAll(gen), 5000u);
        w.finish();
    }

    workload::Generator ref(suite, 5000);
    isa::TraceReader r(path);
    EXPECT_EQ(r.count(), 5000u);
    isa::Uop a, b;
    while (ref.next(a)) {
        ASSERT_TRUE(r.next(b));
        ASSERT_EQ(a.seq, b.seq);
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.cls, b.cls);
        ASSERT_EQ(a.dst, b.dst);
        ASSERT_EQ(a.src1, b.src1);
        ASSERT_EQ(a.src2, b.src2);
        ASSERT_EQ(a.effAddr, b.effAddr);
        ASSERT_EQ(a.memSize, b.memSize);
        ASSERT_EQ(a.storeData, b.storeData);
        ASSERT_EQ(a.taken, b.taken);
    }
    EXPECT_FALSE(r.next(b));
    std::remove(path.c_str());
}

TEST(Trace, ReplayedTraceSimulatesIdentically)
{
    const auto path = tmpPath("replay.srlt");
    const auto suite = workload::suiteProfile("SINT2K");
    const std::uint64_t uops = 8000;

    {
        workload::Generator gen(suite, uops);
        isa::TraceWriter w(path);
        w.appendAll(gen);
        w.finish();
    }

    // Simulate from the generator and from the trace: bit-identical
    // cycle counts and stats.
    workload::Generator gen(suite, uops);
    core::Processor cpu_gen(core::srlConfig(), gen);
    const auto &s1 = cpu_gen.run(50'000'000);

    isa::TraceReader reader(path);
    core::Processor cpu_trace(core::srlConfig(), reader);
    const auto &s2 = cpu_trace.run(50'000'000);

    EXPECT_EQ(s1.cycles, s2.cycles);
    EXPECT_EQ(s1.committed_uops, s2.committed_uops);
    EXPECT_EQ(s1.mem_misses, s2.mem_misses);
    EXPECT_EQ(s1.redone_stores, s2.redone_stores);
    std::remove(path.c_str());
}

TEST(Trace, EmptyTraceIsValid)
{
    const auto path = tmpPath("empty.srlt");
    {
        isa::TraceWriter w(path);
        w.finish();
    }
    isa::TraceReader r(path);
    EXPECT_EQ(r.count(), 0u);
    isa::Uop u;
    EXPECT_FALSE(r.next(u));
    std::remove(path.c_str());
}

TEST(Trace, MissingFileIsFatal)
{
    EXPECT_EXIT({ isa::TraceReader r("/nonexistent/dir/x.srlt"); },
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(Trace, BadMagicIsFatal)
{
    const auto path = tmpPath("badmagic.srlt");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOPEnope12345678", f);
    std::fclose(f);
    EXPECT_EXIT({ isa::TraceReader r2(path); },
                ::testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

TEST(Trace, TruncatedHeaderIsFatal)
{
    // A file shorter than the 16-byte header must be rejected up
    // front, not read as a zero-count trace.
    const auto path = tmpPath("shorthdr.srlt");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("SRLT", f); // magic only, no version/count
    std::fclose(f);
    EXPECT_EXIT({ isa::TraceReader r(path); },
                ::testing::ExitedWithCode(1), "truncated header");
    std::remove(path.c_str());
}

TEST(Trace, BadVersionIsFatal)
{
    const auto path = tmpPath("badver.srlt");
    {
        isa::TraceWriter w(path);
        w.finish();
    }
    // Corrupt the version field (bytes 4..7) in place.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    const std::uint32_t bogus = 999;
    std::fseek(f, 4, SEEK_SET);
    ASSERT_EQ(std::fwrite(&bogus, sizeof(bogus), 1, f), 1u);
    std::fclose(f);
    EXPECT_EXIT({ isa::TraceReader r(path); },
                ::testing::ExitedWithCode(1), "unsupported version");
    std::remove(path.c_str());
}

TEST(Trace, WriterReportsIoErrorInsteadOfSilentTruncation)
{
    // /dev/full accepts buffered writes but fails them at flush time;
    // finish() must detect that instead of quietly dropping the tail.
    std::FILE *df = std::fopen("/dev/full", "wb");
    if (!df)
        GTEST_SKIP() << "/dev/full not available";
    std::fclose(df);
    EXPECT_EXIT(
        {
            workload::Generator gen(workload::suiteProfile("MM"), 100);
            isa::TraceWriter w("/dev/full");
            w.appendAll(gen);
            w.finish();
        },
        ::testing::ExitedWithCode(1), "failed");
}

TEST(Trace, TruncatedRecordIsFatal)
{
    const auto path = tmpPath("trunc.srlt");
    {
        workload::Generator gen(workload::suiteProfile("PROD"), 100);
        isa::TraceWriter w(path);
        w.appendAll(gen);
        w.finish();
    }
    // Chop the file short of its declared record count.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 24), 0);

    isa::TraceReader r(path);
    isa::Uop u;
    EXPECT_EXIT(
        {
            while (r.next(u)) {
            }
        },
        ::testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

} // namespace
