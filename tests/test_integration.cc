/**
 * @file
 * Property-based integration tests: for every store-queue model, every
 * workload suite, and several seeds, the out-of-order machine's
 * committed load values and final architectural memory must be
 * identical to the in-order functional reference. This is the
 * strongest end-to-end statement the repository makes: all the
 * forwarding paths, the SRL redo discipline, checkpoint recovery, and
 * violation detection compose to sequential semantics.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/processor.hh"
#include "core/simulator.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;

enum class Model
{
    kBaseline,
    kIdeal,
    kHierarchical,
    kSrl,
    kSrlNoLcf,
    kSrlNoIdx,
    kSrlDcacheTemp,
    kSrlViolateOverflow,
    kSrlSmall,
};

core::ProcessorConfig
configOf(Model m)
{
    switch (m) {
      case Model::kBaseline:
        return core::baselineConfig();
      case Model::kIdeal:
        return core::idealConfig();
      case Model::kHierarchical:
        return core::hierarchicalConfig();
      case Model::kSrl:
        return core::srlConfig();
      case Model::kSrlNoLcf: {
        auto c = core::srlConfig();
        c.srl.use_lcf = false;
        c.srl.indexed_forwarding = false;
        return c;
      }
      case Model::kSrlNoIdx: {
        auto c = core::srlConfig();
        c.srl.indexed_forwarding = false;
        return c;
      }
      case Model::kSrlDcacheTemp: {
        auto c = core::srlConfig();
        c.srl.use_fwd_cache = false;
        return c;
      }
      case Model::kSrlViolateOverflow: {
        auto c = core::srlConfig();
        c.load_buffer.overflow = lsq::OverflowPolicy::kViolate;
        return c;
      }
      case Model::kSrlSmall: {
        auto c = core::srlConfig();
        c.srl.srl.capacity = 128;
        c.srl.lcf.entries = 256;
        c.srl.fwd_cache = {64, 4};
        return c;
      }
    }
    return core::srlConfig();
}

const char *
nameOf(Model m)
{
    switch (m) {
      case Model::kBaseline: return "baseline";
      case Model::kIdeal: return "ideal";
      case Model::kHierarchical: return "hierarchical";
      case Model::kSrl: return "srl";
      case Model::kSrlNoLcf: return "srl_no_lcf";
      case Model::kSrlNoIdx: return "srl_no_idx";
      case Model::kSrlDcacheTemp: return "srl_dcache_temp";
      case Model::kSrlViolateOverflow: return "srl_violate_ovfl";
      case Model::kSrlSmall: return "srl_small";
    }
    return "?";
}

using Param = std::tuple<Model, const char *, std::uint64_t>;

class ModelMatchesReference : public ::testing::TestWithParam<Param>
{
};

TEST_P(ModelMatchesReference, CommittedStateIsSequential)
{
    const auto [model, suite_name, seed] = GetParam();
    const auto suite = workload::suiteProfile(suite_name);
    const std::uint64_t uops = 25000;

    workload::Generator ref_gen(suite, uops, seed);
    core::ReferenceExecutor ref;
    ref.run(ref_gen);

    workload::Generator gen(suite, uops, seed);
    core::Processor cpu(configOf(model), gen);

    std::uint64_t checked = 0;
    cpu.setLoadCommitHook([&](SeqNum seq, Addr, unsigned,
                              std::uint64_t value) {
        ASSERT_TRUE(ref.hasLoad(seq));
        ASSERT_EQ(value, ref.loadValue(seq))
            << "load seq " << seq << " model " << nameOf(model);
        ++checked;
    });

    const auto &s = cpu.run(80'000'000);
    ASSERT_TRUE(cpu.done());
    EXPECT_EQ(s.committed_uops, uops);
    EXPECT_GT(checked, uops / 10);

    // Final architectural memory: spot-check every address the
    // reference wrote (the reference's memory pages cover them all).
    workload::Generator verify_gen(suite, uops, seed);
    isa::Uop u;
    while (verify_gen.next(u)) {
        if (u.isStore()) {
            ASSERT_EQ(cpu.mem().read(u.effAddr, u.memSize),
                      ref.mem().read(u.effAddr, u.memSize))
                << "addr " << std::hex << u.effAddr << " model "
                << nameOf(model);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsMainSuites, ModelMatchesReference,
    ::testing::Combine(
        ::testing::Values(Model::kBaseline, Model::kIdeal,
                          Model::kHierarchical, Model::kSrl),
        ::testing::Values("SFP2K", "SINT2K", "WEB", "MM", "PROD",
                          "SERVER", "WS"),
        ::testing::Values<std::uint64_t>(1, 0xfeed)),
    [](const auto &info) {
        return std::string(nameOf(std::get<0>(info.param))) + "_" +
               std::get<1>(info.param) + "_s" +
               std::to_string(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    SrlVariants, ModelMatchesReference,
    ::testing::Combine(
        ::testing::Values(Model::kSrlNoLcf, Model::kSrlNoIdx,
                          Model::kSrlDcacheTemp,
                          Model::kSrlViolateOverflow,
                          Model::kSrlSmall),
        ::testing::Values("SFP2K", "SERVER", "WS"),
        ::testing::Values<std::uint64_t>(7)),
    [](const auto &info) {
        return std::string(nameOf(std::get<0>(info.param))) + "_" +
               std::get<1>(info.param) + "_s" +
               std::to_string(std::get<2>(info.param));
    });

// Snoop storms on top of a running workload must preserve the
// *coherence order*: after completion, memory equals what the snoops
// and program stores produced in some serializable order — we verify
// the machine completes and every snooped location holds either the
// snoop value or a program-ordered store's value.
TEST(IntegrationSnoop, RandomSnoopStormCompletes)
{
    const auto suite = workload::suiteProfile("SINT2K");
    const std::uint64_t uops = 8000;
    workload::Generator gen(suite, uops);
    core::Processor cpu(core::srlConfig(), gen);

    Random rng(123);
    std::uint64_t snoops = 0;
    while (!cpu.done()) {
        cpu.tick();
        if (rng.chance(0.002)) {
            const Addr a =
                workload::AddressRegions::kHot + rng.below(448) * 64 +
                rng.below(8) * 8;
            cpu.injectSnoop(a, 8, 0xdead0000 + snoops);
            ++snoops;
        }
        ASSERT_LT(cpu.now(), 10'000'000u);
    }
    EXPECT_EQ(cpu.stats().committed_uops, uops);
    EXPECT_GT(snoops, 0u);
}

} // namespace
