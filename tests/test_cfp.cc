/**
 * @file
 * Unit tests for the CPR/CFP substrate: checkpoint lifecycle (create,
 * counters, bulk commit, rollback, forward progress), the rename map,
 * and the Slice Data Buffer (ordered insert, squash).
 */

#include <gtest/gtest.h>

#include "cfp/checkpoint.hh"
#include "cfp/rename.hh"
#include "cfp/sdb.hh"

namespace
{

using namespace srl;
using namespace srl::cfp;

CheckpointParams
smallCkpts()
{
    CheckpointParams p;
    p.num_checkpoints = 4;
    p.max_interval = 8;
    p.branch_interval = 4;
    return p;
}

TEST(Checkpoints, WantNewOnFirstAndAtInterval)
{
    CheckpointManager m(smallCkpts());
    EXPECT_TRUE(m.wantNew(false));
    RenameMap map;
    m.create(0, map);
    for (int i = 0; i < 7; ++i) {
        EXPECT_FALSE(m.wantNew(false));
        m.allocated(i);
    }
    m.allocated(7);
    EXPECT_TRUE(m.wantNew(false)); // max_interval reached
}

TEST(Checkpoints, BranchIntervalPolicy)
{
    CheckpointManager m(smallCkpts());
    RenameMap map;
    m.create(0, map);
    for (int i = 0; i < 4; ++i)
        m.allocated(i);
    EXPECT_FALSE(m.wantNew(false));
    EXPECT_TRUE(m.wantNew(true)); // low-confidence branch past 4 uops
}

TEST(Checkpoints, BulkCommitRequiresClosureAndCompletion)
{
    CheckpointManager m(smallCkpts());
    RenameMap map;
    const CheckpointId a = m.create(0, map);
    m.allocated(0);
    m.allocated(1);
    m.completed(a);
    m.completed(a);
    EXPECT_FALSE(m.oldestCommittable()); // region still open
    m.create(2, map);
    EXPECT_TRUE(m.oldestCommittable());
    const Checkpoint c = m.commitOldest();
    EXPECT_EQ(c.id, a);
    EXPECT_EQ(c.allocated, 2u);
}

TEST(Checkpoints, CloseYoungestEnablesFinalCommit)
{
    CheckpointManager m(smallCkpts());
    RenameMap map;
    const CheckpointId a = m.create(0, map);
    m.allocated(0);
    m.completed(a);
    EXPECT_FALSE(m.oldestCommittable());
    m.closeYoungest();
    EXPECT_TRUE(m.oldestCommittable());
}

TEST(Checkpoints, SlotReuseAfterCommit)
{
    CheckpointManager m(smallCkpts());
    RenameMap map;
    for (int i = 0; i < 4; ++i) {
        m.create(i * 8, map);
        m.allocated(i * 8);
    }
    EXPECT_FALSE(m.canCreate());
    // Complete and commit the oldest.
    m.completed(m.oldest().id);
    const CheckpointId freed = m.commitOldest().id;
    EXPECT_TRUE(m.canCreate());
    EXPECT_EQ(m.create(100, map), freed); // smallest free slot id
}

TEST(Checkpoints, RollbackDiscardsYoungerAndResetsTarget)
{
    CheckpointManager m(smallCkpts());
    RenameMap map;
    map[3].producer = 42;
    const CheckpointId a = m.create(0, map);
    m.allocated(0);
    RenameMap map2;
    const CheckpointId b = m.create(10, map2);
    m.allocated(10);
    m.create(20, map2);

    const Checkpoint restored = m.rollbackTo(b);
    EXPECT_EQ(restored.first_seq, 10u);
    EXPECT_EQ(m.liveCount(), 2u);
    EXPECT_EQ(m.youngest().id, b);
    EXPECT_EQ(m.youngest().allocated, 0u); // reset for re-execution
    EXPECT_TRUE(m.youngest().forced_single);
    EXPECT_NE(m.find(a), nullptr);

    // Forward progress: the re-executed region closes after one uop.
    m.allocated(10);
    EXPECT_TRUE(m.wantNew(false));
}

TEST(Checkpoints, RollbackToOldestKeepsIt)
{
    CheckpointManager m(smallCkpts());
    RenameMap map;
    const CheckpointId a = m.create(0, map);
    m.allocated(0);
    m.create(10, map);
    m.rollbackTo(a);
    EXPECT_EQ(m.liveCount(), 1u);
    EXPECT_EQ(m.oldest().id, a);
}

TEST(RenameMapTest, SnapshotIsIndependentCopy)
{
    RenameMap m;
    m[5].producer = 100;
    RenameMap snap = m.snapshot();
    m[5].producer = 200;
    EXPECT_EQ(snap[5].producer, 100u);
}

TEST(RenameMapTest, PoisonTracking)
{
    RenameMap m;
    m[1].poisoned = true;
    m[9].poisoned = true;
    EXPECT_EQ(m.poisonedCount(), 2u);
    m.clearPoison();
    EXPECT_EQ(m.poisonedCount(), 0u);
}

// ------------------------------------------------------------ SDB

isa::Uop
uopAt(SeqNum seq)
{
    isa::Uop u;
    u.seq = seq;
    u.cls = isa::UopClass::kIntAlu;
    return u;
}

TEST(Sdb, FifoByProgramOrderDespiteDrainOrder)
{
    SliceDataBuffer sdb({16});
    SliceEntry e1;
    e1.uop = uopAt(10);
    SliceEntry e2;
    e2.uop = uopAt(5); // drains later, but is older
    sdb.push(e1);
    sdb.push(e2);
    EXPECT_EQ(sdb.front().uop.seq, 5u);
    sdb.pop();
    EXPECT_EQ(sdb.front().uop.seq, 10u);
}

TEST(Sdb, SquashAfterDropsYoung)
{
    SliceDataBuffer sdb({16});
    for (SeqNum s : {1u, 5u, 9u}) {
        SliceEntry e;
        e.uop = uopAt(s);
        sdb.push(e);
    }
    sdb.squashAfter(5);
    EXPECT_EQ(sdb.size(), 2u);
    sdb.squashAfter(0);
    EXPECT_TRUE(sdb.empty());
}

TEST(SdbDeathTest, DuplicateDrainPanics)
{
    SliceDataBuffer sdb({16});
    SliceEntry e;
    e.uop = uopAt(3);
    sdb.push(e);
    EXPECT_DEATH(sdb.push(e), "duplicate");
}

TEST(Sdb, PeakSizeTracked)
{
    SliceDataBuffer sdb({16});
    for (SeqNum s : {1u, 2u, 3u}) {
        SliceEntry e;
        e.uop = uopAt(s);
        sdb.push(e);
    }
    sdb.pop();
    EXPECT_EQ(sdb.peak_size, 3u);
}

} // namespace
