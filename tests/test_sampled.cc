/**
 * @file
 * Golden restore-equivalence contract for sampled simulation.
 *
 * The whole point of `srlsim-ckpt-v1` is that a checkpoint is not an
 * approximation: restore-then-run must be *byte-identical* — stats
 * JSON and srlsim-trace-v1 trace — to the uninterrupted sampled run,
 * across every store-queue model, a deep-miss configuration, and a
 * rollback-heavy (snoopy) one. On top of that, fast-forwarding is
 * deterministic (same seed => same checkpoint digest), an all-detail
 * plan reproduces runOne exactly (the adopting-Processor refactor is
 * invisible), and a chain of shards covers a run with no overlap.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/snapshot.hh"
#include "runner/sampled.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;

/** Self-cleaning temp directory. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/srlsim-test-XXXXXX";
        EXPECT_NE(mkdtemp(tmpl), nullptr);
        path = tmpl;
    }

    ~TempDir()
    {
        if (DIR *d = opendir(path.c_str())) {
            while (const dirent *e = readdir(d)) {
                const std::string n = e->d_name;
                if (n != "." && n != "..")
                    std::remove((path + "/" + n).c_str());
            }
            closedir(d);
        }
        rmdir(path.c_str());
    }
};

/** The golden configurations the restore contract is pinned across. */
std::vector<std::pair<std::string, core::ProcessorConfig>>
goldenConfigs()
{
    std::vector<std::pair<std::string, core::ProcessorConfig>> cfgs;
    cfgs.emplace_back("srl", core::srlConfig());
    cfgs.emplace_back("baseline", core::baselineConfig());

    core::ProcessorConfig deep = core::srlConfig();
    deep.name = "srl-deep-miss";
    deep.memory.memory_latency = 2000;
    cfgs.emplace_back("deep-miss", std::move(deep));

    // External snoops force load-tracking violations and rollbacks,
    // and exercise the snoop RNG cursor carried across segments.
    core::ProcessorConfig snoopy = core::srlConfig();
    snoopy.name = "srl-rollback-heavy";
    snoopy.snoop_rate = 0.05;
    cfgs.emplace_back("rollback-heavy", std::move(snoopy));
    return cfgs;
}

runner::SampledOptions
planOpts()
{
    runner::SampledOptions opts;
    opts.plan.ff_uops = 6000;
    opts.plan.warm_uops = 2000;
    opts.plan.detail_uops = 4000;
    return opts;
}

constexpr std::uint64_t kTotal = 60000; // 5 intervals of 12000
constexpr std::uint64_t kSeed = 777;

std::string
recordJson(const stats::RunRecord &rec)
{
    stats::StatsReport rep;
    rep.runs.push_back(rec);
    return rep.toJson();
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(Sampled, RestoreThenRunIsByteIdenticalToStraightRun)
{
    const auto suite = workload::suiteProfile("SFP2K");
    for (const auto &[label, cfg] : goldenConfigs()) {
        SCOPED_TRACE(label);
        TempDir dir;

        // Straight sampled run, checkpointing every interval and
        // tracing interval 3.
        runner::SampledOptions full = planOpts();
        full.ckpt_dir = dir.path;
        full.trace_interval = 3;
        const auto r_full =
            runner::runSampled(cfg, suite, kTotal, kSeed, full);
        ASSERT_EQ(r_full.ckpts_saved.size(), 5u);
        ASSERT_FALSE(r_full.trace_json.empty());

        // Sharded: restore checkpoint 3 and run the tail.
        runner::SampledOptions shard = planOpts();
        shard.ckpt_dir = dir.path;
        shard.shard_start = 3;
        shard.trace_interval = 3;
        const auto r_shard =
            runner::runSampled(cfg, suite, kTotal, kSeed, shard);

        // Byte-identical aggregate stats JSON: the checkpoint carries
        // the accumulated intervals, so the tail shard's final record
        // IS the full run's record.
        EXPECT_EQ(recordJson(r_full.record),
                  recordJson(r_shard.record));
        // Byte-identical srlsim-trace-v1 trace of the restored
        // interval.
        EXPECT_EQ(r_full.trace_json, r_shard.trace_json);
        // And the final simulator state digests agree.
        EXPECT_EQ(r_full.final_digest.lo, r_shard.final_digest.lo);
        EXPECT_EQ(r_full.final_digest.hi, r_shard.final_digest.hi);
    }
}

TEST(Sampled, FastForwardIsDeterministic)
{
    const auto suite = workload::suiteProfile("MM");
    const core::ProcessorConfig cfg = core::srlConfig();

    TempDir da, db;
    runner::SampledOptions a = planOpts();
    a.ckpt_dir = da.path;
    runner::SampledOptions b = planOpts();
    b.ckpt_dir = db.path;

    const auto ra = runner::runSampled(cfg, suite, kTotal, kSeed, a);
    const auto rb = runner::runSampled(cfg, suite, kTotal, kSeed, b);

    // Same seed => same final state digest and byte-identical
    // checkpoint files (same canonical names, same contents).
    EXPECT_EQ(ra.final_digest.lo, rb.final_digest.lo);
    EXPECT_EQ(ra.final_digest.hi, rb.final_digest.hi);
    ASSERT_EQ(ra.ckpts_saved.size(), rb.ckpts_saved.size());
    for (std::size_t i = 0; i < ra.ckpts_saved.size(); ++i) {
        EXPECT_EQ(ra.ckpts_saved[i].substr(da.path.size()),
                  rb.ckpts_saved[i].substr(db.path.size()));
        EXPECT_EQ(slurp(ra.ckpts_saved[i]), slurp(rb.ckpts_saved[i]));
    }

    // A different seed diverges.
    const auto rc =
        runner::runSampled(cfg, suite, kTotal, kSeed + 1, planOpts());
    EXPECT_FALSE(rc.final_digest.lo == ra.final_digest.lo &&
                 rc.final_digest.hi == ra.final_digest.hi);
}

TEST(Sampled, AllDetailPlanReproducesRunOneExactly)
{
    // With ff=warm=0 and one detail interval covering the whole run,
    // the sampled driver is runOne modulo the adopting-Processor
    // plumbing — which must be invisible.
    const auto suite = workload::suiteProfile("SFP2K");
    for (const auto &[label, cfg] : goldenConfigs()) {
        SCOPED_TRACE(label);
        runner::SampledOptions opts;
        opts.plan.detail_uops = 20000;
        const auto sampled =
            runner::runSampled(cfg, suite, 20000, kSeed, opts);
        const auto direct = core::runOne(cfg, suite, 20000, kSeed);

        const core::ProcessorStats &a = sampled.stats;
        const core::ProcessorStats &b = direct.stats;
#define SRLSIM_EXPECT_FIELD(f) EXPECT_EQ(a.f, b.f) << #f
        SRLSIM_EXPECT_FIELD(cycles);
        SRLSIM_EXPECT_FIELD(committed_uops);
        SRLSIM_EXPECT_FIELD(committed_loads);
        SRLSIM_EXPECT_FIELD(committed_stores);
        SRLSIM_EXPECT_FIELD(slice_uops);
        SRLSIM_EXPECT_FIELD(poisoned_stores);
        SRLSIM_EXPECT_FIELD(redone_stores);
        SRLSIM_EXPECT_FIELD(srl_stalled_loads);
        SRLSIM_EXPECT_FIELD(indexed_forwards);
        SRLSIM_EXPECT_FIELD(mem_violations);
        SRLSIM_EXPECT_FIELD(snoop_violations);
        SRLSIM_EXPECT_FIELD(overflow_violations);
        SRLSIM_EXPECT_FIELD(branch_mispredicts);
        SRLSIM_EXPECT_FIELD(mem_misses);
        SRLSIM_EXPECT_FIELD(fc_writebacks);
        SRLSIM_EXPECT_FIELD(redo_phase_misses);
        SRLSIM_EXPECT_FIELD(temp_update_stalls);
#undef SRLSIM_EXPECT_FIELD
    }
}

TEST(Sampled, ShardChainCoversTheRunWithoutOverlap)
{
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();
    TempDir dir;

    // Reference: one straight sampled run (no checkpoint I/O).
    const auto r_full =
        runner::runSampled(cfg, suite, kTotal, kSeed, planOpts());

    // Chain: [0,2) -> [2,4) -> [4,5); each shard leaves the next
    // shard's entry checkpoint behind.
    runner::SampledOptions s0 = planOpts();
    s0.ckpt_dir = dir.path;
    s0.shard_start = 0;
    s0.shard_count = 2;
    const auto r0 = runner::runSampled(cfg, suite, kTotal, kSeed, s0);
    EXPECT_EQ(r0.intervals_run, 2u);

    runner::SampledOptions s1 = s0;
    s1.shard_start = 2;
    const auto r1 = runner::runSampled(cfg, suite, kTotal, kSeed, s1);
    EXPECT_EQ(r1.intervals_run, 2u);

    runner::SampledOptions s2 = s0;
    s2.shard_start = 4;
    const auto r2 = runner::runSampled(cfg, suite, kTotal, kSeed, s2);
    EXPECT_EQ(r2.intervals_run, 1u);

    // The last shard's aggregate equals the straight run's.
    EXPECT_EQ(recordJson(r_full.record), recordJson(r2.record));
    EXPECT_EQ(r_full.final_digest.lo, r2.final_digest.lo);
    EXPECT_EQ(r_full.final_digest.hi, r2.final_digest.hi);
}

TEST(Sampled, ShardingNeverSilentlyFallsBackToFastForward)
{
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();

    // No checkpoint directory at all: malformed request.
    runner::SampledOptions no_dir = planOpts();
    no_dir.shard_start = 2;
    EXPECT_THROW(
        runner::runSampled(cfg, suite, kTotal, kSeed, no_dir),
        std::invalid_argument);

    // Directory present but checkpoint absent: hard error, never a
    // quiet re-fast-forward.
    TempDir dir;
    runner::SampledOptions missing = planOpts();
    missing.ckpt_dir = dir.path;
    missing.shard_start = 2;
    EXPECT_THROW(
        runner::runSampled(cfg, suite, kTotal, kSeed, missing),
        core::SnapshotError);

    // A malformed plan is rejected too.
    runner::SampledOptions bad;
    bad.plan.detail_uops = 0;
    EXPECT_THROW(runner::runSampled(cfg, suite, kTotal, kSeed, bad),
                 std::invalid_argument);
    runner::SampledOptions far = planOpts();
    far.ckpt_dir = dir.path;
    far.shard_start = 99;
    EXPECT_THROW(runner::runSampled(cfg, suite, kTotal, kSeed, far),
                 std::invalid_argument);
}

TEST(Sampled, RetentionPrunesIntervalsButPinsTheHandoff)
{
    // ckpt_keep_last bounds the on-disk interval checkpoints of one
    // run, but the shard-handoff checkpoint — the next shard's entry
    // point — must survive any K, or a bounded-retention shard chain
    // could never be resumed.
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();
    TempDir dir;

    runner::SampledOptions head = planOpts();
    head.ckpt_dir = dir.path;
    head.shard_start = 0;
    head.shard_count = 3;
    head.ckpt_keep_last = 1;
    const auto r_head =
        runner::runSampled(cfg, suite, kTotal, kSeed, head);
    // Entry checkpoints 0,1,2 written, plus the pinned handoff for
    // interval 3.
    ASSERT_EQ(r_head.ckpts_saved.size(), 4u);

    // Retention boundary: of the three prunable entry checkpoints
    // only the most recent (interval 2) survives, and the handoff is
    // untouched — exactly two files on disk.
    std::size_t remaining = 0;
    if (DIR *d = opendir(dir.path.c_str())) {
        while (const dirent *e = readdir(d)) {
            const std::string n = e->d_name;
            if (n != "." && n != "..")
                ++remaining;
        }
        closedir(d);
    }
    EXPECT_EQ(remaining, 2u);

    // The tail shard restores from the pinned handoff and matches the
    // straight run — retention never breaks the chain.
    runner::SampledOptions tail = planOpts();
    tail.ckpt_dir = dir.path;
    tail.shard_start = 3;
    const auto r_tail =
        runner::runSampled(cfg, suite, kTotal, kSeed, tail);
    const auto r_full =
        runner::runSampled(cfg, suite, kTotal, kSeed, planOpts());
    EXPECT_EQ(recordJson(r_full.record), recordJson(r_tail.record));
    EXPECT_EQ(r_full.final_digest.lo, r_tail.final_digest.lo);
    EXPECT_EQ(r_full.final_digest.hi, r_tail.final_digest.hi);
}

TEST(Sampled, WarmingActuallyWarms)
{
    // The warm span exists to cut cold-start misses in the detailed
    // interval; verify it measurably does (otherwise the warming hooks
    // have rotted into no-ops).
    const auto suite = workload::suiteProfile("SFP2K");
    const core::ProcessorConfig cfg = core::srlConfig();

    runner::SampledOptions cold;
    cold.plan.ff_uops = 40000;
    cold.plan.warm_uops = 0;
    cold.plan.detail_uops = 10000;
    runner::SampledOptions warm;
    warm.plan.ff_uops = 20000;
    warm.plan.warm_uops = 20000;
    warm.plan.detail_uops = 10000;

    const auto r_cold =
        runner::runSampled(cfg, suite, 50000, kSeed, cold);
    const auto r_warm =
        runner::runSampled(cfg, suite, 50000, kSeed, warm);
    EXPECT_LT(r_warm.stats.branch_mispredicts,
              r_cold.stats.branch_mispredicts);
}

} // namespace
