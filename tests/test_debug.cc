/**
 * @file
 * Unit tests for the runtime debug-tracing facility: flag parsing,
 * enable/disable semantics, and name round-trips.
 */

#include <gtest/gtest.h>

#include "common/debug.hh"

namespace
{

using namespace srl::debug;

class DebugFlags : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        initFromEnvironment(); // consume any env config first
        clearAll();
    }
    void TearDown() override { clearAll(); }
};

TEST_F(DebugFlags, DisabledByDefault)
{
    EXPECT_FALSE(isEnabled(Flag::kSrl));
    EXPECT_FALSE(isEnabled(Flag::kRollback));
}

TEST_F(DebugFlags, SetAndClear)
{
    setFlag(Flag::kSrl, true);
    EXPECT_TRUE(isEnabled(Flag::kSrl));
    EXPECT_FALSE(isEnabled(Flag::kLcf));
    setFlag(Flag::kSrl, false);
    EXPECT_FALSE(isEnabled(Flag::kSrl));
}

TEST_F(DebugFlags, EnableFromList)
{
    EXPECT_EQ(enableFromList("Srl,Rollback,Commit"), 3u);
    EXPECT_TRUE(isEnabled(Flag::kSrl));
    EXPECT_TRUE(isEnabled(Flag::kRollback));
    EXPECT_TRUE(isEnabled(Flag::kCommit));
    EXPECT_FALSE(isEnabled(Flag::kFetch));
}

TEST_F(DebugFlags, UnknownNamesSkipped)
{
    EXPECT_EQ(enableFromList("NotAFlag,Srl,"), 1u);
    EXPECT_TRUE(isEnabled(Flag::kSrl));
}

TEST_F(DebugFlags, NamesRoundTrip)
{
    EXPECT_STREQ(flagName(Flag::kSrl), "Srl");
    EXPECT_STREQ(flagName(Flag::kLoadBuffer), "LoadBuffer");
    EXPECT_STREQ(flagName(Flag::kCheckpoint), "Checkpoint");
}

TEST_F(DebugFlags, TracefDoesNotCrash)
{
    setFlag(Flag::kSrl, true);
    tracef(Flag::kSrl, "hello %d %s", 42, "world");
}

} // namespace
