/**
 * @file
 * Parameterized property tests (TEST_P sweeps): each structure is
 * driven with randomized operation streams across a grid of geometries
 * and checked against a simple oracle model of its specification —
 * CAM forwarding select vs. a program-order map, the counting Bloom
 * filter's no-false-negative guarantee, cache LRU contents vs. a list
 * model, the forwarding cache vs. per-byte program-order values, the
 * load buffer's violation predicate vs. an exhaustive check, and
 * StoreId's wrap-around compare vs. unbounded arithmetic. Finally, a
 * stress sweep runs the whole machine with deliberately tiny
 * structures against the functional reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "common/random.hh"
#include "core/processor.hh"
#include "core/simulator.hh"
#include "lsq/counting_bloom.hh"
#include "lsq/fwd_cache.hh"
#include "lsq/load_buffer.hh"
#include "lsq/store_id.hh"
#include "lsq/store_queue.hh"
#include "memsys/cache.hh"
#include "workload/generator.hh"

namespace
{

using namespace srl;

// ----------------------------------------------------- StoreQueue oracle

class StoreQueueProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StoreQueueProperty, ForwardMatchesOracle)
{
    const unsigned cap = GetParam();
    lsq::StoreQueue q({"p", cap, 3});
    lsq::StoreIdAllocator ids(1u << 20);
    Random rng(cap * 7 + 1);

    struct OracleStore
    {
        SeqNum seq;
        Addr addr;
        unsigned size;
        std::uint64_t data;
        bool executed;
    };
    std::vector<OracleStore> oracle;

    SeqNum next_seq = 1;
    for (int step = 0; step < 4000; ++step) {
        const double roll = rng.real();
        if (roll < 0.35 && !q.full()) {
            const SeqNum s = next_seq++;
            q.allocate(s, ids.allocate(), 0);
            oracle.push_back({s, 0, 0, 0, false});
        } else if (roll < 0.6) {
            // Execute a random unexecuted store.
            std::vector<std::size_t> cand;
            for (std::size_t i = 0; i < oracle.size(); ++i)
                if (!oracle[i].executed)
                    cand.push_back(i);
            if (!cand.empty()) {
                auto &o = oracle[cand[rng.below(cand.size())]];
                const unsigned size = 1u << rng.below(4);
                const Addr addr =
                    0x1000 + rng.below(64) * 8 +
                    (size == 8 ? 0 : rng.below(8 / size) * size);
                const std::uint64_t data = rng.next64();
                q.writeAddrData(o.seq, addr,
                                static_cast<std::uint8_t>(size), data);
                o.addr = addr;
                o.size = size;
                o.data = data;
                o.executed = true;
            }
        } else if (roll < 0.75 && !q.empty() &&
                   q.head().data_valid) {
            q.popHead();
            oracle.erase(oracle.begin());
        } else {
            // Probe with a random load and compare against the oracle.
            const unsigned size = 1u << rng.below(4);
            const Addr addr =
                0x1000 + rng.below(64) * 8 +
                (size == 8 ? 0 : rng.below(8 / size) * size);
            const SeqNum load_seq = next_seq; // younger than all stores
            const auto r = q.forward(load_seq, addr,
                                     static_cast<std::uint8_t>(size));

            // Oracle: youngest executed store older than the load that
            // overlaps; forward iff it covers.
            const OracleStore *best = nullptr;
            for (const auto &o : oracle) {
                if (o.executed &&
                    lsq::bytesOverlap(o.addr, o.size, addr, size))
                    best = &o; // oracle is in seq order: keep youngest
            }
            if (!best) {
                ASSERT_EQ(r.outcome, lsq::ForwardOutcome::kNoMatch);
            } else if (lsq::bytesCover(best->addr, best->size, addr,
                                       size)) {
                ASSERT_EQ(r.outcome, lsq::ForwardOutcome::kForward);
                ASSERT_EQ(r.store_seq, best->seq);
                const unsigned shift =
                    static_cast<unsigned>(addr - best->addr) * 8;
                const std::uint64_t expect =
                    size >= 8 ? best->data >> shift
                              : ((best->data >> shift) &
                                 ((1ull << (8 * size)) - 1));
                ASSERT_EQ(r.data, expect);
            } else {
                ASSERT_EQ(r.outcome, lsq::ForwardOutcome::kBlocked);
                ASSERT_EQ(r.store_seq, best->seq);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, StoreQueueProperty,
                         ::testing::Values(4u, 16u, 48u, 128u));

// --------------------------------------------------- CountingBloom sweep

using BloomParam = std::tuple<unsigned, unsigned, lsq::HashScheme>;

class BloomProperty : public ::testing::TestWithParam<BloomParam>
{
};

TEST_P(BloomProperty, NeverFalseNegative)
{
    const auto [entries, bits, scheme] = GetParam();
    lsq::CountingBloom bloom(entries, bits, scheme);
    Random rng(entries + bits);

    std::multiset<Addr> live;
    for (int step = 0; step < 5000; ++step) {
        if (live.empty() || rng.chance(0.55)) {
            const Addr a = rng.below(1u << 14) * 8;
            if (bloom.increment(a))
                live.insert(a);
        } else {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            bloom.decrement(*it);
            live.erase(it);
        }
        // Property: every live member must report mayContain.
        if (step % 50 == 0) {
            for (const Addr a : live)
                ASSERT_TRUE(bloom.mayContain(a));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BloomProperty,
    ::testing::Combine(
        ::testing::Values(64u, 256u, 2048u),
        ::testing::Values(2u, 6u),
        ::testing::Values(lsq::HashScheme::kLowerAddressBits,
                          lsq::HashScheme::kThreePieceXor)));

// -------------------------------------------------------- Cache LRU sweep

using CacheParam = std::tuple<unsigned, unsigned>; // sets x ways

class CacheLruProperty : public ::testing::TestWithParam<CacheParam>
{
};

TEST_P(CacheLruProperty, ContentsMatchListModel)
{
    const auto [sets, ways] = GetParam();
    memsys::Cache c({"p", sets * ways * 64ull, ways, 64, 1});

    // Oracle: per set, an LRU-ordered list of tags.
    std::vector<std::list<Addr>> model(sets);
    Random rng(sets * 31 + ways);

    for (int step = 0; step < 6000; ++step) {
        const Addr line = rng.below(sets * ways * 4) * 64ull;
        const unsigned set =
            static_cast<unsigned>((line / 64) % sets);
        c.access(line, rng.chance(0.3));

        auto &l = model[set];
        const auto it = std::find(l.begin(), l.end(), line);
        if (it != l.end())
            l.erase(it);
        l.push_front(line);
        if (l.size() > ways)
            l.pop_back();

        // Property: cache contents == model contents.
        if (step % 97 == 0) {
            for (const Addr a : l)
                ASSERT_TRUE(c.probe(a)) << std::hex << a;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheLruProperty,
                         ::testing::Combine(::testing::Values(4u, 16u),
                                            ::testing::Values(1u, 2u,
                                                              8u)));

// -------------------------------------------------- ForwardingCache sweep

using FcParam = std::tuple<unsigned, unsigned>;

class FwdCacheProperty : public ::testing::TestWithParam<FcParam>
{
};

TEST_P(FwdCacheProperty, HitsReturnProgramOrderBytes)
{
    const auto [entries, assoc] = GetParam();
    lsq::ForwardingCache fc({entries, assoc});
    lsq::StoreIdAllocator ids(1u << 20);
    Random rng(entries * 3 + assoc);

    // Oracle: per byte address, the (id, value) of its program-
    // youngest writer among all stores issued so far.
    struct ByteVal
    {
        std::uint64_t abs;
        std::uint8_t value;
    };
    std::map<Addr, ByteVal> bytes;

    // Stores update the FC in program order, as the machine does
    // (L1 STQ head departures are in order).
    for (int step = 0; step < 3000; ++step) {
        if (rng.chance(0.6)) {
            const unsigned size = 1u << rng.below(4);
            const Addr addr =
                0x2000 + rng.below(96) * 8 +
                (size == 8 ? 0 : rng.below(8 / size) * size);
            const lsq::StoreId id = ids.allocate();
            const std::uint64_t data = rng.next64();
            for (unsigned i = 0; i < size; ++i) {
                auto &b = bytes[addr + i];
                if (b.abs < id.abs) {
                    b.abs = id.abs;
                    b.value =
                        static_cast<std::uint8_t>(data >> (8 * i));
                }
            }
            fc.storeUpdate(addr, static_cast<std::uint8_t>(size), data,
                           id);
        }
        // Probe. The strong property — a full-word hit returns exactly
        // the program-order-youngest byte values — holds while no live
        // entry has been evicted: an eviction may drop a younger
        // store's bytes, which the *machine* tolerates because the LCF
        // still counts that store and the load buffer catches any load
        // that consumed stale data (the paper's eviction-risk note).
        if (rng.chance(0.3)) {
            const Addr addr = 0x2000 + rng.below(96) * 8;
            const auto hit = fc.load(addr, 8);
            if (hit && fc.liveEvictions.value() == 0) {
                for (unsigned i = 0; i < 8; ++i) {
                    const auto it = bytes.find(addr + i);
                    ASSERT_NE(it, bytes.end());
                    ASSERT_EQ(static_cast<std::uint8_t>(hit->data >>
                                                        (8 * i)),
                              it->second.value)
                        << std::hex << addr + i;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, FwdCacheProperty,
                         ::testing::Combine(::testing::Values(64u, 256u,
                                                              1024u),
                                            ::testing::Values(4u, 8u)));

// ----------------------------------------------------- LoadBuffer sweep

using LbParam = std::tuple<unsigned, unsigned, lsq::OverflowPolicy>;

class LoadBufferProperty : public ::testing::TestWithParam<LbParam>
{
};

TEST_P(LoadBufferProperty, ViolationPredicateMatchesOracle)
{
    const auto [entries, assoc, policy] = GetParam();
    lsq::SecondaryLoadBuffer buf({entries, assoc, policy, 8});
    lsq::StoreIdAllocator ids(1u << 20);
    Random rng(entries + assoc * 13);

    struct OracleLoad
    {
        SeqNum seq;
        Addr addr;
        unsigned size;
        std::uint64_t nearest_abs;
        std::uint64_t fwd_abs; // 0 = none
        bool tracked;          // survived insertion (no overflow)
    };
    std::vector<OracleLoad> loads;
    SeqNum next_seq = 1;

    for (int step = 0; step < 3000; ++step) {
        // Advance the store id stream sometimes.
        if (rng.chance(0.4))
            ids.allocate();

        if (rng.chance(0.5)) {
            const unsigned size = 1u << rng.below(4);
            const Addr addr =
                0x3000 + rng.below(48) * 8 +
                (size == 8 ? 0 : rng.below(8 / size) * size);
            const lsq::StoreId nearest = ids.lastAllocated();
            // Sometimes the load "forwarded" from a store at or before
            // its nearest.
            lsq::StoreId fwd = lsq::kNullStoreId;
            if (!lsq::isNullStoreId(nearest) && rng.chance(0.4)) {
                fwd = nearest;
                fwd.abs -= rng.below(
                    static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(nearest.abs, 5)));
                // Recompute ring fields for the adjusted abs.
                fwd.index = static_cast<std::uint32_t>((fwd.abs - 1) %
                                                       (1u << 20));
                fwd.wrap = false;
            }
            const SeqNum s = next_seq++;
            const auto ins =
                buf.insert(s, static_cast<CheckpointId>(s % 8), addr,
                           static_cast<std::uint8_t>(size), nearest,
                           fwd);
            loads.push_back({s, addr, size, nearest.abs,
                             lsq::isNullStoreId(fwd) ? 0 : fwd.abs,
                             !ins.overflowed});
        } else if (ids.any()) {
            // A store with a random live-ish id completes: compare the
            // buffer's verdict with an exhaustive oracle.
            lsq::StoreId sid = ids.lastAllocated();
            const std::uint64_t back =
                rng.below(static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(sid.abs, 6)));
            sid.abs -= back;
            sid.index =
                static_cast<std::uint32_t>((sid.abs - 1) % (1u << 20));
            const unsigned size = 1u << rng.below(4);
            const Addr addr =
                0x3000 + rng.below(48) * 8 +
                (size == 8 ? 0 : rng.below(8 / size) * size);

            const auto v = buf.storeCheck(sid, addr,
                                          static_cast<std::uint8_t>(
                                              size));

            std::optional<SeqNum> oracle;
            for (const auto &l : loads) {
                if (!l.tracked)
                    continue;
                if (!lsq::bytesOverlap(l.addr, l.size, addr, size))
                    continue;
                if (sid.abs > l.nearest_abs)
                    continue; // store younger than the load
                if (l.fwd_abs >= sid.abs && l.fwd_abs != 0)
                    continue; // got data from this store or newer
                if (!oracle || l.seq < *oracle)
                    oracle = l.seq;
            }
            if (oracle) {
                ASSERT_TRUE(v.has_value());
                ASSERT_EQ(v->load_seq, *oracle);
            } else {
                ASSERT_FALSE(v.has_value());
            }
        }

        // Occasionally commit a checkpoint (bulk reset).
        if (rng.chance(0.02) && !loads.empty()) {
            const CheckpointId ck =
                static_cast<CheckpointId>(rng.below(8));
            buf.clearCheckpoint(ck);
            for (auto &l : loads)
                if (static_cast<CheckpointId>(l.seq % 8) == ck)
                    l.tracked = false;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LoadBufferProperty,
    ::testing::Combine(
        ::testing::Values(64u, 256u, 1024u),
        ::testing::Values(4u, 8u),
        ::testing::Values(lsq::OverflowPolicy::kVictimBuffer,
                          lsq::OverflowPolicy::kViolate)));

// ------------------------------------------------------ StoreId property

TEST(StoreIdProperty, HardwareCompareMatchesArithmeticWithinRing)
{
    for (const unsigned ring : {4u, 64u, 1024u}) {
        lsq::StoreIdAllocator ids(ring);
        std::vector<lsq::StoreId> window;
        Random rng(ring);
        for (int i = 0; i < 5000; ++i) {
            window.push_back(ids.allocate());
            // Keep the live window strictly inside one ring span.
            while (window.size() >= ring)
                window.erase(window.begin());
            // Compare random live pairs.
            const auto &a = window[rng.below(window.size())];
            const auto &b = window[rng.below(window.size())];
            ASSERT_EQ(lsq::allocatedBefore(a, b), a.abs < b.abs);
        }
    }
}

// ----------------------------------------- whole-machine stress configs

struct TinyParam
{
    const char *name;
    unsigned stq;
    unsigned srl;
    unsigned lcf;
    unsigned fc_entries;
    unsigned load_buffer;
};

class TinyMachine : public ::testing::TestWithParam<TinyParam>
{
};

TEST_P(TinyMachine, StillSequential)
{
    const auto p = GetParam();
    auto cfg = core::srlConfig();
    cfg.stq.capacity = p.stq;
    cfg.srl.srl.capacity = p.srl;
    cfg.srl.lcf.entries = p.lcf;
    cfg.srl.fwd_cache.entries = p.fc_entries;
    cfg.load_buffer.entries = p.load_buffer;

    const auto suite = workload::suiteProfile("SFP2K");
    const std::uint64_t uops = 12000;

    workload::Generator ref_gen(suite, uops, 99);
    core::ReferenceExecutor ref;
    ref.run(ref_gen);

    workload::Generator gen(suite, uops, 99);
    core::Processor cpu(cfg, gen);
    cpu.setLoadCommitHook([&](SeqNum seq, Addr, unsigned,
                              std::uint64_t value) {
        ASSERT_EQ(value, ref.loadValue(seq)) << "seq " << seq;
    });
    cpu.run(80'000'000);
    ASSERT_TRUE(cpu.done()) << p.name;
    EXPECT_EQ(cpu.stats().committed_uops, uops);
}

INSTANTIATE_TEST_SUITE_P(
    Tiny, TinyMachine,
    ::testing::Values(
        TinyParam{"tiny_stq", 4, 1024, 2048, 256, 1024},
        TinyParam{"tiny_srl", 48, 64, 2048, 256, 1024},
        TinyParam{"tiny_lcf", 48, 1024, 32, 256, 1024},
        TinyParam{"tiny_fc", 48, 1024, 2048, 16, 1024},
        TinyParam{"tiny_ldbuf", 48, 1024, 2048, 256, 64},
        TinyParam{"tiny_all", 8, 128, 64, 32, 128}),
    [](const auto &info) { return info.param.name; });

} // namespace
