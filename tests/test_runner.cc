/**
 * @file
 * Tests for the parallel sweep runner: the thread pool itself,
 * determinism of reports across thread counts, per-run seed
 * derivation/isolation, and failure containment (one throwing run
 * must not poison the pool or other runs).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "runner/sweep.hh"
#include "runner/thread_pool.hh"

namespace
{

using namespace srl;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEverySubmittedJob)
{
    runner::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    runner::ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, JobsRunConcurrently)
{
    // Four 100 ms sleeps on four workers must overlap: even on a
    // single hardware thread, sleeping jobs yield, so anything well
    // under the 400 ms serial time proves concurrent execution.
    runner::ThreadPool pool(4);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 4; ++i) {
        pool.submit([] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        });
    }
    pool.wait();
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    EXPECT_LT(elapsed, 0.35);
}

TEST(ThreadPool, ThrowingJobDoesNotKillWorkers)
{
    runner::ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&count, i] {
            if (i % 3 == 0)
                throw std::runtime_error("boom");
            ++count;
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 13); // 20 minus the 7 throwers

    // The pool is still usable afterwards.
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 14);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    runner::ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 10);
    }
}

// ----------------------------------------------------------- seed derive

TEST(SweepSeed, ZeroBaseStaysZero)
{
    EXPECT_EQ(runner::deriveRunSeed(0, 0), 0u);
    EXPECT_EQ(runner::deriveRunSeed(0, 17), 0u);
}

TEST(SweepSeed, NonZeroBaseGivesDistinctNonZeroSeeds)
{
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 1000; ++i) {
        const auto s = runner::deriveRunSeed(42, i);
        EXPECT_NE(s, 0u);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 1000u);

    // Different bases give different streams.
    EXPECT_NE(runner::deriveRunSeed(42, 0), runner::deriveRunSeed(43, 0));
}

// ------------------------------------------------------------- runTasks

TEST(RunTasks, RecordsLandInTaskOrder)
{
    // Tasks finishing in reverse order must still report in order.
    std::vector<runner::Task> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back({"t" + std::to_string(i),
                         [i](std::uint64_t) {
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(
                                     (8 - i) * 5));
                             stats::RunRecord r;
                             r.set("index", i);
                             return r;
                         }});
    }
    runner::SweepOptions opts;
    opts.jobs = 4;
    const auto rep = runner::runTasks(tasks, opts);
    ASSERT_EQ(rep.runs.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(rep.runs[i].name, "t" + std::to_string(i));
        EXPECT_DOUBLE_EQ(rep.runs[i].metric("index"), i);
    }
}

TEST(RunTasks, ExceptionInOneRunDoesNotPoisonOthers)
{
    std::vector<runner::Task> tasks;
    for (int i = 0; i < 6; ++i) {
        tasks.push_back({"t" + std::to_string(i),
                         [i](std::uint64_t) -> stats::RunRecord {
                             if (i == 2)
                                 throw std::runtime_error("run 2 died");
                             if (i == 4)
                                 throw 99; // non-std exception
                             stats::RunRecord r;
                             r.set("ok", 1);
                             return r;
                         }});
    }
    runner::SweepOptions opts;
    opts.jobs = 3;
    const auto rep = runner::runTasks(tasks, opts);
    ASSERT_EQ(rep.runs.size(), 6u);
    EXPECT_TRUE(rep.runs[2].failed());
    EXPECT_EQ(rep.runs[2].error, "run 2 died");
    EXPECT_EQ(rep.runs[2].name, "t2"); // name survives the failure
    EXPECT_TRUE(rep.runs[4].failed());
    EXPECT_EQ(rep.runs[4].error, "unknown exception");
    for (const int i : {0, 1, 3, 5}) {
        EXPECT_FALSE(rep.runs[i].failed());
        EXPECT_DOUBLE_EQ(rep.runs[i].metric("ok"), 1.0);
    }
}

TEST(RunTasks, TasksSeeDerivedSeeds)
{
    std::vector<runner::Task> tasks;
    for (int i = 0; i < 4; ++i) {
        tasks.push_back({"t", [](std::uint64_t seed) {
                             stats::RunRecord r;
                             r.set("seed",
                                   static_cast<double>(seed & 0xffffff));
                             return r;
                         }});
    }
    runner::SweepOptions opts;
    opts.jobs = 2;
    opts.seed = 7;
    const auto rep = runner::runTasks(tasks, opts);
    for (int i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(
            rep.runs[i].metric("seed"),
            static_cast<double>(runner::deriveRunSeed(7, i) & 0xffffff));
    }
}

// ---------------------------------------------------- simulation sweeps

std::vector<runner::SweepPoint>
smallSweep(std::uint64_t uops = 12000)
{
    const auto suite = workload::suiteProfile("PROD");
    std::vector<runner::SweepPoint> points;
    points.push_back({"baseline", core::baselineConfig(), suite, uops});
    points.push_back({"srl", core::srlConfig(), suite, uops});
    {
        auto cfg = core::srlConfig();
        cfg.srl.srl.capacity = 256;
        points.push_back({"srl-256", cfg, suite, uops});
    }
    points.push_back({"hier", core::hierarchicalConfig(), suite, uops});
    return points;
}

TEST(RunSweep, ByteIdenticalAcrossThreadCounts)
{
    const auto points = smallSweep();
    runner::SweepOptions one;
    one.jobs = 1;
    one.seed = 42;
    runner::SweepOptions four;
    four.jobs = 4;
    four.seed = 42;

    const std::string j1 = runner::runSweep(points, one).toJson();
    const std::string j4 = runner::runSweep(points, four).toJson();
    EXPECT_EQ(j1, j4);

    const std::string c1 = runner::runSweep(points, one).toCsv();
    const std::string c4 = runner::runSweep(points, four).toCsv();
    EXPECT_EQ(c1, c4);
}

TEST(RunSweep, BaseSeedPerturbsRunsIndependently)
{
    // Two copies of the same point: with a non-zero base seed they get
    // different derived seeds and must diverge; with base seed 0 both
    // use the suite's canonical seed and must agree.
    const auto suite = workload::suiteProfile("PROD");
    std::vector<runner::SweepPoint> twin = {
        {"a", core::srlConfig(), suite, 12000},
        {"b", core::srlConfig(), suite, 12000},
    };

    runner::SweepOptions seeded;
    seeded.jobs = 2;
    seeded.seed = 42;
    const auto rep = runner::runSweep(twin, seeded);
    EXPECT_NE(rep.runs[0].metric("cycles"),
              rep.runs[1].metric("cycles"))
        << "distinct derived seeds should give distinct dynamics";

    runner::SweepOptions canonical;
    canonical.jobs = 2;
    const auto rep0 = runner::runSweep(twin, canonical);
    EXPECT_EQ(rep0.runs[0].metric("cycles"),
              rep0.runs[1].metric("cycles"));

    // And the same base seed reproduces the exact same report.
    const auto rep_again = runner::runSweep(twin, seeded);
    EXPECT_EQ(rep.toJson(), rep_again.toJson());
}

TEST(RunSweep, CanonicalSeedMatchesDirectRunOne)
{
    // With base seed 0 the runner must reproduce exactly what a direct
    // single-threaded runOne() call produces.
    const auto suite = workload::suiteProfile("PROD");
    const auto direct =
        core::runOne(core::srlConfig(), suite, 12000);

    std::vector<runner::SweepPoint> points = {
        {"srl", core::srlConfig(), suite, 12000}};
    runner::SweepOptions opts;
    opts.jobs = 2;
    const auto rep = runner::runSweep(points, opts);
    EXPECT_DOUBLE_EQ(rep.runs[0].metric("ipc"), direct.ipc);
    EXPECT_DOUBLE_EQ(rep.runs[0].metric("cycles"),
                     static_cast<double>(direct.cycles));
}

TEST(RunSweep, ReportCarriesMetaAndOccupancySeries)
{
    const auto suite = workload::suiteProfile("SFP2K");
    std::vector<runner::SweepPoint> points = {
        {"srl", core::srlConfig(), suite, 12000}};
    runner::SweepOptions opts;
    opts.jobs = 1;
    opts.seed = 5;
    const auto rep = runner::runSweep(points, opts);
    EXPECT_EQ(rep.meta.at("seed"), "5");
    EXPECT_EQ(rep.meta.at("points"), "1");
    const auto &r = rep.runs[0];
    EXPECT_EQ(r.meta.at("config"), "srl");
    EXPECT_EQ(r.meta.at("suite"), "SFP2K");
    EXPECT_EQ(r.meta.at("run_seed"),
              std::to_string(runner::deriveRunSeed(5, 0)));
    EXPECT_TRUE(r.hasMetric("srl_occupancy_above_0"));
    EXPECT_TRUE(r.hasMetric("srl_occupancy_above_1024"));

    runner::SweepOptions no_series = opts;
    no_series.occupancy_series = false;
    const auto rep2 = runner::runSweep(points, no_series);
    EXPECT_FALSE(rep2.runs[0].hasMetric("srl_occupancy_above_0"));
}

TEST(MatrixPoints, ConfigMajorCrossProduct)
{
    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        configs = {{"base", core::baselineConfig()},
                   {"srl", core::srlConfig()}};
    const std::vector<workload::SuiteProfile> suites = {
        workload::suiteProfile("PROD"), workload::suiteProfile("WS")};
    const auto points = runner::matrixPoints(configs, suites, 1000);
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].name, "base/PROD");
    EXPECT_EQ(points[1].name, "base/WS");
    EXPECT_EQ(points[2].name, "srl/PROD");
    EXPECT_EQ(points[3].name, "srl/WS");
    EXPECT_EQ(points[3].uops, 1000u);
}

} // namespace
