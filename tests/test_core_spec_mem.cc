/**
 * @file
 * Unit tests for the speculative memory overlay: overlay-over-memory
 * reads, program-ordered commit to main memory, rollback rebuild, and
 * the byte-granular overwrite semantics.
 */

#include <gtest/gtest.h>

#include "core/spec_mem.hh"

namespace
{

using namespace srl;
using namespace srl::core;

TEST(SpecMem, ReadsFallThroughToMainMemory)
{
    memsys::MainMemory mem;
    mem.write(0x100, 8, 0x1111);
    SpeculativeMemory sm(mem);
    EXPECT_EQ(sm.read(0x100, 8), 0x1111u);
}

TEST(SpecMem, OverlayShadowsMainMemory)
{
    memsys::MainMemory mem;
    mem.write(0x100, 8, 0x1111);
    SpeculativeMemory sm(mem);
    sm.write(10, 0, 0x100, 8, 0x2222);
    EXPECT_EQ(sm.read(0x100, 8), 0x2222u);
    EXPECT_EQ(mem.read(0x100, 8), 0x1111u); // main memory untouched
}

TEST(SpecMem, PartialOverlayMerges)
{
    memsys::MainMemory mem;
    mem.write(0x100, 8, 0x8877665544332211ull);
    SpeculativeMemory sm(mem);
    sm.write(10, 0, 0x104, 4, 0xaabbccdd);
    EXPECT_EQ(sm.read(0x100, 8), 0xaabbccdd44332211ull);
}

TEST(SpecMem, CommitAppliesCheckpointPrefix)
{
    memsys::MainMemory mem;
    SpeculativeMemory sm(mem);
    sm.write(10, 0, 0x100, 8, 0xaa);
    sm.write(11, 0, 0x108, 8, 0xbb);
    sm.write(12, 1, 0x110, 8, 0xcc);
    sm.commitCheckpoint(0);
    EXPECT_EQ(mem.read(0x100, 8), 0xaau);
    EXPECT_EQ(mem.read(0x108, 8), 0xbbu);
    EXPECT_EQ(mem.read(0x110, 8), 0u); // ckpt 1 still speculative
    EXPECT_EQ(sm.read(0x110, 8), 0xccu);
    EXPECT_EQ(sm.pendingStores(), 1u);
}

TEST(SpecMem, ProgramOrderOverwriteWithinOverlay)
{
    memsys::MainMemory mem;
    SpeculativeMemory sm(mem);
    sm.write(10, 0, 0x100, 8, 0x1111);
    sm.write(11, 0, 0x100, 8, 0x2222);
    EXPECT_EQ(sm.read(0x100, 8), 0x2222u);
    sm.commitCheckpoint(0);
    EXPECT_EQ(mem.read(0x100, 8), 0x2222u);
    EXPECT_EQ(sm.pendingStores(), 0u);
}

TEST(SpecMem, RollbackRestoresOlderValue)
{
    memsys::MainMemory mem;
    SpeculativeMemory sm(mem);
    sm.write(10, 0, 0x100, 8, 0x1111);
    sm.write(20, 1, 0x100, 8, 0x2222);
    sm.rollback(15); // squash seq >= 15
    EXPECT_EQ(sm.read(0x100, 8), 0x1111u);
    EXPECT_EQ(sm.pendingStores(), 1u);
}

TEST(SpecMem, RollbackToZeroClearsEverything)
{
    memsys::MainMemory mem;
    mem.write(0x100, 8, 0x9999);
    SpeculativeMemory sm(mem);
    sm.write(0, 0, 0x100, 8, 0x1);
    sm.write(1, 0, 0x108, 8, 0x2);
    sm.rollback(0);
    EXPECT_EQ(sm.pendingStores(), 0u);
    EXPECT_EQ(sm.read(0x100, 8), 0x9999u);
}

TEST(SpecMem, PartialByteRollback)
{
    memsys::MainMemory mem;
    SpeculativeMemory sm(mem);
    sm.write(10, 0, 0x100, 8, 0x1111111111111111ull);
    sm.write(20, 0, 0x100, 2, 0xffff);
    EXPECT_EQ(sm.read(0x100, 8), 0x111111111111ffffull);
    sm.rollback(20);
    EXPECT_EQ(sm.read(0x100, 8), 0x1111111111111111ull);
}

TEST(SpecMemDeathTest, OutOfOrderDrainPanics)
{
    memsys::MainMemory mem;
    SpeculativeMemory sm(mem);
    sm.write(10, 0, 0x100, 8, 0x1);
    EXPECT_DEATH(sm.write(9, 0, 0x108, 8, 0x2), "program order");
}

} // namespace
