/**
 * @file
 * Unit tests for the uop-stream validator: clean generated streams and
 * recorded traces must validate; each invariant violation is detected.
 */

#include <gtest/gtest.h>

#include "isa/validate.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace
{

using namespace srl;
using isa::Uop;
using isa::UopClass;

Uop
okLoad(SeqNum seq)
{
    Uop u;
    u.seq = seq;
    u.cls = UopClass::kLoad;
    u.dst = 12;
    u.effAddr = 0x1000;
    u.memSize = 8;
    return u;
}

TEST(Validate, GeneratedStreamsAreClean)
{
    for (const auto &p : workload::suiteProfiles()) {
        workload::Generator g(p, 20000);
        const auto errors = isa::validateStream(g);
        EXPECT_TRUE(errors.empty())
            << p.name << ": " << errors.front().message;
    }
}

TEST(Validate, EmptyStreamFlagged)
{
    workload::SequenceStream s({});
    const auto errors = isa::validateStream(s);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].message.find("empty"), std::string::npos);
}

TEST(Validate, SequenceGapDetected)
{
    auto a = okLoad(0);
    auto b = okLoad(2); // gap
    workload::SequenceStream s({a, b});
    const auto errors = isa::validateStream(s);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].message.find("sequence"), std::string::npos);
}

TEST(Validate, UnalignedAccessDetected)
{
    auto a = okLoad(0);
    a.effAddr = 0x1003;
    a.memSize = 4;
    std::vector<isa::ValidationError> errors;
    isa::validateUop(a, 0, errors);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].message.find("unaligned"), std::string::npos);
}

TEST(Validate, BadSizeDetected)
{
    auto a = okLoad(0);
    a.memSize = 3;
    std::vector<isa::ValidationError> errors;
    isa::validateUop(a, 0, errors);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].message.find("size"), std::string::npos);
}

TEST(Validate, ClassFieldMismatches)
{
    Uop st;
    st.seq = 0;
    st.cls = UopClass::kStore;
    st.dst = 5; // stores must not write a register
    st.effAddr = 0x1000;
    st.memSize = 8;
    std::vector<isa::ValidationError> errors;
    isa::validateUop(st, 0, errors);
    ASSERT_FALSE(errors.empty());

    errors.clear();
    Uop alu;
    alu.seq = 0;
    alu.cls = UopClass::kIntAlu; // no destination
    isa::validateUop(alu, 0, errors);
    ASSERT_FALSE(errors.empty());
}

TEST(Validate, RegisterRangeChecked)
{
    auto a = okLoad(0);
    a.src1 = 70; // beyond kNumArchRegs, not the invalid marker
    std::vector<isa::ValidationError> errors;
    isa::validateUop(a, 0, errors);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].message.find("register"), std::string::npos);
}

TEST(Validate, ErrorCapRespected)
{
    std::vector<Uop> bad;
    for (int i = 0; i < 64; ++i)
        bad.push_back(okLoad(1000 + i)); // every seq wrong
    workload::SequenceStream s(std::move(bad));
    const auto errors = isa::validateStream(s, 8);
    EXPECT_LE(errors.size(), 9u); // 8 + the "stopped" marker
}

} // namespace
