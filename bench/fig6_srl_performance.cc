/**
 * @file
 * Figure 6 — SRL performance comparison: percent speedup over the
 * 48-entry-STQ baseline of (a) the SRL design (1K SRL + 2K LCF 3-PAX +
 * 256x4 forwarding cache + indexed forwarding), (b) the hierarchical
 * store queue (48 L1 + 1K/8-cycle CAM L2 + MTB), and (c) an ideal
 * 1K-entry 3-cycle store queue.
 *
 * All (config, suite) points run in one parallel sweep batch through
 * the runner (`--jobs N` controls workers; the default uses every
 * hardware thread).
 *
 * Expected shape (paper): SRL competitive with the hierarchical design
 * across suites, ahead on WS, slightly behind on SINT2K/WEB/MM/SERVER,
 * and within ~6% of the ideal STQ.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Figure 6: SRL vs hierarchical vs ideal "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        configs = {
            {"baseline", core::baselineConfig()},
            {"SRL", core::srlConfig()},
            {"Hierarchical STQ", core::hierarchicalConfig()},
            {"Ideal STQ", core::idealConfig()},
        };
    bench::runAndPrintSpeedups(configs, args, "fig6_srl_performance");
    return 0;
}
