/**
 * @file
 * Figure 6 — SRL performance comparison: percent speedup over the
 * 48-entry-STQ baseline of (a) the SRL design (1K SRL + 2K LCF 3-PAX +
 * 256x4 forwarding cache + indexed forwarding), (b) the hierarchical
 * store queue (48 L1 + 1K/8-cycle CAM L2 + MTB), and (c) an ideal
 * 1K-entry 3-cycle store queue.
 *
 * Expected shape (paper): SRL competitive with the hierarchical design
 * across suites, ahead on WS, slightly behind on SINT2K/WEB/MM/SERVER,
 * and within ~6% of the ideal STQ.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Figure 6: SRL vs hierarchical vs ideal "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<double> base_ipc;
    for (const auto &suite : args.suites) {
        base_ipc.push_back(
            core::runOne(core::baselineConfig(), suite, args.uops).ipc);
    }

    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        configs = {
            {"SRL", core::srlConfig()},
            {"Hierarchical STQ", core::hierarchicalConfig()},
            {"Ideal STQ", core::idealConfig()},
        };

    for (const auto &[label, cfg] : configs) {
        std::vector<double> row;
        for (std::size_t i = 0; i < args.suites.size(); ++i) {
            const auto r = core::runOne(cfg, args.suites[i], args.uops);
            row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
        }
        bench::printRow(label, row);
    }
    return 0;
}
