/**
 * @file
 * Ablation A6 (ours) — multiprocessor snoop traffic: external stores
 * snoop the load-tracking structures and restart matching loads from
 * their checkpoints (Section 3). Sweeps the snoop rate and compares
 * the SRL design's set-associative secondary load buffer against the
 * conventional CAM load queue of the ideal-STQ machine.
 *
 * Expected shape: both degrade with traffic; the set-associative
 * buffer's coarse-grain (checkpoint) recovery holds up comparably to
 * the full-CAM queue — the paper's claim that exact load ordering is
 * unnecessary.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Ablation: external snoop traffic (IPC) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    for (const double rate : {0.0, 0.0005, 0.002, 0.008}) {
        for (const auto &[label, make] :
             {std::pair<const char *,
                        core::ProcessorConfig (*)()>{"srl",
                                                     core::srlConfig},
              std::pair<const char *, core::ProcessorConfig (*)()>{
                  "ideal", core::idealConfig}}) {
            core::ProcessorConfig cfg = make();
            cfg.snoop_rate = rate;
            std::vector<double> row;
            for (std::size_t i = 0; i < args.suites.size(); ++i) {
                const auto r =
                    core::runOne(cfg, args.suites[i], args.uops);
                row.push_back(r.ipc);
            }
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%s @%.4f snoops/cy", label,
                          rate);
            bench::printRow(buf, row);
        }
    }
    return 0;
}
