/**
 * @file
 * Shared helpers for the experiment harnesses: argument parsing, the
 * suite loop, and table formatting. Every bench binary reproduces one
 * table or figure of the paper and prints the same rows/series the
 * paper reports, alongside the paper's published values where the
 * paper gives them (bar charts are read off the figure, so those
 * references are approximate).
 */

#ifndef SRLSIM_BENCH_BENCH_UTIL_HH
#define SRLSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "runner/sweep.hh"
#include "workload/profile.hh"

namespace srl
{
namespace bench
{

struct BenchArgs
{
    std::uint64_t uops = 200000;
    std::vector<workload::SuiteProfile> suites =
        workload::suiteProfiles();
    unsigned jobs = 0;        ///< sweep workers; 0 = all hardware threads
    std::uint64_t seed = 0;   ///< 0 = each suite's canonical seed
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--uops") == 0 && i + 1 < argc) {
            args.uops = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
            args.suites = {workload::suiteProfile(argv[++i])};
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            args.jobs =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            args.seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--uops N] [--suite NAME] "
                         "[--jobs N] [--seed S]\n",
                         argv[0]);
            std::exit(1);
        }
    }
    return args;
}

inline runner::SweepOptions
sweepOptions(const BenchArgs &args)
{
    runner::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.seed = args.seed;
    return opts;
}

/** IPC of run @p idx; fatal if that run failed. */
inline double
runIpc(const stats::StatsReport &rep, std::size_t idx)
{
    const stats::RunRecord &r = rep.runs.at(idx);
    if (r.failed()) {
        std::fprintf(stderr, "run '%s' failed: %s\n", r.name.c_str(),
                     r.error.c_str());
        std::exit(1);
    }
    return r.metric("ipc");
}

/** Print a header row: label column plus one column per suite. */
inline void
printSuiteHeader(const char *label,
                 const std::vector<workload::SuiteProfile> &suites)
{
    std::printf("%-34s", label);
    for (const auto &s : suites)
        std::printf(" %8s", s.name.c_str());
    std::printf("\n");
}

/** Print one series row. */
inline void
printRow(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-34s", label.c_str());
    for (const double v : values)
        std::printf(" %8.2f", v);
    std::printf("\n");
}

/**
 * Run configs x suites through the sweep runner (all points in one
 * parallel batch, baseline included) and print one row per
 * non-baseline config as percent speedup over configs[0].
 */
inline void
runAndPrintSpeedups(
    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        &configs,
    const BenchArgs &args)
{
    const auto points =
        runner::matrixPoints(configs, args.suites, args.uops);
    const auto rep = runner::runSweep(points, sweepOptions(args));
    const std::size_t ns = args.suites.size();
    for (std::size_t c = 1; c < configs.size(); ++c) {
        std::vector<double> row;
        for (std::size_t s = 0; s < ns; ++s) {
            row.push_back(core::percentSpeedup(
                runIpc(rep, c * ns + s), runIpc(rep, s)));
        }
        printRow(configs[c].first, row);
    }
}

} // namespace bench
} // namespace srl

#endif // SRLSIM_BENCH_BENCH_UTIL_HH
