/**
 * @file
 * Shared helpers for the experiment harnesses: argument parsing, the
 * suite loop, and table formatting. Every bench binary reproduces one
 * table or figure of the paper and prints the same rows/series the
 * paper reports, alongside the paper's published values where the
 * paper gives them (bar charts are read off the figure, so those
 * references are approximate).
 */

#ifndef SRLSIM_BENCH_BENCH_UTIL_HH
#define SRLSIM_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "runner/sweep.hh"
#include "workload/profile.hh"

namespace srl
{
namespace bench
{

struct BenchArgs
{
    std::uint64_t uops = 200000;
    std::vector<workload::SuiteProfile> suites =
        workload::suiteProfiles();
    unsigned jobs = 0;        ///< sweep workers; 0 = all hardware threads
    std::uint64_t seed = 0;   ///< 0 = each suite's canonical seed
    std::string json_out;     ///< write a machine-readable summary here
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--uops") == 0 && i + 1 < argc) {
            args.uops = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
            args.suites = {workload::suiteProfile(argv[++i])};
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            args.jobs =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            args.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--json-out") == 0 &&
                   i + 1 < argc) {
            args.json_out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--uops N] [--suite NAME] "
                         "[--jobs N] [--seed S] [--json-out FILE]\n",
                         argv[0]);
            std::exit(1);
        }
    }
    return args;
}

inline runner::SweepOptions
sweepOptions(const BenchArgs &args)
{
    runner::SweepOptions opts;
    opts.jobs = args.jobs;
    opts.seed = args.seed;
    return opts;
}

/** IPC of run @p idx; fatal if that run failed. */
inline double
runIpc(const stats::StatsReport &rep, std::size_t idx)
{
    const stats::RunRecord &r = rep.runs.at(idx);
    if (r.failed()) {
        std::fprintf(stderr, "run '%s' failed: %s\n", r.name.c_str(),
                     r.error.c_str());
        std::exit(1);
    }
    return r.metric("ipc");
}

/** Print a header row: label column plus one column per suite. */
inline void
printSuiteHeader(const char *label,
                 const std::vector<workload::SuiteProfile> &suites)
{
    std::printf("%-34s", label);
    for (const auto &s : suites)
        std::printf(" %8s", s.name.c_str());
    std::printf("\n");
}

/** Print one series row. */
inline void
printRow(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-34s", label.c_str());
    for (const double v : values)
        std::printf(" %8.2f", v);
    std::printf("\n");
}

/** What repeatForAtLeast measured. */
struct RepeatTiming
{
    double total_s = 0;       ///< cumulative wall time of all iterations
    std::uint64_t iters = 0;  ///< iterations run (always >= 1)

    /** Mean per-iteration wall time — the reported quantity. */
    double
    perIterS() const
    {
        return iters ? total_s / static_cast<double>(iters) : 0;
    }
};

/**
 * De-flake helper for fast phases: repeat @p fn until the cumulative
 * wall time reaches @p min_total_s (at least one iteration, at most
 * @p max_iters), and report the mean per-iteration time. A single
 * sub-millisecond measurement is dominated by scheduler noise on
 * shared CI runners — min-of-N helps but still samples the noise
 * floor; amortizing over a >= 50 ms window times the work itself.
 */
template <typename Fn>
inline RepeatTiming
repeatForAtLeast(double min_total_s, Fn &&fn,
                 std::uint64_t max_iters = 100000)
{
    RepeatTiming t;
    while (t.iters == 0 ||
           (t.total_s < min_total_s && t.iters < max_iters)) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        t.total_s += std::chrono::duration<double>(t1 - t0).count();
        ++t.iters;
    }
    return t;
}

/** Model-throughput summary of one timed sweep. */
struct BenchTiming
{
    double wall_s = 0;          ///< host wall-clock for the whole sweep
    std::uint64_t uops = 0;     ///< uops simulated, summed over runs
    std::uint64_t sim_cycles = 0; ///< cycles simulated, summed over runs
    double uopsPerSec() const { return wall_s > 0 ? uops / wall_s : 0; }
    double
    simCyclesPerSec() const
    {
        return wall_s > 0 ? sim_cycles / wall_s : 0;
    }
};

/** Print the standard timing footer (host wall time + model rates). */
inline void
printTiming(const BenchTiming &t)
{
    std::printf("timing: wall %.3f s | %llu uops (%.0f uops/s) | "
                "%llu sim cycles (%.0f cycles/s)\n",
                t.wall_s, static_cast<unsigned long long>(t.uops),
                t.uopsPerSec(),
                static_cast<unsigned long long>(t.sim_cycles),
                t.simCyclesPerSec());
}

/**
 * Write a self-describing JSON summary of a timed sweep, the input to
 * tools/bench_gate.py. The commit stamp is the source tree's HEAD,
 * baked in at configure time (SRLSIM_GIT_HEAD), so a regenerated
 * baseline records the commit that actually produced it; an explicit
 * $SRLSIM_COMMIT overrides it, and "unknown" covers builds from
 * outside a git checkout.
 */
inline void
writeBenchJson(const std::string &path, const char *bench,
               const BenchTiming &t, const BenchArgs &args)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    const char *commit = std::getenv("SRLSIM_COMMIT");
#ifdef SRLSIM_GIT_HEAD
    if (!commit)
        commit = SRLSIM_GIT_HEAD;
#endif
    char date[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc))
        std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ",
                      &tm_utc);
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"commit\": \"%s\",\n"
                 "  \"date\": \"%s\",\n"
                 "  \"wall_s\": %.6f,\n"
                 "  \"uops\": %llu,\n"
                 "  \"uops_per_s\": %.1f,\n"
                 "  \"sim_cycles\": %llu,\n"
                 "  \"sim_cycles_per_s\": %.1f,\n"
                 "  \"config\": {\n"
                 "    \"uops_per_run\": %llu,\n"
                 "    \"suites\": %zu,\n"
                 "    \"jobs\": %u,\n"
                 "    \"seed\": %llu\n"
                 "  }\n"
                 "}\n",
                 bench, commit ? commit : "unknown", date, t.wall_s,
                 static_cast<unsigned long long>(t.uops), t.uopsPerSec(),
                 static_cast<unsigned long long>(t.sim_cycles),
                 t.simCyclesPerSec(),
                 static_cast<unsigned long long>(args.uops),
                 args.suites.size(), args.jobs,
                 static_cast<unsigned long long>(args.seed));
    std::fclose(f);
}

/**
 * Run configs x suites through the sweep runner (all points in one
 * parallel batch, baseline included) and print one row per
 * non-baseline config as percent speedup over configs[0], followed by
 * a timing footer. With --json-out, also writes the machine-readable
 * summary consumed by the CI perf gate.
 */
inline void
runAndPrintSpeedups(
    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        &configs,
    const BenchArgs &args, const char *bench_name = "bench")
{
    const auto points =
        runner::matrixPoints(configs, args.suites, args.uops);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = runner::runSweep(points, sweepOptions(args));
    const auto t1 = std::chrono::steady_clock::now();
    const std::size_t ns = args.suites.size();
    for (std::size_t c = 1; c < configs.size(); ++c) {
        std::vector<double> row;
        for (std::size_t s = 0; s < ns; ++s) {
            row.push_back(core::percentSpeedup(
                runIpc(rep, c * ns + s), runIpc(rep, s)));
        }
        printRow(configs[c].first, row);
    }

    BenchTiming t;
    t.wall_s = std::chrono::duration<double>(t1 - t0).count();
    for (const auto &r : rep.runs) {
        if (r.failed())
            continue;
        t.uops += static_cast<std::uint64_t>(r.metric("uops"));
        t.sim_cycles += static_cast<std::uint64_t>(r.metric("cycles"));
    }
    printTiming(t);
    if (!args.json_out.empty())
        writeBenchJson(args.json_out, bench_name, t, args);
}

} // namespace bench
} // namespace srl

#endif // SRLSIM_BENCH_BENCH_UTIL_HH
