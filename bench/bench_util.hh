/**
 * @file
 * Shared helpers for the experiment harnesses: argument parsing, the
 * suite loop, and table formatting. Every bench binary reproduces one
 * table or figure of the paper and prints the same rows/series the
 * paper reports, alongside the paper's published values where the
 * paper gives them (bar charts are read off the figure, so those
 * references are approximate).
 */

#ifndef SRLSIM_BENCH_BENCH_UTIL_HH
#define SRLSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "workload/profile.hh"

namespace srl
{
namespace bench
{

struct BenchArgs
{
    std::uint64_t uops = 200000;
    std::vector<workload::SuiteProfile> suites =
        workload::suiteProfiles();
};

inline BenchArgs
parseArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--uops") == 0 && i + 1 < argc) {
            args.uops = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
            args.suites = {workload::suiteProfile(argv[++i])};
        } else {
            std::fprintf(stderr,
                         "usage: %s [--uops N] [--suite NAME]\n",
                         argv[0]);
            std::exit(1);
        }
    }
    return args;
}

/** Print a header row: label column plus one column per suite. */
inline void
printSuiteHeader(const char *label,
                 const std::vector<workload::SuiteProfile> &suites)
{
    std::printf("%-34s", label);
    for (const auto &s : suites)
        std::printf(" %8s", s.name.c_str());
    std::printf("\n");
}

/** Print one series row. */
inline void
printRow(const std::string &label, const std::vector<double> &values)
{
    std::printf("%-34s", label.c_str());
    for (const double v : values)
        std::printf(" %8.2f", v);
    std::printf("\n");
}

} // namespace bench
} // namespace srl

#endif // SRLSIM_BENCH_BENCH_UTIL_HH
