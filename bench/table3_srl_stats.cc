/**
 * @file
 * Table 3 — SRL statistics: for each suite under the SRL
 * configuration, the percentage of stores redone (drained via the
 * SRL), miss-dependent stores, miss-dependent uops, SRL-induced load
 * stalls per 10000 uops, and the percent of execution time the SRL is
 * occupied. Paper values printed alongside for comparison.
 */

#include "bench_util.hh"

namespace
{

struct PaperRow
{
    const char *suite;
    double redone, dep_stores, dep_uops, stalls, occupied;
};

constexpr PaperRow kPaper[] = {
    {"SFP2K", 47.6, 26.7, 16.4, 11, 49.1},
    {"SINT2K", 7.3, 1.3, 2.2, 5, 16.5},
    {"WEB", 1.9, 0.6, 4.9, 9, 21.8},
    {"MM", 6.0, 2.7, 6.5, 6, 18.3},
    {"PROD", 0.3, 0.1, 0.4, 1, 5.7},
    {"SERVER", 4.2, 1.1, 7.5, 17, 41.7},
    {"WS", 9.4, 8.5, 2.6, 3, 13.9},
};

const PaperRow *
paperRow(const std::string &suite)
{
    for (const auto &r : kPaper) {
        if (suite == r.suite)
            return &r;
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Table 3: SRL statistics (measured | paper) ===\n");
    std::printf("%-8s %19s %19s %19s %19s %19s\n", "suite",
                "redone-stores%", "miss-dep-stores%", "miss-dep-uops%",
                "ld-stalls/10k", "srl-occupied%");

    for (const auto &suite : args.suites) {
        const auto r = core::runOne(core::srlConfig(), suite, args.uops);
        const PaperRow *p = paperRow(suite.name);
        auto cell = [](double measured, double paper) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%8.1f |%8.1f", measured,
                          paper);
            return std::string(buf);
        };
        std::printf("%-8s %s %s %s %s %s\n", suite.name.c_str(),
                    cell(r.pct_stores_redone, p ? p->redone : 0).c_str(),
                    cell(r.pct_miss_dep_stores, p ? p->dep_stores : 0)
                        .c_str(),
                    cell(r.pct_miss_dep_uops, p ? p->dep_uops : 0)
                        .c_str(),
                    cell(r.srl_stalls_per_10k, p ? p->stalls : 0).c_str(),
                    cell(r.pct_time_srl_occupied, p ? p->occupied : 0)
                        .c_str());
    }
    return 0;
}
