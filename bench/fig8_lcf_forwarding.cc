/**
 * @file
 * Figure 8 — Impact of the Loose Check Filter and indexed forwarding:
 * percent speedup over the 48-entry baseline of (a) the full SRL
 * design, (b) SRL with LCF but without indexed forwarding, and (c) SRL
 * without LCF or indexed forwarding (loads that find no forwarded data
 * during redo stall until the SRL drains past them).
 *
 * Expected shape: the LCF matters most on SFP2K (the paper reports
 * >15% from adding it); indexed forwarding adds a further increment.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Figure 8: LCF and indexed forwarding impact "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<double> base_ipc;
    for (const auto &suite : args.suites) {
        base_ipc.push_back(
            core::runOne(core::baselineConfig(), suite, args.uops).ipc);
    }

    core::ProcessorConfig full = core::srlConfig();

    core::ProcessorConfig no_idx = core::srlConfig();
    no_idx.name = "srl-no-idxfwd";
    no_idx.srl.indexed_forwarding = false;

    core::ProcessorConfig no_lcf = core::srlConfig();
    no_lcf.name = "srl-no-lcf";
    no_lcf.srl.use_lcf = false;
    no_lcf.srl.indexed_forwarding = false;

    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        configs = {
            {"SRL", full},
            {"SRL w/o indexed fwd", no_idx},
            {"SRL w/o LCF and indexed fwd", no_lcf},
        };

    for (const auto &[label, cfg] : configs) {
        std::vector<double> row;
        for (std::size_t i = 0; i < args.suites.size(); ++i) {
            const auto r = core::runOne(cfg, args.suites[i], args.uops);
            row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
        }
        bench::printRow(label, row);
    }
    return 0;
}
