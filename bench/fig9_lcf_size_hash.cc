/**
 * @file
 * Figure 9 — LCF size and hashing function impact on SRL performance:
 * percent speedup over the 48-entry baseline for {no LCF, 256-entry,
 * 2K-entry} x {Lower-Address-Bits, 3-Piece-Address-XOR} indexing.
 *
 * Expected shape (paper): little sensitivity to the hash function in
 * suite averages, greater sensitivity to LCF size (especially SFP2K);
 * a 256-entry LCF performs within ~2% of a 2K-entry LCF and well above
 * no-LCF.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Figure 9: LCF size and hash function "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<double> base_ipc;
    for (const auto &suite : args.suites) {
        base_ipc.push_back(
            core::runOne(core::baselineConfig(), suite, args.uops).ipc);
    }

    std::vector<std::pair<std::string, core::ProcessorConfig>> configs;
    {
        core::ProcessorConfig c = core::srlConfig();
        c.srl.use_lcf = false;
        c.srl.indexed_forwarding = false;
        configs.emplace_back("No LCF", c);
    }
    for (const auto &[hname, hash] :
         {std::pair<const char *, lsq::HashScheme>{
              "LAB", lsq::HashScheme::kLowerAddressBits},
          std::pair<const char *, lsq::HashScheme>{
              "3-PAX", lsq::HashScheme::kThreePieceXor}}) {
        for (const unsigned entries : {256u, 2048u}) {
            core::ProcessorConfig c = core::srlConfig();
            c.srl.lcf.entries = entries;
            c.srl.lcf.hash = hash;
            configs.emplace_back("LCF" + std::to_string(entries) +
                                     " + " + hname,
                                 c);
        }
    }

    for (const auto &[label, cfg] : configs) {
        std::vector<double> row;
        for (std::size_t i = 0; i < args.suites.size(); ++i) {
            const auto r = core::runOne(cfg, args.suites[i], args.uops);
            row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
        }
        bench::printRow(label, row);
    }
    return 0;
}
