/**
 * @file
 * Figure 9 — LCF size and hashing function impact on SRL performance:
 * percent speedup over the 48-entry baseline for {no LCF, 256-entry,
 * 2K-entry} x {Lower-Address-Bits, 3-Piece-Address-XOR} indexing.
 *
 * All (config, suite) points run in one parallel sweep batch through
 * the runner (`--jobs N` controls workers).
 *
 * Expected shape (paper): little sensitivity to the hash function in
 * suite averages, greater sensitivity to LCF size (especially SFP2K);
 * a 256-entry LCF performs within ~2% of a 2K-entry LCF and well above
 * no-LCF.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Figure 9: LCF size and hash function "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<std::pair<std::string, core::ProcessorConfig>> configs;
    configs.emplace_back("baseline", core::baselineConfig());
    {
        core::ProcessorConfig c = core::srlConfig();
        c.srl.use_lcf = false;
        c.srl.indexed_forwarding = false;
        configs.emplace_back("No LCF", c);
    }
    for (const auto &[hname, hash] :
         {std::pair<const char *, lsq::HashScheme>{
              "LAB", lsq::HashScheme::kLowerAddressBits},
          std::pair<const char *, lsq::HashScheme>{
              "3-PAX", lsq::HashScheme::kThreePieceXor}}) {
        for (const unsigned entries : {256u, 2048u}) {
            core::ProcessorConfig c = core::srlConfig();
            c.srl.lcf.entries = entries;
            c.srl.lcf.hash = hash;
            configs.emplace_back("LCF" + std::to_string(entries) +
                                     " + " + hname,
                                 c);
        }
    }
    bench::runAndPrintSpeedups(configs, args);
    return 0;
}
