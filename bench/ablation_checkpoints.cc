/**
 * @file
 * Ablation A5 (ours) — CPR checkpoint count: the number of rename-map
 * checkpoints bounds the in-flight window (checkpoints x region size),
 * which bounds how much of a miss shadow the machine can cover. Sweeps
 * 2..16 checkpoints under the SRL configuration.
 *
 * Expected shape: monotone gains saturating around the paper's choice
 * of 8 (Table 1), with 2 checkpoints severely window-limited.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Ablation: CPR checkpoint count "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<double> base_ipc;
    for (const auto &suite : args.suites) {
        base_ipc.push_back(
            core::runOne(core::baselineConfig(), suite, args.uops).ipc);
    }

    for (const unsigned n : {2u, 4u, 8u, 16u}) {
        core::ProcessorConfig cfg = core::srlConfig();
        cfg.checkpoints.num_checkpoints = n;
        std::vector<double> row;
        for (std::size_t i = 0; i < args.suites.size(); ++i) {
            const auto r = core::runOne(cfg, args.suites[i], args.uops);
            row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
        }
        bench::printRow(std::to_string(n) + " checkpoints", row);
    }
    return 0;
}
