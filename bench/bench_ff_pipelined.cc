/**
 * @file
 * Throughput benchmark of the pipelined parallel sampled engine
 * (runner::runSampledPipelined, DESIGN.md §15). Runs the same 2M-uop
 * SRL design point three ways — the chained serial interval loop, the
 * pipelined engine with 1 detail worker, and the pipelined engine
 * with 4 — under a ~25% detailed-coverage plan (per-interval
 * 176k ff / 10k warm / 64k detail => 8 intervals at 2M uops), and
 * reports:
 *
 *   - the gated quantity: end-to-end uops covered per host second of
 *     the pipelined 4-worker run (tools/bench_gate.py tracks
 *     uops_per_s against the committed baseline);
 *   - the machine-readable parallel speedup of 4 workers over 1
 *     (speedup_jobs4_vs_jobs1) — the overlap the pipeline exists to
 *     buy; on a single-core host it degrades toward 1.0 and the
 *     absolute rate is what the gate holds the line on;
 *   - the chained loop's wall for context (its semantics differ, so
 *     it is informational, not the gate anchor).
 *
 * Each phase is timed with repeatForAtLeast so sub-second runs are
 * amortized over a noise-resistant window.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "bench_util.hh"
#include "runner/sampled.hh"

using namespace srl;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    args.uops = args.uops == 200000 ? 2000000 : args.uops;
    const workload::SuiteProfile suite = args.suites.front();
    const core::ProcessorConfig cfg = core::srlConfig();

    // ~25% detailed coverage, 8 intervals at the canonical 2M uops;
    // scaled with --uops so the interval count stays put.
    runner::SampledOptions sopts;
    sopts.plan.ff_uops = args.uops * 88 / 1000;
    sopts.plan.warm_uops = args.uops * 5 / 1000;
    sopts.plan.detail_uops = args.uops * 32 / 1000;

    constexpr double kMinWindowS = 0.25;

    runner::SampledResult chained, jobs1, jobs4;
    const bench::RepeatTiming t_chained =
        bench::repeatForAtLeast(kMinWindowS, [&] {
            chained = runner::runSampled(cfg, suite, args.uops,
                                         args.seed, sopts);
        });

    sopts.sample_jobs = 1;
    const bench::RepeatTiming t_jobs1 =
        bench::repeatForAtLeast(kMinWindowS, [&] {
            jobs1 = runner::runSampled(cfg, suite, args.uops,
                                       args.seed, sopts);
        });

    sopts.sample_jobs = 4;
    const bench::RepeatTiming t_jobs4 =
        bench::repeatForAtLeast(kMinWindowS, [&] {
            jobs4 = runner::runSampled(cfg, suite, args.uops,
                                       args.seed, sopts);
        });

    const double chained_wall = t_chained.perIterS();
    const double jobs1_wall = t_jobs1.perIterS();
    const double jobs4_wall = t_jobs4.perIterS();
    const double speedup_4v1 =
        jobs4_wall > 0 ? jobs1_wall / jobs4_wall : 0;
    const double speedup_vs_chained =
        jobs4_wall > 0 ? chained_wall / jobs4_wall : 0;

    std::printf("ff_pipelined: %" PRIu64 " uops on %s (plan %" PRIu64
                "/%" PRIu64 "/%" PRIu64 ", %" PRIu64 " intervals)\n",
                args.uops, suite.name.c_str(), sopts.plan.ff_uops,
                sopts.plan.warm_uops, sopts.plan.detail_uops,
                jobs4.intervals_run);
    std::printf("chained serial:    %.3f s/run (x%" PRIu64 ")\n",
                chained_wall, t_chained.iters);
    std::printf("pipelined 1 wkr:   %.3f s/run (x%" PRIu64
                ", producer %.3f s, detail sum %.3f s)\n",
                jobs1_wall, t_jobs1.iters, jobs1.ff_wall_s,
                jobs1.detail_wall_s);
    std::printf("pipelined 4 wkrs:  %.3f s/run (x%" PRIu64
                ", producer %.3f s, detail sum %.3f s)\n",
                jobs4_wall, t_jobs4.iters, jobs4.ff_wall_s,
                jobs4.detail_wall_s);
    std::printf("speedup: 4 wkrs vs 1 wkr %.2fx | vs chained %.2fx\n",
                speedup_4v1, speedup_vs_chained);

    bench::BenchTiming t;
    t.wall_s = jobs4_wall;
    t.uops = args.uops; // uops *covered* per host second is gated
    t.sim_cycles = jobs4.stats.cycles;
    bench::printTiming(t);

    if (!args.json_out.empty()) {
        // writeBenchJson's shape plus the per-mode walls and the
        // machine-readable speedup ratios (extra keys are fine for
        // the gate).
        std::FILE *f = std::fopen(args.json_out.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         args.json_out.c_str());
            return 1;
        }
        const char *commit = std::getenv("SRLSIM_COMMIT");
#ifdef SRLSIM_GIT_HEAD
        if (!commit)
            commit = SRLSIM_GIT_HEAD;
#endif
        char date[32] = "unknown";
        const std::time_t now = std::time(nullptr);
        std::tm tm_utc{};
        if (gmtime_r(&now, &tm_utc))
            std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ",
                          &tm_utc);
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"ff_pipelined\",\n"
            "  \"commit\": \"%s\",\n"
            "  \"date\": \"%s\",\n"
            "  \"wall_s\": %.6f,\n"
            "  \"uops\": %llu,\n"
            "  \"uops_per_s\": %.1f,\n"
            "  \"sim_cycles\": %llu,\n"
            "  \"sim_cycles_per_s\": %.1f,\n"
            "  \"chained_wall_s\": %.6f,\n"
            "  \"jobs1_wall_s\": %.6f,\n"
            "  \"jobs4_wall_s\": %.6f,\n"
            "  \"speedup_jobs4_vs_jobs1\": %.2f,\n"
            "  \"speedup_vs_chained\": %.2f,\n"
            "  \"config\": {\n"
            "    \"uops_per_run\": %llu,\n"
            "    \"suites\": 1,\n"
            "    \"jobs\": 4,\n"
            "    \"seed\": %llu\n"
            "  }\n"
            "}\n",
            commit ? commit : "unknown", date, t.wall_s,
            static_cast<unsigned long long>(t.uops), t.uopsPerSec(),
            static_cast<unsigned long long>(t.sim_cycles),
            t.simCyclesPerSec(), chained_wall, jobs1_wall, jobs4_wall,
            speedup_4v1, speedup_vs_chained,
            static_cast<unsigned long long>(args.uops),
            static_cast<unsigned long long>(args.seed));
        std::fclose(f);
    }
    return 0;
}
