/**
 * @file
 * Ablation A3 (ours) — structure-level microbenchmarks (google-
 * benchmark): operation throughput of the CAM store queue search
 * versus the SRL+LCF path, the secondary load buffer's set lookup
 * versus the conventional load queue's full CAM, and the LCF hashing
 * schemes. These are software-model costs, but they mirror the
 * paper's complexity argument: CAM search work grows with queue size,
 * the SRL/LCF path does not.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <unordered_map>

#include "common/random.hh"
#include "lsq/lcf.hh"
#include "lsq/load_buffer.hh"
#include "lsq/load_queue.hh"
#include "lsq/srl.hh"
#include "lsq/store_id.hh"
#include "lsq/store_queue.hh"

namespace
{

using namespace srl;

void
BM_StoreQueueCamSearch(benchmark::State &state)
{
    const auto entries = static_cast<unsigned>(state.range(0));
    lsq::StoreQueue stq({"bench-stq", entries, 3});
    lsq::StoreIdAllocator ids(1u << 20);
    Random rng(42);
    for (unsigned i = 0; i < entries; ++i) {
        stq.allocate(i, ids.allocate(), 0);
        stq.writeAddrData(i, 0x1000 + (rng.next32() % 4096) * 8, 8,
                          rng.next64());
    }
    SeqNum load_seq = entries;
    for (auto _ : state) {
        const Addr addr = 0x1000 + (rng.next32() % 4096) * 8;
        benchmark::DoNotOptimize(stq.forward(load_seq, addr, 8));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreQueueCamSearch)->Arg(48)->Arg(128)->Arg(512)->Arg(1024);

void
BM_SrlLcfLookup(benchmark::State &state)
{
    const auto entries = static_cast<unsigned>(state.range(0));
    lsq::StoreRedoLog log({entries});
    lsq::LooseCheckFilter lcf({2048, 6, lsq::HashScheme::kThreePieceXor});
    lsq::StoreIdAllocator ids(entries);
    Random rng(42);
    for (unsigned i = 0; i + 1 < entries; ++i) {
        const lsq::StoreId id = ids.allocate();
        const Addr addr = 0x1000 + (rng.next32() % 4096) * 8;
        log.pushIndependent(i, id, 0, addr, 8, rng.next64());
        lcf.storeInserted(addr, id.index);
    }
    for (auto _ : state) {
        const Addr addr = 0x1000 + (rng.next32() % 4096) * 8;
        if (lcf.mayMatch(addr)) {
            benchmark::DoNotOptimize(
                log.peekSlot(lcf.lastSrlIndex(addr)));
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SrlLcfLookup)->Arg(48)->Arg(128)->Arg(512)->Arg(1024);

void
BM_LoadQueueCamCheck(benchmark::State &state)
{
    const auto entries = static_cast<unsigned>(state.range(0));
    lsq::LoadQueue lq({entries});
    Random rng(42);
    for (unsigned i = 0; i < entries; ++i) {
        lq.allocate(i, 0);
        lq.executed(i, 0x1000 + (rng.next32() % 4096) * 8, 8,
                    kInvalidSeqNum);
    }
    for (auto _ : state) {
        const Addr addr = 0x1000 + (rng.next32() % 4096) * 8;
        benchmark::DoNotOptimize(lq.snoopCheck(addr, 8));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoadQueueCamCheck)->Arg(128)->Arg(512)->Arg(1024);

void
BM_LoadBufferSetCheck(benchmark::State &state)
{
    const auto entries = static_cast<unsigned>(state.range(0));
    lsq::SecondaryLoadBuffer buf(
        {entries, 8, lsq::OverflowPolicy::kVictimBuffer, 32});
    lsq::StoreIdAllocator ids(1u << 20);
    Random rng(42);
    const lsq::StoreId first = ids.allocate();
    for (unsigned i = 0; i < entries; ++i) {
        buf.insert(i + 1, static_cast<CheckpointId>(i % 8),
                   0x1000 + (rng.next32() % 4096) * 8, 8,
                   ids.lastAllocated(), lsq::kNullStoreId);
        ids.allocate();
    }
    for (auto _ : state) {
        const Addr addr = 0x1000 + (rng.next32() % 4096) * 8;
        benchmark::DoNotOptimize(buf.storeCheck(first, addr, 8));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoadBufferSetCheck)->Arg(128)->Arg(512)->Arg(1024);

void
BM_LcfHash(benchmark::State &state)
{
    const auto scheme = static_cast<lsq::HashScheme>(state.range(0));
    lsq::CountingBloom bloom(2048, 6, scheme);
    Random rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(bloom.index(rng.next64()));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LcfHash)
    ->Arg(static_cast<int>(lsq::HashScheme::kLowerAddressBits))
    ->Arg(static_cast<int>(lsq::HashScheme::kThreePieceXor));

/**
 * The validation hot path: ReferenceExecutor records one value per
 * load keyed by seq, and the correctness tests then look every
 * committed load up. Compare the tree map the executor used to ship
 * with against the hash map it uses now (seq keys have no ordering
 * requirement).
 */
template <typename Map>
void
BM_LoadValueMapLookup(benchmark::State &state)
{
    const auto loads = static_cast<std::uint64_t>(state.range(0));
    Map values;
    Random rng(42);
    for (std::uint64_t seq = 0; seq < loads; ++seq)
        values[seq * 3] = rng.next64(); // every ~3rd uop is a load
    std::uint64_t seq = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(values.find(seq));
        seq = (seq + 3) % (loads * 3);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoadValueMapLookup<std::map<SeqNum, std::uint64_t>>)
    ->Arg(10000)
    ->Arg(100000);
BENCHMARK(
    BM_LoadValueMapLookup<std::unordered_map<SeqNum, std::uint64_t>>)
    ->Arg(10000)
    ->Arg(100000);

} // namespace

BENCHMARK_MAIN();
