/**
 * @file
 * Figure 2 — Impact of store queue size for a latency tolerant
 * processor. For each suite, percent speedup over the 48-entry-STQ
 * baseline of monolithic store queues of 128, 256, 512 and 1024
 * entries. Expected shape: monotone gains saturating between 256 and
 * 1K entries, largest on the memory-bound suites (SFP2K, SERVER, WS),
 * smallest on PROD.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Figure 2: store queue size sensitivity "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<double> base_ipc;
    for (const auto &suite : args.suites) {
        base_ipc.push_back(
            core::runOne(core::baselineConfig(), suite, args.uops).ipc);
    }

    for (const unsigned entries : {128u, 256u, 512u, 1024u}) {
        std::vector<double> row;
        for (std::size_t i = 0; i < args.suites.size(); ++i) {
            const auto r = core::runOne(core::monolithicConfig(entries),
                                        args.suites[i], args.uops);
            row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
        }
        bench::printRow(std::to_string(entries) + "-entry STQ", row);
    }
    return 0;
}
