/**
 * @file
 * Throughput benchmark of the two-tier sampled-simulation driver
 * (runner::runSampled, DESIGN.md §14). Runs the same 2M-uop SRL design
 * point twice — fully detailed through core::runOne, then sampled with
 * ~10% detailed coverage (per-interval plan 880k ff / 20k warm / 100k
 * detail => 2 intervals) — and reports:
 *
 *   - end-to-end speedup of the sampled run over the detailed run
 *     (the quantity the CI perf gate tracks via uops_per_s: "uops
 *     covered per second of host time");
 *   - fast-forward engine throughput vs the detailed model's, the
 *     >= 20x contract the functional engine is built to;
 *   - the sampled run's IPC error vs the fully detailed IPC, for
 *     context on what the 10% sample costs in accuracy.
 *
 * The JSON summary (--json-out) carries wall_s/uops/uops_per_s for
 * tools/bench_gate.py plus the split rates and speedups as extra keys.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>

#include "bench_util.hh"
#include "runner/sampled.hh"

using namespace srl;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    args.uops = args.uops == 200000 ? 2000000 : args.uops;
    const workload::SuiteProfile suite = args.suites.front();
    const core::ProcessorConfig cfg = core::srlConfig();

    // ~10% detailed coverage: scale the canonical 880k/20k/100k plan
    // so --uops keeps the ratio rather than the absolute interval.
    runner::SampledOptions sopts;
    sopts.plan.ff_uops = args.uops * 44 / 100;
    sopts.plan.warm_uops = args.uops / 100;
    sopts.plan.detail_uops = args.uops * 5 / 100;

    const auto t0 = std::chrono::steady_clock::now();
    const core::RunResult detailed =
        core::runOne(cfg, suite, args.uops, args.seed);
    const auto t1 = std::chrono::steady_clock::now();
    const runner::SampledResult sampled = runner::runSampled(
        cfg, suite, args.uops, args.seed, sopts);
    const auto t2 = std::chrono::steady_clock::now();

    const double detailed_wall =
        std::chrono::duration<double>(t1 - t0).count();
    const double sampled_wall =
        std::chrono::duration<double>(t2 - t1).count();
    const double detailed_rate =
        detailed_wall > 0 ? args.uops / detailed_wall : 0;
    const std::uint64_t ff_total =
        sampled.ff_uops + sampled.warm_uops;
    const double ff_rate =
        sampled.ff_wall_s > 0 ? ff_total / sampled.ff_wall_s : 0;
    const double speedup =
        sampled_wall > 0 ? detailed_wall / sampled_wall : 0;

    const double detailed_ipc =
        detailed.stats.cycles
            ? static_cast<double>(detailed.stats.committed_uops) /
                  static_cast<double>(detailed.stats.cycles)
            : 0;
    const double sampled_ipc =
        sampled.stats.cycles
            ? static_cast<double>(sampled.stats.committed_uops) /
                  static_cast<double>(sampled.stats.cycles)
            : 0;

    std::printf("ff_sampled: %" PRIu64 " uops on %s (plan %" PRIu64
                "/%" PRIu64 "/%" PRIu64 ", %" PRIu64 " intervals)\n",
                args.uops, suite.name.c_str(), sopts.plan.ff_uops,
                sopts.plan.warm_uops, sopts.plan.detail_uops,
                sampled.intervals_run);
    std::printf("detailed: %.3f s (%.0f uops/s)\n", detailed_wall,
                detailed_rate);
    std::printf("sampled:  %.3f s (ff %.3f s, detail %.3f s) | "
                "end-to-end speedup %.1fx\n",
                sampled_wall, sampled.ff_wall_s,
                sampled.detail_wall_s, speedup);
    std::printf("ff engine: %.0f uops/s = %.1fx the detailed model\n",
                ff_rate, detailed_rate > 0 ? ff_rate / detailed_rate : 0);
    std::printf("ipc: detailed %.3f vs sampled %.3f (%.1f%% error at "
                "%.0f%% coverage)\n",
                detailed_ipc, sampled_ipc,
                detailed_ipc > 0
                    ? 100.0 * (sampled_ipc - detailed_ipc) / detailed_ipc
                    : 0,
                100.0 * static_cast<double>(sampled.detail_uops) /
                    static_cast<double>(args.uops));

    bench::BenchTiming t;
    t.wall_s = sampled_wall;
    t.uops = args.uops; // uops *covered* per host second is the gated rate
    t.sim_cycles = sampled.stats.cycles;
    bench::printTiming(t);

    if (!args.json_out.empty()) {
        // writeBenchJson's shape plus the split rates (extra keys are
        // fine for the gate).
        std::FILE *f = std::fopen(args.json_out.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         args.json_out.c_str());
            return 1;
        }
        const char *commit = std::getenv("SRLSIM_COMMIT");
#ifdef SRLSIM_GIT_HEAD
        if (!commit)
            commit = SRLSIM_GIT_HEAD;
#endif
        char date[32] = "unknown";
        const std::time_t now = std::time(nullptr);
        std::tm tm_utc{};
        if (gmtime_r(&now, &tm_utc))
            std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ",
                          &tm_utc);
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"ff_sampled\",\n"
            "  \"commit\": \"%s\",\n"
            "  \"date\": \"%s\",\n"
            "  \"wall_s\": %.6f,\n"
            "  \"uops\": %llu,\n"
            "  \"uops_per_s\": %.1f,\n"
            "  \"sim_cycles\": %llu,\n"
            "  \"sim_cycles_per_s\": %.1f,\n"
            "  \"detailed_wall_s\": %.6f,\n"
            "  \"detailed_uops_per_s\": %.1f,\n"
            "  \"ff_uops_per_s\": %.1f,\n"
            "  \"speedup_vs_detailed\": %.2f,\n"
            "  \"ff_speedup_vs_detailed\": %.2f,\n"
            "  \"config\": {\n"
            "    \"uops_per_run\": %llu,\n"
            "    \"suites\": 1,\n"
            "    \"jobs\": %u,\n"
            "    \"seed\": %llu\n"
            "  }\n"
            "}\n",
            commit ? commit : "unknown", date, t.wall_s,
            static_cast<unsigned long long>(t.uops), t.uopsPerSec(),
            static_cast<unsigned long long>(t.sim_cycles),
            t.simCyclesPerSec(), detailed_wall, detailed_rate, ff_rate,
            speedup, detailed_rate > 0 ? ff_rate / detailed_rate : 0,
            static_cast<unsigned long long>(args.uops), args.jobs,
            static_cast<unsigned long long>(args.seed));
        std::fclose(f);
    }
    return 0;
}
