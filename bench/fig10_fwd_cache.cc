/**
 * @file
 * Figure 10 — Forwarding design option impact: percent speedup over
 * the 48-entry baseline for the SRL using (a) a separate 256-entry
 * 4-way forwarding cache versus (b) the L1 data cache for temporary
 * updates. The data-cache option pays dirty-line writebacks before
 * temporary updates, extra misses during the redo phase (temporary
 * lines are discarded), and associativity-conflict store stalls.
 *
 * Expected shape: the separate forwarding cache wins everywhere, most
 * visibly on the suites with cache pressure in miss shadows.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Figure 10: forwarding cache vs data-cache "
                "temporary updates (%% speedup over 48-entry STQ) "
                "===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<double> base_ipc;
    for (const auto &suite : args.suites) {
        base_ipc.push_back(
            core::runOne(core::baselineConfig(), suite, args.uops).ipc);
    }

    core::ProcessorConfig fc = core::srlConfig();
    fc.name = "srl-fwd-cache";

    core::ProcessorConfig dc = core::srlConfig();
    dc.name = "srl-dcache-temp";
    dc.srl.use_fwd_cache = false;

    const std::vector<std::pair<std::string, core::ProcessorConfig>>
        configs = {
            {"Separate forwarding cache", fc},
            {"Data cache for forwarding", dc},
        };

    for (const auto &[label, cfg] : configs) {
        std::vector<double> row;
        for (std::size_t i = 0; i < args.suites.size(); ++i) {
            const auto r = core::runOne(cfg, args.suites[i], args.uops);
            row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
        }
        bench::printRow(label, row);
    }
    return 0;
}
