/**
 * @file
 * Ablation A2 (ours) — secondary load buffer organization: the paper's
 * Section 3 leaves associativity and the set-overflow policy open
 * (small victim buffer versus taking a memory-ordering violation).
 * This sweep quantifies both choices.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Ablation: secondary load buffer organization "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<double> base_ipc;
    for (const auto &suite : args.suites) {
        base_ipc.push_back(
            core::runOne(core::baselineConfig(), suite, args.uops).ipc);
    }

    struct Variant
    {
        std::string label;
        unsigned assoc;
        lsq::OverflowPolicy policy;
        unsigned victims;
    };
    const std::vector<Variant> variants = {
        {"4-way + victim buffer", 4, lsq::OverflowPolicy::kVictimBuffer,
         32},
        {"8-way + victim buffer", 8, lsq::OverflowPolicy::kVictimBuffer,
         32},
        {"4-way, violate on overflow", 4, lsq::OverflowPolicy::kViolate,
         0},
        {"8-way, violate on overflow", 8, lsq::OverflowPolicy::kViolate,
         0},
        {"16-way + victim buffer", 16,
         lsq::OverflowPolicy::kVictimBuffer, 32},
    };

    for (const auto &v : variants) {
        core::ProcessorConfig cfg = core::srlConfig();
        cfg.load_buffer.assoc = v.assoc;
        cfg.load_buffer.overflow = v.policy;
        cfg.load_buffer.victim_entries = v.victims;
        std::vector<double> row;
        for (std::size_t i = 0; i < args.suites.size(); ++i) {
            const auto r = core::runOne(cfg, args.suites[i], args.uops);
            row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
        }
        bench::printRow(v.label, row);
    }
    return 0;
}
