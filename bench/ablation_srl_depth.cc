/**
 * @file
 * Ablation A1 (ours) — SRL depth sweep: percent speedup over the
 * 48-entry baseline with SRL capacities from 128 to 2048 entries.
 * Validates the paper's Figure 7 corollary that a 1K-entry SRL is
 * sufficient to hold all stores in the shadow of a load miss: gains
 * should saturate at or before 1K.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Ablation: SRL depth "
                "(%% speedup over 48-entry STQ) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    std::vector<double> base_ipc;
    for (const auto &suite : args.suites) {
        base_ipc.push_back(
            core::runOne(core::baselineConfig(), suite, args.uops).ipc);
    }

    for (const unsigned depth : {128u, 256u, 512u, 1024u, 2048u}) {
        core::ProcessorConfig cfg = core::srlConfig();
        cfg.name = "srl-" + std::to_string(depth);
        cfg.srl.srl.capacity = depth;
        std::vector<double> row;
        for (std::size_t i = 0; i < args.suites.size(); ++i) {
            const auto r = core::runOne(cfg, args.suites[i], args.uops);
            row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
        }
        bench::printRow(std::to_string(depth) + "-entry SRL", row);
    }
    return 0;
}
