/**
 * @file
 * Ablation A4 (ours) — latency tolerance curve: how the benefit of
 * large store-queue organizations grows with memory latency. Sweeps
 * the memory round-trip from 200 to 1600 cycles (the paper's Table 1
 * point is 100 ns = 800 cycles at 8 GHz) and reports the SRL and ideal
 * speedups over the 48-entry baseline at each point.
 *
 * Expected shape: the longer the miss, the deeper the shadow the
 * window must cover, and the more the baseline's small store queue
 * costs — speedups should grow with latency. This is the "latency
 * tolerant" headline of the architecture made visible.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Ablation: memory-latency tolerance "
                "(%% speedup over 48-entry STQ at each latency) ===\n");
    bench::printSuiteHeader("configuration", args.suites);

    for (const unsigned latency : {200u, 400u, 800u, 1600u}) {
        std::vector<double> base_ipc;
        for (const auto &suite : args.suites) {
            auto base = core::baselineConfig();
            base.memory.memory_latency = latency;
            base_ipc.push_back(core::runOne(base, suite, args.uops).ipc);
        }
        for (const auto &[label, make] :
             {std::pair<const char *,
                        core::ProcessorConfig (*)()>{"srl",
                                                     core::srlConfig},
              std::pair<const char *, core::ProcessorConfig (*)()>{
                  "ideal", core::idealConfig}}) {
            core::ProcessorConfig cfg = make();
            cfg.memory.memory_latency = latency;
            std::vector<double> row;
            for (std::size_t i = 0; i < args.suites.size(); ++i) {
                const auto r =
                    core::runOne(cfg, args.suites[i], args.uops);
                row.push_back(core::percentSpeedup(r.ipc, base_ipc[i]));
            }
            bench::printRow(std::string(label) + " @" +
                                std::to_string(latency) + "cy",
                            row);
        }
    }
    return 0;
}
