/**
 * @file
 * Cold-vs-warm benchmark of the content-addressed sweep cache
 * (service::runSweepCached). The cold round simulates the canonical
 * 11-point sweep into a fresh store; the warm rounds replay the same
 * sweep from disk and must perform zero simulations. The JSON summary
 * (for tools/bench_gate.py) reports the *warm* throughput — the gated
 * quantity is how fast a fully cached sweep is served, which is pure
 * cache-read + codec work — alongside the cold wall time and the
 * cold/warm speedup for context. Warm wall is the mean over a
 * min-duration repeat window (bench::repeatForAtLeast, >= 50 ms
 * cumulative): a single warm replay is sub-millisecond, where one
 * timing sample is mostly scheduler noise on shared runners.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "service/result_cache.hh"
#include "service/service.hh"

#include <unistd.h>

using namespace srl;

namespace
{

double
sweepWall(const std::vector<runner::SweepPoint> &points,
          const runner::SweepOptions &opts,
          service::ResultCache &cache, stats::StatsReport &rep)
{
    const auto t0 = std::chrono::steady_clock::now();
    rep = service::runSweepCached(points, opts, cache);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseArgs(argc, argv);
    args.uops = args.uops == 200000 ? 60000 : args.uops;
    const workload::SuiteProfile suite = args.suites.front();

    char dir_template[] = "/tmp/srlsim-bench-cache-XXXXXX";
    if (!mkdtemp(dir_template)) {
        std::fprintf(stderr, "cannot create temp cache dir\n");
        return 1;
    }
    const std::string cache_dir = dir_template;

    const auto specs = service::canonicalSweepSpecs(
        suite.name, args.uops, args.seed);
    const auto points = service::materializePoints(specs);
    const runner::SweepOptions opts = bench::sweepOptions(args);

    // Distinct content addresses: with the canonical seed (0) some
    // named points materialize to the identical design point (e.g.
    // srl-depth-1024 and lcf-2048-3pax are both the default srl
    // config), and the cache correctly runs those once.
    std::set<std::string> distinct_keys;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        distinct_keys.insert(
            chash::pointKey(points[i].config, points[i].suite,
                            points[i].uops, specs[i].run_seed,
                            opts.occupancy_series)
                .toHex());
    }

    service::ResultCache cache({cache_dir, 0});
    stats::StatsReport cold_rep;
    const double cold_wall = sweepWall(points, opts, cache, cold_rep);
    if (cache.counters().misses != distinct_keys.size()) {
        std::fprintf(stderr, "cold round expected %zu misses, saw "
                             "%" PRIu64 "\n",
                     distinct_keys.size(), cache.counters().misses);
        return 1;
    }

    // A warm replay is sub-millisecond, so a fixed round count samples
    // the CI runner's noise floor; instead repeat until >= 50 ms of
    // cumulative warm work and report the mean per-iteration wall.
    const std::uint64_t misses_before = cache.counters().misses;
    stats::StatsReport warm_rep;
    const bench::RepeatTiming warm_t = bench::repeatForAtLeast(
        0.050, [&] { sweepWall(points, opts, cache, warm_rep); });
    const double warm_wall = warm_t.perIterS();
    if (cache.counters().misses != misses_before) {
        std::fprintf(stderr, "a warm round performed a simulation\n");
        return 1;
    }
    if (warm_rep.toJson() != cold_rep.toJson()) {
        std::fprintf(stderr, "warm report differs from cold report\n");
        return 1;
    }

    bench::BenchTiming warm;
    warm.wall_s = warm_wall;
    for (const auto &r : warm_rep.runs) {
        if (r.failed())
            continue;
        warm.uops += static_cast<std::uint64_t>(r.metric("uops"));
        warm.sim_cycles +=
            static_cast<std::uint64_t>(r.metric("cycles"));
    }

    std::printf("sweep cache: %zu points on %s, %" PRIu64
                " uops/run\n",
                points.size(), suite.name.c_str(), args.uops);
    std::printf("cold: %.3f s | warm (mean of %llu iters over "
                "%.3f s): %.4f s | speedup %.1fx\n",
                cold_wall,
                static_cast<unsigned long long>(warm_t.iters),
                warm_t.total_s, warm_wall,
                warm_wall > 0 ? cold_wall / warm_wall : 0);
    bench::printTiming(warm);

    if (!args.json_out.empty()) {
        // writeBenchJson's shape plus the cold-side context fields
        // (extra keys are fine for the gate).
        std::FILE *f = std::fopen(args.json_out.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         args.json_out.c_str());
            return 1;
        }
        const char *commit = std::getenv("SRLSIM_COMMIT");
#ifdef SRLSIM_GIT_HEAD
        if (!commit)
            commit = SRLSIM_GIT_HEAD;
#endif
        char date[32] = "unknown";
        const std::time_t now = std::time(nullptr);
        std::tm tm_utc{};
        if (gmtime_r(&now, &tm_utc))
            std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ",
                          &tm_utc);
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"sweep_cache\",\n"
            "  \"commit\": \"%s\",\n"
            "  \"date\": \"%s\",\n"
            "  \"wall_s\": %.6f,\n"
            "  \"uops\": %llu,\n"
            "  \"uops_per_s\": %.1f,\n"
            "  \"sim_cycles\": %llu,\n"
            "  \"sim_cycles_per_s\": %.1f,\n"
            "  \"cold_wall_s\": %.6f,\n"
            "  \"warm_speedup\": %.1f,\n"
            "  \"config\": {\n"
            "    \"uops_per_run\": %llu,\n"
            "    \"suites\": 1,\n"
            "    \"jobs\": %u,\n"
            "    \"seed\": %llu\n"
            "  }\n"
            "}\n",
            commit ? commit : "unknown", date, warm.wall_s,
            static_cast<unsigned long long>(warm.uops),
            warm.uopsPerSec(),
            static_cast<unsigned long long>(warm.sim_cycles),
            warm.simCyclesPerSec(), cold_wall,
            warm_wall > 0 ? cold_wall / warm_wall : 0,
            static_cast<unsigned long long>(args.uops), args.jobs,
            static_cast<unsigned long long>(args.seed));
        std::fclose(f);
    }

    // Leave no temp state behind.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto key = chash::pointKey(
            points[i].config, points[i].suite, points[i].uops,
            specs[i].run_seed, opts.occupancy_series);
        std::remove(cache.entryPath(key).c_str());
    }
    rmdir(cache_dir.c_str());
    return 0;
}
