/**
 * @file
 * Figure 7 — SRL occupancy distribution during the time the SRL is
 * occupied: for each suite, the percent of SRL-occupied time with more
 * than {0, 64, 128, 192, 256, 384, 512, 768, 1024} entries. The paper
 * concludes a 1K-entry SRL suffices to hold all stores in the shadow
 * of a load miss (the >1024 row must be 0 by construction; the shape
 * shows how quickly occupancy falls off per suite).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace srl;
    const bench::BenchArgs args = bench::parseArgs(argc, argv);

    std::printf("=== Figure 7: SRL occupancy distribution "
                "(%% of occupied time with > N entries) ===\n");
    bench::printSuiteHeader("threshold", args.suites);

    std::vector<core::RunResult> results;
    for (const auto &suite : args.suites)
        results.push_back(
            core::runOne(core::srlConfig(), suite, args.uops));

    for (const auto t : core::figure7Thresholds()) {
        std::vector<double> row;
        for (const auto &r : results)
            row.push_back(r.srl_occupancy_above.at(t));
        bench::printRow("> " + std::to_string(t), row);
    }
    return 0;
}
