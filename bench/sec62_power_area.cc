/**
 * @file
 * Section 6.2 — Power and area analysis: the 512-entry hierarchical L2
 * STQ CAM versus the 512-entry SRL + 2K-entry LCF (with and without
 * the 256-entry forwarding cache), evaluated by the analytical 90 nm
 * model calibrated to the paper's published SPICE datapoints, plus the
 * model's scaling projections for other sizes and lookup rates.
 */

#include <cstdio>

#include "power/model.hh"

int
main()
{
    using namespace srl::power;

    std::printf("=== Section 6.2: power and area (model | paper) "
                "===\n");
    std::printf("%-44s %18s %18s %18s\n", "structure", "area mm^2",
                "leakage mW", "dynamic mW");
    for (const auto &row : section62Comparison()) {
        std::printf("%-44s %8.3f |%8.3f %8.1f |%8.1f %8.1f |%8.1f\n",
                    row.name.c_str(), row.model.area_mm2,
                    row.paper.area_mm2, row.model.leakage_mw,
                    row.paper.leakage_mw, row.model.dynamic_mw,
                    row.paper.dynamic_mw);
    }

    const Technology90nm tech = paperTechnology();

    std::printf("\n--- scaling: CAM L2 STQ vs SRL+LCF by entry count "
                "(10%% L2 lookup rate) ---\n");
    std::printf("%-10s %14s %14s %14s %14s\n", "entries",
                "CAM area mm^2", "CAM total mW", "SRL area mm^2",
                "SRL total mW");
    for (const unsigned n : {128u, 256u, 512u, 1024u, 2048u}) {
        const PowerArea cam =
            evaluate(l2StqDesign(n), {0.10, 0.0}, tech);
        const PowerArea srl = evaluate(srlDesign(n), {0.0, 2.0}, tech);
        const PowerArea lcf =
            evaluate(lcfDesign(4 * n), {0.0, 2.0}, tech);
        std::printf("%-10u %14.3f %14.1f %14.3f %14.1f\n", n,
                    cam.area_mm2, cam.total_mw(),
                    srl.area_mm2 + lcf.area_mm2,
                    srl.total_mw() + lcf.total_mw());
    }

    std::printf("\n--- dynamic power of the 512-entry CAM vs lookup "
                "rate ---\n");
    std::printf("%-16s %14s\n", "lookups/cycle", "dynamic mW");
    for (const double rate : {0.01, 0.05, 0.10, 0.25, 0.5, 1.0}) {
        const PowerArea cam =
            evaluate(l2StqDesign(512), {rate, 0.0}, tech);
        std::printf("%-16.2f %14.1f\n", rate, cam.dynamic_mw);
    }
    return 0;
}
