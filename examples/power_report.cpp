/**
 * @file
 * Power/area exploration with the calibrated 90 nm model: evaluates
 * the paper's structures and user-specified what-if configurations,
 * combining circuit-level numbers with *measured* activity factors
 * from a simulation run (how often loads actually search each
 * structure under a real workload).
 *
 * Usage: power_report [suite] [uops]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulator.hh"
#include "power/model.hh"

using namespace srl;

int
main(int argc, char **argv)
{
    const std::string suite_name = argc > 1 ? argv[1] : "SFP2K";
    const std::uint64_t uops =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    std::printf("=== published-calibration table (Section 6.2) ===\n");
    for (const auto &row : power::section62Comparison()) {
        std::printf("%-44s area %6.3f mm^2  leak %6.1f mW  dyn %6.1f "
                    "mW\n",
                    row.name.c_str(), row.model.area_mm2,
                    row.model.leakage_mw, row.model.dynamic_mw);
    }

    // Measure real activity factors from simulation.
    const auto suite = workload::suiteProfile(suite_name);

    workload::Generator gen_h(suite, uops);
    core::Processor hier(core::hierarchicalConfig(), gen_h);
    hier.run(200'000'000);
    const double l2_searches_per_cycle =
        static_cast<double>(hier.l2Stq()->searches.value()) /
        static_cast<double>(hier.stats().cycles);

    workload::Generator gen_s(suite, uops);
    core::Processor srlm(core::srlConfig(), gen_s);
    srlm.run(200'000'000);
    const double srl_ops_per_cycle =
        static_cast<double>(srlm.srlLog()->pushes.value() +
                            srlm.srlLog()->drains.value() +
                            srlm.srlLog()->indexedReads.value()) /
        static_cast<double>(srlm.stats().cycles);
    const double lcf_ops_per_cycle =
        static_cast<double>(srlm.lcf()->checks.value() +
                            srlm.lcf()->inserts.value() +
                            srlm.lcf()->removes.value()) /
        static_cast<double>(srlm.stats().cycles);
    const double fc_ops_per_cycle =
        static_cast<double>(srlm.fwdCache()->lookups.value() +
                            srlm.fwdCache()->updates.value()) /
        static_cast<double>(srlm.stats().cycles);

    std::printf("\n=== measured activity on %s ===\n",
                suite.name.c_str());
    std::printf("hierarchical L2 STQ searches/cycle: %.4f\n",
                l2_searches_per_cycle);
    std::printf("SRL entry ops/cycle: %.4f, LCF ops/cycle: %.4f, FC "
                "ops/cycle: %.4f\n",
                srl_ops_per_cycle, lcf_ops_per_cycle,
                fc_ops_per_cycle);

    const auto tech = power::paperTechnology();
    const auto cam = power::evaluate(
        power::l2StqDesign(1024), {l2_searches_per_cycle, 0.0}, tech);
    const auto srl_pa = power::evaluate(
        power::srlDesign(1024), {0.0, srl_ops_per_cycle}, tech);
    const auto lcf_pa = power::evaluate(
        power::lcfDesign(2048), {0.0, lcf_ops_per_cycle}, tech);
    const auto fc_pa = power::evaluate(
        power::fwdCacheDesign(256), {0.0, fc_ops_per_cycle}, tech);

    std::printf("\n=== with measured activity (1K-entry designs) "
                "===\n");
    std::printf("%-36s area %6.3f mm^2  total %7.1f mW\n",
                "hierarchical 1K L2 STQ", cam.area_mm2, cam.total_mw());
    std::printf("%-36s area %6.3f mm^2  total %7.1f mW\n",
                "1K SRL + 2K LCF + 256x4 FC",
                srl_pa.area_mm2 + lcf_pa.area_mm2 + fc_pa.area_mm2,
                srl_pa.total_mw() + lcf_pa.total_mw() +
                    fc_pa.total_mw());
    std::printf("\nSRL advantage: %.1fx area, %.1fx total power\n",
                cam.area_mm2 / (srl_pa.area_mm2 + lcf_pa.area_mm2 +
                                fc_pa.area_mm2),
                cam.total_mw() / (srl_pa.total_mw() + lcf_pa.total_mw() +
                                  fc_pa.total_mw()));
    return 0;
}
