/**
 * @file
 * Trace utility: record a synthetic suite to a binary trace file,
 * inspect it, and replay it through the simulator.
 *
 * Usage:
 *   trace_tool record <suite> <uops> <file>   generate + save a trace
 *   trace_tool info <file>                    print header/mix summary
 *   trace_tool run <file> [config]            simulate a trace
 *                                             (config: srl | baseline |
 *                                              hierarchical | ideal)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/simulator.hh"
#include "isa/trace.hh"
#include "isa/validate.hh"
#include "workload/generator.hh"
#include "workload/prewarm.hh"

using namespace srl;

namespace
{

int
cmdRecord(const std::string &suite_name, std::uint64_t uops,
          const std::string &path)
{
    const auto suite = workload::suiteProfile(suite_name);
    workload::Generator gen(suite, uops);
    isa::TraceWriter writer(path);
    const auto n = writer.appendAll(gen);
    writer.finish();
    std::printf("wrote %llu uops of %s to %s\n",
                static_cast<unsigned long long>(n), suite.name.c_str(),
                path.c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    isa::TraceReader reader(path);
    std::uint64_t by_class[8] = {};
    std::uint64_t mem_bytes = 0;
    isa::Uop u;
    while (reader.next(u)) {
        ++by_class[static_cast<unsigned>(u.cls)];
        if (isa::isMemory(u.cls))
            mem_bytes += u.memSize;
    }
    std::printf("%s: %llu uops\n", path.c_str(),
                static_cast<unsigned long long>(reader.count()));
    const char *names[] = {"ialu", "imul", "falu", "fmul",
                           "load", "store", "br",  "nop"};
    for (unsigned i = 0; i < 8; ++i) {
        if (by_class[i]) {
            std::printf("  %-6s %10llu (%.1f%%)\n", names[i],
                        static_cast<unsigned long long>(by_class[i]),
                        100.0 * by_class[i] / reader.count());
        }
    }
    std::printf("  total memory traffic: %llu bytes\n",
                static_cast<unsigned long long>(mem_bytes));
    return 0;
}

int
cmdRun(const std::string &path, const std::string &config_name)
{
    core::ProcessorConfig cfg;
    if (config_name == "srl")
        cfg = core::srlConfig();
    else if (config_name == "baseline")
        cfg = core::baselineConfig();
    else if (config_name == "hierarchical")
        cfg = core::hierarchicalConfig();
    else if (config_name == "ideal")
        cfg = core::idealConfig();
    else {
        std::fprintf(stderr, "unknown config '%s'\n",
                     config_name.c_str());
        return 1;
    }

    {
        // Validate external traces before trusting them.
        isa::TraceReader check(path);
        const auto errors = isa::validateStream(check);
        if (!errors.empty()) {
            for (const auto &e : errors)
                std::fprintf(stderr, "trace error @%lld: %s\n",
                             static_cast<long long>(e.seq),
                             e.message.c_str());
            return 1;
        }
    }

    isa::TraceReader reader(path);
    core::Processor cpu(cfg, reader);
    cpu.run();
    std::fputs(cpu.formatStats().c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 5 && std::strcmp(argv[1], "record") == 0)
        return cmdRecord(argv[2], std::strtoull(argv[3], nullptr, 10),
                         argv[4]);
    if (argc >= 3 && std::strcmp(argv[1], "info") == 0)
        return cmdInfo(argv[2]);
    if (argc >= 3 && std::strcmp(argv[1], "run") == 0)
        return cmdRun(argv[2], argc >= 4 ? argv[3] : "srl");

    std::fprintf(stderr,
                 "usage:\n"
                 "  %s record <suite> <uops> <file>\n"
                 "  %s info <file>\n"
                 "  %s run <file> [srl|baseline|hierarchical|ideal]\n",
                 argv[0], argv[0], argv[0]);
    return 1;
}
