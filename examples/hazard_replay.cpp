/**
 * @file
 * Walks the paper's Figure 4 hazard scenarios on the live SRL machine,
 * narrating what each mechanism does: temporary forwarding updates,
 * redo-phase discard, in-order SRL drain, and load-buffer violation
 * detection with checkpoint rollback. A didactic tour of the public
 * API using hand-built micro-op sequences.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "core/processor.hh"
#include "workload/generator.hh"

using namespace srl;

namespace
{

constexpr Addr kMiss = 0x4000'0000; // cold address: misses to memory
constexpr Addr kA = 0x1000'0100;
constexpr Addr kB = 0x1000'0200;

isa::Uop
makeLoad(SeqNum seq, Addr addr, ArchReg dst, ArchReg areg = 0)
{
    isa::Uop u;
    u.seq = seq;
    u.pc = 0x1000 + seq * 4;
    u.cls = isa::UopClass::kLoad;
    u.dst = dst;
    u.src1 = areg;
    u.effAddr = addr;
    u.memSize = 8;
    return u;
}

isa::Uop
makeStore(SeqNum seq, Addr addr, std::uint64_t data, ArchReg dreg = 0)
{
    isa::Uop u;
    u.seq = seq;
    u.pc = 0x1000 + seq * 4;
    u.cls = isa::UopClass::kStore;
    u.src1 = dreg;
    u.effAddr = addr;
    u.memSize = 8;
    u.storeData = data;
    return u;
}

void
runCase(const char *title, std::vector<isa::Uop> prog,
        std::uint64_t init_a = 0)
{
    std::printf("\n--- %s ---\n", title);
    workload::SequenceStream stream(std::move(prog));
    core::Processor cpu(core::srlConfig(), stream);
    if (init_a)
        cpu.mem().write(kA, 8, init_a);

    std::map<SeqNum, std::uint64_t> loads;
    cpu.setLoadCommitHook(
        [&](SeqNum seq, Addr addr, unsigned, std::uint64_t v) {
            loads[seq] = v;
            std::printf("  commit load seq %llu addr %#llx -> %#llx\n",
                        static_cast<unsigned long long>(seq),
                        static_cast<unsigned long long>(addr),
                        static_cast<unsigned long long>(v));
        });
    const auto &s = cpu.run(10'000'000);
    std::printf("  cycles %llu, redone stores %llu, violations %llu\n",
                static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.redone_stores),
                static_cast<unsigned long long>(s.mem_violations));
    std::printf("  final mem[A]=%#llx mem[B]=%#llx\n",
                static_cast<unsigned long long>(cpu.mem().read(kA, 8)),
                static_cast<unsigned long long>(cpu.mem().read(kB, 8)));
}

} // namespace

int
main()
{
    std::printf("Figure 4 hazard scenarios on the SRL machine\n");

    // (i) Write-after-write: dependent ST A, then independent ST A.
    runCase("case (i): WAW - program order wins in memory",
            {makeLoad(0, kMiss, 12), makeStore(1, kA, 0xdddd, 12),
             makeStore(2, kA, 0x1111), makeLoad(3, kA, 13)});

    // (ii) Write-after-read: dependent LD A, then independent ST A.
    runCase("case (ii): WAR - dependent load sees pre-store value",
            {makeLoad(0, kMiss, 12), makeLoad(1, kA, 13, 12),
             makeStore(2, kA, 0x2222)},
            /*init_a=*/0x0101);

    // (iii) Independent store->load forwarding in the miss shadow.
    runCase("case (iii): RAW - independent pair forwards in shadow",
            {makeLoad(0, kMiss, 12), makeStore(1, kB, 0xbeef),
             makeStore(2, kA, 0xdead, 12), makeLoad(3, kB, 13)});

    // (v) Mispredicted dependence: the load buffer catches it.
    runCase("case (v): mispredicted RAW - violation and restart",
            {makeLoad(0, kMiss, 12), makeStore(1, kA, 0x5555, 12),
             makeLoad(2, kA, 13)});

    // (vi) Complex: independent ST A + dependent ST B + LD A.
    runCase("case (vi): complex ordering via SRL drain check",
            {makeLoad(0, kMiss, 12), makeStore(1, kA, 0xaaaa),
             makeStore(2, kB, 0xbbbb, 12), makeLoad(3, kA, 13)});

    std::printf("\nAll scenarios resolved to program-order values.\n");
    return 0;
}
