/**
 * @file
 * Single-point sampled-simulation driver: runs one (config, suite)
 * design point under a two-tier fast-forward + detail sampling plan
 * (runner::runSampled, DESIGN.md §14) and writes a stats report with
 * the aggregate record plus one record per detailed interval.
 *
 *   sample_tool --config srl --suite SFP2K --uops 2000000 \
 *       --ff 170000 --warm 10000 --detail 20000 --out report.json
 *
 * Checkpointing / sharding:
 *   --ckpt-dir DIR     save an srlsim-ckpt-v1 checkpoint at every
 *                      detail-segment entry; required for sharding
 *   --shard-start K    first detailed interval to run (restores the
 *                      matching checkpoint from --ckpt-dir; never
 *                      silently re-fast-forwards)
 *   --shard-count N    number of detailed intervals to run (default:
 *                      through the end of the run)
 * A shard that stops before the last interval also fast-forwards into
 * and checkpoints the next shard's entry point, so chained shards
 * cover the run with no overlap. Restore-then-run is byte-identical
 * to the straight-through run — the report of shard K..end equals the
 * tail of the full run's report, and CI diffs exactly that.
 *
 * Pipelined parallel mode (DESIGN.md §15):
 *   --sample-jobs N    run under the pipelined independent-interval
 *                      engine with N concurrent detail workers. The
 *                      report, trace, and digest are byte-identical
 *                      at every N >= 1 (CI diffs N=1 vs N=4) but
 *                      deliberately differ from the chained default
 *                      (no --sample-jobs). Incompatible with
 *                      --shard-start/--shard-count.
 *   --ckpt-keep-last K with --ckpt-dir: retain only the K most recent
 *                      interval checkpoints (0 = keep all); the shard
 *                      handoff checkpoint is always kept
 *
 * Other options:
 *   --config NAME      base config: baseline | srl | hierarchical |
 *                      ideal | monolithic (default srl)
 *   --suite NAME       workload suite (default SFP2K)
 *   --uops N           total uops in the (virtual) full run
 *   --seed S           seed override; 0 keeps the suite's canonical
 *                      seed (runOne semantics)
 *   --out FILE         stats report JSON ("-" = stdout; default "-")
 *   --trace-out FILE   Chrome trace (srlsim-trace-v1) of one detailed
 *                      interval
 *   --trace-interval K which interval to trace (default: shard_start)
 *   --sample-every N   trace counter-timeline period (default 64)
 *
 * stderr prints the wall-clock split (fast-forward vs detail), the
 * realized uop counts, and the final-state digest — the fast-forward
 * determinism hash (same config/suite/seed/plan => same digest).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "runner/sampled.hh"
#include "service/protocol.hh"

using namespace srl;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--config NAME] [--suite NAME] [--uops N] "
                 "[--ff N] [--warm N] [--detail N] [--seed S] "
                 "[--ckpt-dir DIR] [--shard-start K] [--shard-count N] "
                 "[--sample-jobs N] [--ckpt-keep-last K] "
                 "[--out FILE] [--trace-out FILE] [--trace-interval K] "
                 "[--sample-every N]\n",
                 argv0);
    std::exit(1);
}

void
writeFile(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::fwrite(content.data(), 1, content.size(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string config_name = "srl";
    std::string suite_name = "SFP2K";
    std::uint64_t uops = 2000000;
    std::uint64_t seed = 0;
    std::string out_path = "-";
    std::string trace_path;
    std::int64_t trace_interval = -1;
    runner::SampledOptions sopts;
    std::uint64_t shard_count = 0; // 0 = through the end of the run

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc)
                return static_cast<const char *>(nullptr);
            return static_cast<const char *>(argv[++i]);
        };
        if (const char *v = arg("--config")) {
            config_name = v;
        } else if (const char *v = arg("--suite")) {
            suite_name = v;
        } else if (const char *v = arg("--uops")) {
            uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--ff")) {
            sopts.plan.ff_uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--warm")) {
            sopts.plan.warm_uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--detail")) {
            sopts.plan.detail_uops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--seed")) {
            seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--ckpt-dir")) {
            sopts.ckpt_dir = v;
        } else if (const char *v = arg("--shard-start")) {
            sopts.shard_start = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--shard-count")) {
            shard_count = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--sample-jobs")) {
            sopts.sample_jobs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (const char *v = arg("--ckpt-keep-last")) {
            sopts.ckpt_keep_last = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg("--out")) {
            out_path = v;
        } else if (const char *v = arg("--trace-out")) {
            trace_path = v;
        } else if (const char *v = arg("--trace-interval")) {
            trace_interval = std::strtoll(v, nullptr, 10);
        } else if (const char *v = arg("--sample-every")) {
            sopts.obs.sample_every = std::strtoull(v, nullptr, 10);
        } else {
            usage(argv[0]);
        }
    }
    if (shard_count)
        sopts.shard_count = shard_count;
    if (!trace_path.empty())
        sopts.trace_interval =
            trace_interval >= 0
                ? trace_interval
                : static_cast<std::int64_t>(sopts.shard_start);

    runner::SampledResult res;
    try {
        service::PointSpec spec;
        spec.base = config_name;
        spec.suite = suite_name;
        const core::ProcessorConfig cfg = spec.materializeConfig();
        const workload::SuiteProfile suite = spec.materializeSuite();
        res = runner::runSampled(cfg, suite, uops, seed, sopts);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    stats::StatsReport rep;
    rep.meta["config"] = config_name;
    rep.meta["suite"] = suite_name;
    rep.meta["uops"] = std::to_string(uops);
    rep.meta["final_digest"] = res.final_digest.toHex();
    res.record.name = "sampled";
    rep.runs.push_back(res.record);
    for (const auto &r : res.interval_records)
        rep.runs.push_back(r);
    writeFile(out_path, rep.toJson());
    if (!trace_path.empty())
        writeFile(trace_path, res.trace_json);

    std::fprintf(
        stderr,
        "sampled %s/%s: ff %llu uops (%.2fs), detail %llu uops "
        "(%.2fs), %llu intervals, %zu checkpoints\n",
        config_name.c_str(), suite_name.c_str(),
        static_cast<unsigned long long>(res.ff_uops + res.warm_uops),
        res.ff_wall_s,
        static_cast<unsigned long long>(res.detail_uops),
        res.detail_wall_s,
        static_cast<unsigned long long>(res.intervals_run),
        res.ckpts_saved.size());
    std::fprintf(stderr, "final state digest: %s\n",
                 res.final_digest.toHex().c_str());
    return 0;
}
